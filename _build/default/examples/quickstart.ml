(* Quickstart: extract an analytical model from a small nonlinear circuit.

   The circuit is a diode clipper (resistor + diode + capacitor) described
   as SPICE text. We train on one period of a sine, extract the model, and
   validate on a PRBS bit stream. Run with:

     dune exec examples/quickstart.exe
*)

let netlist_text =
  {|
* diode clipper
Vin in 0 DC 0
R1 in out 200
D1 out 0 IS=1e-9 N=1.8
C1 out 0 100p
.end
|}

let () =
  let netlist = Circuit.Parser.parse_string netlist_text in
  Printf.printf "parsed %d components\n" (Circuit.Netlist.component_count netlist);

  (* 1. configure the extraction: a 1 MHz training sine and a log
     frequency grid covering the circuit's dynamics *)
  let training =
    {
      Tft_rvf.Pipeline.wave =
        Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 };
      t_stop = 1e-6;
      dt = 2.5e-9;
      snapshot_every = 4;
    }
  in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9 ~training ()
  in

  (* 2. run the pipeline: transient -> TFT -> RVF -> Hammerstein model *)
  let outcome =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vin"
      ~output:(Engine.Mna.Node "out") ()
  in
  print_string (Tft_rvf.Report.summary outcome);

  (* 3. inspect the analytical equations *)
  print_newline ();
  print_string (Hammerstein.Hmodel.equations outcome.Tft_rvf.Pipeline.model);

  (* 4. validate on an input the model never saw *)
  let wave =
    Circuit.Netlist.Bits
      {
        low = -0.1;
        high = 0.7;
        rate = 20e6;
        rise = 5e-9;
        bits = Signal.Source.prbs_bits ~seed:7 ~length:16;
      }
  in
  let v =
    Tft_rvf.Report.validate ~model:outcome.Tft_rvf.Pipeline.model ~netlist
      ~input:"Vin" ~output:(Engine.Mna.Node "out") ~wave ~t_stop:8e-7
      ~dt:2e-10 ()
  in
  Printf.printf "\nvalidation on a 20 Mb/s PRBS stream:\n";
  Printf.printf "  RMSE   : %.3e V (%.1f dB normalized)\n"
    v.Tft_rvf.Report.rmse v.Tft_rvf.Report.nrmse_db;
  Printf.printf "  speedup: %.0fx over the transistor-level transient\n"
    v.Tft_rvf.Report.speedup
