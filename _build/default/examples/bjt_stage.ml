(* Extraction on a bipolar common-emitter stage: shows the flow is not
   tied to MOSFET circuits, and uses harmonic analysis to check that the
   extracted model reproduces the stage's distortion, not just its gain.

     dune exec examples/bjt_stage.exe
*)

let () =
  let netlist = Circuits.Library.bjt_amp () in
  let training =
    {
      Tft_rvf.Pipeline.wave =
        Circuit.Netlist.Sine { offset = 0.75; ampl = 0.05; freq = 1e6; phase = 0.0 };
      t_stop = 1e-6;
      dt = 2.5e-9;
      snapshot_every = 4;
    }
  in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e10 ~training ()
  in
  let o =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:Circuits.Library.bjt_input
      ~output:Circuits.Library.bjt_output ()
  in
  print_string (Tft_rvf.Report.summary o);

  (* drive both circuit and model with a sine and compare harmonics *)
  let f0 = 5e6 in
  let wave =
    Circuit.Netlist.Sine { offset = 0.75; ampl = 0.03; freq = f0; phase = 0.0 }
  in
  let t_stop = 6.0 /. f0 in
  let v =
    Tft_rvf.Report.validate ~model:o.Tft_rvf.Pipeline.model ~netlist
      ~input:Circuits.Library.bjt_input ~output:Circuits.Library.bjt_output
      ~wave ~t_stop ~dt:(t_stop /. 3000.0) ()
  in
  Printf.printf "\nsine validation at %.0f MHz: rmse %.3e V (%.1f dB)\n"
    (f0 /. 1e6) v.Tft_rvf.Report.rmse v.Tft_rvf.Report.nrmse_db;
  let h_ref = Signal.Fourier.harmonics v.Tft_rvf.Report.reference ~f0 ~count:3 in
  let h_mod = Signal.Fourier.harmonics v.Tft_rvf.Report.modeled ~f0 ~count:3 in
  Printf.printf "%-12s %-12s %-12s\n" "harmonic" "circuit [V]" "model [V]";
  Array.iteri
    (fun k a -> Printf.printf "%-12d %-12.4e %-12.4e\n" (k + 1) a h_mod.(k))
    h_ref;
  Printf.printf "THD: circuit %.2f%%, model %.2f%%\n"
    (100.0 *. Signal.Fourier.thd v.Tft_rvf.Report.reference ~f0 ())
    (100.0 *. Signal.Fourier.thd v.Tft_rvf.Report.modeled ~f0 ())
