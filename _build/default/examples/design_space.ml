(* Model reuse across operating conditions: extract the buffer model once
   and evaluate it against the transistor-level circuit for sine inputs of
   increasing amplitude — showing where the extracted model remains valid
   (inside the trained state range) and how compression appears.

     dune exec examples/design_space.exe
*)

let () =
  let outcome = Tft_rvf.Pipeline.extract_buffer () in
  let model = outcome.Tft_rvf.Pipeline.model in
  let netlist = Circuits.Buffer.netlist () in
  let freq = 500e6 in
  let t_stop = 4.0 /. freq in
  let dt = t_stop /. 2000.0 in
  Printf.printf
    "sine sweep at %.0f MHz: fundamental amplitude transfer and model error\n"
    (freq /. 1e6);
  Printf.printf "  %-10s %-12s %-12s %-10s\n" "ampl [V]" "out p-p [V]"
    "model p-p" "NRMSE [dB]";
  List.iter
    (fun ampl ->
      let wave =
        Circuit.Netlist.Sine { offset = 0.9; ampl; freq; phase = 0.0 }
      in
      let v =
        Tft_rvf.Report.validate ~model ~netlist
          ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output
          ~wave ~t_stop ~dt ()
      in
      Printf.printf "  %-10.2f %-12.4f %-12.4f %-10.1f\n" ampl
        (Signal.Waveform.peak_to_peak v.Tft_rvf.Report.reference)
        (Signal.Waveform.peak_to_peak v.Tft_rvf.Report.modeled)
        v.Tft_rvf.Report.nrmse_db)
    [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  Printf.printf
    "\n(the training trajectory covered 0.4..1.4 V; amplitudes beyond 0.5 V\n\
    \ would leave the trained state range and are not attempted)\n"
