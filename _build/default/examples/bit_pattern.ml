(* Fig. 9 scenario: drive the transistor-level buffer and the extracted
   models (RVF and the CAFFEINE baseline) with a spectrally-rich 2.5 GS/s
   bit pattern and compare the responses.

     dune exec examples/bit_pattern.exe
*)

let () =
  let outcome = Tft_rvf.Pipeline.extract_buffer () in
  let caffeine =
    Caffeine.Cfit.extract ~dataset:outcome.Tft_rvf.Pipeline.dataset ~input:0
      ~output:0 ()
  in
  let netlist = Circuits.Buffer.netlist () in
  let wave = Circuits.Buffer.bit_wave ~rate:2.5e9 ~length:32 () in
  let t_stop = 32.0 /. 2.5e9 in
  let dt = t_stop /. 2560.0 in
  let validate model =
    Tft_rvf.Report.validate ~model ~netlist ~input:Circuits.Buffer.input_name
      ~output:Circuits.Buffer.output ~wave ~t_stop ~dt ()
  in
  let v_rvf = validate outcome.Tft_rvf.Pipeline.model in
  let v_caff = validate caffeine.Caffeine.Cfit.model in
  Printf.printf "2.5 GS/s PRBS validation (32 bits)\n";
  Printf.printf "  %-9s %-12s %-10s %-9s\n" "model" "RMSE [V]" "NRMSE [dB]" "speedup";
  Printf.printf "  %-9s %-12.4e %-10.1f %-9.0f\n" "RVF" v_rvf.Tft_rvf.Report.rmse
    v_rvf.Tft_rvf.Report.nrmse_db v_rvf.Tft_rvf.Report.speedup;
  Printf.printf "  %-9s %-12.4e %-10.1f %-9.0f\n" "CAFFEINE"
    v_caff.Tft_rvf.Report.rmse v_caff.Tft_rvf.Report.nrmse_db
    v_caff.Tft_rvf.Report.speedup;
  (* dump the waveforms so they can be plotted externally *)
  let dump name w =
    let oc = open_out name in
    let times = Signal.Waveform.times w and values = Signal.Waveform.values w in
    Array.iteri (fun k t -> Printf.fprintf oc "%.6e %.6e\n" t values.(k)) times;
    close_out oc
  in
  dump "fig9_spice.dat" v_rvf.Tft_rvf.Report.reference;
  dump "fig9_rvf.dat" v_rvf.Tft_rvf.Report.modeled;
  dump "fig9_caffeine.dat" v_caff.Tft_rvf.Report.modeled;
  Printf.printf "wrote fig9_spice.dat, fig9_rvf.dat, fig9_caffeine.dat\n"
