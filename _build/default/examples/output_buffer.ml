(* The paper's Section IV experiment: extract an analytical model of the
   high-speed output buffer (4 differential stages, 28 transistors) and
   print the extraction report plus the Verilog-A export.

     dune exec examples/output_buffer.exe
*)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let netlist = Circuits.Buffer.netlist () in
  Printf.printf "output buffer: %d components, %d transistors, %d nodes\n\n"
    (Circuit.Netlist.component_count netlist)
    (Circuits.Buffer.transistor_count netlist)
    (List.length (Circuit.Netlist.nodes netlist));

  let outcome = Tft_rvf.Pipeline.extract_buffer () in
  print_string (Tft_rvf.Report.summary outcome);

  let model = outcome.Tft_rvf.Pipeline.model in
  Printf.printf "\nfrequency poles of the extracted model:\n";
  Array.iter
    (fun a ->
      if a.Complex.im >= 0.0 then
        Printf.printf "  %+.4e %+.4e j  (|a|/2pi = %.3f GHz)\n" a.Complex.re
          a.Complex.im
          (Complex.norm a /. (2.0 *. Float.pi *. 1e9)))
    outcome.Tft_rvf.Pipeline.rvf.Rvf.freq_model.Vf.Model.poles;

  (* export: the analytical behavioral model in two languages *)
  let va = Hammerstein.Export.verilog_a model in
  let out = open_out "buffer_model.va" in
  output_string out va;
  close_out out;
  let ml = Hammerstein.Export.matlab model in
  let out = open_out "buffer_model.m" in
  output_string out ml;
  close_out out;
  Printf.printf "\nwrote buffer_model.va and buffer_model.m\n";

  (* show a slice of the modeled TFT hyperplane *)
  Printf.printf "\nmodel transfer function magnitude |T(x, j2pi f)|:\n";
  Printf.printf "%8s" "x \\ f";
  let fs = [| 1e8; 1e9; 3e9; 1e10 |] in
  Array.iter (fun f -> Printf.printf " %9.1e" f) fs;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%8.2f" x;
      Array.iter
        (fun f ->
          let t =
            Hammerstein.Hmodel.transfer model ~x ~s:(Signal.Grid.s_of_hz f)
          in
          Printf.printf " %9.4f" (Complex.norm t))
        fs;
      print_newline ())
    [ 0.4; 0.7; 0.9; 1.1; 1.4 ]
