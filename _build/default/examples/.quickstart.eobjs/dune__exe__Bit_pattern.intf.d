examples/bit_pattern.mli:
