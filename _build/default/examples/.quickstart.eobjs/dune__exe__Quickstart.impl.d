examples/quickstart.ml: Circuit Engine Hammerstein Printf Signal Tft_rvf
