examples/bjt_stage.mli:
