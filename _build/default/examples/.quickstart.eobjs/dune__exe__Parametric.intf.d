examples/parametric.mli:
