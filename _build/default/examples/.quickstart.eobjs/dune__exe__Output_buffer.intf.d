examples/output_buffer.mli:
