examples/quickstart.mli:
