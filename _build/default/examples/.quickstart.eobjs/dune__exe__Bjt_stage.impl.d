examples/bjt_stage.ml: Array Circuit Circuits Printf Signal Tft_rvf
