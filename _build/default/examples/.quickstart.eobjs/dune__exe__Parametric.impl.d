examples/parametric.ml: Array Circuits Engine Float Printf Rvf Stdlib Tft
