examples/bit_pattern.ml: Array Caffeine Circuits Printf Signal Tft_rvf
