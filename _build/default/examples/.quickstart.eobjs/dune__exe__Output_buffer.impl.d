examples/output_buffer.ml: Array Circuit Circuits Complex Float Hammerstein List Logs Printf Rvf Signal Tft_rvf Vf
