examples/design_space.ml: Circuit Circuits List Printf Signal Tft_rvf
