(* Parametric macromodeling with the multivariate recursion (eq. 16):
   the ancestors of the RVF algorithm (refs. [6], [10]) fit frequency
   responses as functions of *design parameters*. Here the same nested
   machinery fits the buffer's DC conductance trace as a function of both
   the state x = u and the load resistance, then predicts the curve at a
   load value that was never simulated.

     dune exec examples/parametric.exe
*)

let dc_trace_at ~rload =
  let params = { Circuits.Buffer.default_params with Circuits.Buffer.rload } in
  let wave = Circuits.Buffer.training_wave () in
  let mna = Circuits.Buffer.mna ~params ~input_wave:wave () in
  let period = 1.0 /. 1e6 in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 8 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:period ~dt:(period /. 400.0) in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:[| 1e6 |] run.Engine.Tran.snapshots
  in
  let xs = Array.map (fun (s : Tft.Dataset.sample) -> s.Tft.Dataset.x.(0))
      ds.Tft.Dataset.samples in
  (xs, Tft.Dataset.dc_trace ds ~input:0 ~output:0)

let () =
  let rloads = [| 380.0; 430.0; 470.0; 520.0; 560.0 |] in
  Printf.printf "sampling the training trajectory at %d load values...\n%!"
    (Array.length rloads);
  let traces = Array.map (fun rload -> dc_trace_at ~rload) rloads in
  let xs, _ = traces.(0) in
  (* tensor grid: data.(i).(j) = H(x_i, rload_j) *)
  let data =
    Array.init (Array.length xs) (fun i ->
        Array.map (fun (_, t) -> t.(i)) traces)
  in
  let surf = Rvf.Recursion.fit ~eps:2e-3 ~xs ~ys:rloads ~data () in
  Printf.printf "fitted surface: %d x-poles, %d parameter-poles\n"
    (Rvf.Recursion.x_pole_count surf)
    (Rvf.Recursion.y_pole_count surf);
  (* predict the DC gain curve at an unseen load value and check it *)
  let r_test = 500.0 in
  let xs_test, trace_test = dc_trace_at ~rload:r_test in
  let err = ref 0.0 in
  Array.iteri
    (fun i x ->
      let p = Rvf.Recursion.eval surf ~x ~y:r_test in
      err := Float.max !err (Float.abs (p -. trace_test.(i))))
    xs_test;
  Printf.printf
    "prediction at unseen rload = %.0f ohm: max |error| = %.2e (gain scale ~2)\n"
    r_test !err;
  Printf.printf "\n%-8s %-12s %-12s\n" "x [V]" "predicted" "simulated";
  let stride = Stdlib.max 1 (Array.length xs_test / 8) in
  Array.iteri
    (fun i x ->
      if i mod stride = 0 then
        Printf.printf "%-8.3f %-12.4f %-12.4f\n" x
          (Rvf.Recursion.eval surf ~x ~y:r_test)
          trace_test.(i))
    xs_test
