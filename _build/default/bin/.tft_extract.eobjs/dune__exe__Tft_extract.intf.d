bin/tft_extract.mli:
