bin/spice_sim.ml: Arg Array Circuit Cmd Cmdliner Complex Engine Float List Printf Signal Term
