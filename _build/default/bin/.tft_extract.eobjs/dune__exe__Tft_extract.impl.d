bin/tft_extract.ml: Arg Circuit Cmd Cmdliner Engine Float Hammerstein Logs Printf Rvf Term Tft_rvf
