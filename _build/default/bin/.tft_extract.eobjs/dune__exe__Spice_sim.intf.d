bin/spice_sim.mli:
