(* A small SPICE-like driver for the simulation engine:

     spice_sim dc -i netlist.cir
     spice_sim ac -i netlist.cir --input Vin --output out --fmin 1 --fmax 1e9
     spice_sim tran -i netlist.cir --tstop 1e-6 --dt 1e-9 --output out
*)

open Cmdliner

let netlist_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "netlist" ] ~docv:"FILE" ~doc:"SPICE-like netlist file.")

let load path = Circuit.Parser.parse_file path

let dc_cmd =
  let run path =
    let netlist = load path in
    let mna = Engine.Mna.build netlist in
    let v = Engine.Dc.solve mna in
    List.iter
      (fun node ->
        Printf.printf "V(%s) = %.9g\n" node v.(Engine.Mna.node_index mna node))
      (Circuit.Netlist.nodes netlist)
  in
  Cmd.v (Cmd.info "dc" ~doc:"DC operating point") Term.(const run $ netlist_arg)

let input_arg =
  Arg.(value & opt string "Vin" & info [ "input" ] ~doc:"Input source name.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "output" ] ~docv:"NODE" ~doc:"Observed node.")

let ac_cmd =
  let run path input output f_min f_max points =
    let netlist = load path in
    let mna =
      Engine.Mna.build ~inputs:[ input ]
        ~outputs:[ Engine.Mna.Node output ]
        netlist
    in
    let at = Engine.Dc.solve mna in
    let freqs = Signal.Grid.frequencies_hz ~f_min ~f_max ~points in
    let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
    Printf.printf "# f [Hz]  |H|  gain [dB]  phase [deg]\n";
    Array.iteri
      (fun k f ->
        let g = Complex.norm h.(k) in
        Printf.printf "%.6e %.6e %.3f %.3f\n" f g
          (Signal.Metrics.db20 g)
          (Complex.arg h.(k) *. 180.0 /. Float.pi))
      freqs
  in
  Cmd.v
    (Cmd.info "ac" ~doc:"small-signal frequency sweep")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg
      $ Arg.(value & opt float 1e3 & info [ "fmin" ] ~doc:"Start frequency [Hz].")
      $ Arg.(value & opt float 1e9 & info [ "fmax" ] ~doc:"Stop frequency [Hz].")
      $ Arg.(value & opt int 50 & info [ "points" ] ~doc:"Sweep points."))

let tran_cmd =
  let run path output t_stop dt =
    let netlist = load path in
    let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node output ] netlist in
    let res = Engine.Tran.run mna ~t_stop ~dt in
    let w = Engine.Tran.output_waveform res 0 in
    Printf.printf "# t [s]  V(%s) [V]\n" output;
    let times = Signal.Waveform.times w and values = Signal.Waveform.values w in
    Array.iteri (fun k t -> Printf.printf "%.9e %.9e\n" t values.(k)) times
  in
  Cmd.v
    (Cmd.info "tran" ~doc:"nonlinear transient analysis")
    Term.(
      const run $ netlist_arg $ output_arg
      $ Arg.(value & opt float 1e-6 & info [ "tstop" ] ~doc:"Stop time [s].")
      $ Arg.(value & opt float 1e-9 & info [ "dt" ] ~doc:"Time step [s]."))

let () =
  let doc = "MNA circuit simulator (DC / AC / transient)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "spice_sim" ~doc) [ dc_cmd; ac_cmd; tran_cmd ]))
