(** Pole-set construction and normalization.

    Pole arrays are kept {e self-conjugate with pairs adjacent}: a complex
    pole with positive imaginary part is immediately followed by its
    conjugate; real poles occupy single slots. All of [Basis], [Model]
    and [Vfit] rely on this layout. *)

type slot = Single of int | Pair_first of int

val structure : Complex.t array -> slot list
(** The slot decomposition of a normalized pole array. Raises
    [Invalid_argument] if the array is not in normalized layout. *)

val initial_frequency : f_min:float -> f_max:float -> count:int -> Complex.t array
(** Starting poles for frequency-domain fitting: complex pairs
    [−ω/100 ± jω] with [ω = 2πf] log-spaced over the band (the classic
    vector-fitting heuristic). [count] must be even and ≥ 2. *)

val initial_real_axis : lo:float -> hi:float -> count:int -> Complex.t array
(** Starting poles for fitting a real function on [lo, hi] (the
    state-space axis): complex pairs [β ± jα] with centers [β] spread
    across the interval and width [α] proportional to the spacing — the
    paper's "complex pairs with opposite-sign real part" basis, seen in
    the x-plane. [count] must be even and ≥ 2. *)

val normalize :
  ?enforce_stable:bool -> ?min_imag:float -> Complex.t array -> Complex.t array
(** Bring an arbitrary self-conjugate multiset of poles (e.g. eigensolver
    output) into normalized layout. [enforce_stable] reflects poles into
    the open left half plane. [min_imag > 0] forbids real poles: leftover
    real values are merged two-by-two into complex pairs and small
    imaginary parts are inflated to [min_imag] (state-space mode, where
    the closed-form integrals require strictly complex pairs). *)
