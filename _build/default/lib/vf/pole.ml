type slot = Single of int | Pair_first of int

let is_conj_pair a b =
  let scale = Float.max (Complex.norm a) 1e-300 in
  Float.abs (a.Complex.re -. b.Complex.re) <= 1e-9 *. scale
  && Float.abs (a.Complex.im +. b.Complex.im) <= 1e-9 *. scale

let structure poles =
  let p = Array.length poles in
  let rec loop k acc =
    if k >= p then List.rev acc
    else if poles.(k).Complex.im = 0.0 then loop (k + 1) (Single k :: acc)
    else if k + 1 < p && is_conj_pair poles.(k) poles.(k + 1) then
      loop (k + 2) (Pair_first k :: acc)
    else invalid_arg "Pole.structure: pole array is not in normalized layout"
  in
  loop 0 []

let initial_frequency ~f_min ~f_max ~count =
  if count < 2 || count mod 2 <> 0 then
    invalid_arg "Pole.initial_frequency: count must be even and >= 2";
  if f_min <= 0.0 || f_max <= f_min then
    invalid_arg "Pole.initial_frequency: need 0 < f_min < f_max";
  let pairs = count / 2 in
  let ws =
    Array.init pairs (fun k ->
        let frac =
          if pairs = 1 then 0.5
          else float_of_int k /. float_of_int (pairs - 1)
        in
        2.0 *. Float.pi *. f_min *. ((f_max /. f_min) ** frac))
  in
  Array.init count (fun k ->
      let w = ws.(k / 2) in
      let a = { Complex.re = -.w /. 100.0; im = w } in
      if k mod 2 = 0 then a else Complex.conj a)

let initial_real_axis ~lo ~hi ~count =
  if count < 2 || count mod 2 <> 0 then
    invalid_arg "Pole.initial_real_axis: count must be even and >= 2";
  if hi <= lo then invalid_arg "Pole.initial_real_axis: need lo < hi";
  let pairs = count / 2 in
  let width = (hi -. lo) /. float_of_int pairs in
  Array.init count (fun k ->
      let m = k / 2 in
      let beta = lo +. ((float_of_int m +. 0.5) *. (hi -. lo) /. float_of_int pairs) in
      let a = { Complex.re = beta; im = width } in
      if k mod 2 = 0 then a else Complex.conj a)

let normalize ?(enforce_stable = false) ?(min_imag = 0.0) poles =
  (* split into reals and positive-imaginary representatives *)
  let reals = ref [] and pairs = ref [] in
  Array.iter
    (fun a ->
      let scale = Float.max (Complex.norm a) 1e-300 in
      if Float.abs a.Complex.im <= 1e-12 *. scale then
        reals := a.Complex.re :: !reals
      else if a.Complex.im > 0.0 then pairs := a :: !pairs
      else ())
    poles;
  (* count sanity: every negative-imag pole should have had a conjugate;
     trust the self-conjugacy of real-matrix eigenvalues *)
  let reals = List.sort Float.compare !reals in
  let pairs =
    List.sort (fun a b -> Float.compare (Complex.norm a) (Complex.norm b)) !pairs
  in
  let stabilize a =
    if not enforce_stable then a
    else begin
      let re =
        if a.Complex.re < 0.0 then a.Complex.re
        else if a.Complex.re > 0.0 then -.a.Complex.re
        else -1e-3 *. Float.max (Complex.norm a) 1.0
      in
      { a with Complex.re = re }
    end
  in
  let widen a =
    if min_imag > 0.0 && a.Complex.im < min_imag then
      { a with Complex.im = min_imag }
    else a
  in
  let pairs = List.map (fun a -> widen (stabilize a)) pairs in
  let reals, extra_pairs =
    if min_imag > 0.0 then begin
      (* merge leftover reals two-by-two into complex pairs *)
      let rec merge acc = function
        | r1 :: r2 :: rest ->
            let beta = 0.5 *. (r1 +. r2) in
            let alpha = Float.max min_imag (0.5 *. Float.abs (r2 -. r1)) in
            merge ({ Complex.re = beta; im = alpha } :: acc) rest
        | [ r ] -> merge ({ Complex.re = r; im = min_imag } :: acc) []
        | [] -> List.rev acc
      in
      ([], List.map stabilize (merge [] reals))
    end
    else (List.map (fun r -> stabilize { Complex.re = r; im = 0.0 }) reals, [])
  in
  let out = ref [] in
  List.iter (fun a -> out := Complex.conj a :: a :: !out) (pairs @ extra_pairs);
  List.iter (fun a -> out := a :: !out) reals;
  Array.of_list (List.rev !out)
