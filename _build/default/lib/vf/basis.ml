let row poles z =
  let p = Array.length poles in
  let out = Array.make p Complex.zero in
  List.iter
    (fun slot ->
      match slot with
      | Pole.Single k -> out.(k) <- Complex.inv (Complex.sub z poles.(k))
      | Pole.Pair_first k ->
          let t1 = Complex.inv (Complex.sub z poles.(k)) in
          let t2 = Complex.inv (Complex.sub z poles.(k + 1)) in
          out.(k) <- Complex.add t1 t2;
          out.(k + 1) <- Complex.mul Complex.i (Complex.sub t1 t2))
    (Pole.structure poles);
  out

let table poles points = Array.map (row poles) points

let residues_of_coeffs poles coeffs =
  let p = Array.length poles in
  if Array.length coeffs <> p then invalid_arg "Basis.residues_of_coeffs";
  let out = Array.make p Complex.zero in
  List.iter
    (fun slot ->
      match slot with
      | Pole.Single k -> out.(k) <- { Complex.re = coeffs.(k); im = 0.0 }
      | Pole.Pair_first k ->
          let r = { Complex.re = coeffs.(k); im = coeffs.(k + 1) } in
          out.(k) <- r;
          out.(k + 1) <- Complex.conj r)
    (Pole.structure poles);
  out

let coeffs_of_residues poles residues =
  let p = Array.length poles in
  if Array.length residues <> p then invalid_arg "Basis.coeffs_of_residues";
  let out = Array.make p 0.0 in
  List.iter
    (fun slot ->
      match slot with
      | Pole.Single k -> out.(k) <- residues.(k).Complex.re
      | Pole.Pair_first k ->
          out.(k) <- residues.(k).Complex.re;
          out.(k + 1) <- residues.(k).Complex.im)
    (Pole.structure poles);
  out

let state_matrices poles =
  let p = Array.length poles in
  let a = Linalg.Mat.create p p in
  let b = Linalg.Vec.create p in
  List.iter
    (fun slot ->
      match slot with
      | Pole.Single k ->
          Linalg.Mat.set a k k poles.(k).Complex.re;
          b.(k) <- 1.0
      | Pole.Pair_first k ->
          let alpha = poles.(k).Complex.re and beta = poles.(k).Complex.im in
          Linalg.Mat.set a k k alpha;
          Linalg.Mat.set a k (k + 1) beta;
          Linalg.Mat.set a (k + 1) k (-.beta);
          Linalg.Mat.set a (k + 1) (k + 1) alpha;
          b.(k) <- 2.0;
          b.(k + 1) <- 0.0)
    (Pole.structure poles);
  (a, b)
