lib/vf/basis.ml: Array Complex Linalg List Pole
