lib/vf/pole.mli: Complex
