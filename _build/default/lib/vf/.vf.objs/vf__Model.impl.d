lib/vf/model.ml: Array Basis Complex Float Format Linalg Stdlib
