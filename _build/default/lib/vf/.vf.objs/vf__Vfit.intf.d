lib/vf/vfit.mli: Complex Model
