lib/vf/pole.ml: Array Complex Float List
