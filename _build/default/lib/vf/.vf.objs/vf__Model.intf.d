lib/vf/model.mli: Complex Format
