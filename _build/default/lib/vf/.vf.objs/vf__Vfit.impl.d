lib/vf/vfit.ml: Array Basis Complex Float Linalg Logs Model Pole Printf Stdlib
