lib/vf/basis.mli: Complex Linalg
