(** The real partial-fraction basis spanned by a normalized pole set.

    For a real pole [a]: [φ_p(z) = 1/(z−a)].
    For a conjugate pair [(a, ā)] in slots [(p, p+1)]:
    [φ_p(z) = 1/(z−a) + 1/(z−ā)] and [φ_{p+1}(z) = j/(z−a) − j/(z−ā)].

    Real linear combinations of these basis functions are exactly the
    real-coefficient strictly proper rationals with the given poles, in
    both uses of the engine: frequency responses evaluated at [z = jω]
    and residue trajectories evaluated at real [z = x]. *)

val row : Complex.t array -> Complex.t -> Complex.t array
(** [row poles z] evaluates all [P] basis functions at [z]. *)

val table : Complex.t array -> Complex.t array -> Complex.t array array
(** [table poles points] is [row] per point: [table.(l).(p)]. *)

val residues_of_coeffs : Complex.t array -> float array -> Complex.t array
(** Convert real basis coefficients into complex residues per pole slot:
    a pair with coefficients [(c1, c2)] has residue [c1 + j·c2] at the
    positive-imaginary pole and the conjugate at its partner. *)

val coeffs_of_residues : Complex.t array -> Complex.t array -> float array
(** Inverse of {!residues_of_coeffs} (uses the positive-imaginary
    representative of each pair). *)

val state_matrices : Complex.t array -> Linalg.Mat.t * Linalg.Vec.t
(** The real block-diagonal realization [(A, b)] with [Σ c_p φ_p(z) =
    cᵀ(zI − A)⁻¹ b]: [a] for real poles, [[α β; −β α]] with [b = (2,0)ᵀ]
    for pairs. Used for pole relocation via eigenvalues. *)
