(** Fitted pole–residue models (possibly vector-valued: one residue set
    per element sharing a common pole set). *)

type t = {
  poles : Complex.t array;  (** normalized layout, see {!Pole} *)
  coeffs : float array array;  (** per element: real basis coefficients *)
  consts : float array;  (** per element: constant term [d] *)
  slopes : float array;  (** per element: linear term [h·z] *)
}

val n_elements : t -> int
val n_poles : t -> int

val eval : t -> elem:int -> Complex.t -> Complex.t
(** [d + h·z + Σ_p c_p φ_p(z)]. *)

val eval_real : t -> elem:int -> float -> float
(** Evaluate at a real point (state-space use); the result of a real
    model at a real point is real up to roundoff, the real part is
    returned. *)

val residues : t -> elem:int -> Complex.t array
(** Complex residues per pole slot for one element. *)

val rms_error : t -> points:Complex.t array -> data:Complex.t array array -> float
(** Root-mean-square absolute deviation over all elements and points. *)

val max_error : t -> points:Complex.t array -> data:Complex.t array array -> float

val pp : Format.formatter -> t -> unit
