type t = {
  poles : Complex.t array;
  coeffs : float array array;
  consts : float array;
  slopes : float array;
}

let n_elements t = Array.length t.coeffs
let n_poles t = Array.length t.poles

let eval t ~elem z =
  let phi = Basis.row t.poles z in
  let acc = ref { Complex.re = t.consts.(elem); im = 0.0 } in
  acc := Complex.add !acc (Complex.mul { Complex.re = t.slopes.(elem); im = 0.0 } z);
  Array.iteri
    (fun p c ->
      if c <> 0.0 then
        acc := Complex.add !acc { Complex.re = c *. phi.(p).Complex.re;
                                  im = c *. phi.(p).Complex.im })
    t.coeffs.(elem);
  !acc

let eval_real t ~elem x = (eval t ~elem { Complex.re = x; im = 0.0 }).Complex.re

let residues t ~elem = Basis.residues_of_coeffs t.poles t.coeffs.(elem)

let errors t ~points ~data =
  let e = n_elements t in
  if Array.length data <> e then invalid_arg "Model.errors: element count mismatch";
  let sum2 = ref 0.0 and count = ref 0 and worst = ref 0.0 in
  for el = 0 to e - 1 do
    Array.iteri
      (fun l z ->
        let d = Complex.norm (Complex.sub (eval t ~elem:el z) data.(el).(l)) in
        sum2 := !sum2 +. (d *. d);
        worst := Float.max !worst d;
        incr count)
      points
  done;
  (sqrt (!sum2 /. float_of_int (Stdlib.max 1 !count)), !worst)

let rms_error t ~points ~data = fst (errors t ~points ~data)
let max_error t ~points ~data = snd (errors t ~points ~data)

let pp ppf t =
  Format.fprintf ppf "@[<v>pole-residue model: %d poles, %d element(s)@,"
    (n_poles t) (n_elements t);
  Array.iteri
    (fun k a -> Format.fprintf ppf "  pole %d: %a@," k Linalg.Cx.pp a)
    t.poles;
  Format.fprintf ppf "@]"
