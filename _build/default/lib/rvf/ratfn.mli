(** Real rational residue functions and their closed-form antiderivatives.

    A state-domain VF model element is
    [r(x) = d + Σ_m (2c₁(x−β) − 2c₂α) / ((x−β)² + α²)]
    (conjugate pole pairs [β ± jα] — the paper's "complex pairs with a
    real part of opposite sign" in the [jx] variable). Its indefinite
    integral is compact and always exists (eq. (19) of the paper):

    [f(x) = d·x + Σ_m (c₁·ln((x−β)² + α²) − 2c₂·atan((x−β)/α)) + C]

    This closed form is what makes the RVF flow fully automated, in
    contrast to CAFFEINE's evolved expressions. *)

type pair_term = { beta : float; alpha : float; c1 : float; c2 : float }

type t = {
  pairs : pair_term array;
  const : float;  (** the constant term [d] of r(x) *)
  offset : float;  (** integration constant [C] of f(x) *)
}

exception Not_integrable of string
(** Raised by {!of_model} when the element has real poles on the state
    axis (the basis integral then has a singularity in range) or a slope
    term. *)

val of_model : Vf.Model.t -> elem:int -> t

val deriv : t -> float -> float
(** r(x). *)

val eval : t -> float -> float
(** f(x). *)

val set_value : t -> at:float -> value:float -> t
(** Pick the integration constant so that [f(at) = value] — the "constant
    found using the DC solution at t = 0". *)

val formula : t -> string
(** Human-readable analytical expression of f(x). *)

val to_static_fn : t -> Hammerstein.Static_fn.t
