type pair_term = { beta : float; alpha : float; c1 : float; c2 : float }

type t = { pairs : pair_term array; const : float; offset : float }

exception Not_integrable of string

let of_model (m : Vf.Model.t) ~elem =
  if m.Vf.Model.slopes.(elem) <> 0.0 then
    raise (Not_integrable "model has a linear slope term");
  let coeffs = m.Vf.Model.coeffs.(elem) in
  let pairs = ref [] in
  List.iter
    (fun slot ->
      match slot with
      | Vf.Pole.Single k ->
          if coeffs.(k) <> 0.0 then
            raise
              (Not_integrable
                 (Printf.sprintf "real pole %g on the state axis"
                    m.Vf.Model.poles.(k).Complex.re))
      | Vf.Pole.Pair_first k ->
          let a = m.Vf.Model.poles.(k) in
          pairs :=
            {
              beta = a.Complex.re;
              alpha = Float.abs a.Complex.im;
              c1 = coeffs.(k);
              c2 = coeffs.(k + 1);
            }
            :: !pairs)
    (Vf.Pole.structure m.Vf.Model.poles);
  {
    pairs = Array.of_list (List.rev !pairs);
    const = m.Vf.Model.consts.(elem);
    offset = 0.0;
  }

let deriv t x =
  let acc = ref t.const in
  Array.iter
    (fun { beta; alpha; c1; c2 } ->
      let dx = x -. beta in
      let den = (dx *. dx) +. (alpha *. alpha) in
      acc := !acc +. (((2.0 *. c1 *. dx) -. (2.0 *. c2 *. alpha)) /. den))
    t.pairs;
  !acc

let eval t x =
  let acc = ref (t.offset +. (t.const *. x)) in
  Array.iter
    (fun { beta; alpha; c1; c2 } ->
      let dx = x -. beta in
      let den = (dx *. dx) +. (alpha *. alpha) in
      acc :=
        !acc +. (c1 *. log den) -. (2.0 *. c2 *. atan (dx /. alpha)))
    t.pairs;
  !acc

let set_value t ~at ~value =
  let current = eval t at in
  { t with offset = t.offset +. value -. current }

let formula t =
  let buf = Buffer.create 256 in
  let first = ref true in
  let plus () =
    if !first then first := false else Buffer.add_string buf " + "
  in
  if t.offset <> 0.0 || Array.length t.pairs = 0 then begin
    plus ();
    Printf.bprintf buf "%.6g" t.offset
  end;
  if t.const <> 0.0 then begin
    plus ();
    Printf.bprintf buf "%.6g*x" t.const
  end;
  Array.iter
    (fun { beta; alpha; c1; c2 } ->
      if c1 <> 0.0 then begin
        plus ();
        Printf.bprintf buf "%.6g*ln((x%+.6g)^2 + %.6g)" c1 (-.beta)
          (alpha *. alpha)
      end;
      if c2 <> 0.0 then begin
        plus ();
        Printf.bprintf buf "%.6g*atan((x%+.6g)/%.6g)" (-2.0 *. c2) (-.beta) alpha
      end)
    t.pairs;
  Buffer.contents buf

let to_static_fn t =
  Hammerstein.Static_fn.make ~analytic:true ~formula:(formula t) ~eval:(eval t)
    ~deriv:(deriv t) ()
