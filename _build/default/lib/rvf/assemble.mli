(** Hammerstein assembly from a common frequency-pole set and integrated
    residue stages — shared by the RVF backend and the CAFFEINE baseline
    (which differ only in how the residue functions are regressed and
    integrated). *)

val hammerstein :
  name:string ->
  freq_poles:Complex.t array ->
  stage:(int -> Hammerstein.Static_fn.t) ->
  static_path:Hammerstein.Static_fn.t ->
  Hammerstein.Hmodel.t
(** [stage p] must return the integrated residue trace for pole slot [p]
    (already anchored so that it vanishes at the trajectory's DC starting
    point). Complex pole pairs are combined into the input-shifted
    second-order blocks of eq. (14). *)
