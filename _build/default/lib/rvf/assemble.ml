let hammerstein ~name ~freq_poles ~stage ~static_path =
  let branches = ref [] in
  List.iter
    (fun slot ->
      match slot with
      | Vf.Pole.Single k ->
          let a = freq_poles.(k).Complex.re in
          branches :=
            Hammerstein.Hmodel.First_order { a; f = stage k } :: !branches
      | Vf.Pole.Pair_first k ->
          let pole = freq_poles.(k) in
          let fa = stage k and fb = stage (k + 1) in
          (* input-shifted residues, eq. (14): f1 = F_re + F_im, f2 = F_re − F_im *)
          branches :=
            Hammerstein.Hmodel.Second_order
              {
                alpha = pole.Complex.re;
                beta = Float.abs pole.Complex.im;
                f1 = Hammerstein.Static_fn.add fa fb;
                f2 = Hammerstein.Static_fn.sub fa fb;
              }
            :: !branches)
    (Vf.Pole.structure freq_poles);
  Hammerstein.Hmodel.make ~name
    ~branches:(Array.of_list (List.rev !branches))
    ~static_path ()
