lib/rvf/ratfn.ml: Array Buffer Complex Float Hammerstein List Printf Vf
