lib/rvf/recursion.mli:
