lib/rvf/ratfn.mli: Hammerstein Vf
