lib/rvf/rvf.mli: Assemble Hammerstein Ratfn Recursion Tft Vf
