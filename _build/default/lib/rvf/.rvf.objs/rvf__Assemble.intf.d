lib/rvf/assemble.mli: Complex Hammerstein
