lib/rvf/recursion.ml: Array Complex Float List Stdlib Vf
