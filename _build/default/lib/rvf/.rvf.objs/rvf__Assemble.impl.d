lib/rvf/assemble.ml: Array Complex Float Hammerstein List Vf
