lib/rvf/rvf.ml: Array Assemble Complex Float Hammerstein Logs Ratfn Recursion Signal Stdlib Sys Tft Vf
