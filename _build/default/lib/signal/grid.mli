(** Sampling grids for time and frequency axes. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    Requires [n >= 2] (or [n = 1], returning [[|a|]]). *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] logarithmically spaced points from [a] to [b]
    inclusive; both endpoints must be positive. *)

val frequencies_hz : f_min:float -> f_max:float -> points:int -> float array
(** Log-spaced frequency grid in Hz. *)

val s_of_hz : float -> Complex.t
(** [s_of_hz f] is the Laplace variable [j·2πf] on the imaginary axis. *)

val omega_of_hz : float -> float
