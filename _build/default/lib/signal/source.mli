(** Time-domain excitation sources. A source is a total function of time. *)

type t = float -> float

val dc : float -> t
val sine : ?offset:float -> ?phase:float -> freq:float -> ampl:float -> unit -> t

val step : ?t0:float -> ?rise:float -> from:float -> to_:float -> unit -> t
(** Smooth (raised-cosine) step from [from] to [to_] starting at [t0]
    over [rise] seconds. [rise = 0] gives an ideal step. *)

val pulse :
  ?t0:float -> ?rise:float -> low:float -> high:float -> width:float ->
  period:float -> unit -> t

val pwl : (float * float) list -> t
(** Piecewise-linear source through the given (time, value) breakpoints,
    held constant outside the range. Breakpoints must be sorted by time. *)

val prbs_bits : seed:int -> length:int -> bool array
(** Deterministic pseudo-random bit sequence (7-bit LFSR, x^7+x^6+1). *)

val bit_pattern :
  ?t0:float -> ?rise:float -> bits:bool array -> rate:float -> low:float ->
  high:float -> unit -> t
(** NRZ bit pattern at [rate] bits/s with raised-cosine edges of duration
    [rise]; the "spectrally-rich bit pattern" test input of the paper. *)

val sample : t -> float array -> float array
