(** Sampled waveforms: a strictly increasing time axis with values. *)

type t = private { times : float array; values : float array }

val make : float array -> float array -> t
(** Raises [Invalid_argument] if lengths differ, fewer than one sample, or
    times are not strictly increasing. *)

val of_fun : (float -> float) -> float array -> t
val length : t -> int
val times : t -> float array
val values : t -> float array
val value_at : t -> float -> float
(** Linear interpolation; clamped at the ends. *)

val resample : t -> float array -> t
val map : (float -> float) -> t -> t
val sub_signal : t -> t -> t
(** Pointwise difference after resampling the second onto the first's axis. *)

val rmse : t -> t -> float
(** Root-mean-square difference, evaluated on the first waveform's axis. *)

val nrmse : t -> t -> float
(** RMSE normalized by the peak-to-peak range of the reference (first). *)

val peak_to_peak : t -> float
val pp : Format.formatter -> t -> unit
