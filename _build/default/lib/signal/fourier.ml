let two_pi = 2.0 *. Float.pi

(* trapezoidal ∫ y(t)·e^{−jωt} dt over [a, b] on a fine resampled grid *)
let correlate w ~freq ~a ~b =
  let n = 2048 in
  let omega = two_pi *. freq in
  let re = ref 0.0 and im = ref 0.0 in
  let dt = (b -. a) /. float_of_int n in
  for k = 0 to n do
    let t = a +. (float_of_int k *. dt) in
    let y = Waveform.value_at w t in
    let weight = if k = 0 || k = n then 0.5 else 1.0 in
    re := !re +. (weight *. y *. cos (omega *. t));
    im := !im -. (weight *. y *. sin (omega *. t))
  done;
  { Complex.re = 2.0 *. !re *. dt /. (b -. a); im = 2.0 *. !im *. dt /. (b -. a) }

let component w ~freq =
  let ts = Waveform.times w in
  correlate w ~freq ~a:ts.(0) ~b:ts.(Array.length ts - 1)

let analysis_window w ~f0 =
  let ts = Waveform.times w in
  let t_end = ts.(Array.length ts - 1) and t_start = ts.(0) in
  let period = 1.0 /. f0 in
  let periods = Float.to_int ((t_end -. t_start) /. period) in
  if periods < 2 then
    invalid_arg "Fourier: waveform shorter than two fundamental periods";
  (* use the trailing half (whole periods) to skip startup transients *)
  let use = Stdlib.max 1 (periods / 2) in
  (t_end -. (float_of_int use *. period), t_end)

let harmonics w ~f0 ~count =
  if count < 1 then invalid_arg "Fourier.harmonics: count must be >= 1";
  let a, b = analysis_window w ~f0 in
  Array.init count (fun k ->
      Complex.norm (correlate w ~freq:(float_of_int (k + 1) *. f0) ~a ~b))

let thd w ~f0 ?(harmonics_count = 5) () =
  let h = harmonics w ~f0 ~count:harmonics_count in
  let higher = ref 0.0 in
  for k = 1 to harmonics_count - 1 do
    higher := !higher +. (h.(k) *. h.(k))
  done;
  if h.(0) = 0.0 then invalid_arg "Fourier.thd: zero fundamental"
  else sqrt !higher /. h.(0)
