let linspace a b n =
  if n < 1 then invalid_arg "Grid.linspace: n must be >= 1";
  if n = 1 then [| a |]
  else
    Array.init n (fun k ->
        a +. ((b -. a) *. float_of_int k /. float_of_int (n - 1)))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Grid.logspace: endpoints must be > 0";
  Array.map Stdlib.exp (linspace (Stdlib.log a) (Stdlib.log b) n)

let frequencies_hz ~f_min ~f_max ~points = logspace f_min f_max points

let two_pi = 2.0 *. Float.pi

let omega_of_hz f = two_pi *. f
let s_of_hz f = { Complex.re = 0.0; im = two_pi *. f }
