type t = { times : float array; values : float array }

let make times values =
  let n = Array.length times in
  if n = 0 then invalid_arg "Waveform.make: empty";
  if Array.length values <> n then invalid_arg "Waveform.make: length mismatch";
  for k = 1 to n - 1 do
    if times.(k) <= times.(k - 1) then
      invalid_arg "Waveform.make: times must be strictly increasing"
  done;
  { times; values }

let of_fun f times = make times (Array.map f times)
let length w = Array.length w.times
let times w = w.times
let values w = w.values

let value_at w t =
  let n = Array.length w.times in
  if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = w.times.(!lo) and t1 = w.times.(!hi) in
    let v0 = w.values.(!lo) and v1 = w.values.(!hi) in
    v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let resample w times = make times (Array.map (value_at w) times)
let map f w = { w with values = Array.map f w.values }

let sub_signal a b =
  let bv = Array.map (value_at b) a.times in
  { times = a.times; values = Array.mapi (fun k v -> v -. bv.(k)) a.values }

let rmse a b =
  let d = sub_signal a b in
  let n = Array.length d.values in
  let acc = Array.fold_left (fun s x -> s +. (x *. x)) 0.0 d.values in
  sqrt (acc /. float_of_int n)

let peak_to_peak w =
  let mn = Array.fold_left Float.min Float.infinity w.values in
  let mx = Array.fold_left Float.max Float.neg_infinity w.values in
  mx -. mn

let nrmse a b =
  let range = peak_to_peak a in
  if range = 0.0 then rmse a b else rmse a b /. range

let pp ppf w =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k t -> Format.fprintf ppf "%.6e %.6e@," t w.values.(k))
    w.times;
  Format.fprintf ppf "@]"
