let db_floor = -400.0

let db20 x = if x = 0.0 then db_floor else 20.0 *. log10 (Float.abs x)
let db10 x = if x = 0.0 then db_floor else 10.0 *. log10 (Float.abs x)

let check a b =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg "Metrics: need equal nonempty arrays"

let rmse a b =
  check a b;
  let n = Array.length a in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    let d = a.(k) -. b.(k) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let rmse_complex a b =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg "Metrics.rmse_complex: need equal nonempty arrays";
  let n = Array.length a in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. Complex.norm2 (Complex.sub a.(k) b.(k))
  done;
  sqrt (!acc /. float_of_int n)

let max_abs_err a b =
  check a b;
  let best = ref 0.0 in
  for k = 0 to Array.length a - 1 do
    best := Float.max !best (Float.abs (a.(k) -. b.(k)))
  done;
  !best

let mean a =
  if Array.length a = 0 then invalid_arg "Metrics.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let relative_rmse ~reference a =
  check reference a;
  let rms_ref =
    sqrt
      (Array.fold_left (fun s x -> s +. (x *. x)) 0.0 reference
      /. float_of_int (Array.length reference))
  in
  if rms_ref = 0.0 then rmse reference a else rmse reference a /. rms_ref
