lib/signal/metrics.mli: Complex
