lib/signal/grid.ml: Array Complex Float Stdlib
