lib/signal/waveform.ml: Array Float Format
