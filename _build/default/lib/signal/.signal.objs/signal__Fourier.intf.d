lib/signal/fourier.mli: Complex Waveform
