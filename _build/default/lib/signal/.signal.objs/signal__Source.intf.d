lib/signal/source.mli:
