lib/signal/grid.mli: Complex
