lib/signal/source.ml: Array Float Stdlib
