lib/signal/metrics.ml: Array Complex Float
