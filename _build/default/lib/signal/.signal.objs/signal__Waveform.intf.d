lib/signal/waveform.mli: Format
