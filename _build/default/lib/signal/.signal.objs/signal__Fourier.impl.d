lib/signal/fourier.ml: Array Complex Float Stdlib Waveform
