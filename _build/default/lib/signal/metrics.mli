(** Scalar error metrics used throughout the evaluation. *)

val db20 : float -> float
(** [20·log10 |x|] with a floor at −400 dB for zero input. *)

val db10 : float -> float

val rmse : float array -> float array -> float
(** Root-mean-square difference of two equal-length sample sets. *)

val rmse_complex : Complex.t array -> Complex.t array -> float
val max_abs_err : float array -> float array -> float
val relative_rmse : reference:float array -> float array -> float
(** RMSE divided by the RMS of the reference. *)

val mean : float array -> float
