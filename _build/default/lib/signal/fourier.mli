(** Single-frequency Fourier analysis of waveforms (Goertzel-style direct
    correlation — no FFT needed for a handful of harmonics).

    Used to compare the harmonic content of the transistor-level circuit
    and the extracted Hammerstein model under sinusoidal drive: a
    behavioural model with the right static nonlinearity must reproduce
    the distortion products, not just the fundamental. *)

val component : Waveform.t -> freq:float -> Complex.t
(** Complex Fourier coefficient [2/T ∫ y(t)·e^{−j2πft} dt] over the
    waveform's span, trapezoidal quadrature on the sample grid. For a
    pure sinusoid [A·sin] at [freq] the modulus is [A]. *)

val harmonics : Waveform.t -> f0:float -> count:int -> float array
(** Amplitudes of the first [count] harmonics of [f0] ([index 0] is the
    fundamental). Uses an integer number of fundamental periods from the
    end of the waveform to avoid startup transients; raises
    [Invalid_argument] if the waveform is shorter than two periods. *)

val thd : Waveform.t -> f0:float -> ?harmonics_count:int -> unit -> float
(** Total harmonic distortion [√(Σ_{k≥2} A_k²) / A_1], default 5
    harmonics. *)
