type t = float -> float

let dc v = fun _ -> v

let sine ?(offset = 0.0) ?(phase = 0.0) ~freq ~ampl () =
  let w = 2.0 *. Float.pi *. freq in
  fun t -> offset +. (ampl *. sin ((w *. t) +. phase))

(* Raised-cosine ramp from 0 to 1 over [0, rise]. *)
let ramp rise t =
  if rise <= 0.0 then if t >= 0.0 then 1.0 else 0.0
  else if t <= 0.0 then 0.0
  else if t >= rise then 1.0
  else 0.5 *. (1.0 -. cos (Float.pi *. t /. rise))

let step ?(t0 = 0.0) ?(rise = 0.0) ~from ~to_ () =
 fun t -> from +. ((to_ -. from) *. ramp rise (t -. t0))

let pulse ?(t0 = 0.0) ?(rise = 0.0) ~low ~high ~width ~period () =
  if period <= 0.0 then invalid_arg "Source.pulse: period must be > 0";
  fun t ->
    let tau = Float.rem (t -. t0) period in
    let tau = if tau < 0.0 then tau +. period else tau in
    let up = ramp rise tau in
    let down = ramp rise (tau -. width) in
    low +. ((high -. low) *. (up -. down))

let pwl points =
  let pts = Array.of_list points in
  let n = Array.length pts in
  if n = 0 then invalid_arg "Source.pwl: empty breakpoint list";
  for k = 1 to n - 1 do
    if fst pts.(k) < fst pts.(k - 1) then
      invalid_arg "Source.pwl: breakpoints must be sorted by time"
  done;
  fun t ->
    if t <= fst pts.(0) then snd pts.(0)
    else if t >= fst pts.(n - 1) then snd pts.(n - 1)
    else begin
      (* binary search for the segment containing t *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if fst pts.(mid) <= t then lo := mid else hi := mid
      done;
      let t0, v0 = pts.(!lo) and t1, v1 = pts.(!hi) in
      if t1 = t0 then v1 else v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
    end

let prbs_bits ~seed ~length =
  let state = ref (if seed land 0x7f = 0 then 0x5a else seed land 0x7f) in
  Array.init length (fun _ ->
      let s = !state in
      let bit = (s lxor (s lsr 1)) land 1 in
      state := (s lsr 1) lor (bit lsl 6);
      s land 1 = 1)

let bit_pattern ?(t0 = 0.0) ?(rise = 0.0) ~bits ~rate ~low ~high () =
  if rate <= 0.0 then invalid_arg "Source.bit_pattern: rate must be > 0";
  let n = Array.length bits in
  if n = 0 then invalid_arg "Source.bit_pattern: empty pattern";
  let tbit = 1.0 /. rate in
  let level k = if bits.(Stdlib.max 0 (Stdlib.min (n - 1) k)) then high else low in
  fun t ->
    let tau = t -. t0 in
    if tau <= 0.0 then level 0
    else begin
      let k = int_of_float (Float.floor (tau /. tbit)) in
      if k >= n - 1 then
        (* last bit: still allow the final edge to complete *)
        let prev = level (n - 2) and cur = level (n - 1) in
        if n = 1 then cur
        else prev +. ((cur -. prev) *. ramp rise (tau -. (float_of_int (n - 1) *. tbit)))
      else begin
        let prev = if k = 0 then level 0 else level (k - 1) in
        let cur = level k in
        let in_bit = tau -. (float_of_int k *. tbit) in
        prev +. ((cur -. prev) *. ramp rise in_bit)
      end
    end

let sample src times = Array.map src times
