type t = { delays : float array }

let make ?(delays = []) () =
  List.iter
    (fun d -> if d <= 0.0 then invalid_arg "Estimator.make: delays must be > 0")
    delays;
  { delays = Array.of_list delays }

let dimension t = 1 + Array.length t.delays

let coords t ~u time =
  Array.init
    (1 + Array.length t.delays)
    (fun j -> if j = 0 then u time else u (time -. t.delays.(j - 1)))

let ambiguity ~xs ~values ~radius =
  let n = Array.length xs in
  if Array.length values <> n then invalid_arg "Estimator.ambiguity: lengths differ";
  let dist a b =
    let acc = ref 0.0 in
    Array.iteri (fun k x -> acc := !acc +. ((x -. b.(k)) ** 2.0)) a;
    sqrt !acc
  in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist xs.(i) xs.(j) <= radius then
        worst := Float.max !worst (Float.abs (values.(i) -. values.(j)))
    done
  done;
  !worst
