lib/tft/tpw.mli: Engine Signal
