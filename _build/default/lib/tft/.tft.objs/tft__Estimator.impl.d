lib/tft/estimator.ml: Array Float List
