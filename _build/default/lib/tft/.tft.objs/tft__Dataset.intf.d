lib/tft/dataset.mli: Complex Engine Estimator Linalg
