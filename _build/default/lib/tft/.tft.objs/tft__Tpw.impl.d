lib/tft/tpw.ml: Array Engine Float Linalg List Signal Stdlib
