lib/tft/estimator.mli:
