lib/tft/dataset.ml: Array Complex Engine Estimator Float Linalg List Signal
