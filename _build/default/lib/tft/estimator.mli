(** State estimators: the map from the input history onto the
    low-dimensional coordinate [x(t)] that parameterizes the trajectory,
    eq. (4) of the paper: [x(t) = (u(t), u(t−Δ), …, u(t−(q−1)Δ))]. *)

type t

val make : ?delays:float list -> unit -> t
(** [make ~delays ()] builds an estimator of dimension [1 + length delays]:
    the instantaneous input followed by one delayed copy per entry.
    [make ()] is the paper's validated case [x = u(t)]. Delays must be
    positive. *)

val dimension : t -> int

val coords : t -> u:(float -> float) -> float -> float array
(** [coords e ~u t] evaluates [x(t)] given the input signal. *)

val ambiguity :
  xs:float array array -> values:float array -> radius:float -> float
(** Diagnostic for estimator uniqueness (the "each state k is uniquely
    defined" requirement): the largest spread of [values] among sample
    pairs whose estimator coordinates lie within [radius] of each other.
    Large values mean the estimator dimension [q] is too small. *)
