type node = string

type wave =
  | Dc of float
  | Sine of { offset : float; ampl : float; freq : float; phase : float }
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
  | Bits of {
      low : float;
      high : float;
      rate : float;
      rise : float;
      bits : bool array;
    }
  | Ext of (float -> float)

type polarity = Nmos | Pmos

type mos_params = {
  kp : float;
  vth : float;
  lambda : float;
  w : float;
  l : float;
  cgs : float;
  cgd : float;
  cdb : float;
}

type diode_params = { i_sat : float; ideality : float; cj : float }
type junction_params = { cj0 : float; phi : float; m : float }
type bjt_polarity = Npn | Pnp

type bjt_params = {
  is_bjt : float;
  bf : float;
  br : float;
  cje : float;
  cjc : float;
}

type element =
  | Resistor of { p : node; n : node; ohms : float }
  | Capacitor of { p : node; n : node; farads : float }
  | Inductor of { p : node; n : node; henries : float }
  | Vsource of { p : node; n : node; wave : wave }
  | Isource of { p : node; n : node; wave : wave }
  | Vccs of { p : node; n : node; cp : node; cn : node; gm : float }
  | Vcvs of { p : node; n : node; cp : node; cn : node; gain : float }
  | Cccs of { p : node; n : node; vname : string; gain : float }
  | Diode of { p : node; n : node; params : diode_params }
  | Junction_cap of { p : node; n : node; params : junction_params }
  | Mosfet of {
      d : node;
      g : node;
      s : node;
      pol : polarity;
      params : mos_params;
    }
  | Bjt of {
      c : node;
      b : node;
      e : node;
      pol : bjt_polarity;
      params : bjt_params;
    }

type component = { name : string; element : element }
type t = { components : component list }

let ground = "0"
let is_ground n = n = "0" || String.lowercase_ascii n = "gnd"

let positive what x =
  if x <= 0.0 || not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Netlist: %s must be positive (got %g)" what x)

let resistor ~name p n ohms =
  positive (name ^ " resistance") ohms;
  { name; element = Resistor { p; n; ohms } }

let capacitor ~name p n farads =
  positive (name ^ " capacitance") farads;
  { name; element = Capacitor { p; n; farads } }

let inductor ~name p n henries =
  positive (name ^ " inductance") henries;
  { name; element = Inductor { p; n; henries } }

let vsource ~name p n wave = { name; element = Vsource { p; n; wave } }
let isource ~name p n wave = { name; element = Isource { p; n; wave } }

let vccs ~name p n ~cp ~cn ~gm = { name; element = Vccs { p; n; cp; cn; gm } }
let vcvs ~name p n ~cp ~cn ~gain = { name; element = Vcvs { p; n; cp; cn; gain } }
let cccs ~name p n ~vname ~gain = { name; element = Cccs { p; n; vname; gain } }

let default_diode = { i_sat = 1e-14; ideality = 1.0; cj = 0.0 }
let default_junction = { cj0 = 1e-12; phi = 0.7; m = 0.5 }

let default_nmos =
  {
    kp = 200e-6;
    vth = 0.4;
    lambda = 0.1;
    w = 10e-6;
    l = 0.13e-6;
    cgs = 10e-15;
    cgd = 3e-15;
    cdb = 5e-15;
  }

let default_pmos = { default_nmos with kp = 80e-6; vth = 0.45 }

let default_npn =
  { is_bjt = 1e-15; bf = 100.0; br = 2.0; cje = 50e-15; cjc = 20e-15 }

let default_pnp = { default_npn with bf = 50.0 }

let diode ~name ?(params = default_diode) p n () =
  { name; element = Diode { p; n; params } }

let junction_cap ~name ?(params = default_junction) p n () =
  { name; element = Junction_cap { p; n; params } }

let mosfet ~name ~d ~g ~s pol params =
  positive (name ^ " kp") params.kp;
  positive (name ^ " W") params.w;
  positive (name ^ " L") params.l;
  { name; element = Mosfet { d; g; s; pol; params } }

let bjt ~name ~c ~b ~e pol params =
  positive (name ^ " IS") params.is_bjt;
  positive (name ^ " BF") params.bf;
  positive (name ^ " BR") params.br;
  { name; element = Bjt { c; b; e; pol; params } }

let element_nodes = function
  | Resistor { p; n; _ }
  | Capacitor { p; n; _ }
  | Inductor { p; n; _ }
  | Vsource { p; n; _ }
  | Isource { p; n; _ }
  | Diode { p; n; _ }
  | Junction_cap { p; n; _ } -> [ p; n ]
  | Vccs { p; n; cp; cn; _ } | Vcvs { p; n; cp; cn; _ } -> [ p; n; cp; cn ]
  | Cccs { p; n; _ } -> [ p; n ]
  | Mosfet { d; g; s; _ } -> [ d; g; s ]
  | Bjt { c; b; e; _ } -> [ c; b; e ]

let make components =
  if components = [] then invalid_arg "Netlist.make: empty circuit";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Netlist.make: duplicate component %S" c.name);
      Hashtbl.add seen c.name ())
    components;
  let touches_ground =
    List.exists
      (fun c -> List.exists is_ground (element_nodes c.element))
      components
  in
  if not touches_ground then
    invalid_arg "Netlist.make: no component is connected to ground";
  { components }

let nodes t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter
        (fun n -> if not (is_ground n) then Hashtbl.replace tbl n ())
        (element_nodes c.element))
    t.components;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let component_count t = List.length t.components
let find t name = List.find_opt (fun c -> c.name = name) t.components

let wave_to_source = function
  | Dc v -> Signal.Source.dc v
  | Sine { offset; ampl; freq; phase } ->
      Signal.Source.sine ~offset ~phase ~freq ~ampl ()
  | Pulse { low; high; delay; rise; width; period } ->
      Signal.Source.pulse ~t0:delay ~rise ~low ~high ~width ~period ()
  | Pwl pts -> Signal.Source.pwl pts
  | Bits { low; high; rate; rise; bits } ->
      Signal.Source.bit_pattern ~rise ~bits ~rate ~low ~high ()
  | Ext f -> f

let pp_wave ppf = function
  | Dc v -> Format.fprintf ppf "DC %g" v
  | Sine { offset; ampl; freq; phase } ->
      Format.fprintf ppf "SIN(%g %g %g 0 0 %g)" offset ampl freq phase
  | Pulse { low; high; delay; rise; width; period } ->
      Format.fprintf ppf "PULSE(%g %g %g %g %g %g %g)" low high delay rise rise
        width period
  | Pwl pts ->
      Format.fprintf ppf "PWL(";
      List.iter (fun (t, v) -> Format.fprintf ppf "%g %g " t v) pts;
      Format.fprintf ppf ")"
  | Bits { low; high; rate; rise; bits } ->
      Format.fprintf ppf "BITS(%g %g %g %g " low high rate rise;
      Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) bits;
      Format.fprintf ppf ")"
  | Ext _ -> Format.fprintf ppf "EXT(<fun>)"

let pp_component ppf { name; element } =
  match element with
  | Resistor { p; n; ohms } ->
      Format.fprintf ppf "%s %s %s %s" name p n (Units.format_si ohms)
  | Capacitor { p; n; farads } ->
      Format.fprintf ppf "%s %s %s %s" name p n (Units.format_si farads)
  | Inductor { p; n; henries } ->
      Format.fprintf ppf "%s %s %s %s" name p n (Units.format_si henries)
  | Vsource { p; n; wave } ->
      Format.fprintf ppf "%s %s %s %a" name p n pp_wave wave
  | Isource { p; n; wave } ->
      Format.fprintf ppf "%s %s %s %a" name p n pp_wave wave
  | Vccs { p; n; cp; cn; gm } ->
      Format.fprintf ppf "%s %s %s %s %s %s" name p n cp cn (Units.format_si gm)
  | Vcvs { p; n; cp; cn; gain } ->
      Format.fprintf ppf "%s %s %s %s %s %g" name p n cp cn gain
  | Cccs { p; n; vname; gain } ->
      Format.fprintf ppf "%s %s %s %s %g" name p n vname gain
  | Diode { p; n; params } ->
      Format.fprintf ppf "%s %s %s IS=%g N=%g CJ=%g" name p n params.i_sat
        params.ideality params.cj
  | Junction_cap { p; n; params } ->
      Format.fprintf ppf "%s %s %s CJ0=%g PHI=%g M=%g" name p n params.cj0
        params.phi params.m
  | Mosfet { d; g; s; pol; params } ->
      Format.fprintf ppf "%s %s %s %s %s KP=%g VTH=%g LAMBDA=%g W=%g L=%g" name
        d g s
        (match pol with Nmos -> "NMOS" | Pmos -> "PMOS")
        params.kp params.vth params.lambda params.w params.l
  | Bjt { c; b; e; pol; params } ->
      Format.fprintf ppf "%s %s %s %s %s IS=%g BF=%g BR=%g CJE=%g CJC=%g" name c
        b e
        (match pol with Npn -> "NPN" | Pnp -> "PNP")
        params.is_bjt params.bf params.br params.cje params.cjc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_component c) t.components;
  Format.fprintf ppf "@]"
