lib/circuit/netlist.mli: Format Signal
