lib/circuit/units.ml: Float List Printf String
