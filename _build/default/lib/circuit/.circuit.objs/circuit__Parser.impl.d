lib/circuit/parser.ml: Array Buffer Char Float List Netlist Printf String Units
