lib/circuit/units.mli:
