(** SPICE-like netlist text parser.

    Supported grammar (case-insensitive keywords, one component per line,
    ['*'] comment lines, continuation with leading ['+']):

    {v
    R<name> n+ n- value
    C<name> n+ n- value
    L<name> n+ n- value
    V<name> n+ n- DC v | SIN(off ampl freq [delay damp phase])
                       | PULSE(low high delay rise fall width period)
                       | PWL(t1 v1 t2 v2 ...)
                       | BITS(low high rate rise 010110...)
    I<name> n+ n- <same waves>
    G<name> n+ n- cp cn gm          (VCCS)
    E<name> n+ n- cp cn gain        (VCVS)
    F<name> n+ n- vsrc gain         (CCCS, controlled by the current
                                     through voltage source vsrc)
    D<name> a k [IS=..] [N=..] [CJ=..]
    J<name> p n [CJ0=..] [PHI=..] [M=..]   (junction capacitor)
    Q<name> c b e NPN|PNP [IS=..] [BF=..] [BR=..] [CJE=..] [CJC=..]
    M<name> d g s NMOS|PMOS [KP=..] [VTH=..] [LAMBDA=..] [W=..] [L=..]
                            [CGS=..] [CGD=..] [CDB=..]
    .end  (optional)
    v} *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : string -> Netlist.t
val parse_file : string -> Netlist.t
