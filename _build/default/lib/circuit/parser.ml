exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* Tokenize a component line: split on whitespace, but keep parenthesized
   argument groups like SIN(0 1 1e6) as a single token. *)
let tokenize line_no s =
  let n = String.length s in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun _k c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          if !depth < 0 then fail line_no "unbalanced ')'";
          Buffer.add_char buf c
      | ' ' | '\t' when !depth = 0 -> flush ()
      | _ -> Buffer.add_char buf c)
    s;
  ignore n;
  if !depth <> 0 then fail line_no "unbalanced '('";
  flush ();
  List.rev !tokens

let number line_no s =
  match Units.parse s with
  | Some v -> v
  | None -> fail line_no "bad numeric value %S" s

(* Parse KEY=value assignments into an association list. *)
let parse_assigns line_no toks =
  List.map
    (fun t ->
      match String.index_opt t '=' with
      | Some k ->
          let key = String.uppercase_ascii (String.sub t 0 k) in
          let v = String.sub t (k + 1) (String.length t - k - 1) in
          (key, v)
      | None -> fail line_no "expected KEY=value, got %S" t)
    toks

let assign_float line_no assigns key default =
  match List.assoc_opt key assigns with
  | Some v -> number line_no v
  | None -> default

(* Parse a wave token sequence, e.g. ["DC"; "1.5"] or ["SIN(0 1 1e6)"]. *)
let parse_wave line_no toks =
  let inner tok prefix =
    let plen = String.length prefix in
    if
      String.length tok > plen + 1
      && String.uppercase_ascii (String.sub tok 0 plen) = prefix
      && tok.[plen] = '('
      && tok.[String.length tok - 1] = ')'
    then
      Some
        (String.sub tok (plen + 1) (String.length tok - plen - 2)
        |> String.split_on_char ' '
        |> List.filter (fun s -> s <> ""))
    else None
  in
  match toks with
  | [ "DC"; v ] | [ "dc"; v ] -> Netlist.Dc (number line_no v)
  | [ v ] when Units.parse v <> None && String.index_opt v '(' = None ->
      Netlist.Dc (number line_no v)
  | [ tok ] -> begin
      match inner tok "SIN" with
      | Some args -> begin
          let f = number line_no in
          match args with
          | [ off; ampl; freq ] ->
              Netlist.Sine { offset = f off; ampl = f ampl; freq = f freq; phase = 0.0 }
          | [ off; ampl; freq; _delay; _damp; phase ] ->
              Netlist.Sine
                {
                  offset = f off;
                  ampl = f ampl;
                  freq = f freq;
                  phase = f phase *. Float.pi /. 180.0;
                }
          | _ -> fail line_no "SIN expects 3 or 6 arguments"
        end
      | None -> begin
          match inner tok "PULSE" with
          | Some args -> begin
              let f = number line_no in
              match args with
              | [ low; high; delay; rise; _fall; width; period ] ->
                  Netlist.Pulse
                    {
                      low = f low;
                      high = f high;
                      delay = f delay;
                      rise = f rise;
                      width = f width;
                      period = f period;
                    }
              | _ -> fail line_no "PULSE expects 7 arguments"
            end
          | None -> begin
              match inner tok "PWL" with
              | Some args ->
                  let vals = List.map (number line_no) args in
                  let rec pair = function
                    | [] -> []
                    | t :: v :: rest -> (t, v) :: pair rest
                    | [ _ ] -> fail line_no "PWL expects an even argument count"
                  in
                  Netlist.Pwl (pair vals)
              | None -> begin
                  match inner tok "BITS" with
                  | Some [ low; high; rate; rise; pattern ] ->
                      let bits =
                        Array.init (String.length pattern) (fun k ->
                            match pattern.[k] with
                            | '0' -> false
                            | '1' -> true
                            | c -> fail line_no "bad bit %C in BITS pattern" c)
                      in
                      Netlist.Bits
                        {
                          low = number line_no low;
                          high = number line_no high;
                          rate = number line_no rate;
                          rise = number line_no rise;
                          bits;
                        }
                  | Some _ -> fail line_no "BITS expects 5 arguments"
                  | None -> fail line_no "unrecognized source wave %S" tok
                end
            end
        end
    end
  | _ -> fail line_no "unrecognized source specification"

let parse_component line_no toks =
  match toks with
  | [] -> None
  | name :: rest ->
      let kind = Char.uppercase_ascii name.[0] in
      let comp =
        match (kind, rest) with
        | 'R', [ p; n; v ] -> Netlist.resistor ~name p n (number line_no v)
        | 'C', [ p; n; v ] -> Netlist.capacitor ~name p n (number line_no v)
        | 'L', [ p; n; v ] -> Netlist.inductor ~name p n (number line_no v)
        | 'V', p :: n :: wave -> Netlist.vsource ~name p n (parse_wave line_no wave)
        | 'I', p :: n :: wave -> Netlist.isource ~name p n (parse_wave line_no wave)
        | 'G', [ p; n; cp; cn; gm ] ->
            Netlist.vccs ~name p n ~cp ~cn ~gm:(number line_no gm)
        | 'E', [ p; n; cp; cn; gain ] ->
            Netlist.vcvs ~name p n ~cp ~cn ~gain:(number line_no gain)
        | 'F', [ p; n; vname; gain ] ->
            Netlist.cccs ~name p n ~vname ~gain:(number line_no gain)
        | 'D', p :: n :: assigns ->
            let kv = parse_assigns line_no assigns in
            let d = Netlist.default_diode in
            let params =
              {
                Netlist.i_sat = assign_float line_no kv "IS" d.Netlist.i_sat;
                ideality = assign_float line_no kv "N" d.Netlist.ideality;
                cj = assign_float line_no kv "CJ" d.Netlist.cj;
              }
            in
            Netlist.diode ~name ~params p n ()
        | 'J', p :: n :: assigns ->
            let kv = parse_assigns line_no assigns in
            let d = Netlist.default_junction in
            let params =
              {
                Netlist.cj0 = assign_float line_no kv "CJ0" d.Netlist.cj0;
                phi = assign_float line_no kv "PHI" d.Netlist.phi;
                m = assign_float line_no kv "M" d.Netlist.m;
              }
            in
            Netlist.junction_cap ~name ~params p n ()
        | 'Q', c :: b :: e :: pol :: assigns ->
            let polarity =
              match String.uppercase_ascii pol with
              | "NPN" -> Netlist.Npn
              | "PNP" -> Netlist.Pnp
              | other -> fail line_no "expected NPN or PNP, got %S" other
            in
            let base =
              match polarity with
              | Netlist.Npn -> Netlist.default_npn
              | Netlist.Pnp -> Netlist.default_pnp
            in
            let kv = parse_assigns line_no assigns in
            let params =
              {
                Netlist.is_bjt = assign_float line_no kv "IS" base.Netlist.is_bjt;
                bf = assign_float line_no kv "BF" base.Netlist.bf;
                br = assign_float line_no kv "BR" base.Netlist.br;
                cje = assign_float line_no kv "CJE" base.Netlist.cje;
                cjc = assign_float line_no kv "CJC" base.Netlist.cjc;
              }
            in
            Netlist.bjt ~name ~c ~b ~e polarity params
        | 'M', d :: g :: s :: pol :: assigns ->
            let polarity =
              match String.uppercase_ascii pol with
              | "NMOS" -> Netlist.Nmos
              | "PMOS" -> Netlist.Pmos
              | other -> fail line_no "expected NMOS or PMOS, got %S" other
            in
            let base =
              match polarity with
              | Netlist.Nmos -> Netlist.default_nmos
              | Netlist.Pmos -> Netlist.default_pmos
            in
            let kv = parse_assigns line_no assigns in
            let params =
              {
                Netlist.kp = assign_float line_no kv "KP" base.Netlist.kp;
                vth = assign_float line_no kv "VTH" base.Netlist.vth;
                lambda = assign_float line_no kv "LAMBDA" base.Netlist.lambda;
                w = assign_float line_no kv "W" base.Netlist.w;
                l = assign_float line_no kv "L" base.Netlist.l;
                cgs = assign_float line_no kv "CGS" base.Netlist.cgs;
                cgd = assign_float line_no kv "CGD" base.Netlist.cgd;
                cdb = assign_float line_no kv "CDB" base.Netlist.cdb;
              }
            in
            Netlist.mosfet ~name ~d ~g ~s polarity params
        | _ -> fail line_no "cannot parse component line starting with %S" name
      in
      Some comp

let parse_string text =
  let raw_lines = String.split_on_char '\n' text in
  (* join continuation lines (leading '+') onto their predecessor *)
  let joined =
    List.fold_left
      (fun acc (line_no, line) ->
        let trimmed = String.trim line in
        if String.length trimmed > 0 && trimmed.[0] = '+' then begin
          match acc with
          | (n0, prev) :: rest ->
              (n0, prev ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1))
              :: rest
          | [] -> raise (Parse_error (line_no, "continuation with no previous line"))
        end
        else (line_no, trimmed) :: acc)
      []
      (List.mapi (fun k l -> (k + 1, l)) raw_lines)
    |> List.rev
  in
  let components =
    List.filter_map
      (fun (line_no, line) ->
        if line = "" || line.[0] = '*' then None
        else if line.[0] = '.' then begin
          match String.lowercase_ascii line with
          | ".end" | ".ends" -> None
          | _ -> fail line_no "unsupported directive %S" line
        end
        else parse_component line_no (tokenize line_no line))
      joined
  in
  Netlist.make components

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
