(** Circuit netlists: typed components on named nodes.

    Node ["0"] (alias ["gnd"]) is the ground reference. All device
    constitutive relations live in {!Device}; this module is pure data. *)

type node = string

(** Time-dependent source description. *)
type wave =
  | Dc of float
  | Sine of { offset : float; ampl : float; freq : float; phase : float }
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
  | Bits of {
      low : float;
      high : float;
      rate : float;
      rise : float;
      bits : bool array;
    }
  | Ext of (float -> float)  (** programmatic source; not printable *)

type polarity = Nmos | Pmos

(** Level-1 (Shichman–Hodges) MOSFET parameters. [kp] is the
    transconductance parameter (µ·Cox, A/V²); the device current scales
    with [w /. l]. Capacitances are lumped constants. *)
type mos_params = {
  kp : float;
  vth : float;  (** threshold; positive for NMOS, given as positive for PMOS too *)
  lambda : float;  (** channel-length modulation, 1/V *)
  w : float;
  l : float;
  cgs : float;
  cgd : float;
  cdb : float;
}

type diode_params = {
  i_sat : float;
  ideality : float;
  cj : float;  (** fixed junction capacitance; 0 for none *)
}

type junction_params = {
  cj0 : float;  (** zero-bias capacitance *)
  phi : float;  (** built-in potential *)
  m : float;  (** grading coefficient *)
}

type bjt_polarity = Npn | Pnp

(** Ebers–Moll (transport formulation) bipolar transistor parameters. *)
type bjt_params = {
  is_bjt : float;  (** transport saturation current *)
  bf : float;  (** forward beta *)
  br : float;  (** reverse beta *)
  cje : float;  (** base–emitter capacitance (constant) *)
  cjc : float;  (** base–collector capacitance (constant) *)
}

type element =
  | Resistor of { p : node; n : node; ohms : float }
  | Capacitor of { p : node; n : node; farads : float }
  | Inductor of { p : node; n : node; henries : float }
  | Vsource of { p : node; n : node; wave : wave }
  | Isource of { p : node; n : node; wave : wave }
  | Vccs of { p : node; n : node; cp : node; cn : node; gm : float }
  | Vcvs of { p : node; n : node; cp : node; cn : node; gain : float }
      (** ideal voltage amplifier; adds one branch current unknown *)
  | Cccs of { p : node; n : node; vname : string; gain : float }
      (** current amplifier controlled by the current through the named
          voltage source *)
  | Diode of { p : node; n : node; params : diode_params }
  | Junction_cap of { p : node; n : node; params : junction_params }
  | Mosfet of {
      d : node;
      g : node;
      s : node;
      pol : polarity;
      params : mos_params;
    }
  | Bjt of {
      c : node;
      b : node;
      e : node;
      pol : bjt_polarity;
      params : bjt_params;
    }

type component = { name : string; element : element }

type t = { components : component list }

val ground : node
val is_ground : node -> bool

(** {2 Smart constructors} *)

val resistor : name:string -> node -> node -> float -> component
val capacitor : name:string -> node -> node -> float -> component
val inductor : name:string -> node -> node -> float -> component
val vsource : name:string -> node -> node -> wave -> component
val isource : name:string -> node -> node -> wave -> component
val vccs : name:string -> node -> node -> cp:node -> cn:node -> gm:float -> component
val vcvs : name:string -> node -> node -> cp:node -> cn:node -> gain:float -> component
val cccs : name:string -> node -> node -> vname:string -> gain:float -> component
val diode : name:string -> ?params:diode_params -> node -> node -> unit -> component
val junction_cap :
  name:string -> ?params:junction_params -> node -> node -> unit -> component

val mosfet :
  name:string -> d:node -> g:node -> s:node -> polarity -> mos_params -> component

val bjt :
  name:string -> c:node -> b:node -> e:node -> bjt_polarity -> bjt_params ->
  component

val default_diode : diode_params
val default_junction : junction_params
val default_nmos : mos_params
(** A representative short-channel-ish NMOS: kp=200µ, vth=0.4 V,
    λ=0.1 /V, W/L = 10µ/0.13µ, small fixed capacitances. *)

val default_pmos : mos_params
val default_npn : bjt_params
val default_pnp : bjt_params

(** {2 Assembly and queries} *)

val make : component list -> t
(** Validates: unique names, at least one ground connection, positive
    element values where required. Raises [Invalid_argument] otherwise. *)

val nodes : t -> node list
(** All non-ground nodes, sorted, deduplicated. *)

val component_count : t -> int
val find : t -> string -> component option
val wave_to_source : wave -> Signal.Source.t
val pp : Format.formatter -> t -> unit
