let suffix_value s =
  match s with
  | "f" -> Some 1e-15
  | "p" -> Some 1e-12
  | "n" -> Some 1e-9
  | "u" -> Some 1e-6
  | "m" -> Some 1e-3
  | "k" -> Some 1e3
  | "meg" -> Some 1e6
  | "g" -> Some 1e9
  | "t" -> Some 1e12
  | _ -> None

let parse raw =
  let s = String.lowercase_ascii (String.trim raw) in
  if s = "" then None
  else begin
    (* split leading numeric part from the alphabetic tail *)
    let n = String.length s in
    let is_num_char k c =
      match c with
      | '0' .. '9' | '.' | '+' | '-' -> true
      | 'e' ->
          (* exponent only if followed by digit or sign *)
          k + 1 < n
          && (match s.[k + 1] with '0' .. '9' | '+' | '-' -> true | _ -> false)
      | _ -> false
    in
    let stop = ref 0 in
    (try
       for k = 0 to n - 1 do
         if is_num_char k s.[k] then incr stop else raise Exit
       done
     with Exit -> ());
    (* the exponent digits after 'e' are included by is_num_char only when
       'e' was accepted; extend over them *)
    let num = String.sub s 0 !stop in
    let tail = String.sub s !stop (n - !stop) in
    match float_of_string_opt num with
    | None -> None
    | Some base ->
        if tail = "" then Some base
        else if String.length tail >= 3 && String.sub tail 0 3 = "meg" then
          Some (base *. 1e6)
        else begin
          match suffix_value (String.sub tail 0 1) with
          | Some m -> Some (base *. m)
          | None -> Some base (* bare unit like "10v" *)
        end
  end

let parse_exn s =
  match parse s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Units.parse_exn: bad number %S" s)

let format_si x =
  if x = 0.0 then "0"
  else begin
    let ax = Float.abs x in
    let pick (scale, _suff) = ax >= scale && ax < scale *. 1e3 in
    let table =
      [ (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
        (1.0, ""); (1e3, "k"); (1e6, "meg"); (1e9, "g"); (1e12, "t") ]
    in
    match List.find_opt pick table with
    | Some (scale, suff) -> Printf.sprintf "%g%s" (x /. scale) suff
    | None -> Printf.sprintf "%g" x
  end
