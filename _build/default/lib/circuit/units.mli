(** SPICE-style numeric literals with magnitude suffixes. *)

val parse : string -> float option
(** Parse ["4.7k"], ["1meg"], ["10p"], ["2.5e9"], ... Recognized suffixes
    (case-insensitive): f p n u m k meg g t. Trailing unit letters after
    the suffix are ignored (["10pF"], ["1kOhm"]). *)

val parse_exn : string -> float

val format_si : float -> string
(** Pretty-print with an engineering suffix, e.g. [2.2e-12 -> "2.2p"]. *)
