type params = {
  vdd : float;
  vbias : float;
  vref : float;
  rload : float;
  rgate : float;
  pair_w : float;
  tail_w : float;
  follower_w : float;
  length : float;
  cload : float;
}

let default_params =
  {
    vdd = 2.5;
    vbias = 0.6;
    vref = 0.9;
    rload = 470.0;
    rgate = 50.0;
    pair_w = 24e-6;
    tail_w = 75e-6;
    follower_w = 24e-6;
    length = 0.5e-6;
    cload = 20e-15;
  }

let input_name = "Vin"
let output = Engine.Mna.Diff ("out4p", "out4n")

let nmos p w =
  {
    Circuit.Netlist.kp = 200e-6;
    vth = 0.4;
    lambda = 0.08;
    w;
    l = p.length;
    cgs = 30e-15;
    cgd = 10e-15;
    cdb = 15e-15;
  }

let junction = { Circuit.Netlist.cj0 = 35e-15; phi = 0.7; m = 0.5 }

(* One differential stage: gate wiring resistors, NMOS pair with a
   transistor tail sink, resistive loads with junction capacitance, and
   NMOS source followers with transistor bias sinks. 7 transistors and
   13 components per stage. *)
let stage p idx ~inp ~inn =
  let s fmt = Printf.sprintf fmt idx in
  let gp = s "g%dp" and gn = s "g%dn" in
  let d1 = s "d%dp" and d2 = s "d%dn" in
  let tail = s "s%d" in
  let op = s "out%dp" and on = s "out%dn" in
  let pair = nmos p p.pair_w in
  let tail_dev = nmos p p.tail_w in
  let fol = nmos p p.follower_w in
  let module N = Circuit.Netlist in
  ( [
      N.resistor ~name:(s "Rg%dp") inp gp p.rgate;
      N.resistor ~name:(s "Rg%dn") inn gn p.rgate;
      N.mosfet ~name:(s "M%dp") ~d:d1 ~g:gp ~s:tail N.Nmos pair;
      N.mosfet ~name:(s "M%dn") ~d:d2 ~g:gn ~s:tail N.Nmos pair;
      N.mosfet ~name:(s "M%dt") ~d:tail ~g:"vbn" ~s:"0" N.Nmos tail_dev;
      N.resistor ~name:(s "Rl%dp") "vdd" d1 p.rload;
      N.resistor ~name:(s "Rl%dn") "vdd" d2 p.rload;
      N.junction_cap ~name:(s "Qj%dp") ~params:junction "0" d1 ();
      N.junction_cap ~name:(s "Qj%dn") ~params:junction "0" d2 ();
      N.mosfet ~name:(s "M%dfp") ~d:"vdd" ~g:d1 ~s:op N.Nmos fol;
      N.mosfet ~name:(s "M%dfn") ~d:"vdd" ~g:d2 ~s:on N.Nmos fol;
      N.mosfet ~name:(s "M%dbp") ~d:op ~g:"vbn" ~s:"0" N.Nmos tail_dev;
      N.mosfet ~name:(s "M%dbn") ~d:on ~g:"vbn" ~s:"0" N.Nmos tail_dev;
    ],
    (* crossed outputs restore signal polarity stage over stage *)
    (op, on) )

let netlist ?(params = default_params) ?input_wave () =
  let p = params in
  let module N = Circuit.Netlist in
  let wave =
    match input_wave with
    | Some w -> w
    | None -> N.Dc p.vref
  in
  let globals =
    [
      N.vsource ~name:"Vdd" "vdd" "0" (N.Dc p.vdd);
      N.vsource ~name:"Vbn" "vbn" "0" (N.Dc p.vbias);
      N.vsource ~name:"Vref" "ref" "0" (N.Dc p.vref);
      N.vsource ~name:input_name "in" "0" wave;
    ]
  in
  let st1, (o1p, o1n) = stage p 1 ~inp:"in" ~inn:"ref" in
  let st2, (o2p, o2n) = stage p 2 ~inp:o1p ~inn:o1n in
  let st3, (o3p, o3n) = stage p 3 ~inp:o2p ~inn:o2n in
  let st4, (o4p, o4n) = stage p 4 ~inp:o3p ~inn:o3n in
  let loads =
    [
      N.capacitor ~name:"Clp" o4p "0" p.cload;
      N.capacitor ~name:"Cln" o4n "0" p.cload;
    ]
  in
  N.make (globals @ st1 @ st2 @ st3 @ st4 @ loads)

let mna ?params ?input_wave () =
  Engine.Mna.build ~inputs:[ input_name ] ~outputs:[ output ]
    (netlist ?params ?input_wave ())

let training_wave ?(freq = 1e6) ?(ampl = 0.5) ?(offset = 0.9) () =
  Circuit.Netlist.Sine { offset; ampl; freq; phase = -.Float.pi /. 2.0 }

let bit_wave ?(rate = 2.5e9) ?(seed = 23) ?(length = 32) () =
  Circuit.Netlist.Bits
    {
      low = 0.4;
      high = 1.4;
      rate;
      rise = 0.25 /. rate;
      bits = Signal.Source.prbs_bits ~seed ~length;
    }

let transistor_count (nl : Circuit.Netlist.t) =
  List.length
    (List.filter
       (fun (c : Circuit.Netlist.component) ->
         match c.element with
         | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ -> true
         | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
         | Circuit.Netlist.Inductor _ | Circuit.Netlist.Vsource _
         | Circuit.Netlist.Isource _ | Circuit.Netlist.Vccs _
         | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
         | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _ -> false)
       nl.Circuit.Netlist.components)
