(** Small example circuits used by tests, examples and benches. Each
    returns a netlist plus the designated SISO input/output, ready for
    {!Engine.Mna.build}. *)

val clipper : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** Series resistor into a diode/capacitor clamp: the simplest circuit
    with both static (diode I–V) and dynamic (RC) nonlinear behaviour. *)

val clipper_input : string
val clipper_output : Engine.Mna.output

val rc_ladder : ?stages:int -> ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** Linear RC ladder — a sanity case where one trajectory snapshot
    already captures everything (the residues are state-independent). *)

val rc_input : string
val rc_output : Engine.Mna.output

val gm_stage : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A single resistively loaded differential pair (one slice of the
    output buffer). *)

val gm_input : string
val gm_output : Engine.Mna.output

val bjt_amp : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A bipolar common-emitter stage with emitter degeneration — exercises
    the Ebers–Moll device in the extraction flow. *)

val bjt_input : string
val bjt_output : Engine.Mna.output

val lc_ladder : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A 5th-order doubly terminated LC lowpass ladder (Butterworth-ish,
    ~1 MHz corner) — a resonant passive network whose frequency response
    exercises vector fitting with genuinely complex pole pairs. *)

val lc_input : string
val lc_output : Engine.Mna.output
