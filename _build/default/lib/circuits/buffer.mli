(** The high-speed output buffer of Section IV, rebuilt with level-1
    devices.

    The paper's circuit (a post-amplifier for an optical transimpedance
    amplifier in UMC 0.13 µm: 4 differential stages, 27 transistors,
    ~70 components, 3 GHz bandwidth, DC gain 2) is proprietary; this is
    a behaviourally equivalent substitute: a chain of 4 resistively
    loaded NMOS differential pairs with source-follower level shifters,
    transistor tail/bias current sinks, junction capacitances on the
    high-impedance nodes, and wiring resistances — 28 transistors and
    ~66 components. The input range 0.4–1.4 V matches the paper's
    state-space axis, the small-signal gain is ≈ 2 and the bandwidth is
    GHz-class; large inputs drive the pairs into hard saturation. *)

type params = {
  vdd : float;
  vbias : float;  (** gate bias of the tail/bias current sinks *)
  vref : float;  (** reference input level = center of the input range *)
  rload : float;  (** drain load resistance per side *)
  rgate : float;  (** wiring resistance in series with each gate *)
  pair_w : float;
  tail_w : float;
  follower_w : float;
  length : float;
  cload : float;  (** lumped load at the final outputs *)
}

val default_params : params

val netlist : ?params:params -> ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t

val input_name : string
(** The designated input source ("Vin"). *)

val output : Engine.Mna.output
(** Differential output of the fourth stage. *)

val mna : ?params:params -> ?input_wave:Circuit.Netlist.wave -> unit -> Engine.Mna.t

val training_wave :
  ?freq:float -> ?ampl:float -> ?offset:float -> unit -> Circuit.Netlist.wave
(** The paper's training excitation: one low-frequency high-amplitude
    sine spanning the 0.4–1.4 V input range (defaults: 50 MHz, 0.5 V
    amplitude around 0.9 V). *)

val bit_wave :
  ?rate:float -> ?seed:int -> ?length:int -> unit -> Circuit.Netlist.wave
(** The spectrally-rich validation input: a PRBS NRZ pattern (default
    2.5 GS/s as in the paper) across the same voltage range. *)

val transistor_count : Circuit.Netlist.t -> int
