lib/circuits/library.mli: Circuit Engine
