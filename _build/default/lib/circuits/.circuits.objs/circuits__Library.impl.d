lib/circuits/library.ml: Circuit Engine List Printf
