lib/circuits/buffer.ml: Circuit Engine Float List Printf Signal
