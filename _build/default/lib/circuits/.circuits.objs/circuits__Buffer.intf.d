lib/circuits/buffer.mli: Circuit Engine
