module N = Circuit.Netlist

let default_wave = N.Dc 0.0

let clipper ?(input_wave = default_wave) () =
  N.make
    [
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.resistor ~name:"R1" "in" "out" 200.0;
      N.diode ~name:"D1"
        ~params:{ N.i_sat = 1e-9; ideality = 1.8; cj = 0.0 }
        "out" "0" ();
      N.capacitor ~name:"C1" "out" "0" 100e-12;
    ]

let clipper_input = "Vin"
let clipper_output = Engine.Mna.Node "out"

let rc_ladder ?(stages = 3) ?(input_wave = default_wave) () =
  if stages < 1 then invalid_arg "rc_ladder: stages must be >= 1";
  let comps = ref [ N.vsource ~name:"Vin" "n0" "0" input_wave ] in
  for k = 1 to stages do
    let prev = Printf.sprintf "n%d" (k - 1) in
    let cur = Printf.sprintf "n%d" k in
    comps :=
      N.capacitor ~name:(Printf.sprintf "C%d" k) cur "0" 1e-9
      :: N.resistor ~name:(Printf.sprintf "R%d" k) prev cur 1e3
      :: !comps
  done;
  N.make (List.rev !comps)

let rc_input = "Vin"
let rc_output = Engine.Mna.Node "n3"

let gm_stage ?(input_wave = default_wave) () =
  let pair =
    {
      N.kp = 200e-6;
      vth = 0.4;
      lambda = 0.08;
      w = 24e-6;
      l = 0.5e-6;
      cgs = 30e-15;
      cgd = 10e-15;
      cdb = 15e-15;
    }
  in
  let tail = { pair with N.w = 75e-6 } in
  N.make
    [
      N.vsource ~name:"Vdd" "vdd" "0" (N.Dc 2.5);
      N.vsource ~name:"Vbn" "vbn" "0" (N.Dc 0.6);
      N.vsource ~name:"Vref" "ref" "0" (N.Dc 0.9);
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.mosfet ~name:"M1" ~d:"dp" ~g:"in" ~s:"tail" N.Nmos pair;
      N.mosfet ~name:"M2" ~d:"dn" ~g:"ref" ~s:"tail" N.Nmos pair;
      N.mosfet ~name:"Mt" ~d:"tail" ~g:"vbn" ~s:"0" N.Nmos tail;
      N.resistor ~name:"Rlp" "vdd" "dp" 550.0;
      N.resistor ~name:"Rln" "vdd" "dn" 550.0;
      N.capacitor ~name:"Cp" "dp" "0" 50e-15;
      N.capacitor ~name:"Cn" "dn" "0" 50e-15;
    ]

let gm_input = "Vin"
let gm_output = Engine.Mna.Diff ("dn", "dp")

let bjt_amp ?(input_wave = default_wave) () =
  N.make
    [
      N.vsource ~name:"Vcc" "vcc" "0" (N.Dc 5.0);
      N.vsource ~name:"Vin" "b" "0" input_wave;
      N.bjt ~name:"Q1" ~c:"c" ~b:"b" ~e:"e" N.Npn N.default_npn;
      N.resistor ~name:"Rc" "vcc" "c" 2e3;
      N.resistor ~name:"Re" "e" "0" 200.0;
      N.capacitor ~name:"Cl" "c" "0" 2e-12;
    ]

let bjt_input = "Vin"
let bjt_output = Engine.Mna.Node "c"

let lc_ladder ?(input_wave = default_wave) () =
  (* 5th-order Butterworth lowpass, 1 MHz corner, 50-ohm terminations *)
  N.make
    [
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.resistor ~name:"Rs" "in" "n1" 50.0;
      N.capacitor ~name:"C1" "n1" "0" 1.967e-9;
      N.inductor ~name:"L2" "n1" "n2" 12.88e-6;
      N.capacitor ~name:"C3" "n2" "0" 6.366e-9;
      N.inductor ~name:"L4" "n2" "n3" 12.88e-6;
      N.capacitor ~name:"C5" "n3" "0" 1.967e-9;
      N.resistor ~name:"Rl" "n3" "0" 50.0;
    ]

let lc_input = "Vin"
let lc_output = Engine.Mna.Node "n3"
