type config = {
  rvf : Rvf.config;
  gp : Gp.params;
  fallback_grid : int;
}

let default_config =
  { rvf = Rvf.default_config; gp = Gp.default_params; fallback_grid = 400 }

type result = {
  model : Hammerstein.Hmodel.t;
  freq_model : Vf.Model.t;
  freq_info : Vf.Vfit.info;
  trace_fits : Gp.fitted array;
  static_fit : Gp.fitted;
  integrable_terms : int;
  total_terms : int;
  automated : bool;
  build_seconds : float;
}

(* Integrate a fitted canonical-form expression. Returns the static stage
   plus the per-term integrability bookkeeping. *)
let integrate_fit ~lo ~hi ~grid (fit : Gp.fitted) =
  let integrals =
    Array.map (fun term -> Cexpr.integrate_term term) fit.Gp.terms
  in
  let integrable =
    Array.for_all (fun (i, _) -> Option.is_some i) integrals
  in
  let n_ok =
    Array.fold_left
      (fun acc (i, _) -> acc + if Option.is_some i then 1 else 0)
      0 integrals
  in
  let deriv x = Gp.eval fit x in
  let static =
    if integrable then begin
      let closures =
        Array.map
          (fun (i, _) -> match i with Some f -> f | None -> assert false)
          integrals
      in
      let eval x =
        let acc = ref (fit.Gp.weights.(0) *. x) in
        Array.iteri
          (fun j f -> acc := !acc +. (fit.Gp.weights.(j + 1) *. f x))
          closures;
        !acc
      in
      let formula =
        let buf = Buffer.create 128 in
        Printf.bprintf buf "%.6g*x" fit.Gp.weights.(0);
        Array.iteri
          (fun j (_, s) -> Printf.bprintf buf " %+.6g*[%s]" fit.Gp.weights.(j + 1) s)
          integrals;
        Buffer.contents buf
      in
      Hammerstein.Static_fn.make ~analytic:true ~formula ~eval ~deriv ()
    end
    else begin
      (* numeric fallback: tabulate the GP model and integrate the table *)
      let xs = Array.init grid (fun k ->
          lo +. ((hi -. lo) *. float_of_int k /. float_of_int (grid - 1)))
      in
      let rs = Array.map deriv xs in
      Hammerstein.Static_fn.of_samples_numeric ~xs ~rs
    end
  in
  (static, n_ok, Array.length integrals, integrable)

let anchor fn ~at ~value =
  let shift = value -. fn.Hammerstein.Static_fn.eval at in
  Hammerstein.Static_fn.make ~analytic:fn.Hammerstein.Static_fn.analytic
    ~formula:(Printf.sprintf "(%s) %+.6g" fn.Hammerstein.Static_fn.formula shift)
    ~eval:(fun x -> fn.Hammerstein.Static_fn.eval x +. shift)
    ~deriv:fn.Hammerstein.Static_fn.deriv ()

let extract ?(config = default_config) ~dataset ~input ~output () =
  let t_start = Sys.time () in
  let stage =
    Rvf.frequency_stage ~config:config.rvf ~dataset ~input ~output ()
  in
  let freq_model = stage.Rvf.fs_model in
  let xs = stage.Rvf.xs in
  let lo = stage.Rvf.x_lo and hi = stage.Rvf.x_hi in
  let p = Vf.Model.n_poles freq_model in
  (* GP regression of each residue coefficient trace *)
  let trace_fits =
    Array.init p (fun pi ->
        let ys =
          Array.init (Array.length xs) (fun k ->
              freq_model.Vf.Model.coeffs.(k).(pi))
        in
        Gp.fit ~params:{ config.gp with Gp.seed = config.gp.Gp.seed + pi } ~xs
          ~ys ())
  in
  let static_fit =
    Gp.fit
      ~params:{ config.gp with Gp.seed = config.gp.Gp.seed + p + 1 }
      ~xs ~ys:stage.Rvf.dc ()
  in
  let const_fit =
    if not config.rvf.Rvf.freq_opts.Vf.Vfit.with_const then None
    else begin
      let ys =
        Array.init (Array.length xs) (fun k -> freq_model.Vf.Model.consts.(k))
      in
      Some
        (Gp.fit
           ~params:{ config.gp with Gp.seed = config.gp.Gp.seed + p + 2 }
           ~xs ~ys ())
    end
  in
  let n_ok = ref 0 and n_total = ref 0 and all_ok = ref true in
  let integrate fit =
    let static, ok, total, integrable =
      integrate_fit ~lo ~hi ~grid:config.fallback_grid fit
    in
    n_ok := !n_ok + ok;
    n_total := !n_total + total;
    if not integrable then all_ok := false;
    static
  in
  let stages = Array.map integrate trace_fits in
  let static_raw = integrate static_fit in
  let x0 = stage.Rvf.x0 and y0 = stage.Rvf.y0 in
  let static_path =
    let base = anchor static_raw ~at:x0 ~value:y0 in
    match const_fit with
    | None -> base
    | Some fit ->
        Hammerstein.Static_fn.add base (anchor (integrate fit) ~at:x0 ~value:0.0)
  in
  let model =
    Rvf.Assemble.hammerstein ~name:"caffeine"
      ~freq_poles:freq_model.Vf.Model.poles
      ~stage:(fun pi -> anchor stages.(pi) ~at:x0 ~value:0.0)
      ~static_path
  in
  {
    model;
    freq_model;
    freq_info = stage.Rvf.fs_info;
    trace_fits;
    static_fit;
    integrable_terms = !n_ok;
    total_terms = !n_total;
    automated = !all_ok;
    build_seconds = Sys.time () -. t_start;
  }
