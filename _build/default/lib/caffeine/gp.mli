(** Genetic programming over canonical-form expressions.

    GP evolves the term structure only; the linear weights of each
    candidate (one per term plus a constant) are fitted by least squares
    at every evaluation, as in CAFFEINE [7]. Deterministic given the
    seed. *)

type params = {
  population : int;
  generations : int;
  tournament : int;
  max_terms : int;
  max_factors : int;
  complexity_penalty : float;
      (** relative fitness penalty per complexity unit *)
  seed : int;
}

val default_params : params

type fitted = {
  terms : Cexpr.term array;
  weights : float array;  (** [weights.(0)] is the constant; then one per term *)
  rmse : float;  (** absolute RMS deviation on the training samples *)
  rmse_rel : float;  (** relative to the RMS of the data *)
  generations_run : int;
}

val eval : fitted -> float -> float

val fit : ?params:params -> xs:float array -> ys:float array -> unit -> fitted
(** Evolve an expression fitting [ys.(k) ≈ f(xs.(k))]. *)

val to_string : fitted -> string
