(** CAFFEINE-based model extraction — the paper's comparison baseline.

    Same TFT data and same frequency-pole stage as the RVF flow (regular
    vector fitting for pole allocation), but the residue functions are
    regressed by genetic programming over canonical-form expressions.
    Terms whose indefinite integral has no closed form fall back to
    numeric integration tables, which is why the resulting models are
    flagged "not fully automated" (Table I). *)

type config = {
  rvf : Rvf.config;  (** settings for the shared frequency stage *)
  gp : Gp.params;
  fallback_grid : int;  (** sample count for numeric-integral fallbacks *)
}

val default_config : config

type result = {
  model : Hammerstein.Hmodel.t;
  freq_model : Vf.Model.t;
  freq_info : Vf.Vfit.info;
  trace_fits : Gp.fitted array;  (** per frequency-pole slot *)
  static_fit : Gp.fitted;
  integrable_terms : int;
  total_terms : int;
  automated : bool;  (** true iff every evolved term integrated in closed form *)
  build_seconds : float;
}

val extract :
  ?config:config -> dataset:Tft.Dataset.t -> input:int -> output:int -> unit ->
  result
