(** Canonical-form expressions for the CAFFEINE baseline [7].

    CAFFEINE restricts genetic programming to a canonical form: a
    weighted sum of product terms, each term a product of basis factors.
    The linear weights are found by least squares; GP only evolves the
    term structure. This module provides the term algebra, evaluation,
    and the (partial) symbolic integration that decides whether a model
    can be automated — the paper's Table I "Fully Automated: NO" comes
    from terms whose indefinite integral has no closed form here. *)

type factor =
  | Power of int  (** x^n, n ≥ 1 *)
  | Exponential of float  (** exp(c·x) *)
  | Tanh of float * float  (** tanh(a·(x − b)) *)
  | Gauss of float * float  (** exp(−a·(x − b)²) *)

type term = factor list
(** A product of factors; the empty list is the constant 1. *)

val simplify : term -> term
(** Merge powers and exponentials, drop vacuous factors, sort factors
    into a canonical order. *)

val eval_term : term -> float -> float
val complexity : term -> int
(** Node count; the GP parsimony pressure uses the sum over terms. *)

val term_to_string : term -> string

val integrate_term : term -> (float -> float) option * string
(** Closed-form antiderivative of the term when one exists here:
    polynomials, [x^n·exp(cx)] (integration by parts), and a lone [tanh]
    ([ln cosh / a]). Mixed products and Gaussians return [None] — those
    terms require numeric integration and mark the model as not fully
    automated. The string describes the antiderivative (or explains the
    failure). *)

val equal : term -> term -> bool
