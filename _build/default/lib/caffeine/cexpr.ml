type factor =
  | Power of int
  | Exponential of float
  | Tanh of float * float
  | Gauss of float * float

type term = factor list

let factor_rank = function
  | Power _ -> 0
  | Exponential _ -> 1
  | Tanh _ -> 2
  | Gauss _ -> 3

let simplify term =
  let power = ref 0 and expc = ref 0.0 and others = ref [] in
  List.iter
    (fun f ->
      match f with
      | Power n -> power := !power + n
      | Exponential c -> expc := !expc +. c
      | Tanh _ | Gauss _ -> others := f :: !others)
    term;
  let base =
    (if !power > 0 then [ Power !power ] else [])
    @ if !expc <> 0.0 then [ Exponential !expc ] else []
  in
  base
  @ List.sort
      (fun a b -> compare (factor_rank a, a) (factor_rank b, b))
      (List.rev !others)

let eval_factor f x =
  match f with
  | Power n -> x ** float_of_int n
  | Exponential c -> exp (c *. x)
  | Tanh (a, b) -> tanh (a *. (x -. b))
  | Gauss (a, b) -> exp (-.a *. (x -. b) *. (x -. b))

let eval_term term x =
  List.fold_left (fun acc f -> acc *. eval_factor f x) 1.0 term

let complexity term = 1 + List.length term

let factor_to_string = function
  | Power 1 -> "x"
  | Power n -> Printf.sprintf "x^%d" n
  | Exponential c -> Printf.sprintf "exp(%.4g*x)" c
  | Tanh (a, b) -> Printf.sprintf "tanh(%.4g*(x%+.4g))" a (-.b)
  | Gauss (a, b) -> Printf.sprintf "exp(-%.4g*(x%+.4g)^2)" a (-.b)

let term_to_string = function
  | [] -> "1"
  | fs -> String.concat "*" (List.map factor_to_string fs)

(* ∫ x^n exp(cx) dx = exp(cx) · Σ_{k=0}^{n} (−1)^k · n!/(n−k)! · x^{n−k} / c^{k+1} *)
let poly_exp_integral n c =
  let coeffs =
    Array.init (n + 1) (fun k ->
        let rec falling acc j = if j = 0 then acc else falling (acc *. float_of_int (n - j + 1)) (j - 1) in
        let fall = falling 1.0 k in
        (if k mod 2 = 0 then 1.0 else -1.0) *. fall /. (c ** float_of_int (k + 1)))
  in
  fun x ->
    let s = ref 0.0 in
    for k = 0 to n do
      s := !s +. (coeffs.(k) *. (x ** float_of_int (n - k)))
    done;
    exp (c *. x) *. !s

let integrate_term term =
  match simplify term with
  | [] -> (Some (fun x -> x), "x")
  | [ Power n ] ->
      let e = float_of_int (n + 1) in
      ( Some (fun x -> (x ** e) /. e),
        Printf.sprintf "x^%d/%d" (n + 1) (n + 1) )
  | [ Exponential c ] ->
      (Some (fun x -> exp (c *. x) /. c), Printf.sprintf "exp(%.4g*x)/%.4g" c c)
  | [ Power n; Exponential c ] ->
      ( Some (poly_exp_integral n c),
        Printf.sprintf "exp(%.4g*x)*P_%d(x) (by parts)" c n )
  | [ Tanh (a, b) ] ->
      (* overflow-safe ln cosh z = |z| − ln 2 + ln(1 + exp(−2|z|)) *)
      let ln_cosh z =
        let az = Float.abs z in
        az -. log 2.0 +. Float.log1p (exp (-2.0 *. az))
      in
      ( Some (fun x -> ln_cosh (a *. (x -. b)) /. a),
        Printf.sprintf "ln(cosh(%.4g*(x%+.4g)))/%.4g" a (-.b) a )
  | fs ->
      ( None,
        Printf.sprintf "no closed form for %s (manual/numeric integration needed)"
          (term_to_string fs) )

let equal a b = simplify a = simplify b
