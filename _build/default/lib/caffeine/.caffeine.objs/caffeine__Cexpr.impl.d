lib/caffeine/cexpr.ml: Array Float List Printf String
