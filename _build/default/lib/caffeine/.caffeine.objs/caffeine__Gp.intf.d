lib/caffeine/gp.mli: Cexpr
