lib/caffeine/gp.ml: Array Buffer Cexpr Float Linalg List Printf Random Stdlib
