lib/caffeine/cexpr.mli:
