lib/caffeine/cfit.mli: Gp Hammerstein Rvf Tft Vf
