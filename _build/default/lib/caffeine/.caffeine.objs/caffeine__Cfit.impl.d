lib/caffeine/cfit.ml: Array Buffer Cexpr Gp Hammerstein Option Printf Rvf Sys Vf
