type params = {
  population : int;
  generations : int;
  tournament : int;
  max_terms : int;
  max_factors : int;
  complexity_penalty : float;
  seed : int;
}

let default_params =
  {
    population = 100;
    generations = 120;
    tournament = 3;
    max_terms = 5;
    max_factors = 3;
    complexity_penalty = 2e-3;
    seed = 1;
  }

type fitted = {
  terms : Cexpr.term array;
  weights : float array;
  rmse : float;
  rmse_rel : float;
  generations_run : int;
}

let eval f x =
  let acc = ref f.weights.(0) in
  Array.iteri
    (fun j term -> acc := !acc +. (f.weights.(j + 1) *. Cexpr.eval_term term x))
    f.terms;
  !acc

let to_string f =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "%.6g" f.weights.(0);
  Array.iteri
    (fun j term ->
      Printf.bprintf buf " %+.6g*%s" f.weights.(j + 1) (Cexpr.term_to_string term))
    f.terms;
  Buffer.contents buf

(* ---- random structure generation, range-aware constants ---- *)

let random_factor st ~lo ~hi =
  let range = hi -. lo in
  match Random.State.int st 10 with
  | 0 | 1 | 2 | 3 ->
      Cexpr.Power (1 + Random.State.int st 3)
  | 4 | 5 ->
      let c = (Random.State.float st 8.0 -. 4.0) /. Float.max range 1e-12 in
      Cexpr.Exponential c
  | 6 | 7 | 8 ->
      let a = (2.0 +. Random.State.float st 18.0) /. Float.max range 1e-12 in
      let b = lo +. Random.State.float st range in
      Cexpr.Tanh (a, b)
  | _ ->
      let a = (4.0 +. Random.State.float st 60.0) /. (Float.max range 1e-12 ** 2.0) in
      let b = lo +. Random.State.float st range in
      Cexpr.Gauss (a, b)

let random_term st ~p ~lo ~hi =
  let n = 1 + Random.State.int st p.max_factors in
  Cexpr.simplify (List.init n (fun _ -> random_factor st ~lo ~hi))

let random_individual st ~p ~lo ~hi =
  let n = 1 + Random.State.int st p.max_terms in
  Array.init n (fun _ -> random_term st ~p ~lo ~hi)

(* ---- weight fitting: linear least squares per candidate ---- *)

let fit_weights ~xs ~ys terms =
  let k = Array.length xs and t = Array.length terms in
  let a = Linalg.Mat.create k (t + 1) in
  for row = 0 to k - 1 do
    Linalg.Mat.set a row 0 1.0;
    for j = 0 to t - 1 do
      Linalg.Mat.set a row (j + 1) (Cexpr.eval_term terms.(j) xs.(row))
    done
  done;
  (* column equilibration *)
  let scales = Array.make (t + 1) 1.0 in
  for j = 0 to t do
    let m = ref 0.0 in
    for row = 0 to k - 1 do
      m := Float.max !m (Float.abs (Linalg.Mat.get a row j))
    done;
    if !m > 0.0 && Float.is_finite !m then begin
      scales.(j) <- 1.0 /. !m;
      for row = 0 to k - 1 do
        Linalg.Mat.set a row j (Linalg.Mat.get a row j *. scales.(j))
      done
    end
  done;
  match Linalg.Qr.least_squares a ys with
  | exception Linalg.Qr.Rank_deficient _ -> None
  | sol ->
      let w = Array.mapi (fun j v -> v *. scales.(j)) sol in
      if Array.for_all Float.is_finite w then Some w else None

let rms ys =
  sqrt
    (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 ys
    /. float_of_int (Array.length ys))

let evaluate ~p ~xs ~ys terms =
  match fit_weights ~xs ~ys terms with
  | None -> None
  | Some weights ->
      let cand = { terms; weights; rmse = 0.0; rmse_rel = 0.0; generations_run = 0 } in
      let err = Array.mapi (fun k x -> eval cand x -. ys.(k)) xs in
      let e = rms err in
      if not (Float.is_finite e) then None
      else begin
        let scale = Float.max (rms ys) 1e-300 in
        let cplx =
          Array.fold_left (fun acc t -> acc + Cexpr.complexity t) 0 terms
        in
        let fitness = (e /. scale) +. (p.complexity_penalty *. float_of_int cplx) in
        Some (fitness, { cand with rmse = e; rmse_rel = e /. scale })
      end

(* ---- variation operators ---- *)

let mutate_constant st f =
  let jitter v = v *. (1.0 +. (0.4 *. (Random.State.float st 2.0 -. 1.0))) in
  match f with
  | Cexpr.Power n -> Cexpr.Power (Stdlib.max 1 (n + Random.State.int st 3 - 1))
  | Cexpr.Exponential c -> Cexpr.Exponential (jitter c)
  | Cexpr.Tanh (a, b) -> Cexpr.Tanh (jitter a, jitter b)
  | Cexpr.Gauss (a, b) -> Cexpr.Gauss (Float.abs (jitter a), jitter b)

let mutate_term st ~p ~lo ~hi term =
  match Random.State.int st 3 with
  | 0 when term <> [] ->
      (* perturb one factor's constants *)
      let idx = Random.State.int st (List.length term) in
      Cexpr.simplify
        (List.mapi (fun i f -> if i = idx then mutate_constant st f else f) term)
  | 1 when List.length term < p.max_factors ->
      Cexpr.simplify (random_factor st ~lo ~hi :: term)
  | _ ->
      (match term with
      | _ :: rest when rest <> [] && Random.State.bool st -> rest
      | _ -> [ random_factor st ~lo ~hi ])

let mutate st ~p ~lo ~hi ind =
  match Random.State.int st 4 with
  | 0 when Array.length ind < p.max_terms ->
      Array.append ind [| random_term st ~p ~lo ~hi |]
  | 1 when Array.length ind > 1 ->
      let drop = Random.State.int st (Array.length ind) in
      Array.of_list
        (List.filteri (fun i _ -> i <> drop) (Array.to_list ind))
  | _ ->
      let idx = Random.State.int st (Array.length ind) in
      Array.mapi (fun i t -> if i = idx then mutate_term st ~p ~lo ~hi t else t) ind

let crossover st a b =
  let cut_a = Random.State.int st (Array.length a + 1) in
  let cut_b = Random.State.int st (Array.length b + 1) in
  let child =
    Array.append (Array.sub a 0 cut_a)
      (Array.sub b cut_b (Array.length b - cut_b))
  in
  if Array.length child = 0 then [| [] |] else child

let clamp_terms ~p ind =
  if Array.length ind > p.max_terms then Array.sub ind 0 p.max_terms else ind

(* ---- main loop ---- *)

let fit ?(params = default_params) ~xs ~ys () =
  let p = params in
  if Array.length xs <> Array.length ys || Array.length xs < 4 then
    invalid_arg "Gp.fit: need >= 4 matched samples";
  let st = Random.State.make [| p.seed; Array.length xs |] in
  let lo = Array.fold_left Float.min Float.infinity xs in
  let hi = Array.fold_left Float.max Float.neg_infinity xs in
  let eval_ind terms = evaluate ~p ~xs ~ys terms in
  let pop =
    Array.init p.population (fun _ ->
        let terms = random_individual st ~p ~lo ~hi in
        (terms, eval_ind terms))
  in
  let fitness_of (_, e) =
    match e with Some (f, _) -> f | None -> Float.infinity
  in
  let tournament () =
    let best = ref pop.(Random.State.int st p.population) in
    for _ = 2 to p.tournament do
      let cand = pop.(Random.State.int st p.population) in
      if fitness_of cand < fitness_of !best then best := cand
    done;
    fst !best
  in
  let best = ref None in
  let consider (_terms, e) =
    match e with
    | Some (f, cand) -> begin
        match !best with
        | Some (bf, _) when bf <= f -> ()
        | Some _ | None -> best := Some (f, cand)
      end
    | None -> ()
  in
  Array.iter consider pop;
  let gens = ref 0 in
  for gen = 1 to p.generations do
    gens := gen;
    (* elitism: slot 0 keeps the best-so-far *)
    let next =
      Array.init p.population (fun i ->
          if i = 0 then begin
            match !best with
            | Some (_, cand) -> (cand.terms, eval_ind cand.terms)
            | None -> pop.(0)
          end
          else begin
            let a = tournament () in
            let child =
              if Random.State.float st 1.0 < 0.6 then crossover st a (tournament ())
              else a
            in
            let child =
              if Random.State.float st 1.0 < 0.7 then mutate st ~p ~lo ~hi child
              else child
            in
            let child = clamp_terms ~p child in
            (child, eval_ind child)
          end)
    in
    Array.blit next 0 pop 0 p.population;
    Array.iter consider pop
  done;
  match !best with
  | Some (_, cand) -> { cand with generations_run = !gens }
  | None -> invalid_arg "Gp.fit: no viable individual found"
