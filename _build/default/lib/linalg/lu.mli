(** LU factorization with partial pivoting for dense real matrices. *)

exception Singular of int
(** Raised with the pivot column index when a zero (or numerically
    negligible) pivot is encountered. *)

type t
(** A factorization [P*A = L*U] of a square matrix. *)

val factor : Mat.t -> t
(** Factorize a square matrix. Raises {!Singular} if rank-deficient. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] using the factorization. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val det : t -> float
val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val inverse : Mat.t -> Mat.t
