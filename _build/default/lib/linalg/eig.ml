exception No_convergence

(* Parlett-Reinsch balancing: repeated diagonal similarity transforms with
   powers of the radix so that row and column norms match. *)
let balance a =
  let n = Mat.rows a in
  let a = Mat.copy a in
  let radix = 2.0 in
  let radix2 = radix *. radix in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    for i = 0 to n - 1 do
      let r = ref 0.0 and c = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          r := !r +. Float.abs (Mat.get a i j);
          c := !c +. Float.abs (Mat.get a j i)
        end
      done;
      if !c <> 0.0 && !r <> 0.0 then begin
        let g = ref (!r /. radix) and f = ref 1.0 in
        let s = !c +. !r in
        while !c < !g do
          f := !f *. radix;
          c := !c *. radix2
        done;
        g := !r *. radix;
        while !c > !g do
          f := !f /. radix;
          c := !c /. radix2
        done;
        if (!c +. !r) /. !f < 0.95 *. s then begin
          continue_ := true;
          let inv_f = 1.0 /. !f in
          for j = 0 to n - 1 do
            Mat.set a i j (Mat.get a i j *. inv_f)
          done;
          for j = 0 to n - 1 do
            Mat.set a j i (Mat.get a j i *. !f)
          done
        end
      end
    done
  done;
  a

(* Householder similarity reduction to upper Hessenberg form. *)
let hessenberg a =
  let n = Mat.rows a in
  let a = Mat.copy a in
  let v = Array.make n 0.0 in
  for k = 0 to n - 3 do
    let nrm = ref 0.0 in
    for i = k + 1 to n - 1 do
      let x = Mat.get a i k in
      nrm := !nrm +. (x *. x)
    done;
    let nrm = sqrt !nrm in
    if nrm > 0.0 then begin
      let x0 = Mat.get a (k + 1) k in
      let alpha = if x0 >= 0.0 then -.nrm else nrm in
      let vtv = ref 0.0 in
      for i = k + 1 to n - 1 do
        v.(i) <- Mat.get a i k;
        if i = k + 1 then v.(i) <- v.(i) -. alpha;
        vtv := !vtv +. (v.(i) *. v.(i))
      done;
      if !vtv > 0.0 then begin
        let beta = 2.0 /. !vtv in
        (* left: A <- (I - beta v vT) A on rows k+1..n-1 *)
        for j = k to n - 1 do
          let dot = ref 0.0 in
          for i = k + 1 to n - 1 do
            dot := !dot +. (v.(i) *. Mat.get a i j)
          done;
          let s = beta *. !dot in
          if s <> 0.0 then
            for i = k + 1 to n - 1 do
              Mat.set a i j (Mat.get a i j -. (s *. v.(i)))
            done
        done;
        (* right: A <- A (I - beta v vT) on cols k+1..n-1 *)
        for i = 0 to n - 1 do
          let dot = ref 0.0 in
          for j = k + 1 to n - 1 do
            dot := !dot +. (Mat.get a i j *. v.(j))
          done;
          let s = beta *. !dot in
          if s <> 0.0 then
            for j = k + 1 to n - 1 do
              Mat.set a i j (Mat.get a i j -. (s *. v.(j)))
            done
        done;
        (* zero out the annihilated entries exactly *)
        Mat.set a (k + 1) k alpha;
        for i = k + 2 to n - 1 do
          Mat.set a i k 0.0
        done
      end
    end
  done;
  a

let sign_of x y = if y >= 0.0 then Float.abs x else -.Float.abs x

(* Francis implicit double-shift QR on an upper Hessenberg matrix,
   eigenvalues only. Follows the classic EISPACK [hqr] control flow,
   translated to 0-based indexing, with exceptional shifts every 10
   iterations and a hard budget of 40 per eigenvalue. *)
let hqr a =
  let n = Mat.rows a in
  let wr = Array.make n 0.0 and wi = Array.make n 0.0 in
  if n = 0 then [||]
  else begin
    let eps = epsilon_float in
    let anorm = ref 0.0 in
    for i = 0 to n - 1 do
      for j = Stdlib.max (i - 1) 0 to n - 1 do
        anorm := !anorm +. Float.abs (Mat.get a i j)
      done
    done;
    if !anorm = 0.0 then anorm := 1.0;
    let nn = ref (n - 1) in
    let t = ref 0.0 in
    while !nn >= 0 do
      let its = ref 0 in
      let finished_block = ref false in
      while not !finished_block do
        (* find l: smallest index of the active block *)
        let l = ref 0 in
        (try
           for ll = !nn downto 1 do
             let s =
               let s0 =
                 Float.abs (Mat.get a (ll - 1) (ll - 1))
                 +. Float.abs (Mat.get a ll ll)
               in
               if s0 = 0.0 then !anorm else s0
             in
             if Float.abs (Mat.get a ll (ll - 1)) <= eps *. s then begin
               Mat.set a ll (ll - 1) 0.0;
               l := ll;
               raise Exit
             end
           done
         with Exit -> ());
        let x = ref (Mat.get a !nn !nn) in
        if !l = !nn then begin
          (* one real eigenvalue *)
          wr.(!nn) <- !x +. !t;
          wi.(!nn) <- 0.0;
          decr nn;
          finished_block := true
        end
        else begin
          let y = ref (Mat.get a (!nn - 1) (!nn - 1)) in
          let w = ref (Mat.get a !nn (!nn - 1) *. Mat.get a (!nn - 1) !nn) in
          if !l = !nn - 1 then begin
            (* 2x2 block: a pair of eigenvalues *)
            let p = 0.5 *. (!y -. !x) in
            let q = (p *. p) +. !w in
            let z = sqrt (Float.abs q) in
            let x' = !x +. !t in
            if q >= 0.0 then begin
              let z = p +. sign_of z p in
              wr.(!nn - 1) <- x' +. z;
              wr.(!nn) <- (if z <> 0.0 then x' -. (!w /. z) else x' +. z);
              wi.(!nn - 1) <- 0.0;
              wi.(!nn) <- 0.0
            end
            else begin
              wr.(!nn - 1) <- x' +. p;
              wr.(!nn) <- x' +. p;
              wi.(!nn) <- z;
              wi.(!nn - 1) <- -.z
            end;
            nn := !nn - 2;
            finished_block := true
          end
          else begin
            if !its = 40 then raise No_convergence;
            if !its = 10 || !its = 20 || !its = 30 then begin
              (* exceptional shift *)
              t := !t +. !x;
              for i = 0 to !nn do
                Mat.set a i i (Mat.get a i i -. !x)
              done;
              let s =
                Float.abs (Mat.get a !nn (!nn - 1))
                +. Float.abs (Mat.get a (!nn - 1) (!nn - 2))
              in
              x := 0.75 *. s;
              y := !x;
              w := -0.4375 *. s *. s
            end;
            incr its;
            (* find two consecutive small subdiagonal elements *)
            let m = ref (!nn - 2) in
            let p = ref 0.0 and q = ref 0.0 and r = ref 0.0 in
            (try
               while !m >= !l do
                 let z = Mat.get a !m !m in
                 let rr = !x -. z in
                 let ss = !y -. z in
                 p :=
                   (((rr *. ss) -. !w) /. Mat.get a (!m + 1) !m)
                   +. Mat.get a !m (!m + 1);
                 q := Mat.get a (!m + 1) (!m + 1) -. z -. rr -. ss;
                 r := Mat.get a (!m + 2) (!m + 1);
                 let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
                 p := !p /. s;
                 q := !q /. s;
                 r := !r /. s;
                 if !m = !l then raise Exit;
                 let u =
                   Float.abs (Mat.get a !m (!m - 1))
                   *. (Float.abs !q +. Float.abs !r)
                 in
                 let v =
                   Float.abs !p
                   *. (Float.abs (Mat.get a (!m - 1) (!m - 1))
                      +. Float.abs z
                      +. Float.abs (Mat.get a (!m + 1) (!m + 1)))
                 in
                 if u <= eps *. v then raise Exit;
                 decr m
               done
             with Exit -> ());
            for i = !m + 2 to !nn do
              Mat.set a i (i - 2) 0.0;
              if i <> !m + 2 then Mat.set a i (i - 3) 0.0
            done;
            (* double QR sweep over rows l..nn, bulge chase from m *)
            for k = !m to !nn - 1 do
              if k <> !m then begin
                p := Mat.get a k (k - 1);
                q := Mat.get a (k + 1) (k - 1);
                r := (if k <> !nn - 1 then Mat.get a (k + 2) (k - 1) else 0.0);
                let xs = Float.abs !p +. Float.abs !q +. Float.abs !r in
                x := xs;
                if xs <> 0.0 then begin
                  p := !p /. xs;
                  q := !q /. xs;
                  r := !r /. xs
                end
              end;
              let s =
                sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p
              in
              if s <> 0.0 then begin
                if k = !m then begin
                  if !l <> !m then Mat.set a k (k - 1) (-.Mat.get a k (k - 1))
                end
                else Mat.set a k (k - 1) (-.s *. !x);
                p := !p +. s;
                x := !p /. s;
                y := !q /. s;
                let z = !r /. s in
                q := !q /. !p;
                r := !r /. !p;
                (* row modification *)
                for j = k to !nn do
                  let pp = ref (Mat.get a k j +. (!q *. Mat.get a (k + 1) j)) in
                  if k <> !nn - 1 then begin
                    pp := !pp +. (!r *. Mat.get a (k + 2) j);
                    Mat.set a (k + 2) j (Mat.get a (k + 2) j -. (!pp *. z))
                  end;
                  Mat.set a (k + 1) j (Mat.get a (k + 1) j -. (!pp *. !y));
                  Mat.set a k j (Mat.get a k j -. (!pp *. !x))
                done;
                (* column modification *)
                let mmin = Stdlib.min !nn (k + 3) in
                for i = !l to mmin do
                  let pp =
                    ref ((!x *. Mat.get a i k) +. (!y *. Mat.get a i (k + 1)))
                  in
                  if k <> !nn - 1 then begin
                    pp := !pp +. (z *. Mat.get a i (k + 2));
                    Mat.set a i (k + 2) (Mat.get a i (k + 2) -. (!pp *. !r))
                  end;
                  Mat.set a i (k + 1) (Mat.get a i (k + 1) -. (!pp *. !q));
                  Mat.set a i k (Mat.get a i k -. !pp)
                done
              end
            done
          end
        end
      done
    done;
    Array.init n (fun k -> Cx.make wr.(k) wi.(k))
  end

let eigenvalues a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Eig.eigenvalues: matrix not square";
  if n = 0 then [||]
  else if n = 1 then [| Cx.re (Mat.get a 0 0) |]
  else hqr (hessenberg (balance a))

let companion coeffs =
  let n = Array.length coeffs in
  Mat.init n n (fun i j ->
      if j = n - 1 then -.coeffs.(i) else if i = j + 1 then 1.0 else 0.0)

let poly_roots coeffs =
  (* strip leading zeros of the highest-degree side *)
  let deg = ref (Array.length coeffs - 1) in
  while !deg > 0 && coeffs.(!deg) = 0.0 do
    decr deg
  done;
  if !deg <= 0 then [||]
  else begin
    let an = coeffs.(!deg) in
    let monic = Array.init !deg (fun k -> coeffs.(k) /. an) in
    eigenvalues (companion monic)
  end
