(** Dense real vectors (thin wrapper over [float array]). *)

type t = float array

val create : int -> t
(** Zero-filled vector of the given length. *)

val init : int -> (int -> float) -> t
val of_list : float list -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
val dist_inf : t -> t -> float
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val max_abs_index : t -> int
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
