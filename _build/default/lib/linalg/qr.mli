(** Householder QR factorization and linear least squares.

    The vector-fitting identification steps are all overdetermined
    least-squares problems; they are solved here via QR without forming
    normal equations. *)

exception Rank_deficient of int

type t
(** Implicit factorization [A = Q·R] of an [m×n] matrix with [m ≥ n]. *)

val factor : Mat.t -> t

val r : t -> Mat.t
(** The upper-triangular [n×n] factor. *)

val apply_qt : t -> Vec.t -> Vec.t
(** [apply_qt f b] computes [Qᵀ b] (length [m]). *)

val solve_r : t -> Vec.t -> Vec.t
(** Back-substitute [R x = c] given the first [n] entries of [c].
    Raises {!Rank_deficient} on a negligible diagonal. *)

val least_squares : Mat.t -> Vec.t -> Vec.t
(** Minimize [‖A x − b‖₂] for [A] of size [m×n], [m ≥ n], full rank. *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [‖A x − b‖₂]; a convenience for tests. *)
