(** Complex number helpers on top of [Stdlib.Complex]. *)

type t = Complex.t

val zero : t
val one : t
val i : t

val re : float -> t
(** [re x] is the complex number [x + 0i]. *)

val make : float -> float -> t
(** [make re im] builds [re + im*i]. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t

val neg : t -> t
val conj : t -> t
val inv : t -> t
val scale : float -> t -> t
val norm : t -> float
(** Modulus |z|. *)

val norm2 : t -> float
(** Squared modulus. *)

val arg : t -> float
val exp : t -> t
val log : t -> t
val sqrt : t -> t

val is_finite : t -> bool
val approx_equal : ?tol:float -> t -> t -> bool
(** Absolute-difference comparison on both components. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
