type t = float array

let create n = Array.make n 0.0
let init = Array.init
let of_list = Array.of_list
let copy = Array.copy
let dim = Array.length

let check_dims a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: dimension mismatch"

let add a b =
  check_dims a b;
  Array.mapi (fun k x -> x +. b.(k)) a

let sub a b =
  check_dims a b;
  Array.mapi (fun k x -> x -. b.(k)) a

let scale k = Array.map (fun x -> k *. x)
let neg = Array.map (fun x -> -.x)

let axpy a x y =
  check_dims x y;
  for k = 0 to Array.length x - 1 do
    y.(k) <- (a *. x.(k)) +. y.(k)
  done

let dot a b =
  check_dims a b;
  let acc = ref 0.0 in
  for k = 0 to Array.length a - 1 do
    acc := !acc +. (a.(k) *. b.(k))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let dist_inf a b = norm_inf (sub a b)
let map = Array.map

let map2 f a b =
  check_dims a b;
  Array.mapi (fun k x -> f x b.(k)) a

let max_abs_index a =
  let best = ref 0 in
  for k = 1 to Array.length a - 1 do
    if Float.abs a.(k) > Float.abs a.(!best) then best := k
  done;
  !best

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b && dist_inf a b <= tol

let pp ppf a =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    a
