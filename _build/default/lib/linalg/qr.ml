exception Rank_deficient of int

(* Householder vectors are stored below the diagonal of [qr] with the
   scaling factors in [beta]; the diagonal of R is in [rdiag]. *)
type t = { qr : Mat.t; beta : float array; rdiag : float array }

let factor a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factor: requires rows >= cols";
  let qr = Mat.copy a in
  let beta = Array.make n 0.0 in
  let rdiag = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* norm of column k below row k *)
    let nrm = ref 0.0 in
    for i = k to m - 1 do
      let x = Mat.get qr i k in
      nrm := !nrm +. (x *. x)
    done;
    let nrm = sqrt !nrm in
    if nrm = 0.0 then begin
      beta.(k) <- 0.0;
      rdiag.(k) <- 0.0
    end
    else begin
      let akk = Mat.get qr k k in
      let alpha = if akk >= 0.0 then -.nrm else nrm in
      (* v = x - alpha*e1, stored in place; v_k below *)
      Mat.set qr k k (akk -. alpha);
      let vtv = ref 0.0 in
      for i = k to m - 1 do
        let v = Mat.get qr i k in
        vtv := !vtv +. (v *. v)
      done;
      beta.(k) <- (if !vtv = 0.0 then 0.0 else 2.0 /. !vtv);
      rdiag.(k) <- alpha;
      (* apply H = I - beta v vT to remaining columns *)
      for j = k + 1 to n - 1 do
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (Mat.get qr i k *. Mat.get qr i j)
        done;
        let s = beta.(k) *. !dot in
        if s <> 0.0 then
          for i = k to m - 1 do
            Mat.set qr i j (Mat.get qr i j -. (s *. Mat.get qr i k))
          done
      done
    end
  done;
  { qr; beta; rdiag }

let r { qr; rdiag; _ } =
  let n = Mat.cols qr in
  Mat.init n n (fun i j ->
      if i = j then rdiag.(i) else if i < j then Mat.get qr i j else 0.0)

let apply_qt { qr; beta; _ } b =
  let m = Mat.rows qr and n = Mat.cols qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Array.copy b in
  for k = 0 to n - 1 do
    if beta.(k) <> 0.0 then begin
      let dot = ref 0.0 in
      for i = k to m - 1 do
        dot := !dot +. (Mat.get qr i k *. y.(i))
      done;
      let s = beta.(k) *. !dot in
      if s <> 0.0 then
        for i = k to m - 1 do
          y.(i) <- y.(i) -. (s *. Mat.get qr i k)
        done
    end
  done;
  y

let solve_r { qr; rdiag; _ } c =
  let n = Mat.cols qr in
  let scale = ref 0.0 in
  for k = 0 to n - 1 do
    scale := Float.max !scale (Float.abs rdiag.(k))
  done;
  let tol = !scale *. float_of_int n *. epsilon_float in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    if Float.abs rdiag.(i) <= tol then raise (Rank_deficient i);
    let acc = ref c.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get qr i j *. x.(j))
    done;
    x.(i) <- !acc /. rdiag.(i)
  done;
  x

let least_squares a b =
  let f = factor a in
  solve_r f (apply_qt f b)

let residual_norm a x b = Vec.norm2 (Vec.sub (Mat.mulv a x) b)
