lib/linalg/cmat.ml: Array Cx Float Format Mat
