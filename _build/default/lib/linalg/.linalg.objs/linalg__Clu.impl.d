lib/linalg/clu.ml: Array Cmat Cx
