lib/linalg/mat.mli: Format Random Vec
