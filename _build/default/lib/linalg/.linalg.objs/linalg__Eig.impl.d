lib/linalg/eig.ml: Array Cx Float Mat Stdlib
