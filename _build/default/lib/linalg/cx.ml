type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let re x = { Complex.re = x; im = 0.0 }
let make re im = { Complex.re; im }
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv
let scale k z = { Complex.re = k *. z.Complex.re; im = k *. z.Complex.im }
let norm = Complex.norm
let norm2 = Complex.norm2
let arg = Complex.arg
let exp = Complex.exp
let log = Complex.log
let sqrt = Complex.sqrt
let is_finite z = Float.is_finite z.Complex.re && Float.is_finite z.Complex.im

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.Complex.re -. b.Complex.re) <= tol
  && Float.abs (a.Complex.im -. b.Complex.im) <= tol

let pp ppf z = Format.fprintf ppf "%g%+gi" z.Complex.re z.Complex.im
let to_string z = Format.asprintf "%a" pp z
