(** Dense complex matrices and vectors, row-major storage. *)

type t

type vec = Cx.t array

val create : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t
val of_real : Mat.t -> t

val lincomb : Cx.t -> Mat.t -> Cx.t -> Mat.t -> t
(** [lincomb a ma b mb] computes [a*ma + b*mb] as a complex matrix.
    This is how [G + s*C] pencils are formed. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val mul : t -> t -> t
val mulv : t -> vec -> vec
val swap_rows : t -> int -> int -> unit
val max_abs : t -> float
val pp : Format.formatter -> t -> unit
