(** LU factorization with partial pivoting for dense complex matrices.

    Used to evaluate the MNA pencil solves [(G + s·C)⁻¹ B] that turn
    Jacobian snapshots into transfer-function samples. *)

exception Singular of int

type t

val factor : Cmat.t -> t
val solve : t -> Cmat.vec -> Cmat.vec
val solve_mat : t -> Cmat.t -> Cmat.t
val solve_system : Cmat.t -> Cmat.vec -> Cmat.vec
