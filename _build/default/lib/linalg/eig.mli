(** Eigenvalues of dense real (generally unsymmetric) matrices.

    Pipeline: Parlett–Reinsch balancing → Householder reduction to upper
    Hessenberg form → Francis implicit double-shift QR iteration. Only
    eigenvalues are computed; this is all vector-fitting pole relocation
    needs (new poles = eigenvalues of [A − b·c̃ᵀ/d̃]). *)

exception No_convergence
(** Raised when the QR iteration fails to deflate within the iteration
    budget (extremely rare on balanced matrices). *)

val balance : Mat.t -> Mat.t
(** Diagonal similarity scaling that roughly equalizes row/column norms. *)

val hessenberg : Mat.t -> Mat.t
(** Orthogonal similarity reduction to upper Hessenberg form. *)

val eigenvalues : Mat.t -> Cx.t array
(** Eigenvalues of a square real matrix, in no particular order. Complex
    eigenvalues appear in conjugate pairs. *)

val companion : float array -> Mat.t
(** [companion [|c0; c1; ...; c_{n-1}|]] is the companion matrix of the
    monic polynomial [x^n + c_{n-1} x^{n-1} + ... + c0]. *)

val poly_roots : float array -> Cx.t array
(** Roots of a polynomial given coefficients in increasing-degree order
    [[|a0; a1; ...; an|]] (with [an <> 0]). *)
