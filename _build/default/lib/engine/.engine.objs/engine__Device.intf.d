lib/engine/device.mli: Circuit
