lib/engine/mna.ml: Array Circuit Device Hashtbl Linalg List Printf Signal
