lib/engine/ac.mli: Complex Linalg Mna
