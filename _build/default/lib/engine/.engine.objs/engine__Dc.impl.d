lib/engine/dc.ml: Array Float Linalg Logs Mna Printf
