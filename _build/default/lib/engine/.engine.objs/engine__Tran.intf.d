lib/engine/tran.mli: Dc Linalg Mna Signal
