lib/engine/tran.ml: Array Dc Float Linalg List Mna Printf Signal Stdlib
