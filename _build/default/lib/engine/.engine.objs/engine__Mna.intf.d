lib/engine/mna.mli: Circuit Linalg
