lib/engine/ac.ml: Array Linalg Mna Signal
