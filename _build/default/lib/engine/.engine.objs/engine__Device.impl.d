lib/engine/device.ml: Circuit
