lib/engine/dc.mli: Linalg Mna
