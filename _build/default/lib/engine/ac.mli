(** Small-signal AC analysis: the frequency response of the circuit
    linearized at a given operating point.

    [H(s) = Dᵀ (G + s·C)⁻¹ B] — the same pencil solve used per-snapshot
    by the TFT transform, exposed here for validation against the
    extracted models. *)

val transfer_at :
  g:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  d:Linalg.Mat.t ->
  s:Complex.t ->
  Linalg.Cmat.t
(** Dense pencil solve returning the [n_outputs × n_inputs] transfer
    matrix at one complex frequency. *)

val sweep :
  Mna.t -> at:Linalg.Vec.t -> freqs_hz:float array -> Linalg.Cmat.t array
(** Linearize at [at] and sweep the given frequencies (Hz). *)

val sweep_siso :
  Mna.t -> at:Linalg.Vec.t -> freqs_hz:float array -> Complex.t array
(** Convenience for single-input single-output setups: element (0,0). *)
