(** Constitutive equations of the nonlinear devices.

    All functions return both the value and the partial derivatives needed
    for Newton iteration; the current equations are C¹ (limited
    exponentials, region-continuous square law) so the Jacobians seen by
    the solver are continuous. *)

val thermal_voltage : float
(** kT/q at 300 K, ≈ 25.852 mV. *)

val diode_iv : Circuit.Netlist.diode_params -> float -> float * float
(** [diode_iv params vd] is [(i, di/dv)] with exponent limiting: beyond
    [x = vd/(n·Vt) > 40] the exponential is continued linearly, keeping
    current and conductance continuous. A parallel gmin of 1e-12 S is
    included. *)

val mosfet_ids :
  Circuit.Netlist.polarity ->
  Circuit.Netlist.mos_params ->
  vd:float ->
  vg:float ->
  vs:float ->
  float * float * float * float
(** [mosfet_ids pol p ~vd ~vg ~vs] is [(id, did_dvd, did_dvg, did_dvs)]
    where [id] is the current flowing into the drain terminal. Level-1
    square law with channel-length modulation, automatic source/drain
    swap for reverse bias, and a small parallel drain–source leakage to
    keep the system matrix nonsingular when the device is off. *)

val junction_q : Circuit.Netlist.junction_params -> float -> float * float
(** [junction_q params v] is [(q, dq/dv)] for a graded junction
    capacitance, linearized above [v = 0.5·phi] (SPICE [fc] convention). *)

(** Partial-derivative bundle of an Ebers–Moll BJT evaluation. *)
type bjt_eval = {
  ic : float;  (** current into the collector *)
  ib : float;  (** current into the base *)
  dic_dvc : float;
  dic_dvb : float;
  dic_dve : float;
  dib_dvc : float;
  dib_dvb : float;
  dib_dve : float;
}

val bjt_currents :
  Circuit.Netlist.bjt_polarity ->
  Circuit.Netlist.bjt_params ->
  vc:float ->
  vb:float ->
  ve:float ->
  bjt_eval
(** Transport-formulation Ebers–Moll with the same limited exponential as
    the diode; the emitter current is [−(ic + ib)]. *)
