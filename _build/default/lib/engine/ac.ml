let transfer_at ~g ~c ~b ~d ~s =
  let pencil = Linalg.Cmat.lincomb Linalg.Cx.one g s c in
  let rhs = Linalg.Cmat.of_real b in
  let x = Linalg.Clu.solve_mat (Linalg.Clu.factor pencil) rhs in
  (* H = Dᵀ X *)
  let mo = Linalg.Mat.cols d and mi = Linalg.Cmat.cols x in
  let n = Linalg.Mat.rows d in
  Linalg.Cmat.init mo mi (fun o i ->
      let acc = ref Linalg.Cx.zero in
      for k = 0 to n - 1 do
        let dk = Linalg.Mat.get d k o in
        let xki = Linalg.Cmat.get x k i in
        if dk <> 0.0 then acc := Linalg.Cx.(!acc +: scale dk xki)
      done;
      !acc)

let sweep mna ~at ~freqs_hz =
  let ev = Mna.eval mna ~with_matrices:true ~time:0.0 at in
  let g, c =
    match (ev.Mna.g_mat, ev.Mna.c_mat) with
    | Some g, Some c -> (g, c)
    | _, _ -> assert false
  in
  let b = Mna.b_matrix mna and d = Mna.d_matrix mna in
  Array.map
    (fun f -> transfer_at ~g ~c ~b ~d ~s:(Signal.Grid.s_of_hz f))
    freqs_hz

let sweep_siso mna ~at ~freqs_hz =
  Array.map (fun h -> Linalg.Cmat.get h 0 0) (sweep mna ~at ~freqs_hz)
