let thermal_voltage = 0.025852

let diode_gmin = 1e-12
let exp_limit = 40.0

let diode_iv (p : Circuit.Netlist.diode_params) vd =
  let vt = thermal_voltage *. p.ideality in
  let x = vd /. vt in
  let i, g =
    if x <= exp_limit then begin
      let e = exp x in
      (p.i_sat *. (e -. 1.0), p.i_sat *. e /. vt)
    end
    else begin
      (* linear continuation of the exponential beyond the limit *)
      let e_lim = exp exp_limit in
      let e = e_lim *. (1.0 +. (x -. exp_limit)) in
      (p.i_sat *. (e -. 1.0), p.i_sat *. e_lim /. vt)
    end
  in
  (i +. (diode_gmin *. vd), g +. diode_gmin)

let mos_leak = 1e-9

(* Forward level-1 drain current for vds >= 0:
   returns (id, gm, gds) = (F, dF/dvgs, dF/dvds). *)
let level1_forward (p : Circuit.Netlist.mos_params) vgs vds =
  let beta = p.kp *. p.w /. p.l in
  let vov = vgs -. p.vth in
  if vov <= 0.0 then (0.0, 0.0, 0.0)
  else begin
    let clm = 1.0 +. (p.lambda *. vds) in
    if vds >= vov then begin
      (* saturation *)
      let id0 = 0.5 *. beta *. vov *. vov in
      (id0 *. clm, beta *. vov *. clm, id0 *. p.lambda)
    end
    else begin
      (* triode *)
      let id0 = beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) in
      let did0_dvds = beta *. (vov -. vds) in
      ( id0 *. clm,
        beta *. vds *. clm,
        (did0_dvds *. clm) +. (id0 *. p.lambda) )
    end
  end

(* NMOS-like current into drain for arbitrary bias (symmetric swap). *)
let nmos_ids p ~vd ~vg ~vs =
  if vd >= vs then begin
    let id, gm, gds = level1_forward p (vg -. vs) (vd -. vs) in
    let id = id +. (mos_leak *. (vd -. vs)) in
    let gds = gds +. mos_leak in
    (id, gds, gm, -.(gm +. gds))
  end
  else begin
    (* reverse operation: drain and source exchange roles *)
    let id, gm, gds = level1_forward p (vg -. vd) (vs -. vd) in
    let id = id +. (mos_leak *. (vs -. vd)) in
    let gds = gds +. mos_leak in
    (-.id, gm +. gds, -.gm, -.gds)
  end

let mosfet_ids pol p ~vd ~vg ~vs =
  match pol with
  | Circuit.Netlist.Nmos -> nmos_ids p ~vd ~vg ~vs
  | Circuit.Netlist.Pmos ->
      (* mirror: Id_p(vd,vg,vs) = -Id_n(-vd,-vg,-vs); the chain rule through
         the sign flips leaves the conductances unchanged in sign. *)
      let id, dd, dg, ds =
        nmos_ids p ~vd:(-.vd) ~vg:(-.vg) ~vs:(-.vs)
      in
      (-.id, dd, dg, ds)

let junction_fc = 0.5

let junction_q (p : Circuit.Netlist.junction_params) v =
  let vb = junction_fc *. p.phi in
  if v < vb then begin
    let w = 1.0 -. (v /. p.phi) in
    let q = p.cj0 *. p.phi /. (1.0 -. p.m) *. (1.0 -. (w ** (1.0 -. p.m))) in
    let c = p.cj0 *. (w ** -.p.m) in
    (q, c)
  end
  else begin
    (* linearized continuation above fc·phi *)
    let w_b = 1.0 -. junction_fc in
    let q_b = p.cj0 *. p.phi /. (1.0 -. p.m) *. (1.0 -. (w_b ** (1.0 -. p.m))) in
    let c_b = p.cj0 *. (w_b ** -.p.m) in
    let dc_dv = p.cj0 *. p.m /. p.phi *. (w_b ** -.(p.m +. 1.0)) in
    let dv = v -. vb in
    (q_b +. (c_b *. dv) +. (0.5 *. dc_dv *. dv *. dv), c_b +. (dc_dv *. dv))
  end

type bjt_eval = {
  ic : float;
  ib : float;
  dic_dvc : float;
  dic_dvb : float;
  dic_dve : float;
  dib_dvc : float;
  dib_dvb : float;
  dib_dve : float;
}

(* limited exponential shared with the diode model *)
let lim_exp x =
  if x <= exp_limit then begin
    let e = exp x in
    (e, e)
  end
  else begin
    let e_lim = exp exp_limit in
    (e_lim *. (1.0 +. (x -. exp_limit)), e_lim)
  end

let npn_currents (p : Circuit.Netlist.bjt_params) ~vc ~vb ~ve =
  let vt = thermal_voltage in
  let ef, def = lim_exp ((vb -. ve) /. vt) in
  let er, der = lim_exp ((vb -. vc) /. vt) in
  let i_f = p.Circuit.Netlist.is_bjt *. (ef -. 1.0) in
  let i_r = p.Circuit.Netlist.is_bjt *. (er -. 1.0) in
  let gf = p.Circuit.Netlist.is_bjt *. def /. vt in
  let gr = p.Circuit.Netlist.is_bjt *. der /. vt in
  let krr = 1.0 +. (1.0 /. p.Circuit.Netlist.br) in
  (* small ohmic leakage keeps isolated nodes solvable *)
  let ic = i_f -. (krr *. i_r) +. (diode_gmin *. (vc -. ve)) in
  let ib =
    (i_f /. p.Circuit.Netlist.bf) +. (i_r /. p.Circuit.Netlist.br)
    +. (diode_gmin *. (vb -. ve))
  in
  {
    ic;
    ib;
    dic_dvc = (krr *. gr) +. diode_gmin;
    dic_dvb = gf -. (krr *. gr);
    dic_dve = -.gf -. diode_gmin;
    dib_dvc = -.gr /. p.Circuit.Netlist.br;
    dib_dvb = (gf /. p.Circuit.Netlist.bf) +. (gr /. p.Circuit.Netlist.br) +. diode_gmin;
    dib_dve = (-.gf /. p.Circuit.Netlist.bf) -. diode_gmin;
  }

let bjt_currents pol p ~vc ~vb ~ve =
  match pol with
  | Circuit.Netlist.Npn -> npn_currents p ~vc ~vb ~ve
  | Circuit.Netlist.Pnp ->
      (* mirror: currents negate, conductances keep their sign *)
      let e = npn_currents p ~vc:(-.vc) ~vb:(-.vb) ~ve:(-.ve) in
      { e with ic = -.e.ic; ib = -.e.ib }
