(** Modified Nodal Analysis: compile a netlist into an evaluable system

    {[ d/dt q(v) + i(v) = s(t) = B·u(t) + (other sources) ]}

    Unknowns are the non-ground node voltages followed by one branch
    current per voltage source and per inductor. *)

type output = Node of string | Diff of string * string

type t

val build : ?inputs:string list -> ?outputs:output list -> Circuit.Netlist.t -> t
(** [inputs] names voltage/current sources whose values form the input
    vector [u] (they keep their waves for simulation; the [B] matrix maps
    [u] into the residual). [outputs] picks the observed voltages for the
    [D] matrix. Defaults: no inputs, no outputs. Raises
    [Invalid_argument] on unknown names or nodes. *)

val size : t -> int
val n_nodes : t -> int
val n_inputs : t -> int
val n_outputs : t -> int
val node_index : t -> string -> int
(** Index of a non-ground node in the unknown vector. Raises [Not_found]. *)

val netlist : t -> Circuit.Netlist.t

type eval = {
  i_vec : Linalg.Vec.t;  (** i(v) − s(t) *)
  q_vec : Linalg.Vec.t;  (** q(v) *)
  g_mat : Linalg.Mat.t option;  (** ∂i/∂v *)
  c_mat : Linalg.Mat.t option;  (** ∂q/∂v *)
}

val eval : t -> ?with_matrices:bool -> time:float -> Linalg.Vec.t -> eval
(** Evaluate residual pieces (and Jacobians when [with_matrices], default
    true) at the given unknown vector and time. *)

val b_matrix : t -> Linalg.Mat.t
(** [size × n_inputs]; the incidence of the designated inputs. *)

val d_matrix : t -> Linalg.Mat.t
(** [size × n_outputs]. *)

val input_values : t -> float -> Linalg.Vec.t
(** Values of the designated input sources at a given time. *)

val output_values : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [Dᵀ v]. *)
