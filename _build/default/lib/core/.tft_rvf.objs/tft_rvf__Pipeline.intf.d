lib/core/pipeline.mli: Circuit Engine Hammerstein Rvf Tft
