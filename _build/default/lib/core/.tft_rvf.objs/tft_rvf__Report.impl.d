lib/core/report.ml: Array Buffer Circuit Complex Engine Float Hammerstein Linalg List Pipeline Printf Rvf Signal Stdlib Sys Tft Vf
