lib/core/report.mli: Circuit Engine Hammerstein Pipeline Signal Tft
