lib/core/pipeline.ml: Circuit Circuits Engine Hammerstein List Printf Rvf Signal Sys Tft
