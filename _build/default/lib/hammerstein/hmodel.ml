type branch =
  | First_order of { a : float; f : Static_fn.t }
  | Second_order of {
      alpha : float;
      beta : float;
      f1 : Static_fn.t;
      f2 : Static_fn.t;
    }

type t = {
  branches : branch array;
  static_path : Static_fn.t;
  name : string;
}

let make ?(name = "hammerstein") ~branches ~static_path () =
  Array.iter
    (fun b ->
      match b with
      | First_order { a; _ } ->
          if a >= 0.0 then invalid_arg "Hmodel.make: unstable real pole"
      | Second_order { alpha; _ } ->
          if alpha >= 0.0 then invalid_arg "Hmodel.make: unstable pole pair")
    branches;
  { branches; static_path; name }

let order t =
  Array.fold_left
    (fun acc b ->
      acc + match b with First_order _ -> 1 | Second_order _ -> 2)
    0 t.branches

let analytic t =
  t.static_path.Static_fn.analytic
  && Array.for_all
       (fun b ->
         match b with
         | First_order { f; _ } -> f.Static_fn.analytic
         | Second_order { f1; f2; _ } ->
             f1.Static_fn.analytic && f2.Static_fn.analytic)
       t.branches

let transfer t ~x ~s =
  let acc = ref { Complex.re = t.static_path.Static_fn.deriv x; im = 0.0 } in
  Array.iter
    (fun b ->
      match b with
      | First_order { a; f } ->
          let r = f.Static_fn.deriv x in
          acc :=
            Complex.add !acc
              (Complex.div { Complex.re = r; im = 0.0 }
                 (Complex.sub s { Complex.re = a; im = 0.0 }))
      | Second_order { alpha; beta; f1; f2 } ->
          (* residue r = c + jd with c = (f1'+f2')/2, d = (f1'−f2')/2;
             contribution 2[c(s−α) − dβ]/((s−α)² + β²) *)
          let c = 0.5 *. (f1.Static_fn.deriv x +. f2.Static_fn.deriv x) in
          let d = 0.5 *. (f1.Static_fn.deriv x -. f2.Static_fn.deriv x) in
          let sa = Complex.sub s { Complex.re = alpha; im = 0.0 } in
          let num =
            Complex.sub
              (Complex.mul { Complex.re = 2.0 *. c; im = 0.0 } sa)
              { Complex.re = 2.0 *. d *. beta; im = 0.0 }
          in
          let den =
            Complex.add (Complex.mul sa sa)
              { Complex.re = beta *. beta; im = 0.0 }
          in
          acc := Complex.add !acc (Complex.div num den))
    t.branches;
  !acc

let dc_gain t ~x = (transfer t ~x ~s:Complex.zero).Complex.re

let dc_output t ~x =
  let acc = ref (t.static_path.Static_fn.eval x) in
  Array.iter
    (fun b ->
      match b with
      | First_order { a; f } -> acc := !acc -. (f.Static_fn.eval x /. a)
      | Second_order { alpha; beta; f1; f2 } ->
          (* D·(−A⁻¹)·f with A = [α β; −β α] *)
          let det = (alpha *. alpha) +. (beta *. beta) in
          let v1 = f1.Static_fn.eval x and v2 = f2.Static_fn.eval x in
          let y1 = -.((alpha *. v1) -. (beta *. v2)) /. det in
          let y2 = -.((beta *. v1) +. (alpha *. v2)) /. det in
          acc := !acc +. y1 +. y2)
    t.branches;
  !acc

(* Per-branch trapezoidal update state. *)
type branch_state = {
  mutable y1 : float;
  mutable y2 : float;  (* unused for first-order *)
  mutable v1 : float;
  mutable v2 : float;
}

let simulate t ~u ~t_stop ~dt =
  if dt <= 0.0 || t_stop <= 0.0 then
    invalid_arg "Hmodel.simulate: dt and t_stop must be > 0";
  let steps = Stdlib.max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  let nb = Array.length t.branches in
  let states =
    Array.init nb (fun k ->
        (* DC steady state at u(0): ẏ = 0 *)
        let x0 = u 0.0 in
        match t.branches.(k) with
        | First_order { a; f } ->
            let v = f.Static_fn.eval x0 in
            { y1 = -.v /. a; y2 = 0.0; v1 = v; v2 = 0.0 }
        | Second_order { alpha; beta; f1; f2 } ->
            let v1 = f1.Static_fn.eval x0 and v2 = f2.Static_fn.eval x0 in
            (* y = −A⁻¹ v, A = [α β; −β α], A⁻¹ = [α −β; β α]/(α²+β²) *)
            let det = (alpha *. alpha) +. (beta *. beta) in
            {
              y1 = -.((alpha *. v1) -. (beta *. v2)) /. det;
              y2 = -.((beta *. v1) +. (alpha *. v2)) /. det;
              v1;
              v2;
            })
  in
  let times = Array.make (steps + 1) 0.0 in
  let values = Array.make (steps + 1) 0.0 in
  let output time =
    let acc = ref (t.static_path.Static_fn.eval (u time)) in
    Array.iteri
      (fun k b ->
        let st = states.(k) in
        match b with
        | First_order _ -> acc := !acc +. st.y1
        | Second_order _ -> acc := !acc +. st.y1 +. st.y2)
      t.branches;
    !acc
  in
  values.(0) <- output 0.0;
  for k = 1 to steps do
    let time = Float.min (float_of_int k *. dt) t_stop in
    let h = time -. times.(k - 1) in
    let x = u time in
    Array.iteri
      (fun bi b ->
        let st = states.(bi) in
        match b with
        | First_order { a; f } ->
            let v_new = f.Static_fn.eval x in
            let num = ((1.0 +. (0.5 *. h *. a)) *. st.y1)
                      +. (0.5 *. h *. (st.v1 +. v_new)) in
            st.y1 <- num /. (1.0 -. (0.5 *. h *. a));
            st.v1 <- v_new
        | Second_order { alpha; beta; f1; f2 } ->
            let v1n = f1.Static_fn.eval x and v2n = f2.Static_fn.eval x in
            (* rhs = (I + hA/2) y + h/2 (v_old + v_new) *)
            let ha = 0.5 *. h *. alpha and hb = 0.5 *. h *. beta in
            let r1 =
              ((1.0 +. ha) *. st.y1) +. (hb *. st.y2)
              +. (0.5 *. h *. (st.v1 +. v1n))
            in
            let r2 =
              (-.hb *. st.y1) +. ((1.0 +. ha) *. st.y2)
              +. (0.5 *. h *. (st.v2 +. v2n))
            in
            (* M = I − hA/2 = [1−ha, −hb; hb, 1−ha] *)
            let m11 = 1.0 -. ha and m12 = -.hb in
            let det = (m11 *. m11) +. (hb *. hb) in
            st.y1 <- ((m11 *. r1) -. (m12 *. r2)) /. det;
            st.y2 <- ((m11 *. r2) +. (m12 *. r1)) /. det;
            st.v1 <- v1n;
            st.v2 <- v2n)
      t.branches;
    times.(k) <- time;
    values.(k) <- output time
  done;
  Signal.Waveform.make times values

let equations t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "// model: %s (order %d)\n" t.name (order t);
  Printf.bprintf buf "// static path\n";
  Printf.bprintf buf "y0(t) = F0(x(t)),  F0(x) = %s\n\n" t.static_path.Static_fn.formula;
  Array.iteri
    (fun k b ->
      match b with
      | First_order { a; f } ->
          Printf.bprintf buf "// branch %d (real pole)\n" k;
          Printf.bprintf buf "d/dt y%d = %.6e * y%d + f%d(x(t))\n" (k + 1) a (k + 1) (k + 1);
          Printf.bprintf buf "f%d(x) = %s\n\n" (k + 1) f.Static_fn.formula
      | Second_order { alpha; beta; f1; f2 } ->
          Printf.bprintf buf "// branch %d (complex pole pair %.6e +/- j%.6e)\n" k alpha beta;
          Printf.bprintf buf
            "d/dt y%da = %.6e*y%da + %.6e*y%db + f%da(x(t))\n" (k + 1) alpha (k + 1)
            beta (k + 1) (k + 1);
          Printf.bprintf buf
            "d/dt y%db = %.6e*y%da + %.6e*y%db + f%db(x(t))\n" (k + 1) (-.beta)
            (k + 1) alpha (k + 1) (k + 1);
          Printf.bprintf buf "f%da(x) = %s\n" (k + 1) f1.Static_fn.formula;
          Printf.bprintf buf "f%db(x) = %s\n\n" (k + 1) f2.Static_fn.formula)
    t.branches;
  Buffer.add_string buf "y(t) = y0(t)";
  Array.iteri
    (fun k b ->
      match b with
      | First_order _ -> Printf.bprintf buf " + y%d" (k + 1)
      | Second_order _ -> Printf.bprintf buf " + y%da + y%db" (k + 1) (k + 1))
    t.branches;
  Buffer.add_string buf "\n";
  Buffer.contents buf
