(** Export of extracted models to behavioral description languages.

    The paper exports the RVF equations to VHDL-AMS; here we emit
    Verilog-A (the same class of analog behavioral language) plus plain
    analytical equations, which "can be exported to almost any
    mathematical software package". Formulas come from the static stages'
    [formula] strings, so only fully analytic models produce standalone
    code; numeric-table stages are flagged in a comment. *)

val verilog_a : ?module_name:string -> Hmodel.t -> string
(** A self-contained Verilog-A module with one internal node per dynamic
    state and the static nonlinearities as analog functions. *)

val matlab : ?function_name:string -> Hmodel.t -> string
(** A MATLAB/Octave right-hand-side function for use with [ode45]-style
    integrators. *)
