lib/hammerstein/hmodel.ml: Array Buffer Complex Float Printf Signal Static_fn Stdlib
