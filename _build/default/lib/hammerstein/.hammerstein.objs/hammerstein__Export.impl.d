lib/hammerstein/export.ml: Array Buffer Hmodel List Printf Static_fn
