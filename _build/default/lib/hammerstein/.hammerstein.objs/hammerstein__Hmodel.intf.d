lib/hammerstein/hmodel.mli: Complex Signal Static_fn
