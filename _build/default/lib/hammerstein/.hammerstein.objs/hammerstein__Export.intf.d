lib/hammerstein/export.mli: Hmodel
