lib/hammerstein/static_fn.mli:
