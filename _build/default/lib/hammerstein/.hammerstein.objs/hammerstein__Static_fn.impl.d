lib/hammerstein/static_fn.ml: Array Printf
