type t = {
  eval : float -> float;
  deriv : float -> float;
  formula : string;
  analytic : bool;
}

let make ?(analytic = true) ~formula ~eval ~deriv () =
  { eval; deriv; formula; analytic }

let zero = { eval = (fun _ -> 0.0); deriv = (fun _ -> 0.0); formula = "0"; analytic = true }

let add a b =
  {
    eval = (fun x -> a.eval x +. b.eval x);
    deriv = (fun x -> a.deriv x +. b.deriv x);
    formula = Printf.sprintf "(%s) + (%s)" a.formula b.formula;
    analytic = a.analytic && b.analytic;
  }

let sub a b =
  {
    eval = (fun x -> a.eval x -. b.eval x);
    deriv = (fun x -> a.deriv x -. b.deriv x);
    formula = Printf.sprintf "(%s) - (%s)" a.formula b.formula;
    analytic = a.analytic && b.analytic;
  }

let scale k a =
  {
    eval = (fun x -> k *. a.eval x);
    deriv = (fun x -> k *. a.deriv x);
    formula = Printf.sprintf "%g*(%s)" k a.formula;
    analytic = a.analytic;
  }

let of_samples_numeric ~xs ~rs =
  let n = Array.length xs in
  if n < 2 || Array.length rs <> n then
    invalid_arg "Static_fn.of_samples_numeric: need >= 2 matching samples";
  (* cumulative trapezoid for the antiderivative at the sample points *)
  let acc = Array.make n 0.0 in
  for k = 1 to n - 1 do
    acc.(k) <-
      acc.(k - 1) +. (0.5 *. (rs.(k) +. rs.(k - 1)) *. (xs.(k) -. xs.(k - 1)))
  done;
  let interp table x =
    if x <= xs.(0) then table.(0) +. (rs.(0) *. (x -. xs.(0)))
    else if x >= xs.(n - 1) then table.(n - 1) +. (rs.(n - 1) *. (x -. xs.(n - 1)))
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if xs.(mid) <= x then lo := mid else hi := mid
      done;
      let w = (x -. xs.(!lo)) /. (xs.(!hi) -. xs.(!lo)) in
      table.(!lo) +. (w *. (table.(!hi) -. table.(!lo)))
    end
  in
  let interp_deriv x =
    if x <= xs.(0) then rs.(0)
    else if x >= xs.(n - 1) then rs.(n - 1)
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if xs.(mid) <= x then lo := mid else hi := mid
      done;
      let w = (x -. xs.(!lo)) /. (xs.(!hi) -. xs.(!lo)) in
      rs.(!lo) +. (w *. (rs.(!hi) -. rs.(!lo)))
    end
  in
  {
    eval = interp acc;
    deriv = interp_deriv;
    formula = Printf.sprintf "<numeric table over [%g, %g], %d points>" xs.(0) xs.(n - 1) n;
    analytic = false;
  }
