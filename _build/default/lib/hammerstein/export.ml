let branch_states (m : Hmodel.t) =
  let names = ref [] in
  Array.iteri
    (fun k b ->
      match b with
      | Hmodel.First_order _ -> names := [ Printf.sprintf "y%d" (k + 1) ] :: !names
      | Hmodel.Second_order _ ->
          names :=
            [ Printf.sprintf "y%da" (k + 1); Printf.sprintf "y%db" (k + 1) ]
            :: !names)
    m.Hmodel.branches;
  List.rev !names

let warn_not_analytic buf (m : Hmodel.t) =
  if not (Hmodel.analytic m) then
    Buffer.add_string buf
      "// WARNING: some static stages only exist as numeric tables;\n\
       // the emitted expressions below are placeholders for those stages.\n"

let verilog_a ?(module_name = "tft_rvf_model") (m : Hmodel.t) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "// generated from model %S\n" m.Hmodel.name;
  warn_not_analytic buf m;
  Printf.bprintf buf "`include \"disciplines.vams\"\n\n";
  Printf.bprintf buf "module %s(in, out);\n" module_name;
  Printf.bprintf buf "  inout in, out;\n  electrical in, out;\n";
  let states = branch_states m in
  List.iter
    (List.iter (fun s -> Printf.bprintf buf "  electrical %s;\n" s))
    states;
  Printf.bprintf buf "\n  analog begin\n";
  Printf.bprintf buf "    // x(t) = u(t): state estimator of dimension 1\n";
  Array.iteri
    (fun k b ->
      match b with
      | Hmodel.First_order { a; f } ->
          Printf.bprintf buf "    // branch %d: f(x) = %s\n" (k + 1)
            f.Static_fn.formula;
          Printf.bprintf buf
            "    ddt(V(y%d)) <+ %.9e*V(y%d) + (%s);\n" (k + 1) a (k + 1)
            (Printf.sprintf "f%d(V(in))" (k + 1))
      | Hmodel.Second_order { alpha; beta; f1; f2 } ->
          Printf.bprintf buf "    // branch %d: f1(x) = %s\n" (k + 1)
            f1.Static_fn.formula;
          Printf.bprintf buf "    //            f2(x) = %s\n" f2.Static_fn.formula;
          Printf.bprintf buf
            "    ddt(V(y%da)) <+ %.9e*V(y%da) + %.9e*V(y%db) + f%da(V(in));\n"
            (k + 1) alpha (k + 1) beta (k + 1) (k + 1);
          Printf.bprintf buf
            "    ddt(V(y%db)) <+ %.9e*V(y%da) + %.9e*V(y%db) + f%db(V(in));\n"
            (k + 1) (-.beta) (k + 1) alpha (k + 1) (k + 1))
    m.Hmodel.branches;
  Printf.bprintf buf "    V(out) <+ (%s)" "F0(V(in))";
  Array.iteri
    (fun k b ->
      match b with
      | Hmodel.First_order _ -> Printf.bprintf buf " + V(y%d)" (k + 1)
      | Hmodel.Second_order _ ->
          Printf.bprintf buf " + V(y%da) + V(y%db)" (k + 1) (k + 1))
    m.Hmodel.branches;
  Printf.bprintf buf ";\n";
  Printf.bprintf buf "    // F0(x) = %s\n" m.Hmodel.static_path.Static_fn.formula;
  Printf.bprintf buf "  end\nendmodule\n";
  Buffer.contents buf

let matlab ?(function_name = "tft_rvf_rhs") (m : Hmodel.t) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "function [dydt, yout] = %s(t, y, u)\n" function_name;
  Printf.bprintf buf "%% generated from model '%s'\n" m.Hmodel.name;
  warn_not_analytic buf m;
  Printf.bprintf buf "x = u(t);\n";
  Printf.bprintf buf "dydt = zeros(%d, 1);\n" (Hmodel.order m);
  let idx = ref 0 in
  Array.iteri
    (fun k b ->
      match b with
      | Hmodel.First_order { a; f } ->
          Printf.bprintf buf "%% f%d(x) = %s\n" (k + 1) f.Static_fn.formula;
          Printf.bprintf buf "dydt(%d) = %.9e*y(%d) + f%d(x);\n" (!idx + 1) a
            (!idx + 1) (k + 1);
          incr idx
      | Hmodel.Second_order { alpha; beta; f1; f2 } ->
          Printf.bprintf buf "%% f%da(x) = %s\n" (k + 1) f1.Static_fn.formula;
          Printf.bprintf buf "%% f%db(x) = %s\n" (k + 1) f2.Static_fn.formula;
          Printf.bprintf buf "dydt(%d) = %.9e*y(%d) + %.9e*y(%d) + f%da(x);\n"
            (!idx + 1) alpha (!idx + 1) beta (!idx + 2) (k + 1);
          Printf.bprintf buf "dydt(%d) = %.9e*y(%d) + %.9e*y(%d) + f%db(x);\n"
            (!idx + 2) (-.beta) (!idx + 1) alpha (!idx + 2) (k + 1);
          idx := !idx + 2)
    m.Hmodel.branches;
  Printf.bprintf buf "%% F0(x) = %s\n" m.Hmodel.static_path.Static_fn.formula;
  Printf.bprintf buf "yout = F0(x) + sum(y);\nend\n";
  Buffer.contents buf
