(** Static nonlinear stages of a Hammerstein model, represented
    generically so that both regression backends (RVF with closed-form
    integrals, CAFFEINE with symbolic-or-numeric integrals) can plug in. *)

type t = {
  eval : float -> float;  (** f(x) — the integrated nonlinearity *)
  deriv : float -> float;  (** f'(x) = r(x) — the fitted residue function *)
  formula : string;  (** human-readable analytical expression of f *)
  analytic : bool;  (** false when the integral needed a numeric fallback *)
}

val make :
  ?analytic:bool -> formula:string -> eval:(float -> float) ->
  deriv:(float -> float) -> unit -> t

val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val of_samples_numeric : xs:float array -> rs:float array -> t
(** Numeric fallback: [deriv] interpolates the samples [(xs, rs)] and
    [eval] is the cumulative trapezoidal integral. [analytic] is false —
    this is what a non-integrable CAFFEINE term degrades to. *)
