(** Parallel Hammerstein models: static nonlinearities feeding a bank of
    first/second-order linear filters (eqs. (7) and (12)–(14) of the
    paper), plus the memoryless static path reconstructed from the DC
    conductance trace. *)

type branch =
  | First_order of { a : float; f : Static_fn.t }
      (** [ẏ = a·y + f(x(t))], output contribution [y] *)
  | Second_order of {
      alpha : float;
      beta : float;
      f1 : Static_fn.t;
      f2 : Static_fn.t;
    }
      (** complex pole pair [α ± jβ] in the input-shifted real realization
          (14): [ẏ = [α β; −β α]·y + (f1(x), f2(x))ᵀ], output [y₁ + y₂] *)

type t = {
  branches : branch array;
  static_path : Static_fn.t;  (** F₀ with its integration constant folded in *)
  name : string;
}

val make :
  ?name:string -> branches:branch array -> static_path:Static_fn.t -> unit -> t

val order : t -> int
(** Total dynamic state dimension. *)

val analytic : t -> bool
(** True when every static stage has a closed-form expression — the
    paper's "fully automated" criterion. *)

val transfer : t -> x:float -> s:Complex.t -> Complex.t
(** Frozen-state transfer function [T(x, s)] of the model (the modeled
    TFT hyperplane, Fig. 7): [H₀(x) + Σ_p r_p(x)/(s − a_p)] computed from
    the derivatives of the static stages. *)

val dc_gain : t -> x:float -> float
(** [T(x, 0)] — the small-signal DC gain at state [x]. *)

val dc_output : t -> x:float -> float
(** Steady-state output for a constant input [x]: the static path plus
    every branch's equilibrium [−A⁻¹·f(x)] contribution. This is the
    model's large-signal DC transfer curve. *)

val simulate :
  t -> u:(float -> float) -> t_stop:float -> dt:float -> Signal.Waveform.t
(** Time-domain response to input [u] from the DC steady state at
    [u(0)], fixed-step trapezoidal update per branch (A-stable; each
    step costs a handful of flops per pole — this is where the paper's
    speedup over transistor-level simulation comes from). *)

val equations : t -> string
(** The analytical differential equations as readable text. *)
