(* Tests for units, netlist construction/validation and the parser. *)

let check_float = Alcotest.(check (float 1e-12))

(* ---------------- Units ---------------- *)

let parse s = Circuit.Units.parse_exn s

let test_units_plain () =
  check_float "int" 42.0 (parse "42");
  check_float "float" 2.5 (parse "2.5");
  check_float "exp" 2.5e9 (parse "2.5e9");
  check_float "neg" (-3.0) (parse "-3")

let test_units_suffixes () =
  check_float "k" 4700.0 (parse "4.7k");
  check_float "meg" 1e6 (parse "1meg");
  check_float "m" 1e-3 (parse "1m");
  check_float "u" 1e-6 (parse "1u");
  check_float "n" 1e-9 (parse "1n");
  check_float "p" 1e-12 (parse "1p");
  check_float "f" 1e-15 (parse "1f");
  check_float "g" 1e9 (parse "1g");
  check_float "t" 1e12 (parse "1t")

let test_units_trailing () =
  check_float "pF" 10e-12 (parse "10pF");
  check_float "kOhm" 1e3 (parse "1kOhm");
  check_float "volts" 10.0 (parse "10V")

let test_units_bad () =
  Alcotest.(check bool) "garbage" true (Circuit.Units.parse "abc" = None);
  Alcotest.(check bool) "empty" true (Circuit.Units.parse "" = None)

let test_units_format () =
  Alcotest.(check string) "pico" "2.2p" (Circuit.Units.format_si 2.2e-12);
  Alcotest.(check string) "kilo" "4.7k" (Circuit.Units.format_si 4.7e3);
  Alcotest.(check string) "zero" "0" (Circuit.Units.format_si 0.0)

(* ---------------- Netlist ---------------- *)

let test_netlist_validation_duplicate () =
  Alcotest.(check bool) "duplicate name rejected" true
    (match
       Circuit.Netlist.make
         [
           Circuit.Netlist.resistor ~name:"R1" "a" "0" 1.0;
           Circuit.Netlist.resistor ~name:"R1" "b" "0" 2.0;
         ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_netlist_validation_ground () =
  Alcotest.(check bool) "floating circuit rejected" true
    (match
       Circuit.Netlist.make [ Circuit.Netlist.resistor ~name:"R1" "a" "b" 1.0 ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_netlist_validation_value () =
  Alcotest.(check bool) "negative resistance rejected" true
    (match Circuit.Netlist.resistor ~name:"R1" "a" "0" (-5.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_netlist_nodes () =
  let nl =
    Circuit.Netlist.make
      [
        Circuit.Netlist.resistor ~name:"R1" "b" "a" 1.0;
        Circuit.Netlist.capacitor ~name:"C1" "a" "0" 1e-12;
      ]
  in
  Alcotest.(check (list string)) "sorted nodes" [ "a"; "b" ] (Circuit.Netlist.nodes nl)

let test_netlist_ground_aliases () =
  Alcotest.(check bool) "0 is ground" true (Circuit.Netlist.is_ground "0");
  Alcotest.(check bool) "gnd is ground" true (Circuit.Netlist.is_ground "GND");
  Alcotest.(check bool) "other is not" false (Circuit.Netlist.is_ground "out")

let test_netlist_find () =
  let nl =
    Circuit.Netlist.make [ Circuit.Netlist.resistor ~name:"R1" "a" "0" 1.0 ]
  in
  Alcotest.(check bool) "find hit" true (Circuit.Netlist.find nl "R1" <> None);
  Alcotest.(check bool) "find miss" true (Circuit.Netlist.find nl "R2" = None)

(* ---------------- Parser ---------------- *)

let test_parser_basic () =
  let nl =
    Circuit.Parser.parse_string
      {|
* comment line
R1 in out 1k
C1 out 0 1n
.end
|}
  in
  Alcotest.(check int) "two components" 2 (Circuit.Netlist.component_count nl)

let test_parser_waves () =
  let nl =
    Circuit.Parser.parse_string
      {|
V1 a 0 DC 1.5
V2 b 0 SIN(0 1 1e6)
V3 c 0 PULSE(0 1 0 1n 1n 10u 20u)
V4 d 0 PWL(0 0 1u 1 2u 0)
V5 e 0 BITS(0 1 2.5g 100p 1011)
R1 a 0 1k
|}
  in
  Alcotest.(check int) "six components" 6 (Circuit.Netlist.component_count nl);
  (match Circuit.Netlist.find nl "V2" with
  | Some { element = Circuit.Netlist.Vsource { wave = Circuit.Netlist.Sine s; _ }; _ } ->
      check_float "sine freq" 1e6 s.freq;
      check_float "sine ampl" 1.0 s.ampl
  | _ -> Alcotest.fail "V2 is not a sine");
  match Circuit.Netlist.find nl "V5" with
  | Some { element = Circuit.Netlist.Vsource { wave = Circuit.Netlist.Bits b; _ }; _ } ->
      check_float "rate" 2.5e9 b.rate;
      Alcotest.(check int) "bit count" 4 (Array.length b.bits);
      Alcotest.(check bool) "bit values" true (b.bits = [| true; false; true; true |])
  | _ -> Alcotest.fail "V5 is not a bit pattern"

let test_parser_mosfet_params () =
  let nl =
    Circuit.Parser.parse_string
      {|
M1 d g 0 NMOS KP=250u VTH=0.45 W=12u L=0.25u
Vd d 0 DC 1
Vg g 0 DC 1
|}
  in
  match Circuit.Netlist.find nl "M1" with
  | Some { element = Circuit.Netlist.Mosfet { params; pol; _ }; _ } ->
      Alcotest.(check bool) "polarity" true (pol = Circuit.Netlist.Nmos);
      check_float "kp" 250e-6 params.kp;
      check_float "vth" 0.45 params.vth;
      check_float "w" 12e-6 params.w
  | _ -> Alcotest.fail "M1 not parsed as mosfet"

let test_parser_diode_defaults () =
  let nl = Circuit.Parser.parse_string "D1 a 0 N=1.5\nR1 a 0 1k" in
  match Circuit.Netlist.find nl "D1" with
  | Some { element = Circuit.Netlist.Diode { params; _ }; _ } ->
      check_float "ideality" 1.5 params.ideality;
      check_float "is default" 1e-14 params.i_sat
  | _ -> Alcotest.fail "D1 not parsed"

let test_parser_continuation () =
  let nl =
    Circuit.Parser.parse_string "R1 a 0\n+ 2k\nC1 a 0 1p"
  in
  match Circuit.Netlist.find nl "R1" with
  | Some { element = Circuit.Netlist.Resistor { ohms; _ }; _ } ->
      check_float "continued value" 2000.0 ohms
  | _ -> Alcotest.fail "R1 not parsed"

let test_parser_errors () =
  let expect_error text =
    match Circuit.Parser.parse_string text with
    | exception Circuit.Parser.Parse_error _ -> true
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad value" true (expect_error "R1 a 0 abc");
  Alcotest.(check bool) "bad directive" true (expect_error ".include foo\nR1 a 0 1k");
  Alcotest.(check bool) "unbalanced paren" true (expect_error "V1 a 0 SIN(0 1");
  Alcotest.(check bool) "unknown card" true (expect_error "X1 a b c sub");
  Alcotest.(check bool) "bad bits" true (expect_error "V1 a 0 BITS(0 1 1g 1p 10x1)")

let test_parser_roundtrip_pp () =
  (* pp output of a parsed netlist parses again to the same component count *)
  let nl =
    Circuit.Parser.parse_string
      {|
V1 in 0 SIN(0.9 0.5 1e6)
R1 in mid 50
C1 mid 0 1p
D1 mid 0 IS=1e-14 N=1 CJ=0
|}
  in
  let text = Format.asprintf "%a" Circuit.Netlist.pp nl in
  let nl2 = Circuit.Parser.parse_string text in
  Alcotest.(check int) "component count preserved"
    (Circuit.Netlist.component_count nl)
    (Circuit.Netlist.component_count nl2)

let prop_units_roundtrip =
  QCheck.Test.make ~count:100 ~name:"format_si/parse roundtrip"
    QCheck.(float_range 1e-14 1e11)
    (fun x ->
      QCheck.assume (x > 0.0);
      match Circuit.Units.parse (Circuit.Units.format_si x) with
      | Some y -> Float.abs (y -. x) <= 1e-4 *. x (* %g keeps 6 digits *)
      | None -> false)

let suite =
  [
    Alcotest.test_case "units plain" `Quick test_units_plain;
    Alcotest.test_case "units suffixes" `Quick test_units_suffixes;
    Alcotest.test_case "units trailing" `Quick test_units_trailing;
    Alcotest.test_case "units bad" `Quick test_units_bad;
    Alcotest.test_case "units format" `Quick test_units_format;
    Alcotest.test_case "netlist duplicate" `Quick test_netlist_validation_duplicate;
    Alcotest.test_case "netlist ground" `Quick test_netlist_validation_ground;
    Alcotest.test_case "netlist values" `Quick test_netlist_validation_value;
    Alcotest.test_case "netlist nodes" `Quick test_netlist_nodes;
    Alcotest.test_case "ground aliases" `Quick test_netlist_ground_aliases;
    Alcotest.test_case "netlist find" `Quick test_netlist_find;
    Alcotest.test_case "parser basic" `Quick test_parser_basic;
    Alcotest.test_case "parser waves" `Quick test_parser_waves;
    Alcotest.test_case "parser mosfet" `Quick test_parser_mosfet_params;
    Alcotest.test_case "parser diode defaults" `Quick test_parser_diode_defaults;
    Alcotest.test_case "parser continuation" `Quick test_parser_continuation;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser pp roundtrip" `Quick test_parser_roundtrip_pp;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_units_roundtrip ]
