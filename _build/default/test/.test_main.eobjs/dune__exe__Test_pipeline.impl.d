test/test_pipeline.ml: Alcotest Array Circuit Circuits Complex Engine Float Hammerstein List Printf Signal String Tft Tft_rvf
