test/test_vf.ml: Alcotest Array Circuits Complex Engine Float Linalg List Printf QCheck QCheck_alcotest Random Signal Vf
