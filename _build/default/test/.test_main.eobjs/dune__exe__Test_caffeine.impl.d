test/test_caffeine.ml: Alcotest Array Caffeine Circuit Circuits Engine Float Fun Hammerstein List Printf QCheck QCheck_alcotest Signal String Tft
