test/test_hammerstein.ml: Alcotest Array Complex Float Hammerstein List Printf Signal String
