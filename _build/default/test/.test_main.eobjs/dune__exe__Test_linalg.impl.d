test/test_linalg.ml: Alcotest Array Complex Float Gen Linalg List QCheck QCheck_alcotest Random
