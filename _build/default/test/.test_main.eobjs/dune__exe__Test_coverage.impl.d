test/test_coverage.ml: Alcotest Array Circuit Circuits Complex Engine Float Hammerstein Linalg List Printf QCheck QCheck_alcotest Signal String Tft Vf
