test/test_tft.ml: Alcotest Array Circuit Circuits Complex Engine Float Linalg Printf Signal Tft
