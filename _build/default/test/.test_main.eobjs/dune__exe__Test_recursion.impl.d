test/test_recursion.ml: Alcotest Array Printf Rvf Signal
