test/test_engine.ml: Alcotest Array Circuit Circuits Complex Engine Float Linalg List Printf QCheck QCheck_alcotest Random Signal
