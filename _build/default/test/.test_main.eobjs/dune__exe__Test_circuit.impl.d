test/test_circuit.ml: Alcotest Array Circuit Float Format List QCheck QCheck_alcotest
