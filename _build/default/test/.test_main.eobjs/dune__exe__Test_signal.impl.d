test/test_signal.ml: Alcotest Array Complex Float Gen List QCheck QCheck_alcotest Signal
