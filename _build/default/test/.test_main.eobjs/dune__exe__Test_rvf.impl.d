test/test_rvf.ml: Alcotest Array Circuit Circuits Complex Engine Float Hammerstein List Printf Rvf Signal String Tft Tft_rvf Vf
