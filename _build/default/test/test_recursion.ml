(* Tests for the multivariate (gridded) RVF recursion of eq. (16). *)

let check_close tol = Alcotest.(check (float tol))

let grid_xy () =
  (Signal.Grid.linspace 0.0 2.0 41, Signal.Grid.linspace (-1.0) 1.0 31)

let tensor f xs ys =
  Array.map (fun x -> Array.map (fun y -> f x y) ys) xs

let test_fit_separable () =
  (* f(x, y) = g(x)·h(y) with rational-friendly factors *)
  let f x y =
    (1.0 /. (((x -. 1.0) ** 2.0) +. 0.25)) *. (1.0 +. (0.5 *. y))
  in
  let xs, ys = grid_xy () in
  let data = tensor f xs ys in
  let t = Rvf.Recursion.fit ~xs ~ys ~data () in
  let rms = Rvf.Recursion.rms_error t ~xs ~ys ~data in
  Alcotest.(check bool)
    (Printf.sprintf "rms %.2e small" rms)
    true (rms < 1e-3);
  (* pointwise off-grid check *)
  check_close 5e-3 "off-grid point" (f 0.77 0.33)
    (Rvf.Recursion.eval t ~x:0.77 ~y:0.33)

let test_fit_nonseparable () =
  (* genuinely coupled: a saturating surface whose knee moves with y *)
  let f x y = tanh (3.0 *. (x -. 1.0 -. (0.3 *. y))) in
  let xs, ys = grid_xy () in
  let data = tensor f xs ys in
  let t = Rvf.Recursion.fit ~eps:2e-3 ~xs ~ys ~data () in
  let rms = Rvf.Recursion.rms_error t ~xs ~ys ~data in
  Alcotest.(check bool)
    (Printf.sprintf "rms %.2e below 2e-2" rms)
    true (rms < 2e-2);
  check_close 5e-2 "moving knee tracked" (f 1.2 0.5)
    (Rvf.Recursion.eval t ~x:1.2 ~y:0.5)

let test_integral_fundamental_theorem () =
  let f x y = (2.0 *. (x -. 0.9)) /. (((x -. 0.9) ** 2.0) +. 0.16) *. (1.0 -. (0.2 *. y)) in
  let xs, ys = grid_xy () in
  let data = tensor f xs ys in
  let t = Rvf.Recursion.fit ~xs ~ys ~data () in
  (* d/dx integral_x = eval *)
  let y = 0.4 and x = 1.3 and h = 1e-5 in
  let fd =
    (Rvf.Recursion.integral_x t ~x0:0.1 ~x:(x +. h) ~y
    -. Rvf.Recursion.integral_x t ~x0:0.1 ~x:(x -. h) ~y)
    /. (2.0 *. h)
  in
  check_close 1e-4 "derivative of integral" (Rvf.Recursion.eval t ~x ~y) fd;
  (* integral vanishes at the anchor *)
  check_close 1e-12 "anchored" 0.0 (Rvf.Recursion.integral_x t ~x0:0.1 ~x:0.1 ~y)

let test_integral_matches_quadrature () =
  let f x y = tanh (2.0 *. (x -. 1.0)) *. (1.0 +. (0.4 *. y *. y)) in
  let xs, ys = grid_xy () in
  let data = tensor f xs ys in
  let t = Rvf.Recursion.fit ~eps:2e-3 ~xs ~ys ~data () in
  let y = -0.5 and a = 0.3 and b = 1.8 in
  let n = 4000 in
  let quad = ref 0.0 in
  for k = 0 to n - 1 do
    let t0 = a +. ((b -. a) *. float_of_int k /. float_of_int n) in
    let t1 = a +. ((b -. a) *. float_of_int (k + 1) /. float_of_int n) in
    quad :=
      !quad
      +. (0.5 *. (Rvf.Recursion.eval t ~x:t0 ~y +. Rvf.Recursion.eval t ~x:t1 ~y)
         *. (t1 -. t0))
  done;
  check_close 1e-5 "closed form = quadrature" !quad
    (Rvf.Recursion.integral_x t ~x0:a ~x:b ~y)

let test_fit_validation () =
  let xs, ys = grid_xy () in
  Alcotest.(check bool) "ragged data rejected" true
    (match Rvf.Recursion.fit ~xs ~ys ~data:[| [| 1.0 |] |] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pole_counts_exposed () =
  let f x y = (1.0 +. (0.1 *. y)) /. (((x -. 1.0) ** 2.0) +. 0.25) in
  let xs, ys = grid_xy () in
  let t = Rvf.Recursion.fit ~xs ~ys ~data:(tensor f xs ys) () in
  Alcotest.(check bool) "x poles > 0" true (Rvf.Recursion.x_pole_count t > 0);
  Alcotest.(check bool) "y poles > 0" true (Rvf.Recursion.y_pole_count t > 0)

let suite =
  [
    Alcotest.test_case "fit separable" `Quick test_fit_separable;
    Alcotest.test_case "fit nonseparable" `Quick test_fit_nonseparable;
    Alcotest.test_case "integral derivative" `Quick test_integral_fundamental_theorem;
    Alcotest.test_case "integral quadrature" `Quick test_integral_matches_quadrature;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "pole counts" `Quick test_pole_counts_exposed;
  ]
