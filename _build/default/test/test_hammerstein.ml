(* Tests for the Hammerstein model container, its frozen-state transfer
   function, time-domain simulation against closed-form LTI responses,
   and the exporters. *)

let check_close tol = Alcotest.(check (float tol))

let linear_static gain =
  Hammerstein.Static_fn.make ~formula:(Printf.sprintf "%g*x" gain)
    ~eval:(fun x -> gain *. x)
    ~deriv:(fun _ -> gain)
    ()

(* ---------------- Static_fn ---------------- *)

let test_static_fn_algebra () =
  let f = linear_static 2.0 and g = linear_static 3.0 in
  let s = Hammerstein.Static_fn.add f g in
  check_close 1e-12 "add eval" 5.0 (s.Hammerstein.Static_fn.eval 1.0);
  let d = Hammerstein.Static_fn.sub f g in
  check_close 1e-12 "sub eval" (-1.0) (d.Hammerstein.Static_fn.eval 1.0);
  let k = Hammerstein.Static_fn.scale 4.0 f in
  check_close 1e-12 "scale deriv" 8.0 (k.Hammerstein.Static_fn.deriv 0.0);
  Alcotest.(check bool) "analytic propagates" true s.Hammerstein.Static_fn.analytic

let test_static_fn_numeric_table () =
  let xs = Signal.Grid.linspace 0.0 1.0 101 in
  let rs = Array.map (fun x -> 2.0 *. x) xs in
  let f = Hammerstein.Static_fn.of_samples_numeric ~xs ~rs in
  Alcotest.(check bool) "not analytic" false f.Hammerstein.Static_fn.analytic;
  (* integral of 2x from 0 is x^2 *)
  check_close 1e-3 "integral" 0.25 (f.Hammerstein.Static_fn.eval 0.5);
  check_close 1e-9 "deriv interpolates" 1.0 (f.Hammerstein.Static_fn.deriv 0.5);
  (* linear extrapolation beyond the table *)
  check_close 1e-3 "extrapolated" (1.0 +. (2.0 *. 0.5))
    (f.Hammerstein.Static_fn.eval 1.5)

(* ---------------- Hmodel structure ---------------- *)

let first_order_model ~a ~gain =
  Hammerstein.Hmodel.make
    ~branches:[| Hammerstein.Hmodel.First_order { a; f = linear_static gain } |]
    ~static_path:Hammerstein.Static_fn.zero ()

let test_hmodel_order () =
  let m = first_order_model ~a:(-1e6) ~gain:1e6 in
  Alcotest.(check int) "order 1" 1 (Hammerstein.Hmodel.order m);
  let m2 =
    Hammerstein.Hmodel.make
      ~branches:
        [|
          Hammerstein.Hmodel.Second_order
            {
              alpha = -1e6;
              beta = 2e6;
              f1 = linear_static 1.0;
              f2 = linear_static 0.0;
            };
          Hammerstein.Hmodel.First_order { a = -3e6; f = linear_static 1.0 };
        |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  Alcotest.(check int) "order 3" 3 (Hammerstein.Hmodel.order m2)

let test_hmodel_rejects_unstable () =
  Alcotest.(check bool) "unstable real pole rejected" true
    (match first_order_model ~a:1e6 ~gain:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_hmodel_analytic_flag () =
  let numeric =
    Hammerstein.Static_fn.of_samples_numeric
      ~xs:(Signal.Grid.linspace 0.0 1.0 10)
      ~rs:(Array.make 10 1.0)
  in
  let m =
    Hammerstein.Hmodel.make
      ~branches:[| Hammerstein.Hmodel.First_order { a = -1.0; f = numeric } |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  Alcotest.(check bool) "numeric stage breaks analyticity" false
    (Hammerstein.Hmodel.analytic m)

(* ---------------- transfer ---------------- *)

let test_transfer_first_order () =
  (* branch r/(s-a) with r = gain (since f' = gain) *)
  let a = -1e6 and gain = 2e6 in
  let m = first_order_model ~a ~gain in
  let s = Signal.Grid.s_of_hz 1e5 in
  let expected = Complex.div { Complex.re = gain; im = 0.0 } (Complex.sub s { Complex.re = a; im = 0.0 }) in
  let t = Hammerstein.Hmodel.transfer m ~x:0.0 ~s in
  Alcotest.(check bool) "first-order transfer" true
    (Complex.norm (Complex.sub t expected) < 1e-9)

let test_transfer_second_order_matches_pair () =
  (* the input-shifted 2x2 block realizes r/(s-a) + conj both *)
  let alpha = -2e6 and beta = 8e6 in
  let c = 1.5e6 and d = -0.5e6 in
  (* f1' = c + d, f2' = c - d *)
  let m =
    Hammerstein.Hmodel.make
      ~branches:
        [|
          Hammerstein.Hmodel.Second_order
            {
              alpha;
              beta;
              f1 = linear_static (c +. d);
              f2 = linear_static (c -. d);
            };
        |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  let a = { Complex.re = alpha; im = beta } in
  let r = { Complex.re = c; im = d } in
  let s = Signal.Grid.s_of_hz 3e5 in
  let expected =
    Complex.add
      (Complex.div r (Complex.sub s a))
      (Complex.div (Complex.conj r) (Complex.sub s (Complex.conj a)))
  in
  let t = Hammerstein.Hmodel.transfer m ~x:0.0 ~s in
  Alcotest.(check bool) "pair transfer" true
    (Complex.norm (Complex.sub t expected) < 1e-6)

let test_dc_gain_includes_static_path () =
  let m =
    Hammerstein.Hmodel.make ~branches:[||] ~static_path:(linear_static 2.5) ()
  in
  check_close 1e-12 "static dc gain" 2.5 (Hammerstein.Hmodel.dc_gain m ~x:0.3)

(* ---------------- simulate ---------------- *)

let test_simulate_first_order_step () =
  (* linear first-order lowpass: y' = a y + (-a) u, H(0) = 1 *)
  let a = -1e7 in
  let m = first_order_model ~a ~gain:(-.a) in
  let u t = if t >= 1e-8 then 1.0 else 0.0 in
  let w = Hammerstein.Hmodel.simulate m ~u ~t_stop:1e-6 ~dt:5e-10 in
  (* analytic: y(t) = 1 - exp(a (t - 1e-8)) after the step *)
  List.iter
    (fun t ->
      let expected = 1.0 -. exp (a *. (t -. 1e-8)) in
      check_close 2e-3 (Printf.sprintf "step response at %g" t) expected
        (Signal.Waveform.value_at w t))
    [ 5e-8; 1e-7; 3e-7; 9e-7 ]

let test_simulate_starts_at_steady_state () =
  let m = first_order_model ~a:(-1e7) ~gain:1e7 in
  let u _ = 0.7 in
  let w = Hammerstein.Hmodel.simulate m ~u ~t_stop:1e-7 ~dt:1e-9 in
  (* constant input: output stays at DC steady state 0.7 *)
  Array.iter
    (fun v -> check_close 1e-9 "steady" 0.7 v)
    (Signal.Waveform.values w)

let test_simulate_second_order_sine_gain () =
  (* drive the 2x2 block with a sine and compare the steady-state
     amplitude with |T(j w0)| *)
  let alpha = -5e6 and beta = 3e7 in
  let m =
    Hammerstein.Hmodel.make
      ~branches:
        [|
          Hammerstein.Hmodel.Second_order
            {
              alpha;
              beta;
              f1 = linear_static 3e7;
              f2 = linear_static 1e7;
            };
        |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  let f0 = 2e6 in
  let u t = sin (2.0 *. Float.pi *. f0 *. t) in
  let w = Hammerstein.Hmodel.simulate m ~u ~t_stop:4e-6 ~dt:2.5e-10 in
  (* measure amplitude over the last period *)
  let t0 = 3.5e-6 in
  let samples =
    Array.init 400 (fun k -> Signal.Waveform.value_at w (t0 +. (float_of_int k *. 1.25e-9)))
  in
  let amp =
    0.5
    *. (Array.fold_left Float.max neg_infinity samples
       -. Array.fold_left Float.min infinity samples)
  in
  let expected =
    Complex.norm (Hammerstein.Hmodel.transfer m ~x:0.0 ~s:(Signal.Grid.s_of_hz f0))
  in
  check_close (0.01 *. expected) "sine steady-state gain" expected amp

let test_simulate_linearized_matches_transfer_small_signal () =
  (* nonlinear static stage: a small sine around x0 sees gain |T(x0, jw)| *)
  let f =
    Hammerstein.Static_fn.make ~formula:"tanh" ~eval:(fun x -> 1e7 *. tanh x)
      ~deriv:(fun x -> 1e7 /. (cosh x ** 2.0))
      ()
  in
  let m =
    Hammerstein.Hmodel.make
      ~branches:[| Hammerstein.Hmodel.First_order { a = -1e7; f } |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  let x0 = 0.4 and ampl = 1e-3 and f0 = 1e6 in
  let u t = x0 +. (ampl *. sin (2.0 *. Float.pi *. f0 *. t)) in
  let w = Hammerstein.Hmodel.simulate m ~u ~t_stop:5e-6 ~dt:1e-9 in
  let t0 = 4e-6 in
  let samples =
    Array.init 1000 (fun k -> Signal.Waveform.value_at w (t0 +. (float_of_int k *. 1e-9)))
  in
  let amp =
    0.5
    *. (Array.fold_left Float.max neg_infinity samples
       -. Array.fold_left Float.min infinity samples)
  in
  let expected =
    ampl
    *. Complex.norm (Hammerstein.Hmodel.transfer m ~x:x0 ~s:(Signal.Grid.s_of_hz f0))
  in
  check_close (0.02 *. expected) "small-signal consistency" expected amp

let test_dc_output_matches_simulation () =
  (* dc_output is exactly where simulate settles for a constant input *)
  let f =
    Hammerstein.Static_fn.make ~formula:"nl" ~eval:(fun x -> 1e6 *. tanh x)
      ~deriv:(fun x -> 1e6 /. (cosh x ** 2.0))
      ()
  in
  let m =
    Hammerstein.Hmodel.make
      ~branches:
        [|
          Hammerstein.Hmodel.First_order { a = -2e6; f };
          Hammerstein.Hmodel.Second_order
            { alpha = -1e6; beta = 3e6; f1 = f; f2 = Hammerstein.Static_fn.scale 0.5 f };
        |]
      ~static_path:(Hammerstein.Static_fn.scale 1e-6 f) ()
  in
  List.iter
    (fun x0 ->
      let w = Hammerstein.Hmodel.simulate m ~u:(fun _ -> x0) ~t_stop:1e-5 ~dt:1e-8 in
      let final = Signal.Waveform.value_at w 1e-5 in
      check_close 1e-6 (Printf.sprintf "settles at dc_output(%g)" x0)
        (Hammerstein.Hmodel.dc_output m ~x:x0) final)
    [ -0.5; 0.0; 0.8 ]

(* ---------------- export / equations ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan k = k + nn <= nh && (String.sub hay k nn = needle || scan (k + 1)) in
  nn = 0 || scan 0

let test_equations_text () =
  let m = first_order_model ~a:(-1e6) ~gain:2.0 in
  let text = Hammerstein.Hmodel.equations m in
  Alcotest.(check bool) "has ODE" true (contains text "d/dt y1");
  Alcotest.(check bool) "has static path" true (contains text "F0(x)")

let test_verilog_a_export () =
  let m = first_order_model ~a:(-1e6) ~gain:2.0 in
  let va = Hammerstein.Export.verilog_a m in
  Alcotest.(check bool) "module header" true (contains va "module tft_rvf_model");
  Alcotest.(check bool) "ddt statements" true (contains va "ddt(V(y1))");
  Alcotest.(check bool) "contribution" true (contains va "V(out) <+")

let test_matlab_export () =
  let m = first_order_model ~a:(-1e6) ~gain:2.0 in
  let ml = Hammerstein.Export.matlab m in
  Alcotest.(check bool) "function header" true (contains ml "function");
  Alcotest.(check bool) "rhs" true (contains ml "dydt(1)")

let suite =
  [
    Alcotest.test_case "static_fn algebra" `Quick test_static_fn_algebra;
    Alcotest.test_case "static_fn numeric table" `Quick test_static_fn_numeric_table;
    Alcotest.test_case "hmodel order" `Quick test_hmodel_order;
    Alcotest.test_case "hmodel rejects unstable" `Quick test_hmodel_rejects_unstable;
    Alcotest.test_case "hmodel analytic flag" `Quick test_hmodel_analytic_flag;
    Alcotest.test_case "transfer first order" `Quick test_transfer_first_order;
    Alcotest.test_case "transfer pair" `Quick test_transfer_second_order_matches_pair;
    Alcotest.test_case "dc gain static path" `Quick test_dc_gain_includes_static_path;
    Alcotest.test_case "dc output vs simulate" `Quick test_dc_output_matches_simulation;
    Alcotest.test_case "simulate step" `Quick test_simulate_first_order_step;
    Alcotest.test_case "simulate steady start" `Quick test_simulate_starts_at_steady_state;
    Alcotest.test_case "simulate sine gain" `Quick test_simulate_second_order_sine_gain;
    Alcotest.test_case "simulate small signal" `Quick test_simulate_linearized_matches_transfer_small_signal;
    Alcotest.test_case "equations text" `Quick test_equations_text;
    Alcotest.test_case "verilog-a export" `Quick test_verilog_a_export;
    Alcotest.test_case "matlab export" `Quick test_matlab_export;
  ]
