(* Tests for the closed-form integration (Ratfn) and the RVF extraction
   driver on circuits with known behaviour. *)

let cx re im = { Complex.re; im }
let check_close tol = Alcotest.(check (float tol))

(* ---------------- Ratfn ---------------- *)

let sample_ratfn () =
  {
    Rvf.Ratfn.pairs =
      [|
        { Rvf.Ratfn.beta = 0.8; alpha = 0.3; c1 = 1.5; c2 = -0.4 };
        { Rvf.Ratfn.beta = 1.2; alpha = 0.1; c1 = -0.7; c2 = 0.9 };
      |];
    const = 0.25;
    offset = 1.0;
  }

let test_ratfn_derivative_is_integrand () =
  (* d/dx eval = deriv, checked by finite differences *)
  let r = sample_ratfn () in
  let h = 1e-6 in
  List.iter
    (fun x ->
      let fd = (Rvf.Ratfn.eval r (x +. h) -. Rvf.Ratfn.eval r (x -. h)) /. (2.0 *. h) in
      check_close 1e-6 (Printf.sprintf "derivative at %g" x) (Rvf.Ratfn.deriv r x) fd)
    [ 0.0; 0.5; 0.8; 1.0; 1.3; 2.0 ]

let test_ratfn_matches_quadrature () =
  (* eval(x) - eval(a) equals the numeric integral of deriv over [a, x] *)
  let r = sample_ratfn () in
  let a = 0.2 and x = 1.7 in
  let n = 20000 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    let t0 = a +. ((x -. a) *. float_of_int k /. float_of_int n) in
    let t1 = a +. ((x -. a) *. float_of_int (k + 1) /. float_of_int n) in
    acc := !acc +. (0.5 *. (Rvf.Ratfn.deriv r t0 +. Rvf.Ratfn.deriv r t1) *. (t1 -. t0))
  done;
  check_close 1e-6 "fundamental theorem of calculus" !acc
    (Rvf.Ratfn.eval r x -. Rvf.Ratfn.eval r a)

let test_ratfn_set_value () =
  let r = Rvf.Ratfn.set_value (sample_ratfn ()) ~at:0.9 ~value:42.0 in
  check_close 1e-12 "anchored" 42.0 (Rvf.Ratfn.eval r 0.9)

let test_ratfn_of_model () =
  let poles = [| cx 0.8 0.3; cx 0.8 (-0.3) |] in
  let model =
    { Vf.Model.poles; coeffs = [| [| 1.5; -0.4 |] |]; consts = [| 0.25 |]; slopes = [| 0.0 |] }
  in
  let r = Rvf.Ratfn.of_model model ~elem:0 in
  (* deriv equals the model evaluated on the real axis *)
  List.iter
    (fun x ->
      check_close 1e-10
        (Printf.sprintf "deriv matches model at %g" x)
        (Vf.Model.eval_real model ~elem:0 x)
        (Rvf.Ratfn.deriv r x))
    [ 0.1; 0.8; 1.1; 1.9 ]

let test_ratfn_rejects_real_poles () =
  let model =
    {
      Vf.Model.poles = [| cx 0.5 0.0 |];
      coeffs = [| [| 2.0 |] |];
      consts = [| 0.0 |];
      slopes = [| 0.0 |];
    }
  in
  Alcotest.(check bool) "real pole rejected" true
    (match Rvf.Ratfn.of_model model ~elem:0 with
    | exception Rvf.Ratfn.Not_integrable _ -> true
    | _ -> false)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan k = k + nn <= nh && (String.sub hay k nn = needle || scan (k + 1)) in
  nn = 0 || scan 0

let test_ratfn_formula_mentions_terms () =
  let s = Rvf.Ratfn.formula (sample_ratfn ()) in
  Alcotest.(check bool) "has ln" true (contains_substring s "ln(");
  Alcotest.(check bool) "has atan" true (contains_substring s "atan(")

let test_ratfn_to_static_fn () =
  let r = sample_ratfn () in
  let f = Rvf.Ratfn.to_static_fn r in
  Alcotest.(check bool) "analytic" true f.Hammerstein.Static_fn.analytic;
  check_close 1e-12 "eval consistent" (Rvf.Ratfn.eval r 1.1)
    (f.Hammerstein.Static_fn.eval 1.1);
  check_close 1e-12 "deriv consistent" (Rvf.Ratfn.deriv r 1.1)
    (f.Hammerstein.Static_fn.deriv 1.1)

(* ---------------- RVF extraction on known circuits ---------------- *)

(* A linear RC circuit: the extracted model must match the AC response at
   every state (the residues are state-independent). *)
let test_rvf_linear_circuit () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 SIN(0.5 0.4 1e6)
R1 in out 1k
C1 out 0 1n
|} in
  let mna = Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "out" ] nl in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e3 1e8 30)
      run.Engine.Tran.snapshots
  in
  let r = Rvf.extract ~dataset:ds ~input:0 ~output:0 () in
  (* model transfer matches 1/(1+sRC) at several states and frequencies *)
  List.iter
    (fun x ->
      List.iter
        (fun f ->
          let t = Hammerstein.Hmodel.transfer r.Rvf.model ~x ~s:(Signal.Grid.s_of_hz f) in
          let wrc = 2.0 *. Float.pi *. f *. 1e-6 in
          let expected = Complex.div Complex.one (cx 1.0 wrc) in
          Alcotest.(check bool)
            (Printf.sprintf "T(%g, %g)" x f)
            true
            (Complex.norm (Complex.sub t expected) < 2e-2))
        [ 1e4; 159154.9; 1e7 ])
    [ 0.2; 0.5; 0.8 ]

let test_rvf_static_path_matches_dc_sweep () =
  (* the static path F0 reproduces the DC transfer curve of the clipper *)
  let nl = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Sine
    { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 }) () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 4 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:2.5e-9 in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 30)
      run.Engine.Tran.snapshots
  in
  let r = Rvf.extract ~dataset:ds ~input:0 ~output:0 () in
  (* compare the model's large-signal DC transfer (static path plus branch
     equilibria) against an actual DC sweep of the circuit *)
  List.iter
    (fun u ->
      let nl_dc = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Dc u) () in
      let mna_dc = Engine.Mna.build ~outputs:[ Circuits.Library.clipper_output ] nl_dc in
      let v = Engine.Dc.solve mna_dc in
      let y_dc = (Engine.Mna.output_values mna_dc v).(0) in
      check_close 5e-3 (Printf.sprintf "dc_output(%g)" u) y_dc
        (Hammerstein.Hmodel.dc_output r.Rvf.model ~x:u))
    [ -0.1; 0.1; 0.3; 0.5; 0.7 ]

let test_rvf_dynamic_branches_vanish_at_anchor () =
  (* branch static stages are anchored to zero at the trajectory start *)
  let nl = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Sine
    { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 }) () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 25)
      run.Engine.Tran.snapshots
  in
  let r = Rvf.extract ~dataset:ds ~input:0 ~output:0 () in
  let x0 = ds.Tft.Dataset.samples.(0).Tft.Dataset.x.(0) in
  Array.iter
    (fun branch ->
      match branch with
      | Hammerstein.Hmodel.First_order { f; _ } ->
          check_close 1e-9 "anchored f" 0.0 (f.Hammerstein.Static_fn.eval x0)
      | Hammerstein.Hmodel.Second_order { f1; f2; _ } ->
          check_close 1e-9 "anchored f1" 0.0 (f1.Hammerstein.Static_fn.eval x0);
          check_close 1e-9 "anchored f2" 0.0 (f2.Hammerstein.Static_fn.eval x0))
    r.Rvf.model.Hammerstein.Hmodel.branches

let test_rvf_rejects_multidim_estimator () =
  let nl = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Sine
    { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 }) () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 20 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let ds =
    Tft.Dataset.of_snapshots ~mna
      ~estimator:(Tft.Estimator.make ~delays:[ 1e-8 ] ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 20)
      run.Engine.Tran.snapshots
  in
  Alcotest.(check bool) "multidim rejected" true
    (match Rvf.extract ~dataset:ds ~input:0 ~output:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rvf_clipper_time_domain () =
  (* end-to-end accuracy on an unseen test input (the headline result) *)
  let train_wave =
    Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 }
  in
  let nl = Circuits.Library.clipper ~input_wave:train_wave () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 4 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:2.5e-9 in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 40)
      run.Engine.Tran.snapshots
  in
  let r = Rvf.extract ~dataset:ds ~input:0 ~output:0 () in
  let wave =
    Circuit.Netlist.Bits
      {
        low = -0.1;
        high = 0.7;
        rate = 20e6;
        rise = 5e-9;
        bits = Signal.Source.prbs_bits ~seed:3 ~length:12;
      }
  in
  let v =
    Tft_rvf.Report.validate ~model:r.Rvf.model ~netlist:nl
      ~input:Circuits.Library.clipper_input
      ~output:Circuits.Library.clipper_output ~wave ~t_stop:6e-7 ~dt:2e-10 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "nrmse %.1f dB below -30 dB" v.Tft_rvf.Report.nrmse_db)
    true
    (v.Tft_rvf.Report.nrmse_db < -30.0)

let suite =
  [
    Alcotest.test_case "ratfn derivative" `Quick test_ratfn_derivative_is_integrand;
    Alcotest.test_case "ratfn quadrature" `Quick test_ratfn_matches_quadrature;
    Alcotest.test_case "ratfn set_value" `Quick test_ratfn_set_value;
    Alcotest.test_case "ratfn of_model" `Quick test_ratfn_of_model;
    Alcotest.test_case "ratfn rejects real poles" `Quick test_ratfn_rejects_real_poles;
    Alcotest.test_case "ratfn formula" `Quick test_ratfn_formula_mentions_terms;
    Alcotest.test_case "ratfn to_static_fn" `Quick test_ratfn_to_static_fn;
    Alcotest.test_case "rvf linear circuit" `Slow test_rvf_linear_circuit;
    Alcotest.test_case "rvf static path" `Slow test_rvf_static_path_matches_dc_sweep;
    Alcotest.test_case "rvf anchored branches" `Slow test_rvf_dynamic_branches_vanish_at_anchor;
    Alcotest.test_case "rvf rejects multidim" `Slow test_rvf_rejects_multidim_estimator;
    Alcotest.test_case "rvf clipper time domain" `Slow test_rvf_clipper_time_domain;
  ]
