(* Tests for the CAFFEINE baseline: canonical-form expressions, symbolic
   integration, GP convergence and the extraction driver. *)

let check_close tol = Alcotest.(check (float tol))

(* ---------------- Cexpr ---------------- *)

let test_simplify_merges_powers () =
  let t = Caffeine.Cexpr.simplify [ Caffeine.Cexpr.Power 2; Caffeine.Cexpr.Power 1 ] in
  Alcotest.(check bool) "x^3" true (t = [ Caffeine.Cexpr.Power 3 ])

let test_simplify_merges_exponentials () =
  let t =
    Caffeine.Cexpr.simplify
      [ Caffeine.Cexpr.Exponential 1.5; Caffeine.Cexpr.Exponential (-0.5) ]
  in
  Alcotest.(check bool) "exp(x)" true (t = [ Caffeine.Cexpr.Exponential 1.0 ])

let test_eval_term () =
  let t = [ Caffeine.Cexpr.Power 2; Caffeine.Cexpr.Exponential 1.0 ] in
  check_close 1e-12 "x^2 exp(x) at 2" (4.0 *. exp 2.0) (Caffeine.Cexpr.eval_term t 2.0);
  check_close 1e-12 "empty term is 1" 1.0 (Caffeine.Cexpr.eval_term [] 5.0)

let check_integral_fd term =
  match Caffeine.Cexpr.integrate_term term with
  | None, why -> Alcotest.fail ("expected integrable term: " ^ why)
  | Some f, _ ->
      let h = 1e-6 in
      List.iter
        (fun x ->
          let fd = (f (x +. h) -. f (x -. h)) /. (2.0 *. h) in
          let direct = Caffeine.Cexpr.eval_term term x in
          check_close
            (1e-5 *. Float.max 1.0 (Float.abs direct))
            (Printf.sprintf "d/dx integral at %g" x) direct fd)
        [ -1.0; -0.3; 0.4; 1.2 ]

let test_integrate_polynomial () = check_integral_fd [ Caffeine.Cexpr.Power 3 ]
let test_integrate_constant () = check_integral_fd []
let test_integrate_exponential () = check_integral_fd [ Caffeine.Cexpr.Exponential 1.7 ]

let test_integrate_poly_exp () =
  check_integral_fd [ Caffeine.Cexpr.Power 2; Caffeine.Cexpr.Exponential (-1.3) ]

let test_integrate_tanh () = check_integral_fd [ Caffeine.Cexpr.Tanh (2.5, 0.4) ]

let test_integrate_gauss_fails () =
  match Caffeine.Cexpr.integrate_term [ Caffeine.Cexpr.Gauss (2.0, 0.5) ] with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "gaussian should have no closed form here"

let test_integrate_mixed_fails () =
  match
    Caffeine.Cexpr.integrate_term
      [ Caffeine.Cexpr.Power 1; Caffeine.Cexpr.Tanh (1.0, 0.0) ]
  with
  | None, why ->
      Alcotest.(check bool) "mentions manual integration" true
        (String.length why > 0)
  | Some _, _ -> Alcotest.fail "x*tanh should have no closed form here"

let test_term_to_string () =
  Alcotest.(check string) "constant" "1" (Caffeine.Cexpr.term_to_string []);
  Alcotest.(check string) "power" "x^2"
    (Caffeine.Cexpr.term_to_string [ Caffeine.Cexpr.Power 2 ])

(* ---------------- Gp ---------------- *)

let quick_gp = { Caffeine.Gp.default_params with
                 Caffeine.Gp.population = 40; generations = 25; seed = 7 }

let test_gp_fits_linear () =
  let xs = Signal.Grid.linspace 0.0 2.0 50 in
  let ys = Array.map (fun x -> 3.0 +. (2.0 *. x)) xs in
  let fit = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  Alcotest.(check bool)
    (Printf.sprintf "relative rmse %.3e < 1e-6" fit.Caffeine.Gp.rmse_rel)
    true
    (fit.Caffeine.Gp.rmse_rel < 1e-6)

let test_gp_fits_quadratic () =
  let xs = Signal.Grid.linspace (-1.0) 1.0 60 in
  let ys = Array.map (fun x -> 1.0 -. (2.0 *. x *. x)) xs in
  let fit = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  Alcotest.(check bool) "quadratic fit" true (fit.Caffeine.Gp.rmse_rel < 1e-6)

let test_gp_fits_saturation () =
  let xs = Signal.Grid.linspace 0.0 2.0 80 in
  let ys = Array.map (fun x -> tanh (3.0 *. (x -. 1.0))) xs in
  let fit = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  Alcotest.(check bool)
    (Printf.sprintf "saturation fit rel rmse %.3e < 0.05" fit.Caffeine.Gp.rmse_rel)
    true
    (fit.Caffeine.Gp.rmse_rel < 0.05)

let test_gp_deterministic () =
  let xs = Signal.Grid.linspace 0.0 1.0 40 in
  let ys = Array.map (fun x -> exp (0.5 *. x)) xs in
  let f1 = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  let f2 = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  check_close 0.0 "same seed, same rmse" f1.Caffeine.Gp.rmse f2.Caffeine.Gp.rmse

let test_gp_eval_consistent () =
  let xs = Signal.Grid.linspace 0.0 1.0 40 in
  let ys = Array.map (fun x -> 2.0 *. x) xs in
  let fit = Caffeine.Gp.fit ~params:quick_gp ~xs ~ys () in
  (* the reported rmse matches a recomputation through eval *)
  let err =
    sqrt
      (Array.fold_left
         (fun acc (k : int) ->
           let d = Caffeine.Gp.eval fit xs.(k) -. ys.(k) in
           acc +. (d *. d))
         0.0
         (Array.init (Array.length xs) Fun.id)
      /. float_of_int (Array.length xs))
  in
  check_close 1e-10 "rmse consistent" fit.Caffeine.Gp.rmse err

let test_gp_rejects_tiny_input () =
  Alcotest.(check bool) "too few samples" true
    (match Caffeine.Gp.fit ~xs:[| 0.0 |] ~ys:[| 1.0 |] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- Cfit extraction ---------------- *)

let test_cfit_on_clipper () =
  let nl =
    Circuits.Library.clipper
      ~input_wave:
        (Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 })
      ()
  in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.clipper_input ]
      ~outputs:[ Circuits.Library.clipper_output ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 8 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:2.5e-9 in
  let ds =
    Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ())
      ~freqs_hz:(Signal.Grid.logspace 1e4 1e9 30)
      run.Engine.Tran.snapshots
  in
  let config =
    {
      Caffeine.Cfit.default_config with
      Caffeine.Cfit.gp =
        { Caffeine.Gp.default_params with Caffeine.Gp.population = 30; generations = 15 };
    }
  in
  let r = Caffeine.Cfit.extract ~config ~dataset:ds ~input:0 ~output:0 () in
  Alcotest.(check bool) "build time recorded" true (r.Caffeine.Cfit.build_seconds > 0.0);
  Alcotest.(check bool) "terms counted" true (r.Caffeine.Cfit.total_terms > 0);
  (* model reproduces the DC point *)
  let y0 = ds.Tft.Dataset.samples.(0).Tft.Dataset.y.(0) in
  let x0 = ds.Tft.Dataset.samples.(0).Tft.Dataset.x.(0) in
  let y_model =
    r.Caffeine.Cfit.model.Hammerstein.Hmodel.static_path.Hammerstein.Static_fn.eval x0
  in
  check_close 1e-6 "DC anchored" y0 y_model;
  (* the automated flag is consistent with the term bookkeeping *)
  Alcotest.(check bool) "automation bookkeeping" true
    (r.Caffeine.Cfit.automated
     = (r.Caffeine.Cfit.integrable_terms = r.Caffeine.Cfit.total_terms))

let prop_integrable_terms_integrate =
  (* every term claimed integrable really differentiates back *)
  QCheck.Test.make ~count:40 ~name:"claimed integrals differentiate back"
    QCheck.(
      pair (int_range 1 3)
        (pair (float_range (-2.0) 2.0) (float_range 0.5 3.0)))
    (fun (n, (c, a)) ->
      QCheck.assume (Float.abs c > 0.05);
      let candidates =
        [
          [ Caffeine.Cexpr.Power n ];
          [ Caffeine.Cexpr.Exponential c ];
          [ Caffeine.Cexpr.Power n; Caffeine.Cexpr.Exponential c ];
          [ Caffeine.Cexpr.Tanh (a, c /. 2.0) ];
        ]
      in
      List.for_all
        (fun term ->
          match Caffeine.Cexpr.integrate_term term with
          | None, _ -> false
          | Some f, _ ->
              let x = 0.37 in
              let h = 1e-6 in
              let fd = (f (x +. h) -. f (x -. h)) /. (2.0 *. h) in
              let direct = Caffeine.Cexpr.eval_term term x in
              Float.abs (fd -. direct) < 1e-4 *. Float.max 1.0 (Float.abs direct))
        candidates)

let suite =
  [
    Alcotest.test_case "simplify powers" `Quick test_simplify_merges_powers;
    Alcotest.test_case "simplify exponentials" `Quick test_simplify_merges_exponentials;
    Alcotest.test_case "eval term" `Quick test_eval_term;
    Alcotest.test_case "integrate polynomial" `Quick test_integrate_polynomial;
    Alcotest.test_case "integrate constant" `Quick test_integrate_constant;
    Alcotest.test_case "integrate exponential" `Quick test_integrate_exponential;
    Alcotest.test_case "integrate poly*exp" `Quick test_integrate_poly_exp;
    Alcotest.test_case "integrate tanh" `Quick test_integrate_tanh;
    Alcotest.test_case "gauss not integrable" `Quick test_integrate_gauss_fails;
    Alcotest.test_case "mixed not integrable" `Quick test_integrate_mixed_fails;
    Alcotest.test_case "term to string" `Quick test_term_to_string;
    Alcotest.test_case "gp linear" `Quick test_gp_fits_linear;
    Alcotest.test_case "gp quadratic" `Quick test_gp_fits_quadratic;
    Alcotest.test_case "gp saturation" `Quick test_gp_fits_saturation;
    Alcotest.test_case "gp deterministic" `Quick test_gp_deterministic;
    Alcotest.test_case "gp eval consistent" `Quick test_gp_eval_consistent;
    Alcotest.test_case "gp rejects tiny input" `Quick test_gp_rejects_tiny_input;
    Alcotest.test_case "cfit clipper" `Slow test_cfit_on_clipper;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_integrable_terms_integrate ]
