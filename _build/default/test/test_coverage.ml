(* Additional coverage: code paths not exercised by the main suites —
   slope terms in VF, gmin-stepped DC, the backward-Euler retreat,
   exports of complex-pair models, waveform algebra, TPW edge cases. *)

let check_close tol = Alcotest.(check (float tol))
let cx re im = { Complex.re; im }

(* ---- Vfit with_slope: fit data with a genuine s-proportional term ---- *)

let test_vfit_slope_term () =
  let a = cx (-2e4) 1e5 in
  let r = cx 3e3 1e3 in
  let h s =
    Complex.add
      (Complex.add (Complex.div r (Complex.sub s a))
         (Complex.div (Complex.conj r) (Complex.sub s (Complex.conj a))))
      (Linalg.Cx.scale 1e-3 s)
  in
  let freqs = Signal.Grid.logspace 1e2 1e6 50 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map h points |] in
  let opts =
    { Vf.Vfit.default_frequency_opts with Vf.Vfit.with_slope = true }
  in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:2 in
  let model, info = Vf.Vfit.fit ~opts ~poles:poles0 ~points ~data () in
  Alcotest.(check bool) "fit converges" true (info.Vf.Vfit.rms < 1e-3);
  check_close 1e-5 "slope recovered" 1e-3 model.Vf.Model.slopes.(0)

(* ---- DC gmin stepping on a hard circuit ---- *)

let test_dc_gmin_stepping_diode_stack () =
  (* five stacked diodes from a 5 V source: plain Newton from zero tends
     to need help; the solve must still succeed and satisfy KCL *)
  let nl = Circuit.Parser.parse_string {|
V1 top 0 DC 5
R1 top a 100
D1 a b IS=1e-14 N=1
D2 b c IS=1e-14 N=1
D3 c d IS=1e-14 N=1
D4 d e IS=1e-14 N=1
D5 e 0 IS=1e-14 N=1
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  let va = v.(Engine.Mna.node_index mna "a") in
  let i_r = (5.0 -. va) /. 100.0 in
  Alcotest.(check bool) "solved with forward current" true (i_r > 1e-3);
  (* each diode drop is equal by symmetry *)
  let vb = v.(Engine.Mna.node_index mna "b") in
  let vc = v.(Engine.Mna.node_index mna "c") in
  check_close 1e-6 "equal drops" (va -. vb) (vb -. vc)

(* ---- Hammerstein export of a complex-pair model ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan k = k + nn <= nh && (String.sub hay k nn = needle || scan (k + 1)) in
  nn = 0 || scan 0

let pair_model () =
  let f g =
    Hammerstein.Static_fn.make ~formula:"g*x"
      ~eval:(fun x -> g *. x)
      ~deriv:(fun _ -> g)
      ()
  in
  Hammerstein.Hmodel.make
    ~branches:
      [|
        Hammerstein.Hmodel.Second_order
          { alpha = -1e6; beta = 4e6; f1 = f 1e6; f2 = f 2e5 };
      |]
    ~static_path:(f 2.0) ()

let test_export_pair_model () =
  let m = pair_model () in
  let va = Hammerstein.Export.verilog_a m in
  Alcotest.(check bool) "two states" true
    (contains va "y1a" && contains va "y1b");
  let ml = Hammerstein.Export.matlab m in
  Alcotest.(check bool) "matlab two rhs" true
    (contains ml "dydt(1)" && contains ml "dydt(2)")

let test_export_numeric_warns () =
  let numeric =
    Hammerstein.Static_fn.of_samples_numeric
      ~xs:(Signal.Grid.linspace 0.0 1.0 10)
      ~rs:(Array.make 10 1.0)
  in
  let m =
    Hammerstein.Hmodel.make
      ~branches:[| Hammerstein.Hmodel.First_order { a = -1.0; f = numeric } |]
      ~static_path:Hammerstein.Static_fn.zero ()
  in
  Alcotest.(check bool) "export warns" true
    (contains (Hammerstein.Export.verilog_a m) "WARNING")

(* ---- equations text for pair model mentions both rows ---- *)

let test_equations_pair () =
  let text = Hammerstein.Hmodel.equations (pair_model ()) in
  Alcotest.(check bool) "both state rows" true
    (contains text "d/dt y1a" && contains text "d/dt y1b")

(* ---- Waveform sub_signal ---- *)

let test_waveform_sub_signal () =
  let a = Signal.Waveform.make [| 0.0; 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |] in
  let b = Signal.Waveform.make [| 0.0; 2.0 |] [| 1.0; 3.0 |] in
  let d = Signal.Waveform.sub_signal a b in
  Array.iter (fun v -> check_close 1e-12 "zero difference" 0.0 v)
    (Signal.Waveform.values d)

(* ---- Mna eval without matrices ---- *)

let test_mna_eval_no_matrices () =
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 1
R1 a 0 1k
|} in
  let mna = Engine.Mna.build nl in
  let ev = Engine.Mna.eval mna ~with_matrices:false ~time:0.0
      (Linalg.Vec.create (Engine.Mna.size mna)) in
  Alcotest.(check bool) "no jacobians allocated" true
    (ev.Engine.Mna.g_mat = None && ev.Engine.Mna.c_mat = None)

(* ---- TPW: constant input stays at the trajectory state ---- *)

let test_tpw_constant_input () =
  let nl = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Sine
    { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 }) () in
  let mna = Engine.Mna.build ~inputs:[ "Vin" ]
      ~outputs:[ Circuits.Library.clipper_output ] nl in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let tpw = Tft.Tpw.build ~mna run.Engine.Tran.snapshots in
  let w = Tft.Tpw.simulate tpw ~u:(fun _ -> 0.3) ~t_stop:1e-7 ~dt:1e-9 in
  let vals = Signal.Waveform.values w in
  let spread =
    Array.fold_left Float.max neg_infinity vals
    -. Array.fold_left Float.min infinity vals
  in
  Alcotest.(check bool) "holds steady" true (spread < 1e-3)

(* ---- recursion x_pole handling of hand-built real poles ---- *)

let test_units_negative_suffix () =
  check_close 1e-12 "negative milli" (-2.5e-3) (Circuit.Units.parse_exn "-2.5m")

let test_parser_vcvs_cccs_cards () =
  let nl = Circuit.Parser.parse_string {|
V1 c 0 DC 1
E1 out 0 c 0 2.5
R1 out 0 1k
F1 0 f V1 2
R2 f 0 1k
|} in
  Alcotest.(check int) "five components" 5 (Circuit.Netlist.component_count nl);
  match Circuit.Netlist.find nl "E1" with
  | Some { element = Circuit.Netlist.Vcvs { gain; _ }; _ } ->
      check_close 1e-12 "vcvs gain" 2.5 gain
  | _ -> Alcotest.fail "E1 not parsed as VCVS"

let test_parser_bjt_card () =
  let nl = Circuit.Parser.parse_string {|
Vb b 0 DC 0.7
Q1 c b 0 NPN IS=2e-15 BF=80
Rc c 0 1k
|} in
  match Circuit.Netlist.find nl "Q1" with
  | Some { element = Circuit.Netlist.Bjt { params; pol; _ }; _ } ->
      Alcotest.(check bool) "npn" true (pol = Circuit.Netlist.Npn);
      check_close 1e-25 "is" 2e-15 params.is_bjt;
      check_close 1e-9 "bf" 80.0 params.bf
  | _ -> Alcotest.fail "Q1 not parsed as BJT"

(* ---- adaptive transient on a nonlinear circuit matches fixed-step ---- *)

let test_adaptive_nonlinear_matches_fixed () =
  let nl = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Sine
    { offset = 0.3; ampl = 0.5; freq = 2e6; phase = 0.0 }) () in
  let mna = Engine.Mna.build ~outputs:[ Circuits.Library.clipper_output ] nl in
  let fixed = Engine.Tran.run mna ~t_stop:1e-6 ~dt:5e-10 in
  let adap = Engine.Tran.run_adaptive mna ~t_stop:1e-6 ~dt:5e-10 ~reltol:1e-4 in
  let grid = Signal.Grid.linspace 1e-9 0.99e-6 400 in
  let wf = Signal.Waveform.resample (Engine.Tran.output_waveform fixed 0) grid in
  let wa = Signal.Waveform.resample (Engine.Tran.output_waveform adap 0) grid in
  Alcotest.(check bool)
    (Printf.sprintf "nonlinear adaptive rmse %.2e" (Signal.Waveform.rmse wf wa))
    true
    (Signal.Waveform.rmse wf wa < 5e-4)

let prop_mosfet_region_continuity =
  (* current is continuous across the triode/saturation boundary *)
  QCheck.Test.make ~count:50 ~name:"mosfet continuous at vds = vov"
    QCheck.(float_range 0.45 1.5)
    (fun vgs ->
      let nmos = Circuit.Netlist.default_nmos in
      let vov = vgs -. nmos.Circuit.Netlist.vth in
      QCheck.assume (vov > 0.01);
      let id_at vds =
        let i, _, _, _ =
          Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:vds ~vg:vgs ~vs:0.0
        in
        i
      in
      let lo = id_at (vov -. 1e-9) and hi = id_at (vov +. 1e-9) in
      Float.abs (hi -. lo) < 1e-6 *. Float.max (Float.abs hi) 1e-12)

let prop_junction_cap_monotone =
  (* junction charge is strictly increasing in the junction voltage *)
  QCheck.Test.make ~count:50 ~name:"junction charge monotone"
    QCheck.(pair (float_range (-3.0) 1.0) (float_range 0.001 0.5))
    (fun (v, dv) ->
      let p = Circuit.Netlist.default_junction in
      let q1, _ = Engine.Device.junction_q p v in
      let q2, _ = Engine.Device.junction_q p (v +. dv) in
      q2 > q1)

let suite =
  [
    Alcotest.test_case "vfit slope term" `Quick test_vfit_slope_term;
    Alcotest.test_case "dc gmin stepping" `Quick test_dc_gmin_stepping_diode_stack;
    Alcotest.test_case "export pair model" `Quick test_export_pair_model;
    Alcotest.test_case "export numeric warns" `Quick test_export_numeric_warns;
    Alcotest.test_case "equations pair" `Quick test_equations_pair;
    Alcotest.test_case "waveform sub_signal" `Quick test_waveform_sub_signal;
    Alcotest.test_case "mna eval without matrices" `Quick test_mna_eval_no_matrices;
    Alcotest.test_case "tpw constant input" `Quick test_tpw_constant_input;
    Alcotest.test_case "units negative suffix" `Quick test_units_negative_suffix;
    Alcotest.test_case "parser vcvs/cccs" `Quick test_parser_vcvs_cccs_cards;
    Alcotest.test_case "parser bjt" `Quick test_parser_bjt_card;
    Alcotest.test_case "adaptive nonlinear" `Quick test_adaptive_nonlinear_matches_fixed;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_mosfet_region_continuity; prop_junction_cap_monotone ]
