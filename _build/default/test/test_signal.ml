(* Tests for grids, sources, waveforms and metrics. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ---------------- Grid ---------------- *)

let test_linspace () =
  let g = Signal.Grid.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_float "first" 0.0 g.(0);
  check_float "last" 1.0 g.(4);
  check_float "mid" 0.5 g.(2)

let test_linspace_single () =
  let g = Signal.Grid.linspace 3.0 9.0 1 in
  Alcotest.(check int) "length" 1 (Array.length g);
  check_float "value" 3.0 g.(0)

let test_logspace () =
  let g = Signal.Grid.logspace 1.0 100.0 3 in
  check_float "first" 1.0 g.(0);
  check_close 1e-9 "mid" 10.0 g.(1);
  check_close 1e-9 "last" 100.0 g.(2)

let test_logspace_invalid () =
  Alcotest.check_raises "negative endpoint"
    (Invalid_argument "Grid.logspace: endpoints must be > 0") (fun () ->
      ignore (Signal.Grid.logspace (-1.0) 10.0 3))

let test_s_of_hz () =
  let s = Signal.Grid.s_of_hz 1.0 in
  check_float "re" 0.0 s.Complex.re;
  check_close 1e-12 "im" (2.0 *. Float.pi) s.Complex.im

(* ---------------- Source ---------------- *)

let test_dc () = check_float "dc" 2.5 (Signal.Source.dc 2.5 42.0)

let test_sine () =
  let s = Signal.Source.sine ~offset:1.0 ~freq:1.0 ~ampl:2.0 () in
  check_close 1e-12 "t=0" 1.0 (s 0.0);
  check_close 1e-9 "quarter period" 3.0 (s 0.25)

let test_step_ideal () =
  let s = Signal.Source.step ~from:0.0 ~to_:1.0 () in
  check_float "before" 0.0 (s (-1e-9));
  check_float "after" 1.0 (s 0.0)

let test_step_smooth () =
  let s = Signal.Source.step ~t0:1.0 ~rise:2.0 ~from:0.0 ~to_:4.0 () in
  check_float "before" 0.0 (s 0.5);
  check_close 1e-12 "midpoint" 2.0 (s 2.0);
  check_float "after" 4.0 (s 3.5);
  (* raised cosine is monotone on the ramp *)
  Alcotest.(check bool) "monotone" true (s 1.5 < s 2.0 && s 2.0 < s 2.5)

let test_pulse_period () =
  let s = Signal.Source.pulse ~low:0.0 ~high:1.0 ~width:1.0 ~period:2.0 () in
  check_float "high" 1.0 (s 0.5);
  check_float "low" 0.0 (s 1.5);
  check_float "periodic" 1.0 (s 2.5)

let test_pwl () =
  let s = Signal.Source.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  check_float "interp" 1.0 (s 0.5);
  check_float "flat" 2.0 (s 2.0);
  check_float "clamp left" 0.0 (s (-5.0));
  check_float "clamp right" 0.0 (s 9.0)

let test_pwl_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Source.pwl: breakpoints must be sorted by time") (fun () ->
      let (_ : Signal.Source.t) = Signal.Source.pwl [ (1.0, 0.0); (0.0, 1.0) ] in
      ())

let test_prbs_deterministic () =
  let a = Signal.Source.prbs_bits ~seed:5 ~length:64 in
  let b = Signal.Source.prbs_bits ~seed:5 ~length:64 in
  Alcotest.(check bool) "same seed same bits" true (a = b);
  let c = Signal.Source.prbs_bits ~seed:6 ~length:64 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  (* the 7-bit LFSR has period 127 and is balanced-ish *)
  let ones = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 a in
  Alcotest.(check bool) "not constant" true (ones > 8 && ones < 56)

let test_bit_pattern_levels () =
  let bits = [| true; false; true; true |] in
  let s = Signal.Source.bit_pattern ~bits ~rate:1.0 ~low:0.0 ~high:1.0 () in
  check_float "bit0" 1.0 (s 0.5);
  check_float "bit1" 0.0 (s 1.5);
  check_float "bit2" 1.0 (s 2.5);
  check_float "bit3 (held)" 1.0 (s 10.0)

let test_bit_pattern_rise () =
  let bits = [| false; true |] in
  let s = Signal.Source.bit_pattern ~rise:0.2 ~bits ~rate:1.0 ~low:0.0 ~high:1.0 () in
  check_float "before edge" 0.0 (s 0.9);
  check_close 1e-12 "mid edge" 0.5 (s 1.1);
  check_float "after edge" 1.0 (s 1.4)

(* ---------------- Waveform ---------------- *)

let mk_wave () =
  Signal.Waveform.make [| 0.0; 1.0; 2.0; 3.0 |] [| 0.0; 1.0; 4.0; 9.0 |]

let test_waveform_interp () =
  let w = mk_wave () in
  check_float "node" 4.0 (Signal.Waveform.value_at w 2.0);
  check_float "interp" 2.5 (Signal.Waveform.value_at w 1.5);
  check_float "clamp lo" 0.0 (Signal.Waveform.value_at w (-1.0));
  check_float "clamp hi" 9.0 (Signal.Waveform.value_at w 99.0)

let test_waveform_validation () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Waveform.make: times must be strictly increasing")
    (fun () -> ignore (Signal.Waveform.make [| 0.0; 0.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Waveform.make: length mismatch") (fun () ->
      ignore (Signal.Waveform.make [| 0.0; 1.0 |] [| 1.0 |]))

let test_waveform_rmse_self () =
  let w = mk_wave () in
  check_float "rmse self" 0.0 (Signal.Waveform.rmse w w);
  check_float "nrmse self" 0.0 (Signal.Waveform.nrmse w w)

let test_waveform_rmse_shift () =
  let w = mk_wave () in
  let v = Signal.Waveform.map (fun x -> x +. 1.0) w in
  check_float "rmse shift" 1.0 (Signal.Waveform.rmse w v)

let test_waveform_peak_to_peak () =
  check_float "p2p" 9.0 (Signal.Waveform.peak_to_peak (mk_wave ()))

let test_waveform_resample () =
  let w = mk_wave () in
  let r = Signal.Waveform.resample w [| 0.5; 1.5; 2.5 |] in
  check_float "resampled" 2.5 (Signal.Waveform.value_at r 1.5)

(* ---------------- Metrics ---------------- *)

let test_db20 () =
  check_float "db20 of 1" 0.0 (Signal.Metrics.db20 1.0);
  check_float "db20 of 10" 20.0 (Signal.Metrics.db20 10.0);
  check_float "db20 of 0 floors" (-400.0) (Signal.Metrics.db20 0.0)

let test_rmse () =
  check_float "rmse" 5.0 (Signal.Metrics.rmse [| 0.0; 0.0 |] [| 5.0; -5.0 |]);
  check_float "max err" 5.0 (Signal.Metrics.max_abs_err [| 0.0; 0.0 |] [| 5.0; -3.0 |])

let test_relative_rmse () =
  check_float "relative"
    (1.0 /. 5.0)
    (Signal.Metrics.relative_rmse ~reference:[| 5.0; -5.0 |] [| 6.0; -4.0 |])

let test_mean () = check_float "mean" 2.0 (Signal.Metrics.mean [| 1.0; 2.0; 3.0 |])

let prop_source_sample_matches =
  QCheck.Test.make ~count:30 ~name:"sample matches pointwise application"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 10.0))
    (fun ts ->
      let ts = Array.of_list ts in
      let s = Signal.Source.sine ~freq:2.0 ~ampl:1.5 () in
      Signal.Source.sample s ts = Array.map s ts)

let prop_waveform_interp_between =
  QCheck.Test.make ~count:50 ~name:"interpolation stays within segment bounds"
    QCheck.(float_range 0.0 3.0)
    (fun t ->
      let w = mk_wave () in
      let v = Signal.Waveform.value_at w t in
      let vals = Signal.Waveform.values w in
      let lo = Array.fold_left Float.min Float.infinity vals in
      let hi = Array.fold_left Float.max Float.neg_infinity vals in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

(* ---------------- Fourier ---------------- *)

let sine_wave ?(f0 = 1e6) ?(ampl = 1.0) ?(periods = 8.0) () =
  let t_stop = periods /. f0 in
  let ts = Signal.Grid.linspace 0.0 t_stop 4001 in
  Signal.Waveform.of_fun (fun t -> ampl *. sin (2.0 *. Float.pi *. f0 *. t)) ts

let test_fourier_pure_sine () =
  let w = sine_wave ~ampl:0.7 () in
  let c = Signal.Fourier.component w ~freq:1e6 in
  check_close 1e-3 "fundamental amplitude" 0.7 (Complex.norm c)

let test_fourier_harmonics_of_square () =
  (* square wave: odd harmonics at 1/k amplitude ratios *)
  let f0 = 1e6 in
  let ts = Signal.Grid.linspace 0.0 (8.0 /. f0) 8001 in
  let w =
    Signal.Waveform.of_fun
      (fun t -> if sin (2.0 *. Float.pi *. f0 *. t) >= 0.0 then 1.0 else -1.0)
      ts
  in
  let h = Signal.Fourier.harmonics w ~f0 ~count:3 in
  check_close 2e-2 "fundamental 4/pi" (4.0 /. Float.pi) h.(0);
  Alcotest.(check bool) "2nd harmonic suppressed" true (h.(1) < 0.05 *. h.(0));
  check_close 5e-2 "3rd harmonic 1/3" (h.(0) /. 3.0) h.(2)

let test_fourier_thd () =
  let w = sine_wave () in
  Alcotest.(check bool) "pure sine thd ~ 0" true
    (Signal.Fourier.thd w ~f0:1e6 () < 1e-2);
  (* soft-clipped sine has visible distortion *)
  let ts = Signal.Grid.linspace 0.0 8e-6 4001 in
  let clipped =
    Signal.Waveform.of_fun
      (fun t -> tanh (2.0 *. sin (2.0 *. Float.pi *. 1e6 *. t)))
      ts
  in
  Alcotest.(check bool) "clipped sine distorts" true
    (Signal.Fourier.thd clipped ~f0:1e6 () > 0.05)

let test_fourier_short_waveform () =
  let ts = Signal.Grid.linspace 0.0 1e-6 50 in
  let w = Signal.Waveform.of_fun (fun _ -> 1.0) ts in
  Alcotest.(check bool) "short waveform rejected" true
    (match Signal.Fourier.harmonics w ~f0:1e6 ~count:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "linspace single" `Quick test_linspace_single;
    Alcotest.test_case "logspace" `Quick test_logspace;
    Alcotest.test_case "logspace invalid" `Quick test_logspace_invalid;
    Alcotest.test_case "s_of_hz" `Quick test_s_of_hz;
    Alcotest.test_case "dc source" `Quick test_dc;
    Alcotest.test_case "sine source" `Quick test_sine;
    Alcotest.test_case "ideal step" `Quick test_step_ideal;
    Alcotest.test_case "smooth step" `Quick test_step_smooth;
    Alcotest.test_case "pulse periodicity" `Quick test_pulse_period;
    Alcotest.test_case "pwl" `Quick test_pwl;
    Alcotest.test_case "pwl unsorted" `Quick test_pwl_unsorted;
    Alcotest.test_case "prbs deterministic" `Quick test_prbs_deterministic;
    Alcotest.test_case "bit pattern levels" `Quick test_bit_pattern_levels;
    Alcotest.test_case "bit pattern rise" `Quick test_bit_pattern_rise;
    Alcotest.test_case "waveform interp" `Quick test_waveform_interp;
    Alcotest.test_case "waveform validation" `Quick test_waveform_validation;
    Alcotest.test_case "waveform rmse self" `Quick test_waveform_rmse_self;
    Alcotest.test_case "waveform rmse shift" `Quick test_waveform_rmse_shift;
    Alcotest.test_case "waveform p2p" `Quick test_waveform_peak_to_peak;
    Alcotest.test_case "waveform resample" `Quick test_waveform_resample;
    Alcotest.test_case "db20" `Quick test_db20;
    Alcotest.test_case "rmse/max" `Quick test_rmse;
    Alcotest.test_case "relative rmse" `Quick test_relative_rmse;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "fourier pure sine" `Quick test_fourier_pure_sine;
    Alcotest.test_case "fourier square harmonics" `Quick test_fourier_harmonics_of_square;
    Alcotest.test_case "fourier thd" `Quick test_fourier_thd;
    Alcotest.test_case "fourier short waveform" `Quick test_fourier_short_waveform;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_source_sample_matches; prop_waveform_interp_between ]
