(* Integration tests for the end-to-end pipeline, the circuit library and
   the reporting helpers. *)

let check_close tol = Alcotest.(check (float tol))

(* ---------------- circuit library ---------------- *)

let test_buffer_inventory () =
  let nl = Circuits.Buffer.netlist () in
  Alcotest.(check int) "28 transistors" 28 (Circuits.Buffer.transistor_count nl);
  Alcotest.(check bool) "tens of components" true
    (Circuit.Netlist.component_count nl >= 50)

let test_buffer_dc_gain_near_two () =
  let probe vin =
    let mna = Circuits.Buffer.mna ~input_wave:(Circuit.Netlist.Dc vin) () in
    (Engine.Mna.output_values mna (Engine.Dc.solve mna)).(0)
  in
  let gain = (probe 0.92 -. probe 0.88) /. 0.04 in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.2f in [1.6, 2.4]" gain)
    true
    (gain > 1.6 && gain < 2.4)

let test_buffer_saturates () =
  let probe vin =
    let mna = Circuits.Buffer.mna ~input_wave:(Circuit.Netlist.Dc vin) () in
    (Engine.Mna.output_values mna (Engine.Dc.solve mna)).(0)
  in
  let lo = probe 0.4 and hi = probe 1.4 in
  (* clipped symmetric levels, far below linear extrapolation of gain 2 *)
  check_close 1e-2 "symmetric clip" (-.lo) hi;
  Alcotest.(check bool) "hard clipping" true (hi < 0.5)

let test_buffer_bandwidth_ghz () =
  let mna = Circuits.Buffer.mna ~input_wave:(Circuit.Netlist.Dc 0.9) () in
  let at = Engine.Dc.solve mna in
  let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:[| 1e6; 2.5e9; 1e10 |] in
  let dc = Complex.norm h.(0) in
  Alcotest.(check bool) "rolloff between 2.5 and 10 GHz" true
    (Complex.norm h.(1) > dc /. sqrt 2.0 /. 1.6
    && Complex.norm h.(2) < dc /. 10.0)

let test_gm_stage_dc () =
  let nl = Circuits.Library.gm_stage ~input_wave:(Circuit.Netlist.Dc 0.9) () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.gm_input ]
      ~outputs:[ Circuits.Library.gm_output ] nl
  in
  let v = Engine.Dc.solve mna in
  Alcotest.(check bool) "balanced diff output" true
    (Float.abs (Engine.Mna.output_values mna v).(0) < 1e-6)

let test_rc_ladder_nodes () =
  let nl = Circuits.Library.rc_ladder ~stages:4 () in
  Alcotest.(check int) "components" 9 (Circuit.Netlist.component_count nl)

(* ---------------- pipeline ---------------- *)

let clipper_training =
  {
    Tft_rvf.Pipeline.wave =
      Circuit.Netlist.Sine { offset = 0.3; ampl = 0.5; freq = 1e6; phase = 0.0 };
    t_stop = 1e-6;
    dt = 2.5e-9;
    snapshot_every = 4;
  }

let test_pipeline_clipper_end_to_end () =
  let netlist = Circuits.Library.clipper () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  let o =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vin"
      ~output:Circuits.Library.clipper_output ()
  in
  Alcotest.(check int) "101 samples" 101
    (Array.length o.Tft_rvf.Pipeline.dataset.Tft.Dataset.samples);
  Alcotest.(check bool) "analytic model" true
    (Hammerstein.Hmodel.analytic o.Tft_rvf.Pipeline.model);
  let se =
    Tft_rvf.Report.surface_error ~model:o.Tft_rvf.Pipeline.model
      ~dataset:o.Tft_rvf.Pipeline.dataset ~input:0 ~output:0
  in
  Alcotest.(check bool)
    (Printf.sprintf "surface rms %.1f dB below -25 dB" se.Tft_rvf.Report.rms_db)
    true
    (se.Tft_rvf.Report.rms_db < -25.0)

let test_pipeline_swaps_input_wave () =
  (* the training wave overrides the netlist's own input wave *)
  let netlist = Circuits.Library.clipper ~input_wave:(Circuit.Netlist.Dc 0.0) () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  let o =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vin"
      ~output:Circuits.Library.clipper_output ()
  in
  (* trajectory must span the training sine's range, not sit at DC 0 *)
  let xs =
    Array.map (fun s -> s.Tft.Dataset.x.(0)) o.Tft_rvf.Pipeline.dataset.Tft.Dataset.samples
  in
  let hi = Array.fold_left Float.max neg_infinity xs in
  Alcotest.(check bool) "trajectory spans sine" true (hi > 0.7)

let test_pipeline_unknown_input () =
  let netlist = Circuits.Library.clipper () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  Alcotest.(check bool) "unknown input rejected" true
    (match
       Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vnope"
         ~output:Circuits.Library.clipper_output ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_report_validate_self_consistency () =
  (* validating the reference against itself gives zero error;
     speedup and waveforms are populated *)
  let netlist = Circuits.Library.clipper () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  let o =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vin"
      ~output:Circuits.Library.clipper_output ()
  in
  let wave = Circuit.Netlist.Dc 0.3 in
  let v =
    Tft_rvf.Report.validate ~model:o.Tft_rvf.Pipeline.model ~netlist ~input:"Vin"
      ~output:Circuits.Library.clipper_output ~wave ~t_stop:2e-7 ~dt:1e-9 ()
  in
  (* constant input at a trained state: near-zero error *)
  Alcotest.(check bool)
    (Printf.sprintf "dc hold error %.2e small" v.Tft_rvf.Report.rmse)
    true
    (v.Tft_rvf.Report.rmse < 2e-3);
  Alcotest.(check bool) "timings recorded" true
    (v.Tft_rvf.Report.reference_seconds > 0.0 && v.Tft_rvf.Report.model_seconds >= 0.0)

let test_report_summary_text () =
  let netlist = Circuits.Library.clipper () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  let o =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:"Vin"
      ~output:Circuits.Library.clipper_output ()
  in
  let text = Tft_rvf.Report.summary o in
  Alcotest.(check bool) "mentions poles" true (String.length text > 100)

(* ---------------- the paper's buffer experiment (slow) ---------------- *)

let test_buffer_extraction_quality () =
  let o = Tft_rvf.Pipeline.extract_buffer () in
  let se =
    Tft_rvf.Report.surface_error ~model:o.Tft_rvf.Pipeline.model
      ~dataset:o.Tft_rvf.Pipeline.dataset ~input:0 ~output:0
  in
  (* the paper reports about -60 dB; require better than -45 dB *)
  Alcotest.(check bool)
    (Printf.sprintf "surface rms %.1f dB below -45 dB" se.Tft_rvf.Report.rms_db)
    true
    (se.Tft_rvf.Report.rms_db < -45.0);
  (* bit-pattern validation: better than -25 dB normalized, and faster *)
  let wave = Circuits.Buffer.bit_wave () in
  let t_stop = 32.0 /. 2.5e9 in
  let v =
    Tft_rvf.Report.validate ~model:o.Tft_rvf.Pipeline.model
      ~netlist:(Circuits.Buffer.netlist ()) ~input:Circuits.Buffer.input_name
      ~output:Circuits.Buffer.output ~wave ~t_stop ~dt:(t_stop /. 1280.0) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "bit-pattern nrmse %.1f dB" v.Tft_rvf.Report.nrmse_db)
    true
    (v.Tft_rvf.Report.nrmse_db < -25.0);
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.0fX > 5X" v.Tft_rvf.Report.speedup)
    true
    (v.Tft_rvf.Report.speedup > 5.0)

let test_tpw_linear_is_accurate () =
  (* on a linear circuit the TPW interpolation is exact up to integration
     error, because every snapshot shares the same (G, C) *)
  (* quasi-static training: RC corner (32 MHz) well above the 1 MHz pump,
     so the snapshot states sit on the DC manifold *)
  let nl = Circuit.Parser.parse_string {|
Vin in 0 SIN(0.5 0.4 1e6)
R1 in out 1k
C1 out 0 5p
|} in
  let mna = Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "out" ] nl in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let tpw = Tft.Tpw.build ~mna run.Engine.Tran.snapshots in
  let u = Signal.Source.sine ~offset:0.5 ~freq:2e7 ~ampl:0.3 () in
  let t_stop = 1e-7 and dt = 1e-10 in
  let w_tpw = Tft.Tpw.simulate tpw ~u ~t_stop ~dt in
  let nl2 = Circuit.Netlist.make
      (List.map (fun (c : Circuit.Netlist.component) ->
        if c.name = "Vin" then Circuit.Netlist.vsource ~name:"Vin" "in" "0"
          (Circuit.Netlist.Ext u) else c) nl.Circuit.Netlist.components) in
  let mna2 = Engine.Mna.build ~outputs:[ Engine.Mna.Node "out" ] nl2 in
  let ref_run = Engine.Tran.run mna2 ~t_stop ~dt in
  let w_ref = Engine.Tran.output_waveform ref_run 0 in
  Alcotest.(check bool)
    (Printf.sprintf "linear tpw rmse %.2e" (Signal.Waveform.rmse w_ref w_tpw))
    true
    (Signal.Waveform.rmse w_ref w_tpw < 1e-2)

let test_tpw_database_size () =
  let o = Tft_rvf.Pipeline.extract_buffer () in
  let tpw =
    Tft.Tpw.build ~mna:o.Tft_rvf.Pipeline.mna
      o.Tft_rvf.Pipeline.training_run.Engine.Tran.snapshots
  in
  (* the snapshot database dwarfs the analytical model *)
  Alcotest.(check bool) "database larger than 1e5 floats" true
    (Tft.Tpw.size_in_floats tpw > 100_000)

let test_tpw_requires_siso () =
  let nl = Circuits.Library.clipper () in
  let mna = Engine.Mna.build nl in
  Alcotest.(check bool) "no inputs rejected" true
    (match Tft.Tpw.build ~mna [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_extract_simo_two_outputs () =
  let netlist = Circuits.Library.clipper () in
  let config =
    Tft_rvf.Pipeline.default_config_for ~f_min:1e4 ~f_max:1e9
      ~training:clipper_training ()
  in
  let outcomes =
    Tft_rvf.Pipeline.extract_simo ~config ~netlist ~input:"Vin"
      ~outputs:[ Engine.Mna.Node "out"; Engine.Mna.Node "in" ] ()
  in
  Alcotest.(check int) "two models" 2 (List.length outcomes);
  match outcomes with
  | [ o_out; o_in ] ->
      (* channel 2 observes the driven node itself: unit transfer *)
      let t =
        Hammerstein.Hmodel.transfer o_in.Tft_rvf.Pipeline.model ~x:0.3
          ~s:(Signal.Grid.s_of_hz 1e6)
      in
      Alcotest.(check bool) "driven node has unit gain" true
        (Complex.norm (Complex.sub t Complex.one) < 5e-2);
      (* channel 1 is the usual clipper model *)
      let se =
        Tft_rvf.Report.surface_error ~model:o_out.Tft_rvf.Pipeline.model
          ~dataset:o_out.Tft_rvf.Pipeline.dataset ~input:0 ~output:0
      in
      Alcotest.(check bool) "clipper channel accurate" true
        (se.Tft_rvf.Report.rms_db < -25.0);
      (* both share the same dataset *)
      Alcotest.(check bool) "dataset shared" true
        (o_out.Tft_rvf.Pipeline.dataset == o_in.Tft_rvf.Pipeline.dataset)
  | _ -> Alcotest.fail "expected two outcomes"

let suite =
  [
    Alcotest.test_case "buffer inventory" `Quick test_buffer_inventory;
    Alcotest.test_case "buffer dc gain" `Quick test_buffer_dc_gain_near_two;
    Alcotest.test_case "buffer saturation" `Quick test_buffer_saturates;
    Alcotest.test_case "buffer bandwidth" `Quick test_buffer_bandwidth_ghz;
    Alcotest.test_case "gm stage dc" `Quick test_gm_stage_dc;
    Alcotest.test_case "rc ladder" `Quick test_rc_ladder_nodes;
    Alcotest.test_case "pipeline clipper end-to-end" `Slow test_pipeline_clipper_end_to_end;
    Alcotest.test_case "pipeline swaps wave" `Slow test_pipeline_swaps_input_wave;
    Alcotest.test_case "pipeline unknown input" `Quick test_pipeline_unknown_input;
    Alcotest.test_case "report validate" `Slow test_report_validate_self_consistency;
    Alcotest.test_case "report summary" `Slow test_report_summary_text;
    Alcotest.test_case "buffer extraction quality" `Slow test_buffer_extraction_quality;
    Alcotest.test_case "tpw linear accuracy" `Slow test_tpw_linear_is_accurate;
    Alcotest.test_case "tpw database size" `Slow test_tpw_database_size;
    Alcotest.test_case "tpw requires siso" `Quick test_tpw_requires_siso;
    Alcotest.test_case "extract simo" `Slow test_extract_simo_two_outputs;
  ]
