(* Tests for the MNA simulation engine: device equations (values and
   finite-difference derivative checks), DC, transient vs closed-form
   solutions, AC vs analytic transfer functions, and snapshot capture. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

let nmos = Circuit.Netlist.default_nmos

(* ---------------- Device equations ---------------- *)

let test_diode_forward () =
  let p = { Circuit.Netlist.i_sat = 1e-14; ideality = 1.0; cj = 0.0 } in
  let i, g = Engine.Device.diode_iv p 0.6 in
  let expected = 1e-14 *. (exp (0.6 /. 0.025852) -. 1.0) in
  check_close (1e-6 *. expected) "forward current" expected (i -. (1e-12 *. 0.6));
  Alcotest.(check bool) "conductance positive" true (g > 0.0)

let test_diode_reverse () =
  let p = { Circuit.Netlist.i_sat = 1e-14; ideality = 1.0; cj = 0.0 } in
  let i, _ = Engine.Device.diode_iv p (-1.0) in
  Alcotest.(check bool) "reverse leakage tiny" true (Float.abs i < 1e-11)

let test_diode_limiting_continuity () =
  let p = { Circuit.Netlist.i_sat = 1e-14; ideality = 1.0; cj = 0.0 } in
  let vt = Engine.Device.thermal_voltage in
  let v_lim = 40.0 *. vt in
  let i1, g1 = Engine.Device.diode_iv p (v_lim -. 1e-9) in
  let i2, g2 = Engine.Device.diode_iv p (v_lim +. 1e-9) in
  Alcotest.(check bool) "current continuous" true (Float.abs (i2 -. i1) /. i1 < 1e-6);
  Alcotest.(check bool) "conductance continuous" true
    (Float.abs (g2 -. g1) /. g1 < 1e-6)

let fd_derivative f x =
  let h = 1e-7 in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let test_diode_derivative_fd () =
  let p = { Circuit.Netlist.i_sat = 1e-13; ideality = 1.4; cj = 0.0 } in
  List.iter
    (fun v ->
      let _, g = Engine.Device.diode_iv p v in
      let g_fd = fd_derivative (fun v -> fst (Engine.Device.diode_iv p v)) v in
      check_close (1e-4 *. Float.max g 1e-12) (Printf.sprintf "g at %g" v) g g_fd)
    [ -0.5; 0.0; 0.3; 0.55; 0.7 ]

let test_mosfet_regions () =
  (* cutoff *)
  let id, _, _, _ = Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:1.0 ~vg:0.2 ~vs:0.0 in
  Alcotest.(check bool) "cutoff leakage only" true (Float.abs id < 1e-8 *. 1.0 +. 1e-8);
  (* saturation: vgs = 0.9, vov = 0.5, vds = 1.2 > vov *)
  let id_sat, _, _, _ =
    Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:1.2 ~vg:0.9 ~vs:0.0
  in
  let beta = nmos.Circuit.Netlist.kp *. nmos.Circuit.Netlist.w /. nmos.Circuit.Netlist.l in
  let expected = 0.5 *. beta *. 0.25 *. (1.0 +. (nmos.Circuit.Netlist.lambda *. 1.2)) in
  check_close (1e-3 *. expected) "saturation current" expected id_sat;
  (* triode: small vds *)
  let id_tri, _, _, _ =
    Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:0.05 ~vg:0.9 ~vs:0.0
  in
  Alcotest.(check bool) "triode < saturation" true (id_tri < id_sat)

let test_mosfet_symmetry () =
  (* swapping drain and source negates the current *)
  let id_fwd, _, _, _ =
    Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:0.3 ~vg:1.0 ~vs:0.0
  in
  let id_rev, _, _, _ =
    Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd:0.0 ~vg:1.0 ~vs:0.3
  in
  check_close (1e-9 +. (1e-9 *. Float.abs id_fwd)) "antisymmetric" (-.id_fwd) id_rev

let test_mosfet_pmos_mirror () =
  let pmos = Circuit.Netlist.default_pmos in
  let id_p, _, _, _ =
    Engine.Device.mosfet_ids Circuit.Netlist.Pmos pmos ~vd:(-1.0) ~vg:(-1.0) ~vs:0.0
  in
  (* PMOS with source high conducts negative drain current *)
  Alcotest.(check bool) "pmos conducts negative" true (id_p < 0.0)

let test_mosfet_derivatives_fd () =
  let cases =
    [ (1.2, 0.9, 0.0); (0.05, 0.9, 0.0); (0.5, 1.2, 0.2); (0.0, 1.0, 0.4) ]
  in
  List.iter
    (fun (vd, vg, vs) ->
      let _, dd, dg, ds =
        Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd ~vg ~vs
      in
      let id_of ~vd ~vg ~vs =
        let i, _, _, _ = Engine.Device.mosfet_ids Circuit.Netlist.Nmos nmos ~vd ~vg ~vs in
        i
      in
      let tol g = 1e-4 *. Float.max (Float.abs g) 1e-6 in
      check_close (tol dd) "dId/dVd" dd (fd_derivative (fun v -> id_of ~vd:v ~vg ~vs) vd);
      check_close (tol dg) "dId/dVg" dg (fd_derivative (fun v -> id_of ~vd ~vg:v ~vs) vg);
      check_close (tol ds) "dId/dVs" ds (fd_derivative (fun v -> id_of ~vd ~vg ~vs:v) vs))
    cases

let test_junction_continuity_and_fd () =
  let p = Circuit.Netlist.default_junction in
  let vb = 0.5 *. p.Circuit.Netlist.phi in
  let q1, c1 = Engine.Device.junction_q p (vb -. 1e-9) in
  let q2, c2 = Engine.Device.junction_q p (vb +. 1e-9) in
  Alcotest.(check bool) "q continuous" true (Float.abs (q2 -. q1) < 1e-12 *. 1e-3);
  Alcotest.(check bool) "c continuous" true (Float.abs (c2 -. c1) /. c1 < 1e-6);
  List.iter
    (fun v ->
      let _, c = Engine.Device.junction_q p v in
      let c_fd = fd_derivative (fun v -> fst (Engine.Device.junction_q p v)) v in
      check_close (1e-3 *. c) (Printf.sprintf "C at %g" v) c c_fd)
    [ -2.0; -0.5; 0.0; 0.3; 0.6 ]

let test_bjt_regions () =
  let p = Circuit.Netlist.default_npn in
  (* forward active: vbe = 0.7, vbc < 0 *)
  let e = Engine.Device.bjt_currents Circuit.Netlist.Npn p ~vc:3.0 ~vb:0.7 ~ve:0.0 in
  Alcotest.(check bool) "ic positive" true (e.Engine.Device.ic > 1e-6);
  check_close (0.02 *. e.Engine.Device.ic /. 100.0) "beta relation"
    (e.Engine.Device.ic /. 100.0) e.Engine.Device.ib;
  (* off: everything tiny *)
  let off = Engine.Device.bjt_currents Circuit.Netlist.Npn p ~vc:3.0 ~vb:0.0 ~ve:0.0 in
  Alcotest.(check bool) "off" true (Float.abs off.Engine.Device.ic < 1e-9)

let test_bjt_pnp_mirror () =
  let p = Circuit.Netlist.default_pnp in
  let e = Engine.Device.bjt_currents Circuit.Netlist.Pnp p ~vc:(-3.0) ~vb:(-0.7) ~ve:0.0 in
  Alcotest.(check bool) "pnp collector current negative" true
    (e.Engine.Device.ic < -1e-6)

let test_bjt_derivatives_fd () =
  let p = Circuit.Netlist.default_npn in
  List.iter
    (fun (vc, vb, ve) ->
      let e = Engine.Device.bjt_currents Circuit.Netlist.Npn p ~vc ~vb ~ve in
      let ic ~vc ~vb ~ve = (Engine.Device.bjt_currents Circuit.Netlist.Npn p ~vc ~vb ~ve).Engine.Device.ic in
      let ib ~vc ~vb ~ve = (Engine.Device.bjt_currents Circuit.Netlist.Npn p ~vc ~vb ~ve).Engine.Device.ib in
      let tol g = 1e-3 *. Float.max (Float.abs g) 1e-9 in
      check_close (tol e.Engine.Device.dic_dvc) "dIc/dVc" e.Engine.Device.dic_dvc
        (fd_derivative (fun v -> ic ~vc:v ~vb ~ve) vc);
      check_close (tol e.Engine.Device.dic_dvb) "dIc/dVb" e.Engine.Device.dic_dvb
        (fd_derivative (fun v -> ic ~vc ~vb:v ~ve) vb);
      check_close (tol e.Engine.Device.dic_dve) "dIc/dVe" e.Engine.Device.dic_dve
        (fd_derivative (fun v -> ic ~vc ~vb ~ve:v) ve);
      check_close (tol e.Engine.Device.dib_dvc) "dIb/dVc" e.Engine.Device.dib_dvc
        (fd_derivative (fun v -> ib ~vc:v ~vb ~ve) vc);
      check_close (tol e.Engine.Device.dib_dvb) "dIb/dVb" e.Engine.Device.dib_dvb
        (fd_derivative (fun v -> ib ~vc ~vb:v ~ve) vb);
      check_close (tol e.Engine.Device.dib_dve) "dIb/dVe" e.Engine.Device.dib_dve
        (fd_derivative (fun v -> ib ~vc ~vb ~ve:v) ve))
    [ (3.0, 0.7, 0.0); (0.1, 0.7, 0.0); (1.0, 0.2, 0.5) ]

let test_bjt_ce_amp_dc_and_gain () =
  let nl = Circuits.Library.bjt_amp ~input_wave:(Circuit.Netlist.Dc 0.75) () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.bjt_input ]
      ~outputs:[ Circuits.Library.bjt_output ] nl
  in
  let v = Engine.Dc.solve mna in
  let vc = v.(Engine.Mna.node_index mna "c") in
  let ve = v.(Engine.Mna.node_index mna "e") in
  (* emitter follows base minus one vbe; collector sits below vcc *)
  Alcotest.(check bool) "vbe plausible" true (0.75 -. ve > 0.6 && 0.75 -. ve < 0.75);
  Alcotest.(check bool) "collector biased" true (vc > 3.0 && vc < 5.0);
  (* small-signal gain ≈ −Rc / (Re + 1/gm) with gm = Ic/Vt *)
  let ic = (5.0 -. vc) /. 2000.0 in
  let expected = -2000.0 /. (200.0 +. (Engine.Device.thermal_voltage /. ic)) in
  let h = (Engine.Ac.sweep_siso mna ~at:v ~freqs_hz:[| 1e3 |]).(0) in
  check_close (0.05 *. Float.abs expected) "ce gain" expected h.Complex.re

(* ---------------- MNA assembly ---------------- *)

let divider () =
  Circuit.Parser.parse_string {|
V1 a 0 DC 10
R1 a b 6k
R2 b 0 4k
|}

let test_mna_size () =
  let mna = Engine.Mna.build (divider ()) in
  (* two nodes + one vsource branch *)
  Alcotest.(check int) "unknowns" 3 (Engine.Mna.size mna);
  Alcotest.(check int) "nodes" 2 (Engine.Mna.n_nodes mna)

let test_mna_unknown_input () =
  Alcotest.(check bool) "unknown input rejected" true
    (match Engine.Mna.build ~inputs:[ "Vx" ] (divider ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_mna_jacobian_fd () =
  (* G matches finite differences of i(v) on a nonlinear circuit *)
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 0.8
R1 a b 1k
D1 b 0 IS=1e-12 N=1.6
M1 b a 0 NMOS
|} in
  let mna = Engine.Mna.build nl in
  let n = Engine.Mna.size mna in
  let v = Array.init n (fun k -> 0.1 +. (0.2 *. float_of_int k)) in
  let ev = Engine.Mna.eval mna ~time:0.0 v in
  let g = match ev.Engine.Mna.g_mat with Some g -> g | None -> assert false in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let vp = Array.copy v and vm = Array.copy v in
    vp.(j) <- vp.(j) +. h;
    vm.(j) <- vm.(j) -. h;
    let fp = (Engine.Mna.eval mna ~with_matrices:false ~time:0.0 vp).Engine.Mna.i_vec in
    let fm = (Engine.Mna.eval mna ~with_matrices:false ~time:0.0 vm).Engine.Mna.i_vec in
    for i = 0 to n - 1 do
      let fd = (fp.(i) -. fm.(i)) /. (2.0 *. h) in
      let expected = Linalg.Mat.get g i j in
      check_close
        (1e-3 *. Float.max (Float.abs expected) 1e-6)
        (Printf.sprintf "G[%d][%d]" i j) expected fd
    done
  done

let test_mna_charge_jacobian_fd () =
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 1
R1 a b 1k
C1 b 0 2p
J1 0 b CJ0=1p PHI=0.7 M=0.5
|} in
  let mna = Engine.Mna.build nl in
  let n = Engine.Mna.size mna in
  let v = Array.init n (fun k -> 0.3 +. (0.1 *. float_of_int k)) in
  let ev = Engine.Mna.eval mna ~time:0.0 v in
  let c = match ev.Engine.Mna.c_mat with Some c -> c | None -> assert false in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let vp = Array.copy v and vm = Array.copy v in
    vp.(j) <- vp.(j) +. h;
    vm.(j) <- vm.(j) -. h;
    let qp = (Engine.Mna.eval mna ~with_matrices:false ~time:0.0 vp).Engine.Mna.q_vec in
    let qm = (Engine.Mna.eval mna ~with_matrices:false ~time:0.0 vm).Engine.Mna.q_vec in
    for i = 0 to n - 1 do
      let fd = (qp.(i) -. qm.(i)) /. (2.0 *. h) in
      let expected = Linalg.Mat.get c i j in
      check_close
        (1e-3 *. Float.max (Float.abs expected) 1e-16)
        (Printf.sprintf "C[%d][%d]" i j) expected fd
    done
  done

(* ---------------- DC ---------------- *)

let test_dc_divider () =
  let mna = Engine.Mna.build (divider ()) in
  let v = Engine.Dc.solve mna in
  check_close 1e-6 "divider voltage" 4.0 v.(Engine.Mna.node_index mna "b")

let test_dc_diode_kcl () =
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 0.8
R1 a b 1k
D1 b 0 IS=1e-14 N=1
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  let vb = v.(Engine.Mna.node_index mna "b") in
  let i_r = (0.8 -. vb) /. 1000.0 in
  let i_d = 1e-14 *. (exp (vb /. 0.025852) -. 1.0) in
  check_close (1e-6 *. i_r) "KCL at diode node" i_r i_d

let test_dc_vccs () =
  (* VCCS driving a resistor: v_out = -gm * R * v_c *)
  let nl = Circuit.Parser.parse_string {|
V1 c 0 DC 1
G1 out 0 c 0 1m
R1 out 0 2k
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  check_close 1e-6 "vccs output" (-2.0) v.(Engine.Mna.node_index mna "out")

let test_dc_vcvs () =
  (* ideal amplifier with a resistive divider feedback: out = 4*vc *)
  let nl = Circuit.Parser.parse_string {|
V1 c 0 DC 0.5
E1 out 0 c 0 4
R1 out 0 1k
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  check_close 1e-9 "vcvs output" 2.0 v.(Engine.Mna.node_index mna "out")

let test_dc_cccs () =
  (* current mirror via CCCS: I(R2) = 3 * I(V1 branch) *)
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 1
R1 a 0 1k
F1 0 out V1 3
R2 out 0 500
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  (* I through V1 = −1mA (current drawn by R1 enters the source's + pin);
     the CCCS pushes gain·i from node 0 into out *)
  let vout = v.(Engine.Mna.node_index mna "out") in
  check_close 1e-9 "cccs output" 1.5 (Float.abs vout)

let test_dc_cccs_unknown_source () =
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 1
R1 a 0 1k
F1 0 out Vmissing 3
R2 out 0 500
|} in
  Alcotest.(check bool) "unknown control rejected" true
    (match Engine.Mna.build nl with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dc_inductor_short () =
  let nl = Circuit.Parser.parse_string {|
V1 a 0 DC 5
R1 a b 1k
L1 b c 1u
R2 c 0 1k
|} in
  let mna = Engine.Mna.build nl in
  let v = Engine.Dc.solve mna in
  check_close 1e-6 "inductor is a DC short" 2.5 v.(Engine.Mna.node_index mna "c")

let test_dc_buffer_converges () =
  let mna = Circuits.Buffer.mna () in
  let v = Engine.Dc.solve mna in
  Alcotest.(check bool) "finite solution" true (Array.for_all Float.is_finite v);
  (* differential output is zero at the balanced operating point *)
  let y = (Engine.Mna.output_values mna v).(0) in
  Alcotest.(check bool) "balanced output" true (Float.abs y < 1e-6)

(* ---------------- Transient ---------------- *)

let test_tran_rc_step () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 PULSE(0 1 0 1p 1p 1 2)
R1 in out 1k
C1 out 0 1n
|} in
  let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node "out" ] nl in
  let res = Engine.Tran.run mna ~t_stop:5e-6 ~dt:5e-9 in
  let w = Engine.Tran.output_waveform res 0 in
  List.iter
    (fun t ->
      let v_ref = 1.0 -. exp (-.t /. 1e-6) in
      check_close 2e-3 (Printf.sprintf "rc step at %g" t)
        v_ref (Signal.Waveform.value_at w t))
    [ 0.5e-6; 1e-6; 2e-6; 4e-6 ]

let test_tran_rlc_resonance () =
  (* series RLC: underdamped oscillation frequency ~ 1/(2 pi sqrt(LC)) *)
  let nl = Circuit.Parser.parse_string {|
Vin in 0 PULSE(0 1 0 1p 1p 1 2)
R1 in a 10
L1 a b 1u
C1 b 0 1n
|} in
  let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node "b" ] nl in
  let res = Engine.Tran.run mna ~t_stop:1e-6 ~dt:2e-10 in
  let w = Engine.Tran.output_waveform res 0 in
  (* peak of the first overshoot should exceed 1 (underdamped) *)
  let peak = Array.fold_left Float.max neg_infinity (Signal.Waveform.values w) in
  Alcotest.(check bool) "underdamped overshoot" true (peak > 1.2);
  (* final value settles to 1 *)
  check_close 0.02 "settles" 1.0 (Signal.Waveform.value_at w 0.99e-6)

let test_tran_be_vs_tr () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 SIN(0 1 1e6)
R1 in out 1k
C1 out 0 1n
|} in
  let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node "out" ] nl in
  let run integration =
    let opts = { Engine.Tran.default_opts with Engine.Tran.integration } in
    Engine.Tran.output_waveform (Engine.Tran.run ~opts mna ~t_stop:2e-6 ~dt:2e-9) 0
  in
  let w_tr = run Engine.Tran.Trapezoidal in
  let w_be = run Engine.Tran.Backward_euler in
  (* both close, TR more accurate; just check they agree to ~1% *)
  Alcotest.(check bool) "methods agree" true (Signal.Waveform.rmse w_tr w_be < 0.01)

let test_tran_snapshots () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 SIN(0.3 0.3 1e6)
R1 in out 1k
D1 out 0 IS=1e-12 N=1.5
C1 out 0 10p
|} in
  let mna =
    Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "out" ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let res = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  Alcotest.(check int) "snapshot count" 11 (Array.length res.Engine.Tran.snapshots);
  (* Jacobians at the snapshot must vary along the trajectory (nonlinear) *)
  let g0 = res.Engine.Tran.snapshots.(2).Engine.Tran.g_mat in
  let g1 = res.Engine.Tran.snapshots.(5).Engine.Tran.g_mat in
  Alcotest.(check bool) "snapshots differ" true
    (Linalg.Mat.max_abs (Linalg.Mat.sub g0 g1) > 1e-9);
  (* inputs recorded match the wave *)
  let s = res.Engine.Tran.snapshots.(3) in
  check_close 1e-9 "recorded input"
    (0.3 +. (0.3 *. sin (2.0 *. Float.pi *. 1e6 *. s.Engine.Tran.time)))
    s.Engine.Tran.inputs.(0)

let test_tran_invalid_args () =
  let mna = Engine.Mna.build (divider ()) in
  Alcotest.(check bool) "bad dt" true
    (match Engine.Tran.run mna ~t_stop:1.0 ~dt:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tran_adaptive_accuracy () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 PULSE(0 1 1u 1n 1n 0.2u 5u)
R1 in out 1k
C1 out 0 1n
|} in
  let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node "out" ] nl in
  let fixed = Engine.Tran.run mna ~t_stop:10e-6 ~dt:1e-9 in
  let adaptive = Engine.Tran.run_adaptive mna ~t_stop:10e-6 ~dt:1e-9 ~reltol:1e-4 in
  Alcotest.(check bool) "fewer steps on a sparse waveform" true
    (Array.length adaptive.Engine.Tran.times
    < Array.length fixed.Engine.Tran.times / 2);
  let grid = Signal.Grid.linspace 1e-8 9.9e-6 500 in
  let wf =
    Signal.Waveform.resample (Engine.Tran.output_waveform fixed 0) grid
  in
  let wa =
    Signal.Waveform.resample (Engine.Tran.output_waveform adaptive 0) grid
  in
  Alcotest.(check bool) "matches the fixed-step reference" true
    (Signal.Waveform.rmse wf wa < 1e-4)

let test_tran_adaptive_monotone_times () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 SIN(0 1 1e6)
R1 in out 1k
C1 out 0 1n
|} in
  let mna = Engine.Mna.build ~outputs:[ Engine.Mna.Node "out" ] nl in
  let r = Engine.Tran.run_adaptive mna ~t_stop:2e-6 ~dt:1e-9 in
  let ok = ref true in
  Array.iteri
    (fun k t -> if k > 0 && t <= r.Engine.Tran.times.(k - 1) then ok := false)
    r.Engine.Tran.times;
  Alcotest.(check bool) "strictly increasing time axis" true !ok;
  check_close 1e-18 "ends at t_stop" 2e-6
    r.Engine.Tran.times.(Array.length r.Engine.Tran.times - 1)

(* ---------------- AC ---------------- *)

let test_ac_rc () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 DC 0
R1 in out 1k
C1 out 0 1n
|} in
  let mna =
    Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "out" ] nl
  in
  let at = Engine.Dc.solve mna in
  let freqs = [| 1e3; 159154.9431; 1e7 |] in
  let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
  let analytic f =
    let wrc = 2.0 *. Float.pi *. f *. 1e3 *. 1e-9 in
    1.0 /. sqrt (1.0 +. (wrc *. wrc))
  in
  Array.iteri
    (fun k f ->
      check_close 1e-6 (Printf.sprintf "|H| at %g" f) (analytic f)
        (Complex.norm h.(k)))
    freqs;
  (* phase at the corner is -45 degrees *)
  check_close 1e-3 "phase at corner" (-.Float.pi /. 4.0) (Complex.arg h.(1))

let test_ac_rlc_peak () =
  let nl = Circuit.Parser.parse_string {|
Vin in 0 DC 0
R1 in a 10
L1 a b 1u
C1 b 0 1n
|} in
  let mna = Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "b" ] nl in
  let at = Engine.Dc.solve mna in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-6 *. 1e-9)) in
  let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:[| f0 |] in
  (* |H| at resonance = Q = sqrt(L/C)/R *)
  let q = sqrt (1e-6 /. 1e-9) /. 10.0 in
  check_close (1e-3 *. q) "resonance peak" q (Complex.norm h.(0))

let test_ac_matches_tft_pencil () =
  (* transfer_at with the DC Jacobians equals the AC sweep *)
  let mna = Circuits.Buffer.mna () in
  let at = Engine.Dc.solve mna in
  let ev = Engine.Mna.eval mna ~time:0.0 at in
  let g, c =
    match (ev.Engine.Mna.g_mat, ev.Engine.Mna.c_mat) with
    | Some g, Some c -> (g, c)
    | _, _ -> assert false
  in
  let b = Engine.Mna.b_matrix mna and d = Engine.Mna.d_matrix mna in
  let f = 1e9 in
  let h1 = (Engine.Ac.sweep_siso mna ~at ~freqs_hz:[| f |]).(0) in
  let h2 =
    Linalg.Cmat.get (Engine.Ac.transfer_at ~g ~c ~b ~d ~s:(Signal.Grid.s_of_hz f)) 0 0
  in
  Alcotest.(check bool) "pencil solve consistent" true
    (Complex.norm (Complex.sub h1 h2) < 1e-10)

(* ---------------- generative circuit property ---------------- *)

(* random ladder of resistors/diodes/capacitors driven by a DC source:
   whatever the topology, a converged DC solve must satisfy KCL to the
   solver tolerance *)
let prop_dc_kcl_random_ladders =
  QCheck.Test.make ~count:30 ~name:"dc solution satisfies kcl on random ladders"
    QCheck.(pair (int_range 2 6) (int_bound 100000))
    (fun (stages, seed) ->
      let st = Random.State.make [| seed; 0xc1c |] in
      let comps = ref [ Circuit.Netlist.vsource ~name:"V1" "n0" "0"
                          (Circuit.Netlist.Dc (0.5 +. Random.State.float st 2.0)) ] in
      for k = 1 to stages do
        let prev = Printf.sprintf "n%d" (k - 1) in
        let cur = Printf.sprintf "n%d" k in
        comps :=
          Circuit.Netlist.resistor ~name:(Printf.sprintf "R%d" k) prev cur
            (100.0 +. Random.State.float st 10e3)
          :: !comps;
        (* random shunt element *)
        (match Random.State.int st 3 with
        | 0 ->
            comps :=
              Circuit.Netlist.resistor ~name:(Printf.sprintf "Rs%d" k) cur "0"
                (1e3 +. Random.State.float st 50e3)
              :: !comps
        | 1 ->
            comps :=
              Circuit.Netlist.diode ~name:(Printf.sprintf "D%d" k)
                ~params:{ Circuit.Netlist.i_sat = 1e-12; ideality = 1.5; cj = 0.0 }
                cur "0" ()
              :: !comps
        | _ ->
            comps :=
              Circuit.Netlist.capacitor ~name:(Printf.sprintf "Cs%d" k) cur "0"
                1e-12
              :: !comps)
      done;
      let nl = Circuit.Netlist.make !comps in
      let mna = Engine.Mna.build nl in
      match Engine.Dc.solve mna with
      | exception Engine.Dc.No_convergence _ -> false
      | v ->
          let ev = Engine.Mna.eval mna ~with_matrices:false ~time:0.0 v in
          Linalg.Vec.norm_inf ev.Engine.Mna.i_vec < 1e-6)

let suite =
  [
    Alcotest.test_case "diode forward" `Quick test_diode_forward;
    Alcotest.test_case "diode reverse" `Quick test_diode_reverse;
    Alcotest.test_case "diode limiting continuity" `Quick test_diode_limiting_continuity;
    Alcotest.test_case "diode derivative fd" `Quick test_diode_derivative_fd;
    Alcotest.test_case "mosfet regions" `Quick test_mosfet_regions;
    Alcotest.test_case "mosfet symmetry" `Quick test_mosfet_symmetry;
    Alcotest.test_case "mosfet pmos mirror" `Quick test_mosfet_pmos_mirror;
    Alcotest.test_case "mosfet derivatives fd" `Quick test_mosfet_derivatives_fd;
    Alcotest.test_case "junction cap continuity + fd" `Quick test_junction_continuity_and_fd;
    Alcotest.test_case "bjt regions" `Quick test_bjt_regions;
    Alcotest.test_case "bjt pnp mirror" `Quick test_bjt_pnp_mirror;
    Alcotest.test_case "bjt derivatives fd" `Quick test_bjt_derivatives_fd;
    Alcotest.test_case "bjt ce amp" `Quick test_bjt_ce_amp_dc_and_gain;
    Alcotest.test_case "mna size" `Quick test_mna_size;
    Alcotest.test_case "mna unknown input" `Quick test_mna_unknown_input;
    Alcotest.test_case "mna conductance jacobian fd" `Quick test_mna_jacobian_fd;
    Alcotest.test_case "mna charge jacobian fd" `Quick test_mna_charge_jacobian_fd;
    Alcotest.test_case "dc divider" `Quick test_dc_divider;
    Alcotest.test_case "dc diode kcl" `Quick test_dc_diode_kcl;
    Alcotest.test_case "dc vccs" `Quick test_dc_vccs;
    Alcotest.test_case "dc vcvs" `Quick test_dc_vcvs;
    Alcotest.test_case "dc cccs" `Quick test_dc_cccs;
    Alcotest.test_case "dc cccs unknown source" `Quick test_dc_cccs_unknown_source;
    Alcotest.test_case "dc inductor short" `Quick test_dc_inductor_short;
    Alcotest.test_case "dc buffer converges" `Quick test_dc_buffer_converges;
    Alcotest.test_case "tran rc step" `Quick test_tran_rc_step;
    Alcotest.test_case "tran rlc resonance" `Quick test_tran_rlc_resonance;
    Alcotest.test_case "tran be vs tr" `Quick test_tran_be_vs_tr;
    Alcotest.test_case "tran snapshots" `Quick test_tran_snapshots;
    Alcotest.test_case "tran invalid args" `Quick test_tran_invalid_args;
    Alcotest.test_case "tran adaptive accuracy" `Quick test_tran_adaptive_accuracy;
    Alcotest.test_case "tran adaptive monotone" `Quick test_tran_adaptive_monotone_times;
    Alcotest.test_case "ac rc" `Quick test_ac_rc;
    Alcotest.test_case "ac rlc peak" `Quick test_ac_rlc_peak;
    Alcotest.test_case "ac pencil consistency" `Quick test_ac_matches_tft_pencil;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_dc_kcl_random_ladders ]
