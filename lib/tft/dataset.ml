type sample = {
  time : float;
  x : float array;
  u : float array;
  y : float array;
  h : Linalg.Cmat.t array;
  h0 : Linalg.Cmat.t;
}

type t = {
  freqs_hz : float array;
  samples : sample array;
  n_inputs : int;
  n_outputs : int;
}

let of_snapshots ?pool ?trace ?metrics ~mna ~estimator ~freqs_hz snapshots =
  let b = Engine.Mna.b_matrix mna in
  let d = Engine.Mna.d_matrix mna in
  let mi = Linalg.Mat.cols b and mo = Linalg.Mat.cols d in
  if mi = 0 || mo = 0 then
    invalid_arg "Dataset.of_snapshots: system needs designated inputs and outputs";
  (* the estimator needs the input signal u(t); inputs are per-source *)
  let u_fun time = (Engine.Mna.input_values mna time).(0) in
  let ss = Array.map Signal.Grid.s_of_hz freqs_hz in
  (* snapshots are independent: fan them out across the pool, one solve
     workspace per domain. Each sample depends only on its own snapshot,
     so the result is bit-identical to the sequential path. *)
  let samples =
    Trace.span trace
      ~args:[ ("snapshots", Trace.Int (Array.length snapshots)) ]
      "tft.dataset"
    @@ fun () ->
    Exec.parallel_map_ws ?pool ?trace ?metrics ~label:"tft"
      ~ws:(fun () -> Engine.Ac.make_ws ~b ~d)
      (fun ws (snap : Engine.Tran.snapshot) ->
        let g = snap.Engine.Tran.g_mat and c = snap.Engine.Tran.c_mat in
        let h = Engine.Ac.transfer_sweep ?metrics ws ~g ~c ~ss in
        let h0 = Engine.Ac.transfer_ws ws ~g ~c ~s:Complex.zero in
        {
          time = snap.Engine.Tran.time;
          x = Estimator.coords estimator ~u:u_fun snap.Engine.Tran.time;
          u = Array.copy snap.Engine.Tran.inputs;
          y = Array.copy snap.Engine.Tran.outputs;
          h;
          h0;
        })
      snapshots
  in
  { freqs_hz; samples; n_inputs = mi; n_outputs = mo }

let dynamic_part t =
  let samples =
    Array.map
      (fun s ->
        let h =
          Array.map
            (fun hm ->
              Linalg.Cmat.init (Linalg.Cmat.rows hm) (Linalg.Cmat.cols hm)
                (fun r c ->
                  Complex.sub (Linalg.Cmat.get hm r c) (Linalg.Cmat.get s.h0 r c)))
            s.h
        in
        { s with h })
      t.samples
  in
  { t with samples }

let siso t ~input ~output =
  let xs = Array.map (fun s -> s.x) t.samples in
  let data =
    Array.map
      (fun s -> Array.map (fun hm -> Linalg.Cmat.get hm output input) s.h)
      t.samples
  in
  (xs, data)

let dc_trace t ~input ~output =
  Array.map (fun s -> (Linalg.Cmat.get s.h0 output input).Complex.re) t.samples

let thin t ~min_dx =
  let kept = ref [] in
  let close a b =
    let worst = ref 0.0 in
    Array.iteri (fun k x -> worst := Float.max !worst (Float.abs (x -. b.(k)))) a;
    !worst < min_dx
  in
  Array.iter
    (fun s ->
      if not (List.exists (fun k -> close s.x k.x) !kept) then kept := s :: !kept)
    t.samples;
  { t with samples = Array.of_list (List.rev !kept) }

let sort_by_x0 t =
  let samples = Array.copy t.samples in
  Array.sort (fun a b -> Float.compare a.x.(0) b.x.(0)) samples;
  { t with samples }
