type sample = {
  time : float;
  x : float array;
  u : float array;
  y : float array;
  h : Linalg.Cmat.t array;
  h0 : Linalg.Cmat.t;
}

type t = {
  freqs_hz : float array;
  samples : sample array;
  n_inputs : int;
  n_outputs : int;
}

let finite_cmat m =
  let ok = ref true in
  for r = 0 to Linalg.Cmat.rows m - 1 do
    for c = 0 to Linalg.Cmat.cols m - 1 do
      let z = Linalg.Cmat.get m r c in
      if not (Float.is_finite z.Complex.re && Float.is_finite z.Complex.im)
      then ok := false
    done
  done;
  !ok

let sample_finite s =
  Guard.finite_array s.x && Guard.finite_array s.u && Guard.finite_array s.y
  && finite_cmat s.h0
  && Array.for_all finite_cmat s.h

(* elementwise (1-w)·a + w·b, the neighbor-interpolation repair *)
let lerp_cmat a b w =
  Linalg.Cmat.init (Linalg.Cmat.rows a) (Linalg.Cmat.cols a) (fun r c ->
      let za = Linalg.Cmat.get a r c and zb = Linalg.Cmat.get b r c in
      {
        Complex.re = ((1.0 -. w) *. za.Complex.re) +. (w *. zb.Complex.re);
        im = ((1.0 -. w) *. za.Complex.im) +. (w *. zb.Complex.im);
      })

(* Snapshot quarantine: flag samples with non-finite transfer data and
   either rebuild their H matrices from the nearest healthy neighbors
   (time-weighted linear interpolation, one-sided copy at the ends) or
   drop them. A sample whose state/input/output coordinates are
   themselves corrupt cannot keep its place on the trajectory and is
   dropped under either policy. Raises when nothing is left to repair
   from. *)
let quarantine guard diag metrics obs t =
  match guard with
  | None -> t
  | Some (g : Guard.t) ->
      let n = Array.length t.samples in
      let bad = Array.map (fun s -> not (sample_finite s)) t.samples in
      let n_bad = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bad in
      if n_bad = 0 then t
      else begin
        Diag.add diag "dataset.quarantined" n_bad;
        Metrics.add metrics "dataset.quarantined" n_bad;
        if n_bad = n then
          Guard.fail ~site:"dataset.quarantine"
            "every snapshot sample is corrupt";
        let repaired = ref 0 and dropped = ref 0 in
        let healthy_before i =
          let j = ref (i - 1) in
          while !j >= 0 && bad.(!j) do decr j done;
          if !j >= 0 then Some t.samples.(!j) else None
        in
        let healthy_after i =
          let j = ref (i + 1) in
          while !j < n && bad.(!j) do incr j done;
          if !j < n then Some t.samples.(!j) else None
        in
        let repair i s =
          match g.Guard.snapshot_repair with
          | Guard.Drop -> None
          | Guard.Interpolate ->
              if
                not
                  (Guard.finite_array s.x && Guard.finite_array s.u
                 && Guard.finite_array s.y)
              then None
              else begin
                match (healthy_before i, healthy_after i) with
                | None, None -> None
                | Some a, None -> Some { s with h = a.h; h0 = a.h0 }
                | None, Some b -> Some { s with h = b.h; h0 = b.h0 }
                | Some a, Some b ->
                    let span = b.time -. a.time in
                    let w =
                      if span <= 0.0 then 0.5 else (s.time -. a.time) /. span
                    in
                    Some
                      {
                        s with
                        h = Array.map2 (fun ha hb -> lerp_cmat ha hb w) a.h b.h;
                        h0 = lerp_cmat a.h0 b.h0 w;
                      }
              end
        in
        let kept = ref [] in
        Array.iteri
          (fun i s ->
            if not bad.(i) then kept := s :: !kept
            else
              match repair i s with
              | Some s' ->
                  incr repaired;
                  kept := s' :: !kept
              | None -> incr dropped)
          t.samples;
        Diag.add diag "dataset.repaired" !repaired;
        Diag.add diag "dataset.dropped" !dropped;
        Metrics.add metrics "dataset.repaired" !repaired;
        Metrics.add metrics "dataset.dropped" !dropped;
        Diag.warn diag ~stage:"tft.dataset"
          (Printf.sprintf
             "quarantined %d snapshot sample(s): %d repaired by %s, %d dropped"
             n_bad !repaired
             (Guard.repair_to_string g.Guard.snapshot_repair)
             !dropped);
        Obs.quarantine obs ~n_bad ~repaired:!repaired ~dropped:!dropped;
        { t with samples = Array.of_list (List.rev !kept) }
      end

(* per-chunk pencil-solve workspaces parked in the warm pool between
   calls; revalidated against the current (B, D) so one pool can serve
   successive escalation rungs and even different circuits *)
let ac_ws_key : Engine.Ac.ws Exec.key = Exec.new_key ()
let rk_ws_key : Engine.Ratkrylov.ws Exec.key = Exec.new_key ()

let of_snapshots ?pool ?guard ?cancel ?diag ?trace ?metrics ?obs
    ?(backend = Engine.Mna.Dense) ?sparse_ctx ~mna ~estimator ~freqs_hz
    snapshots =
  let b = Engine.Mna.b_matrix mna in
  let d = Engine.Mna.d_matrix mna in
  let mi = Linalg.Mat.cols b and mo = Linalg.Mat.cols d in
  if mi = 0 || mo = 0 then
    invalid_arg "Dataset.of_snapshots: system needs designated inputs and outputs";
  (* the estimator needs the input signal u(t); inputs are per-source *)
  let u_fun time = (Engine.Mna.input_values mna time).(0) in
  let ss = Array.map Signal.Grid.s_of_hz freqs_hz in
  (* fault pre-pass, sequential by construction: firing is decided per
     snapshot index before the fan-out, so the injected burst lands on
     the same snapshots for any domain count *)
  let corrupt =
    if Fault.armed () = Some "dataset.snapshot_burst" then
      Array.map (fun _ -> Fault.should_fire "dataset.snapshot_burst") snapshots
    else Array.make (Array.length snapshots) false
  in
  (* snapshots are independent: fan them out across the pool, one solve
     workspace per domain. Each sample depends only on its own snapshot,
     so the result is bit-identical to the sequential path. Guard
     finite-checks run in the quarantine pass below, not in the workers,
     so corrupt samples are collected rather than racing to raise. *)
  let make_sample (snap : Engine.Tran.snapshot) i h h0 =
    if corrupt.(i) then
      Array.iter
        (fun hm ->
          Linalg.Cmat.set hm 0 0 { Complex.re = Float.nan; im = Float.nan })
        h;
    {
      time = snap.Engine.Tran.time;
      x = Estimator.coords estimator ~u:u_fun snap.Engine.Tran.time;
      u = Array.copy snap.Engine.Tran.inputs;
      y = Array.copy snap.Engine.Tran.outputs;
      h;
      h0;
    }
  in
  let samples =
    Trace.span trace
      ~args:[ ("snapshots", Trace.Int (Array.length snapshots)) ]
      "tft.dataset"
    @@ fun () ->
    match backend with
    | Engine.Mna.Dense ->
        Exec.parallel_map_ws ?pool ?cancel ?trace ?metrics ~label:"tft"
          ~ws:(fun chunk ->
            match pool with
            | Some p ->
                Exec.slot p ac_ws_key ~chunk
                  ~valid:(fun w -> Engine.Ac.ws_matches w ~b ~d)
                  ~make:(fun () -> Engine.Ac.make_ws ~b ~d)
            | None -> Engine.Ac.make_ws ~b ~d)
          (fun ws ((i, snap) : int * Engine.Tran.snapshot) ->
            let g = snap.Engine.Tran.g_mat and c = snap.Engine.Tran.c_mat in
            let h =
              Engine.Ac.transfer_sweep ?cancel ?metrics ?obs ws ~g ~c ~ss
            in
            let h0 = Engine.Ac.transfer_ws ?obs ws ~g ~c ~s:Complex.zero in
            make_sample snap i h h0)
          (Array.mapi (fun i snap -> (i, snap)) snapshots)
    | Engine.Mna.Sparse ->
        (* Snapshots carry placeholder Jacobians on this backend: the
           sequential pre-pass re-stamps G/C from each snapshot's
           converged state through the compiled pattern (bit-identical
           values — same accumulation order as the dense stamps) and
           keeps only the nnz-sized value arrays. Workers then run the
           rational-Krylov sweep on private views, so nothing shared is
           mutated during the fan-out. *)
        let ctx =
          match sparse_ctx with
          | Some c -> c
          | None -> Engine.Mna.sparse_ctx mna
        in
        let pat = Engine.Mna.sparse_pattern ctx in
        let per_snap =
          Array.map
            (fun (snap : Engine.Tran.snapshot) ->
              let sev =
                Engine.Mna.eval_sparse mna ctx ~time:snap.Engine.Tran.time
                  snap.Engine.Tran.state
              in
              ( Array.copy sev.Engine.Mna.sg.Linalg.Sp.v,
                Array.copy sev.Engine.Mna.sc.Linalg.Sp.v ))
            snapshots
        in
        (* an armed fault must fire at a deterministic point in the
           solve sequence, so injections force the sequential path *)
        let pool = if Fault.armed () = None then pool else None in
        Exec.parallel_map_ws ?pool ?cancel ?trace ?metrics ~label:"tft"
          ~ws:(fun chunk ->
            match pool with
            | Some p ->
                Exec.slot p rk_ws_key ~chunk
                  ~valid:(fun w -> Engine.Ratkrylov.ws_matches w ~pat ~b ~d)
                  ~make:(fun () -> Engine.Ratkrylov.make_ws ~pat ~b ~d)
            | None -> Engine.Ratkrylov.make_ws ~pat ~b ~d)
          (fun ws ((i, snap) : int * Engine.Tran.snapshot) ->
            let gv, cv = per_snap.(i) in
            let g = { Linalg.Sp.pat; v = gv }
            and c = { Linalg.Sp.pat; v = cv } in
            let h, _ =
              Engine.Ratkrylov.sweep ?cancel ?metrics ?obs ws ~g ~c ~ss
            in
            let h0, _ =
              Engine.Ratkrylov.sweep ?cancel ?metrics ?obs ws ~g ~c
                ~ss:[| Complex.zero |]
            in
            make_sample snap i h h0.(0))
          (Array.mapi (fun i snap -> (i, snap)) snapshots)
  in
  quarantine guard diag metrics obs
    { freqs_hz; samples; n_inputs = mi; n_outputs = mo }

let dynamic_part t =
  let samples =
    Array.map
      (fun s ->
        let h =
          Array.map
            (fun hm ->
              Linalg.Cmat.init (Linalg.Cmat.rows hm) (Linalg.Cmat.cols hm)
                (fun r c ->
                  Complex.sub (Linalg.Cmat.get hm r c) (Linalg.Cmat.get s.h0 r c)))
            s.h
        in
        { s with h })
      t.samples
  in
  { t with samples }

let siso t ~input ~output =
  let xs = Array.map (fun s -> s.x) t.samples in
  let data =
    Array.map
      (fun s -> Array.map (fun hm -> Linalg.Cmat.get hm output input) s.h)
      t.samples
  in
  (xs, data)

let dc_trace t ~input ~output =
  Array.map (fun s -> (Linalg.Cmat.get s.h0 output input).Complex.re) t.samples

let thin t ~min_dx =
  let kept = ref [] in
  let close a b =
    let worst = ref 0.0 in
    Array.iteri (fun k x -> worst := Float.max !worst (Float.abs (x -. b.(k)))) a;
    !worst < min_dx
  in
  Array.iter
    (fun s ->
      if not (List.exists (fun k -> close s.x k.x) !kept) then kept := s :: !kept)
    t.samples;
  { t with samples = Array.of_list (List.rev !kept) }

let sort_by_x0 t =
  let samples = Array.copy t.samples in
  Array.sort (fun a b -> Float.compare a.x.(0) b.x.(0)) samples;
  { t with samples }
