(** Trajectory piecewise (TPW) baseline — the prior art the paper's
    introduction argues against (refs. [1], [2]).

    A TPW model is "a large database of ... circuit snapshots that are
    interpolated during model evaluation": it keeps every training
    linearization [(x_k, v_k, G_k, C_k)] and simulates by interpolating
    between the two snapshots bracketing the current input. Contrast
    with the RVF result, which compresses the same snapshots into a
    handful of analytical equations and needs no database at runtime.

    Restricted to quasi-static training trajectories (the same
    low-frequency pump the TFT flow uses), where the snapshot residual
    [dq/dt] is negligible, and to piecewise-DC auxiliary sources. *)

type t

val build :
  ?guard:Guard.t ->
  ?diag:Diag.t ->
  mna:Engine.Mna.t ->
  Engine.Tran.snapshot array ->
  t
(** Index the snapshots by the first input value. Requires ≥ 2 snapshots
    and a SISO input/output configuration. With [guard], snapshots with
    non-finite state or Jacobian data are dropped before indexing
    ([tpw.quarantined] counter plus a [diag] warning); interpolation
    repair does not apply here because the database is re-ordered by
    input value. *)

val size_in_floats : t -> int
(** Storage footprint of the snapshot database (floats held at runtime) —
    the "large database" cost of the TPW approach. *)

val simulate :
  ?guard:Guard.t ->
  t ->
  u:(float -> float) ->
  t_stop:float ->
  dt:float ->
  Signal.Waveform.t
(** Trapezoidal integration of the interpolated linearized dynamics; one
    [n×n] LU solve per step (no Newton iteration, but no model-order
    reduction either). With [guard], each step's factorization gets a
    reciprocal-condition floor and each solve a NaN/Inf sentinel. *)
