type t = {
  xs : float array;  (** snapshot input values, ascending *)
  states : Linalg.Vec.t array;
  gs : Linalg.Mat.t array;
  cs : Linalg.Mat.t array;
  b : Linalg.Vec.t;  (** single input column *)
  d : Linalg.Vec.t;  (** single output column *)
  n : int;
}

let finite_mat m =
  let ok = ref true in
  for r = 0 to Linalg.Mat.rows m - 1 do
    for c = 0 to Linalg.Mat.cols m - 1 do
      if not (Float.is_finite (Linalg.Mat.get m r c)) then ok := false
    done
  done;
  !ok

let snapshot_finite (s : Engine.Tran.snapshot) =
  Guard.finite_array s.Engine.Tran.state
  && Guard.finite_array s.Engine.Tran.inputs
  && finite_mat s.Engine.Tran.g_mat
  && finite_mat s.Engine.Tran.c_mat

let build ?guard ?diag ~mna snapshots =
  (* snapshot quarantine: the TPW database interpolates raw snapshots
     directly, so a corrupt one is dropped before indexing (there is no
     meaningful neighbor repair once the x-ordering is rebuilt) *)
  let snapshots =
    match guard with
    | None -> snapshots
    | Some _ ->
        let kept = Array.of_list (List.filter snapshot_finite (Array.to_list snapshots)) in
        let n_bad = Array.length snapshots - Array.length kept in
        if n_bad > 0 then begin
          Diag.add diag "tpw.quarantined" n_bad;
          Diag.warn diag ~stage:"tft.tpw"
            (Printf.sprintf "dropped %d corrupt snapshot(s)" n_bad)
        end;
        kept
  in
  if Array.length snapshots < 2 then invalid_arg "Tpw.build: need >= 2 snapshots";
  if Engine.Mna.n_inputs mna <> 1 || Engine.Mna.n_outputs mna <> 1 then
    invalid_arg "Tpw.build: SISO configuration required";
  let order =
    Array.init (Array.length snapshots) (fun k -> k)
  in
  Array.sort
    (fun a b ->
      Float.compare snapshots.(a).Engine.Tran.inputs.(0)
        snapshots.(b).Engine.Tran.inputs.(0))
    order;
  (* drop duplicates in x to keep interpolation well defined *)
  let kept = ref [] in
  Array.iter
    (fun k ->
      let x = snapshots.(k).Engine.Tran.inputs.(0) in
      match !kept with
      | k' :: _ when Float.abs (snapshots.(k').Engine.Tran.inputs.(0) -. x) < 1e-12 -> ()
      | _ -> kept := k :: !kept)
    order;
  let kept = Array.of_list (List.rev !kept) in
  if Array.length kept < 2 then invalid_arg "Tpw.build: degenerate trajectory";
  let pick f = Array.map (fun k -> f snapshots.(k)) kept in
  {
    xs = pick (fun s -> s.Engine.Tran.inputs.(0));
    states = pick (fun s -> Linalg.Vec.copy s.Engine.Tran.state);
    gs = pick (fun s -> Linalg.Mat.copy s.Engine.Tran.g_mat);
    cs = pick (fun s -> Linalg.Mat.copy s.Engine.Tran.c_mat);
    b = Linalg.Mat.col (Engine.Mna.b_matrix mna) 0;
    d = Linalg.Mat.col (Engine.Mna.d_matrix mna) 0;
    n = Engine.Mna.size mna;
  }

let size_in_floats t =
  let per = (2 * t.n * t.n) + t.n + 1 in
  (Array.length t.xs * per) + (2 * t.n)

(* bracketing snapshots and interpolation weight for input value w *)
let locate t w =
  let m = Array.length t.xs in
  if w <= t.xs.(0) then (0, 0, 0.0)
  else if w >= t.xs.(m - 1) then (m - 1, m - 1, 0.0)
  else begin
    let lo = ref 0 and hi = ref (m - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= w then lo := mid else hi := mid
    done;
    (!lo, !hi, (w -. t.xs.(!lo)) /. (t.xs.(!hi) -. t.xs.(!lo)))
  end

let blend_mat_into dst a b lambda =
  if lambda = 0.0 then Linalg.Mat.blit ~src:a ~dst
  else Linalg.Mat.lincomb_into dst (1.0 -. lambda) a lambda b

let blend_vec a b lambda =
  Array.init (Array.length a) (fun i ->
      ((1.0 -. lambda) *. a.(i)) +. (lambda *. b.(i)))

(* The interpolated linearization around the point (v_star, u_star):
   G·z + C·dz/dt = B·(u(t) − u_star)  with  z = v − v_star; trapezoidal:
   (G + 2C/h)·z_next = B·(u_next − u_star) + rhs_history.
   Freezing the interpolation per step keeps the update linear. *)
let simulate ?guard t ~u ~t_stop ~dt =
  if dt <= 0.0 || t_stop <= 0.0 then invalid_arg "Tpw.simulate: dt, t_stop > 0";
  let steps = Stdlib.max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  let times = Array.make (steps + 1) 0.0 in
  let values = Array.make (steps + 1) 0.0 in
  (* initial state: interpolated trajectory state at u(0) *)
  let v =
    let k0, k1, lambda = locate t (u 0.0) in
    ref (blend_vec t.states.(k0) t.states.(k1) lambda)
  in
  let dvdt = ref (Linalg.Vec.create t.n) in
  (* per-step scratch, blended/factored into in place: the old path
     allocated G, C and the full A = G + 2C/h matrix every step *)
  let g = Linalg.Mat.create t.n t.n in
  let c = Linalg.Mat.create t.n t.n in
  let a = Linalg.Mat.create t.n t.n in
  let lu = Linalg.Lu.workspace t.n in
  let zdot = Linalg.Vec.create t.n in
  let hist = Linalg.Vec.create t.n in
  let z_next = Linalg.Vec.create t.n in
  let output v = Linalg.Vec.dot t.d v in
  values.(0) <- output !v;
  for k = 1 to steps do
    let time = Float.min (float_of_int k *. dt) t_stop in
    let h = time -. times.(k - 1) in
    let w = u time in
    let k0, k1, lambda = locate t w in
    blend_mat_into g t.gs.(k0) t.gs.(k1) lambda;
    blend_mat_into c t.cs.(k0) t.cs.(k1) lambda;
    let v_star = blend_vec t.states.(k0) t.states.(k1) lambda in
    let u_star = ((1.0 -. lambda) *. t.xs.(k0)) +. (lambda *. t.xs.(k1)) in
    (* trapezoidal on z = v − v_star, using dz/dt ≈ dv/dt since v_star
       is frozen within the step *)
    Linalg.Mat.lincomb_into a 1.0 g (2.0 /. h) c;
    Linalg.Lu.factor_into ?guard lu a;
    let z_n = Linalg.Vec.sub !v v_star in
    for i = 0 to t.n - 1 do
      zdot.(i) <- ((2.0 /. h) *. z_n.(i)) +. (!dvdt).(i)
    done;
    Linalg.Mat.mulv_into c zdot hist;
    let rhs =
      Array.init t.n (fun i -> (t.b.(i) *. (w -. u_star)) +. hist.(i))
    in
    Linalg.Lu.solve_into lu rhs z_next;
    Guard.check_vec guard ~site:"tpw.simulate" z_next;
    let v_next = Linalg.Vec.add v_star z_next in
    dvdt :=
      Array.init t.n (fun i -> ((v_next.(i) -. (!v).(i)) *. 2.0 /. h) -. (!dvdt).(i));
    v := v_next;
    times.(k) <- time;
    values.(k) <- output !v
  done;
  Signal.Waveform.make times values
