(** Transfer Function Trajectory datasets.

    Each sample is one state-space location [k] (one accepted transient
    time point) carrying the state-estimator coordinates [x(k)] and the
    transfer matrix [H^(k)(s_l)] evaluated on the shared frequency grid —
    eq. (3) of the paper. *)

type sample = {
  time : float;
  x : float array;  (** state-estimator coordinates *)
  u : float array;  (** raw input values *)
  y : float array;  (** circuit outputs at the sample *)
  h : Linalg.Cmat.t array;  (** per frequency: n_outputs × n_inputs *)
  h0 : Linalg.Cmat.t;  (** DC transfer H^(k)(0) (instantaneous conductance) *)
}

type t = {
  freqs_hz : float array;
  samples : sample array;
  n_inputs : int;
  n_outputs : int;
}

val of_snapshots :
  ?pool:Exec.t ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?backend:Engine.Mna.backend ->
  ?sparse_ctx:Engine.Mna.sparse_ctx ->
  mna:Engine.Mna.t ->
  estimator:Estimator.t ->
  freqs_hz:float array ->
  Engine.Tran.snapshot array ->
  t
(** Evaluate [H^(k)(s) = Dᵀ(G_k + s·C_k)⁻¹B] on the frequency grid for
    every snapshot. The estimator is evaluated from the designated input
    sources of the MNA system.

    With [?pool], snapshots are partitioned across the pool's domains
    with one preallocated solve workspace per domain; the result is
    bit-identical to the sequential path for any domain count (fixed
    chunk boundaries, per-sample independence, no reductions). With
    [cancel], the token is probed at every chunk boundary (site
    [tft.chunk]) and every pencil solve (site [ac.sweep]).

    With [trace], the sweep records a [tft.dataset] span containing one
    [tft.chunk] span per chunk, each on the track of the domain that
    ran it; with [metrics], per-frequency pencil-solve times land in
    [ac.pencil_solve_ns] (recorded from worker domains) and chunk
    wait/run times in [tft.chunk_wait_ns]/[tft.chunk_run_ns].

    With [guard], a quarantine pass runs after the sweep: samples with
    non-finite transfer data are counted ([dataset.quarantined]) and
    either rebuilt by time-weighted interpolation between the nearest
    healthy neighbors ([dataset.repaired], policy
    [guard.snapshot_repair = Interpolate]) or removed
    ([dataset.dropped]), with a [diag] warning either way — and, with
    [obs], a [quarantine] event carrying the counts (per-frequency
    pencil factorizations also emit ["ac.pencil"] rcond samples).
    Raises [Guard.Violation] when every sample is corrupt. Hosts the
    ["dataset.snapshot_burst"] fault probe; firing is decided per
    snapshot index in a sequential pre-pass, so injected bursts are
    deterministic for any domain count.

    With [backend:Sparse], the snapshots' (placeholder) dense Jacobians
    are ignored: G/C are re-stamped from each snapshot's converged
    state through the compiled pattern of [sparse_ctx] (compiled on the
    fly when omitted) in a sequential pre-pass, and each snapshot's
    grid sweep runs through {!Engine.Ratkrylov} — a few sparse shift
    factorizations plus certified projected solves instead of one dense
    factorization per grid point. [H(0)] comes from an exact sparse
    solve. An armed fault site forces the sequential path so injections
    ([sp.singular], [krylov.stall]) land deterministically; a sparse
    singularity escapes as {!Linalg.Spclu.Singular} for the pipeline's
    escalation ladder to catch. *)

val dynamic_part : t -> t
(** Subtract [H^(k)(0)] from every frequency sample: the remaining purely
    dynamical part [H̄^(k)(s)], which vanishes at DC. *)

val siso : t -> input:int -> output:int -> (float array array * Complex.t array array)
(** Slice one (input, output) channel: [(xs, data)] with [xs.(k)] the
    estimator coordinates and [data.(k).(l)] = [H^(k)_{lm}(s_l)]. *)

val dc_trace : t -> input:int -> output:int -> float array
(** [H^(k)(0)] for one channel, per sample (real part). *)

val thin : t -> min_dx:float -> t
(** Drop samples whose estimator coordinates are within [min_dx]
    (infinity-norm) of an already kept sample; keeps endpoints of the
    trajectory. Controls training-set redundancy. *)

val sort_by_x0 : t -> t
(** Order samples by the first estimator coordinate (for printing the
    hyperplane figures). *)
