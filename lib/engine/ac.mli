(** Small-signal AC analysis: the frequency response of the circuit
    linearized at a given operating point.

    [H(s) = Dᵀ (G + s·C)⁻¹ B] — the same pencil solve used per-snapshot
    by the TFT transform, exposed here for validation against the
    extracted models.

    The sweep entry points share a {!ws} workspace holding the pencil
    buffer, the LU workspace and the solve scratch, so evaluating a
    whole trajectory (K snapshots × L frequencies) allocates nothing
    beyond the small per-point transfer matrices. One workspace must
    only be used by one domain at a time. *)

type ws
(** Preallocated solve buffers bound to one (B, D) input/output pair. *)

val make_ws : b:Linalg.Mat.t -> d:Linalg.Mat.t -> ws
(** Allocate a workspace for systems of [B]'s row dimension. [b] and
    [d] are captured by reference and must not be mutated while the
    workspace is in use. *)

val ws_matches : ws -> b:Linalg.Mat.t -> d:Linalg.Mat.t -> bool
(** Whether the workspace was built for an equal [(B, D)] pair (same
    shape and contents) — the validity predicate for reusing pool-cached
    workspaces across pipeline stages and circuits. *)

val transfer_ws :
  ?guard:Guard.t ->
  ?obs:Obs.t ->
  ws ->
  g:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  s:Complex.t ->
  Linalg.Cmat.t
(** Pencil solve at one complex frequency, reusing the workspace.
    Returns the freshly allocated [n_outputs × n_inputs] transfer
    matrix. Without a [guard], bit-identical to {!transfer_at} on the
    same operands; with one, the factorization gets a
    reciprocal-condition floor and every solution column a NaN/Inf
    sentinel ([Guard.Violation] at site ["ac.transfer"]). With [obs],
    each factorization emits an ["ac.pencil"] rcond event (thread-safe,
    so pool workers may share one hub). Hosts the ["ac.pencil_nan"]
    fault probe. *)

val transfer_sweep :
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  ws ->
  g:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  ss:Complex.t array ->
  Linalg.Cmat.t array
(** [transfer_ws] over a grid of complex frequencies: one in-place
    pencil build + factorization per grid point. With [metrics], each
    point's solve time lands in the [ac.pencil_solve_ns] histogram
    (safe to record from several worker domains at once); without, the
    sweep is exactly the plain map, with no clock reads.

    With [pool], the frequency grid is fanned out across domains using
    pool-cached workspace clones (chunk 0 reuses [ws]); results are
    bit-identical to the sequential sweep. An armed fault probe forces
    the sequential path so injections stay deterministic. Do not pass a
    pool from inside a worker of that same pool — it would just run
    sequentially anyway. With [cancel], every pencil solve probes the
    token (site ["ac.sweep"]), on the sequential and pooled paths
    alike. *)

val transfer_at :
  g:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  d:Linalg.Mat.t ->
  s:Complex.t ->
  Linalg.Cmat.t
(** One-shot convenience: {!make_ws} + {!transfer_ws} at a single
    frequency. *)

val sweep :
  ?pool:Exec.t ->
  Mna.t ->
  at:Linalg.Vec.t ->
  freqs_hz:float array ->
  Linalg.Cmat.t array
(** Linearize at [at] and sweep the given frequencies (Hz), optionally
    fanned across a warm pool. *)

val sweep_siso :
  ?pool:Exec.t ->
  Mna.t ->
  at:Linalg.Vec.t ->
  freqs_hz:float array ->
  Complex.t array
(** Convenience for single-input single-output setups: element (0,0). *)
