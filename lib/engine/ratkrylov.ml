(* Rational-Krylov frequency sweeps over a sparse MNA pencil.

   A dense AC sweep factors (G + s·C) once per grid point; the sparse
   per-point variant does the same with Splu-grade cost. For large
   circuits the transfer trajectory is far cheaper than either: factor
   the pencil at a handful of *shifts* drawn from the grid, collect the
   solutions (G + σ·C)⁻¹B into a real orthonormal basis V (a complex
   solve at σ = jω contributes Re X and Im X, which together span the
   conjugate pair ±jω — the real-arithmetic pairing), and answer every
   other grid point from the Galerkin-projected pencil
   (VᵀGV + s·VᵀCV)⁻¹VᵀB, a dense solve of subspace dimension k ≪ n.

   The projection is trusted only where it can prove itself: every
   grid point's reduced solution is expanded back to x = V·x_r and its
   true residual ‖(G + s·C)x − b‖/‖b‖ measured with sparse matvecs.
   Points above tolerance first attract new shifts (at the worst
   offender, the classic greedy choice); whatever still misses after
   [max_shifts] is solved exactly per point, so the sweep degrades to
   the plain sparse sweep rather than returning an unverified answer. *)

type opts = {
  max_shifts : int;
  tol : float;
  drop_tol : float;
}

(* residual→transfer error amplification is bounded by the pencil
   conditioning (~100× on the RC families); tol = 1e-12 keeps the
   certified trajectories at ≤1e-10, inside every oracle tolerance *)
let default_opts = { max_shifts = 12; tol = 1e-12; drop_tol = 1e-10 }

type stats = {
  shifts_used : int;
  subspace_dim : int;
  fallback_points : int;
  worst_residual : float;
}

type ws = {
  pat : Linalg.Sp.pattern;
  b : Linalg.Mat.t;
  d : Linalg.Mat.t;
  pencil : Linalg.Sp.ct;  (** G + σ·C, refilled in place per shift *)
  slu : Linalg.Spclu.t;
  bcol : Linalg.Cmat.vec;
  xcol : Linalg.Cmat.vec;
}

let make_ws ~pat ~b ~d =
  let n = pat.Linalg.Sp.nrows in
  if pat.Linalg.Sp.ncols <> n then
    invalid_arg "Ratkrylov.make_ws: square pattern required";
  if Linalg.Mat.rows b <> n || Linalg.Mat.rows d <> n then
    invalid_arg "Ratkrylov.make_ws: B/D row dimension mismatch";
  {
    pat;
    b;
    d;
    pencil = Linalg.Sp.ccreate pat;
    slu = Linalg.Spclu.workspace pat;
    bcol = Array.make n Linalg.Cx.zero;
    xcol = Array.make n Linalg.Cx.zero;
  }

let ws_matches ws ~pat ~b ~d =
  let same a b' =
    a == b'
    || Linalg.Mat.rows a = Linalg.Mat.rows b'
       && Linalg.Mat.cols a = Linalg.Mat.cols b'
       && Linalg.Mat.unsafe_data a = Linalg.Mat.unsafe_data b'
  in
  ws.pat == pat && same ws.b b && same ws.d d

(* H column j from a full-space complex solution held as re/im parts *)
let output_col_into h ~d ~xre ~xim j =
  let p = Linalg.Mat.cols d and n = Linalg.Mat.rows d in
  for o = 0 to p - 1 do
    let are = ref 0.0 and aim = ref 0.0 in
    for i = 0 to n - 1 do
      let dk = Linalg.Mat.get d i o in
      if dk <> 0.0 then begin
        are := !are +. (dk *. xre.(i));
        aim := !aim +. (dk *. xim.(i))
      end
    done;
    Linalg.Cmat.set h o j (Linalg.Cx.make !are !aim)
  done

let sweep ?(opts = default_opts) ?guard ?cancel ?metrics ?obs ws ~g ~c ~ss =
  if not (g.Linalg.Sp.pat == ws.pat && c.Linalg.Sp.pat == ws.pat) then
    invalid_arg "Ratkrylov.sweep: G/C must carry the workspace pattern";
  let n = ws.pat.Linalg.Sp.nrows in
  let m = Linalg.Mat.cols ws.b and p = Linalg.Mat.cols ws.d in
  let l = Array.length ss in
  let xre_full = Array.make n 0.0 and xim_full = Array.make n 0.0 in
  (* exact per-point solve: the fallback rung, and the whole sweep when
     the subspace is declared stalled *)
  let exact s =
    Cancel.check cancel ~site:"krylov.sweep";
    Linalg.Sp.pencil_into ws.pencil g c s;
    Linalg.Spclu.factor_into ?guard ws.slu ws.pencil;
    (match obs with
    | None -> ()
    | Some _ ->
        Obs.rcond obs ~site:"krylov.pencil"
          (Linalg.Spclu.rcond_estimate ws.slu));
    let h = Linalg.Cmat.create p m in
    for j = 0 to m - 1 do
      for i = 0 to n - 1 do
        ws.bcol.(i) <- Linalg.Cx.re (Linalg.Mat.get ws.b i j)
      done;
      Linalg.Spclu.solve_into ws.slu ws.bcol ws.xcol;
      Guard.check_complex_vec guard ~site:"krylov.transfer" ws.xcol;
      for i = 0 to n - 1 do
        xre_full.(i) <- ws.xcol.(i).Complex.re;
        xim_full.(i) <- ws.xcol.(i).Complex.im
      done;
      output_col_into h ~d:ws.d ~xre:xre_full ~xim:xim_full j
    done;
    h
  in
  let finish ~shifts_used ~subspace_dim ~fallback_points ~worst_residual hs =
    Metrics.add metrics "krylov.shifts" shifts_used;
    Metrics.add metrics "krylov.fallback_points" fallback_points;
    Metrics.observe metrics "krylov.subspace_dim" (float_of_int subspace_dim);
    (hs, { shifts_used; subspace_dim; fallback_points; worst_residual })
  in
  let degraded = Fault.should_fire "krylov.stall" in
  (* tiny grids cannot amortize a subspace; m = 0 has nothing to project *)
  if degraded || l <= 2 || m = 0 then
    finish ~shifts_used:0 ~subspace_dim:0 ~fallback_points:l
      ~worst_residual:0.0 (Array.map exact ss)
  else begin
    (* --- basis management ------------------------------------------- *)
    let basis = ref [] (* newest first; each unit 2-norm *) in
    let nb = ref 0 in
    let add_vec w =
      let norm0 = Linalg.Vec.norm2 w in
      if norm0 > 0.0 && Float.is_finite norm0 then begin
        (* modified Gram–Schmidt, twice (re-orthogonalization keeps the
           basis orthonormal to working precision even for clustered
           shifts) *)
        for _pass = 1 to 2 do
          List.iter
            (fun v ->
              let dv = Linalg.Vec.dot v w in
              Linalg.Vec.axpy (-.dv) v w)
            !basis
        done;
        let nrm = Linalg.Vec.norm2 w in
        if nrm > opts.drop_tol *. Float.max norm0 1.0 then begin
          let inv = 1.0 /. nrm in
          for i = 0 to n - 1 do
            w.(i) <- w.(i) *. inv
          done;
          basis := w :: !basis;
          incr nb
        end
      end
    in
    let add_shift s =
      Cancel.check cancel ~site:"krylov.sweep";
      Linalg.Sp.pencil_into ws.pencil g c s;
      Linalg.Spclu.factor_into ?guard ws.slu ws.pencil;
      (match obs with
      | None -> ()
      | Some _ ->
          Obs.rcond obs ~site:"krylov.pencil"
            (Linalg.Spclu.rcond_estimate ws.slu));
      for j = 0 to m - 1 do
        for i = 0 to n - 1 do
          ws.bcol.(i) <- Linalg.Cx.re (Linalg.Mat.get ws.b i j)
        done;
        Linalg.Spclu.solve_into ws.slu ws.bcol ws.xcol;
        Guard.check_complex_vec guard ~site:"krylov.transfer" ws.xcol;
        add_vec (Array.init n (fun i -> ws.xcol.(i).Complex.re));
        add_vec (Array.init n (fun i -> ws.xcol.(i).Complex.im))
      done
    in
    (* --- projected evaluation of the whole grid --------------------- *)
    let gx = Array.make n 0.0
    and cx = Array.make n 0.0
    and gy = Array.make n 0.0
    and cy = Array.make n 0.0 in
    let eval_round () =
      let vs = Array.of_list (List.rev !basis) in
      let k = Array.length vs in
      let gv = Array.map (fun v -> Linalg.Sp.mulv g v) vs in
      let cv = Array.map (fun v -> Linalg.Sp.mulv c v) vs in
      let grm =
        Linalg.Mat.init k k (fun i j -> Linalg.Vec.dot vs.(i) gv.(j))
      in
      let crm =
        Linalg.Mat.init k k (fun i j -> Linalg.Vec.dot vs.(i) cv.(j))
      in
      (* Vᵀ·B column dots, and per-column ‖b‖ for relative residuals *)
      let br = Array.make_matrix m k 0.0 in
      let bnorm = Array.make m 0.0 in
      for j = 0 to m - 1 do
        let s2 = ref 0.0 in
        for i = 0 to n - 1 do
          let bij = Linalg.Mat.get ws.b i j in
          s2 := !s2 +. (bij *. bij);
          if bij <> 0.0 then
            for t = 0 to k - 1 do
              br.(j).(t) <- br.(j).(t) +. (vs.(t).(i) *. bij)
            done
        done;
        bnorm.(j) <- Float.max (sqrt !s2) 1e-300
      done;
      let small = Linalg.Cmat.create k k in
      let clu = Linalg.Clu.workspace k in
      let brc = Array.make k Linalg.Cx.zero in
      let xr = Array.make k Linalg.Cx.zero in
      let hs = Array.make l (Linalg.Cmat.create 0 0) in
      let res = Array.make l Float.infinity in
      for pt = 0 to l - 1 do
        Cancel.check cancel ~site:"krylov.sweep";
        let s = ss.(pt) in
        Linalg.Cmat.lincomb_into small Linalg.Cx.one grm s crm;
        match Linalg.Clu.factor_into clu small with
        | exception Linalg.Clu.Singular _ ->
            () (* projected pencil degenerate here: leave res = ∞ *)
        | () ->
            let h = Linalg.Cmat.create p m in
            let worst = ref 0.0 in
            for j = 0 to m - 1 do
              for t = 0 to k - 1 do
                brc.(t) <- Linalg.Cx.re br.(j).(t)
              done;
              Linalg.Clu.solve_into clu brc xr;
              (* expand x = V·x_r *)
              Array.fill xre_full 0 n 0.0;
              Array.fill xim_full 0 n 0.0;
              for t = 0 to k - 1 do
                Linalg.Vec.axpy xr.(t).Complex.re vs.(t) xre_full;
                Linalg.Vec.axpy xr.(t).Complex.im vs.(t) xim_full
              done;
              (* true residual (G + s·C)x − b via sparse matvecs *)
              Linalg.Sp.mulv_into g xre_full gx;
              Linalg.Sp.mulv_into c xre_full cx;
              Linalg.Sp.mulv_into g xim_full gy;
              Linalg.Sp.mulv_into c xim_full cy;
              let sr = s.Complex.re and si = s.Complex.im in
              let r2 = ref 0.0 in
              for i = 0 to n - 1 do
                let rre =
                  gx.(i) +. (sr *. cx.(i)) -. (si *. cy.(i))
                  -. Linalg.Mat.get ws.b i j
                and rim = gy.(i) +. (sr *. cy.(i)) +. (si *. cx.(i)) in
                r2 := !r2 +. (rre *. rre) +. (rim *. rim)
              done;
              worst := Float.max !worst (sqrt !r2 /. bnorm.(j));
              output_col_into h ~d:ws.d ~xre:xre_full ~xim:xim_full j
            done;
            hs.(pt) <- h;
            (* NaN compares false against any threshold — pin it to ∞ so
               a non-finite projected solution always falls back *)
            res.(pt) <-
              (if Float.is_finite !worst then !worst else Float.infinity)
      done;
      (hs, res)
    in
    (* --- greedy shift loop ------------------------------------------ *)
    let used = Array.make l false in
    let shifts_used = ref 0 in
    let take i =
      add_shift ss.(i);
      used.(i) <- true;
      incr shifts_used
    in
    take 0;
    take (l - 1);
    let hs = ref [||] and res = ref [||] in
    let continue_ = ref true in
    while !continue_ do
      if !nb = 0 then begin
        (* B orthogonal to every solve direction — nothing to project *)
        hs := Array.make l (Linalg.Cmat.create 0 0);
        res := Array.make l Float.infinity;
        continue_ := false
      end
      else begin
        let h, r = eval_round () in
        hs := h;
        res := r;
        (* worst unconverged point not already a shift *)
        let idx = ref (-1) and rmax = ref opts.tol in
        Array.iteri
          (fun i ri ->
            if (not used.(i)) && ri > !rmax then begin
              idx := i;
              rmax := ri
            end)
          r;
        if !idx >= 0 && !shifts_used < opts.max_shifts && !nb < n then
          take !idx
        else continue_ := false
      end
    done;
    let fallback = ref 0 in
    let worst = ref 0.0 in
    Array.iteri
      (fun i ri ->
        if ri > opts.tol then begin
          (!hs).(i) <- exact ss.(i);
          incr fallback
        end
        else worst := Float.max !worst ri)
      !res;
    finish ~shifts_used:!shifts_used ~subspace_dim:!nb
      ~fallback_points:!fallback ~worst_residual:!worst !hs
  end
