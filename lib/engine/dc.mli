(** DC operating-point solver: damped Newton–Raphson with gmin stepping. *)

type opts = {
  max_iter : int;  (** Newton iterations per gmin level (default 100) *)
  abstol : float;  (** residual infinity-norm tolerance (default 1e-9) *)
  vtol : float;  (** update infinity-norm tolerance (default 1e-9) *)
  dv_max : float;  (** per-iteration update clamp (default 1.0 V) *)
  gmin_final : float;  (** conductance to ground left in place (default 1e-12) *)
}

val default_opts : opts

exception No_convergence of string

type sparse_ws
(** Reusable state for the sparse Newton backend: assembly context,
    Newton pencil value buffer, sparse LU workspace (with its cached
    fill-reducing ordering) and the diagonal slots gmin lands in. Build
    one per system and share it across DC solves and transient steps. *)

val sparse_ws : ?ctx:Mna.sparse_ctx -> Mna.t -> sparse_ws
(** Compile a sparse workspace, reusing [ctx] when provided. *)

val sparse_ws_ctx : sparse_ws -> Mna.sparse_ctx

val solve :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?initial:Linalg.Vec.t ->
  ?time:float ->
  ?backend:Mna.backend ->
  ?sparse:sparse_ws ->
  Mna.t ->
  Linalg.Vec.t
(** Solve [i(v) = s(time)] (capacitors open, inductors short). Applies
    gmin stepping automatically when plain Newton fails. Raises
    {!No_convergence} when even the stepped continuation fails.
    With [diag], accumulates the [dc.newton_iterations] counter (one
    bump per actual Newton iteration, across all gmin levels) and the
    [dc.gmin_levels]/[dc.gmin_continuations] counters. With [trace],
    the whole solve runs inside a [dc.solve] span; with [metrics], the
    iteration counter is mirrored and every LU factor/solve lands in
    the [dc.lu_factor_ns]/[dc.lu_solve_ns] histograms. With [guard],
    Jacobian factorizations get reciprocal-condition floors and the
    returned operating point a NaN/Inf sentinel. With [obs], every
    successful LU factorization emits a ["dc.lu"] rcond event. Hosts the
    ["dc.newton_diverge"] fault probe (one invocation per Newton run;
    a firing reports divergence, engaging gmin stepping). With
    [cancel], every Newton iteration probes the token (site
    ["dc.newton"]).

    With [backend:Sparse], the Newton systems assemble into compiled
    CSC patterns and factor with {!Linalg.Splu}; [sparse] supplies a
    prebuilt workspace (one is compiled on the fly otherwise). The
    dense path is bit-identical to before the knob existed. *)

val newton_dynamic :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?backend:Mna.backend ->
  ?sparse:sparse_ws ->
  mna:Mna.t ->
  time:float ->
  alpha:float ->
  q_prev:Linalg.Vec.t ->
  qdot_term:Linalg.Vec.t ->
  initial:Linalg.Vec.t ->
  unit ->
  Linalg.Vec.t * Mna.eval * int
(** Newton solve of the discretized transient equation
    [i(v) − s(t) + alpha·(q(v) − q_prev) − qdot_term = 0]; shared by the
    integration methods in {!Tran}. Returns the solution, the final
    evaluation at the solution (with dense Jacobians on the dense
    backend, residual pieces only on the sparse one), and the number of
    Newton iterations actually run. On {!No_convergence} the iterations
    spent on the failed attempt are still accumulated into [diag]
    ([dc.newton_iterations]). *)
