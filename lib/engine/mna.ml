type output = Node of string | Diff of string * string
type backend = Dense | Sparse

(* Where stamp Jacobian contributions land. The stamps themselves are
   closed over build-time constants only — which add_mat calls run, and
   with which (r, c) arguments, never depends on the linearization
   point. That invariant is what makes the Probe/Fill pair sound: one
   probe evaluation records the exact occurrence sequence every later
   evaluation will replay, so Fill can stream values into precompiled
   sparse slots with a plain counter. *)
type sink =
  | No_sink
  | Dense_sink of Linalg.Mat.t
  | Probe of (int * int) list ref  (* reversed occurrence sequence *)
  | Fill of fill

and fill = { slots : int array; vals : float array; mutable next : int }

type acc = {
  v : Linalg.Vec.t;
  i_vec : Linalg.Vec.t;
  q_vec : Linalg.Vec.t;
  g_mat : sink;
  c_mat : sink;
}

type eval = {
  i_vec : Linalg.Vec.t;
  q_vec : Linalg.Vec.t;
  g_mat : Linalg.Mat.t option;
  c_mat : Linalg.Mat.t option;
}

(* index -1 denotes the ground reference *)
let volt acc k = if k < 0 then 0.0 else acc.v.(k)
let add_vec vec k x = if k >= 0 then vec.(k) <- vec.(k) +. x

let add_mat sink r c x =
  if r >= 0 && c >= 0 then
    match sink with
    | No_sink -> ()
    | Dense_sink m -> Linalg.Mat.update m r c (fun y -> y +. x)
    | Probe occ -> occ := (r, c) :: !occ
    | Fill f ->
        let slot = f.slots.(f.next) in
        f.next <- f.next + 1;
        f.vals.(slot) <- f.vals.(slot) +. x

type t = {
  netlist : Circuit.Netlist.t;
  n_nodes : int;
  n : int;
  node_of_name : (string, int) Hashtbl.t;
  stamps : (acc -> unit) array;
  (* time-dependent injections: residual gets i_vec.(row) -= coeff·src(t) *)
  injections : (int * float * Signal.Source.t) array;
  b : Linalg.Mat.t;
  d : Linalg.Mat.t;
  input_sources : Signal.Source.t array;
}

let node_idx tbl name =
  if Circuit.Netlist.is_ground name then -1
  else
    match Hashtbl.find_opt tbl name with
    | Some k -> k
    | None -> invalid_arg (Printf.sprintf "Mna: unknown node %S" name)

let build ?(inputs = []) ?(outputs = []) (nl : Circuit.Netlist.t) =
  let node_names = Circuit.Netlist.nodes nl in
  let node_of_name = Hashtbl.create 32 in
  List.iteri (fun k name -> Hashtbl.add node_of_name name k) node_names;
  let n_nodes = List.length node_names in
  (* branch unknowns for voltage sources and inductors, in netlist order *)
  let next_branch = ref n_nodes in
  let branch_of_name = Hashtbl.create 8 in
  List.iter
    (fun (c : Circuit.Netlist.component) ->
      match c.element with
      | Circuit.Netlist.Vsource _ | Circuit.Netlist.Inductor _
      | Circuit.Netlist.Vcvs _ ->
          Hashtbl.add branch_of_name c.name !next_branch;
          incr next_branch
      | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _ | Circuit.Netlist.Isource _
      | Circuit.Netlist.Vccs _ | Circuit.Netlist.Cccs _ | Circuit.Netlist.Diode _
      | Circuit.Netlist.Junction_cap _ | Circuit.Netlist.Mosfet _
      | Circuit.Netlist.Bjt _ -> ())
    nl.components;
  let n = !next_branch in
  let idx = node_idx node_of_name in
  let stamps = ref [] in
  let injections = ref [] in
  let add_stamp f = stamps := f :: !stamps in
  List.iter
    (fun (c : Circuit.Netlist.component) ->
      match c.element with
      | Circuit.Netlist.Resistor { p; n = nn; ohms } ->
          let p = idx p and nn = idx nn in
          let g = 1.0 /. ohms in
          add_stamp (fun acc ->
              let i = g *. (volt acc p -. volt acc nn) in
              add_vec acc.i_vec p i;
              add_vec acc.i_vec nn (-.i);
              add_mat acc.g_mat p p g;
              add_mat acc.g_mat p nn (-.g);
              add_mat acc.g_mat nn p (-.g);
              add_mat acc.g_mat nn nn g)
      | Circuit.Netlist.Capacitor { p; n = nn; farads } ->
          let p = idx p and nn = idx nn in
          add_stamp (fun acc ->
              let q = farads *. (volt acc p -. volt acc nn) in
              add_vec acc.q_vec p q;
              add_vec acc.q_vec nn (-.q);
              add_mat acc.c_mat p p farads;
              add_mat acc.c_mat p nn (-.farads);
              add_mat acc.c_mat nn p (-.farads);
              add_mat acc.c_mat nn nn farads)
      | Circuit.Netlist.Inductor { p; n = nn; henries } ->
          let p = idx p and nn = idx nn in
          let br = Hashtbl.find branch_of_name c.name in
          add_stamp (fun acc ->
              let il = acc.v.(br) in
              (* KCL: branch current leaves p, enters n *)
              add_vec acc.i_vec p il;
              add_vec acc.i_vec nn (-.il);
              add_mat acc.g_mat p br 1.0;
              add_mat acc.g_mat nn br (-1.0);
              (* branch: v_p − v_n − L·di/dt = 0, flux enters q with −L·i *)
              add_vec acc.i_vec br (volt acc p -. volt acc nn);
              add_mat acc.g_mat br p 1.0;
              add_mat acc.g_mat br nn (-1.0);
              add_vec acc.q_vec br (-.henries *. il);
              add_mat acc.c_mat br br (-.henries))
      | Circuit.Netlist.Vsource { p; n = nn; wave } ->
          let p = idx p and nn = idx nn in
          let br = Hashtbl.find branch_of_name c.name in
          add_stamp (fun acc ->
              let il = acc.v.(br) in
              add_vec acc.i_vec p il;
              add_vec acc.i_vec nn (-.il);
              add_mat acc.g_mat p br 1.0;
              add_mat acc.g_mat nn br (-1.0);
              add_vec acc.i_vec br (volt acc p -. volt acc nn);
              add_mat acc.g_mat br p 1.0;
              add_mat acc.g_mat br nn (-1.0));
          (* branch equation: v_p − v_n − u(t) = 0 → inject +u on row br *)
          injections := (br, 1.0, Circuit.Netlist.wave_to_source wave) :: !injections
      | Circuit.Netlist.Isource { p; n = nn; wave } ->
          let p = idx p and nn = idx nn in
          let src = Circuit.Netlist.wave_to_source wave in
          (* current u flows p→n through the source: leaves p, enters n *)
          if p >= 0 then injections := (p, -1.0, src) :: !injections;
          if nn >= 0 then injections := (nn, 1.0, src) :: !injections
      | Circuit.Netlist.Vccs { p; n = nn; cp; cn; gm } ->
          let p = idx p and nn = idx nn and cp = idx cp and cn = idx cn in
          add_stamp (fun acc ->
              let i = gm *. (volt acc cp -. volt acc cn) in
              add_vec acc.i_vec p i;
              add_vec acc.i_vec nn (-.i);
              add_mat acc.g_mat p cp gm;
              add_mat acc.g_mat p cn (-.gm);
              add_mat acc.g_mat nn cp (-.gm);
              add_mat acc.g_mat nn cn gm)
      | Circuit.Netlist.Vcvs { p; n = nn; cp; cn; gain } ->
          let p = idx p and nn = idx nn and cp = idx cp and cn = idx cn in
          let br = Hashtbl.find branch_of_name c.name in
          add_stamp (fun acc ->
              let il = acc.v.(br) in
              add_vec acc.i_vec p il;
              add_vec acc.i_vec nn (-.il);
              add_mat acc.g_mat p br 1.0;
              add_mat acc.g_mat nn br (-1.0);
              (* branch: v_p − v_n − gain·(v_cp − v_cn) = 0 *)
              add_vec acc.i_vec br
                (volt acc p -. volt acc nn
                -. (gain *. (volt acc cp -. volt acc cn)));
              add_mat acc.g_mat br p 1.0;
              add_mat acc.g_mat br nn (-1.0);
              add_mat acc.g_mat br cp (-.gain);
              add_mat acc.g_mat br cn gain)
      | Circuit.Netlist.Cccs { p; n = nn; vname; gain } ->
          let p = idx p and nn = idx nn in
          let ctrl =
            match Hashtbl.find_opt branch_of_name vname with
            | Some br -> br
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Mna: CCCS %s controlled by unknown voltage source %S"
                     c.name vname)
          in
          add_stamp (fun acc ->
              let i = gain *. acc.v.(ctrl) in
              add_vec acc.i_vec p i;
              add_vec acc.i_vec nn (-.i);
              add_mat acc.g_mat p ctrl gain;
              add_mat acc.g_mat nn ctrl (-.gain))
      | Circuit.Netlist.Diode { p; n = nn; params } ->
          let p = idx p and nn = idx nn in
          add_stamp (fun acc ->
              let vd = volt acc p -. volt acc nn in
              let i, g = Device.diode_iv params vd in
              add_vec acc.i_vec p i;
              add_vec acc.i_vec nn (-.i);
              add_mat acc.g_mat p p g;
              add_mat acc.g_mat p nn (-.g);
              add_mat acc.g_mat nn p (-.g);
              add_mat acc.g_mat nn nn g;
              if params.cj > 0.0 then begin
                let q = params.cj *. vd in
                add_vec acc.q_vec p q;
                add_vec acc.q_vec nn (-.q);
                add_mat acc.c_mat p p params.cj;
                add_mat acc.c_mat p nn (-.params.cj);
                add_mat acc.c_mat nn p (-.params.cj);
                add_mat acc.c_mat nn nn params.cj
              end)
      | Circuit.Netlist.Junction_cap { p; n = nn; params } ->
          let p = idx p and nn = idx nn in
          add_stamp (fun acc ->
              let vd = volt acc p -. volt acc nn in
              let q, cap = Device.junction_q params vd in
              add_vec acc.q_vec p q;
              add_vec acc.q_vec nn (-.q);
              add_mat acc.c_mat p p cap;
              add_mat acc.c_mat p nn (-.cap);
              add_mat acc.c_mat nn p (-.cap);
              add_mat acc.c_mat nn nn cap)
      | Circuit.Netlist.Mosfet { d; g; s; pol; params } ->
          let d = idx d and g = idx g and s = idx s in
          add_stamp (fun acc ->
              let vd = volt acc d and vg = volt acc g and vs = volt acc s in
              let id, dd, dg, ds = Device.mosfet_ids pol params ~vd ~vg ~vs in
              (* drain current enters the drain node from the channel *)
              add_vec acc.i_vec d id;
              add_vec acc.i_vec s (-.id);
              add_mat acc.g_mat d d dd;
              add_mat acc.g_mat d g dg;
              add_mat acc.g_mat d s ds;
              add_mat acc.g_mat s d (-.dd);
              add_mat acc.g_mat s g (-.dg);
              add_mat acc.g_mat s s (-.ds);
              (* lumped capacitances *)
              let stamp_cap a b cap =
                if cap > 0.0 then begin
                  let q = cap *. (volt acc a -. volt acc b) in
                  add_vec acc.q_vec a q;
                  add_vec acc.q_vec b (-.q);
                  add_mat acc.c_mat a a cap;
                  add_mat acc.c_mat a b (-.cap);
                  add_mat acc.c_mat b a (-.cap);
                  add_mat acc.c_mat b b cap
                end
              in
              stamp_cap g s params.cgs;
              stamp_cap g d params.cgd;
              stamp_cap d (-1) params.cdb)
      | Circuit.Netlist.Bjt { c; b = bb; e; pol; params } ->
          let c = idx c and bb = idx bb and e = idx e in
          add_stamp (fun acc ->
              let vc = volt acc c and vb = volt acc bb and ve = volt acc e in
              let ev = Device.bjt_currents pol params ~vc ~vb ~ve in
              (* KCL: collector and base currents enter their terminals,
                 the emitter carries the return −(ic + ib) *)
              add_vec acc.i_vec c ev.Device.ic;
              add_vec acc.i_vec bb ev.Device.ib;
              add_vec acc.i_vec e (-.(ev.Device.ic +. ev.Device.ib));
              add_mat acc.g_mat c c ev.Device.dic_dvc;
              add_mat acc.g_mat c bb ev.Device.dic_dvb;
              add_mat acc.g_mat c e ev.Device.dic_dve;
              add_mat acc.g_mat bb c ev.Device.dib_dvc;
              add_mat acc.g_mat bb bb ev.Device.dib_dvb;
              add_mat acc.g_mat bb e ev.Device.dib_dve;
              add_mat acc.g_mat e c (-.(ev.Device.dic_dvc +. ev.Device.dib_dvc));
              add_mat acc.g_mat e bb (-.(ev.Device.dic_dvb +. ev.Device.dib_dvb));
              add_mat acc.g_mat e e (-.(ev.Device.dic_dve +. ev.Device.dib_dve));
              let stamp_cap a b cap =
                if cap > 0.0 then begin
                  let q = cap *. (volt acc a -. volt acc b) in
                  add_vec acc.q_vec a q;
                  add_vec acc.q_vec b (-.q);
                  add_mat acc.c_mat a a cap;
                  add_mat acc.c_mat a b (-.cap);
                  add_mat acc.c_mat b a (-.cap);
                  add_mat acc.c_mat b b cap
                end
              in
              stamp_cap bb e params.cje;
              stamp_cap bb c params.cjc))
    nl.components;
  (* inputs: designated sources *)
  let input_entries =
    List.map
      (fun name ->
        match Circuit.Netlist.find nl name with
        | None -> invalid_arg (Printf.sprintf "Mna.build: unknown input %S" name)
        | Some c -> begin
            match c.element with
            | Circuit.Netlist.Vsource { wave; _ } ->
                let br = Hashtbl.find branch_of_name c.name in
                ([ (br, 1.0) ], Circuit.Netlist.wave_to_source wave)
            | Circuit.Netlist.Isource { p; n = nn; wave } ->
                let p = idx p and nn = idx nn in
                let rows =
                  (if p >= 0 then [ (p, -1.0) ] else [])
                  @ if nn >= 0 then [ (nn, 1.0) ] else []
                in
                (rows, Circuit.Netlist.wave_to_source wave)
            | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _ | Circuit.Netlist.Inductor _
            | Circuit.Netlist.Vccs _ | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
            | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _
            | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ ->
                invalid_arg
                  (Printf.sprintf "Mna.build: input %S is not a source" name)
          end)
      inputs
  in
  let mi = List.length input_entries in
  let b = Linalg.Mat.create n mi in
  List.iteri
    (fun j (rows, _) -> List.iter (fun (r, coeff) -> Linalg.Mat.set b r j coeff) rows)
    input_entries;
  let input_sources =
    Array.of_list (List.map (fun (_, src) -> src) input_entries)
  in
  let mo = List.length outputs in
  let d = Linalg.Mat.create n mo in
  List.iteri
    (fun j out ->
      match out with
      | Node name ->
          let k = node_idx node_of_name name in
          if k < 0 then invalid_arg "Mna.build: ground is not an output";
          Linalg.Mat.set d k j 1.0
      | Diff (np, nn) ->
          let kp = node_idx node_of_name np and kn = node_idx node_of_name nn in
          if kp >= 0 then Linalg.Mat.set d kp j 1.0;
          if kn >= 0 then Linalg.Mat.set d kn j (-1.0))
    outputs;
  {
    netlist = nl;
    n_nodes;
    n;
    node_of_name;
    stamps = Array.of_list (List.rev !stamps);
    injections = Array.of_list (List.rev !injections);
    b;
    d;
    input_sources;
  }

let size t = t.n
let n_nodes t = t.n_nodes
let n_inputs t = Linalg.Mat.cols t.b
let n_outputs t = Linalg.Mat.cols t.d

let node_index t name =
  match Hashtbl.find_opt t.node_of_name name with
  | Some k -> k
  | None -> raise Not_found

let netlist t = t.netlist

let eval t ?(with_matrices = true) ~time v =
  if Array.length v <> t.n then invalid_arg "Mna.eval: bad vector size";
  let g = if with_matrices then Some (Linalg.Mat.create t.n t.n) else None in
  let c = if with_matrices then Some (Linalg.Mat.create t.n t.n) else None in
  let sink = function None -> No_sink | Some m -> Dense_sink m in
  let acc =
    {
      v;
      i_vec = Linalg.Vec.create t.n;
      q_vec = Linalg.Vec.create t.n;
      g_mat = sink g;
      c_mat = sink c;
    }
  in
  Array.iter (fun stamp -> stamp acc) t.stamps;
  Array.iter
    (fun (row, coeff, src) ->
      acc.i_vec.(row) <- acc.i_vec.(row) -. (coeff *. src time))
    t.injections;
  { i_vec = acc.i_vec; q_vec = acc.q_vec; g_mat = g; c_mat = c }

(* --- sparse assembly ------------------------------------------------- *)

type sparse_ctx = {
  pattern : Linalg.Sp.pattern;  (* union pattern of G and C, plus the diagonal *)
  g_slots : int array;  (* occurrence -> value index, G stamp order *)
  c_slots : int array;
  g_sp : Linalg.Sp.t;
  c_sp : Linalg.Sp.t;
}

type sparse_eval = {
  si_vec : Linalg.Vec.t;
  sq_vec : Linalg.Vec.t;
  sg : Linalg.Sp.t;
  sc : Linalg.Sp.t;
}

let sparse_ctx t =
  (* probe pass: record the (r, c) occurrence sequence of each matrix at
     an arbitrary linearization point (the sequence is state-independent) *)
  let g_occ = ref [] and c_occ = ref [] in
  let acc =
    {
      v = Linalg.Vec.create t.n;
      i_vec = Linalg.Vec.create t.n;
      q_vec = Linalg.Vec.create t.n;
      g_mat = Probe g_occ;
      c_mat = Probe c_occ;
    }
  in
  Array.iter (fun stamp -> stamp acc) t.stamps;
  let g_occ = Array.of_list (List.rev !g_occ) in
  let c_occ = Array.of_list (List.rev !c_occ) in
  let ng = Array.length g_occ and nc = Array.length c_occ in
  (* one union pattern so the AC pencil G + s·C is an elementwise fill;
     the full diagonal rides along so gmin regularization and pivoting
     always have their slots, at the cost of a few explicit zeros *)
  let diag = Array.init t.n (fun k -> (k, k)) in
  let occ = Array.concat [ g_occ; c_occ; diag ] in
  let pattern, slots = Linalg.Sp.compile ~nrows:t.n ~ncols:t.n occ in
  {
    pattern;
    g_slots = Array.sub slots 0 ng;
    c_slots = Array.sub slots ng nc;
    g_sp = Linalg.Sp.create pattern;
    c_sp = Linalg.Sp.create pattern;
  }

(* fresh value buffers over the shared compiled pattern — what each
   worker domain needs to re-stamp snapshots concurrently *)
let sparse_ctx_copy ctx =
  {
    ctx with
    g_sp = Linalg.Sp.create ctx.pattern;
    c_sp = Linalg.Sp.create ctx.pattern;
  }

let sparse_pattern ctx = ctx.pattern

let eval_sparse t ctx ~time v =
  if Array.length v <> t.n then invalid_arg "Mna.eval_sparse: bad vector size";
  Linalg.Sp.clear ctx.g_sp;
  Linalg.Sp.clear ctx.c_sp;
  let gf = { slots = ctx.g_slots; vals = ctx.g_sp.Linalg.Sp.v; next = 0 } in
  let cf = { slots = ctx.c_slots; vals = ctx.c_sp.Linalg.Sp.v; next = 0 } in
  let acc =
    {
      v;
      i_vec = Linalg.Vec.create t.n;
      q_vec = Linalg.Vec.create t.n;
      g_mat = Fill gf;
      c_mat = Fill cf;
    }
  in
  Array.iter (fun stamp -> stamp acc) t.stamps;
  (* the occurrence replay drifting from the probe would silently
     scatter values to wrong entries — make it loud instead *)
  if gf.next <> Array.length ctx.g_slots || cf.next <> Array.length ctx.c_slots
  then invalid_arg "Mna.eval_sparse: stamp occurrence sequence diverged";
  Array.iter
    (fun (row, coeff, src) ->
      acc.i_vec.(row) <- acc.i_vec.(row) -. (coeff *. src time))
    t.injections;
  { si_vec = acc.i_vec; sq_vec = acc.q_vec; sg = ctx.g_sp; sc = ctx.c_sp }

let b_matrix t = Linalg.Mat.copy t.b
let d_matrix t = Linalg.Mat.copy t.d

let input_values t time = Array.map (fun src -> src time) t.input_sources
let output_values t v = Linalg.Mat.mulv_t t.d v
