(** Modified Nodal Analysis: compile a netlist into an evaluable system

    {[ d/dt q(v) + i(v) = s(t) = B·u(t) + (other sources) ]}

    Unknowns are the non-ground node voltages followed by one branch
    current per voltage source and per inductor. *)

type output = Node of string | Diff of string * string

type backend = Dense | Sparse
(** Which linear-algebra backbone the engine stages run on. [Dense] is
    the original path, bit-identical to before the sparse backbone
    existed; [Sparse] assembles G/C into compiled CSC patterns and
    factors them with {!Linalg.Splu}/{!Linalg.Spclu}. *)

type t

val build : ?inputs:string list -> ?outputs:output list -> Circuit.Netlist.t -> t
(** [inputs] names voltage/current sources whose values form the input
    vector [u] (they keep their waves for simulation; the [B] matrix maps
    [u] into the residual). [outputs] picks the observed voltages for the
    [D] matrix. Defaults: no inputs, no outputs. Raises
    [Invalid_argument] on unknown names or nodes. *)

val size : t -> int
val n_nodes : t -> int
val n_inputs : t -> int
val n_outputs : t -> int
val node_index : t -> string -> int
(** Index of a non-ground node in the unknown vector. Raises [Not_found]. *)

val netlist : t -> Circuit.Netlist.t

type eval = {
  i_vec : Linalg.Vec.t;  (** i(v) − s(t) *)
  q_vec : Linalg.Vec.t;  (** q(v) *)
  g_mat : Linalg.Mat.t option;  (** ∂i/∂v *)
  c_mat : Linalg.Mat.t option;  (** ∂q/∂v *)
}

val eval : t -> ?with_matrices:bool -> time:float -> Linalg.Vec.t -> eval
(** Evaluate residual pieces (and Jacobians when [with_matrices], default
    true) at the given unknown vector and time. *)

(** {1 Sparse assembly}

    The sparsity pattern is compiled once per system by a probe
    evaluation (stamp occurrence sequences are state-independent);
    every linearization then refills the value arrays in place. [G] and
    [C] share one union pattern — including the full diagonal — so the
    AC pencil [G + s·C] and the Newton pencil [G + α·C] are elementwise
    fills, and gmin regularization always has its diagonal slots. *)

type sparse_ctx

val sparse_ctx : t -> sparse_ctx
(** Compile the sparsity pattern and allocate value storage. *)

val sparse_ctx_copy : sparse_ctx -> sparse_ctx
(** Fresh value buffers over the same compiled pattern (physical
    pattern equality is preserved, so LU workspaces keyed on the
    pattern stay valid). Use one copy per worker domain. *)

val sparse_pattern : sparse_ctx -> Linalg.Sp.pattern

type sparse_eval = {
  si_vec : Linalg.Vec.t;  (** i(v) − s(t) *)
  sq_vec : Linalg.Vec.t;  (** q(v) *)
  sg : Linalg.Sp.t;  (** ∂i/∂v — view into the context, overwritten by the next eval *)
  sc : Linalg.Sp.t;  (** ∂q/∂v — likewise *)
}

val eval_sparse : t -> sparse_ctx -> time:float -> Linalg.Vec.t -> sparse_eval
(** Like {!eval} with matrices, but filling the context's sparse value
    arrays in place. The returned [sg]/[sc] alias the context; copy
    their value arrays before the next evaluation if they must
    survive. Entry values match the dense {!eval} Jacobians exactly
    (same accumulation order per entry). *)

val b_matrix : t -> Linalg.Mat.t
(** [size × n_inputs]; the incidence of the designated inputs. *)

val d_matrix : t -> Linalg.Mat.t
(** [size × n_outputs]. *)

val input_values : t -> float -> Linalg.Vec.t
(** Values of the designated input sources at a given time. *)

val output_values : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [Dᵀ v]. *)
