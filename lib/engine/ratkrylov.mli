(** Rational-Krylov frequency sweeps over a sparse MNA pencil.

    Computes the transfer trajectory [H(s) = Dᵀ(G + s·C)⁻¹B] over a
    frequency grid by factoring the sparse pencil at a few greedily
    chosen *shifts*, orthonormalizing the shift solutions into a real
    subspace basis (each complex solve at [σ = jω] contributes its real
    and imaginary parts, spanning the conjugate pair [±jω]), and
    answering the remaining grid points from the Galerkin-projected
    dense pencil of subspace dimension [k ≪ n].

    Every projected answer is certified: the reduced solution is
    expanded back to full space and its true relative residual measured
    with sparse matvecs. Points above [tol] attract further shifts; any
    still failing after [max_shifts] are solved exactly per point, so
    the sweep never trades accuracy for speed — at worst it degrades to
    the plain per-point sparse sweep. *)

type opts = {
  max_shifts : int;  (** shift budget, ≥ 2 used (default 12) *)
  tol : float;  (** relative-residual acceptance threshold (default 1e-12) *)
  drop_tol : float;
      (** basis candidates whose norm drops below [drop_tol × original]
          under orthogonalization are discarded (default 1e-10) *)
}

val default_opts : opts

type stats = {
  shifts_used : int;
  subspace_dim : int;
  fallback_points : int;  (** grid points that needed an exact solve *)
  worst_residual : float;
      (** largest certified residual among projected (non-fallback)
          points; 0 when every point fell back *)
}

type ws
(** Preallocated sweep state bound to one compiled sparsity pattern and
    one (B, D) pair: the complex pencil fill buffer, the sparse-LU
    workspace (with its cached ordering) and solve scratch. One
    workspace must only be used by one domain at a time. *)

val make_ws : pat:Linalg.Sp.pattern -> b:Linalg.Mat.t -> d:Linalg.Mat.t -> ws

val ws_matches :
  ws -> pat:Linalg.Sp.pattern -> b:Linalg.Mat.t -> d:Linalg.Mat.t -> bool
(** Validity predicate for pool-cached workspaces: the pattern must be
    physically equal and (B, D) contents equal. *)

val sweep :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ws ->
  g:Linalg.Sp.t ->
  c:Linalg.Sp.t ->
  ss:Complex.t array ->
  Linalg.Cmat.t array * stats
(** Sweep the grid; [g]/[c] must carry the workspace pattern
    (physical equality — exactly what one {!Mna.sparse_ctx} produces).
    Returns the [n_outputs × n_inputs] transfer matrix per grid point,
    in grid order, plus convergence statistics.

    Grids of ≤ 2 points are solved exactly (a subspace cannot amortize
    there). With [guard], every sparse and projected factorization gets
    the rcond floor and every full-space solution column a NaN/Inf
    sentinel (site ["krylov.transfer"]). With [obs], each shift or
    fallback factorization emits a ["krylov.pencil"] rcond event. With
    [metrics], records the [krylov.shifts] / [krylov.fallback_points]
    counters and the [krylov.subspace_dim] histogram. With [cancel],
    every shift solve and grid point probes the token (site
    ["krylov.sweep"]). Hosts the ["krylov.stall"] fault probe (one
    invocation per sweep): a firing declares the subspace stalled and
    degrades the whole sweep to exact per-point solves — results stay
    correct, only the speedup is lost. *)
