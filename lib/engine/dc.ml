type opts = {
  max_iter : int;
  abstol : float;
  vtol : float;
  dv_max : float;
  gmin_final : float;
}

let default_opts =
  { max_iter = 100; abstol = 1e-9; vtol = 1e-9; dv_max = 1.0; gmin_final = 1e-12 }

exception No_convergence of string

let src = Logs.Src.create "engine.dc" ~doc:"DC operating point solver"

module Log = (val Logs.src_log src : Logs.LOG)

(* One Newton run at a fixed gmin level. [residual_of] must fill i_vec with
   the full residual and g_mat/c_mat with the Jacobians; the dynamic term
   is folded in by the caller. Returns ((solution, last eval) option,
   iterations actually run) — the count is meaningful on failure too. *)
let newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin ~residual_of ~jac_of
    ~initial () =
  let n = Mna.size mna in
  let n_nodes = Mna.n_nodes mna in
  let v = Linalg.Vec.copy initial in
  let iters = ref 0 in
  let rec iterate it =
    Cancel.check cancel ~site:"dc.newton";
    if it >= opts.max_iter then None
    else begin
      incr iters;
      let ev : Mna.eval = residual_of v in
      let f = ev.Mna.i_vec in
      let j =
        match jac_of ev with
        | Some j -> j
        | None -> invalid_arg "Dc.newton: evaluation without Jacobian"
      in
      (* gmin to ground on node rows keeps the matrix nonsingular *)
      if gmin > 0.0 then
        for k = 0 to n_nodes - 1 do
          Linalg.Mat.update j k k (fun x -> x +. gmin);
          f.(k) <- f.(k) +. (gmin *. v.(k))
        done;
      let f_norm = Linalg.Vec.norm_inf f in
      let t_factor = Metrics.now_if metrics in
      match Linalg.Lu.factor ?guard j with
      | exception Linalg.Lu.Singular _ ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          None
      | lu ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          (match obs with
          | None -> ()
          | Some _ ->
              Obs.rcond obs ~site:"dc.lu" (Linalg.Lu.rcond_estimate lu));
          let t_solve = Metrics.now_if metrics in
          let dv = Linalg.Lu.solve lu (Linalg.Vec.neg f) in
          Metrics.observe_since_ns metrics "dc.lu_solve_ns" t_solve;
          let dv_norm = Linalg.Vec.norm_inf dv in
          let scale =
            if dv_norm > opts.dv_max then opts.dv_max /. dv_norm else 1.0
          in
          for k = 0 to n - 1 do
            v.(k) <- v.(k) +. (scale *. dv.(k))
          done;
          if
            Float.is_finite dv_norm
            && dv_norm *. scale < opts.vtol
            && f_norm < opts.abstol
          then Some (v, ev)
          else iterate (it + 1)
    end
  in
  (* bind before building the pair: OCaml evaluates tuple components
     right-to-left, so [(iterate 0, !iters)] would read a stale 0 *)
  let result =
    (* injected divergence: report failure before running an iteration,
       exactly as a Newton run that never contracted *)
    if Fault.should_fire "dc.newton_diverge" then None else iterate 0
  in
  (result, !iters)

(* --- sparse Newton --------------------------------------------------- *)

(* Everything one sparse Newton solve needs, compiled once per system
   and reused across iterations, gmin levels and transient steps: the
   assembly context, the pencil value buffer J = G + α·C over the same
   pattern, the LU workspace (which caches the fill-reducing ordering),
   and the diagonal slots gmin regularization lands in. *)
type sparse_ws = {
  ctx : Mna.sparse_ctx;
  j : Linalg.Sp.t;
  slu : Linalg.Splu.t;
  diag_slots : int array;
  neg_f : Linalg.Vec.t;
  dv : Linalg.Vec.t;
}

let sparse_ws ?ctx mna =
  let ctx = match ctx with Some c -> c | None -> Mna.sparse_ctx mna in
  let pattern = Mna.sparse_pattern ctx in
  let n = Mna.size mna in
  {
    ctx;
    j = Linalg.Sp.create pattern;
    slu = Linalg.Splu.workspace pattern;
    diag_slots =
      Array.init (Mna.n_nodes mna) (fun k ->
          match Linalg.Sp.find pattern k k with
          | Some s -> s
          | None -> assert false (* the union pattern includes the diagonal *));
    neg_f = Linalg.Vec.create n;
    dv = Linalg.Vec.create n;
  }

let sparse_ws_ctx sws = sws.ctx

(* Sparse twin of [newton]: same contraction test, step limiting, gmin
   regularization, fault probe and telemetry sites, with the residual
   fold for the dynamic term passed in as a closure and the Jacobian
   pencil J = G + α·C blended over the shared pattern. Returns the
   solution only — the caller re-evaluates if it needs residual pieces
   at the solution. *)
let newton_sparse ?guard ?cancel ?metrics ?obs ~opts ~mna ~sws ~gmin ~time
    ~alpha ~fold ~initial () =
  let n = Mna.size mna in
  let n_nodes = Mna.n_nodes mna in
  let v = Linalg.Vec.copy initial in
  let iters = ref 0 in
  let jv = sws.j.Linalg.Sp.v in
  let rec iterate it =
    Cancel.check cancel ~site:"dc.newton";
    if it >= opts.max_iter then None
    else begin
      incr iters;
      let sev = Mna.eval_sparse mna sws.ctx ~time v in
      let f = sev.Mna.si_vec in
      fold f sev.Mna.sq_vec;
      let gv = sev.Mna.sg.Linalg.Sp.v and cv = sev.Mna.sc.Linalg.Sp.v in
      for k = 0 to Array.length jv - 1 do
        jv.(k) <- gv.(k) +. (alpha *. cv.(k))
      done;
      if gmin > 0.0 then
        for k = 0 to n_nodes - 1 do
          let s = sws.diag_slots.(k) in
          jv.(s) <- jv.(s) +. gmin;
          f.(k) <- f.(k) +. (gmin *. v.(k))
        done;
      let f_norm = Linalg.Vec.norm_inf f in
      let t_factor = Metrics.now_if metrics in
      match Linalg.Splu.factor_into ?guard sws.slu sws.j with
      | exception Linalg.Splu.Singular _ ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          None
      | () ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          (match obs with
          | None -> ()
          | Some _ ->
              Obs.rcond obs ~site:"dc.lu" (Linalg.Splu.rcond_estimate sws.slu));
          let t_solve = Metrics.now_if metrics in
          for k = 0 to n - 1 do
            sws.neg_f.(k) <- -.f.(k)
          done;
          Linalg.Splu.solve_into sws.slu sws.neg_f sws.dv;
          Metrics.observe_since_ns metrics "dc.lu_solve_ns" t_solve;
          let dv_norm = Linalg.Vec.norm_inf sws.dv in
          let scale =
            if dv_norm > opts.dv_max then opts.dv_max /. dv_norm else 1.0
          in
          for k = 0 to n - 1 do
            v.(k) <- v.(k) +. (scale *. sws.dv.(k))
          done;
          if
            Float.is_finite dv_norm
            && dv_norm *. scale < opts.vtol
            && f_norm < opts.abstol
          then Some v
          else iterate (it + 1)
    end
  in
  let result =
    if Fault.should_fire "dc.newton_diverge" then None else iterate 0
  in
  (result, !iters)

let dc_residual mna time v =
  let ev = Mna.eval mna ~with_matrices:true ~time v in
  (* DC: drop the dq/dt term entirely *)
  ev

let solve ?(opts = default_opts) ?guard ?cancel ?diag ?trace ?metrics ?obs
    ?initial ?(time = 0.0) ?(backend = Mna.Dense) ?sparse mna =
  Trace.span trace "dc.solve" @@ fun () ->
  let n = Mna.size mna in
  let initial =
    match initial with Some v -> v | None -> Linalg.Vec.create n
  in
  let sws =
    match backend with
    | Mna.Dense -> None
    | Mna.Sparse ->
        Some (match sparse with Some s -> s | None -> sparse_ws mna)
  in
  let jac_of (ev : Mna.eval) = ev.Mna.g_mat in
  let attempt gmin start =
    let r, iters =
      match sws with
      | None ->
          let r, iters =
            newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin
              ~residual_of:(dc_residual mna time) ~jac_of ~initial:start ()
          in
          ((match r with Some (v, _) -> Some v | None -> None), iters)
      | Some sws ->
          newton_sparse ?guard ?cancel ?metrics ?obs ~opts ~mna ~sws ~gmin
            ~time ~alpha:0.0
            ~fold:(fun _ _ -> ())
            ~initial:start ()
    in
    Diag.add diag "dc.newton_iterations" iters;
    Metrics.add metrics "dc.newton_iterations" iters;
    r
  in
  let finish v =
    Guard.check_vec guard ~site:"dc.solve" v;
    v
  in
  match attempt opts.gmin_final initial with
  | Some v -> finish v
  | None ->
      (* gmin stepping continuation *)
      Log.debug (fun m -> m "plain Newton failed; starting gmin stepping");
      Diag.incr diag "dc.gmin_continuations";
      let levels = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8; 1e-10; 1e-12 ] in
      let rec steps v_start = function
        | [] ->
            Diag.error diag ~stage:"engine.dc" "gmin stepping exhausted";
            raise (No_convergence "gmin stepping exhausted")
        | gmin :: rest -> begin
            Diag.incr diag "dc.gmin_levels";
            match attempt (Float.max gmin opts.gmin_final) v_start with
            | Some v -> if rest = [] then finish v else steps v rest
            | None ->
                (* restart the level from the best guess we have *)
                if rest = [] then begin
                  Diag.error diag ~stage:"engine.dc" "gmin stepping failed";
                  raise (No_convergence "gmin stepping failed")
                end
                else steps v_start rest
          end
      in
      steps initial levels

let newton_dynamic ?(opts = default_opts) ?guard ?cancel ?diag ?metrics ?obs
    ?(backend = Mna.Dense) ?sparse ~mna ~time ~alpha ~q_prev ~qdot_term
    ~initial () =
  match backend with
  | Mna.Sparse ->
      let sws = match sparse with Some s -> s | None -> sparse_ws mna in
      let n = Mna.size mna in
      let fold f q =
        for k = 0 to n - 1 do
          f.(k) <- f.(k) +. (alpha *. (q.(k) -. q_prev.(k))) -. qdot_term.(k)
        done
      in
      let result, iters =
        newton_sparse ?guard ?cancel ?metrics ?obs ~opts ~mna ~sws
          ~gmin:opts.gmin_final ~time ~alpha ~fold ~initial ()
      in
      Diag.add diag "dc.newton_iterations" iters;
      Metrics.add metrics "dc.newton_iterations" iters;
      (match result with
      | Some v ->
          Guard.check_vec guard ~site:"dc.newton_dynamic" v;
          (* residual pieces at the solution, without dense Jacobians —
             the transient needs q(v), not G/C matrices *)
          let ev = Mna.eval mna ~with_matrices:false ~time v in
          (v, ev, iters)
      | None ->
          raise
            (No_convergence
               (Printf.sprintf "transient Newton failed at t=%.6e" time)))
  | Mna.Dense ->
  let n = Mna.size mna in
  let residual_of v =
    let ev = Mna.eval mna ~with_matrices:true ~time v in
    let f = ev.Mna.i_vec in
    for k = 0 to n - 1 do
      f.(k) <-
        f.(k) +. (alpha *. (ev.Mna.q_vec.(k) -. q_prev.(k))) -. qdot_term.(k)
    done;
    ev
  in
  let jac_of (ev : Mna.eval) =
    match (ev.Mna.g_mat, ev.Mna.c_mat) with
    | Some g, Some c ->
        (* J = G + alpha·C; reuse G's storage *)
        let nmat = Linalg.Mat.rows g in
        for r = 0 to nmat - 1 do
          for col = 0 to nmat - 1 do
            Linalg.Mat.update g r col (fun x ->
                x +. (alpha *. Linalg.Mat.get c r col))
          done
        done;
        Some g
    | _, _ -> None
  in
  let result, iters =
    newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin:opts.gmin_final
      ~residual_of ~jac_of ~initial ()
  in
  (* the count covers failed attempts too, so the diagnostics layer sees
     the true cost of steps that later retreat to another integrator *)
  Diag.add diag "dc.newton_iterations" iters;
  Metrics.add metrics "dc.newton_iterations" iters;
  match result with
  | Some (v, _) ->
      Guard.check_vec guard ~site:"dc.newton_dynamic" v;
      (* re-evaluate to return clean (unmodified) Jacobians at the solution *)
      let ev = Mna.eval mna ~with_matrices:true ~time v in
      (v, ev, iters)
  | None ->
      raise
        (No_convergence (Printf.sprintf "transient Newton failed at t=%.6e" time))
