type opts = {
  max_iter : int;
  abstol : float;
  vtol : float;
  dv_max : float;
  gmin_final : float;
}

let default_opts =
  { max_iter = 100; abstol = 1e-9; vtol = 1e-9; dv_max = 1.0; gmin_final = 1e-12 }

exception No_convergence of string

let src = Logs.Src.create "engine.dc" ~doc:"DC operating point solver"

module Log = (val Logs.src_log src : Logs.LOG)

(* One Newton run at a fixed gmin level. [residual_of] must fill i_vec with
   the full residual and g_mat/c_mat with the Jacobians; the dynamic term
   is folded in by the caller. Returns ((solution, last eval) option,
   iterations actually run) — the count is meaningful on failure too. *)
let newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin ~residual_of ~jac_of
    ~initial () =
  let n = Mna.size mna in
  let n_nodes = Mna.n_nodes mna in
  let v = Linalg.Vec.copy initial in
  let iters = ref 0 in
  let rec iterate it =
    Cancel.check cancel ~site:"dc.newton";
    if it >= opts.max_iter then None
    else begin
      incr iters;
      let ev : Mna.eval = residual_of v in
      let f = ev.Mna.i_vec in
      let j =
        match jac_of ev with
        | Some j -> j
        | None -> invalid_arg "Dc.newton: evaluation without Jacobian"
      in
      (* gmin to ground on node rows keeps the matrix nonsingular *)
      if gmin > 0.0 then
        for k = 0 to n_nodes - 1 do
          Linalg.Mat.update j k k (fun x -> x +. gmin);
          f.(k) <- f.(k) +. (gmin *. v.(k))
        done;
      let f_norm = Linalg.Vec.norm_inf f in
      let t_factor = Metrics.now_if metrics in
      match Linalg.Lu.factor ?guard j with
      | exception Linalg.Lu.Singular _ ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          None
      | lu ->
          Metrics.observe_since_ns metrics "dc.lu_factor_ns" t_factor;
          (match obs with
          | None -> ()
          | Some _ ->
              Obs.rcond obs ~site:"dc.lu" (Linalg.Lu.rcond_estimate lu));
          let t_solve = Metrics.now_if metrics in
          let dv = Linalg.Lu.solve lu (Linalg.Vec.neg f) in
          Metrics.observe_since_ns metrics "dc.lu_solve_ns" t_solve;
          let dv_norm = Linalg.Vec.norm_inf dv in
          let scale =
            if dv_norm > opts.dv_max then opts.dv_max /. dv_norm else 1.0
          in
          for k = 0 to n - 1 do
            v.(k) <- v.(k) +. (scale *. dv.(k))
          done;
          if
            Float.is_finite dv_norm
            && dv_norm *. scale < opts.vtol
            && f_norm < opts.abstol
          then Some (v, ev)
          else iterate (it + 1)
    end
  in
  (* bind before building the pair: OCaml evaluates tuple components
     right-to-left, so [(iterate 0, !iters)] would read a stale 0 *)
  let result =
    (* injected divergence: report failure before running an iteration,
       exactly as a Newton run that never contracted *)
    if Fault.should_fire "dc.newton_diverge" then None else iterate 0
  in
  (result, !iters)

let dc_residual mna time v =
  let ev = Mna.eval mna ~with_matrices:true ~time v in
  (* DC: drop the dq/dt term entirely *)
  ev

let solve ?(opts = default_opts) ?guard ?cancel ?diag ?trace ?metrics ?obs
    ?initial ?(time = 0.0) mna =
  Trace.span trace "dc.solve" @@ fun () ->
  let n = Mna.size mna in
  let initial =
    match initial with Some v -> v | None -> Linalg.Vec.create n
  in
  let jac_of (ev : Mna.eval) = ev.Mna.g_mat in
  let attempt gmin start =
    let r, iters =
      newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin
        ~residual_of:(dc_residual mna time) ~jac_of ~initial:start ()
    in
    Diag.add diag "dc.newton_iterations" iters;
    Metrics.add metrics "dc.newton_iterations" iters;
    r
  in
  let finish v =
    Guard.check_vec guard ~site:"dc.solve" v;
    v
  in
  match attempt opts.gmin_final initial with
  | Some (v, _) -> finish v
  | None ->
      (* gmin stepping continuation *)
      Log.debug (fun m -> m "plain Newton failed; starting gmin stepping");
      Diag.incr diag "dc.gmin_continuations";
      let levels = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8; 1e-10; 1e-12 ] in
      let rec steps v_start = function
        | [] ->
            Diag.error diag ~stage:"engine.dc" "gmin stepping exhausted";
            raise (No_convergence "gmin stepping exhausted")
        | gmin :: rest -> begin
            Diag.incr diag "dc.gmin_levels";
            match attempt (Float.max gmin opts.gmin_final) v_start with
            | Some (v, _) -> if rest = [] then finish v else steps v rest
            | None ->
                (* restart the level from the best guess we have *)
                if rest = [] then begin
                  Diag.error diag ~stage:"engine.dc" "gmin stepping failed";
                  raise (No_convergence "gmin stepping failed")
                end
                else steps v_start rest
          end
      in
      steps initial levels

let newton_dynamic ?(opts = default_opts) ?guard ?cancel ?diag ?metrics ?obs
    ~mna ~time ~alpha ~q_prev ~qdot_term ~initial () =
  let n = Mna.size mna in
  let residual_of v =
    let ev = Mna.eval mna ~with_matrices:true ~time v in
    let f = ev.Mna.i_vec in
    for k = 0 to n - 1 do
      f.(k) <-
        f.(k) +. (alpha *. (ev.Mna.q_vec.(k) -. q_prev.(k))) -. qdot_term.(k)
    done;
    ev
  in
  let jac_of (ev : Mna.eval) =
    match (ev.Mna.g_mat, ev.Mna.c_mat) with
    | Some g, Some c ->
        (* J = G + alpha·C; reuse G's storage *)
        let nmat = Linalg.Mat.rows g in
        for r = 0 to nmat - 1 do
          for col = 0 to nmat - 1 do
            Linalg.Mat.update g r col (fun x ->
                x +. (alpha *. Linalg.Mat.get c r col))
          done
        done;
        Some g
    | _, _ -> None
  in
  let result, iters =
    newton ?guard ?cancel ?metrics ?obs ~opts ~mna ~gmin:opts.gmin_final
      ~residual_of ~jac_of ~initial ()
  in
  (* the count covers failed attempts too, so the diagnostics layer sees
     the true cost of steps that later retreat to another integrator *)
  Diag.add diag "dc.newton_iterations" iters;
  Metrics.add metrics "dc.newton_iterations" iters;
  match result with
  | Some (v, _) ->
      Guard.check_vec guard ~site:"dc.newton_dynamic" v;
      (* re-evaluate to return clean (unmodified) Jacobians at the solution *)
      let ev = Mna.eval mna ~with_matrices:true ~time v in
      (v, ev, iters)
  | None ->
      raise
        (No_convergence (Printf.sprintf "transient Newton failed at t=%.6e" time))
