(* Workspace for repeated pencil solves sharing one (B, D) pair: the
   pencil buffer, the LU workspace and the column scratch are allocated
   once and fully overwritten per frequency, so a whole K×L TFT sweep
   allocates only its small n_outputs × n_inputs results. *)
type ws = {
  b : Linalg.Mat.t;
  d : Linalg.Mat.t;
  pencil : Linalg.Cmat.t;  (** G + s·C, rebuilt in place per frequency *)
  lu : Linalg.Clu.t;
  rhs : Linalg.Cmat.t;  (** complex copy of B, fixed *)
  bcol : Linalg.Cmat.vec;
  xcol : Linalg.Cmat.vec;
  x : Linalg.Cmat.t;  (** (G + s·C)⁻¹ B solution buffer *)
}

let make_ws ~b ~d =
  let n = Linalg.Mat.rows b and mi = Linalg.Mat.cols b in
  if Linalg.Mat.rows d <> n then invalid_arg "Ac.make_ws: B/D row mismatch";
  {
    b;
    d;
    pencil = Linalg.Cmat.create n n;
    lu = Linalg.Clu.workspace n;
    rhs = Linalg.Cmat.of_real b;
    bcol = Array.make n Linalg.Cx.zero;
    xcol = Array.make n Linalg.Cx.zero;
    x = Linalg.Cmat.create n mi;
  }

(* H = Dᵀ X, allocating only the small output matrix *)
let output_transfer ~d ~x =
  let mo = Linalg.Mat.cols d and mi = Linalg.Cmat.cols x in
  let n = Linalg.Mat.rows d in
  Linalg.Cmat.init mo mi (fun o i ->
      let acc = ref Linalg.Cx.zero in
      for k = 0 to n - 1 do
        let dk = Linalg.Mat.get d k o in
        let xki = Linalg.Cmat.get x k i in
        if dk <> 0.0 then acc := Linalg.Cx.(!acc +: scale dk xki)
      done;
      !acc)

let transfer_ws ?guard ?obs ws ~g ~c ~s =
  Linalg.Cmat.lincomb_into ws.pencil Linalg.Cx.one g s c;
  Linalg.Clu.factor_into ?guard ws.lu ws.pencil;
  (match obs with
  | None -> ()
  | Some _ ->
      Obs.rcond obs ~site:"ac.pencil" (Linalg.Clu.rcond_estimate ws.lu));
  let inject = Fault.should_fire "ac.pencil_nan" in
  for j = 0 to Linalg.Cmat.cols ws.rhs - 1 do
    Linalg.Cmat.get_col ws.rhs j ws.bcol;
    Linalg.Clu.solve_into ws.lu ws.bcol ws.xcol;
    if inject && j = 0 then
      ws.xcol.(0) <- { Complex.re = Float.nan; im = Float.nan };
    Guard.check_complex_vec guard ~site:"ac.transfer" ws.xcol;
    Linalg.Cmat.set_col ws.x j ws.xcol
  done;
  output_transfer ~d:ws.d ~x:ws.x

let ws_matches ws ~b ~d =
  let same a b' =
    a == b'
    || Linalg.Mat.rows a = Linalg.Mat.rows b'
       && Linalg.Mat.cols a = Linalg.Mat.cols b'
       && Linalg.Mat.unsafe_data a = Linalg.Mat.unsafe_data b'
  in
  same ws.b b && same ws.d d

(* pool-owned clones of a sweep workspace, one per chunk > 0 (chunk 0
   reuses the caller's); revalidated against the caller's (B, D) so a
   warm pool can serve successive circuits *)
let sweep_ws_key : ws Exec.key = Exec.new_key ()

(* matched on [metrics] first so the unrecorded path is exactly the
   plain map — no clock reads, bit-identical results *)
let transfer_sweep ?guard ?cancel ?metrics ?obs ?pool ws ~g ~c ~ss =
  let solve ws s =
    Cancel.check cancel ~site:"ac.sweep";
    match metrics with
    | None -> transfer_ws ?guard ?obs ws ~g ~c ~s
    | Some _ ->
        let t0 = Metrics.now_if metrics in
        let h = transfer_ws ?guard ?obs ws ~g ~c ~s in
        Metrics.observe_since_ns metrics "ac.pencil_solve_ns" t0;
        h
  in
  match pool with
  | Some pool when Array.length ss > 1 && Fault.armed () = None ->
      (* frequencies are independent pencil solves — the natural parallel
         axis for a standalone sweep. Fault probes fire per solve in a
         global sequence, so an armed probe forces the sequential path to
         keep the injection site deterministic. *)
      Exec.parallel_map_ws ~pool ?cancel ?metrics ~label:"ac.sweep"
        ~ws:(fun chunk ->
          if chunk = 0 then ws
          else
            Exec.slot pool sweep_ws_key ~chunk
              ~valid:(fun w -> ws_matches w ~b:ws.b ~d:ws.d)
              ~make:(fun () -> make_ws ~b:ws.b ~d:ws.d))
        (fun w s -> solve w s)
        ss
  | _ -> Array.map (solve ws) ss

let transfer_at ~g ~c ~b ~d ~s = transfer_ws (make_ws ~b ~d) ~g ~c ~s

let sweep ?pool mna ~at ~freqs_hz =
  let ev = Mna.eval mna ~with_matrices:true ~time:0.0 at in
  let g, c =
    match (ev.Mna.g_mat, ev.Mna.c_mat) with
    | Some g, Some c -> (g, c)
    | _, _ -> assert false
  in
  let ws = make_ws ~b:(Mna.b_matrix mna) ~d:(Mna.d_matrix mna) in
  transfer_sweep ?pool ws ~g ~c ~ss:(Array.map Signal.Grid.s_of_hz freqs_hz)

let sweep_siso ?pool mna ~at ~freqs_hz =
  Array.map (fun h -> Linalg.Cmat.get h 0 0) (sweep ?pool mna ~at ~freqs_hz)
