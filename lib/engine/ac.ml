(* Workspace for repeated pencil solves sharing one (B, D) pair: the
   pencil buffer, the LU workspace and the column scratch are allocated
   once and fully overwritten per frequency, so a whole K×L TFT sweep
   allocates only its small n_outputs × n_inputs results. *)
type ws = {
  b : Linalg.Mat.t;
  d : Linalg.Mat.t;
  pencil : Linalg.Cmat.t;  (** G + s·C, rebuilt in place per frequency *)
  lu : Linalg.Clu.t;
  rhs : Linalg.Cmat.t;  (** complex copy of B, fixed *)
  bcol : Linalg.Cmat.vec;
  xcol : Linalg.Cmat.vec;
  x : Linalg.Cmat.t;  (** (G + s·C)⁻¹ B solution buffer *)
}

let make_ws ~b ~d =
  let n = Linalg.Mat.rows b and mi = Linalg.Mat.cols b in
  if Linalg.Mat.rows d <> n then invalid_arg "Ac.make_ws: B/D row mismatch";
  {
    b;
    d;
    pencil = Linalg.Cmat.create n n;
    lu = Linalg.Clu.workspace n;
    rhs = Linalg.Cmat.of_real b;
    bcol = Array.make n Linalg.Cx.zero;
    xcol = Array.make n Linalg.Cx.zero;
    x = Linalg.Cmat.create n mi;
  }

(* H = Dᵀ X, allocating only the small output matrix *)
let output_transfer ~d ~x =
  let mo = Linalg.Mat.cols d and mi = Linalg.Cmat.cols x in
  let n = Linalg.Mat.rows d in
  Linalg.Cmat.init mo mi (fun o i ->
      let acc = ref Linalg.Cx.zero in
      for k = 0 to n - 1 do
        let dk = Linalg.Mat.get d k o in
        let xki = Linalg.Cmat.get x k i in
        if dk <> 0.0 then acc := Linalg.Cx.(!acc +: scale dk xki)
      done;
      !acc)

let transfer_ws ?guard ws ~g ~c ~s =
  Linalg.Cmat.lincomb_into ws.pencil Linalg.Cx.one g s c;
  Linalg.Clu.factor_into ?guard ws.lu ws.pencil;
  let inject = Fault.should_fire "ac.pencil_nan" in
  for j = 0 to Linalg.Cmat.cols ws.rhs - 1 do
    Linalg.Cmat.get_col ws.rhs j ws.bcol;
    Linalg.Clu.solve_into ws.lu ws.bcol ws.xcol;
    if inject && j = 0 then
      ws.xcol.(0) <- { Complex.re = Float.nan; im = Float.nan };
    Guard.check_complex_vec guard ~site:"ac.transfer" ws.xcol;
    Linalg.Cmat.set_col ws.x j ws.xcol
  done;
  output_transfer ~d:ws.d ~x:ws.x

(* matched on [metrics] first so the unrecorded path is exactly the
   plain map — no clock reads, bit-identical results *)
let transfer_sweep ?guard ?metrics ws ~g ~c ~ss =
  match metrics with
  | None -> Array.map (fun s -> transfer_ws ?guard ws ~g ~c ~s) ss
  | Some _ ->
      Array.map
        (fun s ->
          let t0 = Metrics.now_if metrics in
          let h = transfer_ws ?guard ws ~g ~c ~s in
          Metrics.observe_since_ns metrics "ac.pencil_solve_ns" t0;
          h)
        ss

let transfer_at ~g ~c ~b ~d ~s = transfer_ws (make_ws ~b ~d) ~g ~c ~s

let sweep mna ~at ~freqs_hz =
  let ev = Mna.eval mna ~with_matrices:true ~time:0.0 at in
  let g, c =
    match (ev.Mna.g_mat, ev.Mna.c_mat) with
    | Some g, Some c -> (g, c)
    | _, _ -> assert false
  in
  let ws = make_ws ~b:(Mna.b_matrix mna) ~d:(Mna.d_matrix mna) in
  transfer_sweep ws ~g ~c ~ss:(Array.map Signal.Grid.s_of_hz freqs_hz)

let sweep_siso mna ~at ~freqs_hz =
  Array.map (fun h -> Linalg.Cmat.get h 0 0) (sweep mna ~at ~freqs_hz)
