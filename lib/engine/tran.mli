(** Nonlinear transient analysis with Jacobian snapshot capture.

    This replaces the role of the commercial simulator in the paper's
    flow: it integrates [d/dt q(v) + i(v) = s(t)] and, at selected
    accepted time points, records the linearization
    [(G_k, C_k, u_k, y_k)] that the TFT transform consumes. *)

type integration = Backward_euler | Trapezoidal

type opts = {
  integration : integration;  (** default [Trapezoidal] *)
  snapshot_every : int;
      (** record a snapshot every n-th accepted step; 0 disables (default 0) *)
  newton : Dc.opts;
}

val default_opts : opts

type snapshot = {
  time : float;
  state : Linalg.Vec.t;  (** converged unknown vector *)
  inputs : Linalg.Vec.t;  (** u(t_k) of the designated inputs *)
  outputs : Linalg.Vec.t;  (** y(t_k) = Dᵀ v *)
  g_mat : Linalg.Mat.t;
      (** ∂i/∂v at the solution; a 0×0 placeholder on the sparse
          backend, where consumers re-stamp it from [state] through a
          compiled sparse pattern instead of carrying n×n copies *)
  c_mat : Linalg.Mat.t;  (** ∂q/∂v at the solution; likewise *)
}

type result = {
  times : float array;
  states : Linalg.Vec.t array;
  outputs : Linalg.Mat.t;  (** (steps+1) × n_outputs *)
  snapshots : snapshot array;
  newton_iterations : int;
      (** total Newton iterations actually run across all accepted
          steps (not the step count) *)
  be_fallbacks : int;
      (** trapezoidal steps that retreated to backward Euler
          (always 0 for {!run_adaptive} and pure-BE runs) *)
  step_rejections : int;
      (** rejected step attempts of {!run_adaptive}; for fixed-step
          {!run} this counts guard step-halving retries (0 without a
          guard) *)
}

val run :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?initial:Linalg.Vec.t ->
  ?backend:Mna.backend ->
  ?sparse:Dc.sparse_ws ->
  Mna.t ->
  t_stop:float ->
  dt:float ->
  result
(** Fixed-step integration from a DC solution at [t = 0] (or [initial]).
    Raises {!Dc.No_convergence} if a step fails even after an internal
    retreat to backward Euler for that step. When a trapezoidal step
    does retreat, the charge-derivative estimate for that step uses the
    backward-Euler difference quotient (matching the integrator that
    actually produced the step) so subsequent trapezoidal steps are not
    poisoned by a stale [qdot]. With [diag], records [tran.steps],
    [tran.newton_iterations], [tran.be_fallbacks] counters and a
    warning event per fallback. With [trace], the run records a
    [tran.run] span containing one [tran.step] span per step (carrying
    its Newton iteration count and fallback flag as arguments); with
    [metrics], the same counters are mirrored and per-step iteration
    counts land in the [tran.newton_iters_per_step] histogram. With
    [guard], a step that fails even the backward-Euler retreat is
    re-integrated as [2^j] backward-Euler substeps for
    [j = 1 .. guard.max_step_halvings] before giving up
    ([tran.step_halvings] counts the attempts); the qdot estimate for
    such a step uses the backward-Euler difference quotient over the
    whole step, as for an ordinary fallback. Hosts the
    ["tran.newton_diverge"] fault probe (one invocation per step
    attempt, including the backward-Euler retreat) and the hang-class
    ["tran.stall"] site. With [cancel], every step probes the token
    (site ["tran.step"]) before integrating, as does every inner
    Newton iteration.

    With [backend:Sparse], every Newton system (DC operating point and
    each time step) assembles and factors sparsely through one shared
    {!Dc.sparse_ws} ([sparse] supplies it, otherwise one is compiled
    up front), and snapshots carry 0×0 placeholder Jacobians. *)

val output_waveform : result -> int -> Signal.Waveform.t
(** Extract output channel [j] as a waveform. *)

val run_adaptive :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?initial:Linalg.Vec.t ->
  ?reltol:float ->
  ?abstol:float ->
  ?dt_min:float ->
  ?dt_max:float ->
  ?backend:Mna.backend ->
  ?sparse:Dc.sparse_ws ->
  Mna.t ->
  t_stop:float ->
  dt:float ->
  result
(** Variable-step trapezoidal integration with a predictor–corrector
    local-error estimate (forward-Euler predictor vs trapezoidal
    corrector): steps shrink through fast transitions and stretch across
    quiet intervals. [dt] is the initial step; [reltol]/[abstol]
    (defaults 1e-3 / 1e-6) bound the per-step estimate; [dt_min]
    defaults to [dt/1e6] and [dt_max] to [50·dt]. Snapshots are captured
    on accepted steps as in {!run}. *)
