type integration = Backward_euler | Trapezoidal

type opts = {
  integration : integration;
  snapshot_every : int;
  newton : Dc.opts;
}

let default_opts =
  { integration = Trapezoidal; snapshot_every = 0; newton = Dc.default_opts }

type snapshot = {
  time : float;
  state : Linalg.Vec.t;
  inputs : Linalg.Vec.t;
  outputs : Linalg.Vec.t;
  g_mat : Linalg.Mat.t;
  c_mat : Linalg.Mat.t;
}

type result = {
  times : float array;
  states : Linalg.Vec.t array;
  outputs : Linalg.Mat.t;
  snapshots : snapshot array;
  newton_iterations : int;
  be_fallbacks : int;
  step_rejections : int;
}

(* Snapshot Jacobians: dense evaluations carry them; the sparse backend
   stores 0×0 placeholders instead — the TFT dataset re-stamps G/C from
   the recorded state through the compiled sparse pattern, so keeping
   n×n copies per snapshot would only burn memory at large n. *)
let snapshot_matrices (ev : Mna.eval) =
  match (ev.Mna.g_mat, ev.Mna.c_mat) with
  | Some g, Some c -> (Linalg.Mat.copy g, Linalg.Mat.copy c)
  | _, _ -> (Linalg.Mat.create 0 0, Linalg.Mat.create 0 0)

let run ?(opts = default_opts) ?guard ?cancel ?diag ?trace ?metrics ?obs
    ?initial ?(backend = Mna.Dense) ?sparse mna ~t_stop ~dt =
  if dt <= 0.0 || t_stop <= 0.0 then invalid_arg "Tran.run: dt and t_stop must be > 0";
  let sparse =
    match backend with
    | Mna.Dense -> None
    | Mna.Sparse ->
        Some (match sparse with Some s -> s | None -> Dc.sparse_ws mna)
  in
  let with_matrices = backend = Mna.Dense in
  let n = Mna.size mna in
  (* the small slack avoids a spurious zero-length final step when
     t_stop/dt is an integer up to roundoff *)
  let steps = Stdlib.max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  Trace.span trace ~args:[ ("steps", Trace.Int steps) ] "tran.run"
  @@ fun () ->
  let v0 =
    match initial with
    | Some v -> Linalg.Vec.copy v
    | None ->
        Dc.solve ~opts:opts.newton ?guard ?cancel ?diag ?trace ?metrics ?obs
          ~time:0.0 ~backend ?sparse mna
  in
  let ev0 = Mna.eval mna ~with_matrices ~time:0.0 v0 in
  let times = Array.make (steps + 1) 0.0 in
  let states = Array.make (steps + 1) v0 in
  let outputs = Linalg.Mat.create (steps + 1) (Mna.n_outputs mna) in
  let record_output k v =
    let y = Mna.output_values mna v in
    Array.iteri (fun j yv -> Linalg.Mat.set outputs k j yv) y
  in
  record_output 0 v0;
  let snapshots = ref [] in
  let take_snapshot time v (ev : Mna.eval) =
    let g, c = snapshot_matrices ev in
    snapshots :=
      {
        time;
        state = Linalg.Vec.copy v;
        inputs = Mna.input_values mna time;
        outputs = Mna.output_values mna v;
        g_mat = g;
        c_mat = c;
      }
      :: !snapshots
  in
  if opts.snapshot_every > 0 then take_snapshot 0.0 v0 ev0;
  let newton_count = ref 0 in
  let fallback_count = ref 0 in
  let halving_count = ref 0 in
  let q_prev = ref ev0.Mna.q_vec in
  let qdot_prev = ref (Linalg.Vec.create n) in
  let v_prev = ref v0 in
  (* guard recovery of last resort for a step no integrator could take
     whole: re-integrate [t_prev, time] as 2^j backward-Euler substeps,
     doubling the split until the guard's halving budget runs out.
     Returns the end-of-step solution and total Newton iterations. *)
  let halve_step ~t_prev ~time =
    match guard with
    | None -> None
    | Some (g : Guard.t) ->
        let rec attempt j =
          if j > g.Guard.max_step_halvings then None
          else begin
            incr halving_count;
            (* each halving attempt rejects the step at its previous
               resolution, so the rejection counter stays in agreement
               with the result's [step_rejections] field *)
            Diag.incr diag "tran.step_halvings";
            Diag.incr diag "tran.step_rejections";
            Metrics.incr metrics "tran.step_halvings";
            Metrics.incr metrics "tran.step_rejections";
            let m = 1 lsl j in
            let hs = (time -. t_prev) /. float_of_int m in
            let rec substeps i q v iters =
              if i = m then Some (v, iters)
              else
                let t_sub =
                  if i = m - 1 then time
                  else t_prev +. (float_of_int (i + 1) *. hs)
                in
                match
                  Dc.newton_dynamic ~opts:opts.newton ?guard ?cancel ?diag
                    ?metrics ?obs ~backend ?sparse ~mna ~time:t_sub
                    ~alpha:(1.0 /. hs) ~q_prev:q
                    ~qdot_term:(Linalg.Vec.create n) ~initial:v ()
                with
                | exception Dc.No_convergence _ -> None
                | v', ev', it ->
                    substeps (i + 1) ev'.Mna.q_vec v' (iters + it)
            in
            match substeps 0 !q_prev !v_prev 0 with
            | Some (v, iters) ->
                Diag.warn diag ~stage:"engine.tran"
                  (Printf.sprintf
                     "step at t=%.6e recovered as %d backward-Euler substeps"
                     time m);
                (* re-evaluate for the snapshot-quality Jacobians *)
                let ev = Mna.eval mna ~with_matrices ~time v in
                Some (v, ev, iters)
            | None -> attempt (j + 1)
          end
        in
        attempt 1
  in
  for k = 1 to steps do
    Trace.span trace ~args:[ ("k", Trace.Int k) ] "tran.step" @@ fun () ->
    Cancel.check cancel ~site:"tran.step";
    if Fault.should_fire "tran.stall" then Cancel.hang cancel ~site:"tran.step";
    let time = Float.min (float_of_int k *. dt) t_stop in
    let h = time -. times.(k - 1) in
    let alpha, qdot_term =
      match opts.integration with
      | Backward_euler -> (1.0 /. h, Linalg.Vec.create n)
      | Trapezoidal -> (2.0 /. h, Linalg.Vec.copy !qdot_prev)
    in
    (* [fell_back] records which integrator actually produced this step
       (backward Euler, whole or in substeps), so the qdot update below
       can use the matching formula *)
    let inject_diverge () =
      if Fault.should_fire "tran.newton_diverge" then
        raise
          (Dc.No_convergence
             (Printf.sprintf "injected Newton divergence at t=%.6e" time))
    in
    let be_retry () =
      (* retreat to backward Euler for this step *)
      incr fallback_count;
      Diag.incr diag "tran.be_fallbacks";
      Metrics.incr metrics "tran.be_fallbacks";
      Diag.warn diag ~stage:"engine.tran"
        (Printf.sprintf
           "trapezoidal step at t=%.6e retreated to backward Euler" time);
      inject_diverge ();
      let v, ev, iters =
        Dc.newton_dynamic ~opts:opts.newton ?guard ?cancel ?diag ?metrics ?obs
          ~backend ?sparse ~mna ~time ~alpha:(1.0 /. h) ~q_prev:!q_prev
          ~qdot_term:(Linalg.Vec.create n) ~initial:!v_prev ()
      in
      (v, ev, iters, true)
    in
    let recover exn =
      match halve_step ~t_prev:times.(k - 1) ~time with
      | Some (v, ev, iters) -> (v, ev, iters, true)
      | None -> raise exn
    in
    let v, ev, iters, fell_back =
      try
        inject_diverge ();
        let v, ev, iters =
          Dc.newton_dynamic ~opts:opts.newton ?guard ?cancel ?diag ?metrics ?obs
            ~backend ?sparse ~mna ~time ~alpha ~q_prev:!q_prev ~qdot_term
            ~initial:!v_prev ()
        in
        (v, ev, iters, false)
      with
      | Dc.No_convergence _ when opts.integration = Trapezoidal -> (
          try be_retry () with Dc.No_convergence _ as e -> recover e)
      | Dc.No_convergence _ as e -> recover e
    in
    newton_count := !newton_count + iters;
    Trace.add_args trace
      [ ("iters", Trace.Int iters); ("be_fallback", Trace.Bool fell_back) ];
    Metrics.observe metrics "tran.newton_iters_per_step" (float_of_int iters);
    let q_new = ev.Mna.q_vec in
    let qdot_new =
      (* the derivative estimate must match the integrator that actually
         produced the step: applying the trapezoidal formula to a
         backward-Euler step would feed a persistent qdot error into
         every subsequent trapezoidal step *)
      if fell_back then
        Array.init n (fun j -> (q_new.(j) -. (!q_prev).(j)) /. h)
      else
        match opts.integration with
        | Backward_euler ->
            Array.init n (fun j -> (q_new.(j) -. (!q_prev).(j)) /. h)
        | Trapezoidal ->
            Array.init n (fun j ->
                ((2.0 /. h) *. (q_new.(j) -. (!q_prev).(j))) -. (!qdot_prev).(j))
    in
    times.(k) <- time;
    states.(k) <- Linalg.Vec.copy v;
    record_output k v;
    if opts.snapshot_every > 0 && k mod opts.snapshot_every = 0 then
      take_snapshot time v ev;
    q_prev := q_new;
    qdot_prev := qdot_new;
    v_prev := v
  done;
  Diag.add diag "tran.steps" steps;
  Diag.add diag "tran.newton_iterations" !newton_count;
  Metrics.add metrics "tran.steps" steps;
  Metrics.add metrics "tran.newton_iterations" !newton_count;
  {
    times;
    states;
    outputs;
    snapshots = Array.of_list (List.rev !snapshots);
    newton_iterations = !newton_count;
    be_fallbacks = !fallback_count;
    step_rejections = !halving_count;
  }

let output_waveform r j =
  Signal.Waveform.make r.times (Linalg.Mat.col r.outputs j)

let run_adaptive ?(opts = default_opts) ?guard ?cancel ?diag ?trace ?metrics
    ?obs ?initial ?(reltol = 1e-3) ?(abstol = 1e-6) ?dt_min ?dt_max
    ?(backend = Mna.Dense) ?sparse mna ~t_stop ~dt =
  if dt <= 0.0 || t_stop <= 0.0 then
    invalid_arg "Tran.run_adaptive: dt and t_stop must be > 0";
  Trace.span trace "tran.run_adaptive" @@ fun () ->
  let sparse =
    match backend with
    | Mna.Dense -> None
    | Mna.Sparse ->
        Some (match sparse with Some s -> s | None -> Dc.sparse_ws mna)
  in
  let with_matrices = backend = Mna.Dense in
  let dt_min = match dt_min with Some v -> v | None -> dt /. 1e6 in
  let dt_max = match dt_max with Some v -> v | None -> 50.0 *. dt in
  let n = Mna.size mna in
  let v0 =
    match initial with
    | Some v -> Linalg.Vec.copy v
    | None ->
        Dc.solve ~opts:opts.newton ?guard ?cancel ?diag ?trace ?metrics ?obs
          ~time:0.0 ~backend ?sparse mna
  in
  let ev0 = Mna.eval mna ~with_matrices ~time:0.0 v0 in
  let times = ref [ 0.0 ] in
  let states = ref [ v0 ] in
  let outputs = ref [ Mna.output_values mna v0 ] in
  let snapshots = ref [] in
  let take_snapshot time v (ev : Mna.eval) =
    let g, c = snapshot_matrices ev in
    snapshots :=
      {
        time;
        state = Linalg.Vec.copy v;
        inputs = Mna.input_values mna time;
        outputs = Mna.output_values mna v;
        g_mat = g;
        c_mat = c;
      }
      :: !snapshots
  in
  if opts.snapshot_every > 0 then take_snapshot 0.0 v0 ev0;
  let newton_count = ref 0 in
  let rejections = ref 0 in
  let q_prev = ref ev0.Mna.q_vec in
  let qdot_prev = ref (Linalg.Vec.create n) in
  let v_prev = ref v0 in
  let t_now = ref 0.0 in
  let h = ref dt in
  let accepted = ref 0 in
  while !t_now < t_stop -. 1e-15 *. t_stop do
    Cancel.check cancel ~site:"tran.step";
    if Fault.should_fire "tran.stall" then Cancel.hang cancel ~site:"tran.step";
    let h_try = Float.min !h (t_stop -. !t_now) in
    let time = !t_now +. h_try in
    let step_ok, v_new, ev_new =
      try
        let v, ev, iters =
          Dc.newton_dynamic ~opts:opts.newton ?guard ?cancel ?diag ?metrics ?obs
            ~backend ?sparse ~mna ~time ~alpha:(2.0 /. h_try) ~q_prev:!q_prev
            ~qdot_term:(Linalg.Vec.copy !qdot_prev) ~initial:!v_prev ()
        in
        newton_count := !newton_count + iters;
        Metrics.observe metrics "tran.newton_iters_per_step"
          (float_of_int iters);
        (true, v, ev)
      with Dc.No_convergence _ -> (false, !v_prev, ev0)
    in
    if not step_ok then begin
      (* convergence failure: halve the step *)
      incr rejections;
      Diag.incr diag "tran.step_rejections";
      Metrics.incr metrics "tran.step_rejections";
      h := Float.max dt_min (0.5 *. h_try);
      if h_try <= dt_min *. 1.0000001 then begin
        Diag.error diag ~stage:"engine.tran"
          (Printf.sprintf "adaptive step underflow at t=%.6e" time);
        raise (Dc.No_convergence
                 (Printf.sprintf "adaptive step underflow at t=%.6e" time))
      end
    end
    else begin
      (* predictor: forward Euler with the previous dv/dt estimate *)
      let dvdt_prev =
        match !times with
        | t1 :: t2 :: _ ->
            let hp = t1 -. t2 in
            let v1 = List.nth !states 0 and v2 = List.nth !states 1 in
            Array.init n (fun i -> (v1.(i) -. v2.(i)) /. hp)
        | _ -> Linalg.Vec.create n
      in
      let err = ref 0.0 in
      Array.iteri
        (fun i vi ->
          let pred = (!v_prev).(i) +. (h_try *. dvdt_prev.(i)) in
          let scale = abstol +. (reltol *. Float.max (Float.abs vi) (Float.abs (!v_prev).(i))) in
          err := Float.max !err (Float.abs (vi -. pred) /. scale))
        v_new;
      if !err > 2.0 && h_try > dt_min *. 1.0000001 then begin
        (* reject: shrink *)
        incr rejections;
        Diag.incr diag "tran.step_rejections";
        Metrics.incr metrics "tran.step_rejections";
        h := Float.max dt_min (h_try *. Float.max 0.2 (0.9 /. sqrt !err))
      end
      else begin
        (* accept *)
        let q_new = ev_new.Mna.q_vec in
        let qdot_new =
          Array.init n (fun j ->
              ((2.0 /. h_try) *. (q_new.(j) -. (!q_prev).(j))) -. (!qdot_prev).(j))
        in
        t_now := time;
        times := time :: !times;
        states := Linalg.Vec.copy v_new :: !states;
        outputs := Mna.output_values mna v_new :: !outputs;
        incr accepted;
        if opts.snapshot_every > 0 && !accepted mod opts.snapshot_every = 0 then
          take_snapshot time v_new ev_new;
        q_prev := q_new;
        qdot_prev := qdot_new;
        v_prev := v_new;
        let grow = if !err <= 0.0 then 2.0 else Float.min 2.0 (0.9 /. sqrt !err) in
        h := Float.min dt_max (Float.max dt_min (h_try *. Float.max 0.5 grow))
      end
    end
  done;
  let times = Array.of_list (List.rev !times) in
  let states = Array.of_list (List.rev !states) in
  let outs = Array.of_list (List.rev !outputs) in
  let mo = Mna.n_outputs mna in
  let outputs = Linalg.Mat.create (Array.length times) mo in
  Array.iteri
    (fun k row -> Array.iteri (fun j v -> Linalg.Mat.set outputs k j v) row)
    outs;
  Diag.add diag "tran.steps" !accepted;
  Diag.add diag "tran.newton_iterations" !newton_count;
  Metrics.add metrics "tran.steps" !accepted;
  Metrics.add metrics "tran.newton_iterations" !newton_count;
  {
    times;
    states;
    outputs;
    snapshots = Array.of_list (List.rev !snapshots);
    newton_iterations = !newton_count;
    be_fallbacks = 0;
    step_rejections = !rejections;
  }
