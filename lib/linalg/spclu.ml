exception Singular of { pivot_index : int; magnitude : float }

let () =
  Printexc.register_printer (function
    | Singular { pivot_index; magnitude } ->
        Some
          (Printf.sprintf "Spclu.Singular: pivot %d has magnitude %.3e"
             pivot_index magnitude)
    | _ -> None)

let tiny_pivot = 1e-300
let diag_threshold = 0.1

type t = {
  n : int;
  pat : Sp.pattern;
  q : int array;
  pinv : int array;
  lp : int array;
  up : int array;
  mutable li : int array;
  mutable lre : float array;
  mutable lim : float array;
  mutable lnz : int;
  mutable ui : int array;
  mutable ure : float array;
  mutable uim : float array;
  mutable unz : int;
  xre : float array;
  xim : float array;
  wre : float array;
  wim : float array;
  reach : int array;
  stack : int array;
  pstack : int array;
  mark : int array;
  mutable factored : bool;
}

let workspace (pat : Sp.pattern) =
  if pat.Sp.nrows <> pat.Sp.ncols then
    invalid_arg "Spclu.workspace: pattern not square";
  let n = pat.Sp.nrows in
  let cap = max (4 * Sp.nnz pat) (2 * n) in
  {
    n;
    pat;
    q = Sp.mindeg pat;
    pinv = Array.make n (-1);
    lp = Array.make (n + 1) 0;
    up = Array.make (n + 1) 0;
    li = Array.make cap 0;
    lre = Array.make cap 0.0;
    lim = Array.make cap 0.0;
    lnz = 0;
    ui = Array.make cap 0;
    ure = Array.make cap 0.0;
    uim = Array.make cap 0.0;
    unz = 0;
    xre = Array.make n 0.0;
    xim = Array.make n 0.0;
    wre = Array.make n 0.0;
    wim = Array.make n 0.0;
    reach = Array.make n 0;
    stack = Array.make n 0;
    pstack = Array.make n 0;
    mark = Array.make n (-1);
    factored = false;
  }

let ws_matches ws (pat : Sp.pattern) = ws.pat == pat
let lu_nnz ws = ws.lnz + ws.unz

let push_l ws i re im =
  if ws.lnz = Array.length ws.li then begin
    let c = 2 * ws.lnz in
    let ni = Array.make c 0 in
    let nr = Array.make c 0.0 and nm = Array.make c 0.0 in
    Array.blit ws.li 0 ni 0 ws.lnz;
    Array.blit ws.lre 0 nr 0 ws.lnz;
    Array.blit ws.lim 0 nm 0 ws.lnz;
    ws.li <- ni;
    ws.lre <- nr;
    ws.lim <- nm
  end;
  ws.li.(ws.lnz) <- i;
  ws.lre.(ws.lnz) <- re;
  ws.lim.(ws.lnz) <- im;
  ws.lnz <- ws.lnz + 1

let push_u ws i re im =
  if ws.unz = Array.length ws.ui then begin
    let c = 2 * ws.unz in
    let ni = Array.make c 0 in
    let nr = Array.make c 0.0 and nm = Array.make c 0.0 in
    Array.blit ws.ui 0 ni 0 ws.unz;
    Array.blit ws.ure 0 nr 0 ws.unz;
    Array.blit ws.uim 0 nm 0 ws.unz;
    ws.ui <- ni;
    ws.ure <- nr;
    ws.uim <- nm
  end;
  ws.ui.(ws.unz) <- i;
  ws.ure.(ws.unz) <- re;
  ws.uim.(ws.unz) <- im;
  ws.unz <- ws.unz + 1

let mag re im = sqrt ((re *. re) +. (im *. im))

(* Smith's robust complex division: (ar + i·ai) / (br + i·bi) *)
let cdiv ar ai br bi =
  if Float.abs br >= Float.abs bi then begin
    let r = bi /. br in
    let d = br +. (bi *. r) in
    (((ar +. (ai *. r)) /. d), (ai -. (ar *. r)) /. d)
  end
  else begin
    let r = br /. bi in
    let d = (br *. r) +. bi in
    (((ar *. r) +. ai) /. d, ((ai *. r) -. ar) /. d)
  end

(* identical traversal to Splu.reach_of; L rows are original until the
   final remap *)
let reach_of ws (pat : Sp.pattern) ~col ~k =
  let top = ref ws.n in
  let start_of j = if ws.pinv.(j) < 0 then 0 else ws.lp.(ws.pinv.(j)) + 1 in
  let end_of j = if ws.pinv.(j) < 0 then 0 else ws.lp.(ws.pinv.(j) + 1) in
  for p = pat.Sp.colptr.(col) to pat.Sp.colptr.(col + 1) - 1 do
    let j0 = pat.Sp.rowind.(p) in
    if ws.mark.(j0) <> k then begin
      let head = ref 0 in
      ws.stack.(0) <- j0;
      ws.mark.(j0) <- k;
      ws.pstack.(0) <- start_of j0;
      while !head >= 0 do
        let j = ws.stack.(!head) in
        let pend = end_of j in
        let p = ref ws.pstack.(!head) in
        let pushed = ref false in
        while (not !pushed) && !p < pend do
          let i = ws.li.(!p) in
          incr p;
          if ws.mark.(i) <> k then begin
            ws.mark.(i) <- k;
            ws.pstack.(!head) <- !p;
            incr head;
            ws.stack.(!head) <- i;
            ws.pstack.(!head) <- start_of i;
            pushed := true
          end
        done;
        if not !pushed then begin
          decr head;
          decr top;
          ws.reach.(!top) <- j
        end
      done
    end
  done;
  !top

let factor_into ?guard ws (a : Sp.ct) =
  if not (a.Sp.cpat == ws.pat) then
    invalid_arg "Spclu.factor_into: matrix pattern does not match workspace";
  let inject = Fault.should_fire "sp.singular" in
  let n = ws.n in
  ws.lnz <- 0;
  ws.unz <- 0;
  ws.factored <- false;
  Array.fill ws.pinv 0 n (-1);
  Array.fill ws.mark 0 n (-1);
  let pat = a.Sp.cpat in
  for k = 0 to n - 1 do
    ws.lp.(k) <- ws.lnz;
    ws.up.(k) <- ws.unz;
    let col = ws.q.(k) in
    let top = reach_of ws pat ~col ~k in
    for p = top to n - 1 do
      ws.xre.(ws.reach.(p)) <- 0.0;
      ws.xim.(ws.reach.(p)) <- 0.0
    done;
    for p = pat.Sp.colptr.(col) to pat.Sp.colptr.(col + 1) - 1 do
      ws.xre.(pat.Sp.rowind.(p)) <- a.Sp.re.(p);
      ws.xim.(pat.Sp.rowind.(p)) <- a.Sp.im.(p)
    done;
    for p = top to n - 1 do
      let j = ws.reach.(p) in
      let jq = ws.pinv.(j) in
      if jq >= 0 then begin
        let xr = ws.xre.(j) and xi = ws.xim.(j) in
        for pp = ws.lp.(jq) + 1 to ws.lp.(jq + 1) - 1 do
          let i = ws.li.(pp) in
          let lr = ws.lre.(pp) and li = ws.lim.(pp) in
          ws.xre.(i) <- ws.xre.(i) -. ((lr *. xr) -. (li *. xi));
          ws.xim.(i) <- ws.xim.(i) -. ((lr *. xi) +. (li *. xr))
        done
      end
    done;
    let ipiv = ref (-1) and amax = ref (-1.0) in
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) < 0 then begin
        let t = mag ws.xre.(i) ws.xim.(i) in
        if t > !amax then begin
          amax := t;
          ipiv := i
        end
      end
    done;
    if
      !ipiv >= 0 && ws.mark.(col) = k
      && ws.pinv.(col) < 0
      && mag ws.xre.(col) ws.xim.(col) >= diag_threshold *. !amax
      && mag ws.xre.(col) ws.xim.(col) >= tiny_pivot
    then ipiv := col;
    if !ipiv < 0 then raise (Singular { pivot_index = k; magnitude = 0.0 });
    let pre, pim =
      if inject && k = 0 then (0.0, 0.0) else (ws.xre.(!ipiv), ws.xim.(!ipiv))
    in
    let pmag = mag pre pim in
    if pmag < tiny_pivot || not (Float.is_finite pmag) then
      raise (Singular { pivot_index = k; magnitude = pmag });
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) >= 0 then push_u ws ws.pinv.(i) ws.xre.(i) ws.xim.(i)
    done;
    push_u ws k pre pim;
    ws.pinv.(!ipiv) <- k;
    push_l ws !ipiv 1.0 0.0;
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) < 0 then begin
        let mr, mi = cdiv ws.xre.(i) ws.xim.(i) pre pim in
        push_l ws i mr mi
      end;
      ws.xre.(i) <- 0.0;
      ws.xim.(i) <- 0.0
    done
  done;
  ws.lp.(n) <- ws.lnz;
  ws.up.(n) <- ws.unz;
  for p = 0 to ws.lnz - 1 do
    ws.li.(p) <- ws.pinv.(ws.li.(p))
  done;
  ws.factored <- true;
  match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      let mn = ref infinity and mx = ref 0.0 and idx = ref 0 in
      for k = 0 to n - 1 do
        let p = ws.up.(k + 1) - 1 in
        let d = mag ws.ure.(p) ws.uim.(p) in
        if d < !mn then begin
          mn := d;
          idx := k
        end;
        if d > !mx then mx := d
      done;
      let rc =
        if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx
      in
      if rc < g.Guard.rcond_min then
        raise (Singular { pivot_index = !idx; magnitude = !mn })

let factor ?guard a =
  let ws = workspace a.Sp.cpat in
  factor_into ?guard ws a;
  ws

let rcond_estimate ws =
  if not ws.factored then 0.0
  else begin
    let mn = ref infinity and mx = ref 0.0 in
    for k = 0 to ws.n - 1 do
      let p = ws.up.(k + 1) - 1 in
      let d = mag ws.ure.(p) ws.uim.(p) in
      if d < !mn then mn := d;
      if d > !mx then mx := d
    done;
    if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx
  end

let solve_into ws (b : Cmat.vec) (x : Cmat.vec) =
  if not ws.factored then invalid_arg "Spclu.solve_into: not factored";
  let n = ws.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Spclu.solve_into: dimension mismatch";
  if b == x then invalid_arg "Spclu.solve_into: b and x must not alias";
  let wre = ws.wre and wim = ws.wim in
  for i = 0 to n - 1 do
    let bi = b.(i) in
    wre.(ws.pinv.(i)) <- bi.Complex.re;
    wim.(ws.pinv.(i)) <- bi.Complex.im
  done;
  for k = 0 to n - 1 do
    let wr = wre.(k) and wi = wim.(k) in
    for p = ws.lp.(k) + 1 to ws.lp.(k + 1) - 1 do
      let i = ws.li.(p) in
      let lr = ws.lre.(p) and li = ws.lim.(p) in
      wre.(i) <- wre.(i) -. ((lr *. wr) -. (li *. wi));
      wim.(i) <- wim.(i) -. ((lr *. wi) +. (li *. wr))
    done
  done;
  for k = n - 1 downto 0 do
    let pd = ws.up.(k + 1) - 1 in
    let wr, wi = cdiv wre.(k) wim.(k) ws.ure.(pd) ws.uim.(pd) in
    wre.(k) <- wr;
    wim.(k) <- wi;
    for p = ws.up.(k) to pd - 1 do
      let i = ws.ui.(p) in
      let ur = ws.ure.(p) and ui = ws.uim.(p) in
      wre.(i) <- wre.(i) -. ((ur *. wr) -. (ui *. wi));
      wim.(i) <- wim.(i) -. ((ur *. wi) +. (ui *. wr))
    done
  done;
  for k = 0 to n - 1 do
    x.(ws.q.(k)) <- { Complex.re = wre.(k); im = wim.(k) }
  done

let solve ws b =
  let x = Array.make (Array.length b) Cx.zero in
  solve_into ws b x;
  x
