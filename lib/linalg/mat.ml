type t = { nr : int; nc : int; data : float array }

let create nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Mat.create";
  { nr; nc; data = Array.make (nr * nc) 0.0 }

let init nr nc f =
  let data = Array.make (nr * nc) 0.0 in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      data.((i * nc) + j) <- f i j
    done
  done;
  { nr; nc; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays rows =
  let nr = Array.length rows in
  if nr = 0 then { nr = 0; nc = 0; data = [||] }
  else begin
    let nc = Array.length rows.(0) in
    Array.iter
      (fun r -> if Array.length r <> nc then invalid_arg "Mat.of_arrays: ragged")
      rows;
    init nr nc (fun i j -> rows.(i).(j))
  end

let rows m = m.nr
let cols m = m.nc
let get m i j = m.data.((i * m.nc) + j)
let set m i j x = m.data.((i * m.nc) + j) <- x
let update m i j f = m.data.((i * m.nc) + j) <- f m.data.((i * m.nc) + j)
let to_arrays m = Array.init m.nr (fun i -> Array.init m.nc (fun j -> get m i j))
let copy m = { m with data = Array.copy m.data }
let transpose m = init m.nc m.nr (fun i j -> get m j i)

let check_same a b =
  if a.nr <> b.nr || a.nc <> b.nc then invalid_arg "Mat: dimension mismatch"

let blit ~src ~dst =
  check_same src dst;
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let lincomb_into dst a ma b mb =
  check_same dst ma;
  check_same dst mb;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- (a *. ma.data.(k)) +. (b *. mb.data.(k))
  done

let add a b =
  check_same a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

let mul a b =
  if a.nc <> b.nr then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.nc - 1 do
          c.data.((i * c.nc) + j) <- c.data.((i * c.nc) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let mulv a x =
  if a.nc <> Array.length x then invalid_arg "Mat.mulv: dimension mismatch";
  Array.init a.nr (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.nc - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let mulv_into a x y =
  if a.nc <> Array.length x || a.nr <> Array.length y then
    invalid_arg "Mat.mulv_into: dimension mismatch";
  if x == y then invalid_arg "Mat.mulv_into: x and y must not alias";
  for i = 0 to a.nr - 1 do
    let acc = ref 0.0 in
    for j = 0 to a.nc - 1 do
      acc := !acc +. (get a i j *. x.(j))
    done;
    y.(i) <- !acc
  done

let mulv_t a x =
  if a.nr <> Array.length x then invalid_arg "Mat.mulv_t: dimension mismatch";
  let y = Array.make a.nc 0.0 in
  for i = 0 to a.nr - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to a.nc - 1 do
        y.(j) <- y.(j) +. (get a i j *. xi)
      done
  done;
  y

let row m i = Array.init m.nc (fun j -> get m i j)
let col m j = Array.init m.nr (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.nc then invalid_arg "Mat.set_row";
  Array.blit v 0 m.data (i * m.nc) m.nc

let set_col m j v =
  if Array.length v <> m.nr then invalid_arg "Mat.set_col";
  for i = 0 to m.nr - 1 do
    set m i j v.(i)
  done

let swap_rows m i1 i2 =
  if i1 <> i2 then
    for j = 0 to m.nc - 1 do
      let tmp = get m i1 j in
      set m i1 j (get m i2 j);
      set m i2 j tmp
    done

let map f m = { m with data = Array.map f m.data }

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.nr - 1 do
    let s = ref 0.0 in
    for j = 0 to m.nc - 1 do
      s := !s +. Float.abs (get m i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let approx_equal ?(tol = 1e-9) a b =
  a.nr = b.nr && a.nc = b.nc
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let random st nr nc = init nr nc (fun _ _ -> Random.State.float st 2.0 -. 1.0)

let unsafe_data m = m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nr - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.nc - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.nr - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
