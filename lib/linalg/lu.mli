(** LU factorization with partial pivoting for dense real matrices. *)

exception Singular of int
(** Raised with the pivot column index when a zero (or numerically
    negligible) pivot is encountered. *)

type t
(** A factorization [P*A = L*U] of a square matrix; also the
    caller-owned workspace that {!factor_into} overwrites, so time
    steppers can re-factor every step without allocating. *)

val workspace : int -> t
(** [workspace n] preallocates buffers for [n×n] factorizations. The
    contents are meaningless until the first {!factor_into}. *)

val factor_into : t -> Mat.t -> unit
(** [factor_into ws a] factors [a] into [ws], fully overwriting any
    previous factorization; [a] is left untouched. Raises {!Singular}
    if rank-deficient. Performs the same floating-point operations as
    {!factor}. *)

val factor : Mat.t -> t
(** Factorize a square matrix. Raises {!Singular} if rank-deficient. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x]. [b] and [x] must be distinct buffers. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] using the factorization. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val det : t -> float
val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val inverse : Mat.t -> Mat.t
