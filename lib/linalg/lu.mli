(** LU factorization with partial pivoting for dense real matrices. *)

exception Singular of { pivot_index : int; magnitude : float }
(** Raised when elimination meets a pivot that is zero, non-finite or
    below the tiny-pivot floor (1e-300), or — under a [?guard] — when
    the finished factorization's reciprocal-condition estimate falls
    below [Guard.rcond_min]. [pivot_index] is the offending column,
    [magnitude] the absolute pivot value. *)

type t
(** A factorization [P*A = L*U] of a square matrix; also the
    caller-owned workspace that {!factor_into} overwrites, so time
    steppers can re-factor every step without allocating. *)

val workspace : int -> t
(** [workspace n] preallocates buffers for [n×n] factorizations. The
    contents are meaningless until the first {!factor_into}. *)

val factor_into : ?guard:Guard.t -> t -> Mat.t -> unit
(** [factor_into ws a] factors [a] into [ws], fully overwriting any
    previous factorization; [a] is left untouched. Raises {!Singular}
    if rank-deficient, or — with a [?guard] — when {!rcond_estimate}
    of the result falls below [guard.rcond_min]. Hosts the
    ["lu.pivot_zero"] fault probe. Performs the same floating-point
    operations as {!factor}. *)

val factor : ?guard:Guard.t -> Mat.t -> t
(** Factorize a square matrix. Raises {!Singular} if rank-deficient. *)

val rcond_estimate : t -> float
(** Diagonal-ratio reciprocal-condition proxy of a finished
    factorization: [min |U_ii| / max |U_ii|], in [0, 1]; 0 when the
    diagonal is degenerate or non-finite. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x]. [b] and [x] must be distinct buffers. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] using the factorization. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val det : t -> float
val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val inverse : Mat.t -> Mat.t
