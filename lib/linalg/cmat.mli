(** Dense complex matrices and vectors, row-major storage. *)

type t

type vec = Cx.t array

val create : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t
val of_real : Mat.t -> t

val lincomb : Cx.t -> Mat.t -> Cx.t -> Mat.t -> t
(** [lincomb a ma b mb] computes [a*ma + b*mb] as a complex matrix.
    This is how [G + s*C] pencils are formed. *)

val lincomb_into : t -> Cx.t -> Mat.t -> Cx.t -> Mat.t -> unit
(** [lincomb_into dst a ma b mb] overwrites [dst] with [a*ma + b*mb]:
    the allocation-free pencil build used by the sweep workspaces.
    Performs element-wise exactly the same arithmetic as {!lincomb}. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src] (same shape required). *)

val get_col : t -> int -> vec -> unit
(** [get_col m j dst] reads column [j] of [m] into [dst]. *)

val set_col : t -> int -> vec -> unit
(** [set_col m j src] writes [src] into column [j] of [m]. *)

val mul : t -> t -> t
val mulv : t -> vec -> vec
val swap_rows : t -> int -> int -> unit
val max_abs : t -> float
val pp : Format.formatter -> t -> unit
