type t = { nr : int; nc : int; data : Cx.t array }
type vec = Cx.t array

let create nr nc = { nr; nc; data = Array.make (nr * nc) Cx.zero }

let init nr nc f =
  let data = Array.make (nr * nc) Cx.zero in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      data.((i * nc) + j) <- f i j
    done
  done;
  { nr; nc; data }

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)
let of_real m = init (Mat.rows m) (Mat.cols m) (fun i j -> Cx.re (Mat.get m i j))

let lincomb a ma b mb =
  if Mat.rows ma <> Mat.rows mb || Mat.cols ma <> Mat.cols mb then
    invalid_arg "Cmat.lincomb: dimension mismatch";
  init (Mat.rows ma) (Mat.cols ma) (fun r c ->
      Cx.(scale (Mat.get ma r c) a +: scale (Mat.get mb r c) b))

let lincomb_into dst a ma b mb =
  if
    Mat.rows ma <> dst.nr || Mat.cols ma <> dst.nc
    || Mat.rows mb <> dst.nr || Mat.cols mb <> dst.nc
  then invalid_arg "Cmat.lincomb_into: dimension mismatch";
  for r = 0 to dst.nr - 1 do
    for c = 0 to dst.nc - 1 do
      dst.data.((r * dst.nc) + c) <-
        Cx.(scale (Mat.get ma r c) a +: scale (Mat.get mb r c) b)
    done
  done

let rows m = m.nr
let cols m = m.nc
let get m i j = m.data.((i * m.nc) + j)
let set m i j x = m.data.((i * m.nc) + j) <- x
let copy m = { m with data = Array.copy m.data }

let blit ~src ~dst =
  if src.nr <> dst.nr || src.nc <> dst.nc then
    invalid_arg "Cmat.blit: dimension mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let get_col src j dst =
  if Array.length dst <> src.nr || j < 0 || j >= src.nc then
    invalid_arg "Cmat.get_col: dimension mismatch";
  for i = 0 to src.nr - 1 do
    dst.(i) <- src.data.((i * src.nc) + j)
  done

let set_col dst j src =
  if Array.length src <> dst.nr || j < 0 || j >= dst.nc then
    invalid_arg "Cmat.set_col: dimension mismatch";
  for i = 0 to dst.nr - 1 do
    dst.data.((i * dst.nc) + j) <- src.(i)
  done

let mul a b =
  if a.nc <> b.nr then invalid_arg "Cmat.mul: dimension mismatch";
  let c = create a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = get a i k in
      if aik <> Cx.zero then
        for j = 0 to b.nc - 1 do
          let cij = get c i j and bkj = get b k j in
          set c i j Cx.(cij +: (aik *: bkj))
        done
    done
  done;
  c

let mulv a x =
  if a.nc <> Array.length x then invalid_arg "Cmat.mulv: dimension mismatch";
  Array.init a.nr (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to a.nc - 1 do
        let aij = get a i j in
        acc := Cx.(!acc +: (aij *: x.(j)))
      done;
      !acc)

let swap_rows m i1 i2 =
  if i1 <> i2 then
    for j = 0 to m.nc - 1 do
      let tmp = get m i1 j in
      set m i1 j (get m i2 j);
      set m i2 j tmp
    done

let max_abs m =
  Array.fold_left (fun acc z -> Float.max acc (Cx.norm z)) 0.0 m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nr - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.nc - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Cx.pp ppf (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.nr - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
