(** Sparse LU factorization of a real CSC matrix.

    Left-looking (Gilbert–Peierls) column factorization with threshold
    partial pivoting and a fill-reducing minimum-degree column
    preordering, mirroring the {!Lu} workspace conventions:
    [factor_into] reuses a workspace keyed to one compiled pattern,
    [solve_into] writes into a caller-owned vector, and
    [rcond_estimate] is the same diagonal-ratio proxy the [Guard]
    rcond floors consume. *)

exception Singular of { pivot_index : int; magnitude : float }

type t

val workspace : Sp.pattern -> t
(** Allocate a workspace for one square pattern; the fill-reducing
    column ordering is computed here and cached, so repeated
    refactorizations of the same structure pay only the numeric cost.
    Raises [Invalid_argument] on a non-square pattern. *)

val ws_matches : t -> Sp.pattern -> bool
(** Whether the workspace was compiled for exactly this pattern. *)

val factor_into : ?guard:Guard.t -> t -> Sp.t -> unit
(** Factor [P·A·Q = L·U] into the workspace. The matrix must carry the
    workspace's pattern (physical equality). Raises {!Singular} when a
    column has no admissible pivot above [1e-300], or — with a guard —
    when the factored rcond estimate falls below the guard's floor.
    Fault site [sp.singular] forces a zero pivot in column 0. *)

val factor : ?guard:Guard.t -> Sp.t -> t

val rcond_estimate : t -> float
(** min|U_ii| / max|U_ii| over the factored diagonal, as in
    {!Lu.rcond_estimate}. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into f b x] solves [A·x = b]. [b] and [x] must be distinct
    buffers. *)

val solve : t -> Vec.t -> Vec.t

val lu_nnz : t -> int
(** Stored entries in [L] and [U] together — the fill the ordering
    actually achieved (meaningful after a successful factorization). *)
