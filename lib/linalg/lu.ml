exception Singular of { pivot_index : int; magnitude : float }

let () =
  Printexc.register_printer (function
    | Singular { pivot_index; magnitude } ->
        Some
          (Printf.sprintf "Lu.Singular: pivot %d has magnitude %.3e"
             pivot_index magnitude)
    | _ -> None)

(* below this a pivot is numerically zero even when its bit pattern is
   not: eliminating with a denormal pivot overflows the multipliers *)
let tiny_pivot = 1e-300

type t = { lu : Mat.t; perm : int array; mutable sign : float }

let workspace n =
  if n <= 0 then invalid_arg "Lu.workspace: size must be positive";
  { lu = Mat.create n n; perm = Array.init n (fun i -> i); sign = 1.0 }

(* cheap reciprocal-condition proxy: the ratio of the smallest to the
   largest |U_ii|. With partial pivoting this tracks the true 1-norm
   rcond within a few orders of magnitude — enough for a guard floor. *)
let rcond_estimate { lu; _ } =
  let n = Mat.rows lu in
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Float.abs (Mat.get lu i i) in
    if d < !mn then mn := d;
    if d > !mx then mx := d
  done;
  if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx

(* Doolittle factorization with partial pivoting, stored packed in the
   workspace's [lu]. [factor] wraps this with a fresh workspace, so both
   paths perform identical floating-point ops. *)
let factor_into ?guard ws a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factor_into: matrix not square";
  if Mat.rows ws.lu <> n then invalid_arg "Lu.factor_into: workspace size mismatch";
  let inject = Fault.should_fire "lu.pivot_zero" in
  let lu = ws.lu and perm = ws.perm in
  Mat.blit ~src:a ~dst:lu;
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  ws.sign <- 1.0;
  for k = 0 to n - 1 do
    (* pivot search in column k *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !piv k) then piv := i
    done;
    if !piv <> k then begin
      Mat.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      ws.sign <- -.ws.sign
    end;
    let pivot = if inject && k = 0 then 0.0 else Mat.get lu k k in
    if Float.abs pivot < tiny_pivot || not (Float.is_finite pivot) then
      raise (Singular { pivot_index = k; magnitude = Float.abs pivot });
    for i = k + 1 to n - 1 do
      let m = Mat.get lu i k /. pivot in
      Mat.set lu i k m;
      if m <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (m *. Mat.get lu k j))
        done
    done
  done;
  match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      let rc = rcond_estimate ws in
      if rc < g.Guard.rcond_min then begin
        (* report the weakest pivot, the one that bounds the estimate *)
        let idx = ref 0 and mn = ref infinity in
        for i = 0 to n - 1 do
          let d = Float.abs (Mat.get lu i i) in
          if d < !mn then begin
            mn := d;
            idx := i
          end
        done;
        raise (Singular { pivot_index = !idx; magnitude = !mn })
      end

let factor ?guard a =
  let ws = workspace (Mat.rows a) in
  factor_into ?guard ws a;
  ws

(* substitution into a caller-owned [x]; [b] and [x] must be distinct
   (the permuted load reads b out of order). *)
let solve_into { lu; perm; _ } b x =
  let n = Mat.rows lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_into: dimension mismatch";
  if b == x then invalid_arg "Lu.solve_into: b and x must not alias";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* forward substitution (unit lower) *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done

let solve f b =
  let x = Array.make (Array.length b) 0.0 in
  solve_into f b x;
  x

let solve_mat f b =
  let cols = Array.init (Mat.cols b) (fun j -> solve f (Mat.col b j)) in
  Mat.init (Mat.rows b) (Mat.cols b) (fun i j -> cols.(j).(i))

let det { lu; sign; _ } =
  let n = Mat.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let solve_system a b = solve (factor a) b
let inverse a = solve_mat (factor a) (Mat.identity (Mat.rows a))
