exception Rank_deficient of int

(* Householder vectors are stored below the diagonal of [qr] with the
   scaling factors in [beta]; the diagonal of R is in [rdiag]. *)
type t = { qr : Mat.t; beta : float array; rdiag : float array }

let factor a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factor: requires rows >= cols";
  let qr = Mat.copy a in
  let beta = Array.make n 0.0 in
  let rdiag = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* norm of column k below row k *)
    let nrm = ref 0.0 in
    for i = k to m - 1 do
      let x = Mat.get qr i k in
      nrm := !nrm +. (x *. x)
    done;
    let nrm = sqrt !nrm in
    if nrm = 0.0 then begin
      beta.(k) <- 0.0;
      rdiag.(k) <- 0.0
    end
    else begin
      let akk = Mat.get qr k k in
      let alpha = if akk >= 0.0 then -.nrm else nrm in
      (* v = x - alpha*e1, stored in place; v_k below *)
      Mat.set qr k k (akk -. alpha);
      let vtv = ref 0.0 in
      for i = k to m - 1 do
        let v = Mat.get qr i k in
        vtv := !vtv +. (v *. v)
      done;
      beta.(k) <- (if !vtv = 0.0 then 0.0 else 2.0 /. !vtv);
      rdiag.(k) <- alpha;
      (* apply H = I - beta v vT to remaining columns *)
      for j = k + 1 to n - 1 do
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (Mat.get qr i k *. Mat.get qr i j)
        done;
        let s = beta.(k) *. !dot in
        if s <> 0.0 then
          for i = k to m - 1 do
            Mat.set qr i j (Mat.get qr i j -. (s *. Mat.get qr i k))
          done
      done
    end
  done;
  { qr; beta; rdiag }

let r { qr; rdiag; _ } =
  let n = Mat.cols qr in
  Mat.init n n (fun i j ->
      if i = j then rdiag.(i) else if i < j then Mat.get qr i j else 0.0)

let apply_qt { qr; beta; _ } b =
  let m = Mat.rows qr and n = Mat.cols qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Array.copy b in
  for k = 0 to n - 1 do
    if beta.(k) <> 0.0 then begin
      let dot = ref 0.0 in
      for i = k to m - 1 do
        dot := !dot +. (Mat.get qr i k *. y.(i))
      done;
      let s = beta.(k) *. !dot in
      if s <> 0.0 then
        for i = k to m - 1 do
          y.(i) <- y.(i) -. (s *. Mat.get qr i k)
        done
    end
  done;
  y

let solve_r { qr; rdiag; _ } c =
  let n = Mat.cols qr in
  let scale = ref 0.0 in
  for k = 0 to n - 1 do
    scale := Float.max !scale (Float.abs rdiag.(k))
  done;
  let tol = !scale *. float_of_int n *. epsilon_float in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    if Float.abs rdiag.(i) <= tol then raise (Rank_deficient i);
    let acc = ref c.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get qr i j *. x.(j))
    done;
    x.(i) <- !acc /. rdiag.(i)
  done;
  x

let least_squares a b =
  let f = factor a in
  solve_r f (apply_qt f b)

(* Same diagonal-ratio estimator Lu/Clu expose: cheap, read-only, and
   honest about triangular conditioning without a full condition solve. *)
let rcond_estimate { qr; rdiag; _ } =
  let n = Mat.cols qr in
  if n = 0 then 1.0
  else begin
    let mn = ref Float.infinity and mx = ref 0.0 in
    for k = 0 to n - 1 do
      let a = Float.abs rdiag.(k) in
      if a < !mn then mn := a;
      if a > !mx then mx := a
    done;
    if !mx = 0.0 then 0.0 else !mn /. !mx
  end

let residual_norm a x b = Vec.norm2 (Vec.sub (Mat.mulv a x) b)

(* --- workspace (in-place, allocation-free) factorization ------------- *)

type ws = {
  mutable wm : Mat.t option;  (** cached [ws_matrix] storage *)
  mutable beta_b : float array;
  mutable rdiag_b : float array;
  mutable dots : float array;  (** reflector/column dot scratch *)
  mutable qtb : float array;  (** [least_squares_into] rhs scratch *)
  mutable last_n : int;
      (** columns of the most recent [factor_into]; the buffers grow
          monotonically, so this bounds the live prefix of [rdiag_b] *)
}

let workspace () =
  { wm = None; beta_b = [||]; rdiag_b = [||]; dots = [||]; qtb = [||]; last_n = 0 }

let ws_matrix ws ~rows ~cols =
  match ws.wm with
  | Some m when Mat.rows m = rows && Mat.cols m = cols ->
      Array.fill (Mat.unsafe_data m) 0 (rows * cols) 0.0;
      m
  | _ ->
      let m = Mat.create rows cols in
      ws.wm <- Some m;
      m

let ensure_cap ws ~m ~n =
  if Array.length ws.beta_b < n then begin
    ws.beta_b <- Array.make n 0.0;
    ws.rdiag_b <- Array.make n 0.0;
    ws.dots <- Array.make n 0.0
  end;
  if Array.length ws.qtb < m then ws.qtb <- Array.make m 0.0

(* In-place Householder factorization of [a] (contents consumed), tau and
   diagonal buffers reused from [ws]. The trailing-column update runs as
   two row-major passes (dot accumulation, then subtraction) over the
   flat storage: per element the arithmetic — and hence the result bit
   pattern — is exactly that of [factor], but the walk is cache-friendly
   and allocation-free. *)
let factor_into ws a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factor_into: requires rows >= cols";
  ensure_cap ws ~m ~n;
  ws.last_n <- n;
  let d = Mat.unsafe_data a in
  let beta = ws.beta_b and rdiag = ws.rdiag_b and dots = ws.dots in
  for k = 0 to n - 1 do
    let nrm = ref 0.0 in
    let idx = ref ((k * n) + k) in
    for _ = k to m - 1 do
      let x = Array.unsafe_get d !idx in
      nrm := !nrm +. (x *. x);
      idx := !idx + n
    done;
    let nrm = sqrt !nrm in
    if nrm = 0.0 then begin
      beta.(k) <- 0.0;
      rdiag.(k) <- 0.0
    end
    else begin
      let akk = Array.unsafe_get d ((k * n) + k) in
      let alpha = if akk >= 0.0 then -.nrm else nrm in
      Array.unsafe_set d ((k * n) + k) (akk -. alpha);
      let vtv = ref 0.0 in
      let idx = ref ((k * n) + k) in
      for _ = k to m - 1 do
        let v = Array.unsafe_get d !idx in
        vtv := !vtv +. (v *. v);
        idx := !idx + n
      done;
      let bk = if !vtv = 0.0 then 0.0 else 2.0 /. !vtv in
      beta.(k) <- bk;
      rdiag.(k) <- alpha;
      if k + 1 < n then begin
        Array.fill dots (k + 1) (n - k - 1) 0.0;
        for i = k to m - 1 do
          let row = i * n in
          let vi = Array.unsafe_get d (row + k) in
          for j = k + 1 to n - 1 do
            Array.unsafe_set dots j
              (Array.unsafe_get dots j +. (vi *. Array.unsafe_get d (row + j)))
          done
        done;
        for j = k + 1 to n - 1 do
          Array.unsafe_set dots j (bk *. Array.unsafe_get dots j)
        done;
        for i = k to m - 1 do
          let row = i * n in
          let vi = Array.unsafe_get d (row + k) in
          for j = k + 1 to n - 1 do
            let s = Array.unsafe_get dots j in
            if s <> 0.0 then
              Array.unsafe_set d (row + j)
                (Array.unsafe_get d (row + j) -. (s *. vi))
          done
        done
      end
    end
  done;
  { qr = a; beta; rdiag }

let apply_qt_into t ?(off = 0) y =
  let m = Mat.rows t.qr and n = Mat.cols t.qr in
  if off < 0 || Array.length y < off + m then
    invalid_arg "Qr.apply_qt_into: dimension mismatch";
  let q = Mat.unsafe_data t.qr in
  for k = 0 to n - 1 do
    let bk = t.beta.(k) in
    if bk <> 0.0 then begin
      let dot = ref 0.0 in
      let idx = ref ((k * n) + k) in
      for i = k to m - 1 do
        dot := !dot +. (Array.unsafe_get q !idx *. Array.unsafe_get y (off + i));
        idx := !idx + n
      done;
      let s = bk *. !dot in
      if s <> 0.0 then begin
        let idx = ref ((k * n) + k) in
        for i = k to m - 1 do
          Array.unsafe_set y (off + i)
            (Array.unsafe_get y (off + i) -. (s *. Array.unsafe_get q !idx));
          idx := !idx + n
        done
      end
    end
  done

let apply_qt_mat t bmat =
  let m = Mat.rows t.qr and n = Mat.cols t.qr in
  if Mat.rows bmat <> m then invalid_arg "Qr.apply_qt_mat: dimension mismatch";
  let nb = Mat.cols bmat in
  let q = Mat.unsafe_data t.qr and d = Mat.unsafe_data bmat in
  let dots = Array.make nb 0.0 in
  for k = 0 to n - 1 do
    let bk = t.beta.(k) in
    if bk <> 0.0 then begin
      Array.fill dots 0 nb 0.0;
      for i = k to m - 1 do
        let row = i * nb in
        let vi = Array.unsafe_get q ((i * n) + k) in
        for j = 0 to nb - 1 do
          Array.unsafe_set dots j
            (Array.unsafe_get dots j +. (vi *. Array.unsafe_get d (row + j)))
        done
      done;
      for j = 0 to nb - 1 do
        Array.unsafe_set dots j (bk *. Array.unsafe_get dots j)
      done;
      for i = k to m - 1 do
        let row = i * nb in
        let vi = Array.unsafe_get q ((i * n) + k) in
        for j = 0 to nb - 1 do
          let s = Array.unsafe_get dots j in
          if s <> 0.0 then
            Array.unsafe_set d (row + j)
              (Array.unsafe_get d (row + j) -. (s *. vi))
        done
      done
    end
  done

let r22_block t ~split dst dst_row =
  let n = Mat.cols t.qr in
  if split < 0 || split > n then invalid_arg "Qr.r22_block: bad split";
  let b = n - split in
  if Mat.cols dst < b || Mat.rows dst < dst_row + b then
    invalid_arg "Qr.r22_block: destination too small";
  for i = 0 to b - 1 do
    for j = 0 to b - 1 do
      let v =
        if i = j then t.rdiag.(split + i)
        else if i < j then Mat.get t.qr (split + i) (split + j)
        else 0.0
      in
      Mat.set dst (dst_row + i) j v
    done
  done

let apply_qt_block t ~split b dst dst_row =
  let m = Mat.rows t.qr and n = Mat.cols t.qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt_block: dimension mismatch";
  if split < 0 || split > n then invalid_arg "Qr.apply_qt_block: bad split";
  let y = Array.copy b in
  apply_qt_into t y;
  for i = split to n - 1 do
    dst.(dst_row + i - split) <- y.(i)
  done

(* back-substitution identical to [solve_r] but reading the rhs from a
   caller-owned buffer; the solution vector is the only allocation *)
let solve_r_of t c =
  let n = Mat.cols t.qr in
  let scale = ref 0.0 in
  for k = 0 to n - 1 do
    scale := Float.max !scale (Float.abs t.rdiag.(k))
  done;
  let tol = !scale *. float_of_int n *. epsilon_float in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    if Float.abs t.rdiag.(i) <= tol then raise (Rank_deficient i);
    let acc = ref c.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get t.qr i j *. x.(j))
    done;
    x.(i) <- !acc /. t.rdiag.(i)
  done;
  x

let last_rcond ws =
  let n = ws.last_n in
  if n = 0 then Float.nan
  else begin
    let mn = ref Float.infinity and mx = ref 0.0 in
    for k = 0 to n - 1 do
      let a = Float.abs ws.rdiag_b.(k) in
      if a < !mn then mn := a;
      if a > !mx then mx := a
    done;
    if !mx = 0.0 then 0.0 else !mn /. !mx
  end

let least_squares_into ws a b =
  let m = Mat.rows a in
  if Array.length b <> m then
    invalid_arg "Qr.least_squares_into: dimension mismatch";
  let t = factor_into ws a in
  let y = ws.qtb in
  Array.blit b 0 y 0 m;
  apply_qt_into t y;
  solve_r_of t y
