type pattern = {
  nrows : int;
  ncols : int;
  colptr : int array;
  rowind : int array;
}

type t = { pat : pattern; v : float array }
type ct = { cpat : pattern; re : float array; im : float array }

let nnz pat = pat.colptr.(pat.ncols)

(* occurrences are encoded as [c * nrows + r] so column-major order is
   plain integer order; nrows·ncols stays far below 2^62 for any
   circuit this engine can hold *)
let compile ~nrows ~ncols occ =
  if nrows <= 0 || ncols <= 0 then invalid_arg "Sp.compile: empty shape";
  Array.iter
    (fun (r, c) ->
      if r < 0 || r >= nrows || c < 0 || c >= ncols then
        invalid_arg "Sp.compile: entry out of range")
    occ;
  let keys = Array.map (fun (r, c) -> (c * nrows) + r) occ in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  let m = Array.length sorted in
  let uniq = Array.make (max 1 m) 0 in
  let u = ref 0 in
  for i = 0 to m - 1 do
    if !u = 0 || uniq.(!u - 1) <> sorted.(i) then begin
      uniq.(!u) <- sorted.(i);
      incr u
    end
  done;
  let nz = !u in
  let colptr = Array.make (ncols + 1) 0 in
  let rowind = Array.make nz 0 in
  for i = 0 to nz - 1 do
    let c = uniq.(i) / nrows in
    rowind.(i) <- uniq.(i) - (c * nrows);
    colptr.(c + 1) <- colptr.(c + 1) + 1
  done;
  for c = 0 to ncols - 1 do
    colptr.(c + 1) <- colptr.(c + 1) + colptr.(c)
  done;
  let pat = { nrows; ncols; colptr; rowind } in
  (* slot per occurrence: binary search over the deduplicated keys —
     they are globally sorted, so the value index is the key's rank *)
  let rank key =
    let lo = ref 0 and hi = ref (nz - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if uniq.(mid) < key then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (pat, Array.map rank keys)

let create pat = { pat; v = Array.make (max 1 (nnz pat)) 0.0 }
let clear t = Array.fill t.v 0 (Array.length t.v) 0.0

let find pat r c =
  if r < 0 || r >= pat.nrows || c < 0 || c >= pat.ncols then None
  else begin
    let lo = ref pat.colptr.(c) and hi = ref (pat.colptr.(c + 1) - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let row = pat.rowind.(mid) in
      if row = r then found := Some mid
      else if row < r then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let get t r c = match find t.pat r c with None -> 0.0 | Some k -> t.v.(k)

let of_triplets ~nrows ~ncols trips =
  let occ = Array.map (fun (r, c, _) -> (r, c)) trips in
  let pat, slots = compile ~nrows ~ncols occ in
  let t = create pat in
  Array.iteri (fun k (_, _, x) -> t.v.(slots.(k)) <- t.v.(slots.(k)) +. x) trips;
  t

let of_dense ?(drop = 0.0) m =
  let nrows = Mat.rows m and ncols = Mat.cols m in
  let trips = ref [] in
  for c = ncols - 1 downto 0 do
    for r = nrows - 1 downto 0 do
      let x = Mat.get m r c in
      if Float.abs x > drop || (x <> 0.0 && drop = 0.0) then
        trips := (r, c, x) :: !trips
    done
  done;
  of_triplets ~nrows ~ncols (Array.of_list !trips)

let to_dense t =
  let m = Mat.create t.pat.nrows t.pat.ncols in
  for c = 0 to t.pat.ncols - 1 do
    for p = t.pat.colptr.(c) to t.pat.colptr.(c + 1) - 1 do
      Mat.set m t.pat.rowind.(p) c t.v.(p)
    done
  done;
  m

let mulv_into t x y =
  let pat = t.pat in
  if Array.length x <> pat.ncols || Array.length y <> pat.nrows then
    invalid_arg "Sp.mulv_into: dimension mismatch";
  if x == y then invalid_arg "Sp.mulv_into: x and y must not alias";
  Array.fill y 0 pat.nrows 0.0;
  for c = 0 to pat.ncols - 1 do
    let xc = x.(c) in
    for p = pat.colptr.(c) to pat.colptr.(c + 1) - 1 do
      y.(pat.rowind.(p)) <- y.(pat.rowind.(p)) +. (t.v.(p) *. xc)
    done
  done

let mulv t x =
  let y = Array.make t.pat.nrows 0.0 in
  mulv_into t x y;
  y

(* Greedy minimum degree on the quotient-free symmetrized graph:
   eliminate the minimum-degree vertex, join its neighbours into a
   clique, repeat. Simple set-based bookkeeping is enough here — the
   ordering runs once per compiled pattern and is cached by the LU
   workspaces, and the clique updates are bounded by the fill they
   predict. A lazy-deletion binary heap keeps vertex selection
   O(log n) under degree updates. *)
module IS = Set.Make (Int)

type heap = { mutable hd : int array; mutable hv : int array; mutable hlen : int }

let mindeg pat =
  if pat.nrows <> pat.ncols then invalid_arg "Sp.mindeg: pattern not square";
  let n = pat.ncols in
  let adj = Array.make n IS.empty in
  for c = 0 to n - 1 do
    for p = pat.colptr.(c) to pat.colptr.(c + 1) - 1 do
      let r = pat.rowind.(p) in
      if r <> c then begin
        adj.(r) <- IS.add c adj.(r);
        adj.(c) <- IS.add r adj.(c)
      end
    done
  done;
  (* binary min-heap of (degree, vertex) with lazy deletion *)
  let h = { hd = Array.make (max 4 (4 * n)) 0; hv = Array.make (max 4 (4 * n)) 0; hlen = 0 } in
  let swap i j =
    let td = h.hd.(i) and tv = h.hv.(i) in
    h.hd.(i) <- h.hd.(j);
    h.hv.(i) <- h.hv.(j);
    h.hd.(j) <- td;
    h.hv.(j) <- tv
  in
  let push d v =
    if h.hlen = Array.length h.hd then begin
      let nd = Array.make (2 * h.hlen) 0 and nv = Array.make (2 * h.hlen) 0 in
      Array.blit h.hd 0 nd 0 h.hlen;
      Array.blit h.hv 0 nv 0 h.hlen;
      h.hd <- nd;
      h.hv <- nv
    end;
    let i = ref h.hlen in
    h.hlen <- h.hlen + 1;
    h.hd.(!i) <- d;
    h.hv.(!i) <- v;
    let up = ref true in
    while !up && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.hd.(p) > h.hd.(!i) then begin
        swap p !i;
        i := p
      end
      else up := false
    done
  in
  let pop () =
    let d = h.hd.(0) and v = h.hv.(0) in
    h.hlen <- h.hlen - 1;
    h.hd.(0) <- h.hd.(h.hlen);
    h.hv.(0) <- h.hv.(h.hlen);
    let i = ref 0 in
    let down = ref true in
    while !down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.hlen && h.hd.(l) < h.hd.(!s) then s := l;
      if r < h.hlen && h.hd.(r) < h.hd.(!s) then s := r;
      if !s <> !i then begin
        swap !s !i;
        i := !s
      end
      else down := false
    done;
    (d, v)
  in
  for v = 0 to n - 1 do
    push (IS.cardinal adj.(v)) v
  done;
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let v = ref (-1) in
    while !v < 0 do
      let d, cand = pop () in
      if (not eliminated.(cand)) && IS.cardinal adj.(cand) = d then v := cand
    done;
    let v = !v in
    order.(k) <- v;
    eliminated.(v) <- true;
    let nbrs = adj.(v) in
    IS.iter
      (fun u ->
        let a = IS.remove v (IS.union adj.(u) nbrs) in
        let a = IS.remove u a in
        adj.(u) <- a;
        push (IS.cardinal a) u)
      nbrs;
    adj.(v) <- IS.empty
  done;
  order

let ccreate pat =
  let m = max 1 (nnz pat) in
  { cpat = pat; re = Array.make m 0.0; im = Array.make m 0.0 }

let pencil_into dst g c (s : Cx.t) =
  if not (dst.cpat == g.pat && g.pat == c.pat) then
    invalid_arg "Sp.pencil_into: pattern mismatch";
  let m = nnz dst.cpat in
  let sre = s.Complex.re and sim = s.Complex.im in
  for k = 0 to m - 1 do
    dst.re.(k) <- g.v.(k) +. (sre *. c.v.(k));
    dst.im.(k) <- sim *. c.v.(k)
  done

let cget t r c =
  match find t.cpat r c with
  | None -> Cx.zero
  | Some k -> { Complex.re = t.re.(k); im = t.im.(k) }

let cto_dense t =
  let m = Cmat.create t.cpat.nrows t.cpat.ncols in
  for c = 0 to t.cpat.ncols - 1 do
    for p = t.cpat.colptr.(c) to t.cpat.colptr.(c + 1) - 1 do
      Cmat.set m t.cpat.rowind.(p) c { Complex.re = t.re.(p); im = t.im.(p) }
    done
  done;
  m

let cmulv_into t x y =
  let pat = t.cpat in
  if Array.length x <> pat.ncols || Array.length y <> pat.nrows then
    invalid_arg "Sp.cmulv_into: dimension mismatch";
  if x == y then invalid_arg "Sp.cmulv_into: x and y must not alias";
  Array.fill y 0 pat.nrows Cx.zero;
  for c = 0 to pat.ncols - 1 do
    let xc = x.(c) in
    let xre = xc.Complex.re and xim = xc.Complex.im in
    for p = pat.colptr.(c) to pat.colptr.(c + 1) - 1 do
      let r = pat.rowind.(p) in
      let yr = y.(r) in
      y.(r) <-
        {
          Complex.re = yr.Complex.re +. (t.re.(p) *. xre) -. (t.im.(p) *. xim);
          im = yr.Complex.im +. (t.re.(p) *. xim) +. (t.im.(p) *. xre);
        }
    done
  done
