(** Householder QR factorization and linear least squares.

    The vector-fitting identification steps are all overdetermined
    least-squares problems; they are solved here via QR without forming
    normal equations. *)

exception Rank_deficient of int

type t
(** Implicit factorization [A = Q·R] of an [m×n] matrix with [m ≥ n]. *)

val factor : Mat.t -> t

val r : t -> Mat.t
(** The upper-triangular [n×n] factor. *)

val apply_qt : t -> Vec.t -> Vec.t
(** [apply_qt f b] computes [Qᵀ b] (length [m]). *)

val solve_r : t -> Vec.t -> Vec.t
(** Back-substitute [R x = c] given the first [n] entries of [c].
    Raises {!Rank_deficient} on a negligible diagonal. *)

val least_squares : Mat.t -> Vec.t -> Vec.t
(** Minimize [‖A x − b‖₂] for [A] of size [m×n], [m ≥ n], full rank. *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [‖A x − b‖₂]; a convenience for tests. *)

val rcond_estimate : t -> float
(** Cheap reciprocal-condition estimate of [R]: the ratio of smallest to
    largest [|rdiag|]. [1.0] for [n = 0], [0.0] for an exactly singular
    diagonal. Same estimator family as [Lu.rcond_estimate]. *)

(** {1 Workspace API}

    Allocation-free factorization for hot loops (the fast-VF relocation
    kernel). A {!ws} owns reusable tau/diagonal/scratch buffers plus one
    cached matrix; results of {!factor_into} alias the workspace and are
    invalidated by the next [factor_into] on the same [ws]. Workspaces are
    not thread-safe — use one per worker domain. *)

type ws

val workspace : unit -> ws
(** A fresh, empty workspace. Buffers grow lazily on first use. *)

val ws_matrix : ws -> rows:int -> cols:int -> Mat.t
(** A cached [rows×cols] matrix owned by [ws], zeroed on every call.
    Reused across calls with identical dimensions; reallocated otherwise.
    The same storage backs consecutive calls, so at most one live
    [ws_matrix] per workspace. *)

val factor_into : ws -> Mat.t -> t
(** In-place Householder factorization: [a]'s contents are destroyed and
    become the reflector/R storage of the result. Bit-identical results
    to {!factor} with zero large allocations; tau and diagonal buffers
    come from [ws] and are overwritten by the next [factor_into]. *)

val apply_qt_into : t -> ?off:int -> Vec.t -> unit
(** [apply_qt_into f y] overwrites [y.(off..off+m-1)] with [Qᵀ] applied to
    that slice, in place ([off] defaults to [0]). Same arithmetic as
    {!apply_qt}, no allocation. *)

val apply_qt_mat : t -> Mat.t -> unit
(** [apply_qt_mat f b] overwrites the [m×k] matrix [b] with [Qᵀ·B],
    column-wise bit-identical to {!apply_qt}. Used to push a shared
    left-block factorization onto per-element right blocks. *)

val r22_block : t -> split:int -> Mat.t -> int -> unit
(** [r22_block f ~split dst row] writes the trailing
    [(n-split)×(n-split)] block of [R] into [dst] starting at [row]
    (columns [0..n-split-1]), zeros included below the diagonal. *)

val apply_qt_block : t -> split:int -> Vec.t -> Vec.t -> int -> unit
(** [apply_qt_block f ~split b dst row] computes [Qᵀb] and stores entries
    [split..n-1] into [dst] at offset [row] — the right-hand-side block
    paired with {!r22_block}. *)

val least_squares_into : ws -> Mat.t -> Vec.t -> Vec.t
(** Like {!least_squares} (bit-identical solution) but factors [a] in
    place — destroying it — and stages [Qᵀb] in workspace scratch. Only
    the returned solution vector is allocated. *)

val last_rcond : ws -> float
(** {!rcond_estimate} of the most recent {!factor_into} (or
    {!least_squares_into}) on this workspace; [nan] before the first
    factorization. Read-only — telemetry for the obs rcond series. *)
