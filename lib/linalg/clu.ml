exception Singular of int

type t = { lu : Cmat.t; perm : int array }

let workspace n =
  if n <= 0 then invalid_arg "Clu.workspace: size must be positive";
  { lu = Cmat.create n n; perm = Array.init n (fun i -> i) }

(* In-place Doolittle with partial pivoting, overwriting the workspace.
   This is the one implementation; [factor] wraps it with a fresh
   workspace, so both paths perform identical floating-point ops. *)
let factor_into ws a =
  let n = Cmat.rows a in
  if Cmat.cols a <> n then invalid_arg "Clu.factor_into: matrix not square";
  if Cmat.rows ws.lu <> n then invalid_arg "Clu.factor_into: workspace size mismatch";
  let lu = ws.lu and perm = ws.perm in
  Cmat.blit ~src:a ~dst:lu;
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Cx.norm (Cmat.get lu i k) > Cx.norm (Cmat.get lu !piv k) then piv := i
    done;
    if !piv <> k then begin
      Cmat.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp
    end;
    let pivot = Cmat.get lu k k in
    if Cx.norm pivot = 0.0 || not (Cx.is_finite pivot) then raise (Singular k);
    for i = k + 1 to n - 1 do
      let luik = Cmat.get lu i k in
      let m = Cx.(luik /: pivot) in
      Cmat.set lu i k m;
      if Cx.norm m <> 0.0 then
        for j = k + 1 to n - 1 do
          let luij = Cmat.get lu i j and lukj = Cmat.get lu k j in
          Cmat.set lu i j Cx.(luij -: (m *: lukj))
        done
    done
  done

let factor a =
  let ws = workspace (Cmat.rows a) in
  factor_into ws a;
  ws

(* Forward/back substitution into a caller-owned [x]; [x] and [b] must
   be distinct buffers (the permuted load reads b out of order). *)
let solve_into { lu; perm } b x =
  let n = Cmat.rows lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Clu.solve_into: dimension mismatch";
  if b == x then invalid_arg "Clu.solve_into: b and x must not alias";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      let luij = Cmat.get lu i j in
      acc := Cx.(!acc -: (luij *: x.(j)))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      let luij = Cmat.get lu i j in
      acc := Cx.(!acc -: (luij *: x.(j)))
    done;
    let luii = Cmat.get lu i i in
    x.(i) <- Cx.(!acc /: luii)
  done

let solve f b =
  let x = Array.make (Array.length b) Cx.zero in
  solve_into f b x;
  x

let solve_mat f b =
  let n = Cmat.rows b and m = Cmat.cols b in
  let cols = Array.init m (fun j -> solve f (Array.init n (fun i -> Cmat.get b i j))) in
  Cmat.init n m (fun i j -> cols.(j).(i))

let solve_system a b = solve (factor a) b
