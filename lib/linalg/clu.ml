exception Singular of { pivot_index : int; magnitude : float }

let () =
  Printexc.register_printer (function
    | Singular { pivot_index; magnitude } ->
        Some
          (Printf.sprintf "Clu.Singular: pivot %d has magnitude %.3e"
             pivot_index magnitude)
    | _ -> None)

(* same floor as Lu: a denormal pivot magnitude overflows multipliers *)
let tiny_pivot = 1e-300

type t = { lu : Cmat.t; perm : int array }

let workspace n =
  if n <= 0 then invalid_arg "Clu.workspace: size must be positive";
  { lu = Cmat.create n n; perm = Array.init n (fun i -> i) }

(* diagonal-ratio reciprocal-condition proxy, as in Lu.rcond_estimate *)
let rcond_estimate { lu; _ } =
  let n = Cmat.rows lu in
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Cx.norm (Cmat.get lu i i) in
    if d < !mn then mn := d;
    if d > !mx then mx := d
  done;
  if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx

(* In-place Doolittle with partial pivoting, overwriting the workspace.
   This is the one implementation; [factor] wraps it with a fresh
   workspace, so both paths perform identical floating-point ops. *)
let factor_into ?guard ws a =
  let n = Cmat.rows a in
  if Cmat.cols a <> n then invalid_arg "Clu.factor_into: matrix not square";
  if Cmat.rows ws.lu <> n then invalid_arg "Clu.factor_into: workspace size mismatch";
  let inject = Fault.should_fire "clu.pivot_zero" in
  let lu = ws.lu and perm = ws.perm in
  Cmat.blit ~src:a ~dst:lu;
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Cx.norm (Cmat.get lu i k) > Cx.norm (Cmat.get lu !piv k) then piv := i
    done;
    if !piv <> k then begin
      Cmat.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp
    end;
    let pivot = if inject && k = 0 then Cx.zero else Cmat.get lu k k in
    if Cx.norm pivot < tiny_pivot || not (Cx.is_finite pivot) then
      raise (Singular { pivot_index = k; magnitude = Cx.norm pivot });
    for i = k + 1 to n - 1 do
      let luik = Cmat.get lu i k in
      let m = Cx.(luik /: pivot) in
      Cmat.set lu i k m;
      if Cx.norm m <> 0.0 then
        for j = k + 1 to n - 1 do
          let luij = Cmat.get lu i j and lukj = Cmat.get lu k j in
          Cmat.set lu i j Cx.(luij -: (m *: lukj))
        done
    done
  done;
  match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      let rc = rcond_estimate ws in
      if rc < g.Guard.rcond_min then begin
        let idx = ref 0 and mn = ref infinity in
        for i = 0 to n - 1 do
          let d = Cx.norm (Cmat.get lu i i) in
          if d < !mn then begin
            mn := d;
            idx := i
          end
        done;
        raise (Singular { pivot_index = !idx; magnitude = !mn })
      end

let factor ?guard a =
  let ws = workspace (Cmat.rows a) in
  factor_into ?guard ws a;
  ws

(* Forward/back substitution into a caller-owned [x]; [x] and [b] must
   be distinct buffers (the permuted load reads b out of order). *)
let solve_into { lu; perm } b x =
  let n = Cmat.rows lu in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Clu.solve_into: dimension mismatch";
  if b == x then invalid_arg "Clu.solve_into: b and x must not alias";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      let luij = Cmat.get lu i j in
      acc := Cx.(!acc -: (luij *: x.(j)))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      let luij = Cmat.get lu i j in
      acc := Cx.(!acc -: (luij *: x.(j)))
    done;
    let luii = Cmat.get lu i i in
    x.(i) <- Cx.(!acc /: luii)
  done

let solve f b =
  let x = Array.make (Array.length b) Cx.zero in
  solve_into f b x;
  x

let solve_mat f b =
  let n = Cmat.rows b and m = Cmat.cols b in
  let cols = Array.init m (fun j -> solve f (Array.init n (fun i -> Cmat.get b i j))) in
  Cmat.init n m (fun i j -> cols.(j).(i))

let solve_system a b = solve (factor a) b
