(** LU factorization with partial pivoting for dense complex matrices.

    Used to evaluate the MNA pencil solves [(G + s·C)⁻¹ B] that turn
    Jacobian snapshots into transfer-function samples.

    The factorization state doubles as a reusable workspace: the TFT
    sweep allocates one {!workspace} per domain and re-factors into it
    for every (snapshot, frequency) pair, so the hot path allocates
    nothing. [factor] and [solve] are thin wrappers over the [_into]
    kernels and perform bit-identical floating-point operations. *)

exception Singular of int

type t
(** A factorization [P*A = L*U]; also the caller-owned workspace that
    {!factor_into} overwrites. *)

val workspace : int -> t
(** [workspace n] preallocates buffers for [n×n] factorizations. The
    contents are meaningless until the first {!factor_into}. *)

val factor_into : t -> Cmat.t -> unit
(** [factor_into ws a] factors [a] into [ws], fully overwriting any
    previous factorization. [a] is left untouched. Raises {!Singular}
    on a zero or non-finite pivot, and [Invalid_argument] if [ws] was
    created for a different size. *)

val factor : Cmat.t -> t
(** [factor a] is [factor_into] on a fresh workspace. *)

val solve_into : t -> Cmat.vec -> Cmat.vec -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x]. [b] and [x] must be distinct buffers; [b] is left
    untouched. *)

val solve : t -> Cmat.vec -> Cmat.vec
(** Allocating wrapper over {!solve_into}. *)

val solve_mat : t -> Cmat.t -> Cmat.t
(** Solve [A X = B] column-wise. *)

val solve_system : Cmat.t -> Cmat.vec -> Cmat.vec
(** One-shot [factor] + [solve]. *)
