(** LU factorization with partial pivoting for dense complex matrices.

    Used to evaluate the MNA pencil solves [(G + s·C)⁻¹ B] that turn
    Jacobian snapshots into transfer-function samples.

    The factorization state doubles as a reusable workspace: the TFT
    sweep allocates one {!workspace} per domain and re-factors into it
    for every (snapshot, frequency) pair, so the hot path allocates
    nothing. [factor] and [solve] are thin wrappers over the [_into]
    kernels and perform bit-identical floating-point operations. *)

exception Singular of { pivot_index : int; magnitude : float }
(** Raised when elimination meets a pivot whose norm is zero,
    non-finite or below the tiny-pivot floor (1e-300), or — under a
    [?guard] — when the finished factorization's reciprocal-condition
    estimate falls below [Guard.rcond_min]. *)

type t
(** A factorization [P*A = L*U]; also the caller-owned workspace that
    {!factor_into} overwrites. *)

val workspace : int -> t
(** [workspace n] preallocates buffers for [n×n] factorizations. The
    contents are meaningless until the first {!factor_into}. *)

val factor_into : ?guard:Guard.t -> t -> Cmat.t -> unit
(** [factor_into ws a] factors [a] into [ws], fully overwriting any
    previous factorization. [a] is left untouched. Raises {!Singular}
    on a zero or non-finite pivot — or, with a [?guard], when
    {!rcond_estimate} of the result falls below [guard.rcond_min] —
    and [Invalid_argument] if [ws] was created for a different size.
    Hosts the ["clu.pivot_zero"] fault probe. *)

val factor : ?guard:Guard.t -> Cmat.t -> t
(** [factor a] is [factor_into] on a fresh workspace. *)

val rcond_estimate : t -> float
(** Diagonal-ratio reciprocal-condition proxy of a finished
    factorization: [min |U_ii| / max |U_ii|], in [0, 1]; 0 when the
    diagonal is degenerate or non-finite. *)

val solve_into : t -> Cmat.vec -> Cmat.vec -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x]. [b] and [x] must be distinct buffers; [b] is left
    untouched. *)

val solve : t -> Cmat.vec -> Cmat.vec
(** Allocating wrapper over {!solve_into}. *)

val solve_mat : t -> Cmat.t -> Cmat.t
(** Solve [A X = B] column-wise. *)

val solve_system : Cmat.t -> Cmat.vec -> Cmat.vec
(** One-shot [factor] + [solve]. *)
