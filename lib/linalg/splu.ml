exception Singular of { pivot_index : int; magnitude : float }

let () =
  Printexc.register_printer (function
    | Singular { pivot_index; magnitude } ->
        Some
          (Printf.sprintf "Splu.Singular: pivot %d has magnitude %.3e"
             pivot_index magnitude)
    | _ -> None)

(* same floor as Lu: a denormal pivot magnitude overflows multipliers *)
let tiny_pivot = 1e-300

(* Keeping the diagonal when it is within this factor of the column
   maximum preserves the fill predicted by the minimum-degree ordering;
   anything smaller falls back to the true column maximum (partial
   pivoting), trading fill for stability. *)
let diag_threshold = 0.1

type t = {
  n : int;
  pat : Sp.pattern;  (* identity key: factor_into requires a.pat == pat *)
  q : int array;  (* fill-reducing column order *)
  pinv : int array;  (* original row -> pivot position *)
  (* L and U in CSC over pivot coordinates; L has a leading unit
     diagonal per column, U a trailing diagonal. Growable. *)
  lp : int array;
  up : int array;
  mutable li : int array;
  mutable lx : float array;
  mutable lnz : int;
  mutable ui : int array;
  mutable ux : float array;
  mutable unz : int;
  (* scatter workspace: x all-zero between columns *)
  x : float array;
  w : float array;  (* solve scratch *)
  reach : int array;
  stack : int array;
  pstack : int array;
  mark : int array;
  mutable factored : bool;
}

let workspace (pat : Sp.pattern) =
  if pat.Sp.nrows <> pat.Sp.ncols then
    invalid_arg "Splu.workspace: pattern not square";
  let n = pat.Sp.nrows in
  let cap = max (4 * Sp.nnz pat) (2 * n) in
  {
    n;
    pat;
    q = Sp.mindeg pat;
    pinv = Array.make n (-1);
    lp = Array.make (n + 1) 0;
    up = Array.make (n + 1) 0;
    li = Array.make cap 0;
    lx = Array.make cap 0.0;
    lnz = 0;
    ui = Array.make cap 0;
    ux = Array.make cap 0.0;
    unz = 0;
    x = Array.make n 0.0;
    w = Array.make n 0.0;
    reach = Array.make n 0;
    stack = Array.make n 0;
    pstack = Array.make n 0;
    mark = Array.make n (-1);
    factored = false;
  }

let ws_matches ws (pat : Sp.pattern) = ws.pat == pat
let lu_nnz ws = ws.lnz + ws.unz

let push_l ws i v =
  if ws.lnz = Array.length ws.li then begin
    let c = 2 * ws.lnz in
    let ni = Array.make c 0 and nx = Array.make c 0.0 in
    Array.blit ws.li 0 ni 0 ws.lnz;
    Array.blit ws.lx 0 nx 0 ws.lnz;
    ws.li <- ni;
    ws.lx <- nx
  end;
  ws.li.(ws.lnz) <- i;
  ws.lx.(ws.lnz) <- v;
  ws.lnz <- ws.lnz + 1

let push_u ws i v =
  if ws.unz = Array.length ws.ui then begin
    let c = 2 * ws.unz in
    let ni = Array.make c 0 and nx = Array.make c 0.0 in
    Array.blit ws.ui 0 ni 0 ws.unz;
    Array.blit ws.ux 0 nx 0 ws.unz;
    ws.ui <- ni;
    ws.ux <- nx
  end;
  ws.ui.(ws.unz) <- i;
  ws.ux.(ws.unz) <- v;
  ws.unz <- ws.unz + 1

(* depth-first reach of column [col]'s pattern through the columns of L
   factored so far; fills ws.reach.(top..n-1) in reverse postorder
   (ancestors first), which is the update order the numeric triangular
   solve needs. Row indices in L are original rows until the final
   remap in factor_into. *)
let reach_of ws (a : Sp.t) ~col ~k =
  let pat = a.Sp.pat in
  let top = ref ws.n in
  let start_of j = if ws.pinv.(j) < 0 then 0 else ws.lp.(ws.pinv.(j)) + 1 in
  let end_of j = if ws.pinv.(j) < 0 then 0 else ws.lp.(ws.pinv.(j) + 1) in
  for p = pat.Sp.colptr.(col) to pat.Sp.colptr.(col + 1) - 1 do
    let j0 = pat.Sp.rowind.(p) in
    if ws.mark.(j0) <> k then begin
      let head = ref 0 in
      ws.stack.(0) <- j0;
      ws.mark.(j0) <- k;
      ws.pstack.(0) <- start_of j0;
      while !head >= 0 do
        let j = ws.stack.(!head) in
        let pend = end_of j in
        let p = ref ws.pstack.(!head) in
        let pushed = ref false in
        while (not !pushed) && !p < pend do
          let i = ws.li.(!p) in
          incr p;
          if ws.mark.(i) <> k then begin
            ws.mark.(i) <- k;
            ws.pstack.(!head) <- !p;
            incr head;
            ws.stack.(!head) <- i;
            ws.pstack.(!head) <- start_of i;
            pushed := true
          end
        done;
        if not !pushed then begin
          decr head;
          decr top;
          ws.reach.(!top) <- j
        end
      done
    end
  done;
  !top

let factor_into ?guard ws (a : Sp.t) =
  if not (a.Sp.pat == ws.pat) then
    invalid_arg "Splu.factor_into: matrix pattern does not match workspace";
  let inject = Fault.should_fire "sp.singular" in
  let n = ws.n in
  ws.lnz <- 0;
  ws.unz <- 0;
  ws.factored <- false;
  Array.fill ws.pinv 0 n (-1);
  Array.fill ws.mark 0 n (-1);
  let apat = a.Sp.pat in
  for k = 0 to n - 1 do
    ws.lp.(k) <- ws.lnz;
    ws.up.(k) <- ws.unz;
    let col = ws.q.(k) in
    let top = reach_of ws a ~col ~k in
    (* scatter A(:,col) and run the sparse triangular solve x = L \ a *)
    for p = top to n - 1 do
      ws.x.(ws.reach.(p)) <- 0.0
    done;
    for p = apat.Sp.colptr.(col) to apat.Sp.colptr.(col + 1) - 1 do
      ws.x.(apat.Sp.rowind.(p)) <- a.Sp.v.(p)
    done;
    for p = top to n - 1 do
      let j = ws.reach.(p) in
      let jq = ws.pinv.(j) in
      if jq >= 0 then begin
        let xj = ws.x.(j) in
        for pp = ws.lp.(jq) + 1 to ws.lp.(jq + 1) - 1 do
          ws.x.(ws.li.(pp)) <- ws.x.(ws.li.(pp)) -. (ws.lx.(pp) *. xj)
        done
      end
    done;
    (* pivot: column max over not-yet-pivotal rows, preferring the
       diagonal when it is within diag_threshold of the max *)
    let ipiv = ref (-1) and amax = ref (-1.0) in
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) < 0 then begin
        let t = Float.abs ws.x.(i) in
        if t > !amax then begin
          amax := t;
          ipiv := i
        end
      end
    done;
    if
      !ipiv >= 0 && ws.mark.(col) = k
      && ws.pinv.(col) < 0
      && Float.abs ws.x.(col) >= diag_threshold *. !amax
      && Float.abs ws.x.(col) >= tiny_pivot
    then ipiv := col;
    if !ipiv < 0 then raise (Singular { pivot_index = k; magnitude = 0.0 });
    let pivot = if inject && k = 0 then 0.0 else ws.x.(!ipiv) in
    if Float.abs pivot < tiny_pivot || not (Float.is_finite pivot) then
      raise (Singular { pivot_index = k; magnitude = Float.abs pivot });
    (* gather U (already-pivotal rows), diagonal last *)
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) >= 0 then push_u ws ws.pinv.(i) ws.x.(i)
    done;
    push_u ws k pivot;
    ws.pinv.(!ipiv) <- k;
    (* L column: unit diagonal first, then the multipliers *)
    push_l ws !ipiv 1.0;
    for p = top to n - 1 do
      let i = ws.reach.(p) in
      if ws.pinv.(i) < 0 then push_l ws i (ws.x.(i) /. pivot);
      ws.x.(i) <- 0.0
    done
  done;
  ws.lp.(n) <- ws.lnz;
  ws.up.(n) <- ws.unz;
  (* remap L's row indices into pivot coordinates *)
  for p = 0 to ws.lnz - 1 do
    ws.li.(p) <- ws.pinv.(ws.li.(p))
  done;
  ws.factored <- true;
  match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      let mn = ref infinity and mx = ref 0.0 and idx = ref 0 in
      for k = 0 to n - 1 do
        let d = Float.abs ws.ux.(ws.up.(k + 1) - 1) in
        if d < !mn then begin
          mn := d;
          idx := k
        end;
        if d > !mx then mx := d
      done;
      let rc =
        if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx
      in
      if rc < g.Guard.rcond_min then
        raise (Singular { pivot_index = !idx; magnitude = !mn })

let factor ?guard a =
  let ws = workspace a.Sp.pat in
  factor_into ?guard ws a;
  ws

let rcond_estimate ws =
  if not ws.factored then 0.0
  else begin
    let mn = ref infinity and mx = ref 0.0 in
    for k = 0 to ws.n - 1 do
      let d = Float.abs ws.ux.(ws.up.(k + 1) - 1) in
      if d < !mn then mn := d;
      if d > !mx then mx := d
    done;
    if !mx = 0.0 || not (Float.is_finite !mx) then 0.0 else !mn /. !mx
  end

let solve_into ws b x =
  if not ws.factored then invalid_arg "Splu.solve_into: not factored";
  let n = ws.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Splu.solve_into: dimension mismatch";
  if b == x then invalid_arg "Splu.solve_into: b and x must not alias";
  let w = ws.w in
  for i = 0 to n - 1 do
    w.(ws.pinv.(i)) <- b.(i)
  done;
  (* forward: L is unit lower triangular in pivot coordinates *)
  for k = 0 to n - 1 do
    let wk = w.(k) in
    for p = ws.lp.(k) + 1 to ws.lp.(k + 1) - 1 do
      w.(ws.li.(p)) <- w.(ws.li.(p)) -. (ws.lx.(p) *. wk)
    done
  done;
  (* backward: U's diagonal is the last entry of each column *)
  for k = n - 1 downto 0 do
    let pd = ws.up.(k + 1) - 1 in
    let wk = w.(k) /. ws.ux.(pd) in
    w.(k) <- wk;
    for p = ws.up.(k) to pd - 1 do
      w.(ws.ui.(p)) <- w.(ws.ui.(p)) -. (ws.ux.(p) *. wk)
    done
  done;
  for k = 0 to n - 1 do
    x.(ws.q.(k)) <- w.(k)
  done

let solve ws b =
  let x = Array.make (Array.length b) 0.0 in
  solve_into ws b x;
  x
