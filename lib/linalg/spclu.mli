(** Sparse LU factorization of a complex CSC matrix ({!Sp.ct}).

    The complex twin of {!Splu}: left-looking Gilbert–Peierls columns,
    threshold partial pivoting on entry magnitudes, the same cached
    minimum-degree preordering, and {!Clu}-style workspace and
    [rcond_estimate] conventions. Built for the AC pencil [G + s·C]
    refilled over one compiled pattern per circuit. *)

exception Singular of { pivot_index : int; magnitude : float }

type t

val workspace : Sp.pattern -> t
(** Raises [Invalid_argument] on a non-square pattern. *)

val ws_matches : t -> Sp.pattern -> bool

val factor_into : ?guard:Guard.t -> t -> Sp.ct -> unit
(** Factor [P·A·Q = L·U]. The matrix must carry the workspace's
    pattern (physical equality). Raises {!Singular} on a pivot below
    [1e-300] or a guard rcond-floor breach. Fault site [sp.singular]
    forces a zero pivot in column 0. *)

val factor : ?guard:Guard.t -> Sp.ct -> t

val rcond_estimate : t -> float
(** min|U_ii| / max|U_ii|, as in {!Clu.rcond_estimate}. *)

val solve_into : t -> Cmat.vec -> Cmat.vec -> unit
(** [solve_into f b x] solves [A·x = b]. [b] and [x] must be distinct
    buffers. *)

val solve : t -> Cmat.vec -> Cmat.vec

val lu_nnz : t -> int
