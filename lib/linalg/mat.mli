(** Dense real matrices, row-major storage. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src] (same shape required). *)

val lincomb_into : t -> float -> t -> float -> t -> unit
(** [lincomb_into dst a ma b mb] overwrites [dst] with [a*ma + b*mb]:
    allocation-free matrix blends for time steppers. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mulv : t -> Vec.t -> Vec.t

val mulv_into : t -> Vec.t -> Vec.t -> unit
(** [mulv_into a x y] writes [a*x] into the caller-owned [y]; [x] and
    [y] must be distinct buffers. *)

val mulv_t : t -> Vec.t -> Vec.t
(** [mulv_t a x] computes [aᵀ x] without forming the transpose. *)

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit
val swap_rows : t -> int -> int -> unit
val map : (float -> float) -> t -> t
val frobenius : t -> float
val norm_inf : t -> float
(** Maximum absolute row sum. *)

val max_abs : t -> float
val approx_equal : ?tol:float -> t -> t -> bool
val random : Random.State.t -> int -> int -> t
(** Entries uniform in [-1, 1). *)

val pp : Format.formatter -> t -> unit

val unsafe_data : t -> float array
(** The raw row-major backing store ([rows*cols] floats, element [(i,j)]
    at index [i*cols + j]). For allocation-free in-place kernels inside
    {!Linalg} (QR/LU workspaces); mutating it mutates the matrix. *)
