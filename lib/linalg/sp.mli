(** Compressed-sparse-column matrices.

    A {!pattern} is an immutable sparsity structure (CSC: column
    pointers plus row indices, rows strictly ascending within each
    column). Value storage is split off so the engine can compile a
    pattern once per circuit and refill values in place on every
    linearization: {!t} carries real values, {!ct} carries complex
    values as separate re/im arrays over the same pattern, which makes
    the AC pencil [G + s·C] an elementwise fill when [G] and [C] share
    a (union) pattern. *)

type pattern = private {
  nrows : int;
  ncols : int;
  colptr : int array;  (** length [ncols + 1] *)
  rowind : int array;  (** length [nnz]; ascending within each column *)
}

type t = { pat : pattern; v : float array }
type ct = { cpat : pattern; re : float array; im : float array }

val compile : nrows:int -> ncols:int -> (int * int) array -> pattern * int array
(** [compile ~nrows ~ncols occurrences] builds the deduplicated CSC
    pattern of the given [(row, col)] occurrence sequence and returns
    it with a slot map: entry [k] is the value index the [k]-th
    occurrence accumulates into. Duplicate occurrences share a slot.
    Raises [Invalid_argument] on out-of-range indices. *)

val nnz : pattern -> int

val create : pattern -> t
(** Zero-valued matrix over the pattern. *)

val clear : t -> unit
(** Reset all stored values to 0 (the pattern is untouched). *)

val get : t -> int -> int -> float
(** Entry [(r, c)]; 0 when outside the pattern. Logarithmic in the
    column's entry count. *)

val find : pattern -> int -> int -> int option
(** Value index of entry [(r, c)], if present. *)

val of_triplets : nrows:int -> ncols:int -> (int * int * float) array -> t
(** Duplicate triplets are summed. *)

val of_dense : ?drop:float -> Mat.t -> t
(** Pattern of entries with [|x| > drop] (default: exact nonzeros). *)

val to_dense : t -> Mat.t

val mulv_into : t -> Vec.t -> Vec.t -> unit
(** [mulv_into a x y] sets [y := A·x]. [x] and [y] must not alias. *)

val mulv : t -> Vec.t -> Vec.t

val mindeg : pattern -> int array
(** Fill-reducing column ordering: greedy minimum degree on the
    symmetrized pattern of [A + Aᵀ]. Returns a permutation [q];
    eliminating columns in the order [q.(0), q.(1), …] keeps LU fill
    low. Requires a square pattern. *)

(** {1 Complex values over a shared pattern} *)

val ccreate : pattern -> ct

val pencil_into : ct -> t -> t -> Cx.t -> unit
(** [pencil_into dst g c s] fills [dst := g + s·c] elementwise. All
    three must share one pattern (physical equality), which is exactly
    what {!compile}-d union assembly produces. *)

val cget : ct -> int -> int -> Cx.t
val cto_dense : ct -> Cmat.t

val cmulv_into : ct -> Cmat.vec -> Cmat.vec -> unit
(** [cmulv_into a x y] sets [y := A·x] for complex [A], [x], [y].
    [x] and [y] must not alias. *)
