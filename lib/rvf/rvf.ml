module Ratfn = Ratfn
module Assemble = Assemble
module Recursion = Recursion

type config = {
  eps : float;
  freq_opts : Vf.Vfit.opts;
  state_opts : Vf.Vfit.opts;
  freq_start : int;
  freq_step : int;
  max_freq_poles : int;
  state_start : int;
  state_step : int;
  max_state_poles : int;
  include_dc_point : bool;
  min_imag_fraction : float;
}

let default_config =
  {
    eps = 1e-3;
    freq_opts = Vf.Vfit.default_frequency_opts;
    state_opts = Vf.Vfit.default_state_opts;
    freq_start = 2;
    freq_step = 2;
    max_freq_poles = 24;
    state_start = 2;
    state_step = 2;
    max_state_poles = 24;
    include_dc_point = true;
    min_imag_fraction = 0.02;
  }

type result = {
  model : Hammerstein.Hmodel.t;
  freq_model : Vf.Model.t;
  freq_info : Vf.Vfit.info;
  residue_model : Vf.Model.t;
  residue_info : Vf.Vfit.info;
  static_model : Vf.Model.t;
  static_info : Vf.Vfit.info;
  x_range : float * float;
  x0 : float;
  y0 : float;
  has_const : bool;
  build_seconds : float;
}

let src = Logs.Src.create "rvf" ~doc:"recursive vector fitting"

module Log = (val Logs.src_log src : Logs.LOG)

let rms_of_rows rows =
  let acc = ref 0.0 and count = ref 0 in
  Array.iter
    (Array.iter (fun z ->
         acc := !acc +. Complex.norm2 z;
         incr count))
    rows;
  sqrt (!acc /. float_of_int (Stdlib.max 1 !count))

type freq_stage = {
  fs_model : Vf.Model.t;
  fs_info : Vf.Vfit.info;
  xs : float array;
  x_lo : float;
  x_hi : float;
  x0 : float;
  y0 : float;
  dc : float array;
}

let frequency_stage ?(config = default_config) ?guard ?cancel ?diag ?trace
    ?metrics ?obs ?pool ~dataset ~input ~output () =
  let samples = dataset.Tft.Dataset.samples in
  if Array.length samples < 4 then begin
    Diag.error diag ~stage:"rvf.freq"
      (Printf.sprintf "need at least 4 trajectory samples, got %d"
         (Array.length samples));
    invalid_arg "Rvf.extract: need at least 4 trajectory samples"
  end;
  if Array.length samples.(0).Tft.Dataset.x <> 1 then
    invalid_arg
      "Rvf.extract: state estimator must be one-dimensional (use Recursion for \
       gridded multivariate fitting)";
  let dyn = Tft.Dataset.dynamic_part dataset in
  let _, dyn_data = Tft.Dataset.siso dyn ~input ~output in
  let freqs = dataset.Tft.Dataset.freqs_hz in
  let points_f = Array.map Signal.Grid.s_of_hz freqs in
  let points_f, dyn_data =
    if config.include_dc_point then
      ( Array.append [| Complex.zero |] points_f,
        Array.map (fun row -> Array.append [| Complex.zero |] row) dyn_data )
    else (points_f, dyn_data)
  in
  (* --- frequency stage: common poles across all trajectory samples --- *)
  let f_min = Array.fold_left Float.min Float.infinity freqs in
  let f_max = Array.fold_left Float.max 0.0 freqs in
  (* initial poles spread over the band where the dynamic data has energy;
     poles seeded decades below the first dynamics stall the relocation *)
  let f_active =
    let offset = if config.include_dc_point then 1 else 0 in
    let amp l =
      Array.fold_left
        (fun m row -> Float.max m (Complex.norm row.(l + offset)))
        0.0 dyn_data
    in
    let peak = ref 0.0 in
    Array.iteri (fun l _ -> peak := Float.max !peak (amp l)) freqs;
    let first = ref f_max in
    Array.iteri
      (fun l f -> if amp l >= 0.02 *. !peak && f < !first then first := f)
      freqs;
    Float.max f_min (Float.min (!first /. 4.0) (f_max /. 100.0))
  in
  Log.info (fun m -> m "active band: %.3e .. %.3e Hz" f_active f_max);
  let make_freq_poles count =
    Vf.Pole.initial_frequency ~f_min:f_active ~f_max ~count
  in
  let freq_scale = Float.max (rms_of_rows dyn_data) 1e-300 in
  let freq_opts =
    {
      config.freq_opts with
      Vf.Vfit.max_magnitude = 100.0 *. 2.0 *. Float.pi *. f_max;
    }
  in
  let freq_model, freq_info =
    Obs.stage obs "rvf.frequency_stage";
    Diag.span diag "rvf.frequency_stage" (fun () ->
        Trace.span trace "rvf.frequency_stage" (fun () ->
            Vf.Vfit.fit_auto ~opts:freq_opts ?guard ?cancel ?diag ?trace
              ?metrics ?obs ?pool ~label:"vf.freq" ~make_poles:make_freq_poles
              ~start:config.freq_start ~step:config.freq_step
              ~max_poles:config.max_freq_poles ~tol:(config.eps *. freq_scale)
              ~points:points_f ~data:dyn_data ()))
  in
  Log.info (fun m ->
      m "frequency stage: %d poles, rms %.3e (scale %.3e)"
        freq_info.Vf.Vfit.pole_count freq_info.Vf.Vfit.rms freq_scale);
  let xs = Array.map (fun (s : Tft.Dataset.sample) -> s.Tft.Dataset.x.(0)) samples in
  let x_lo = Array.fold_left Float.min Float.infinity xs in
  let x_hi = Array.fold_left Float.max Float.neg_infinity xs in
  if x_hi <= x_lo then invalid_arg "Rvf.extract: degenerate state range";
  {
    fs_model = freq_model;
    fs_info = freq_info;
    xs;
    x_lo;
    x_hi;
    x0 = samples.(0).Tft.Dataset.x.(0);
    y0 = samples.(0).Tft.Dataset.y.(output);
    dc = Tft.Dataset.dc_trace dataset ~input ~output;
  }

(* Deterministic Hammerstein reassembly from the three fitted VF models.
   Pure in its arguments, so a resume that deserializes the models from a
   checkpoint rebuilds the identical analytical model the original run
   assembled. *)
let assemble_model ~freq_model ~residue_model ~static_model ~has_const ~x0 ~y0 =
  let p = Vf.Model.n_poles freq_model in
  let stage_fn pi =
    Ratfn.to_static_fn
      (Ratfn.set_value (Ratfn.of_model residue_model ~elem:pi) ~at:x0 ~value:0.0)
  in
  let static_base =
    Ratfn.to_static_fn
      (Ratfn.set_value (Ratfn.of_model static_model ~elem:0) ~at:x0 ~value:y0)
  in
  let static_path =
    if has_const then
      (* direct-feedthrough path: ∫ d(x) du joins the static nonlinearity *)
      Hammerstein.Static_fn.add static_base (stage_fn p)
    else static_base
  in
  Assemble.hammerstein ~name:"rvf" ~freq_poles:freq_model.Vf.Model.poles
    ~stage:stage_fn ~static_path

let extract ?(config = default_config) ?guard ?cancel ?diag ?trace ?metrics
    ?obs ?pool ~dataset ~input ~output () =
  let t_start = Clock.now () in
  let stage =
    frequency_stage ~config ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool
      ~dataset ~input ~output ()
  in
  let freq_model = stage.fs_model and freq_info = stage.fs_info in
  let xs = stage.xs and x_lo = stage.x_lo and x_hi = stage.x_hi in
  (* --- state stage: fit every residue coefficient trace over x --- *)
  let points_x = Array.map (fun x -> { Complex.re = x; im = 0.0 }) xs in
  let p = Vf.Model.n_poles freq_model in
  (* trace p..(p) is the per-sample constant term d(x) when the frequency
     stage used one; its integral joins the static path below *)
  let has_const = config.freq_opts.Vf.Vfit.with_const in
  let n_traces = p + if has_const then 1 else 0 in
  (* each trace is normalized to unit RMS for the fit (traces of wildly
     different magnitudes would otherwise dominate the common-pole
     search), then the fitted coefficients are unscaled *)
  let raw_trace pi =
    Array.init (Array.length xs) (fun k ->
        if pi < p then freq_model.Vf.Model.coeffs.(k).(pi)
        else freq_model.Vf.Model.consts.(k))
  in
  let trace_scales =
    Array.init n_traces (fun pi ->
        let t = raw_trace pi in
        let rms =
          sqrt
            (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 t
            /. float_of_int (Array.length t))
        in
        Float.max rms 1e-300)
  in
  let trace_data =
    Array.init n_traces (fun pi ->
        let t = raw_trace pi in
        Array.map (fun v -> { Complex.re = v /. trace_scales.(pi); im = 0.0 }) t)
  in
  (* one probe invocation per extraction: an armed burst of k makes k
     consecutive extract calls fail here, which walks the pipeline's
     escalation ladder rung by rung *)
  if
    Fault.should_fire "rvf.trace_nan"
    && n_traces > 0
    && Array.length trace_data.(0) > 0
  then trace_data.(0).(0) <- { Complex.re = Float.nan; im = 0.0 };
  (match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      if g.Guard.check_finite then
        Array.iteri
          (fun pi t ->
            if not (Guard.finite_complex_array t) then
              Guard.fail ~site:"rvf.trace"
                (Printf.sprintf
                   "non-finite residue coefficient trace %d" pi))
          trace_data);
  let min_imag = config.min_imag_fraction *. (x_hi -. x_lo) in
  let state_opts = { config.state_opts with Vf.Vfit.min_imag } in
  let make_state_poles count = Vf.Pole.initial_real_axis ~lo:x_lo ~hi:x_hi ~count in
  let residue_model, residue_info =
    Obs.stage obs "rvf.state_stage";
    Diag.span diag "rvf.state_stage" (fun () ->
        Trace.span trace "rvf.state_stage" (fun () ->
            Vf.Vfit.fit_auto ~opts:state_opts ?guard ?cancel ?diag ?trace
              ?metrics ?obs ?pool ~label:"vf.state" ~make_poles:make_state_poles
              ~start:config.state_start ~step:config.state_step
              ~max_poles:config.max_state_poles ~tol:config.eps
              ~points:points_x ~data:trace_data ()))
  in
  (* per-trace fit quality: one RMS per residue trajectory, so a single
     badly-fitted trace is visible even when the pooled RMS looks fine *)
  (match diag with
  | None -> ()
  | Some _ ->
      for pi = 0 to n_traces - 1 do
        let acc = ref 0.0 in
        Array.iteri
          (fun l z ->
            let err = Complex.sub (Vf.Model.eval residue_model ~elem:pi z)
                        trace_data.(pi).(l) in
            acc := !acc +. Complex.norm2 err)
          points_x;
        let rms = sqrt (!acc /. float_of_int (Array.length points_x)) in
        Diag.observe diag "rvf.residue_trace_rms" rms
      done);
  let residue_model =
    {
      residue_model with
      Vf.Model.coeffs =
        Array.mapi
          (fun pi row -> Array.map (fun c -> c *. trace_scales.(pi)) row)
          residue_model.Vf.Model.coeffs;
      consts =
        Array.mapi
          (fun pi d -> d *. trace_scales.(pi))
          residue_model.Vf.Model.consts;
      slopes =
        Array.mapi
          (fun pi h -> h *. trace_scales.(pi))
          residue_model.Vf.Model.slopes;
    }
  in
  Log.info (fun m ->
      m "state stage: %d poles, normalized rms %.3e"
        residue_info.Vf.Vfit.pole_count residue_info.Vf.Vfit.rms);
  (* --- static stage: DC conductance trace H(x, 0) --- *)
  let static_data =
    [| Array.map (fun v -> { Complex.re = v; im = 0.0 }) stage.dc |]
  in
  (match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      if
        g.Guard.check_finite
        && not (Guard.finite_complex_array static_data.(0))
      then
        Guard.fail ~site:"rvf.static_trace"
          "non-finite DC conductance trace");
  let static_scale = Float.max (rms_of_rows static_data) 1e-300 in
  let static_model, static_info =
    Obs.stage obs "rvf.static_stage";
    Diag.span diag "rvf.static_stage" (fun () ->
        Trace.span trace "rvf.static_stage" (fun () ->
            Vf.Vfit.fit_auto ~opts:state_opts ?guard ?cancel ?diag ?trace
              ?metrics ?obs ?pool ~label:"vf.static" ~make_poles:make_state_poles
              ~start:config.state_start ~step:config.state_step
              ~max_poles:config.max_state_poles
              ~tol:(config.eps *. static_scale) ~points:points_x
              ~data:static_data ()))
  in
  (* --- integration and Hammerstein assembly --- *)
  let x0 = stage.x0 and y0 = stage.y0 in
  let model =
    assemble_model ~freq_model ~residue_model ~static_model ~has_const ~x0 ~y0
  in
  Diag.note diag "rvf.freq_poles"
    (string_of_int freq_info.Vf.Vfit.pole_count);
  Diag.note diag "rvf.state_poles"
    (string_of_int residue_info.Vf.Vfit.pole_count);
  Diag.note diag "rvf.static_poles"
    (string_of_int static_info.Vf.Vfit.pole_count);
  {
    model;
    freq_model;
    freq_info;
    residue_model;
    residue_info;
    static_model;
    static_info;
    x_range = (x_lo, x_hi);
    x0;
    y0;
    has_const;
    build_seconds = Clock.now () -. t_start;
  }
