(** Time-domain Recursive Vector Fitting — Algorithm 1 of the paper.

    Takes a TFT dataset, splits it into the static DC path and the
    dynamic remainder, fits common frequency poles across all trajectory
    samples, then fits every residue coefficient trace over the state
    estimator with a second (state-space) VF pass, integrates the residue
    functions in closed form, and assembles a parallel Hammerstein model. *)

module Ratfn = Ratfn
module Assemble = Assemble
module Recursion = Recursion

type config = {
  eps : float;  (** the paper's ε error bound (relative, see below) *)
  freq_opts : Vf.Vfit.opts;
  state_opts : Vf.Vfit.opts;
  freq_start : int;
  freq_step : int;
  max_freq_poles : int;
  state_start : int;
  state_step : int;
  max_state_poles : int;
  include_dc_point : bool;
      (** add s = 0 (where the dynamic part vanishes exactly) to the
          frequency grid to pin the model's DC behaviour *)
  min_imag_fraction : float;
      (** minimum state-pole imaginary part as a fraction of the state
          range (keeps the closed-form integrals singularity-free) *)
}

val default_config : config
(** ε = 1e−3, matching the paper's experiment. Error tolerances are
    interpreted relative to the RMS magnitude of the data being fitted
    at each stage. *)

type result = {
  model : Hammerstein.Hmodel.t;
  freq_model : Vf.Model.t;  (** elements = trajectory samples *)
  freq_info : Vf.Vfit.info;
  residue_model : Vf.Model.t;  (** elements = residue coefficient traces *)
  residue_info : Vf.Vfit.info;
  static_model : Vf.Model.t;  (** one element: the DC conductance trace *)
  static_info : Vf.Vfit.info;
  x_range : float * float;
  x0 : float;  (** estimator coordinate of the DC starting sample *)
  y0 : float;  (** circuit DC output at the starting sample *)
  has_const : bool;
      (** the frequency stage carried a constant term, so the static
          path includes the integrated feedthrough trace *)
  build_seconds : float;  (** CPU time of the whole extraction *)
}

val extract :
  ?config:config ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  dataset:Tft.Dataset.t -> input:int -> output:int -> unit ->
  result
(** Requires a one-dimensional state estimator (the paper's validated
    case [x = u(t)]); multidimensional gridded recursion lives in
    {!Recursion}. Raises [Invalid_argument] on dimension mismatches.

    With [diag], records spans for the three fitting stages
    ([rvf.frequency_stage], [rvf.state_stage], [rvf.static_stage]),
    threads the collector into every {!Vf.Vfit.fit_auto} call (labels
    [vf.freq], [vf.state], [vf.static]), observes a per-residue-trace
    fit RMS ([rvf.residue_trace_rms]) and notes the settled pole count
    of each stage. [trace]/[metrics] are threaded the same way: the
    three stages record like-named {!Trace} spans and the VF engine's
    per-iteration statistics land in the metrics registry.

    With [guard], the residue coefficient traces and the DC conductance
    trace are NaN/Inf-checked before fitting ([Guard.Violation] at
    sites [rvf.trace]/[rvf.static_trace]) and the guard threads into
    every VF stage's pole and model checks. Hosts the ["rvf.trace_nan"]
    fault probe (one invocation per extraction).

    With [pool], the three VF stages fan their independent per-element
    relocation blocks and residue fits across the warm pool; results are
    bit-identical to the sequential path. The pool is borrowed, never
    shut down here.

    With [cancel], the token threads into every VF stage (probed per
    escalation attempt and per relocation sweep);
    [Cancel.Cancelled]/[Cancel.Deadline_exceeded] propagate out of the
    extraction untouched. *)

val assemble_model :
  freq_model:Vf.Model.t ->
  residue_model:Vf.Model.t ->
  static_model:Vf.Model.t ->
  has_const:bool ->
  x0:float ->
  y0:float ->
  Hammerstein.Hmodel.t
(** Deterministic Hammerstein reassembly from the three fitted VF
    models — the final step of {!extract}, exposed so a checkpointed fit
    artifact (the serialized models plus [x0]/[y0]/[has_const]) can be
    rebuilt into the identical analytical model on resume. *)

(** {2 Shared frequency stage}

    The CAFFEINE baseline replaces only the residue regression; it reuses
    this frequency-pole stage. *)

type freq_stage = {
  fs_model : Vf.Model.t;  (** common-pole fit; elements = trajectory samples *)
  fs_info : Vf.Vfit.info;
  xs : float array;  (** state-estimator coordinate per sample *)
  x_lo : float;
  x_hi : float;
  x0 : float;  (** estimator coordinate of the DC starting sample *)
  y0 : float;  (** circuit DC output at the starting sample *)
  dc : float array;  (** DC conductance trace H(x, 0) *)
}

val frequency_stage :
  ?config:config ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  dataset:Tft.Dataset.t -> input:int -> output:int -> unit ->
  freq_stage
