(** Multivariate Recursive Vector Fitting on gridded data — eq. (16).

    The paper's recursion reduces the dimension of the approximation
    problem by one per step: the data is fitted along one variable with a
    common pole set, and every resulting coefficient trace is fitted
    along the next variable, recursively. The validated circuit example
    uses a one-dimensional estimator ([x = u(t)], handled by {!Rvf});
    this module implements the genuinely recursive two-variable case on a
    tensor grid, which is how the parametric-macromodeling ancestors of
    the method (refs. [6], [10]) consume design-parameter sweeps.

    The fitted surface is

    [f̂(x, y) = Σ_p c_p(y)·φ_p(x) + d(y)]

    with [φ_p] the real partial-fraction basis over the common x-poles
    and every coefficient [c_p(·)] and [d(·)] itself a fitted rational
    function of [y] sharing common y-poles. *)

type t

val x_pole_count : t -> int
val y_pole_count : t -> int

val fit :
  ?eps:float ->
  ?max_x_poles:int ->
  ?max_y_poles:int ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  xs:float array ->
  ys:float array ->
  data:float array array ->
  unit ->
  t
(** [fit ~xs ~ys ~data ()] fits [data.(i).(j) ≈ f(xs.(i), ys.(j))].
    [eps] (default 1e−3) is the relative RMS target per stage.

    With [diag], records spans for the two recursion stages
    ([recursion.x_stage], [recursion.y_stage]), threads the collector
    into both {!Vf.Vfit.fit_auto} passes (labels [recursion.x],
    [recursion.y]) and notes the recursion depth and settled pole count
    per variable. [trace]/[metrics]/[obs] are threaded likewise, so the
    nested fits' pole trajectories land in the convergence stream with
    their recursion-level labels. *)

val eval : t -> x:float -> y:float -> float

val rms_error : t -> xs:float array -> ys:float array -> data:float array array -> float

val integral_x : t -> x0:float -> x:float -> y:float -> float
(** Closed-form [∫_{x0}^{x} f̂(ξ, y) dξ]: the x-basis integrates to the
    ln/atan forms of eq. (19) while the y-dependent coefficients ride
    along — the nested analogue of the Hammerstein static stages. *)
