type t = {
  x_poles : Complex.t array;
  inner : Vf.Model.t;  (** elements: one per x-basis slot, then the d(y) trace *)
  inner_scales : float array;  (** per-trace normalization undone at eval *)
}

let x_pole_count t = Array.length t.x_poles
let y_pole_count t = Vf.Model.n_poles t.inner

let state_opts_for ~lo ~hi =
  {
    Vf.Vfit.default_state_opts with
    Vf.Vfit.min_imag = 0.02 *. (hi -. lo);
  }

let fit_traces ?cancel ?diag ?trace ?metrics ?obs ?(label = "recursion") ~eps ~max_poles
    ~points ~traces ~lo ~hi () =
  (* normalize each trace to unit rms, fit with common poles, unscale *)
  let scales =
    Array.map
      (fun row ->
        let rms =
          sqrt
            (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 row
            /. float_of_int (Array.length row))
        in
        Float.max rms 1e-300)
      traces
  in
  let data =
    Array.mapi
      (fun e row ->
        Array.map (fun v -> { Complex.re = v /. scales.(e); im = 0.0 }) row)
      traces
  in
  let opts = state_opts_for ~lo ~hi in
  let make_poles count = Vf.Pole.initial_real_axis ~lo ~hi ~count in
  let model, info =
    Vf.Vfit.fit_auto ~opts ?cancel ?diag ?trace ?metrics ?obs ~label ~make_poles ~start:2
      ~step:2 ~max_poles ~tol:eps ~points ~data ()
  in
  (model, scales, info)

let fit ?(eps = 1e-3) ?(max_x_poles = 20) ?(max_y_poles = 20) ?cancel ?diag
    ?trace ?metrics ?obs ~xs ~ys ~data () =
  let nx = Array.length xs and ny = Array.length ys in
  if Array.length data <> nx then invalid_arg "Recursion.fit: data rows <> xs";
  Array.iter
    (fun row -> if Array.length row <> ny then invalid_arg "Recursion.fit: ragged data")
    data;
  let x_lo = Array.fold_left Float.min Float.infinity xs in
  let x_hi = Array.fold_left Float.max Float.neg_infinity xs in
  let y_lo = Array.fold_left Float.min Float.infinity ys in
  let y_hi = Array.fold_left Float.max Float.neg_infinity ys in
  if x_hi <= x_lo || y_hi <= y_lo then
    invalid_arg "Recursion.fit: degenerate grid";
  (* stage 1: fit along x, one element per y grid line, common x-poles *)
  let points_x = Array.map (fun x -> { Complex.re = x; im = 0.0 }) xs in
  let columns =
    Array.init ny (fun j -> Array.init nx (fun i -> data.(i).(j)))
  in
  let x_model, x_scales, _ =
    Obs.stage obs "recursion.x_stage";
    Diag.span diag "recursion.x_stage" (fun () ->
        Trace.span trace "recursion.x_stage" (fun () ->
            fit_traces ?cancel ?diag ?trace ?metrics ?obs ~label:"recursion.x" ~eps
              ~max_poles:max_x_poles ~points:points_x ~traces:columns ~lo:x_lo
              ~hi:x_hi ()))
  in
  let p = Vf.Model.n_poles x_model in
  (* stage 2: every x-coefficient (and the constant) becomes a trace in y *)
  let points_y = Array.map (fun y -> { Complex.re = y; im = 0.0 }) ys in
  let traces =
    Array.init (p + 1) (fun slot ->
        Array.init ny (fun j ->
            let unscale = x_scales.(j) in
            if slot < p then x_model.Vf.Model.coeffs.(j).(slot) *. unscale
            else x_model.Vf.Model.consts.(j) *. unscale))
  in
  let inner, inner_scales, _ =
    Obs.stage obs "recursion.y_stage";
    Diag.span diag "recursion.y_stage" (fun () ->
        Trace.span trace "recursion.y_stage" (fun () ->
            fit_traces ?cancel ?diag ?trace ?metrics ?obs ~label:"recursion.y" ~eps
              ~max_poles:max_y_poles ~points:points_y ~traces ~lo:y_lo
              ~hi:y_hi ()))
  in
  Diag.note diag "recursion.depth" "2";
  Diag.note diag "recursion.x_poles" (string_of_int p);
  Diag.note diag "recursion.y_poles"
    (string_of_int (Vf.Model.n_poles inner));
  { x_poles = x_model.Vf.Model.poles; inner; inner_scales }

let coeff_at t ~slot ~y =
  t.inner_scales.(slot) *. Vf.Model.eval_real t.inner ~elem:slot y

let eval t ~x ~y =
  let p = Array.length t.x_poles in
  let phi = Vf.Basis.row t.x_poles { Complex.re = x; im = 0.0 } in
  let acc = ref (coeff_at t ~slot:p ~y) in
  for slot = 0 to p - 1 do
    acc := !acc +. (coeff_at t ~slot ~y *. phi.(slot).Complex.re)
  done;
  !acc

let rms_error t ~xs ~ys ~data =
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          let d = eval t ~x ~y -. data.(i).(j) in
          acc := !acc +. (d *. d);
          incr count)
        ys)
    xs;
  sqrt (!acc /. float_of_int (Stdlib.max 1 !count))

(* antiderivative of the x-basis pair (slots k, k+1) between x0 and x *)
let pair_integral ~beta ~alpha ~c1 ~c2 ~x0 ~x =
  let part z =
    let dz = z -. beta in
    (c1 *. log ((dz *. dz) +. (alpha *. alpha)))
    -. (2.0 *. c2 *. atan (dz /. alpha))
  in
  part x -. part x0

let integral_x t ~x0 ~x ~y =
  let p = Array.length t.x_poles in
  let acc = ref (coeff_at t ~slot:p ~y *. (x -. x0)) in
  List.iter
    (fun slot ->
      match slot with
      | Vf.Pole.Single k ->
          (* real x-poles are excluded by min_imag in [fit]; if a caller
             built a model by hand with one, integrate as ln|x−a| *)
          let a = t.x_poles.(k).Complex.re in
          acc :=
            !acc
            +. coeff_at t ~slot:k ~y
               *. (log (Float.abs (x -. a)) -. log (Float.abs (x0 -. a)))
      | Vf.Pole.Pair_first k ->
          let pole = t.x_poles.(k) in
          acc :=
            !acc
            +. pair_integral ~beta:pole.Complex.re
                 ~alpha:(Float.abs pole.Complex.im)
                 ~c1:(coeff_at t ~slot:k ~y)
                 ~c2:(coeff_at t ~slot:(k + 1) ~y)
                 ~x0 ~x)
    (Vf.Pole.structure t.x_poles);
  !acc
