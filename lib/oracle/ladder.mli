(** Analytical circuit oracles: parametric linear networks whose transfer
    function has a {e closed-form} pole/residue expansion, paired with
    the netlist that realizes them.

    These are the ground truths the verification battery measures the
    numerical stack against: the AC pencil solve, the TFT transform of a
    transient run, and the vector-fitting engine must all reproduce the
    formulas below to tight tolerances, with no reference to any
    numerical eigensolve.

    The uniform RC ladder's matrix is the Dirichlet–Neumann tridiagonal
    Laplacian, whose spectrum is classical: with [θ_k = (2k−1)π/(2N+1)]
    the eigenvalues are [λ_k = 2 − 2·cos θ_k] and the eigenvectors
    [v_k(j) = sin(j·θ_k)], so the input-to-last-node transfer function is

    [H(s) = Σ_k r_k / (s − p_k)],
    [p_k = −λ_k/(RC)],
    [r_k = 4·sin(θ_k)·sin(N·θ_k) / ((2N+1)·RC)].

    The series RLC resonator is the textbook second-order section
    [H(s) = ω₀² / (s² + (R/L)·s + ω₀²)] with [ω₀² = 1/(LC)], giving the
    complex pair [p = −R/(2L) ± j·ω_d], [ω_d = √(ω₀² − (R/2L)²)] and
    residues [∓ j·ω₀²/(2ω_d)]. *)

type rational = {
  poles : Complex.t array;  (** normalized self-conjugate layout, see {!Vf.Pole} *)
  residues : Complex.t array;  (** matching slot layout *)
}
(** A strictly proper rational [H(s) = Σ_k residues.(k)/(s − poles.(k))]. *)

val eval : rational -> Complex.t -> Complex.t
val sample : rational -> Complex.t array -> Complex.t array

val dc_gain : rational -> float
(** [H(0)] (exact, real up to roundoff). *)

type oracle = {
  name : string;
  netlist : Circuit.Netlist.t;
  input : string;  (** designated input voltage source *)
  output : Engine.Mna.output;
  exact : rational;  (** the closed-form input→output transfer function *)
}

val rc :
  ?stages:int -> ?r:float -> ?c:float ->
  ?input_wave:Circuit.Netlist.wave -> unit -> oracle
(** Uniform RC ladder: [stages] identical R-into-C sections (default 4
    stages, R = 1 kΩ, C = 1 nF), output at the last node. All poles are
    real; the DC gain is exactly 1. *)

val rlc :
  ?r:float -> ?l:float -> ?c:float ->
  ?input_wave:Circuit.Netlist.wave -> unit -> oracle
(** Series RLC into a grounded capacitor (default R = 50 Ω, L = 1 µH,
    C = 1 nF — underdamped). Raises [Invalid_argument] when the choice
    is not underdamped (the closed form here covers the complex-pair
    case only). *)

(** {2 Comparison helpers} *)

val max_rel_pole_error : exact:Complex.t array -> fitted:Complex.t array -> float
(** Greedy nearest matching of every exact pole to a fitted pole;
    returns the worst relative mismatch [|p̂ − p|/|p|]. [infinity] when
    the counts differ. *)

val max_rel_residue_error : exact:rational -> model:Vf.Model.t -> elem:int -> float
(** Match poles as above, then compare the fitted element's residues
    slot-by-slot against the exact ones, relative to the largest exact
    residue magnitude. [infinity] when the pole counts differ. *)

val max_rel_error :
  exact:rational -> points:Complex.t array -> Complex.t array -> float
(** Worst pointwise deviation of sampled data from the closed form,
    relative to the largest exact magnitude over the grid. *)
