(* Synthetic Hammerstein ground truth + the TFT dataset it induces. *)

type params = {
  freq_alpha : float;
  freq_beta : float;
  state_beta : float;
  state_alpha : float;
  r1 : float * float * float;
  r2 : float * float * float;
  g0 : float * float * float;
  y_anchor : float;
  x_lo : float;
  x_hi : float;
}

let default =
  {
    freq_alpha = -1.6e9;
    freq_beta = 2.0 *. Float.pi *. 1.0e9;
    state_beta = 0.9;
    state_alpha = 0.35;
    r1 = (0.8, -0.5, 1.6);
    r2 = (-0.4, 0.7, 0.9);
    g0 = (0.5, -0.9, 2.0);
    y_anchor = 0.8;
    x_lo = 0.4;
    x_hi = 1.4;
  }

let validate p =
  if p.freq_alpha >= 0.0 then invalid_arg "Synth: freq_alpha must be < 0";
  if p.freq_beta <= 0.0 then invalid_arg "Synth: freq_beta must be > 0";
  if p.state_alpha <= 0.0 then invalid_arg "Synth: state_alpha must be > 0";
  if p.x_hi <= p.x_lo then invalid_arg "Synth: empty state range"

let ratfn_of ?(scale = 1.0) p (c1, c2, const) =
  {
    Rvf.Ratfn.pairs =
      [|
        {
          Rvf.Ratfn.beta = p.state_beta;
          alpha = p.state_alpha;
          c1 = scale *. c1;
          c2 = scale *. c2;
        };
      |];
    const = scale *. const;
    offset = 0.0;
  }

(* physical residues scale with their pole magnitude (the RC ladder's
   are ∝ 1/RC); keeping the dynamic part O(1) against the static part
   also keeps the extractor's H − H(0) subtraction cancellation-free *)
let residue_scale p = Complex.norm { Complex.re = p.freq_alpha; im = p.freq_beta }

let freq_poles p =
  [|
    { Complex.re = p.freq_alpha; im = p.freq_beta };
    { Complex.re = p.freq_alpha; im = -.p.freq_beta };
  |]

let state_poles p =
  [|
    { Complex.re = p.state_beta; im = p.state_alpha };
    { Complex.re = p.state_beta; im = -.p.state_alpha };
  |]

let model_of p =
  validate p;
  (* anchor the residue stages at the sweep start and fold the whole
     anchor into the static path, exactly as the extractor does; the
     models are behaviourally identical for any anchor choice *)
  let scale = residue_scale p in
  let stage_ratfns =
    [|
      Rvf.Ratfn.set_value (ratfn_of ~scale p p.r1) ~at:p.x_lo ~value:0.0;
      Rvf.Ratfn.set_value (ratfn_of ~scale p p.r2) ~at:p.x_lo ~value:0.0;
    |]
  in
  let static_path =
    Rvf.Ratfn.to_static_fn
      (Rvf.Ratfn.set_value (ratfn_of p p.g0) ~at:p.x_lo ~value:p.y_anchor)
  in
  Rvf.Assemble.hammerstein ~name:"synth-oracle" ~freq_poles:(freq_poles p)
    ~stage:(fun k -> Rvf.Ratfn.to_static_fn stage_ratfns.(k))
    ~static_path

let freq_grid ?(freqs = 30) p =
  let f_center = p.freq_beta /. (2.0 *. Float.pi) in
  Signal.Grid.frequencies_hz ~f_min:(f_center /. 1e2) ~f_max:(f_center *. 1e2)
    ~points:freqs

let dataset_of ?(samples = 40) ?freqs p =
  validate p;
  if samples < 4 then invalid_arg "Synth.dataset_of: need >= 4 samples";
  let model = model_of p in
  let freqs_hz = freq_grid ?freqs p in
  let xs = Signal.Grid.linspace p.x_lo p.x_hi samples in
  let mk_sample k x =
    let h =
      Array.map
        (fun f ->
          let s = Signal.Grid.s_of_hz f in
          Linalg.Cmat.init 1 1 (fun _ _ -> Hammerstein.Hmodel.transfer model ~x ~s))
        freqs_hz
    in
    let h0 =
      Linalg.Cmat.init 1 1 (fun _ _ ->
          { Complex.re = Hammerstein.Hmodel.dc_gain model ~x; im = 0.0 })
    in
    {
      Tft.Dataset.time = float_of_int k *. 1e-9;
      x = [| x |];
      u = [| x |];
      y = [| Hammerstein.Hmodel.dc_output model ~x |];
      h;
      h0;
    }
  in
  {
    Tft.Dataset.freqs_hz;
    samples = Array.mapi mk_sample xs;
    n_inputs = 1;
    n_outputs = 1;
  }

type report = {
  freq_pole_rel_err : float;
  state_pole_rel_err : float;
  surface_rel_rms : float;
  dc_rel_max_err : float;
  transient_nrmse : float;
  result : Rvf.result;
}

let roundtrip ?(config = Rvf.default_config) ?samples ?freqs p =
  let truth = model_of p in
  let dataset = dataset_of ?samples ?freqs p in
  let result = Rvf.extract ~config ~dataset ~input:0 ~output:0 () in
  let extracted = result.Rvf.model in
  let freq_pole_rel_err =
    Ladder.max_rel_pole_error ~exact:(freq_poles p)
      ~fitted:result.Rvf.freq_model.Vf.Model.poles
  in
  let state_pole_rel_err =
    Ladder.max_rel_pole_error ~exact:(state_poles p)
      ~fitted:result.Rvf.residue_model.Vf.Model.poles
  in
  (* dense behavioural comparison over the full (state × frequency) grid *)
  let xs = Signal.Grid.linspace p.x_lo p.x_hi 41 in
  let ss = Array.map Signal.Grid.s_of_hz (freq_grid ?freqs p) in
  let acc = ref 0.0 and scale = ref 1e-300 and count = ref 0 in
  Array.iter
    (fun x ->
      Array.iter
        (fun s ->
          let t_true = Hammerstein.Hmodel.transfer truth ~x ~s in
          let t_fit = Hammerstein.Hmodel.transfer extracted ~x ~s in
          acc := !acc +. Complex.norm2 (Complex.sub t_true t_fit);
          scale := Float.max !scale (Complex.norm t_true);
          incr count)
        ss)
    xs;
  let surface_rel_rms = sqrt (!acc /. float_of_int !count) /. !scale in
  let dc_true = Array.map (fun x -> Hammerstein.Hmodel.dc_output truth ~x) xs in
  let dc_fit =
    Array.map (fun x -> Hammerstein.Hmodel.dc_output extracted ~x) xs
  in
  let dc_span =
    Array.fold_left Float.max neg_infinity dc_true
    -. Array.fold_left Float.min infinity dc_true
  in
  let dc_rel_max_err =
    Signal.Metrics.max_abs_err dc_true dc_fit /. Float.max dc_span 1e-300
  in
  (* the paper's training excitation: one period of a large sine
     spanning the state range, slow against the model dynamics *)
  let mid = 0.5 *. (p.x_lo +. p.x_hi) and ampl = 0.5 *. (p.x_hi -. p.x_lo) in
  let f_train = p.freq_beta /. (2.0 *. Float.pi) /. 50.0 in
  let u t = mid +. (ampl *. sin (2.0 *. Float.pi *. f_train *. t)) in
  let t_stop = 1.0 /. f_train in
  let dt = t_stop /. 2000.0 in
  let w_true = Hammerstein.Hmodel.simulate truth ~u ~t_stop ~dt in
  let w_fit = Hammerstein.Hmodel.simulate extracted ~u ~t_stop ~dt in
  let transient_nrmse = Signal.Waveform.nrmse w_true w_fit in
  {
    freq_pole_rel_err;
    state_pole_rel_err;
    surface_rel_rms;
    dc_rel_max_err;
    transient_nrmse;
    result;
  }
