(** The oracle battery: every analytical-reference check run in one
    sweep with machine-checkable tolerances and a schema-versioned JSON
    verdict.

    Each check compares a numerical path of the extraction stack against
    a closed form from {!Ladder} or {!Synth}:

    - ["rc-ac-closed-form"]: the AC pencil solve reproduces the RC
      ladder's exact [H(jω)] (and its exact DC gain of 1).
    - ["rlc-ac-closed-form"]: same against the RLC resonator's
      second-order section.
    - ["rc-tft-linear"]: a transient run + TFT transform of the linear
      ladder yields the exact transfer function at {e every} snapshot
      (state-independence included), and vector fitting on that TFT
      data recovers the closed-form poles and residues to ≤ 1e-8.
    - ["rlc-tft-vf"]: pole/residue recovery of the complex pair from
      TFT data of the resonator.
    - ["hammerstein-roundtrip"]: {!Synth.roundtrip} on the default
      generating parameters — frequency pair, state pair, transfer
      surface and DC curve all round-trip.
    - ["hammerstein-transient"]: the extracted model's transient under
      the paper-style training sine matches the generating system's.
    - ["pipeline-linear-model"]: the full pipeline front door
      ({!Tft_rvf.Pipeline.extract}) on the RC ladder produces a model
      whose validation transient tracks the circuit.
    - ["sparse-tft-parity"]: the sparse backend's TFT dataset of a
      diode-sprinkled RC grid (re-stamped CSC Jacobians, rational-Krylov
      sweeps) matches the dense backend's per-snapshot transfer
      trajectories to ≤ 1e-8 of the trajectory scale.
    - ["large-ladder-recovery"]: sparse DC solve + rational-Krylov sweep
      of a 1000-stage RC ladder reproduce the closed-form tridiagonal
      spectrum's transfer function and unit DC gain to ≤ 1e-8.

    A metric {e passes} iff [value <= bound] — NaN values fail, so a
    silently corrupted number can never pass a tolerance. *)

type metric = {
  metric : string;
  value : float;
  bound : float;  (** pass iff [value <= bound]; NaN values fail *)
}

type verdict = {
  check : string;
  seconds : float;  (** wall clock of the check ({!Clock}) *)
  metrics : metric list;
  error : string option;  (** an exception escaping the check body *)
}

val metric_passed : metric -> bool
val verdict_passed : verdict -> bool
val all_passed : verdict list -> bool

val run : ?quick:bool -> unit -> verdict list
(** Run the whole battery ([quick] shrinks grids and snapshot counts;
    bounds are identical in both modes). Checks never raise: a thrown
    exception lands in [error]. *)

val json : quick:bool -> verdict list -> string
(** Schema-versioned verdict document:
    [{"schema_version": 1, "kind": "oracle", "quick": bool,
    "passed": bool, "checks": [{"name", "passed", "seconds",
    "error"?, "metrics": [{"name", "value", "bound", "passed"}]}]}].
    Built on {!Minijson.emit}. *)

val summary : verdict list -> string
(** Human-readable one-line-per-check table. *)
