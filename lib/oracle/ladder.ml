(* Closed-form linear-circuit oracles. The formulas here must stay
   independent of the numerical stack they are used to verify: no
   eigensolves, no LU — only trigonometry and arithmetic. *)

module N = Circuit.Netlist

type rational = {
  poles : Complex.t array;
  residues : Complex.t array;
}

let eval h s =
  let acc = ref Complex.zero in
  Array.iteri
    (fun k p -> acc := Complex.add !acc (Complex.div h.residues.(k) (Complex.sub s p)))
    h.poles;
  !acc

let sample h points = Array.map (eval h) points

let dc_gain h = (eval h Complex.zero).Complex.re

type oracle = {
  name : string;
  netlist : Circuit.Netlist.t;
  input : string;
  output : Engine.Mna.output;
  exact : rational;
}

let default_wave = N.Dc 0.0

(* ---------------- uniform RC ladder ---------------- *)

(* Node equations for N sections (R into node, C to ground), the source
   node eliminated: C·v̇ + (T/R)·v = (u/R)·e₁ with T the tridiagonal
   Dirichlet–Neumann Laplacian diag(2,…,2,1), off-diagonal −1. Its
   spectrum is classical: λ_k = 2 − 2·cos θ_k, v_k(j) = sin(j·θ_k),
   θ_k = (2k−1)π/(2N+1), and Σ_j sin²(j·θ_k) = (2N+1)/4. Diagonalizing
   gives H(s) = Σ_k q_k(1)·q_k(N)/(RC) / (s + λ_k/(RC)) with the
   orthonormal q_k(j) = 2·sin(j·θ_k)/√(2N+1). *)
let rc_exact ~stages ~r ~c =
  let n = stages in
  let tau = r *. c in
  let poles = Array.make n Complex.zero in
  let residues = Array.make n Complex.zero in
  for k = 1 to n do
    let theta = float_of_int ((2 * k) - 1) *. Float.pi /. float_of_int ((2 * n) + 1) in
    let lambda = 2.0 -. (2.0 *. cos theta) in
    poles.(k - 1) <- { Complex.re = -.lambda /. tau; im = 0.0 };
    let weight =
      4.0 *. sin theta *. sin (float_of_int n *. theta)
      /. float_of_int ((2 * n) + 1)
    in
    residues.(k - 1) <- { Complex.re = weight /. tau; im = 0.0 }
  done;
  (* sort by pole magnitude ascending so the layout is deterministic *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (Complex.norm poles.(a)) (Complex.norm poles.(b)))
    order;
  {
    poles = Array.map (fun i -> poles.(i)) order;
    residues = Array.map (fun i -> residues.(i)) order;
  }

let rc ?(stages = 4) ?(r = 1e3) ?(c = 1e-9) ?(input_wave = default_wave) () =
  if stages < 1 then invalid_arg "Ladder.rc: stages must be >= 1";
  if r <= 0.0 || c <= 0.0 then invalid_arg "Ladder.rc: r and c must be > 0";
  let comps = ref [ N.vsource ~name:"Vin" "n0" "0" input_wave ] in
  for k = 1 to stages do
    let prev = Printf.sprintf "n%d" (k - 1) in
    let cur = Printf.sprintf "n%d" k in
    comps :=
      N.capacitor ~name:(Printf.sprintf "C%d" k) cur "0" c
      :: N.resistor ~name:(Printf.sprintf "R%d" k) prev cur r
      :: !comps
  done;
  {
    name = Printf.sprintf "rc-ladder-%d" stages;
    netlist = N.make (List.rev !comps);
    input = "Vin";
    output = Engine.Mna.Node (Printf.sprintf "n%d" stages);
    exact = rc_exact ~stages ~r ~c;
  }

(* ---------------- series RLC resonator ---------------- *)

let rlc ?(r = 50.0) ?(l = 1e-6) ?(c = 1e-9) ?(input_wave = default_wave) () =
  if r <= 0.0 || l <= 0.0 || c <= 0.0 then
    invalid_arg "Ladder.rlc: element values must be > 0";
  let w0_sq = 1.0 /. (l *. c) in
  let sigma = r /. (2.0 *. l) in
  let wd_sq = w0_sq -. (sigma *. sigma) in
  if wd_sq <= 0.0 then
    invalid_arg "Ladder.rlc: not underdamped (closed form needs a complex pair)";
  let wd = sqrt wd_sq in
  let exact =
    {
      (* pair layout: positive-imaginary representative first *)
      poles = [| { Complex.re = -.sigma; im = wd }; { Complex.re = -.sigma; im = -.wd } |];
      residues =
        [|
          { Complex.re = 0.0; im = -.w0_sq /. (2.0 *. wd) };
          { Complex.re = 0.0; im = w0_sq /. (2.0 *. wd) };
        |];
    }
  in
  let netlist =
    N.make
      [
        N.vsource ~name:"Vin" "nin" "0" input_wave;
        N.resistor ~name:"R1" "nin" "nmid" r;
        N.inductor ~name:"L1" "nmid" "nout" l;
        N.capacitor ~name:"C1" "nout" "0" c;
      ]
  in
  {
    name = "rlc-resonator";
    netlist;
    input = "Vin";
    output = Engine.Mna.Node "nout";
    exact;
  }

(* ---------------- comparison helpers ---------------- *)

(* greedy nearest matching: repeatedly pair the globally closest
   (exact, fitted) poles. Exact sets here are tiny, O(n³) is fine. *)
let match_indices ~exact ~fitted =
  let n = Array.length exact in
  if Array.length fitted <> n then None
  else begin
    let used_e = Array.make n false and used_f = Array.make n false in
    let pairs = ref [] in
    for _ = 1 to n do
      let best = ref None in
      for i = 0 to n - 1 do
        if not used_e.(i) then
          for j = 0 to n - 1 do
            if not used_f.(j) then begin
              let d = Complex.norm (Complex.sub exact.(i) fitted.(j)) in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (i, j, d)
            end
          done
      done;
      match !best with
      | Some (i, j, _) ->
          used_e.(i) <- true;
          used_f.(j) <- true;
          pairs := (i, j) :: !pairs
      | None -> ()
    done;
    Some !pairs
  end

let max_rel_pole_error ~exact ~fitted =
  match match_indices ~exact ~fitted with
  | None -> infinity
  | Some pairs ->
      List.fold_left
        (fun acc (i, j) ->
          let scale = Float.max (Complex.norm exact.(i)) 1e-300 in
          Float.max acc (Complex.norm (Complex.sub exact.(i) fitted.(j)) /. scale))
        0.0 pairs

let max_rel_residue_error ~exact ~model ~elem =
  let fitted_res = Vf.Model.residues model ~elem in
  match match_indices ~exact:exact.poles ~fitted:model.Vf.Model.poles with
  | None -> infinity
  | Some pairs ->
      let scale =
        Array.fold_left
          (fun m z -> Float.max m (Complex.norm z))
          1e-300 exact.residues
      in
      List.fold_left
        (fun acc (i, j) ->
          Float.max acc
            (Complex.norm (Complex.sub exact.residues.(i) fitted_res.(j)) /. scale))
        0.0 pairs

let max_rel_error ~exact ~points data =
  if Array.length points <> Array.length data then
    invalid_arg "Ladder.max_rel_error: points/data length mismatch";
  let reference = sample exact points in
  let scale =
    Array.fold_left (fun m z -> Float.max m (Complex.norm z)) 1e-300 reference
  in
  let worst = ref 0.0 in
  Array.iteri
    (fun l z ->
      worst := Float.max !worst (Complex.norm (Complex.sub z reference.(l)) /. scale))
    data;
  !worst
