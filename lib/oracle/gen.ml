(* Seeded random structure builders + the QCheck arbitrary driving them. *)

type seeded = { seed : int; size : int }

let arb ?(min_size = 1) ?(max_size = 4) () =
  let print s = Printf.sprintf "{seed=%d; size=%d}" s.seed s.size in
  let shrink s yield =
    if s.size > min_size then yield { s with size = s.size - 1 };
    QCheck.Shrink.int s.seed (fun seed -> yield { s with seed })
  in
  let gen =
    QCheck.Gen.map2
      (fun seed size -> { seed; size })
      (QCheck.Gen.int_bound 1_000_000)
      (QCheck.Gen.int_range min_size max_size)
  in
  QCheck.make ~print ~shrink gen

let rand_state s = Random.State.make [| s.seed; s.size; 0x9e3779b9 |]

let uniform st lo hi = lo +. ((hi -. lo) *. Random.State.float st 1.0)
let log_uniform st lo hi = lo *. ((hi /. lo) ** Random.State.float st 1.0)

(* ---------------- stable pole sets & rationals ---------------- *)

let w_lo = 1e4
let w_hi = 1e7

(* `size` units, each "pair" or "two singles": always an even slot
   count, magnitudes log-spaced with jitter so units never collide *)
let units_of s =
  let st = rand_state s in
  let n = s.size in
  Array.init n (fun t ->
      let jitter = uniform st 0.15 0.85 in
      let w =
        w_lo *. ((w_hi /. w_lo) ** ((float_of_int t +. jitter) /. float_of_int n))
      in
      if Random.State.float st 1.0 < 0.3 then `Singles (w, uniform st 1.3 2.5)
      else `Pair (w, uniform st 0.2 1.2))

let pole_set_of_units units =
  Array.concat
    (Array.to_list
       (Array.map
          (function
            | `Singles (w, ratio) ->
                (* two distinct real poles sharing the unit's decade *)
                [|
                  { Complex.re = -.w; im = 0.0 };
                  { Complex.re = -.w *. ratio; im = 0.0 };
                |]
            | `Pair (w, phi) ->
                (* damping angle bounded away from the imaginary axis *)
                [|
                  { Complex.re = -.w *. sin phi; im = w *. cos phi };
                  { Complex.re = -.w *. sin phi; im = -.w *. cos phi };
                |])
          units))

let pole_set s = pole_set_of_units (units_of s)

let rational s =
  (* salt the stream so residue draws are independent of the unit draws *)
  let st = Random.State.make [| s.seed; s.size; 0x51ed270b |] in
  let units = units_of s in
  let poles = pole_set_of_units units in
  let n = Array.length poles in
  let residues = Array.make n Complex.zero in
  let slot = ref 0 in
  Array.iter
    (function
      | `Singles (w, _) ->
          residues.(!slot) <-
            { Complex.re = w *. uniform st 0.5 2.0 *. (if Random.State.bool st then 1.0 else -1.0);
              im = 0.0 };
          residues.(!slot + 1) <-
            { Complex.re = w *. uniform st 0.5 2.0 *. (if Random.State.bool st then 1.0 else -1.0);
              im = 0.0 };
          slot := !slot + 2
      | `Pair (w, _) ->
          let re = w *. uniform st (-1.0) 1.0 and im = w *. uniform st 0.3 1.0 in
          residues.(!slot) <- { Complex.re = re; im };
          residues.(!slot + 1) <- { Complex.re = re; im = -.im };
          slot := !slot + 2)
    units;
  { Ladder.poles; residues }

let grid_hz = Signal.Grid.frequencies_hz ~f_min:1e2 ~f_max:1e7 ~points:80

(* ---------------- random passive RC ladders ---------------- *)

let rc_ladder s =
  let st = rand_state s in
  Ladder.rc ~stages:s.size ~r:(log_uniform st 1e2 1e4)
    ~c:(log_uniform st 1e-10 1e-8) ()

(* ---------------- random sparse-tier circuits ---------------- *)

(* mesh/grid shapes grow with `size` so shrinking walks toward small
   circuits; element values share the ladder's decade ranges *)
let mesh_shape s =
  let st = Random.State.make [| s.seed; s.size; 0x6d657368 |] in
  let rows = 2 + s.size + Random.State.int st 2 in
  let cols = 2 + s.size + Random.State.int st 2 in
  (rows, cols)

let rc_mesh s =
  let st = rand_state s in
  let rows, cols = mesh_shape s in
  let netlist =
    Circuits.Library.rc_mesh ~rows ~cols ~r:(log_uniform st 1e2 1e4)
      ~c:(log_uniform st 1e-10 1e-8) ()
  in
  (netlist, Circuits.Library.mesh_input, Circuits.Library.mesh_output ~rows ~cols)

let rc_grid s =
  let st = rand_state s in
  let rows, cols = mesh_shape s in
  let netlist =
    Circuits.Library.rc_grid ~rows ~cols ~r:(log_uniform st 1e2 1e4)
      ~c:(log_uniform st 1e-10 1e-8)
      ~diode_every:(5 + (s.seed mod 3))
      ()
  in
  (netlist, Circuits.Library.grid_input, Circuits.Library.grid_output ~rows ~cols)

(* ---------------- state-space residue trajectories ---------------- *)

let state_pole_pairs s =
  let st = rand_state s in
  let n = 1 + (s.size mod 2) in
  Array.init n (fun k ->
      let beta = uniform st 0.1 0.9 +. (float_of_int k *. 0.05) in
      let alpha = uniform st 0.08 0.45 in
      (beta, alpha))

let residue_traces ?(traces = 4) s =
  let st = rand_state s in
  let pairs = state_pole_pairs s in
  let xs = Signal.Grid.linspace 0.0 1.0 40 in
  let data =
    Array.init traces (fun _ ->
        let terms =
          Array.map
            (fun (beta, alpha) ->
              {
                Rvf.Ratfn.beta;
                alpha;
                c1 = uniform st (-2.0) 2.0;
                c2 = uniform st (-2.0) 2.0;
              })
            pairs
        in
        let rf =
          { Rvf.Ratfn.pairs = terms; const = uniform st (-1.0) 1.0; offset = 0.0 }
        in
        Array.map (fun x -> { Complex.re = Rvf.Ratfn.deriv rf x; im = 0.0 }) xs)
  in
  (xs, data)

(* ---------------- synthetic Hammerstein parameters ---------------- *)

(* coefficient bounded away from zero so no residue trace degenerates *)
let coeff st = uniform st 0.3 2.0 *. if Random.State.bool st then 1.0 else -1.0

let synth_params s =
  let st = rand_state s in
  let freq_beta = 2.0 *. Float.pi *. log_uniform st 3e8 3e9 in
  {
    Synth.freq_alpha = -.(uniform st 0.15 0.6) *. freq_beta;
    freq_beta;
    state_beta = uniform st 0.6 1.2;
    state_alpha = uniform st 0.1 0.5;
    r1 = (coeff st, coeff st, coeff st);
    r2 = (coeff st, coeff st, coeff st);
    g0 = (coeff st, coeff st, uniform st 1.5 2.5);
    y_anchor = uniform st (-0.5) 1.0;
    x_lo = 0.4;
    x_hi = 1.4;
  }
