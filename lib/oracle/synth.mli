(** Synthetic Hammerstein oracle: a parallel Hammerstein system built
    from {e chosen} parameters — one complex frequency-pole pair, residue
    functions of the closed-form rational class of {!Rvf.Ratfn} sharing
    one state-pole pair, and a rational DC-conductance trace — together
    with the TFT dataset that system induces.

    Because the frozen-state transfer surface of a parallel Hammerstein
    model is [T(x, s) = H₀(x) + Σ_p r_p(x)/(s − a_p)], the synthetic
    dataset is {e exactly} inside the model class the RVF flow searches:
    extraction must round-trip to the generating parameters (same
    frequency pair, same state pair) and to the generating behaviour
    (same transfer surface, same large-signal DC curve, same transient
    response), up to fitting roundoff. Self-consistency mirrors a real
    circuit: the dataset's [H(x, 0)] equals [d/dx] of its quasi-static
    output [y(x)] by construction. *)

type params = {
  freq_alpha : float;  (** real part of the frequency pole pair, < 0 *)
  freq_beta : float;  (** imaginary part, > 0 *)
  state_beta : float;  (** shared state pole pair [β ± jα] in the x-plane *)
  state_alpha : float;  (** > 0; keep above the extractor's min-imag floor *)
  r1 : float * float * float;
      (** residue fn of pair slot 0: (c1, c2, const), O(1) coefficients;
          {!model_of} scales them by the frequency-pole magnitude so the
          dynamic part of [T(x, s)] stays O(1) against the static part,
          exactly as physical residues scale (cf. {!Ladder.rc_exact}) *)
  r2 : float * float * float;  (** residue fn of pair slot 1 *)
  g0 : float * float * float;  (** DC conductance trace H(x, 0) *)
  y_anchor : float;  (** quasi-static output at [x_lo] *)
  x_lo : float;
  x_hi : float;
}

val default : params
(** A buffer-like instance: x ∈ [0.4, 1.4], GHz-class pair, smooth
    saturating residue functions. *)

val validate : params -> unit
(** Raises [Invalid_argument] on out-of-class parameters (non-negative
    [freq_alpha], non-positive widths, empty state range). *)

val model_of : params -> Hammerstein.Hmodel.t
(** The ground-truth model, assembled through the same
    {!Rvf.Assemble.hammerstein} realization the extractor uses. *)

val state_poles : params -> Complex.t array
(** The generating state pole pair in normalized layout. *)

val freq_poles : params -> Complex.t array
(** The generating frequency pole pair in normalized layout. *)

val dataset_of : ?samples:int -> ?freqs:int -> params -> Tft.Dataset.t
(** Synthesize the TFT dataset of the ground-truth system: [samples]
    (default 40) state sweep points across [x_lo, x_hi] with the exact
    frozen-state transfer matrices on a log frequency grid of [freqs]
    (default 30) points bracketing the frequency pole. *)

type report = {
  freq_pole_rel_err : float;
      (** recovered frequency pair vs generating, relative *)
  state_pole_rel_err : float;
      (** recovered state pair (residue stage) vs generating *)
  surface_rel_rms : float;
      (** transfer surface of extracted vs ground-truth model over a
          dense (x, s) grid, relative RMS *)
  dc_rel_max_err : float;
      (** large-signal DC curves, max deviation over the output range *)
  transient_nrmse : float;
      (** extracted vs ground-truth transient under the paper-style
          training sine (one period spanning the state range) *)
  result : Rvf.result;
}

val roundtrip :
  ?config:Rvf.config -> ?samples:int -> ?freqs:int -> params -> report
(** Run {!Rvf.extract} on {!dataset_of} and measure the round-trip. *)
