(** QCheck generators for the verification properties.

    Every generator is driven by a tiny {!seeded} record (a PRNG seed
    plus a structural size) so that QCheck's shrinking works on the
    integers — a failing case shrinks toward smaller structures and
    smaller seeds, and the printed [{seed; size}] pair reproduces the
    exact input deterministically. The structure builders below are
    pure functions of the record. *)

type seeded = { seed : int; size : int }

val arb : ?min_size:int -> ?max_size:int -> unit -> seeded QCheck.arbitrary
(** [size] uniform in [[min_size, max_size]] (defaults 1–4), seed in
    [[0, 10^6]]. Shrinks on both fields; prints the record. *)

val rand_state : seeded -> Random.State.t
(** The deterministic PRNG of a case. *)

val pole_set : seeded -> Complex.t array
(** A random stable pole set in normalized layout: [size] units, each a
    conjugate pair or two real poles, magnitudes log-spaced with jitter
    across [10⁴–10⁷ rad/s] (so the sets are well separated and inside
    {!grid_hz}), damping bounded away from 0. Always an even count. *)

val rational : seeded -> Ladder.rational
(** {!pole_set} plus random self-conjugate residues scaled by each
    pole's magnitude (keeps [|H|] O(1) over the band). *)

val grid_hz : float array
(** The fixed fitting grid matching {!pole_set}'s band: 80 log-spaced
    points over 100 Hz – 10 MHz. *)

val rc_ladder : seeded -> Ladder.oracle
(** A random passive uniform RC ladder: [size] stages, R log-uniform in
    [100 Ω, 10 kΩ], C log-uniform in [0.1 nF, 10 nF]. *)

val rc_mesh :
  seeded -> Circuit.Netlist.t * string * Engine.Mna.output
(** A random rectangular RC resistor mesh ([(netlist, input, output)]):
    side lengths [size + 2 .. size + 3] (so shrinking walks toward small
    circuits), element values in the ladder's decade ranges, output at
    the far corner. Drives the sparse-vs-dense differential properties
    with genuinely 2-D sparsity patterns. *)

val rc_grid :
  seeded -> Circuit.Netlist.t * string * Engine.Mna.output
(** {!rc_mesh} with a grounded diode sprinkled at every 5th–7th node
    (seed-dependent stride): mildly nonlinear at scale, exercising the
    sparse Newton refill and per-snapshot relinearization paths. *)

val state_pole_pairs : seeded -> (float * float) array
(** 1–2 random x-plane pole pairs [(β, α)] with centers inside [0, 1]
    and widths in [0.08, 0.45] (above the extractor's min-imag floor
    for a unit range). *)

val residue_traces :
  ?traces:int -> seeded -> float array * Complex.t array array
(** [(xs, data)]: a 40-point state grid on [0, 1] and [traces] (default
    4) random rational residue trajectories sharing the pole pairs of
    {!state_pole_pairs} — data exactly inside the state-space VF model
    class, for fit-error-bound properties. *)

val synth_params : seeded -> Synth.params
(** Random synthetic-Hammerstein generating parameters (coefficients
    bounded away from zero so no trace degenerates). *)
