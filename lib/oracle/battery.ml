(* The oracle battery: every analytical-reference check in one sweep.
   Tolerances are deliberately far above observed errors (documented in
   DESIGN.md §12) but far below anything a real regression would
   produce; a NaN always fails because [nan <= bound] is false. *)

type metric = {
  metric : string;
  value : float;
  bound : float;
}

type verdict = {
  check : string;
  seconds : float;
  metrics : metric list;
  error : string option;
}

let metric_passed m = m.value <= m.bound
let verdict_passed v = v.error = None && List.for_all metric_passed v.metrics
let all_passed = List.for_all verdict_passed

let m metric value bound = { metric; value; bound }

(* run one check body, catching anything it throws *)
let checked name f =
  let t0 = Clock.now () in
  match f () with
  | metrics -> { check = name; seconds = Clock.elapsed t0; metrics; error = None }
  | exception e ->
      {
        check = name;
        seconds = Clock.elapsed t0;
        metrics = [];
        error = Some (Printexc.to_string e);
      }

(* ---------------- shared helpers ---------------- *)

let mna_of (o : Ladder.oracle) =
  Engine.Mna.build ~inputs:[ o.Ladder.input ] ~outputs:[ o.Ladder.output ]
    o.Ladder.netlist

(* a log grid bracketing the oracle's own pole magnitudes, so every
   check samples where the dynamics actually live *)
let grid_for (o : Ladder.oracle) ~points =
  let mags = Array.map Complex.norm o.Ladder.exact.Ladder.poles in
  let w_min = Array.fold_left Float.min Float.infinity mags in
  let w_max = Array.fold_left Float.max 0.0 mags in
  let two_pi = 2.0 *. Float.pi in
  Signal.Grid.frequencies_hz
    ~f_min:(w_min /. two_pi /. 30.0)
    ~f_max:(w_max /. two_pi *. 30.0)
    ~points

(* transient training sine for a linear oracle: one period, slow
   against the slowest pole so the trajectory is quasi-static *)
let training_of (o : Ladder.oracle) =
  let mags = Array.map Complex.norm o.Ladder.exact.Ladder.poles in
  let w_min = Array.fold_left Float.min Float.infinity mags in
  let f_train = w_min /. (2.0 *. Float.pi) /. 50.0 in
  ( Circuit.Netlist.Sine { offset = 0.5; ampl = 0.4; freq = f_train; phase = 0.0 },
    1.0 /. f_train )

(* rebuild the oracle's netlist with the designated input re-waved *)
let with_wave (o : Ladder.oracle) wave =
  Circuit.Netlist.make
    (List.map
       (fun (c : Circuit.Netlist.component) ->
         if c.Circuit.Netlist.name = o.Ladder.input then
           match c.Circuit.Netlist.element with
           | Circuit.Netlist.Vsource { p; n; _ } ->
               Circuit.Netlist.vsource ~name:c.Circuit.Netlist.name p n wave
           | _ -> c
         else c)
       o.Ladder.netlist.Circuit.Netlist.components)

(* TFT dataset of a linear oracle from a quasi-static transient *)
let tft_dataset ?(steps = 400) ?(snapshot_every = 16) (o : Ladder.oracle)
    ~freqs_hz =
  let wave, t_stop = training_of o in
  let netlist = with_wave o wave in
  let mna =
    Engine.Mna.build ~inputs:[ o.Ladder.input ] ~outputs:[ o.Ladder.output ]
      netlist
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every } in
  let run =
    Engine.Tran.run ~opts mna ~t_stop ~dt:(t_stop /. float_of_int steps)
  in
  Tft.Dataset.of_snapshots ~mna ~estimator:(Tft.Estimator.make ()) ~freqs_hz
    run.Engine.Tran.snapshots

(* ---------------- AC pencil vs closed form ---------------- *)

let check_ac ~name ~points (o : Ladder.oracle) =
  checked name @@ fun () ->
  let mna = mna_of o in
  let at = Engine.Dc.solve mna in
  let freqs = grid_for o ~points in
  let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
  let ss = Array.map Signal.Grid.s_of_hz freqs in
  let h0 = (Engine.Ac.sweep_siso mna ~at ~freqs_hz:[| 0.0 |]).(0) in
  [
    m "ac_rel_err" (Ladder.max_rel_error ~exact:o.Ladder.exact ~points:ss h) 1e-10;
    m "dc_gain_err"
      (Float.abs (h0.Complex.re -. Ladder.dc_gain o.Ladder.exact))
      1e-10;
    m "dc_gain_imag" (Float.abs h0.Complex.im) 1e-12;
  ]

(* ---------------- TFT of a linear circuit ---------------- *)

(* every snapshot of a linear circuit must carry the exact transfer
   function (state-independence), and VF on the TFT data must recover
   the closed-form poles and residues *)
let check_tft_vf ~name ~points ~snapshots (o : Ladder.oracle) =
  checked name @@ fun () ->
  let freqs_hz = grid_for o ~points in
  let steps = snapshots * 16 in
  let ds = tft_dataset ~steps o ~freqs_hz in
  let ss = Array.map Signal.Grid.s_of_hz freqs_hz in
  let surface_err =
    Array.fold_left
      (fun acc (s : Tft.Dataset.sample) ->
        let row = Array.map (fun h -> Linalg.Cmat.get h 0 0) s.Tft.Dataset.h in
        Float.max acc (Ladder.max_rel_error ~exact:o.Ladder.exact ~points:ss row))
      0.0 ds.Tft.Dataset.samples
  in
  let _, data = Tft.Dataset.siso ds ~input:0 ~output:0 in
  let n = Array.length o.Ladder.exact.Ladder.poles in
  let f_lo = freqs_hz.(0) and f_hi = freqs_hz.(Array.length freqs_hz - 1) in
  let poles0 =
    Vf.Pole.initial_frequency ~f_min:f_lo ~f_max:f_hi
      ~count:(if n mod 2 = 0 then n else n + 1)
  in
  let model, info = Vf.Vfit.fit ~poles:poles0 ~points:ss ~data () in
  (* an even starting count may leave one spurious slot when the true
     order is odd: match only the exact poles against the fitted set *)
  let pole_err =
    Array.fold_left
      (fun acc p ->
        let best = ref infinity in
        Array.iter
          (fun q ->
            best :=
              Float.min !best (Complex.norm (Complex.sub p q) /. Complex.norm p))
          model.Vf.Model.poles;
        Float.max acc !best)
      0.0 o.Ladder.exact.Ladder.poles
  in
  let residue_err =
    if Array.length model.Vf.Model.poles = n then
      Array.fold_left
        (fun acc e ->
          Float.max acc
            (Ladder.max_rel_residue_error ~exact:o.Ladder.exact ~model ~elem:e))
        0.0
        (Array.init (Vf.Model.n_elements model) (fun e -> e))
    else
      (* extra slots: compare behaviour instead of slot-by-slot *)
      Array.fold_left
        (fun acc e ->
          let fit_row = Array.map (Vf.Model.eval model ~elem:e) ss in
          Float.max acc
            (Ladder.max_rel_error ~exact:o.Ladder.exact ~points:ss fit_row))
        0.0
        (Array.init (Vf.Model.n_elements model) (fun e -> e))
  in
  [
    m "snapshot_rel_err" surface_err 1e-9;
    m "fit_rms" info.Vf.Vfit.rms 1e-9;
    m "pole_rel_err" pole_err 1e-8;
    m "residue_rel_err" residue_err 1e-8;
  ]

(* ---------------- synthetic Hammerstein round-trip ---------------- *)

let roundtrip_report = ref None

(* exact-class data converges past 1e-8 given enough relocation sweeps;
   the default 10 stops within a decade of the bound *)
let roundtrip_config =
  let c = Rvf.default_config in
  {
    c with
    Rvf.freq_opts = { c.Rvf.freq_opts with Vf.Vfit.iterations = 30 };
    state_opts = { c.Rvf.state_opts with Vf.Vfit.iterations = 30 };
  }

let run_roundtrip ~quick =
  let samples = if quick then 24 else 40 in
  let freqs = if quick then 16 else 30 in
  Synth.roundtrip ~config:roundtrip_config ~samples ~freqs Synth.default

let check_hammerstein_roundtrip ~quick () =
  checked "hammerstein-roundtrip" @@ fun () ->
  let r = run_roundtrip ~quick in
  roundtrip_report := Some r;
  [
    m "freq_pole_rel_err" r.Synth.freq_pole_rel_err 1e-8;
    m "state_pole_rel_err" r.Synth.state_pole_rel_err 1e-8;
    m "surface_rel_rms" r.Synth.surface_rel_rms 1e-8;
    m "dc_rel_max_err" r.Synth.dc_rel_max_err 1e-8;
  ]

let check_hammerstein_transient ~quick () =
  checked "hammerstein-transient" @@ fun () ->
  let r =
    match !roundtrip_report with
    | Some r -> r
    | None -> run_roundtrip ~quick
  in
  [ m "transient_nrmse" r.Synth.transient_nrmse 1e-6 ]

(* ---------------- dense vs fast relocation kernels ---------------- *)

(* the fast in-place kernel promises the same arithmetic as the legacy
   dense one, so the metric is a mismatch count over raw float bits *)
let check_kernel_parity ~quick () =
  checked "vf-kernel-parity" @@ fun () ->
  let o = Ladder.rlc () in
  let freqs_hz = grid_for o ~points:(if quick then 20 else 40) in
  let ss = Array.map Signal.Grid.s_of_hz freqs_hz in
  let data = [| Ladder.sample o.Ladder.exact ss |] in
  let n = Array.length o.Ladder.exact.Ladder.poles in
  let f_lo = freqs_hz.(0) and f_hi = freqs_hz.(Array.length freqs_hz - 1) in
  let poles0 =
    Vf.Pole.initial_frequency ~f_min:f_lo ~f_max:f_hi
      ~count:(if n mod 2 = 0 then n else n + 1)
  in
  let run kernel =
    Vf.Vfit.fit
      ~opts:
        {
          Vf.Vfit.default_frequency_opts with
          Vf.Vfit.relocation_kernel = kernel;
        }
      ~poles:poles0 ~points:ss ~data ()
  in
  let md, id = run Vf.Vfit.Dense in
  let mf, i_f = run Vf.Vfit.Fast in
  let bits_differ a b =
    not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  in
  let mismatches = ref 0 in
  let cmp a b = if bits_differ a b then incr mismatches in
  if Array.length md.Vf.Model.poles <> Array.length mf.Vf.Model.poles then
    incr mismatches
  else
    Array.iteri
      (fun k (p : Complex.t) ->
        cmp p.Complex.re mf.Vf.Model.poles.(k).Complex.re;
        cmp p.Complex.im mf.Vf.Model.poles.(k).Complex.im)
      md.Vf.Model.poles;
  Array.iteri
    (fun e row -> Array.iteri (fun k c -> cmp c mf.Vf.Model.coeffs.(e).(k)) row)
    md.Vf.Model.coeffs;
  Array.iteri (fun e d -> cmp d mf.Vf.Model.consts.(e)) md.Vf.Model.consts;
  Array.iteri (fun e h -> cmp h mf.Vf.Model.slopes.(e)) md.Vf.Model.slopes;
  [
    m "kernel_bitwise_mismatches" (float_of_int !mismatches) 0.0;
    m "kernel_rms_abs_diff" (Float.abs (id.Vf.Vfit.rms -. i_f.Vf.Vfit.rms)) 0.0;
    m "fast_fit_rms" i_f.Vf.Vfit.rms 1e-9;
  ]

(* ---------------- full pipeline on the linear oracle ---------------- *)

let check_pipeline ~quick () =
  checked "pipeline-linear-model" @@ fun () ->
  let o = Ladder.rc ~stages:3 () in
  let wave, t_stop = training_of o in
  let steps = if quick then 240 else 480 in
  let training =
    {
      Tft_rvf.Pipeline.wave;
      t_stop;
      dt = t_stop /. float_of_int steps;
      snapshot_every = (if quick then 8 else 4);
    }
  in
  let mags = Array.map Complex.norm o.Ladder.exact.Ladder.poles in
  let two_pi = 2.0 *. Float.pi in
  let f_min =
    Array.fold_left Float.min Float.infinity mags /. two_pi /. 30.0
  in
  let f_max = Array.fold_left Float.max 0.0 mags /. two_pi *. 30.0 in
  let config =
    Tft_rvf.Pipeline.default_config_for
      ~points:(if quick then 16 else 30)
      ~f_min ~f_max ~training ()
  in
  let outcome =
    Tft_rvf.Pipeline.extract ~config ~netlist:o.Ladder.netlist
      ~input:o.Ladder.input ~output:o.Ladder.output ()
  in
  let v =
    Tft_rvf.Report.validate ~model:outcome.Tft_rvf.Pipeline.model
      ~netlist:o.Ladder.netlist ~input:o.Ladder.input ~output:o.Ladder.output
      ~wave ~t_stop ~dt:(t_stop /. float_of_int steps) ()
  in
  (* the model's frozen-state transfer must also match the closed form
     (a linear circuit's TFT hyperplane is flat along x) *)
  let freqs_hz = grid_for o ~points:(if quick then 16 else 30) in
  let ss = Array.map Signal.Grid.s_of_hz freqs_hz in
  let surface_err =
    Array.fold_left
      (fun acc x ->
        let row =
          Array.map
            (fun s ->
              Hammerstein.Hmodel.transfer outcome.Tft_rvf.Pipeline.model ~x ~s)
            ss
        in
        Float.max acc (Ladder.max_rel_error ~exact:o.Ladder.exact ~points:ss row))
      0.0 [| 0.2; 0.5; 0.8 |]
  in
  [
    m "validation_nrmse" v.Tft_rvf.Report.nrmse 1e-4;
    m "model_surface_rel_err" surface_err 1e-6;
  ]

(* ---------------- sparse backend vs dense backend ---------------- *)

(* the sparse tier's contract: re-stamped CSC Jacobians and certified
   rational-Krylov sweeps reproduce the dense per-snapshot transfer
   trajectories. A mildly nonlinear diode grid exercises the
   state-dependent refill. Errors are measured against the trajectory
   scale — per-point relative error is meaningless where |H| underflows
   toward the far corner of the mesh. *)
let check_sparse_parity ~quick () =
  checked "sparse-tft-parity" @@ fun () ->
  let rows = if quick then 5 else 6 and cols = if quick then 5 else 7 in
  let f_train = 2e3 in
  let wave =
    Circuit.Netlist.Sine
      { offset = 0.45; ampl = 0.3; freq = f_train; phase = 0.0 }
  in
  let netlist = Circuits.Library.rc_grid ~rows ~cols ~input_wave:wave () in
  let mna =
    Engine.Mna.build
      ~inputs:[ Circuits.Library.grid_input ]
      ~outputs:[ Circuits.Library.grid_output ~rows ~cols ]
      netlist
  in
  let t_stop = 1.0 /. f_train in
  let steps = 96 in
  let opts =
    { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 12 }
  in
  let run =
    Engine.Tran.run ~opts mna ~t_stop ~dt:(t_stop /. float_of_int steps)
  in
  let freqs_hz =
    Signal.Grid.frequencies_hz ~f_min:1e3 ~f_max:1e8
      ~points:(if quick then 12 else 20)
  in
  let estimator = Tft.Estimator.make () in
  let dense =
    Tft.Dataset.of_snapshots ~mna ~estimator ~freqs_hz
      run.Engine.Tran.snapshots
  in
  let sparse =
    Tft.Dataset.of_snapshots ~backend:Engine.Mna.Sparse ~mna ~estimator
      ~freqs_hz run.Engine.Tran.snapshots
  in
  let get hm = Linalg.Cmat.get hm 0 0 in
  let scale = ref 0.0 in
  Array.iter
    (fun (s : Tft.Dataset.sample) ->
      scale := Float.max !scale (Float.abs (get s.Tft.Dataset.h0).Complex.re);
      Array.iter
        (fun hm -> scale := Float.max !scale (Complex.norm (get hm)))
        s.Tft.Dataset.h)
    dense.Tft.Dataset.samples;
  let h_err = ref 0.0 and h0_err = ref 0.0 in
  Array.iteri
    (fun k (sd : Tft.Dataset.sample) ->
      let sp = sparse.Tft.Dataset.samples.(k) in
      h0_err :=
        Float.max !h0_err
          (Complex.norm
             (Complex.sub (get sp.Tft.Dataset.h0) (get sd.Tft.Dataset.h0))
          /. !scale);
      Array.iteri
        (fun l hm ->
          h_err :=
            Float.max !h_err
              (Complex.norm (Complex.sub (get sp.Tft.Dataset.h.(l)) (get hm))
              /. !scale))
        sd.Tft.Dataset.h)
    dense.Tft.Dataset.samples;
  [
    m "samples_mismatch"
      (float_of_int
         (abs
            (Array.length dense.Tft.Dataset.samples
            - Array.length sparse.Tft.Dataset.samples)))
      0.0;
    m "transfer_rel_err" !h_err 1e-8;
    m "dc_rel_err" !h0_err 1e-8;
  ]

(* the sparse tier at scale: DC solve + rational-Krylov sweep of a
   1000-stage RC ladder against its closed-form tridiagonal spectrum —
   a size the dense path cannot reasonably touch per grid point *)
let check_large_ladder ~quick () =
  checked "large-ladder-recovery" @@ fun () ->
  let o = Ladder.rc ~stages:1000 () in
  let mna = mna_of o in
  let ctx = Engine.Mna.sparse_ctx mna in
  let sw = Engine.Dc.sparse_ws ~ctx mna in
  let at = Engine.Dc.solve ~backend:Engine.Mna.Sparse ~sparse:sw mna in
  let sev = Engine.Mna.eval_sparse mna ctx ~time:0.0 at in
  let g = sev.Engine.Mna.sg and c = sev.Engine.Mna.sc in
  let ws =
    Engine.Ratkrylov.make_ws
      ~pat:(Engine.Mna.sparse_pattern ctx)
      ~b:(Engine.Mna.b_matrix mna)
      ~d:(Engine.Mna.d_matrix mna)
  in
  let freqs = grid_for o ~points:(if quick then 24 else 40) in
  let ss = Array.map Signal.Grid.s_of_hz freqs in
  let h, stats = Engine.Ratkrylov.sweep ws ~g ~c ~ss in
  let row = Array.map (fun hm -> Linalg.Cmat.get hm 0 0) h in
  let h0, _ = Engine.Ratkrylov.sweep ws ~g ~c ~ss:[| Complex.zero |] in
  let z0 = Linalg.Cmat.get h0.(0) 0 0 in
  [
    m "sweep_rel_err"
      (Ladder.max_rel_error ~exact:o.Ladder.exact ~points:ss row)
      1e-8;
    m "dc_gain_err" (Float.abs (z0.Complex.re -. Ladder.dc_gain o.Ladder.exact)) 1e-8;
    m "dc_gain_imag" (Float.abs z0.Complex.im) 1e-10;
    m "krylov_worst_residual" stats.Engine.Ratkrylov.worst_residual 1e-10;
  ]

(* ---------------- the battery ---------------- *)

let run ?(quick = false) () =
  roundtrip_report := None;
  let points = if quick then 24 else 60 in
  [
    check_ac ~name:"rc-ac-closed-form" ~points (Ladder.rc ());
    check_ac ~name:"rlc-ac-closed-form" ~points (Ladder.rlc ());
    check_tft_vf ~name:"rc-tft-linear"
      ~points:(if quick then 16 else 30)
      ~snapshots:(if quick then 15 else 25)
      (Ladder.rc ());
    check_tft_vf ~name:"rlc-tft-vf"
      ~points:(if quick then 16 else 30)
      ~snapshots:(if quick then 15 else 25)
      (Ladder.rlc ());
    check_hammerstein_roundtrip ~quick ();
    check_hammerstein_transient ~quick ();
    check_kernel_parity ~quick ();
    check_pipeline ~quick ();
    check_sparse_parity ~quick ();
    check_large_ladder ~quick ();
  ]

(* ---------------- reporting ---------------- *)

let json ~quick verdicts =
  let metric_json mt =
    Minijson.Obj
      [
        ("name", Minijson.Str mt.metric);
        ("value", Minijson.Num mt.value);
        ("bound", Minijson.Num mt.bound);
        ("passed", Minijson.Bool (metric_passed mt));
      ]
  in
  let verdict_json v =
    Minijson.Obj
      (("name", Minijson.Str v.check)
       :: ("passed", Minijson.Bool (verdict_passed v))
       :: ("seconds", Minijson.Num v.seconds)
       :: (match v.error with
          | Some e -> [ ("error", Minijson.Str e) ]
          | None -> [])
      @ [ ("metrics", Minijson.Arr (List.map metric_json v.metrics)) ])
  in
  Minijson.emit
    (Minijson.Obj
       [
         ("schema_version", Minijson.Num 1.0);
         ("kind", Minijson.Str "oracle");
         ("quick", Minijson.Bool quick);
         ("passed", Minijson.Bool (all_passed verdicts));
         ("checks", Minijson.Arr (List.map verdict_json verdicts));
       ])

let summary verdicts =
  let buf = Buffer.create 512 in
  List.iter
    (fun v ->
      Printf.bprintf buf "%-4s %-24s %7.3f s"
        (if verdict_passed v then "ok" else "FAIL")
        v.check v.seconds;
      (match v.error with
      | Some e -> Printf.bprintf buf "  error: %s" e
      | None ->
          List.iter
            (fun mt ->
              Printf.bprintf buf "  %s %.2e%s" mt.metric mt.value
                (if metric_passed mt then "" else
                   Printf.sprintf " > %.0e" mt.bound))
            v.metrics);
      Buffer.add_char buf '\n')
    verdicts;
  Buffer.contents buf
