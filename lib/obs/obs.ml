(* One hub owning the three classic collectors plus the algorithmic
   event log. The mutex only guards the log's cons + sequence bump —
   a few instructions — and is taken exclusively on the enabled path;
   the [None] path is a single match, with no clock read. *)

type t = {
  diag : Diag.t;
  tracer : Trace.t;
  metrics : Metrics.t;
  origin : float;
  mutex : Mutex.t;
  mutable seq : int;
  mutable log : Minijson.t list;  (* newest first *)
}

let create () =
  let tracer = Trace.create () in
  {
    diag = Diag.create ();
    tracer;
    metrics = Metrics.create ();
    origin = Clock.now ();
    mutex = Mutex.create ();
    seq = 0;
    log = [];
  }

let diag t = t.diag
let tracer t = t.tracer
let metrics t = t.metrics
let trace_main t = Trace.main t.tracer

let record t kind fields =
  let ts = Clock.now () -. t.origin in
  Mutex.lock t.mutex;
  let seq = t.seq in
  t.seq <- seq + 1;
  t.log <-
    Minijson.Obj
      (("type", Minijson.Str kind)
      :: ("seq", Minijson.Num (float_of_int seq))
      :: ("t", Minijson.Num ts)
      :: fields)
    :: t.log;
  Mutex.unlock t.mutex

let event o ~kind fields =
  match o with None -> () | Some t -> record t kind fields

let rcond o ~site v =
  match o with
  | None -> ()
  | Some t ->
      record t "rcond" [ ("site", Minijson.Str site); ("value", Minijson.Num v) ]

let poles_json poles =
  Minijson.Arr
    (Array.to_list
       (Array.map
          (fun (z : Complex.t) ->
            Minijson.Arr [ Minijson.Num z.Complex.re; Minijson.Num z.Complex.im ])
          poles))

let vf_iteration o ~label ~iteration ~sigma_rms ~d_tilde ~scale_spread ~flips
    poles =
  match o with
  | None -> ()
  | Some t ->
      record t "vf_iteration"
        [
          ("label", Minijson.Str label);
          ("pole_count", Minijson.Num (float_of_int (Array.length poles)));
          ("iteration", Minijson.Num (float_of_int iteration));
          ("sigma_rms", Minijson.Num sigma_rms);
          ("d_tilde", Minijson.Num d_tilde);
          ("scale_spread", Minijson.Num scale_spread);
          ("flips", Minijson.Num (float_of_int flips));
          ("poles", poles_json poles);
        ]

let vf_attempt o ~label ~pole_count ~rms ~tol ~accepted =
  match o with
  | None -> ()
  | Some t ->
      record t "vf_attempt"
        [
          ("label", Minijson.Str label);
          ("pole_count", Minijson.Num (float_of_int pole_count));
          ("rms", Minijson.Num rms);
          ("tol", Minijson.Num tol);
          ("accepted", Minijson.Bool accepted);
        ]

let vf_settled o ~label ~pole_count ~rms =
  match o with
  | None -> ()
  | Some t ->
      record t "vf_settled"
        [
          ("label", Minijson.Str label);
          ("pole_count", Minijson.Num (float_of_int pole_count));
          ("rms", Minijson.Num rms);
        ]

let stage o name =
  match o with
  | None -> ()
  | Some t -> record t "stage" [ ("name", Minijson.Str name) ]

let escalation o ~rung ~outcome ~detail =
  match o with
  | None -> ()
  | Some t ->
      record t "escalation"
        [
          ("rung", Minijson.Str rung);
          ("outcome", Minijson.Str outcome);
          ("detail", Minijson.Str detail);
        ]

let violation o ~site detail =
  match o with
  | None -> ()
  | Some t ->
      record t "violation"
        [ ("site", Minijson.Str site); ("detail", Minijson.Str detail) ]

let checkpoint o ~stage ~action =
  match o with
  | None -> ()
  | Some t ->
      record t "checkpoint"
        [ ("stage", Minijson.Str stage); ("action", Minijson.Str action) ]

let cancelled o ~site =
  match o with
  | None -> ()
  | Some t -> record t "cancelled" [ ("site", Minijson.Str site) ]

let deadline o ~site ~stage ~budget_seconds ~elapsed_seconds =
  match o with
  | None -> ()
  | Some t ->
      record t "deadline"
        [
          ("site", Minijson.Str site);
          ("stage", Minijson.Str stage);
          ("budget_seconds", Minijson.Num budget_seconds);
          ("elapsed_seconds", Minijson.Num elapsed_seconds);
        ]

let quarantine o ~n_bad ~repaired ~dropped =
  match o with
  | None -> ()
  | Some t ->
      record t "quarantine"
        [
          ("n_bad", Minijson.Num (float_of_int n_bad));
          ("repaired", Minijson.Num (float_of_int repaired));
          ("dropped", Minijson.Num (float_of_int dropped));
        ]

let event_count t =
  Mutex.lock t.mutex;
  let n = t.seq in
  Mutex.unlock t.mutex;
  n

let events t =
  Mutex.lock t.mutex;
  let l = t.log in
  Mutex.unlock t.mutex;
  List.rev l

let convergence_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Minijson.emit e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
