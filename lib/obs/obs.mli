(** The unified observability hub: one handle subsuming the four
    telemetry side-channels ({!Diag}, {!Trace}, {!Metrics}, {!Guard}
    violations) and adding the {e algorithmic} event stream the paper's
    central object calls for — per-iteration VF pole positions, sigma
    residual norms per relocation, reciprocal-condition time series
    from the LU/complex-LU/QR factorizations, escalation-rung and
    quarantine events.

    A {!t} owns one {!Diag} collector, one {!Trace} collector and one
    {!Metrics} registry, plus a mutex-protected JSONL event log.
    Instrumented code threads a single [?obs] argument; the established
    contract holds: every recording entry point takes a [t option],
    [None] is a near-free no-op performing {e zero clock reads}, and the
    enabled path runs the same numerical code so extraction results are
    bit-for-bit identical either way (asserted in the test suite).

    The event log is serialized to [convergence.jsonl] — one JSON
    object per line, each carrying ["type"], a monotonically increasing
    ["seq"] and ["t"] seconds since the collector's creation — as part
    of the run bundle written by {!Obs_bundle}. *)

type t

val create : unit -> t
(** Fresh hub; its time origin is [Clock.now ()] at creation. *)

(** {2 Subsumed collectors}

    The hub's own collectors, for deriving the classic [?diag]/[?trace]/
    [?metrics] arguments so one handle feeds every channel. *)

val diag : t -> Diag.t
val tracer : t -> Trace.t
val metrics : t -> Metrics.t

val trace_main : t -> Trace.buf
(** The tracer's main-domain recording buffer ({!Trace.main}). *)

(** {2 Event emission}

    All take a [t option]; [None] short-circuits before any allocation
    or clock read. Emission is thread-safe (pool workers emit pencil
    rcond events concurrently). *)

val event : t option -> kind:string -> (string * Minijson.t) list -> unit
(** Record a raw event. [kind] becomes the ["type"] field; ["seq"] and
    ["t"] are stamped here. *)

val rcond : t option -> site:string -> float -> unit
(** One sample of the reciprocal-condition time series for a named
    factorization site (["dc.lu"], ["ac.pencil"], ["vf.sigma_qr"]). *)

val vf_iteration :
  t option ->
  label:string ->
  iteration:int ->
  sigma_rms:float ->
  d_tilde:float ->
  scale_spread:float ->
  flips:int ->
  Complex.t array ->
  unit
(** One VF pole-relocation step: the full relocated pole set (as
    [[re, im]] pairs) plus the relocation telemetry. [label] is the fit
    label (["vf.freq"], ["vf.state"], ["recursion.x"], ...); the pole
    count distinguishes escalation attempts within a label. *)

val vf_attempt :
  t option ->
  label:string -> pole_count:int -> rms:float -> tol:float ->
  accepted:bool -> unit
(** Outcome of one [fit_auto] pole-count attempt. *)

val vf_settled : t option -> label:string -> pole_count:int -> rms:float -> unit
(** The pole count a [fit_auto] escalation settled on. *)

val stage : t option -> string -> unit
(** A pipeline/RVF/recursion stage boundary (["rvf.frequency_stage"],
    ["recursion.x_stage"], ...). *)

val escalation :
  t option -> rung:string -> outcome:string -> detail:string -> unit
(** One escalation-ladder rung result in the non-raising pipeline. *)

val violation : t option -> site:string -> string -> unit
(** A guard violation or recoverable numerical failure, by site. *)

val quarantine : t option -> n_bad:int -> repaired:int -> dropped:int -> unit
(** Snapshot-quarantine outcome in the TFT dataset stage. *)

val checkpoint : t option -> stage:string -> action:string -> unit
(** A checkpoint-store interaction: [action] is ["store"], ["load"],
    ["stale"] (fingerprint/schema miss, recomputing) or ["invalid"]
    (torn/malformed artifact rejected and recomputed). *)

val cancelled : t option -> site:string -> unit
(** Cooperative cancellation observed at [site]. *)

val deadline :
  t option ->
  site:string ->
  stage:string ->
  budget_seconds:float ->
  elapsed_seconds:float ->
  unit
(** A deadline budget tripped: the probe [site] that noticed and the
    scope [stage] whose budget ran out. *)

(** {2 Collection} *)

val event_count : t -> int

val events : t -> Minijson.t list
(** All recorded events in emission order. *)

val convergence_jsonl : t -> string
(** The event log as JSONL: one compact JSON object per line. *)
