exception Invalid of { file : string; reason : string }

let describe_invalid ~file ~reason =
  Printf.sprintf "invalid bundle: %s: %s" file reason

let () =
  Printexc.register_printer (function
    | Invalid { file; reason } -> Some (describe_invalid ~file ~reason)
    | _ -> None)

let schema_version = 1

let host_json () =
  Minijson.Obj
    [
      ("cores", Minijson.Num (float_of_int (Domain.recommended_domain_count ())));
      ("os", Minijson.Str Sys.os_type);
      ("word_size", Minijson.Num (float_of_int Sys.word_size));
    ]

let manifest ~tool ~status ~seed ~config () =
  Minijson.Obj
    [
      ("schema_version", Minijson.Num (float_of_int schema_version));
      ("kind", Minijson.Str "obs-bundle");
      ("tool", Minijson.Str tool);
      ("status", Minijson.Str status);
      ("seed", Minijson.Num (float_of_int seed));
      ("host", host_json ());
      ("config", Minijson.Obj config);
    ]

(* The one Diag.report serializer (Report.diag_json re-exports it): the
   hand-rolled layout predates Minijson.emit and is kept because the
   diag-smoke validator pins this exact shape. *)
let diag_json (r : Diag.report) =
  let buf = Buffer.create 4096 in
  let sep = ref "" in
  let item fmt =
    Buffer.add_string buf !sep;
    sep := ",";
    Printf.bprintf buf fmt
  in
  let fresh () = sep := "" in
  Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"spans\": [";
  fresh ();
  List.iter
    (fun (s : Diag.span) ->
      item "\n    {\"stage\": \"%s\", \"seconds\": %s}"
        (Minijson.escape s.Diag.stage)
        (Minijson.float s.Diag.seconds))
    r.Diag.spans;
  Buffer.add_string buf "\n  ],\n  \"counters\": {";
  fresh ();
  List.iter
    (fun (name, n) -> item "\n    \"%s\": %d" (Minijson.escape name) n)
    r.Diag.counters;
  Buffer.add_string buf "\n  },\n  \"stats\": [";
  fresh ();
  List.iter
    (fun (s : Diag.stat) ->
      item
        "\n    {\"name\": \"%s\", \"samples\": %d, \"total\": %s, \"min\": \
         %s, \"max\": %s, \"last\": %s, \"mean\": %s}"
        (Minijson.escape s.Diag.name)
        s.Diag.samples
        (Minijson.float s.Diag.total)
        (Minijson.float s.Diag.min)
        (Minijson.float s.Diag.max)
        (Minijson.float s.Diag.last)
        (Minijson.float (Diag.mean s)))
    r.Diag.stats;
  Buffer.add_string buf "\n  ],\n  \"events\": [";
  fresh ();
  List.iter
    (fun (e : Diag.event) ->
      item "\n    {\"level\": \"%s\", \"stage\": \"%s\", \"message\": \"%s\"}"
        (Diag.level_to_string e.Diag.level)
        (Minijson.escape e.Diag.stage)
        (Minijson.escape e.Diag.message))
    r.Diag.events;
  Buffer.add_string buf "\n  ],\n  \"notes\": {";
  fresh ();
  List.iter
    (fun (k, v) ->
      item "\n    \"%s\": \"%s\"" (Minijson.escape k) (Minijson.escape v))
    r.Diag.notes;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

(* write-to-temp + atomic rename: a reader (or a crash mid-write) never
   observes a torn bundle file — it sees either the previous complete
   version or the new one *)
let write_file path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      flush oc);
  Sys.rename tmp path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write ~dir ~manifest ?repro obs =
  mkdir_p dir;
  let file name = Filename.concat dir name in
  write_file (file "manifest.json") (Minijson.emit manifest ^ "\n");
  write_file (file "trace.json") (Trace.chrome_json (Obs.tracer obs));
  write_file (file "metrics.json")
    (Metrics.to_json (Metrics.snapshot (Obs.metrics obs)));
  write_file (file "diag.json") (diag_json (Diag.report (Obs.diag obs)));
  write_file (file "convergence.jsonl") (Obs.convergence_jsonl obs);
  match repro with
  | None -> ()
  | Some capsule -> write_file (file "repro.json") (Minijson.emit capsule ^ "\n")

type t = {
  dir : string;
  manifest : Minijson.t;
  trace : Minijson.t;
  metrics : Minijson.t;
  diag : Minijson.t;
  events : Minijson.t list;
}

(* --- validation ------------------------------------------------------- *)

let fail file reason = raise (Invalid { file; reason })

let read_file file path =
  match open_in_bin path with
  | exception Sys_error msg -> fail file msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      text

let parse_json file text =
  try Minijson.parse text
  with Minijson.Parse_error msg -> fail file msg

let require_version file root =
  match Minijson.num_field root "schema_version" with
  | Some v when v = float_of_int schema_version -> ()
  | Some v -> fail file (Printf.sprintf "unsupported schema_version %g" v)
  | None -> fail file "missing schema_version"

let require field_kind file root key =
  match (field_kind, Minijson.field root key) with
  | _, None -> fail file (Printf.sprintf "missing field %S" key)
  | `Str, Some (Minijson.Str _)
  | `Num, Some (Minijson.Num _)
  | `Arr, Some (Minijson.Arr _)
  | `Obj, Some (Minijson.Obj _) ->
      ()
  | _, Some _ -> fail file (Printf.sprintf "field %S has the wrong type" key)

let validate_manifest file root =
  require_version file root;
  (match Minijson.str_field root "kind" with
  | Some "obs-bundle" -> ()
  | Some other -> fail file (Printf.sprintf "kind %S is not obs-bundle" other)
  | None -> fail file "missing kind");
  require `Str file root "tool";
  require `Str file root "status";
  require `Num file root "seed";
  require `Obj file root "config";
  require `Obj file root "host";
  let host = Minijson.Obj (Option.get (Minijson.obj_field root "host")) in
  require `Num file host "cores";
  require `Str file host "os";
  require `Num file host "word_size"

let validate_trace file root =
  require_version file root;
  require `Arr file root "traceEvents"

let validate_metrics file root =
  require_version file root;
  require `Obj file root "counters";
  require `Obj file root "gauges";
  require `Arr file root "histograms";
  List.iter
    (fun h ->
      require `Str file h "name";
      require `Num file h "count";
      require `Arr file h "buckets";
      let name = Option.value ~default:"?" (Minijson.str_field h "name") in
      let count = Option.value ~default:0.0 (Minijson.num_field h "count") in
      let in_buckets =
        List.fold_left
          (fun acc b ->
            acc +. Option.value ~default:0.0 (Minijson.num_field b "count"))
          0.0
          (Option.value ~default:[] (Minijson.arr_field h "buckets"))
      in
      if in_buckets <> count then
        fail file
          (Printf.sprintf
             "histogram %S: bucket counts sum to %g, histogram count is %g"
             name in_buckets count))
    (Option.value ~default:[] (Minijson.arr_field root "histograms"))

let validate_diag file root =
  require_version file root;
  require `Arr file root "spans";
  require `Obj file root "counters";
  require `Arr file root "stats";
  require `Arr file root "events";
  require `Obj file root "notes"

let parse_events file text =
  let lines = String.split_on_char '\n' text in
  let events = ref [] and idx = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then begin
        let where reason = Printf.sprintf "line %d: %s" (!idx + 1) reason in
        let e =
          try Minijson.parse line
          with Minijson.Parse_error msg -> fail file (where msg)
        in
        (match e with
        | Minijson.Obj _ -> ()
        | _ -> fail file (where "event is not a JSON object"));
        (match Minijson.str_field e "type" with
        | Some _ -> ()
        | None -> fail file (where "missing type"));
        (match Minijson.num_field e "t" with
        | Some _ -> ()
        | None -> fail file (where "missing t"));
        (match Minijson.num_field e "seq" with
        | Some s when s = float_of_int !idx -> ()
        | Some s ->
            fail file (where (Printf.sprintf "seq %g, expected %d" s !idx))
        | None -> fail file (where "missing seq"));
        events := e :: !events;
        incr idx
      end)
    lines;
  List.rev !events

let load dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail "." "bundle directory does not exist";
  let doc name validate =
    let root = parse_json name (read_file name (Filename.concat dir name)) in
    validate name root;
    root
  in
  let manifest = doc "manifest.json" validate_manifest in
  let trace = doc "trace.json" validate_trace in
  let metrics = doc "metrics.json" validate_metrics in
  let diag = doc "diag.json" validate_diag in
  let events =
    parse_events "convergence.jsonl"
      (read_file "convergence.jsonl" (Filename.concat dir "convergence.jsonl"))
  in
  { dir; manifest; trace; metrics; diag; events }
