let pf = Printf.sprintf

(* Metrics.to_json renders non-finite floats as the strings "nan" /
   "inf" / "-inf"; read numbers through this everywhere. *)
let fnum = function
  | Minijson.Num v -> v
  | Minijson.Str "nan" -> Float.nan
  | Minijson.Str "inf" -> Float.infinity
  | Minijson.Str "-inf" -> Float.neg_infinity
  | _ -> Float.nan

let fnum_field j key =
  match Minijson.field j key with None -> Float.nan | Some v -> fnum v

let str_field_or d j key = Option.value ~default:d (Minijson.str_field j key)

let html_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let g6 v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e21 then pf "%.3e" v
  else pf "%.4g" v

(* --- OpenMetrics ------------------------------------------------------ *)

let om_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let om_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else pf "%.17g" v

let openmetrics (b : Obs_bundle.t) =
  let buf = Buffer.create 4096 in
  let counters = Option.value ~default:[] (Minijson.obj_field b.metrics "counters") in
  let gauges = Option.value ~default:[] (Minijson.obj_field b.metrics "gauges") in
  let histograms =
    Option.value ~default:[] (Minijson.arr_field b.metrics "histograms")
  in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Printf.bprintf buf "# TYPE %s counter\n%s_total %s\n" n n (om_value (fnum v)))
    counters;
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (om_value (fnum v)))
    gauges;
  List.iter
    (fun h ->
      let n = om_name (str_field_or "histogram" h "name") in
      let buckets = Option.value ~default:[] (Minijson.arr_field h "buckets") in
      Printf.bprintf buf "# TYPE %s histogram\n" n;
      let cum = ref 0.0 in
      List.iter
        (fun bk ->
          cum := !cum +. fnum_field bk "count";
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %s\n" n
            (om_value (fnum_field bk "le"))
            (om_value !cum))
        buckets;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %s\n" n
        (om_value (fnum_field h "count"));
      Printf.bprintf buf "%s_sum %s\n" n (om_value (fnum_field h "sum"));
      Printf.bprintf buf "%s_count %s\n" n (om_value (fnum_field h "count"));
      List.iter
        (fun q ->
          let v = fnum_field h q in
          if not (Float.is_nan v) then begin
            Printf.bprintf buf "# TYPE %s_%s gauge\n" n q;
            Printf.bprintf buf "%s_%s %s\n" n q (om_value v)
          end)
        [ "p50"; "p95"; "p99" ])
    histograms;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* --- event extraction ------------------------------------------------- *)

type vf_group = {
  glabel : string;
  gpoles : int;
  mutable rows : (int * (float * float) array * float) list;
      (* (iteration, poles, sigma_rms), reverse order *)
}

let vf_groups (b : Obs_bundle.t) =
  let groups = ref [] in
  List.iter
    (fun e ->
      if Minijson.str_field e "type" = Some "vf_iteration" then begin
        let label = str_field_or "?" e "label" in
        let pc = int_of_float (fnum_field e "pole_count") in
        let poles =
          Option.value ~default:[] (Minijson.arr_field e "poles")
          |> List.filter_map (fun p ->
                 match Minijson.as_arr p with
                 | Some [ re; im ] -> Some (fnum re, fnum im)
                 | _ -> None)
          |> Array.of_list
        in
        let row =
          (int_of_float (fnum_field e "iteration"), poles, fnum_field e "sigma_rms")
        in
        match
          List.find_opt (fun g -> g.glabel = label && g.gpoles = pc) !groups
        with
        | Some g -> g.rows <- row :: g.rows
        | None -> groups := { glabel = label; gpoles = pc; rows = [ row ] } :: !groups
      end)
    b.events;
  List.rev_map (fun g -> { g with rows = List.rev g.rows }) !groups

let rcond_series (b : Obs_bundle.t) =
  let sites = ref [] in
  List.iter
    (fun e ->
      if Minijson.str_field e "type" = Some "rcond" then begin
        let site = str_field_or "?" e "site" in
        let v = fnum_field e "value" in
        match List.assoc_opt site !sites with
        | Some cell -> cell := v :: !cell
        | None -> sites := (site, ref [ v ]) :: !sites
      end)
    b.events;
  List.rev_map (fun (site, cell) -> (site, List.rev !cell)) !sites

(* --- SVG helpers ------------------------------------------------------ *)

let palette =
  [|
    "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e";
    "#17becf"; "#8c564b"; "#e377c2"; "#7f7f7f"; "#bcbd22";
  |]

let color i = palette.(i mod Array.length palette)

(* Symmetric log: keeps sign, compresses dynamic range so kHz and GHz
   poles share one readable plot. *)
let symlog scale v =
  let s = if scale > 0.0 && Float.is_finite scale then scale else 1.0 in
  Float.of_int (compare v 0.0) *. Float.log10 (1.0 +. (Float.abs v /. s))

let pole_plot groups =
  let coords =
    List.concat_map
      (fun g ->
        List.concat_map
          (fun (_, poles, _) ->
            Array.to_list poles |> List.concat_map (fun (re, im) -> [ re; im ]))
          g.rows)
      groups
  in
  let finite = List.filter Float.is_finite coords in
  if finite = [] then "<p class=\"empty\">no vf_iteration events</p>"
  else begin
    let maxmag = List.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 finite in
    let scale = if maxmag > 0.0 then maxmag /. 1e3 else 1.0 in
    let u = symlog scale in
    let us = List.map u finite in
    let lo = List.fold_left Float.min Float.infinity us -. 0.2 in
    let hi = List.fold_left Float.max Float.neg_infinity us +. 0.2 in
    let w = 640.0 and h = 420.0 and m = 34.0 in
    let px v = m +. ((u v -. lo) /. (hi -. lo) *. (w -. (2.0 *. m))) in
    let py v = h -. m -. ((u v -. lo) /. (hi -. lo) *. (h -. (2.0 *. m))) in
    let buf = Buffer.create 8192 in
    Printf.bprintf buf
      "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\">" w h w h;
    Printf.bprintf buf
      "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" class=\"axis\"/>" (px 0.0)
      m (px 0.0) (h -. m);
    Printf.bprintf buf
      "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" class=\"axis\"/>" m
      (py 0.0) (w -. m) (py 0.0);
    Printf.bprintf buf
      "<text x=\"%g\" y=\"%g\" class=\"lbl\">Re (symlog)</text>" (w -. 110.0)
      (py 0.0 -. 6.0);
    Printf.bprintf buf
      "<text x=\"%g\" y=\"%g\" class=\"lbl\">Im (symlog)</text>"
      (px 0.0 +. 6.0) (m +. 10.0);
    List.iteri
      (fun gi g ->
        let c = color gi in
        let n_it = List.length g.rows in
        (* one polyline per pole index: its migration across iterations *)
        for p = 0 to g.gpoles - 1 do
          let pts =
            List.filter_map
              (fun (_, poles, _) ->
                if p < Array.length poles then begin
                  let re, im = poles.(p) in
                  if Float.is_finite re && Float.is_finite im then
                    Some (pf "%g,%g" (px re) (py im))
                  else None
                end
                else None)
              g.rows
          in
          if List.length pts > 1 then
            Printf.bprintf buf
              "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
               stroke-width=\"1\" opacity=\"0.5\"/>"
              (String.concat " " pts) c
        done;
        List.iteri
          (fun ri (_, poles, _) ->
            let last = ri = n_it - 1 in
            Array.iter
              (fun (re, im) ->
                if Float.is_finite re && Float.is_finite im then
                  Printf.bprintf buf
                    "<circle cx=\"%g\" cy=\"%g\" r=\"%g\" fill=\"%s\" \
                     opacity=\"%g\"/>"
                    (px re) (py im)
                    (if last then 3.5 else 2.0)
                    c
                    (0.25 +. (0.75 *. float_of_int (ri + 1) /. float_of_int n_it)))
              poles)
          g.rows)
      groups;
    Buffer.add_string buf "</svg>";
    let legend =
      groups
      |> List.mapi (fun gi g ->
             pf
               "<span class=\"key\"><span class=\"swatch\" \
                style=\"background:%s\"></span>%s (n=%d, %d it)</span>"
               (color gi) (html_escape g.glabel) g.gpoles (List.length g.rows))
      |> String.concat " "
    in
    Buffer.contents buf ^ "<div class=\"legend\">" ^ legend ^ "</div>"
  end

let line_plot ~w ~h ~log_y series =
  (* series : (name, float list) list; x = sample index *)
  let all = List.concat_map snd series in
  let all = List.filter (fun v -> Float.is_finite v && (not log_y || v > 0.0)) all in
  if all = [] then "<p class=\"empty\">no data</p>"
  else begin
    let tr v = if log_y then Float.log10 v else v in
    let lo = List.fold_left (fun a v -> Float.min a (tr v)) Float.infinity all in
    let hi = List.fold_left (fun a v -> Float.max a (tr v)) Float.neg_infinity all in
    let hi = if hi -. lo < 1e-12 then lo +. 1.0 else hi in
    let n_max =
      List.fold_left (fun a (_, vs) -> max a (List.length vs)) 1 series
    in
    let m = 8.0 in
    let px i =
      m +. (float_of_int i /. float_of_int (max 1 (n_max - 1)) *. (w -. (2.0 *. m)))
    in
    let py v = h -. m -. ((tr v -. lo) /. (hi -. lo) *. (h -. (2.0 *. m))) in
    let buf = Buffer.create 2048 in
    Printf.bprintf buf
      "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\">" w h w h;
    List.iteri
      (fun si (_, vs) ->
        let pts =
          List.mapi
            (fun i v ->
              if Float.is_finite v && (not log_y || v > 0.0) then
                Some (pf "%g,%g" (px i) (py v))
              else None)
            vs
          |> List.filter_map Fun.id
        in
        if pts <> [] then
          Printf.bprintf buf
            "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
             stroke-width=\"1.5\"/>"
            (String.concat " " pts) (color si))
      series;
    Buffer.add_string buf "</svg>";
    let legend =
      series
      |> List.mapi (fun si (name, vs) ->
             pf
               "<span class=\"key\"><span class=\"swatch\" \
                style=\"background:%s\"></span>%s (%d)</span>"
               (color si) (html_escape name) (List.length vs))
      |> String.concat " "
    in
    Buffer.contents buf ^ "<div class=\"legend\">" ^ legend ^ "</div>"
  end

let hist_sparkline buckets =
  let counts = List.map (fun b -> fnum_field b "count") buckets in
  let peak = List.fold_left Float.max 1.0 counts in
  let n = max 1 (List.length counts) in
  let w = 120.0 and h = 22.0 in
  let bw = w /. float_of_int n in
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\">" w h w h;
  List.iteri
    (fun i c ->
      if c > 0.0 then begin
        let bh = Float.max 1.5 (c /. peak *. h) in
        Printf.bprintf buf
          "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" \
           fill=\"#1f77b4\"/>"
          (float_of_int i *. bw) (h -. bh)
          (Float.max 1.0 (bw -. 1.0))
          bh
      end)
    counts;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

(* --- self-time table from the Chrome trace ---------------------------- *)

let self_time_rows (b : Obs_bundle.t) =
  let events = Option.value ~default:[] (Minijson.arr_field b.trace "traceEvents") in
  let spans =
    List.filter_map
      (fun e ->
        if Minijson.str_field e "ph" = Some "X" then
          match Minijson.field e "args" with
          | Some args ->
              Some
                ( int_of_float (fnum_field args "id"),
                  int_of_float (fnum_field args "parent"),
                  str_field_or "?" e "name",
                  fnum_field e "dur" )
          | None -> None
        else None)
      events
  in
  let child_dur = Hashtbl.create 64 in
  List.iter
    (fun (_, parent, _, dur) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt child_dur parent) in
      Hashtbl.replace child_dur parent (prev +. dur))
    spans;
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (id, _, name, dur) ->
      let child = Option.value ~default:0.0 (Hashtbl.find_opt child_dur id) in
      let n, total, self =
        Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt by_name name)
      in
      Hashtbl.replace by_name name
        (n + 1, total +. dur, self +. Float.max 0.0 (dur -. child)))
    spans;
  Hashtbl.fold
    (fun name (n, total, self) acc ->
      (name, n, total /. 1e6, self /. 1e6) :: acc)
    by_name []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)

(* --- the report ------------------------------------------------------- *)

let css =
  {|body{font:14px/1.5 system-ui,sans-serif;margin:24px auto;max-width:960px;color:#222}
h1{font-size:22px}h2{font-size:17px;margin-top:28px;border-bottom:1px solid #ddd;padding-bottom:4px}
table{border-collapse:collapse;width:100%;font-size:13px}
th,td{text-align:left;padding:3px 10px 3px 0;border-bottom:1px solid #eee}
td.num,th.num{text-align:right}
code{background:#f4f4f4;padding:1px 4px;border-radius:3px}
.axis{stroke:#bbb;stroke-width:1}.lbl{font-size:11px;fill:#888}
.legend{font-size:12px;color:#555;margin:4px 0 12px}
.key{margin-right:14px;white-space:nowrap}
.swatch{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}
.empty{color:#999;font-style:italic}
.meta{color:#555}
.badge-ok{color:#2ca02c;font-weight:600}.badge-failed{color:#d62728;font-weight:600}|}

let section buf title body =
  Printf.bprintf buf "<h2>%s</h2>\n%s\n" title body

let render_html (b : Obs_bundle.t) =
  let buf = Buffer.create 65536 in
  let tool = str_field_or "?" b.manifest "tool" in
  let status = str_field_or "?" b.manifest "status" in
  let seed = fnum_field b.manifest "seed" in
  let host =
    match Minijson.field b.manifest "host" with
    | Some h ->
        pf "%g cores, %s, %g-bit" (fnum_field h "cores")
          (str_field_or "?" h "os") (fnum_field h "word_size")
    | None -> "?"
  in
  Printf.bprintf buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>obs report: %s</title>\n<style>%s</style></head><body>\n"
    (html_escape tool) css;
  Printf.bprintf buf
    "<h1>Convergence observatory — <code>%s</code> \
     <span class=\"badge-%s\">%s</span></h1>\n\
     <p class=\"meta\">seed %g · host: %s · %d events in \
     <code>convergence.jsonl</code></p>\n"
    (html_escape tool) (html_escape status) (html_escape status) seed
    (html_escape host) (List.length b.events);
  (match Minijson.obj_field b.manifest "config" with
  | Some ((_ :: _) as kvs) ->
      let rows =
        kvs
        |> List.map (fun (k, v) ->
               pf "<tr><td><code>%s</code></td><td>%s</td></tr>" (html_escape k)
                 (html_escape (Minijson.emit v)))
        |> String.concat "\n"
      in
      section buf "Configuration" (pf "<table>%s</table>" rows)
  | _ -> ());
  let groups = vf_groups b in
  section buf "Pole migration (all VF relocations)" (pole_plot groups);
  section buf "Residual decay (σ-residual RMS per relocation, log y)"
    (line_plot ~w:640.0 ~h:200.0 ~log_y:true
       (List.map
          (fun g ->
            ( pf "%s n=%d" g.glabel g.gpoles,
              List.map (fun (_, _, rms) -> rms) g.rows ))
          groups));
  let rconds = rcond_series b in
  section buf "Factorization conditioning (rcond per site, log y)"
    (if rconds = [] then "<p class=\"empty\">no rcond events</p>"
     else
       rconds
       |> List.map (fun (site, vs) ->
              pf "<h3 style=\"font-size:14px;margin:10px 0 2px\">%s</h3>%s"
                (html_escape site)
                (line_plot ~w:420.0 ~h:60.0 ~log_y:true [ (site, vs) ]))
       |> String.concat "\n");
  let self_rows = self_time_rows b in
  section buf "Self time (from trace.json)"
    (if self_rows = [] then "<p class=\"empty\">no trace spans</p>"
     else
       let rows =
         self_rows
         |> List.map (fun (name, n, total, self) ->
                pf
                  "<tr><td><code>%s</code></td><td class=\"num\">%d</td>\
                   <td class=\"num\">%s s</td><td class=\"num\">%s s</td></tr>"
                  (html_escape name) n (g6 total) (g6 self))
         |> String.concat "\n"
       in
       pf
         "<table><tr><th>span</th><th class=\"num\">count</th>\
          <th class=\"num\">total</th><th class=\"num\">self</th></tr>%s</table>"
         rows);
  let histograms =
    Option.value ~default:[] (Minijson.arr_field b.metrics "histograms")
  in
  section buf "Histograms"
    (if histograms = [] then "<p class=\"empty\">no histograms</p>"
     else
       let rows =
         histograms
         |> List.map (fun h ->
                pf
                  "<tr><td><code>%s</code></td><td class=\"num\">%s</td>\
                   <td class=\"num\">%s</td><td class=\"num\">%s</td>\
                   <td class=\"num\">%s</td><td class=\"num\">%s</td>\
                   <td>%s</td></tr>"
                  (html_escape (str_field_or "?" h "name"))
                  (g6 (fnum_field h "count"))
                  (g6 (fnum_field h "mean"))
                  (g6 (fnum_field h "p50"))
                  (g6 (fnum_field h "p95"))
                  (g6 (fnum_field h "p99"))
                  (hist_sparkline
                     (Option.value ~default:[] (Minijson.arr_field h "buckets"))))
         |> String.concat "\n"
       in
       pf
         "<table><tr><th>name</th><th class=\"num\">count</th>\
          <th class=\"num\">mean</th><th class=\"num\">p50</th>\
          <th class=\"num\">p95</th><th class=\"num\">p99</th>\
          <th>buckets</th></tr>%s</table>"
         rows);
  let noteworthy =
    List.filter
      (fun e ->
        match Minijson.str_field e "type" with
        | Some
            ( "stage" | "escalation" | "violation" | "quarantine" | "vf_attempt"
            | "vf_settled" ) ->
            true
        | _ -> false)
      b.events
  in
  section buf "Events (stages, escalations, violations, quarantines)"
    (if noteworthy = [] then "<p class=\"empty\">no events</p>"
     else
       let rows =
         noteworthy
         |> List.map (fun e ->
                let fields =
                  match e with
                  | Minijson.Obj kvs ->
                      List.filter
                        (fun (k, _) -> k <> "type" && k <> "seq" && k <> "t")
                        kvs
                  | _ -> []
                in
                pf
                  "<tr><td class=\"num\">%s</td><td><code>%s</code></td>\
                   <td>%s</td></tr>"
                  (g6 (fnum_field e "t"))
                  (html_escape (str_field_or "?" e "type"))
                  (html_escape (Minijson.emit (Minijson.Obj fields))))
         |> String.concat "\n"
       in
       pf
         "<table><tr><th class=\"num\">t (s)</th><th>type</th>\
          <th>detail</th></tr>%s</table>"
         rows);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
