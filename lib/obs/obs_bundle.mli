(** Schema-versioned on-disk run bundles.

    A bundle directory holds one extraction run's complete observability
    record:

    - [manifest.json] — schema version, tool, exit status, seed, host
      shape (core count, OS, word size) and the run configuration;
    - [trace.json] — the Chrome trace-event timeline ({!Trace});
    - [metrics.json] — the counter/gauge/histogram registry
      ({!Metrics}, including p50/p95/p99 quantile estimates);
    - [diag.json] — the structured per-stage narrative ({!Diag});
    - [convergence.jsonl] — the algorithmic event stream ({!Obs}): one
      JSON object per line (pole trajectories, sigma residuals, rcond
      series, escalations, violations, quarantines);
    - [repro.json] — present only for failed runs: a replayable capsule
      (circuit + options + seed).

    {!load} re-reads and validates a bundle, raising the typed
    {!Invalid} on any malformed file so consumers ([obs_report],
    [obs_check]) can exit nonzero with a precise reason. *)

exception Invalid of { file : string; reason : string }
(** A bundle file is missing, unparsable or fails schema validation.
    [file] is the offending file name relative to the bundle dir. *)

val describe_invalid : file:string -> reason:string -> string

val schema_version : int
(** Version stamped into [manifest.json]; {!load} rejects others. *)

val host_json : unit -> Minijson.t
(** The current host's shape: [{"cores", "os", "word_size"}]. *)

val manifest :
  tool:string ->
  status:string ->
  seed:int ->
  config:(string * Minijson.t) list ->
  unit ->
  Minijson.t
(** Assemble a manifest object: schema version, bundle kind, [tool],
    [status] (["ok"] or ["failed"]), [seed], {!host_json} and the
    run [config]. *)

val diag_json : Diag.report -> string
(** The {!Diag} report as a schema-versioned JSON document (the same
    serialization the CLI's [--diag] writes). *)

val write :
  dir:string -> manifest:Minijson.t -> ?repro:Minijson.t -> Obs.t -> unit
(** Write the bundle into [dir] (created if missing): manifest, the
    three collector exports and the event stream, plus [repro.json]
    when a repro capsule is given. Each file is written to a temp name
    and atomically renamed into place, so a crash mid-write never
    leaves a torn file for {!load} to reject. *)

type t = {
  dir : string;
  manifest : Minijson.t;
  trace : Minijson.t;
  metrics : Minijson.t;
  diag : Minijson.t;
  events : Minijson.t list;  (** convergence.jsonl, in line order *)
}

val load : string -> t
(** Read and validate every bundle file. Raises {!Invalid} naming the
    first offending file on any missing file, parse error or schema
    mismatch (wrong version, missing required fields, broken [seq]
    numbering in the event stream, histogram bucket counts that do not
    sum to the histogram count). *)
