(** Offline rendering of a loaded {!Obs_bundle}: a self-contained HTML
    report (inline CSS + SVG, no external assets, viewable from file://)
    and an OpenMetrics text export of the metrics registry.

    The HTML report shows the pole-migration scatter across VF
    iterations and recursion levels (symlog axes), per-fit residual
    decay curves, the rcond time series per factorization site, a
    self-time table derived from the Chrome trace, histogram summaries
    with p50/p95/p99 columns and sparkline bars, and the escalation /
    violation / quarantine event log. *)

val render_html : Obs_bundle.t -> string
(** The full report as one HTML document. *)

val openmetrics : Obs_bundle.t -> string
(** [metrics.json] re-expressed in OpenMetrics text format: counters,
    gauges, cumulative histogram buckets, and quantile estimates as
    gauges. Terminated by [# EOF]. *)
