type surface_error = {
  rms : float;
  max_err : float;
  rms_db : float;
  max_db : float;
}

let surface_error ~model ~dataset ~input ~output =
  let freqs = dataset.Tft.Dataset.freqs_hz in
  let sum2 = ref 0.0 and count = ref 0 and worst = ref 0.0 in
  Array.iter
    (fun (s : Tft.Dataset.sample) ->
      Array.iteri
        (fun l f ->
          let data = Linalg.Cmat.get s.Tft.Dataset.h.(l) output input in
          let modeled =
            Hammerstein.Hmodel.transfer model ~x:s.Tft.Dataset.x.(0)
              ~s:(Signal.Grid.s_of_hz f)
          in
          let e = Complex.norm (Complex.sub data modeled) in
          sum2 := !sum2 +. (e *. e);
          worst := Float.max !worst e;
          incr count)
        freqs)
    dataset.Tft.Dataset.samples;
  let rms = sqrt (!sum2 /. float_of_int (Stdlib.max 1 !count)) in
  {
    rms;
    max_err = !worst;
    rms_db = Signal.Metrics.db20 rms;
    max_db = Signal.Metrics.db20 !worst;
  }

type validation = {
  rmse : float;
  nrmse : float;
  nrmse_db : float;
  reference_seconds : float;
  model_seconds : float;
  speedup : float;
  reference : Signal.Waveform.t;
  modeled : Signal.Waveform.t;
}

let validate ~model ~netlist ~input ~output ~wave ~t_stop ~dt () =
  let test_netlist =
    Circuit.Netlist.make
      (List.map
         (fun (c : Circuit.Netlist.component) ->
           if c.name <> input then c
           else begin
             match c.element with
             | Circuit.Netlist.Vsource { p; n; _ } ->
                 Circuit.Netlist.vsource ~name:c.name p n wave
             | Circuit.Netlist.Isource { p; n; _ } ->
                 Circuit.Netlist.isource ~name:c.name p n wave
             | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
             | Circuit.Netlist.Inductor _ | Circuit.Netlist.Vccs _
          | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
             | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _
             | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ ->
                 invalid_arg "Report.validate: input is not a source"
           end)
         netlist.Circuit.Netlist.components)
  in
  let mna = Engine.Mna.build ~inputs:[ input ] ~outputs:[ output ] test_netlist in
  let t0 = Clock.now () in
  let run = Engine.Tran.run mna ~t_stop ~dt in
  let t1 = Clock.now () in
  let reference = Engine.Tran.output_waveform run 0 in
  let u = Circuit.Netlist.wave_to_source wave in
  let t2 = Clock.now () in
  let modeled = Hammerstein.Hmodel.simulate model ~u ~t_stop ~dt in
  let t3 = Clock.now () in
  let rmse = Signal.Waveform.rmse reference modeled in
  let nrmse = Signal.Waveform.nrmse reference modeled in
  {
    rmse;
    nrmse;
    nrmse_db = Signal.Metrics.db20 nrmse;
    reference_seconds = t1 -. t0;
    model_seconds = t3 -. t2;
    speedup = (t1 -. t0) /. Float.max (t3 -. t2) 1e-9;
    reference;
    modeled;
  }

(* --- diagnostics serialization --------------------------------------- *)

let json_escape = Minijson.escape

(* The serializer itself lives with the bundle writer; --diag and the
   obs bundle's diag.json must stay byte-identical. *)
let diag_json = Obs_bundle.diag_json

let error_json ?message (r : Diag.report) =
  let errors =
    List.filter (fun (e : Diag.event) -> e.Diag.level = Diag.Error) r.Diag.events
  in
  let stage =
    match errors with e :: _ -> e.Diag.stage | [] -> "pipeline"
  in
  let message =
    match (message, errors) with
    | Some m, _ -> m
    | None, e :: _ -> e.Diag.message
    | None, [] -> "extraction failed"
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n  \"schema_version\": 1,\n  \"error\": {\"stage\": \"%s\", \
     \"message\": \"%s\"},\n  \"fit_retries\": %d,\n  \"events\": ["
    (json_escape stage) (json_escape message)
    (Diag.counter r "pipeline.fit_retries");
  let sep = ref "" in
  List.iter
    (fun (e : Diag.event) ->
      Printf.bprintf buf "%s\n    {\"level\": \"%s\", \"stage\": \"%s\", \
                          \"message\": \"%s\"}"
        !sep
        (Diag.level_to_string e.Diag.level)
        (json_escape e.Diag.stage)
        (json_escape e.Diag.message);
      sep := ",")
    (Diag.warnings r);
  Buffer.add_string buf "\n  ],\n  \"notes\": {";
  sep := "";
  List.iter
    (fun (k, v) ->
      Printf.bprintf buf "%s\n    \"%s\": \"%s\"" !sep (json_escape k)
        (json_escape v);
      sep := ",")
    r.Diag.notes;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let diag_summary (r : Diag.report) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "extraction diagnostics\n";
  if r.Diag.spans <> [] then begin
    Printf.bprintf buf "  stages:\n";
    List.iter
      (fun (s : Diag.span) ->
        Printf.bprintf buf "    %-24s %8.3fs\n" s.Diag.stage s.Diag.seconds)
      r.Diag.spans
  end;
  if r.Diag.counters <> [] then begin
    Printf.bprintf buf "  counters:\n";
    List.iter
      (fun (name, n) -> Printf.bprintf buf "    %-32s %d\n" name n)
      r.Diag.counters
  end;
  if r.Diag.stats <> [] then begin
    Printf.bprintf buf "  stats:\n";
    List.iter
      (fun (s : Diag.stat) ->
        Printf.bprintf buf
          "    %-32s n=%d last=%.3e mean=%.3e min=%.3e max=%.3e\n"
          s.Diag.name s.Diag.samples s.Diag.last (Diag.mean s) s.Diag.min
          s.Diag.max)
      r.Diag.stats
  end;
  if r.Diag.notes <> [] then begin
    Printf.bprintf buf "  notes:\n";
    List.iter
      (fun (k, v) -> Printf.bprintf buf "    %-32s %s\n" k v)
      r.Diag.notes
  end;
  let interesting =
    List.filter (fun (e : Diag.event) -> e.Diag.level <> Diag.Info) r.Diag.events
  in
  if interesting <> [] then begin
    Printf.bprintf buf "  events:\n";
    List.iter
      (fun (e : Diag.event) ->
        Printf.bprintf buf "    [%s] %s: %s\n"
          (Diag.level_to_string e.Diag.level)
          e.Diag.stage e.Diag.message)
      interesting
  end;
  Buffer.contents buf

let summary (o : Pipeline.outcome) =
  let r = o.Pipeline.rvf in
  let se =
    surface_error ~model:o.Pipeline.model ~dataset:o.Pipeline.dataset ~input:0
      ~output:0
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "TFT-RVF extraction report\n";
  Printf.bprintf buf "  trajectory samples     : %d\n"
    (Array.length o.Pipeline.dataset.Tft.Dataset.samples);
  Printf.bprintf buf "  frequency grid         : %d points\n"
    (Array.length o.Pipeline.dataset.Tft.Dataset.freqs_hz);
  Printf.bprintf buf "  frequency poles        : %d (rms %.3e)\n"
    r.Rvf.freq_info.Vf.Vfit.pole_count r.Rvf.freq_info.Vf.Vfit.rms;
  Printf.bprintf buf "  state poles            : %d (normalized rms %.3e)\n"
    r.Rvf.residue_info.Vf.Vfit.pole_count r.Rvf.residue_info.Vf.Vfit.rms;
  Printf.bprintf buf "  static-path poles      : %d (rms %.3e)\n"
    r.Rvf.static_info.Vf.Vfit.pole_count r.Rvf.static_info.Vf.Vfit.rms;
  Printf.bprintf buf "  TFT surface error      : rms %.1f dB, max %.1f dB\n"
    se.rms_db se.max_db;
  Printf.bprintf buf "  model order            : %d states\n"
    (Hammerstein.Hmodel.order o.Pipeline.model);
  Printf.bprintf buf "  fully analytic         : %b\n"
    (Hammerstein.Hmodel.analytic o.Pipeline.model);
  Printf.bprintf buf "  timing                 : train %.2fs, tft %.2fs, fit %.2fs\n"
    o.Pipeline.timing.Pipeline.train_seconds o.Pipeline.timing.Pipeline.tft_seconds
    o.Pipeline.timing.Pipeline.fit_seconds;
  Buffer.contents buf
