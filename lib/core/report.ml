type surface_error = {
  rms : float;
  max_err : float;
  rms_db : float;
  max_db : float;
}

let surface_error ~model ~dataset ~input ~output =
  let freqs = dataset.Tft.Dataset.freqs_hz in
  let sum2 = ref 0.0 and count = ref 0 and worst = ref 0.0 in
  Array.iter
    (fun (s : Tft.Dataset.sample) ->
      Array.iteri
        (fun l f ->
          let data = Linalg.Cmat.get s.Tft.Dataset.h.(l) output input in
          let modeled =
            Hammerstein.Hmodel.transfer model ~x:s.Tft.Dataset.x.(0)
              ~s:(Signal.Grid.s_of_hz f)
          in
          let e = Complex.norm (Complex.sub data modeled) in
          sum2 := !sum2 +. (e *. e);
          worst := Float.max !worst e;
          incr count)
        freqs)
    dataset.Tft.Dataset.samples;
  let rms = sqrt (!sum2 /. float_of_int (Stdlib.max 1 !count)) in
  {
    rms;
    max_err = !worst;
    rms_db = Signal.Metrics.db20 rms;
    max_db = Signal.Metrics.db20 !worst;
  }

type validation = {
  rmse : float;
  nrmse : float;
  nrmse_db : float;
  reference_seconds : float;
  model_seconds : float;
  speedup : float;
  reference : Signal.Waveform.t;
  modeled : Signal.Waveform.t;
}

let validate ~model ~netlist ~input ~output ~wave ~t_stop ~dt () =
  let test_netlist =
    Circuit.Netlist.make
      (List.map
         (fun (c : Circuit.Netlist.component) ->
           if c.name <> input then c
           else begin
             match c.element with
             | Circuit.Netlist.Vsource { p; n; _ } ->
                 Circuit.Netlist.vsource ~name:c.name p n wave
             | Circuit.Netlist.Isource { p; n; _ } ->
                 Circuit.Netlist.isource ~name:c.name p n wave
             | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
             | Circuit.Netlist.Inductor _ | Circuit.Netlist.Vccs _
          | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
             | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _
             | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ ->
                 invalid_arg "Report.validate: input is not a source"
           end)
         netlist.Circuit.Netlist.components)
  in
  let mna = Engine.Mna.build ~inputs:[ input ] ~outputs:[ output ] test_netlist in
  let t0 = Clock.now () in
  let run = Engine.Tran.run mna ~t_stop ~dt in
  let t1 = Clock.now () in
  let reference = Engine.Tran.output_waveform run 0 in
  let u = Circuit.Netlist.wave_to_source wave in
  let t2 = Clock.now () in
  let modeled = Hammerstein.Hmodel.simulate model ~u ~t_stop ~dt in
  let t3 = Clock.now () in
  let rmse = Signal.Waveform.rmse reference modeled in
  let nrmse = Signal.Waveform.nrmse reference modeled in
  {
    rmse;
    nrmse;
    nrmse_db = Signal.Metrics.db20 nrmse;
    reference_seconds = t1 -. t0;
    model_seconds = t3 -. t2;
    speedup = (t1 -. t0) /. Float.max (t3 -. t2) 1e-9;
    reference;
    modeled;
  }

let summary (o : Pipeline.outcome) =
  let r = o.Pipeline.rvf in
  let se =
    surface_error ~model:o.Pipeline.model ~dataset:o.Pipeline.dataset ~input:0
      ~output:0
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "TFT-RVF extraction report\n";
  Printf.bprintf buf "  trajectory samples     : %d\n"
    (Array.length o.Pipeline.dataset.Tft.Dataset.samples);
  Printf.bprintf buf "  frequency grid         : %d points\n"
    (Array.length o.Pipeline.dataset.Tft.Dataset.freqs_hz);
  Printf.bprintf buf "  frequency poles        : %d (rms %.3e)\n"
    r.Rvf.freq_info.Vf.Vfit.pole_count r.Rvf.freq_info.Vf.Vfit.rms;
  Printf.bprintf buf "  state poles            : %d (normalized rms %.3e)\n"
    r.Rvf.residue_info.Vf.Vfit.pole_count r.Rvf.residue_info.Vf.Vfit.rms;
  Printf.bprintf buf "  static-path poles      : %d (rms %.3e)\n"
    r.Rvf.static_info.Vf.Vfit.pole_count r.Rvf.static_info.Vf.Vfit.rms;
  Printf.bprintf buf "  TFT surface error      : rms %.1f dB, max %.1f dB\n"
    se.rms_db se.max_db;
  Printf.bprintf buf "  model order            : %d states\n"
    (Hammerstein.Hmodel.order o.Pipeline.model);
  Printf.bprintf buf "  fully analytic         : %b\n"
    (Hammerstein.Hmodel.analytic o.Pipeline.model);
  Printf.bprintf buf "  timing                 : train %.2fs, tft %.2fs, fit %.2fs\n"
    o.Pipeline.timing.Pipeline.train_seconds o.Pipeline.timing.Pipeline.tft_seconds
    o.Pipeline.timing.Pipeline.fit_seconds;
  Buffer.contents buf
