(** A reusable pool of OCaml 5 domains for data-parallel sweeps.

    The pool fans independent index ranges out across domains with
    {e fixed, deterministic chunk boundaries}: element [i] of the result
    is always produced by evaluating [f] on input [i] alone, workers
    write disjoint slots of a shared result array, and no reduction or
    reordering happens — so for a pure [f] the output is bit-identical
    to the sequential path regardless of the domain count.

    Workspace variants ([parallel_init_ws]/[parallel_map_ws]) allocate
    one scratch workspace per chunk (hence at most one per domain) so
    hot kernels can run allocation-free; the workspace must only carry
    buffers that each call fully overwrites, never state that affects
    results across elements. *)

type t
(** A pool of worker domains. One [t] must only be used from the domain
    that created it, and only one [parallel_*] call may run at a time. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] makes a pool with a total parallelism of
    [domains] (the calling domain participates, so [domains - 1] worker
    domains are spawned). Defaults to
    [Domain.recommended_domain_count ()]; values [<= 1] spawn nothing
    and make every [parallel_*] call run sequentially in the caller. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val shutdown : t -> unit
(** Join all worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val parallel_init :
  ?pool:t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  int ->
  (int -> 'a) ->
  'a array
(** [parallel_init ?pool n f] is [Array.init n f] with the index range
    chunked across the pool. [f] must be pure (or at least safe to call
    concurrently from several domains). Without [pool], or with a
    1-domain pool, it runs sequentially in the caller. The first
    exception raised by any chunk is re-raised in the caller after all
    chunks finish.

    With [?trace], each chunk records a [<label>.chunk] span (default
    label ["exec"]) on the track of the domain that ran it, parented
    under the caller's innermost open span; with [?metrics], per-chunk
    wait and run times land in the [<label>.chunk_wait_ns] /
    [<label>.chunk_run_ns] histograms and the max/mean run-time ratio in
    [<label>.imbalance]. Instrumentation never changes chunk boundaries
    or results, and the plain path performs no clock reads. *)

val parallel_map :
  ?pool:t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [parallel_map ?pool f arr] is [Array.map f arr], chunked likewise. *)

val parallel_init_ws :
  ?pool:t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ws:(unit -> 'w) ->
  int ->
  ('w -> int -> 'a) ->
  'a array
(** Like {!parallel_init} but [ws ()] is evaluated once per chunk and
    passed to every [f] call of that chunk, so scratch buffers are
    reused across the chunk instead of reallocated per element. *)

val parallel_map_ws :
  ?pool:t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ws:(unit -> 'w) ->
  ('w -> 'a -> 'b) ->
  'a array ->
  'b array
(** Workspace variant of {!parallel_map}. *)
