(** A reusable pool of OCaml 5 domains for data-parallel sweeps.

    The pool fans independent index ranges out across domains with
    {e fixed, deterministic chunk boundaries}: element [i] of the result
    is always produced by evaluating [f] on input [i] alone, workers
    write disjoint slots of a shared result array, and no reduction or
    reordering happens — so for a pure [f] the output is bit-identical
    to the sequential path regardless of the domain count or the
    [chunks_per_domain] setting.

    Pools are designed to be {e warm and persistent}: create one per
    pipeline run (or per process), reuse it across stages, and shut it
    down once at the end — never spawn per call. Per-chunk scratch
    buffers can be parked in the pool between calls via {!slot} so hot
    kernels stay allocation-free across stages.

    Workspace variants ([parallel_init_ws]/[parallel_map_ws]) evaluate
    the workspace maker once per chunk (hence at most
    [chunks_per_domain] live workspaces per domain) so hot kernels can
    run allocation-free; a workspace must only carry buffers that each
    call fully overwrites, never state that affects results across
    elements. *)

type t
(** A pool of worker domains. A [parallel_*] call issued while another
    is in flight on the same pool (including nested calls made from
    inside a worker) runs sequentially in its caller instead of
    deadlocking, so libraries can accept a shared pool without
    coordinating ownership. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] makes a pool with a total parallelism of
    [domains] (the calling domain participates, so [domains - 1] worker
    domains are spawned). Defaults to
    [Domain.recommended_domain_count ()]; values [<= 1] spawn nothing
    and make every [parallel_*] call run sequentially in the caller. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val shutdown : t -> unit
(** Join all worker domains and drop all pool-owned workspace slots.
    The pool must not be used afterwards. Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)

(** {2 Pool-owned workspace slots}

    A warm pool outlives individual stages, so per-chunk scratch
    buffers (LU/QR workspaces, AC sweep pencils) can be parked in the
    pool and picked up again by the next call with the same shape. *)

type 'a key
(** Identifies one family of workspaces (typically one per call site). *)

val new_key : unit -> 'a key
(** A fresh slot key. Create once at module level, not per call. *)

val slot : t -> 'a key -> chunk:int -> valid:('a -> bool) -> make:(unit -> 'a) -> 'a
(** [slot pool key ~chunk ~valid ~make] returns the workspace cached
    under [(key, chunk)] when present and [valid] accepts it, otherwise
    stores and returns [make ()]. [valid] guards shape changes (e.g. a
    pool reused for a different circuit). Safe to call concurrently from
    worker domains as long as each uses its own [chunk] index. *)

val parallel_init :
  ?pool:t ->
  ?cancel:Cancel.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ?chunks_per_domain:int ->
  int ->
  (int -> 'a) ->
  'a array
(** [parallel_init ?pool n f] is [Array.init n f] with the index range
    chunked across the pool. [f] must be pure (or at least safe to call
    concurrently from several domains). Without [pool], or with a
    1-domain pool, it runs sequentially in the caller. The first
    exception raised by any chunk is re-raised in the caller after all
    chunks finish.

    [chunks_per_domain] (default 1) splits the range into
    [domains × chunks_per_domain] chunks; more, smaller chunks let the
    queue balance uneven per-element costs at slightly higher dispatch
    overhead. Pick it so a chunk holds roughly a millisecond of work
    (e.g. several ~168 µs pencil solves).

    With [?trace], each chunk records a [<label>.chunk] span (default
    label ["exec"]) on the track of the domain that ran it, parented
    under the caller's innermost open span; with [?metrics], per-chunk
    wait and run times land in the [<label>.chunk_wait_ns] /
    [<label>.chunk_run_ns] histograms. Load balance is judged per
    executing {e domain}: busy time summed per domain feeds
    [<label>.domain_run_ns] / [<label>.domain_wait_ns] and the max/mean
    ratio in [<label>.imbalance], mirrored into the merged
    [exec.pool.imbalance] gauge. Instrumentation never changes chunk
    boundaries or results, and the plain path performs no clock
    reads.

    With [?cancel], every chunk checks the token at its start (probe
    site [<label>.chunk]) so a cancelled or deadline-expired run stops
    at the next chunk boundary; the check follows the token's own
    cost discipline (absent token: free; no armed deadline: one atomic
    load; armed: one clock read). Chunks also host the
    ["exec.chunk_hang"] fault site. *)

val parallel_map :
  ?pool:t ->
  ?cancel:Cancel.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ?chunks_per_domain:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [parallel_map ?pool f arr] is [Array.map f arr], chunked likewise. *)

val parallel_init_ws :
  ?pool:t ->
  ?cancel:Cancel.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ?chunks_per_domain:int ->
  ws:(int -> 'w) ->
  int ->
  ('w -> int -> 'a) ->
  'a array
(** Like {!parallel_init} but [ws chunk] is evaluated once per chunk and
    passed to every [f] call of that chunk, so scratch buffers are
    reused across the chunk instead of reallocated per element. The
    chunk index is stable for fixed [(n, domains, chunks_per_domain)]
    and can be used with {!slot} to reuse buffers across calls. *)

val parallel_map_ws :
  ?pool:t ->
  ?cancel:Cancel.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?label:string ->
  ?chunks_per_domain:int ->
  ws:(int -> 'w) ->
  ('w -> 'a -> 'b) ->
  'a array ->
  'b array
(** Workspace variant of {!parallel_map}. *)
