(** A thread-safe registry of named counters, gauges and log-bucketed
    histograms for the extraction stack's quantitative telemetry
    (Newton iterations per step, LU factor/solve times, pencil-solve
    times, VF convergence, pool load balance).

    Unlike {!Diag} (single-owner, per-extraction narrative) a registry
    may be written from several domains concurrently: every recording
    call takes an internal mutex for a few nanoseconds, which is
    negligible next to the microsecond-scale kernels being measured.
    All entry points take a [t option] and [None] is a near-free no-op,
    so instrumented code threads its own [?metrics] argument straight
    through — the recorded-and-unrecorded paths run the same numerical
    code and produce bit-identical results.

    Histograms are log-bucketed: four buckets per decade, so a bucket's
    upper bound is [10^(i/4)] — wide enough dynamic range for values
    from nanoseconds to seconds without configuration. *)

type t
(** A mutable, thread-safe metrics registry. *)

val create : unit -> t

val incr : t option -> string -> unit
(** Bump a named counter by one. *)

val add : t option -> string -> int -> unit
(** Bump a named counter by [n]. *)

val gauge : t option -> string -> float -> unit
(** Set a named gauge (latest value wins). *)

val observe : t option -> string -> float -> unit
(** Fold one observation into the named histogram. Non-positive and
    non-finite values land in a dedicated underflow bucket (reported
    with upper bound 0). *)

val now_if : t option -> float
(** [Clock.now ()] when a registry is attached, [0.0] otherwise — pair
    with {!observe_since_ns} to keep the disabled path free of clock
    reads. *)

val observe_since_ns : t option -> string -> float -> unit
(** [observe_since_ns m name t0] records [Clock.now () − t0] in
    nanoseconds into the histogram [name] ([t0] from {!now_if}). *)

(** {2 Snapshots and serialization} *)

type bucket = { le : float; bucket_count : int }
(** Observations with value ≤ [le] (and above the previous bucket's
    bound). The underflow bucket has [le = 0]. *)

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  hist_min : float;
  hist_max : float;
  buckets : bucket list;  (** ascending by [le]; counts sum to [count] *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram list;
}
(** Immutable copy of a registry, in first-recorded order. *)

val snapshot : t -> snapshot

val hist_mean : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 ≤ q ≤ 1]) from the
    log-bucket boundaries: linear interpolation inside the bucket
    holding rank [q·count], clamped to the observed [[min, max]]
    envelope. [nan] on an empty histogram. Within a factor of
    [10^(1/4) ≈ 1.78] of the true quantile by construction. *)

val to_json : snapshot -> string
(** Serialize as a self-contained schema-versioned JSON document:
    [{"schema_version": 1, "counters": {...}, "gauges": {...},
    "histograms": [{"name", "count", "sum", "min", "max", "mean",
    "p50", "p95", "p99", "buckets": [{"le", "count"}, ...]}, ...]}].
    Non-finite floats are encoded as the strings ["nan"], ["inf"],
    ["-inf"]. *)

val summary : snapshot -> string
(** Compact human-readable rendering. *)
