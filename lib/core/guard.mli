(** Numerical guard layer for the extraction stack.

    A {!t} bundles the thresholds that the numerical layers consult
    when a [?guard] argument is supplied — reciprocal-condition floors
    for the LU kernels, NaN/Inf sentinels on solver outputs, the
    transient step-halving retry budget, the snapshot-quarantine repair
    policy and the vector-fitting pole-runaway bound. Without a guard
    ([None], the default everywhere) every check is a single-branch
    no-op and the code path is bit-for-bit the pre-guard one; with a
    guard, checks are read-only unless a violation occurs, so a clean
    guarded run still returns bit-identical results.

    Detected-but-unrepairable conditions raise the typed {!Violation},
    which [Pipeline]'s escalation ladder treats as recoverable. *)

type repair = Drop | Interpolate
(** Quarantined-snapshot policy: remove the sample, or rebuild its
    transfer matrices by linear interpolation between the nearest
    healthy neighbours. *)

type t = {
  rcond_min : float;
      (** Factorizations whose diagonal-ratio reciprocal-condition
          estimate falls below this raise [Singular]. *)
  check_finite : bool;  (** NaN/Inf sentinels on solver outputs. *)
  max_step_halvings : int;
      (** Transient retry budget: the k-th retry integrates the failed
          step as [2^k] backward-Euler substeps. *)
  snapshot_repair : repair;
  max_pole_growth : float;
      (** A relocated pole whose magnitude exceeds this multiple of the
          largest fit point is flagged as a runaway. *)
}

val default : t
(** [rcond_min = 1e-12], [check_finite = true],
    [max_step_halvings = 4], [snapshot_repair = Interpolate],
    [max_pole_growth = 1e4]. *)

val repair_to_string : repair -> string

type violation = { site : string; detail : string }

exception Violation of violation

val describe : violation -> string

val fail : site:string -> string -> 'a
(** [fail ~site detail] raises {!Violation}. *)

val finite_array : float array -> bool
val finite_complex_array : Complex.t array -> bool

val check_vec : t option -> site:string -> float array -> unit
(** Raise {!Violation} when a guard with [check_finite] is attached and
    the array contains a NaN or infinity; no-op otherwise. *)

val check_complex_vec : t option -> site:string -> Complex.t array -> unit
