(** Evaluation helpers: the quantities reported in the paper's Figs. 6–9
    and Table I, computed for any extracted model. *)

type surface_error = {
  rms : float;
  max_err : float;
  rms_db : float;
  max_db : float;
}

val surface_error :
  model:Hammerstein.Hmodel.t -> dataset:Tft.Dataset.t -> input:int ->
  output:int -> surface_error
(** Deviation between the model's frozen-state transfer function and the
    TFT data over the whole (state × frequency) grid — the Fig. 7 RMSE. *)

type validation = {
  rmse : float;
  nrmse : float;
  nrmse_db : float;
  reference_seconds : float;  (** transistor-level transient CPU time *)
  model_seconds : float;  (** Hammerstein simulation CPU time *)
  speedup : float;
  reference : Signal.Waveform.t;
  modeled : Signal.Waveform.t;
}

val validate :
  model:Hammerstein.Hmodel.t ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  output:Engine.Mna.output ->
  wave:Circuit.Netlist.wave ->
  t_stop:float ->
  dt:float ->
  unit ->
  validation
(** Run both the transistor-level circuit and the extracted model on a
    test input and compare (the Fig. 9 experiment). *)

val summary : Pipeline.outcome -> string
(** A human-readable extraction report. *)

val diag_json : Diag.report -> string
(** Serialize a telemetry report as a self-contained JSON document:
    [{"schema_version": 1, "spans": [...], "counters": {...},
    "stats": [...], "events": [...], "notes": {...}}]. Strings are
    escaped; non-finite floats are encoded as the strings ["nan"],
    ["inf"] and ["-inf"]. *)

val error_json : ?message:string -> Diag.report -> string
(** Serialize a failed extraction as a structured JSON error object:
    [{"schema_version": 1, "error": {"stage", "message"},
    "fit_retries": n, "events": [...], "notes": {...}}] with the
    report's warning/error events inlined. [message] overrides the
    first [Error] event's message (the default; ["extraction failed"]
    when the report carries none). The CLI prints this to stderr and
    exits nonzero whenever the pipeline yields no model. *)

val diag_summary : Diag.report -> string
(** A compact human-readable rendering of a telemetry report (stages,
    counters, stats, notes, and any warning/error events). *)
