(** JSON writing helpers shared by the telemetry serializers. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in a JSON
    document (quotes, backslashes and control characters). *)

val float : float -> string
(** Render a float as a JSON value. Non-finite values have no JSON
    number form and are encoded as the strings ["nan"], ["inf"] and
    ["-inf"]. *)
