(** Cooperative cancellation and wall-clock deadlines.

    A token threads through the extraction layers exactly like [?obs]:
    probes take a [t option], [None] is a single branch performing zero
    clock reads, a token with no armed deadline is one atomic load per
    probe, and the clock is read only while a deadline scope is armed.
    Numerics are never touched — a run that is not cancelled and whose
    deadlines do not trip is bit-for-bit identical to an un-tokened one.

    Probes live at the natural iteration boundaries of every layer:
    per Newton iteration ([dc.newton]), per transient step
    ([tran.step]), per pencil solve ([ac.sweep]), per VF relocation
    sweep ([vf.relocate]), per pool chunk ([<label>.chunk]) and at
    every pipeline stage boundary. *)

type t

exception Cancelled of { site : string }
(** Raised by {!check} after {!cancel}; [site] names the probe that
    noticed. *)

exception
  Deadline_exceeded of {
    site : string;  (** the probe that noticed *)
    stage : string;  (** the scope whose budget ran out *)
    budget_seconds : float;
    elapsed_seconds : float;
  }
(** Raised by {!check} when any armed deadline scope has expired. *)

val create : ?deadline_seconds:float -> unit -> t
(** Fresh token; [deadline_seconds] arms a whole-run deadline (scope
    stage ["run"]) counted from now. *)

val cancel : t -> unit
(** Request cooperative cancellation: every subsequent {!check} raises
    {!Cancelled}. Safe from any domain or signal context. *)

val cancel_requested : t option -> bool
(** Non-raising poll of the cancellation flag only (never reads the
    clock). *)

val check : t option -> site:string -> unit
(** The probe. [None] is free; otherwise raises {!Cancelled} when
    cancellation was requested, or {!Deadline_exceeded} when an armed
    scope has expired. *)

val expired : t option -> bool
(** Non-raising poll: cancellation requested or any deadline expired. *)

val remaining : t option -> float
(** Seconds until the tightest armed deadline; [infinity] when none. *)

val with_budget : t option -> stage:string -> ?seconds:float -> (unit -> 'a) -> 'a
(** [with_budget t ~stage ~seconds f] runs [f] with an additional
    deadline scope of [seconds] from now, labelled [stage]; the scope
    is removed when [f] returns or raises. With no token or no
    [seconds], exactly [f ()]. Scopes nest; a probe reports the first
    expired scope (innermost first). *)

val hang : t option -> site:string -> 'a
(** Simulated hang for the hang-class fault sites: cooperatively spins
    on {!check} until the deadline (or cancellation) reaps it. Never
    returns; a hang that nothing reaps fails loudly ([Failure]) after a
    hard {!hang_cap_seconds} cap instead of wedging the process. *)

val hang_cap_seconds : float
