type t = {
  size : int;  (** total parallelism: workers + the submitting domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable busy : bool;
      (** a [parallel_*] call is in flight; nested or concurrent calls
          fall back to sequential execution instead of deadlocking *)
  slots : (int * int, exn) Hashtbl.t;
      (** pool-owned workspaces: [(key id, chunk) -> embedded value] *)
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue && pool.closed then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* tasks do their own exception bookkeeping; a task that still
       raises must not take the worker down with it, or the pool would
       silently lose parallelism for the rest of the process *)
    (try task () with _ -> ());
    worker_loop pool
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      busy = false;
      slots = Hashtbl.create 16;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let domains pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Hashtbl.reset pool.slots;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- pool-owned workspace slots -------------------------------------- *)

(* Heterogeneous workspaces live in one hashtable via the classic
   universal-embedding trick: each key carries a locally defined
   exception constructor used as an injection/projection pair. *)
type 'a key = { key_id : int; inj : 'a -> exn; proj : exn -> 'a option }

let key_counter = Atomic.make 0

let new_key (type a) () =
  let module M = struct
    exception E of a
  end in
  {
    key_id = Atomic.fetch_and_add key_counter 1;
    inj = (fun v -> M.E v);
    proj = (function M.E v -> Some v | _ -> None);
  }

let slot pool key ~chunk ~valid ~make =
  Mutex.lock pool.mutex;
  let existing = Hashtbl.find_opt pool.slots (key.key_id, chunk) in
  Mutex.unlock pool.mutex;
  match Option.bind existing key.proj with
  | Some ws when valid ws -> ws
  | _ ->
      let ws = make () in
      Mutex.lock pool.mutex;
      Hashtbl.replace pool.slots (key.key_id, chunk) (key.inj ws);
      Mutex.unlock pool.mutex;
      ws

(* Chunked fan-out: fixed contiguous chunks, workers take chunks
   1..chunks-1 from the queue while the submitting domain runs chunk 0,
   then waits for the stragglers. Each chunk writes disjoint slots of
   [results], so no ordering decision ever reaches the output.

   With [?trace]/[?metrics] attached, each chunk runs inside a
   [<label>.chunk] span on the executing domain's track (worker-side
   buffers attach under the caller's innermost open span). Per-chunk
   wait/run times land in [<label>.chunk_wait_ns]/[<label>.chunk_run_ns]
   histograms; load balance is judged per worker *domain* (chunks > domains
   would otherwise overstate imbalance): busy time summed by executing
   domain feeds [<label>.domain_run_ns] / [<label>.domain_wait_ns] and the
   [<label>.imbalance] max/mean ratio, mirrored into the merged
   [exec.pool.imbalance] gauge. Instrumentation never touches [results]
   or the chunk boundaries, and the uninstrumented path performs no clock
   reads, so outputs stay bit-identical. *)
let run_ws ?cancel ?trace ?metrics ?(label = "exec") ?(chunks_per_domain = 1)
    pool make_ws n f =
  if n = 0 then [||]
  else begin
    let instrumented = Option.is_some trace || Option.is_some metrics in
    let results = Array.make n None in
    let chunk_site = label ^ ".chunk" in
    let run_chunk c lo hi =
      Cancel.check cancel ~site:chunk_site;
      if Fault.should_fire "exec.chunk_hang" then
        Cancel.hang cancel ~site:chunk_site;
      let ws = make_ws c in
      for i = lo to hi - 1 do
        results.(i) <- Some (f ws i)
      done
    in
    let seq_chunk () =
      if not instrumented then run_chunk 0 0 n
      else begin
        let t0 = Clock.now () in
        Fun.protect
          ~finally:(fun () ->
            Metrics.observe_since_ns metrics (label ^ ".chunk_run_ns") t0)
          (fun () ->
            Trace.span trace
              ~args:
                [ ("chunk", Trace.Int 0); ("lo", Trace.Int 0);
                  ("hi", Trace.Int n) ]
              (label ^ ".chunk")
              (fun () -> run_chunk 0 0 n))
      end
    in
    let try_acquire pool =
      Mutex.lock pool.mutex;
      let free = (not pool.busy) && not pool.closed in
      if free then pool.busy <- true;
      Mutex.unlock pool.mutex;
      free
    in
    let release pool =
      Mutex.lock pool.mutex;
      pool.busy <- false;
      Mutex.unlock pool.mutex
    in
    (match pool with
    | None -> seq_chunk ()
    | Some pool when pool.size <= 1 || n <= 1 -> seq_chunk ()
    | Some pool when not (try_acquire pool) ->
        (* nested (worker-side) or concurrent call: run inline rather
           than queueing work the busy pool could never start *)
        seq_chunk ()
    | Some pool ->
        Fun.protect ~finally:(fun () -> release pool) @@ fun () ->
        let chunks =
          Stdlib.min (pool.size * Stdlib.max 1 chunks_per_domain) n
        in
        let bound c = c * n / chunks in
        let remaining = ref (chunks - 1) in
        let first_exn = ref None in
        let done_cond = Condition.create () in
        (* per-chunk slots are single-writer and only read after the
           join below, so no extra synchronisation is needed *)
        let run_ns = if instrumented then Array.make chunks 0.0 else [||] in
        let wait_ns = if instrumented then Array.make chunks 0.0 else [||] in
        let who = if instrumented then Array.make chunks (-1) else [||] in
        let parent = Trace.current trace in
        let t_submit = if instrumented then Clock.now () else 0.0 in
        let timed_chunk c tbuf lo hi =
          who.(c) <- (Domain.self () :> int);
          wait_ns.(c) <- (Clock.now () -. t_submit) *. 1e9;
          let t0 = Clock.now () in
          Fun.protect
            ~finally:(fun () -> run_ns.(c) <- (Clock.now () -. t0) *. 1e9)
            (fun () ->
              Trace.span tbuf
                ~args:
                  [ ("chunk", Trace.Int c); ("lo", Trace.Int lo);
                    ("hi", Trace.Int hi) ]
                (label ^ ".chunk")
                (fun () -> run_chunk c lo hi))
        in
        let task c () =
          (* the join bookkeeping must run no matter how the chunk dies
             (including exceptions raised while *recording* the chunk's
             exception), or the submitting domain waits forever on
             [done_cond] and every later fan-out wedges behind the
             stuck busy flag *)
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock pool.mutex;
              decr remaining;
              if !remaining = 0 then Condition.signal done_cond;
              Mutex.unlock pool.mutex)
            (fun () ->
              try
                if instrumented then
                  let tbuf =
                    match trace with
                    | None -> None
                    | Some b -> Some (Trace.attach (Trace.owner b) ~parent ())
                  in
                  timed_chunk c tbuf (bound c) (bound (c + 1))
                else run_chunk c (bound c) (bound (c + 1))
              with exn ->
                Mutex.lock pool.mutex;
                if !first_exn = None then first_exn := Some exn;
                Mutex.unlock pool.mutex)
        in
        Mutex.lock pool.mutex;
        for c = 1 to chunks - 1 do
          Queue.add (task c) pool.queue
        done;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        let own_exn =
          try
            (if instrumented then timed_chunk 0 trace 0 (bound 1)
             else run_chunk 0 0 (bound 1));
            None
          with exn -> Some exn
        in
        Mutex.lock pool.mutex;
        while !remaining > 0 do
          Condition.wait done_cond pool.mutex
        done;
        Mutex.unlock pool.mutex;
        if instrumented then begin
          (* per-chunk histograms keep their historical names; balance is
             judged on busy time aggregated per executing domain *)
          for c = 0 to chunks - 1 do
            Metrics.observe metrics (label ^ ".chunk_run_ns") run_ns.(c);
            Metrics.observe metrics (label ^ ".chunk_wait_ns") wait_ns.(c)
          done;
          let by_domain = Hashtbl.create 8 in
          for c = 0 to chunks - 1 do
            let rt, wt =
              match Hashtbl.find_opt by_domain who.(c) with
              | Some (r, w) -> (r, w)
              | None -> (0.0, 0.0)
            in
            Hashtbl.replace by_domain who.(c)
              (rt +. run_ns.(c), wt +. wait_ns.(c))
          done;
          let n_dom = Hashtbl.length by_domain in
          let sum = ref 0.0 and max_run = ref 0.0 in
          Hashtbl.iter
            (fun _ (rt, wt) ->
              Metrics.observe metrics (label ^ ".domain_run_ns") rt;
              Metrics.observe metrics (label ^ ".domain_wait_ns") wt;
              sum := !sum +. rt;
              if rt > !max_run then max_run := rt)
            by_domain;
          let mean = !sum /. float_of_int (Stdlib.max 1 n_dom) in
          if mean > 0.0 then begin
            Metrics.observe metrics (label ^ ".imbalance") (!max_run /. mean);
            Metrics.gauge metrics "exec.pool.imbalance" (!max_run /. mean)
          end
        end;
        (match (own_exn, !first_exn) with
        | Some exn, _ | None, Some exn -> raise exn
        | None, None -> ()));
    Array.map
      (function Some v -> v | None -> assert false (* every chunk ran *))
      results
  end

let parallel_init_ws ?pool ?cancel ?trace ?metrics ?label ?chunks_per_domain
    ~ws n f =
  run_ws ?cancel ?trace ?metrics ?label ?chunks_per_domain pool ws n f

let parallel_init ?pool ?cancel ?trace ?metrics ?label ?chunks_per_domain n f =
  run_ws ?cancel ?trace ?metrics ?label ?chunks_per_domain pool
    (fun _ -> ())
    n
    (fun () i -> f i)

let parallel_map_ws ?pool ?cancel ?trace ?metrics ?label ?chunks_per_domain ~ws
    f arr =
  run_ws ?cancel ?trace ?metrics ?label ?chunks_per_domain pool ws
    (Array.length arr)
    (fun w i -> f w arr.(i))

let parallel_map ?pool ?cancel ?trace ?metrics ?label ?chunks_per_domain f arr =
  run_ws ?cancel ?trace ?metrics ?label ?chunks_per_domain pool
    (fun _ -> ())
    (Array.length arr)
    (fun () i -> f arr.(i))
