type t = {
  size : int;  (** total parallelism: workers + the submitting domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue && pool.closed then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let domains pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Chunked fan-out: [size] fixed contiguous chunks, workers take chunks
   1..size-1 from the queue while the submitting domain runs chunk 0,
   then waits for the stragglers. Each chunk writes disjoint slots of
   [results], so no ordering decision ever reaches the output.

   With [?trace]/[?metrics] attached, each chunk runs inside a
   [<label>.chunk] span on the executing domain's track (worker-side
   buffers attach under the caller's innermost open span) and
   wait/run times land in [<label>.chunk_wait_ns]/[<label>.chunk_run_ns]
   histograms plus a [<label>.imbalance] ratio. Instrumentation never
   touches [results] or the chunk boundaries, and the uninstrumented
   path performs no clock reads, so outputs stay bit-identical. *)
let run_ws ?trace ?metrics ?(label = "exec") pool make_ws n f =
  if n = 0 then [||]
  else begin
    let instrumented = Option.is_some trace || Option.is_some metrics in
    let results = Array.make n None in
    let run_chunk lo hi =
      let ws = make_ws () in
      for i = lo to hi - 1 do
        results.(i) <- Some (f ws i)
      done
    in
    let seq_chunk () =
      if not instrumented then run_chunk 0 n
      else begin
        let t0 = Clock.now () in
        Fun.protect
          ~finally:(fun () ->
            Metrics.observe_since_ns metrics (label ^ ".chunk_run_ns") t0)
          (fun () ->
            Trace.span trace
              ~args:
                [ ("chunk", Trace.Int 0); ("lo", Trace.Int 0);
                  ("hi", Trace.Int n) ]
              (label ^ ".chunk")
              (fun () -> run_chunk 0 n))
      end
    in
    (match pool with
    | None -> seq_chunk ()
    | Some pool when pool.size <= 1 || n <= 1 -> seq_chunk ()
    | Some pool ->
        let chunks = Stdlib.min pool.size n in
        let bound c = c * n / chunks in
        let remaining = ref (chunks - 1) in
        let first_exn = ref None in
        let done_cond = Condition.create () in
        (* per-chunk slots are single-writer and only read after the
           join below, so no extra synchronisation is needed *)
        let run_ns = if instrumented then Array.make chunks 0.0 else [||] in
        let wait_ns = if instrumented then Array.make chunks 0.0 else [||] in
        let parent = Trace.current trace in
        let t_submit = if instrumented then Clock.now () else 0.0 in
        let timed_chunk c tbuf lo hi =
          wait_ns.(c) <- (Clock.now () -. t_submit) *. 1e9;
          let t0 = Clock.now () in
          Fun.protect
            ~finally:(fun () -> run_ns.(c) <- (Clock.now () -. t0) *. 1e9)
            (fun () ->
              Trace.span tbuf
                ~args:
                  [ ("chunk", Trace.Int c); ("lo", Trace.Int lo);
                    ("hi", Trace.Int hi) ]
                (label ^ ".chunk")
                (fun () -> run_chunk lo hi))
        in
        let task c () =
          (try
             if instrumented then
               let tbuf =
                 match trace with
                 | None -> None
                 | Some b -> Some (Trace.attach (Trace.owner b) ~parent ())
               in
               timed_chunk c tbuf (bound c) (bound (c + 1))
             else run_chunk (bound c) (bound (c + 1))
           with exn ->
             Mutex.lock pool.mutex;
             if !first_exn = None then first_exn := Some exn;
             Mutex.unlock pool.mutex);
          Mutex.lock pool.mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock pool.mutex
        in
        Mutex.lock pool.mutex;
        for c = 1 to chunks - 1 do
          Queue.add (task c) pool.queue
        done;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        let own_exn =
          try
            (if instrumented then timed_chunk 0 trace 0 (bound 1)
             else run_chunk 0 (bound 1));
            None
          with exn -> Some exn
        in
        Mutex.lock pool.mutex;
        while !remaining > 0 do
          Condition.wait done_cond pool.mutex
        done;
        Mutex.unlock pool.mutex;
        if instrumented then begin
          let sum = ref 0.0 and max_run = ref 0.0 in
          for c = 0 to chunks - 1 do
            Metrics.observe metrics (label ^ ".chunk_run_ns") run_ns.(c);
            Metrics.observe metrics (label ^ ".chunk_wait_ns") wait_ns.(c);
            sum := !sum +. run_ns.(c);
            if run_ns.(c) > !max_run then max_run := run_ns.(c)
          done;
          let mean = !sum /. float_of_int chunks in
          if mean > 0.0 then
            Metrics.observe metrics (label ^ ".imbalance") (!max_run /. mean)
        end;
        (match (own_exn, !first_exn) with
        | Some exn, _ | None, Some exn -> raise exn
        | None, None -> ()));
    Array.map
      (function Some v -> v | None -> assert false (* every chunk ran *))
      results
  end

let parallel_init_ws ?pool ?trace ?metrics ?label ~ws n f =
  run_ws ?trace ?metrics ?label pool ws n f

let parallel_init ?pool ?trace ?metrics ?label n f =
  run_ws ?trace ?metrics ?label pool (fun () -> ()) n (fun () i -> f i)

let parallel_map_ws ?pool ?trace ?metrics ?label ~ws f arr =
  run_ws ?trace ?metrics ?label pool ws (Array.length arr) (fun w i ->
      f w arr.(i))

let parallel_map ?pool ?trace ?metrics ?label f arr =
  run_ws ?trace ?metrics ?label pool (fun () -> ()) (Array.length arr)
    (fun () i -> f arr.(i))
