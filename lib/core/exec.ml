type t = {
  size : int;  (** total parallelism: workers + the submitting domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue && pool.closed then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let domains pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Chunked fan-out: [size] fixed contiguous chunks, workers take chunks
   1..size-1 from the queue while the submitting domain runs chunk 0,
   then waits for the stragglers. Each chunk writes disjoint slots of
   [results], so no ordering decision ever reaches the output. *)
let run_ws pool make_ws n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let run_chunk lo hi =
      let ws = make_ws () in
      for i = lo to hi - 1 do
        results.(i) <- Some (f ws i)
      done
    in
    (match pool with
    | None -> run_chunk 0 n
    | Some pool when pool.size <= 1 || n <= 1 -> run_chunk 0 n
    | Some pool ->
        let chunks = Stdlib.min pool.size n in
        let bound c = c * n / chunks in
        let remaining = ref (chunks - 1) in
        let first_exn = ref None in
        let done_cond = Condition.create () in
        let task c () =
          (try run_chunk (bound c) (bound (c + 1))
           with exn ->
             Mutex.lock pool.mutex;
             if !first_exn = None then first_exn := Some exn;
             Mutex.unlock pool.mutex);
          Mutex.lock pool.mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock pool.mutex
        in
        Mutex.lock pool.mutex;
        for c = 1 to chunks - 1 do
          Queue.add (task c) pool.queue
        done;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        let own_exn = (try run_chunk 0 (bound 1); None with exn -> Some exn) in
        Mutex.lock pool.mutex;
        while !remaining > 0 do
          Condition.wait done_cond pool.mutex
        done;
        Mutex.unlock pool.mutex;
        (match (own_exn, !first_exn) with
        | Some exn, _ | None, Some exn -> raise exn
        | None, None -> ()));
    Array.map
      (function Some v -> v | None -> assert false (* every chunk ran *))
      results
  end

let parallel_init_ws ?pool ~ws n f = run_ws pool ws n f
let parallel_init ?pool n f = run_ws pool (fun () -> ()) n (fun () i -> f i)

let parallel_map_ws ?pool ~ws f arr =
  run_ws pool ws (Array.length arr) (fun w i -> f w arr.(i))

let parallel_map ?pool f arr =
  run_ws pool (fun () -> ()) (Array.length arr) (fun () i -> f arr.(i))
