(* Cross-cutting extraction telemetry.

   A [t] is a mutable collector owned by the caller of a pipeline stage
   and threaded through the numerical layers as an optional argument.
   Every recording entry point takes a [t option] so instrumented code
   can pass its own [?diag] parameter straight through without
   pattern-matching; [None] recording is a no-op costing one branch.

   The collector survives exceptions: a stage that raises has still
   recorded its counters and events, so a failed extraction can be
   diagnosed from the report. *)

type level = Info | Warning | Error

type event = { level : level; stage : string; message : string }
type span = { stage : string; seconds : float }

type stat = {
  name : string;
  samples : int;
  total : float;
  min : float;
  max : float;
  last : float;
}

type report = {
  spans : span list;
  counters : (string * int) list;
  stats : stat list;
  events : event list;
  notes : (string * string) list;
}

type t = {
  mutable rev_spans : span list;
  counter_tbl : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;  (* first-seen order, reversed *)
  stat_tbl : (string, stat ref) Hashtbl.t;
  mutable stat_order : string list;
  mutable rev_events : event list;
  mutable rev_notes : (string * string) list;
}

let create () =
  {
    rev_spans = [];
    counter_tbl = Hashtbl.create 16;
    counter_order = [];
    stat_tbl = Hashtbl.create 16;
    stat_order = [];
    rev_events = [];
    rev_notes = [];
  }

let add d name n =
  match d with
  | None -> ()
  | Some d -> begin
      match Hashtbl.find_opt d.counter_tbl name with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add d.counter_tbl name (ref n);
          d.counter_order <- name :: d.counter_order
    end

let incr d name = add d name 1

let observe d name v =
  match d with
  | None -> ()
  | Some d -> begin
      match Hashtbl.find_opt d.stat_tbl name with
      | Some r ->
          let s = !r in
          r :=
            {
              s with
              samples = s.samples + 1;
              total = s.total +. v;
              min = Float.min s.min v;
              max = Float.max s.max v;
              last = v;
            }
      | None ->
          Hashtbl.add d.stat_tbl name
            (ref { name; samples = 1; total = v; min = v; max = v; last = v });
          d.stat_order <- name :: d.stat_order
    end

let event d level ~stage message =
  match d with
  | None -> ()
  | Some d -> d.rev_events <- { level; stage; message } :: d.rev_events

let info d ~stage message = event d Info ~stage message
let warn d ~stage message = event d Warning ~stage message
let error d ~stage message = event d Error ~stage message

let note d name value =
  match d with
  | None -> ()
  | Some d ->
      (* latest value wins; a re-noted key moves to the end of the report *)
      d.rev_notes <-
        (name, value) :: List.filter (fun (k, _) -> k <> name) d.rev_notes

let span d stage f =
  match d with
  | None -> f ()
  | Some d ->
      let t0 = Clock.now () in
      let record () =
        d.rev_spans <- { stage; seconds = Clock.now () -. t0 } :: d.rev_spans
      in
      let r = try f () with e -> record (); raise e in
      record ();
      r

let mean (s : stat) = s.total /. float_of_int (Stdlib.max 1 s.samples)

let report d =
  {
    spans = List.rev d.rev_spans;
    counters =
      List.rev_map
        (fun name ->
          (name, match Hashtbl.find_opt d.counter_tbl name with
                 | Some r -> !r
                 | None -> 0))
        d.counter_order;
    stats =
      List.rev_map
        (fun name ->
          match Hashtbl.find_opt d.stat_tbl name with
          | Some r -> !r
          | None -> { name; samples = 0; total = 0.0; min = 0.0; max = 0.0; last = 0.0 })
        d.stat_order;
    events = List.rev d.rev_events;
    notes = List.rev d.rev_notes;
  }

let warnings r =
  List.filter (fun e -> e.level = Warning || e.level = Error) r.events

let has_errors r = List.exists (fun e -> e.level = Error) r.events

let counter r name =
  match List.assoc_opt name r.counters with Some n -> n | None -> 0

let find_note r name = List.assoc_opt name r.notes

let level_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"
