(** The end-to-end extraction pipeline of Fig. 1 / Algorithm 1:

    SPICE netlist → transient Jacobian sampling → TFT transform →
    Recursive Vector Fitting → analytical Hammerstein model.

    This is the library's front door; the individual stages live in
    [engine], [tft], [vf], [rvf] and [hammerstein]. *)

type training = {
  wave : Circuit.Netlist.wave;  (** the large-signal pump applied to the input *)
  t_stop : float;
  dt : float;
  snapshot_every : int;
}

type config = {
  training : training;
  freqs_hz : float array;  (** frequency grid for the TFT transform *)
  estimator_delays : float list;  (** extra state-estimator delays (eq. 4) *)
  rvf : Rvf.config;
  domains : int;
      (** parallelism of the TFT transform (and the per-output fits of
          {!extract_simo}): [1] (the default) stays sequential, [n > 1]
          fans out across an [Exec] pool of [n] domains with
          bit-identical results. *)
  backend : Engine.Mna.backend;
      (** linear-algebra backbone for the training transient and the
          TFT transform. [Dense] (the default) is bit-identical to
          before the knob existed. [Sparse] assembles into compiled CSC
          patterns, factors with {!Linalg.Splu}/{!Linalg.Spclu} and
          sweeps the frequency grid through {!Engine.Ratkrylov} — the
          large-circuit path. A singular sparse factorization or a
          guard breach on the sparse path falls back to the dense
          stage transparently (counter [pipeline.sparse_fallbacks],
          [Warning] event); the fit stages are backend-independent. *)
}

val default_config_for :
  ?points:int ->
  ?domains:int ->
  ?backend:Engine.Mna.backend ->
  f_min:float ->
  f_max:float ->
  training:training ->
  unit ->
  config
(** Log frequency grid with [points] samples (default 40) and the
    default RVF settings; sequential unless [domains > 1]; dense unless
    [backend] says otherwise. *)

type timing = {
  train_seconds : float;  (** transient + snapshot capture *)
  tft_seconds : float;  (** frequency-domain transform of the snapshots *)
  fit_seconds : float;  (** RVF (both stages) + integration + assembly *)
}
(** Stage durations in wall-clock seconds ({!Clock}), so parallel runs
    report real elapsed time rather than summed per-domain CPU time. *)

(** {2 Deadline supervision}

    Every entry point takes an optional {!Cancel.t} token, threaded down
    to the innermost loops (Newton iterations, transient steps, pencil
    solves, VF relocation sweeps, pool chunk boundaries). Requesting
    cancellation makes the run raise [Cancel.Cancelled] at the next
    probe; the [try_]* variants catch it and return [None] with an
    [Error] event (stage [pipeline.cancelled]) in the report.

    Per-stage wall-clock budgets turn a hung stage into a typed
    [Cancel.Deadline_exceeded {site; stage; budget_seconds; elapsed_seconds}]
    instead of an indefinite stall. Budgets are only live against a
    token; passing [?budgets] without [?cancel] arms a private token
    automatically. *)

type budgets = {
  train : float option;  (** seconds for the training transient *)
  tft : float option;  (** seconds for the TFT transform *)
  fit : float option;  (** seconds for the whole fitting stage (all rungs) *)
  rung : float option;  (** seconds for each individual ladder rung *)
}
(** Per-stage wall-clock budgets in seconds; [None] leaves a stage
    unbounded. A rung budget trips with stage ["pipeline.fit:<rung>"],
    so the report's [Error] event names the rung that overran. *)

val no_budgets : budgets
(** All stages unbounded. *)

type retry = {
  attempts : int;  (** total attempts per ladder rung (1 = no retry) *)
  backoff_seconds : float;  (** wait before the first retry *)
  backoff_multiplier : float;  (** growth factor per further retry *)
}
(** Bounded retry-with-backoff for the escalation ladder: a transient
    recoverable failure retries the {e failing rung} from the already
    materialized train/TFT stages (and, with a checkpoint store armed,
    from the on-disk artifacts) rather than restarting the run from
    zero. Counter [pipeline.rung_retries] counts within-rung retries;
    [pipeline.fit_retries] keeps its historical meaning of exhausted
    rungs. The backoff wait is cooperative: an armed deadline or a
    cancellation request reaps a run sleeping between attempts. *)

val no_retry : retry
(** One attempt per rung — exactly the historical ladder behaviour. *)

type outcome = {
  model : Hammerstein.Hmodel.t;
  rvf : Rvf.result;
  dataset : Tft.Dataset.t;
  mna : Engine.Mna.t;
  training_run : Engine.Tran.result;
  timing : timing;
}

val extract :
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?budgets:budgets ->
  ?checkpoint_dir:string ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  output:Engine.Mna.output ->
  unit ->
  outcome
(** Runs the whole flow for a SISO channel. The [input] source's wave is
    replaced by [config.training.wave] during training.

    With [checkpoint_dir], each completed stage is persisted as a
    schema-versioned, fingerprint-addressed {!Checkpoint} artifact
    (stages ["train"], ["tft"], ["fit-o0"]): re-running the same
    extraction resumes from the last settled artifact and produces a
    bit-identical model (floats round-trip via [%.17g]). The
    fingerprint hashes the netlist, training wave/schedule, frequency
    grid, estimator delays, RVF config and channel selection — but not
    [domains], so a run checkpointed at one parallelism resumes at any
    other. Stale artifacts (fingerprint or schema mismatch) are
    silently recomputed; torn/malformed ones are rejected with a
    [Warning] and recomputed. Checkpoint interactions emit [checkpoint]
    {!Obs} events (actions ["store"]/["load"]/["stale"]/["invalid"]).
    A checkpoint-disabled run and a clean checkpointed run are
    bit-identical.

    When [config.domains > 1] a single warm {!Exec} pool is created for
    the whole run and reused by every fan-out stage (TFT pencil solves,
    VF relocation blocks, residue fits) — workers are spawned once, not
    per stage. Passing [?pool] instead lends a caller-owned pool (e.g.
    across repeated extractions); it overrides [config.domains] for
    pool selection and is never shut down here.

    With [diag], records spans for the three pipeline stages
    ([pipeline.train], [pipeline.tft], [pipeline.fit]) and threads the
    collector into the transient engine and the RVF stages. With
    [trace], the same three stages record hierarchical {!Trace} spans —
    down to per-transient-step, per-chunk and per-VF-iteration spans,
    across every pool domain — and with [metrics] the quantitative
    counters and timing histograms of every layer accumulate into the
    registry. With [obs], the unified hub additionally collects the
    algorithmic convergence stream: [stage] boundary events, per-VF-
    iteration pole positions and sigma residuals, rcond samples from
    every LU/complex-LU/QR factorization, and quarantine events.
    Telemetry never changes the numerics: the extracted model
    is bit-for-bit the same with or without collectors.

    With [guard], the {!Guard} layer threads through every stage:
    reciprocal-condition floors on LU factorizations, NaN/Inf sentinels
    on solver outputs and fitted models, transient step-halving
    recovery, snapshot quarantine in the TFT transform and VF
    pole-runaway checks. A clean guarded run returns a bit-identical
    model; a detected-but-unrepairable condition raises
    [Guard.Violation] (or a typed [Singular]) that {!try_extract}
    treats as recoverable. *)

val buffer_config : ?snapshots:int -> ?domains:int -> unit -> config
(** The Section-IV experiment configuration for {!Circuits.Buffer}:
    one period of the low-frequency high-amplitude training sine,
    ~[snapshots] (default 100) TFT samples, 1 Hz – 10 GHz grid. *)

val extract_buffer :
  ?guard:Guard.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?config:config ->
  unit ->
  outcome
(** Convenience wrapper reproducing the paper's example end-to-end,
    threading the optional collectors through {!extract}. *)

val extract_simo :
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  outputs:Engine.Mna.output list ->
  unit ->
  outcome list
(** Single-input multi-output extraction: "the extension towards MIMO
    systems is very straightforward" — the training transient, snapshot
    capture and TFT pencil solves are shared across channels; only the
    fitting stages run per output. Returns one outcome per requested
    output (all sharing the same dataset and training run).

    A [diag] collector or a [trace] buffer is single-owner mutable
    state, so attaching either runs the per-output fits sequentially
    (the results are bit-identical either way; only wall-clock
    changes). A [metrics] registry is internally synchronized and never
    affects the fan-out. *)

(** {2 Graceful degradation}

    The raising entry points above propagate the first numerical failure
    ([Invalid_argument], [Failure], {!Engine.Dc.No_convergence},
    {!Linalg.Lu.Singular}, {!Linalg.Clu.Singular},
    {!Linalg.Splu.Singular}, {!Linalg.Spclu.Singular},
    {!Guard.Violation}).
    The [try_]* variants below never raise on those: they climb an
    escalation ladder of progressively more permissive RVF
    configurations and, when every rung fails, return [None] together
    with a {!Diag.report} whose events name the failing stage and every
    retried rung. *)

val escalation_ladder : Rvf.config -> (string * Rvf.config) list
(** The retry ladder used by {!try_extract}, most-preferred first:
    ["base"] (the untouched config — when it succeeds the result is
    bit-for-bit the raising path's), ["more-start-poles"] (start the
    pole escalation higher), ["switched-weighting"] (flip the
    frequency-stage weighting between uniform and inverse-square-root),
    ["relaxed-min-imag"] (divide [min_imag_fraction] by 4) and
    ["combined"] (all of the above). *)

val describe_exn : exn -> string
(** Human-readable rendering of the recoverable failure set above (typed
    payloads included); falls back to [Printexc.to_string]. Used for the
    [Error] events of the [try_]* variants and the CLI's structured
    error object. *)

val try_extract :
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?budgets:budgets ->
  ?checkpoint_dir:string ->
  ?retry:retry ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  output:Engine.Mna.output ->
  unit ->
  outcome option * Diag.report
(** Non-raising {!extract}. Always returns a populated report: spans and
    counters for the stages that ran, a [Warning] event per failed
    ladder rung (counter [pipeline.fit_retries]), a note
    [pipeline.ladder_rung] naming the rung that produced the model, and
    an [Error] event naming the failing stage when the outcome is
    [None]. A model produced by any rung above ["base"] carries a
    degraded-extraction [Warning]. [?trace]/[?metrics]/[?obs] are
    threaded through every stage exactly as in {!extract} — including
    the stages that ran before a failure, so a trace of a failed
    extraction shows where the time went. With [obs], the returned
    report is drawn from the hub's own diag collector (so the bundled
    [diag.json] and the report coincide), every ladder rung emits an
    [escalation] event (outcome ["ok"]/["failed"]/["retry"]/["deadline"]
    with the failure detail) and recoverable stage failures emit
    [violation] events.

    Cancellation and deadlines are {e not} recoverable: a tripped
    budget aborts the ladder (no retry, no further rungs), records an
    [Error] event whose stage carries the rung label
    (["pipeline.fit:<rung>"]) plus an [obs] [deadline] event, and
    returns [None]. [Checkpoint.Killed] (the chaos harness's simulated
    crash) propagates to the caller. With [checkpoint_dir] armed, a
    rung retry resumes from the on-disk train/TFT artifacts, and a
    settled fit artifact short-circuits the ladder entirely on
    resume. *)

val try_extract_simo :
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?budgets:budgets ->
  ?retry:retry ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  outputs:Engine.Mna.output list ->
  unit ->
  outcome option list * Diag.report
(** Non-raising {!extract_simo}: one [outcome option] per requested
    output (the ladder runs independently per output) and a single
    shared report. A training or TFT failure yields all-[None]. *)
