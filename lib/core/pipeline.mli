(** The end-to-end extraction pipeline of Fig. 1 / Algorithm 1:

    SPICE netlist → transient Jacobian sampling → TFT transform →
    Recursive Vector Fitting → analytical Hammerstein model.

    This is the library's front door; the individual stages live in
    [engine], [tft], [vf], [rvf] and [hammerstein]. *)

type training = {
  wave : Circuit.Netlist.wave;  (** the large-signal pump applied to the input *)
  t_stop : float;
  dt : float;
  snapshot_every : int;
}

type config = {
  training : training;
  freqs_hz : float array;  (** frequency grid for the TFT transform *)
  estimator_delays : float list;  (** extra state-estimator delays (eq. 4) *)
  rvf : Rvf.config;
  domains : int;
      (** parallelism of the TFT transform (and the per-output fits of
          {!extract_simo}): [1] (the default) stays sequential, [n > 1]
          fans out across an [Exec] pool of [n] domains with
          bit-identical results. *)
}

val default_config_for :
  ?points:int ->
  ?domains:int ->
  f_min:float ->
  f_max:float ->
  training:training ->
  unit ->
  config
(** Log frequency grid with [points] samples (default 40) and the
    default RVF settings; sequential unless [domains > 1]. *)

type timing = {
  train_seconds : float;  (** transient + snapshot capture *)
  tft_seconds : float;  (** frequency-domain transform of the snapshots *)
  fit_seconds : float;  (** RVF (both stages) + integration + assembly *)
}
(** Stage durations in wall-clock seconds ({!Clock}), so parallel runs
    report real elapsed time rather than summed per-domain CPU time. *)

type outcome = {
  model : Hammerstein.Hmodel.t;
  rvf : Rvf.result;
  dataset : Tft.Dataset.t;
  mna : Engine.Mna.t;
  training_run : Engine.Tran.result;
  timing : timing;
}

val extract :
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  output:Engine.Mna.output ->
  unit ->
  outcome
(** Runs the whole flow for a SISO channel. The [input] source's wave is
    replaced by [config.training.wave] during training. *)

val buffer_config : ?snapshots:int -> ?domains:int -> unit -> config
(** The Section-IV experiment configuration for {!Circuits.Buffer}:
    one period of the low-frequency high-amplitude training sine,
    ~[snapshots] (default 100) TFT samples, 1 Hz – 10 GHz grid. *)

val extract_buffer : ?config:config -> unit -> outcome
(** Convenience wrapper reproducing the paper's example end-to-end. *)

val extract_simo :
  config:config ->
  netlist:Circuit.Netlist.t ->
  input:string ->
  outputs:Engine.Mna.output list ->
  unit ->
  outcome list
(** Single-input multi-output extraction: "the extension towards MIMO
    systems is very straightforward" — the training transient, snapshot
    capture and TFT pencil solves are shared across channels; only the
    fitting stages run per output. Returns one outcome per requested
    output (all sharing the same dataset and training run). *)
