(* Shared JSON *writing* helpers for the telemetry serializers
   (Report.diag_json, Trace.chrome_json, Metrics.to_json, bench --json).
   Reading lives in Minijson. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* non-finite floats have no JSON number form; encode them as strings *)
let float x =
  if Float.is_nan x then {|"nan"|}
  else if x = Float.infinity then {|"inf"|}
  else if x = Float.neg_infinity then {|"-inf"|}
  else Printf.sprintf "%.17g" x
