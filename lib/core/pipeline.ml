type training = {
  wave : Circuit.Netlist.wave;
  t_stop : float;
  dt : float;
  snapshot_every : int;
}

type config = {
  training : training;
  freqs_hz : float array;
  estimator_delays : float list;
  rvf : Rvf.config;
  domains : int;
  backend : Engine.Mna.backend;
}

let default_config_for ?(points = 40) ?(domains = 1)
    ?(backend = Engine.Mna.Dense) ~f_min ~f_max ~training () =
  {
    training;
    freqs_hz = Signal.Grid.frequencies_hz ~f_min ~f_max ~points;
    estimator_delays = [];
    rvf = Rvf.default_config;
    domains;
    backend;
  }

(* One warm pool per pipeline run: created before the first fan-out
   stage, reused by every stage (TFT pencil solves, VF relocation
   blocks, residue fits), shut down when the run returns. A caller who
   owns a longer-lived pool passes it in and keeps ownership — it is
   borrowed, never shut down here. [domains <= 1] never spawns and
   takes the sequential paths throughout. *)
let with_run_pool ?pool ~domains f =
  match pool with
  | Some _ -> f pool
  | None ->
      if domains <= 1 then f None
      else Exec.with_pool ~domains (fun pool -> f (Some pool))

type timing = {
  train_seconds : float;
  tft_seconds : float;
  fit_seconds : float;
}

type outcome = {
  model : Hammerstein.Hmodel.t;
  rvf : Rvf.result;
  dataset : Tft.Dataset.t;
  mna : Engine.Mna.t;
  training_run : Engine.Tran.result;
  timing : timing;
}

(* --- deadline supervision -------------------------------------------- *)

type budgets = {
  train : float option;
  tft : float option;
  fit : float option;
  rung : float option;
}

let no_budgets = { train = None; tft = None; fit = None; rung = None }

type retry = {
  attempts : int;
  backoff_seconds : float;
  backoff_multiplier : float;
}

(* one attempt per rung: exactly the historical ladder behaviour *)
let no_retry = { attempts = 1; backoff_seconds = 0.05; backoff_multiplier = 2.0 }

(* per-stage budgets only make sense against a token; when the caller
   supplies budgets without one, arm a private token so the deadlines
   are live *)
let resolve_cancel cancel (budgets : budgets option) =
  match (cancel, budgets) with
  | (Some _ as c), _ -> c
  | None, Some _ -> Some (Cancel.create ())
  | None, None -> None

(* bounded backoff between rung retries; cooperative so an armed
   deadline still reaps a run sleeping between attempts. No Unix
   dependency — the busy-wait is bounded by [retry.backoff_seconds]
   growth and the caller's deadline. *)
let backoff_wait cancel seconds =
  if seconds > 0.0 then begin
    let t0 = Clock.now () in
    while Clock.now () -. t0 < seconds do
      Cancel.check cancel ~site:"pipeline.backoff";
      Domain.cpu_relax ()
    done
  end

(* swap the designated input source's wave for the training pump *)
let with_wave netlist ~input ~wave =
  let swapped = ref false in
  let components =
    List.map
      (fun (c : Circuit.Netlist.component) ->
        if c.name <> input then c
        else begin
          match c.element with
          | Circuit.Netlist.Vsource { p; n; _ } ->
              swapped := true;
              Circuit.Netlist.vsource ~name:c.name p n wave
          | Circuit.Netlist.Isource { p; n; _ } ->
              swapped := true;
              Circuit.Netlist.isource ~name:c.name p n wave
          | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
          | Circuit.Netlist.Inductor _ | Circuit.Netlist.Vccs _
          | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
          | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _
          | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ ->
              invalid_arg
                (Printf.sprintf "Pipeline.extract: input %S is not a source" input)
        end)
      netlist.Circuit.Netlist.components
  in
  if not !swapped then
    invalid_arg (Printf.sprintf "Pipeline.extract: no source named %S" input);
  Circuit.Netlist.make components

(* --- checkpoint plumbing --------------------------------------------- *)

(* The run fingerprint: canonical %.17g rendering of everything that
   determines the extraction's numerics. [domains] is deliberately
   excluded — results are bit-identical across domain counts, so a
   checkpoint taken at one parallelism resumes at any other. *)
let fingerprint_of ~config ~netlist ~input ~outputs =
  String.concat "\n"
    ((* dense fingerprints predate the backend knob and must stay
        byte-identical, so the line only appears for sparse runs *)
     (match config.backend with
     | Engine.Mna.Dense -> []
     | Engine.Mna.Sparse -> [ "backend=sparse" ])
    @ [
      "tft-pipeline-v1";
      "training.wave=" ^ Artifact.render_wave config.training.wave;
      "training.t_stop=" ^ Artifact.render_float config.training.t_stop;
      "training.dt=" ^ Artifact.render_float config.training.dt;
      "training.snapshot_every=" ^ string_of_int config.training.snapshot_every;
      "freqs_hz=" ^ Artifact.render_floats config.freqs_hz;
      "estimator_delays="
      ^ String.concat ","
          (List.map Artifact.render_float config.estimator_delays);
      "rvf=" ^ Artifact.render_rvf_config config.rvf;
      "input=" ^ input;
      "outputs=" ^ String.concat "," (List.map Artifact.render_output outputs);
        "netlist:";
        Artifact.canonical_netlist netlist;
      ])

let ck_of ~config ~netlist ~input ~outputs checkpoint_dir =
  match checkpoint_dir with
  | None -> None
  | Some dir ->
      let fp =
        Checkpoint.fingerprint_of_string
          (fingerprint_of ~config ~netlist ~input ~outputs)
      in
      Some (Checkpoint.create ~dir ~fingerprint:fp)

let load_ck ?obs diag ck ~stage decode =
  match ck with
  | None -> None
  | Some ckpt -> (
      match Checkpoint.load ckpt ~stage with
      | exception Checkpoint.Invalid { file; reason } ->
          Diag.warn diag ~stage:"pipeline.checkpoint"
            (Printf.sprintf "rejected torn/malformed %s: %s" file reason);
          Obs.checkpoint obs ~stage ~action:"invalid";
          None
      | None ->
          if Sys.file_exists (Checkpoint.file ckpt ~stage) then begin
            Diag.warn diag ~stage:"pipeline.checkpoint"
              (Printf.sprintf
                 "stale %s artifact ignored (fingerprint or schema changed)"
                 stage);
            Obs.checkpoint obs ~stage ~action:"stale"
          end;
          None
      | Some payload -> (
          match decode payload with
          | v ->
              Diag.note diag ("checkpoint." ^ stage) "loaded";
              Obs.checkpoint obs ~stage ~action:"load";
              Some v
          | exception Invalid_argument msg ->
              Diag.warn diag ~stage:"pipeline.checkpoint"
                (Printf.sprintf "undecodable %s artifact: %s" stage msg);
              Obs.checkpoint obs ~stage ~action:"invalid";
              None))

(* may raise [Checkpoint.Killed] when the chaos harness armed a
   simulated crash — always after the artifact is safely on disk *)
let store_ck ?obs diag ck ~stage encode v =
  match ck with
  | None -> ()
  | Some ckpt ->
      Checkpoint.store ckpt ~stage (encode v);
      Diag.incr diag "pipeline.checkpoint_stores";
      Obs.checkpoint obs ~stage ~action:"store"

(* --- stages ----------------------------------------------------------- *)

let build_mna ~config ~netlist ~input ~outputs =
  let training_netlist = with_wave netlist ~input ~wave:config.training.wave in
  Engine.Mna.build ~inputs:[ input ] ~outputs training_netlist

let run_train ?guard ?cancel ?diag ?trace ?metrics ?obs ~config ~mna () =
  let tran_opts =
    {
      Engine.Tran.default_opts with
      Engine.Tran.snapshot_every = config.training.snapshot_every;
    }
  in
  Obs.stage obs "pipeline.train";
  Diag.span diag "pipeline.train" (fun () ->
      Trace.span trace "pipeline.train" (fun () ->
          Fault.in_scope "stage:train" @@ fun () ->
          let go backend =
            Engine.Tran.run ~opts:tran_opts ?guard ?cancel ?diag ?trace
              ?metrics ?obs ~backend mna ~t_stop:config.training.t_stop
              ~dt:config.training.dt
          in
          match config.backend with
          | Engine.Mna.Dense -> go Engine.Mna.Dense
          | Engine.Mna.Sparse -> (
              try go Engine.Mna.Sparse
              with
              | (Linalg.Splu.Singular _ | Linalg.Spclu.Singular _) as e ->
                Diag.warn diag ~stage:"pipeline.train"
                  (Printf.sprintf
                     "sparse training transient failed (%s); retrying dense"
                     (Printexc.to_string e));
                Diag.incr diag "pipeline.sparse_fallbacks";
                go Engine.Mna.Dense)))

(* training transient + snapshot capture, shared by every entry point *)
let train_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ~config ~netlist
    ~input ~outputs () =
  let mna = build_mna ~config ~netlist ~input ~outputs in
  ( mna,
    run_train ?guard ?cancel ?diag ?trace ?metrics ?obs ~config ~mna () )

(* snapshots from a sparse training run carry 0×0 placeholder
   Jacobians; a dense retry re-stamps them from the recorded state —
   exactly the matrices a dense run would have captured *)
let densify_snapshots ~mna snapshots =
  Array.map
    (fun (snap : Engine.Tran.snapshot) ->
      if Linalg.Mat.rows snap.Engine.Tran.g_mat > 0 then snap
      else
        let ev =
          Engine.Mna.eval mna ~with_matrices:true ~time:snap.Engine.Tran.time
            snap.Engine.Tran.state
        in
        match (ev.Engine.Mna.g_mat, ev.Engine.Mna.c_mat) with
        | Some g, Some c -> { snap with Engine.Tran.g_mat = g; c_mat = c }
        | _, _ -> assert false)
    snapshots

let tft_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool ~config ~mna
    ~training_run () =
  let estimator = Tft.Estimator.make ~delays:config.estimator_delays () in
  Obs.stage obs "pipeline.tft";
  Diag.span diag "pipeline.tft" (fun () ->
      Trace.span trace "pipeline.tft" (fun () ->
          Fault.in_scope "stage:tft" @@ fun () ->
          let build backend snapshots =
            Tft.Dataset.of_snapshots ?pool ?guard ?cancel ?diag ?trace
              ?metrics ?obs ~backend ~mna ~estimator
              ~freqs_hz:config.freqs_hz snapshots
          in
          let snapshots = training_run.Engine.Tran.snapshots in
          match config.backend with
          | Engine.Mna.Dense -> build Engine.Mna.Dense snapshots
          | Engine.Mna.Sparse -> (
              (* escalation: a singular sparse factorization or a guard
                 breach on the sparse path retries the transform
                 densely — the retry result is exactly what an all-dense
                 run would have produced *)
              try build Engine.Mna.Sparse snapshots
              with
              | ( Linalg.Splu.Singular _ | Linalg.Spclu.Singular _
                | Guard.Violation _ ) as e
              ->
                Diag.warn diag ~stage:"pipeline.tft"
                  (Printf.sprintf
                     "sparse TFT transform failed (%s); retrying dense"
                     (Printexc.to_string e));
                Diag.incr diag "pipeline.sparse_fallbacks";
                Obs.violation obs ~site:"pipeline.tft"
                  (Printexc.to_string e);
                build Engine.Mna.Dense (densify_snapshots ~mna snapshots))))

let extract ?guard ?cancel ?budgets ?checkpoint_dir ?diag ?trace ?metrics ?obs
    ?pool ~config ~netlist ~input ~output () =
  let cancel = resolve_cancel cancel budgets in
  let b = Option.value budgets ~default:no_budgets in
  let ck = ck_of ~config ~netlist ~input ~outputs:[ output ] checkpoint_dir in
  let t0 = Clock.now () in
  let mna = build_mna ~config ~netlist ~input ~outputs:[ output ] in
  Cancel.check cancel ~site:"pipeline.train";
  let training_run =
    match load_ck ?obs diag ck ~stage:"train" Artifact.tran_of_json with
    | Some r -> r
    | None ->
        let r =
          Cancel.with_budget cancel ~stage:"pipeline.train" ?seconds:b.train
            (fun () ->
              run_train ?guard ?cancel ?diag ?trace ?metrics ?obs ~config ~mna
                ())
        in
        store_ck ?obs diag ck ~stage:"train" Artifact.json_of_tran r;
        r
  in
  let t1 = Clock.now () in
  with_run_pool ?pool ~domains:config.domains @@ fun pool ->
  Cancel.check cancel ~site:"pipeline.tft";
  let dataset =
    match load_ck ?obs diag ck ~stage:"tft" Artifact.dataset_of_json with
    | Some d -> d
    | None ->
        let d =
          Cancel.with_budget cancel ~stage:"pipeline.tft" ?seconds:b.tft
            (fun () ->
              tft_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool
                ~config ~mna ~training_run ())
        in
        store_ck ?obs diag ck ~stage:"tft" Artifact.json_of_dataset d;
        d
  in
  let t2 = Clock.now () in
  Cancel.check cancel ~site:"pipeline.fit";
  let rvf =
    match load_ck ?obs diag ck ~stage:"fit-o0" Artifact.fit_of_json with
    | Some fit ->
        Diag.note diag "pipeline.ladder_rung" fit.Artifact.rung;
        Artifact.rvf_of_fit fit
    | None ->
        let r =
          Cancel.with_budget cancel ~stage:"pipeline.fit" ?seconds:b.fit
            (fun () ->
              Obs.stage obs "pipeline.fit";
              Diag.span diag "pipeline.fit" (fun () ->
                  Trace.span trace "pipeline.fit" (fun () ->
                      Rvf.extract ~config:config.rvf ?guard ?cancel ?diag
                        ?trace ?metrics ?obs ?pool ~dataset ~input:0 ~output:0
                        ())))
        in
        store_ck ?obs diag ck ~stage:"fit-o0" Artifact.json_of_fit
          (Artifact.fit_of_rvf ~rung:"base" r);
        r
  in
  let t3 = Clock.now () in
  {
    model = rvf.Rvf.model;
    rvf;
    dataset;
    mna;
    training_run;
    timing =
      {
        train_seconds = t1 -. t0;
        tft_seconds = t2 -. t1;
        fit_seconds = t3 -. t2;
      };
  }

let extract_simo ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool ~config
    ~netlist ~input ~outputs () =
  if outputs = [] then invalid_arg "Pipeline.extract_simo: no outputs";
  let t0 = Clock.now () in
  let mna, training_run =
    train_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ~config ~netlist
      ~input ~outputs ()
  in
  let t1 = Clock.now () in
  let estimator = Tft.Estimator.make ~delays:config.estimator_delays () in
  with_run_pool ?pool ~domains:config.domains (fun pool ->
      let dataset =
        Obs.stage obs "pipeline.tft";
        Diag.span diag "pipeline.tft" (fun () ->
            Trace.span trace "pipeline.tft" (fun () ->
                Tft.Dataset.of_snapshots ?pool ?guard ?cancel ?diag ?trace
                  ?metrics ?obs ~mna ~estimator ~freqs_hz:config.freqs_hz
                  training_run.Engine.Tran.snapshots))
      in
      let t2 = Clock.now () in
      (* the per-output fits are independent too: reuse the same pool.
         A diag collector or trace buffer is single-owner mutable state,
         so the fits only fan out when neither is attached (the metrics
         registry is internally synchronized and rides along either
         way). When the fits themselves are the parallel axis, the pool
         is NOT also passed down into [Rvf.extract] — a worker-side
         nested fan-out would only hit the busy-pool sequential fallback
         anyway; when the fits run sequentially (diag/trace attached),
         each fit gets the pool for its inner axes instead. *)
      let fit_one ?diag ?trace ?obs ?pool j =
        let t3 = Clock.now () in
        let rvf =
          Rvf.extract ~config:config.rvf ?guard ?cancel ?diag ?trace ?metrics
            ?obs ?pool ~dataset ~input:0 ~output:j ()
        in
        let t4 = Clock.now () in
        {
          model = rvf.Rvf.model;
          rvf;
          dataset;
          mna;
          training_run;
          timing =
            {
              train_seconds = t1 -. t0;
              tft_seconds = t2 -. t1;
              fit_seconds = t4 -. t3;
            };
        }
      in
      let n = List.length outputs in
      (* the obs hub is internally synchronized, but its event stream
         interleaves across fits — keep the per-output fits sequential
         whenever any single-owner or ordered collector is attached *)
      match (diag, trace, obs) with
      | None, None, None ->
          Array.to_list
            (Exec.parallel_init ?pool ?cancel ?metrics ~label:"pipeline.fit" n
               (fun j -> fit_one j))
      | _, _, _ ->
          Obs.stage obs "pipeline.fit";
          Diag.span diag "pipeline.fit" (fun () ->
              Trace.span trace "pipeline.fit" (fun () ->
                  List.init n (fun j -> fit_one ?diag ?trace ?obs ?pool j))))

(* --- graceful degradation ------------------------------------------- *)

let escalation_ladder (rvf : Rvf.config) =
  let open Rvf in
  let more_poles c =
    {
      c with
      freq_start = Stdlib.min (c.freq_start + 4) c.max_freq_poles;
      state_start = Stdlib.min (c.state_start + 4) c.max_state_poles;
    }
  in
  let switch_weighting c =
    let flip (o : Vf.Vfit.opts) =
      {
        o with
        Vf.Vfit.weighting =
          (match o.Vf.Vfit.weighting with
          | Vf.Vfit.Uniform -> Vf.Vfit.Inv_sqrt
          | Vf.Vfit.Inv_sqrt | Vf.Vfit.Inv_magnitude -> Vf.Vfit.Uniform);
      }
    in
    { c with freq_opts = flip c.freq_opts }
  in
  let relax_min_imag c =
    { c with min_imag_fraction = c.min_imag_fraction /. 4.0 }
  in
  [
    (* the first rung is the untouched config: when it succeeds the
       non-raising path is bit-for-bit the raising one *)
    ("base", rvf);
    ("more-start-poles", more_poles rvf);
    ("switched-weighting", switch_weighting rvf);
    ("relaxed-min-imag", relax_min_imag rvf);
    ("combined", relax_min_imag (switch_weighting (more_poles rvf)));
  ]

let describe_exn = function
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | Failure m -> "Failure: " ^ m
  | Engine.Dc.No_convergence m -> "No_convergence: " ^ m
  | Linalg.Lu.Singular { pivot_index; magnitude } ->
      Printf.sprintf "Singular: LU pivot %d has magnitude %.3e" pivot_index
        magnitude
  | Linalg.Clu.Singular { pivot_index; magnitude } ->
      Printf.sprintf "Singular: complex LU pivot %d has magnitude %.3e"
        pivot_index magnitude
  | Linalg.Splu.Singular { pivot_index; magnitude } ->
      Printf.sprintf "Singular: sparse LU pivot %d has magnitude %.3e"
        pivot_index magnitude
  | Linalg.Spclu.Singular { pivot_index; magnitude } ->
      Printf.sprintf "Singular: sparse complex LU pivot %d has magnitude %.3e"
        pivot_index magnitude
  | Guard.Violation v -> Guard.describe v
  | Cancel.Cancelled { site } -> Printf.sprintf "Cancelled: at %s" site
  | Cancel.Deadline_exceeded { site; stage; budget_seconds; elapsed_seconds } ->
      Printf.sprintf
        "Deadline_exceeded: stage %s ran %.3fs against a %.3fs budget (probe \
         %s)"
        stage elapsed_seconds budget_seconds site
  | Checkpoint.Invalid { file; reason } ->
      Printf.sprintf "Invalid checkpoint: %s: %s" file reason
  | e -> Printexc.to_string e

(* run [f ()] under [stage]; on a recoverable numerical failure record
   an Error event naming the stage and return None instead of raising.
   Cancellation, deadlines and the chaos harness's simulated crash are
   deliberately NOT recoverable: they propagate to the caller. *)
let recover ?obs diag ~stage f =
  try Some (f ())
  with
  | ( Invalid_argument _ | Failure _ | Engine.Dc.No_convergence _
    | Linalg.Lu.Singular _ | Linalg.Clu.Singular _ | Linalg.Splu.Singular _
    | Linalg.Spclu.Singular _ | Guard.Violation _ ) as e
    ->
    Diag.error diag ~stage (describe_exn e);
    Obs.violation obs ~site:stage (describe_exn e);
    None

let fit_with_ladder ?guard ?cancel ?(budgets = no_budgets) ?(retry = no_retry)
    ?ck ~diag ?trace ?metrics ?obs ?pool ~(config : config) ~dataset ~output
    () =
  let ck_stage = Printf.sprintf "fit-o%d" output in
  match load_ck ?obs diag ck ~stage:ck_stage Artifact.fit_of_json with
  | Some fit ->
      (* settled fit resumed from disk: restore the ladder note so the
         report reads identically to the uninterrupted run's *)
      Diag.note diag "pipeline.ladder_rung" fit.Artifact.rung;
      Some (Artifact.rvf_of_fit fit)
  | None ->
      let rec attempt = function
        | [] ->
            Diag.error diag ~stage:"pipeline.fit"
              (Printf.sprintf
                 "all %d escalation rungs failed for output %d; returning no \
                  model"
                 (List.length (escalation_ladder config.rvf))
                 output);
            None
        | (rung, rvf_config) :: rest -> (
            (* the rung label scopes both the per-rung deadline budget
               (stage "pipeline.fit:<rung>", so a tripped deadline names
               the rung in its typed payload) and the dynamic fault
               scope (so a hang can be armed at exactly one rung) *)
            let run_rung () =
              Fault.in_scope ("rung:" ^ rung) @@ fun () ->
              Cancel.with_budget cancel
                ~stage:("pipeline.fit:" ^ rung)
                ?seconds:budgets.rung
                (fun () ->
                  Diag.span diag "pipeline.fit" (fun () ->
                      Trace.span trace "pipeline.fit" (fun () ->
                          Rvf.extract ~config:rvf_config ?guard ?cancel ?diag
                            ?trace ?metrics ?obs ?pool ~dataset ~input:0
                            ~output ())))
            in
            let rec tries n =
              match run_rung () with
              | rvf -> Some rvf
              | exception
                  ((Cancel.Cancelled _ | Cancel.Deadline_exceeded _) as e) ->
                  (* a tripped deadline aborts the whole ladder: retrying
                     or escalating after the budget ran out would turn a
                     bounded run into an unbounded one *)
                  Obs.escalation obs ~rung ~outcome:"deadline"
                    ~detail:(describe_exn e);
                  raise e
              | exception
                  (( Invalid_argument _ | Failure _
                   | Engine.Dc.No_convergence _ | Linalg.Lu.Singular _
                   | Linalg.Clu.Singular _ | Linalg.Splu.Singular _
                   | Linalg.Spclu.Singular _ | Guard.Violation _ ) as e) ->
                  if n < retry.attempts then begin
                    (* transient failure with attempts left: retry this
                       rung after a bounded backoff, keeping the already
                       checkpointed train/TFT stages in memory rather
                       than restarting the ladder from zero *)
                    Diag.incr diag "pipeline.rung_retries";
                    Diag.warn diag ~stage:"pipeline.fit"
                      (Printf.sprintf
                         "rung %S attempt %d/%d failed (%s); retrying after \
                          backoff"
                         rung n retry.attempts (describe_exn e));
                    Obs.escalation obs ~rung ~outcome:"retry"
                      ~detail:(describe_exn e);
                    backoff_wait cancel
                      (retry.backoff_seconds
                      *. (retry.backoff_multiplier ** float_of_int (n - 1)));
                    tries (n + 1)
                  end
                  else begin
                    Diag.incr diag "pipeline.fit_retries";
                    Diag.warn diag ~stage:"pipeline.fit"
                      (Printf.sprintf "rung %S failed: %s" rung
                         (describe_exn e));
                    Obs.escalation obs ~rung ~outcome:"failed"
                      ~detail:(describe_exn e);
                    None
                  end
            in
            match tries 1 with
            | Some rvf ->
                Diag.note diag "pipeline.ladder_rung" rung;
                Obs.escalation obs ~rung ~outcome:"ok" ~detail:"";
                if rung <> "base" then
                  Diag.warn diag ~stage:"pipeline.fit"
                    (Printf.sprintf
                       "degraded extraction: base config failed, rung %S \
                        produced the model"
                       rung);
                store_ck ?obs diag ck ~stage:ck_stage Artifact.json_of_fit
                  (Artifact.fit_of_rvf ~rung rvf);
                Some rvf
            | None -> attempt rest)
      in
      attempt (escalation_ladder config.rvf)

let try_extract ?guard ?cancel ?budgets ?checkpoint_dir ?retry ?trace ?metrics
    ?obs ?pool ~config ~netlist ~input ~output () =
  let cancel = resolve_cancel cancel budgets in
  let b = Option.value budgets ~default:no_budgets in
  let ck = ck_of ~config ~netlist ~input ~outputs:[ output ] checkpoint_dir in
  (* with a hub attached, its own diag collector is the run's narrative
     so the returned report is exactly the bundle's diag.json *)
  let d = match obs with Some o -> Obs.diag o | None -> Diag.create () in
  let diag = Some d in
  (match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      Diag.note diag "guard.enabled" "true";
      Diag.note diag "guard.snapshot_repair"
        (Guard.repair_to_string g.Guard.snapshot_repair));
  let t0 = Clock.now () in
  let outcome =
    try
      match
        recover ?obs diag ~stage:"pipeline.train" (fun () ->
            let mna = build_mna ~config ~netlist ~input ~outputs:[ output ] in
            Cancel.check cancel ~site:"pipeline.train";
            let training_run =
              match
                load_ck ?obs diag ck ~stage:"train" Artifact.tran_of_json
              with
              | Some r -> r
              | None ->
                  let r =
                    Cancel.with_budget cancel ~stage:"pipeline.train"
                      ?seconds:b.train (fun () ->
                        run_train ?guard ?cancel ?diag ?trace ?metrics ?obs
                          ~config ~mna ())
                  in
                  store_ck ?obs diag ck ~stage:"train" Artifact.json_of_tran r;
                  r
            in
            (mna, training_run))
      with
      | None -> None
      | Some (mna, training_run) -> (
          let t1 = Clock.now () in
          with_run_pool ?pool ~domains:config.domains @@ fun pool ->
          Cancel.check cancel ~site:"pipeline.tft";
          match
            recover ?obs diag ~stage:"pipeline.tft" (fun () ->
                match
                  load_ck ?obs diag ck ~stage:"tft" Artifact.dataset_of_json
                with
                | Some dset -> dset
                | None ->
                    let dset =
                      Cancel.with_budget cancel ~stage:"pipeline.tft"
                        ?seconds:b.tft (fun () ->
                          tft_stage ?guard ?cancel ?diag ?trace ?metrics ?obs
                            ?pool ~config ~mna ~training_run ())
                    in
                    store_ck ?obs diag ck ~stage:"tft"
                      Artifact.json_of_dataset dset;
                    dset)
          with
          | None -> None
          | Some dataset -> (
              let t2 = Clock.now () in
              Cancel.check cancel ~site:"pipeline.fit";
              match
                Cancel.with_budget cancel ~stage:"pipeline.fit" ?seconds:b.fit
                  (fun () ->
                    fit_with_ladder ?guard ?cancel ~budgets:b ?retry ?ck ~diag
                      ?trace ?metrics ?obs ?pool ~config ~dataset ~output:0 ())
              with
              | None -> None
              | Some rvf ->
                  let t3 = Clock.now () in
                  Some
                    {
                      model = rvf.Rvf.model;
                      rvf;
                      dataset;
                      mna;
                      training_run;
                      timing =
                        {
                          train_seconds = t1 -. t0;
                          tft_seconds = t2 -. t1;
                          fit_seconds = t3 -. t2;
                        };
                    }))
    with
    | Cancel.Cancelled { site } as e ->
        (* the supervisor contract: a cancelled or deadline-tripped run
           never yields a model, and the report names what stopped it *)
        Diag.error diag ~stage:"pipeline.cancelled" (describe_exn e);
        Obs.cancelled obs ~site;
        None
    | Cancel.Deadline_exceeded { site; stage; budget_seconds; elapsed_seconds }
      as e ->
        Diag.error diag ~stage (describe_exn e);
        Obs.deadline obs ~site ~stage ~budget_seconds ~elapsed_seconds;
        None
  in
  (outcome, Diag.report d)

let try_extract_simo ?guard ?cancel ?budgets ?retry ?trace ?metrics ?obs ?pool
    ~config ~netlist ~input ~outputs () =
  let cancel = resolve_cancel cancel budgets in
  let b = Option.value budgets ~default:no_budgets in
  let d = match obs with Some o -> Obs.diag o | None -> Diag.create () in
  let diag = Some d in
  (match guard with
  | None -> ()
  | Some _ -> Diag.note diag "guard.enabled" "true");
  if outputs = [] then begin
    Diag.error diag ~stage:"pipeline.train" "no outputs requested";
    ([], Diag.report d)
  end
  else
    let t0 = Clock.now () in
    let all_none () = List.map (fun _ -> None) outputs in
    try
      match
        recover ?obs diag ~stage:"pipeline.train" (fun () ->
            Cancel.with_budget cancel ~stage:"pipeline.train" ?seconds:b.train
              (fun () ->
                train_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ~config
                  ~netlist ~input ~outputs ()))
      with
      | None -> (all_none (), Diag.report d)
      | Some (mna, training_run) -> (
          let t1 = Clock.now () in
          with_run_pool ?pool ~domains:config.domains @@ fun pool ->
          match
            recover ?obs diag ~stage:"pipeline.tft" (fun () ->
                Cancel.with_budget cancel ~stage:"pipeline.tft" ?seconds:b.tft
                  (fun () ->
                    tft_stage ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool
                      ~config ~mna ~training_run ()))
          with
          | None -> (all_none (), Diag.report d)
          | Some dataset ->
              let t2 = Clock.now () in
              let outcomes =
                List.mapi
                  (fun j _ ->
                    let t3 = Clock.now () in
                    match
                      fit_with_ladder ?guard ?cancel ~budgets:b ?retry ~diag
                        ?trace ?metrics ?obs ?pool ~config ~dataset ~output:j
                        ()
                    with
                    | None -> None
                    | Some rvf ->
                        let t4 = Clock.now () in
                        Some
                          {
                            model = rvf.Rvf.model;
                            rvf;
                            dataset;
                            mna;
                            training_run;
                            timing =
                              {
                                train_seconds = t1 -. t0;
                                tft_seconds = t2 -. t1;
                                fit_seconds = t4 -. t3;
                              };
                          })
                  outputs
              in
              (outcomes, Diag.report d))
    with
    | Cancel.Cancelled { site } as e ->
        Diag.error diag ~stage:"pipeline.cancelled" (describe_exn e);
        Obs.cancelled obs ~site;
        (List.map (fun _ -> None) outputs, Diag.report d)
    | Cancel.Deadline_exceeded { site; stage; budget_seconds; elapsed_seconds }
      as e ->
        Diag.error diag ~stage (describe_exn e);
        Obs.deadline obs ~site ~stage ~budget_seconds ~elapsed_seconds;
        (List.map (fun _ -> None) outputs, Diag.report d)

let buffer_config ?(snapshots = 100) ?(domains = 1) () =
  let freq = 1e6 in
  let period = 1.0 /. freq in
  let steps_per_snapshot = 4 in
  let steps = snapshots * steps_per_snapshot in
  {
    training =
      {
        wave = Circuits.Buffer.training_wave ~freq ();
        t_stop = period;
        dt = period /. float_of_int steps;
        snapshot_every = steps_per_snapshot;
      };
    freqs_hz = Signal.Grid.frequencies_hz ~f_min:1.0 ~f_max:1e10 ~points:40;
    estimator_delays = [];
    rvf =
      {
        Rvf.default_config with
        Rvf.max_freq_poles = 16;
        max_state_poles = 24;
        min_imag_fraction = 0.03;
      };
    domains;
    backend = Engine.Mna.Dense;
  }

let extract_buffer ?guard ?diag ?trace ?metrics ?obs ?config () =
  let config = match config with Some c -> c | None -> buffer_config () in
  extract ?guard ?diag ?trace ?metrics ?obs ~config
    ~netlist:(Circuits.Buffer.netlist ())
    ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
