type training = {
  wave : Circuit.Netlist.wave;
  t_stop : float;
  dt : float;
  snapshot_every : int;
}

type config = {
  training : training;
  freqs_hz : float array;
  estimator_delays : float list;
  rvf : Rvf.config;
  domains : int;
}

let default_config_for ?(points = 40) ?(domains = 1) ~f_min ~f_max ~training () =
  {
    training;
    freqs_hz = Signal.Grid.frequencies_hz ~f_min ~f_max ~points;
    estimator_delays = [];
    rvf = Rvf.default_config;
    domains;
  }

(* the pool only exists for the stages that fan out; [domains <= 1]
   never spawns and takes the sequential paths throughout *)
let with_opt_pool ~domains f =
  if domains <= 1 then f None
  else Exec.with_pool ~domains (fun pool -> f (Some pool))

type timing = {
  train_seconds : float;
  tft_seconds : float;
  fit_seconds : float;
}

type outcome = {
  model : Hammerstein.Hmodel.t;
  rvf : Rvf.result;
  dataset : Tft.Dataset.t;
  mna : Engine.Mna.t;
  training_run : Engine.Tran.result;
  timing : timing;
}

(* swap the designated input source's wave for the training pump *)
let with_wave netlist ~input ~wave =
  let swapped = ref false in
  let components =
    List.map
      (fun (c : Circuit.Netlist.component) ->
        if c.name <> input then c
        else begin
          match c.element with
          | Circuit.Netlist.Vsource { p; n; _ } ->
              swapped := true;
              Circuit.Netlist.vsource ~name:c.name p n wave
          | Circuit.Netlist.Isource { p; n; _ } ->
              swapped := true;
              Circuit.Netlist.isource ~name:c.name p n wave
          | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
          | Circuit.Netlist.Inductor _ | Circuit.Netlist.Vccs _
          | Circuit.Netlist.Vcvs _ | Circuit.Netlist.Cccs _
          | Circuit.Netlist.Diode _ | Circuit.Netlist.Junction_cap _
          | Circuit.Netlist.Mosfet _ | Circuit.Netlist.Bjt _ ->
              invalid_arg
                (Printf.sprintf "Pipeline.extract: input %S is not a source" input)
        end)
      netlist.Circuit.Netlist.components
  in
  if not !swapped then
    invalid_arg (Printf.sprintf "Pipeline.extract: no source named %S" input);
  Circuit.Netlist.make components

let extract ~config ~netlist ~input ~output () =
  let training_netlist =
    with_wave netlist ~input ~wave:config.training.wave
  in
  let mna = Engine.Mna.build ~inputs:[ input ] ~outputs:[ output ] training_netlist in
  let t0 = Clock.now () in
  let tran_opts =
    {
      Engine.Tran.default_opts with
      Engine.Tran.snapshot_every = config.training.snapshot_every;
    }
  in
  let training_run =
    Engine.Tran.run ~opts:tran_opts mna ~t_stop:config.training.t_stop
      ~dt:config.training.dt
  in
  let t1 = Clock.now () in
  let estimator = Tft.Estimator.make ~delays:config.estimator_delays () in
  let dataset =
    with_opt_pool ~domains:config.domains (fun pool ->
        Tft.Dataset.of_snapshots ?pool ~mna ~estimator ~freqs_hz:config.freqs_hz
          training_run.Engine.Tran.snapshots)
  in
  let t2 = Clock.now () in
  let rvf = Rvf.extract ~config:config.rvf ~dataset ~input:0 ~output:0 () in
  let t3 = Clock.now () in
  {
    model = rvf.Rvf.model;
    rvf;
    dataset;
    mna;
    training_run;
    timing =
      {
        train_seconds = t1 -. t0;
        tft_seconds = t2 -. t1;
        fit_seconds = t3 -. t2;
      };
  }

let extract_simo ~config ~netlist ~input ~outputs () =
  if outputs = [] then invalid_arg "Pipeline.extract_simo: no outputs";
  let training_netlist = with_wave netlist ~input ~wave:config.training.wave in
  let mna = Engine.Mna.build ~inputs:[ input ] ~outputs training_netlist in
  let t0 = Clock.now () in
  let tran_opts =
    {
      Engine.Tran.default_opts with
      Engine.Tran.snapshot_every = config.training.snapshot_every;
    }
  in
  let training_run =
    Engine.Tran.run ~opts:tran_opts mna ~t_stop:config.training.t_stop
      ~dt:config.training.dt
  in
  let t1 = Clock.now () in
  let estimator = Tft.Estimator.make ~delays:config.estimator_delays () in
  with_opt_pool ~domains:config.domains (fun pool ->
      let dataset =
        Tft.Dataset.of_snapshots ?pool ~mna ~estimator ~freqs_hz:config.freqs_hz
          training_run.Engine.Tran.snapshots
      in
      let t2 = Clock.now () in
      (* the per-output fits are independent too: reuse the same pool *)
      let outcomes =
        Exec.parallel_init ?pool (List.length outputs) (fun j ->
            let t3 = Clock.now () in
            let rvf = Rvf.extract ~config:config.rvf ~dataset ~input:0 ~output:j () in
            let t4 = Clock.now () in
            {
              model = rvf.Rvf.model;
              rvf;
              dataset;
              mna;
              training_run;
              timing =
                {
                  train_seconds = t1 -. t0;
                  tft_seconds = t2 -. t1;
                  fit_seconds = t4 -. t3;
                };
            })
      in
      Array.to_list outcomes)

let buffer_config ?(snapshots = 100) ?(domains = 1) () =
  let freq = 1e6 in
  let period = 1.0 /. freq in
  let steps_per_snapshot = 4 in
  let steps = snapshots * steps_per_snapshot in
  {
    training =
      {
        wave = Circuits.Buffer.training_wave ~freq ();
        t_stop = period;
        dt = period /. float_of_int steps;
        snapshot_every = steps_per_snapshot;
      };
    freqs_hz = Signal.Grid.frequencies_hz ~f_min:1.0 ~f_max:1e10 ~points:40;
    estimator_delays = [];
    rvf =
      {
        Rvf.default_config with
        Rvf.max_freq_poles = 16;
        max_state_poles = 24;
        min_imag_fraction = 0.03;
      };
    domains;
  }

let extract_buffer ?config () =
  let config = match config with Some c -> c | None -> buffer_config () in
  extract ~config
    ~netlist:(Circuits.Buffer.netlist ())
    ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
