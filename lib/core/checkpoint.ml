(* Content-addressed, schema-versioned checkpoint store for resumable
   extractions.

   Each artifact is one JSON file wrapped in an envelope carrying the
   schema version, the stage name and the run fingerprint (an MD5 hex
   digest of the canonical config + circuit description computed by the
   caller). A loader only returns the payload when all three match:
   torn or malformed files raise the typed {!Invalid}, a mismatching
   fingerprint or schema version reads as a miss (stale checkpoints are
   silently recomputed and overwritten), and bit-exactness across a
   store/load round trip is guaranteed by {!Minijson}'s [%.17g] float
   rendering.

   Writes go to a temp file in the same directory followed by an atomic
   rename, so a crash mid-write can never leave a half-written artifact
   under the final name. The ["checkpoint.torn_write"] fault site
   simulates exactly that crash by bypassing the rename and truncating
   the payload — the typed reader must reject it on the next resume.

   [arm_kill] is the chaos harness's deterministic interruption point:
   after the n-th completed store the process "crashes" with the typed
   {!Killed}, which the soak runner catches before resuming. *)

exception Invalid of { file : string; reason : string }
exception Killed of { stage : string; stores : int }

let () =
  Printexc.register_printer (function
    | Invalid { file; reason } ->
        Some (Printf.sprintf "invalid checkpoint: %s: %s" file reason)
    | Killed { stage; stores } ->
        Some
          (Printf.sprintf
             "simulated crash after checkpoint store %d (stage %s)" stores
             stage)
    | _ -> None)

let schema_version = 1

type t = { dir : string; fingerprint : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let create ~dir ~fingerprint =
  mkdir_p dir;
  { dir; fingerprint }

let fingerprint t = t.fingerprint
let fingerprint_of_string s = Digest.to_hex (Digest.string s)

(* stage names are [a-z0-9._-]; anything else would need escaping *)
let file t ~stage = Filename.concat t.dir (stage ^ ".ckpt.json")

(* --- deterministic interruption hook (chaos harness) ----------------- *)

let kill_after : int option ref = ref None
let store_count = ref 0
let lock = Mutex.create ()

let arm_kill ~after_stores =
  if after_stores < 1 then invalid_arg "Checkpoint.arm_kill: after_stores < 1";
  Mutex.lock lock;
  kill_after := Some after_stores;
  store_count := 0;
  Mutex.unlock lock

let disarm_kill () =
  Mutex.lock lock;
  kill_after := None;
  let n = !store_count in
  store_count := 0;
  Mutex.unlock lock;
  n

let stores () = !store_count

(* --- store ----------------------------------------------------------- *)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let store t ~stage payload =
  let envelope =
    Minijson.Obj
      [
        ("schema_version", Minijson.Num (float_of_int schema_version));
        ("kind", Minijson.Str "tft-checkpoint");
        ("stage", Minijson.Str stage);
        ("fingerprint", Minijson.Str t.fingerprint);
        ("payload", payload);
      ]
  in
  let text = Minijson.emit envelope ^ "\n" in
  let path = file t ~stage in
  if Fault.should_fire "checkpoint.torn_write" then
    (* simulated crash mid-write: a truncated artifact lands under the
       final name with no atomic rename to protect it. The run that
       "crashed" already holds the result in memory and continues; the
       next resume must reject the torn file and recompute. *)
    write_file path (String.sub text 0 (String.length text / 2))
  else begin
    let tmp = path ^ ".tmp" in
    write_file tmp text;
    Sys.rename tmp path
  end;
  Mutex.lock lock;
  incr store_count;
  let killed =
    match !kill_after with Some n when !store_count >= n -> true | _ -> false
  in
  let n_stores = !store_count in
  if killed then kill_after := None;
  Mutex.unlock lock;
  if killed then raise (Killed { stage; stores = n_stores })

(* --- load ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let load t ~stage =
  let path = file t ~stage in
  if not (Sys.file_exists path) then None
  else begin
    let fail reason = raise (Invalid { file = path; reason }) in
    let text =
      try read_file path with Sys_error msg -> fail msg
    in
    let root =
      try Minijson.parse text with Minijson.Parse_error msg -> fail msg
    in
    (match Minijson.str_field root "kind" with
    | Some "tft-checkpoint" -> ()
    | Some other -> fail (Printf.sprintf "kind %S is not tft-checkpoint" other)
    | None -> fail "missing kind");
    match
      ( Minijson.num_field root "schema_version",
        Minijson.str_field root "stage",
        Minijson.str_field root "fingerprint",
        Minijson.field root "payload" )
    with
    | None, _, _, _ -> fail "missing schema_version"
    | _, None, _, _ -> fail "missing stage"
    | _, _, None, _ -> fail "missing fingerprint"
    | _, _, _, None -> fail "missing payload"
    | Some v, Some st, Some fp, Some payload ->
        if v <> float_of_int schema_version then
          (* written by other code: stale, recompute *)
          None
        else if st <> stage then
          fail (Printf.sprintf "stage %S, expected %S" st stage)
        else if fp <> t.fingerprint then
          (* config/circuit changed since this artifact was written *)
          None
        else Some payload
  end
