(* Numerical guard layer for the extraction stack.

   A [t] is a bundle of thresholds threaded through the numerical
   layers as an optional [?guard] argument, exactly like [?diag] and
   [?trace]: [None] makes every check a no-op branch, so the unguarded
   path performs bit-for-bit the same floating-point operations as a
   build without the guard layer at all. With a guard attached, each
   stage *checks* (reciprocal-condition estimates on LU pivots,
   NaN/Inf sentinels on solver outputs, pole-runaway detection) and
   either *repairs* locally (snapshot quarantine, transient
   step-halving, unstable-pole reflection) or raises the typed
   {!Violation} that the pipeline's escalation ladder knows how to
   catch. Guard checks are read-only: when nothing trips, a guarded
   run returns bit-identical results to an unguarded one. *)

type repair = Drop | Interpolate

type t = {
  rcond_min : float;
      (* factorizations whose diagonal-ratio reciprocal-condition
         estimate falls below this raise Singular *)
  check_finite : bool;  (* NaN/Inf sentinels on solver outputs *)
  max_step_halvings : int;
      (* transient step retry budget: the k-th retry splits the failed
         step into 2^k backward-Euler substeps *)
  snapshot_repair : repair;
      (* what Dataset.of_snapshots does with quarantined snapshots *)
  max_pole_growth : float;
      (* a relocated pole whose magnitude exceeds this multiple of the
         largest fit point is a runaway *)
}

let default =
  {
    rcond_min = 1e-12;
    check_finite = true;
    max_step_halvings = 4;
    snapshot_repair = Interpolate;
    max_pole_growth = 1e4;
  }

let repair_to_string = function Drop -> "drop" | Interpolate -> "interpolate"

type violation = { site : string; detail : string }

exception Violation of violation

let describe { site; detail } =
  Printf.sprintf "guard violation at %s: %s" site detail

let fail ~site detail = raise (Violation { site; detail })

(* the raised-exception rendering, so [Printexc.to_string] users see
   the site instead of an opaque constructor *)
let () =
  Printexc.register_printer (function
    | Violation v -> Some ("Guard.Violation: " ^ describe v)
    | _ -> None)

let finite_array a = Array.for_all Float.is_finite a

let finite_complex_array a =
  Array.for_all
    (fun (z : Complex.t) ->
      Float.is_finite z.Complex.re && Float.is_finite z.Complex.im)
    a

(* finite-output sentinel: no-op without a guard or with [check_finite]
   off, a raise naming [site] otherwise *)
let check_vec guard ~site v =
  match guard with
  | None -> ()
  | Some g ->
      if g.check_finite && not (finite_array v) then
        fail ~site "non-finite entries in solver output"

let check_complex_vec guard ~site v =
  match guard with
  | None -> ()
  | Some g ->
      if g.check_finite && not (finite_complex_array v) then
        fail ~site "non-finite entries in solver output"
