(* Cooperative cancellation and wall-clock deadlines for the extraction
   stack.

   A token threads through the layers exactly like [?obs]: every probe
   takes a [t option], [None] is a single branch with zero clock reads,
   and a token with no armed deadline costs one atomic load per probe.
   The clock is read only when at least one deadline scope is armed, so
   the established zero-clock-read discipline of the disabled paths is
   preserved (asserted in the test suite).

   Deadlines are structured as a stack of scopes: the whole run may
   carry one ([create ~deadline_seconds]), and each pipeline stage may
   push a tighter per-stage budget ([with_budget]). A probe that finds
   any scope expired raises the typed {!Deadline_exceeded} carrying the
   probe site, the owning scope's stage label and its budget — hangs
   become diagnosable, typed failures instead of wedged processes.

   Scopes are pushed and popped by the single domain structuring the
   run; pool workers only read them during a fan-out, which is strictly
   contained in the owning scope's lifetime, so no locking is needed
   beyond the cancellation flag's atomicity. *)

exception Cancelled of { site : string }

exception
  Deadline_exceeded of {
    site : string;  (** the probe that noticed *)
    stage : string;  (** the scope whose budget ran out *)
    budget_seconds : float;
    elapsed_seconds : float;
  }

let () =
  Printexc.register_printer (function
    | Cancelled { site } -> Some (Printf.sprintf "Cancelled at %s" site)
    | Deadline_exceeded { site; stage; budget_seconds; elapsed_seconds } ->
        Some
          (Printf.sprintf
             "Deadline_exceeded at %s: stage %s ran %.3fs against a %.3fs \
              budget"
             site stage elapsed_seconds budget_seconds)
    | _ -> None)

type scope = { stage : string; budget_seconds : float; expires : float }

type t = {
  flag : bool Atomic.t;
  mutable scopes : scope list;  (* innermost first *)
}

let create ?deadline_seconds () =
  let scopes =
    match deadline_seconds with
    | None -> []
    | Some s -> [ { stage = "run"; budget_seconds = s; expires = Clock.now () +. s } ]
  in
  { flag = Atomic.make false; scopes }

let cancel t = Atomic.set t.flag true

let cancel_requested = function
  | None -> false
  | Some t -> Atomic.get t.flag

let trip site (sc : scope) now =
  raise
    (Deadline_exceeded
       {
         site;
         stage = sc.stage;
         budget_seconds = sc.budget_seconds;
         elapsed_seconds = now -. (sc.expires -. sc.budget_seconds);
       })

let check t ~site =
  match t with
  | None -> ()
  | Some t -> (
      if Atomic.get t.flag then raise (Cancelled { site });
      match t.scopes with
      | [] -> ()
      | scopes ->
          (* the only clock read on any probe path, taken iff a deadline
             is armed *)
          let now = Clock.now () in
          List.iter (fun sc -> if now > sc.expires then trip site sc now) scopes)

let expired = function
  | None -> false
  | Some t -> (
      Atomic.get t.flag
      ||
      match t.scopes with
      | [] -> false
      | scopes ->
          let now = Clock.now () in
          List.exists (fun sc -> now > sc.expires) scopes)

let remaining = function
  | None -> Float.infinity
  | Some t -> (
      match t.scopes with
      | [] -> Float.infinity
      | scopes ->
          let now = Clock.now () in
          List.fold_left
            (fun acc sc -> Float.min acc (sc.expires -. now))
            Float.infinity scopes)

let with_budget t ~stage ?seconds f =
  match (t, seconds) with
  | None, _ | Some _, None -> f ()
  | Some t, Some s ->
      let sc = { stage; budget_seconds = s; expires = Clock.now () +. s } in
      t.scopes <- sc :: t.scopes;
      Fun.protect
        ~finally:(fun () ->
          t.scopes <- List.filter (fun x -> not (x == sc)) t.scopes)
        f

(* Simulated-hang helper for the hang-class fault sites ([tran.stall],
   [vf.spin], [exec.chunk_hang]): a cooperative spin that keeps hitting
   the cancellation probe — modelling a pathological loop that still
   reaches its iteration boundary — until the deadline reaps it. The
   hard cap turns an unreaped hang (no token, or no deadline armed)
   into a loud failure instead of wedging the process. *)
let hang_cap_seconds = 2.0

let hang t ~site =
  let t0 = Clock.now () in
  let rec spin () =
    check t ~site;
    if Clock.now () -. t0 > hang_cap_seconds then
      failwith
        (Printf.sprintf
           "%s: simulated hang not reaped within %.1fs (no deadline armed?)"
           site hang_cap_seconds)
    else begin
      Domain.cpu_relax ();
      spin ()
    end
  in
  spin ()
