(** Content-addressed, schema-versioned checkpoint store.

    One JSON file per pipeline stage, wrapped in an envelope carrying
    [schema_version], the stage name and the run fingerprint. Writes
    are atomic (temp file + rename); loads are typed: torn or malformed
    artifacts raise {!Invalid}, stale ones (fingerprint or schema
    mismatch) read as a miss to be recomputed and overwritten. Floats
    round-trip bit-exactly via {!Minijson}'s [%.17g] rendering, which
    is what makes checkpointed resumes bit-identical.

    Hosts the ["checkpoint.torn_write"] fault site (a store that
    truncates the artifact under the final name, simulating a crash
    mid-write without the atomic rename) and the chaos harness's
    deterministic crash hook ({!arm_kill}). *)

type t

exception Invalid of { file : string; reason : string }
(** A present-but-unusable artifact: torn JSON, missing envelope
    fields, wrong kind. Never raised for a merely stale or absent
    checkpoint. *)

exception Killed of { stage : string; stores : int }
(** The {!arm_kill} simulated crash, raised immediately after the n-th
    completed store. *)

val schema_version : int

val create : dir:string -> fingerprint:string -> t
(** Creates [dir] (and parents) if needed. [fingerprint] is the run's
    content address — see {!fingerprint_of_string}. *)

val fingerprint : t -> string

val fingerprint_of_string : string -> string
(** MD5 hex digest of a canonical config + circuit description. *)

val file : t -> stage:string -> string
(** The artifact path for [stage]: [dir/<stage>.ckpt.json]. *)

val store : t -> stage:string -> Minijson.t -> unit
(** Atomically write [stage]'s artifact, then raise {!Killed} if an
    armed {!arm_kill} count was reached. *)

val load : t -> stage:string -> Minijson.t option
(** [Some payload] iff the artifact exists and matches the stage,
    fingerprint and schema version; [None] on absent or stale; raises
    {!Invalid} on torn/malformed files. *)

(** {2 Chaos harness hooks} *)

val arm_kill : after_stores:int -> unit
(** Simulate a crash (typed {!Killed}) right after the [after_stores]-th
    completed {!store}, process-wide; resets the store counter. The hook
    self-disarms when it fires. *)

val disarm_kill : unit -> int
(** Remove the hook; returns the number of stores since {!arm_kill} (or
    since the last disarm) and resets the counter. *)

val stores : unit -> int
(** Completed stores since the last {!arm_kill}/{!disarm_kill}. *)
