(* CLOCK_MONOTONIC via the bechamel stubs already linked by the bench
   harness; nanoseconds since an arbitrary origin. *)

let read_count = Atomic.make 0
let reads () = Atomic.get read_count

let now () =
  Atomic.incr read_count;
  Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed t0 = now () -. t0
