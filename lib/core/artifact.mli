(** Checkpoint artifact (de)serialization and canonical fingerprint
    rendering for the extraction pipeline.

    Encoders produce {!Minijson} values whose floats are rendered with
    [%.17g] and hence round-trip bit-exactly; decoders accept the
    string forms ["nan"]/["inf"]/["-inf"] that Minijson emits for
    non-finite values. Every decoder raises [Invalid_argument]
    (prefixed ["Artifact:"]) on structural mismatch — the pipeline
    treats that like a torn checkpoint: drop and recompute. *)

(** {2 Primitives} *)

val json_of_float : float -> Minijson.t
val float_of_json : Minijson.t -> float
val json_of_floats : float array -> Minijson.t
val floats_of_json : Minijson.t -> float array
val json_of_vec : Linalg.Vec.t -> Minijson.t
val vec_of_json : Minijson.t -> Linalg.Vec.t
val json_of_mat : Linalg.Mat.t -> Minijson.t
val mat_of_json : Minijson.t -> Linalg.Mat.t
val json_of_cmat : Linalg.Cmat.t -> Minijson.t
val cmat_of_json : Minijson.t -> Linalg.Cmat.t
val json_of_complexes : Complex.t array -> Minijson.t
val complexes_of_json : Minijson.t -> Complex.t array

(** {2 Stage payloads} *)

val json_of_tran : Engine.Tran.result -> Minijson.t
val tran_of_json : Minijson.t -> Engine.Tran.result
(** Full transient result including the Jacobian snapshots — the
    ["train"] checkpoint stage. *)

val json_of_dataset : Tft.Dataset.t -> Minijson.t
val dataset_of_json : Minijson.t -> Tft.Dataset.t
(** Full TFT dataset including the complex transfer matrices — the
    ["tft"] checkpoint stage. *)

type fit = {
  rung : string;  (** escalation-ladder rung that produced the fit *)
  freq_model : Vf.Model.t;
  freq_info : Vf.Vfit.info;
  residue_model : Vf.Model.t;
  residue_info : Vf.Vfit.info;
  static_model : Vf.Model.t;
  static_info : Vf.Vfit.info;
  x_range : float * float;
  x0 : float;
  y0 : float;
  has_const : bool;
  build_seconds : float;
}
(** The settled outcome of one ladder fit — the ["fit-o<j>"] checkpoint
    stage. Holds everything needed to rebuild the analytical model
    without re-running any VF stage. *)

val fit_of_rvf : rung:string -> Rvf.result -> fit
val rvf_of_fit : fit -> Rvf.result
(** [rvf_of_fit] reassembles the Hammerstein model via
    {!Rvf.assemble_model}; the resumed result is bit-identical to the
    original (same equations text, same numerics). *)

val json_of_fit : fit -> Minijson.t
val fit_of_json : Minijson.t -> fit

(** {2 Canonical fingerprint rendering}

    Stable [%.17g] textual forms of the extraction inputs, hashed (by
    the pipeline) into the run fingerprint that content-addresses the
    checkpoint set. Deliberately independent of any pretty-printer. *)

val canonical_netlist : Circuit.Netlist.t -> string
(** One line per component. [Ext] (closure) sources render as a fixed
    marker: programmatic waves have no canonical text, so runs driven
    by them share a fingerprint — callers wanting distinct checkpoints
    must use distinct directories. *)

val render_wave : Circuit.Netlist.wave -> string
val render_output : Engine.Mna.output -> string
val render_float : float -> string
val render_floats : float array -> string
val render_vfit_opts : Vf.Vfit.opts -> string
val render_rvf_config : Rvf.config -> string
