(* Deterministic, seeded fault injection for the extraction stack.

   The numerical layers carry named *probes* — one line at each place
   where a real-world failure would enter: a zero LU pivot, a NaN in a
   pencil solve, a diverging Newton iteration, a vector-fitting pole
   reflected into the right half plane, a burst of corrupted snapshots.
   A probe is a call to {!should_fire} with its site name; with no plan
   armed it is a single load-and-branch, and the numerical path is
   bit-for-bit the uninstrumented one.

   Arming a plan selects one site and a deterministic firing schedule
   derived from a seed: the probe fires on its [fire_at]-th invocation
   and on the [burst - 1] invocations after it, then never again. Every
   run with the same seed injects the identical failure at the
   identical point in the computation, so recovery paths (guards,
   quarantine, the pipeline's escalation ladder) can be exercised and
   asserted on in ordinary tests.

   The plan is a process-wide singleton: arming is a test/CLI-harness
   action, never part of library behaviour, and the chaos sweep arms
   one site at a time. [should_fire] takes a mutex only when its site
   matches the armed plan, so disarmed and mismatching probes stay
   contention-free even under the domain pool. *)

type site = { name : string; where : string; what : string }

let sites =
  [
    {
      name = "lu.pivot_zero";
      where = "Linalg.Lu.factor_into";
      what = "zeroes the first pivot so the factorization raises Singular";
    };
    {
      name = "clu.pivot_zero";
      where = "Linalg.Clu.factor_into";
      what = "zeroes the first pencil pivot so the factorization raises Singular";
    };
    {
      name = "dc.newton_diverge";
      where = "Engine.Dc.newton";
      what = "reports Newton divergence, forcing gmin stepping / fallback";
    };
    {
      name = "tran.newton_diverge";
      where = "Engine.Tran.run";
      what = "raises No_convergence for a transient step attempt";
    };
    {
      name = "ac.pencil_nan";
      where = "Engine.Ac.transfer_ws";
      what = "writes NaN into a pencil-solve solution column";
    };
    {
      name = "vf.pole_flip";
      where = "Vf.Vfit.fit";
      what = "reflects a relocated pole into the right half plane";
    };
    {
      name = "rvf.trace_nan";
      where = "Rvf.extract";
      what = "writes NaN into a residue coefficient trace";
    };
    {
      name = "dataset.snapshot_burst";
      where = "Tft.Dataset.of_snapshots";
      what = "corrupts a burst of consecutive snapshot transfer matrices";
    };
  ]

let site_names = List.map (fun s -> s.name) sites
let known name = List.mem name site_names

type plan = {
  plan_site : string;
  seed : int;
  fire_at : int;  (* 1-based probe-invocation index of the first firing *)
  burst : int;  (* number of consecutive firings *)
  mutable calls : int;
  mutable fires : int;
}

let current : plan option ref = ref None
let lock = Mutex.create ()

let arm_exact ~site ?(seed = 0) ~fire_at ~burst () =
  if not (known site) then
    invalid_arg
      (Printf.sprintf "Fault.arm: unknown site %S (known: %s)" site
         (String.concat ", " site_names));
  if fire_at < 1 then invalid_arg "Fault.arm: fire_at must be >= 1";
  if burst < 0 then invalid_arg "Fault.arm: burst must be >= 0";
  current :=
    Some { plan_site = site; seed; fire_at; burst; calls = 0; fires = 0 }

(* the seed packs the schedule so one CLI integer selects both knobs:
   fire_at = 1 + (seed land 7), burst = 1 + ((seed lsr 3) land 7) *)
let schedule_of_seed seed =
  (1 + (seed land 7), 1 + ((seed lsr 3) land 7))

let arm ~site ?(seed = 0) () =
  let fire_at, burst = schedule_of_seed seed in
  arm_exact ~site ~seed ~fire_at ~burst ()

type stats = { site : string; calls : int; fires : int }

let stats () =
  match !current with
  | None -> None
  | Some p -> Some { site = p.plan_site; calls = p.calls; fires = p.fires }

let disarm () =
  let s = stats () in
  current := None;
  s

let armed () = Option.map (fun p -> p.plan_site) !current

let should_fire name =
  match !current with
  | None -> false
  | Some p ->
      if not (String.equal p.plan_site name) then false
      else begin
        Mutex.lock lock;
        p.calls <- p.calls + 1;
        let fire = p.calls >= p.fire_at && p.calls < p.fire_at + p.burst in
        if fire then p.fires <- p.fires + 1;
        Mutex.unlock lock;
        fire
      end

(* "SITE" or "SITE:seed" *)
let parse spec =
  match String.index_opt spec ':' with
  | None -> (spec, 0)
  | Some i ->
      let site = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let seed =
        match int_of_string_opt rest with
        | Some s when s >= 0 -> s
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "Fault.parse: %S: seed must be a non-negative integer" spec)
      in
      (site, seed)
