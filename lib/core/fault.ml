(* Deterministic, seeded fault injection for the extraction stack.

   The numerical layers carry named *probes* — one line at each place
   where a real-world failure would enter: a zero LU pivot, a NaN in a
   pencil solve, a diverging Newton iteration, a vector-fitting pole
   reflected into the right half plane, a burst of corrupted snapshots,
   a loop that stops making progress, a write torn by a crash.
   A probe is a call to {!should_fire} with its site name; with no plan
   armed it is a single load-and-branch, and the numerical path is
   bit-for-bit the uninstrumented one.

   Arming a plan selects one site and a deterministic firing schedule
   derived from a seed: the probe fires on its [fire_at]-th invocation
   and on the [burst - 1] invocations after it, then never again. Every
   run with the same seed injects the identical failure at the
   identical point in the computation, so recovery paths (guards,
   quarantine, the pipeline's escalation ladder, deadline reaping) can
   be exercised and asserted on in ordinary tests.

   Plans are a process-wide singleton list: arming is a test/CLI-harness
   action, never part of library behaviour. {!arm}/{!arm_exact} replace
   the whole list (the classic single-site chaos sweep); {!arm_also}
   adds a second concurrent plan so a numeric fault can walk the
   escalation ladder while a hang-class fault parks a specific rung.
   A plan may further be restricted to a dynamic *scope* (the ladder
   labels its rungs via {!in_scope}), making "hang exactly in rung k"
   schedulable without counting probe invocations. [should_fire] takes
   a mutex only when its site matches an armed plan, so disarmed and
   mismatching probes stay contention-free even under the domain
   pool. *)

type kind = Numeric | Hang | Storage

type site = { name : string; where : string; what : string; kind : kind }

let sites =
  [
    {
      name = "lu.pivot_zero";
      where = "Linalg.Lu.factor_into";
      what = "zeroes the first pivot so the factorization raises Singular";
      kind = Numeric;
    };
    {
      name = "clu.pivot_zero";
      where = "Linalg.Clu.factor_into";
      what = "zeroes the first pencil pivot so the factorization raises Singular";
      kind = Numeric;
    };
    {
      name = "dc.newton_diverge";
      where = "Engine.Dc.newton";
      what = "reports Newton divergence, forcing gmin stepping / fallback";
      kind = Numeric;
    };
    {
      name = "tran.newton_diverge";
      where = "Engine.Tran.run";
      what = "raises No_convergence for a transient step attempt";
      kind = Numeric;
    };
    {
      name = "ac.pencil_nan";
      where = "Engine.Ac.transfer_ws";
      what = "writes NaN into a pencil-solve solution column";
      kind = Numeric;
    };
    {
      name = "vf.pole_flip";
      where = "Vf.Vfit.fit";
      what = "reflects a relocated pole into the right half plane";
      kind = Numeric;
    };
    {
      name = "rvf.trace_nan";
      where = "Rvf.extract";
      what = "writes NaN into a residue coefficient trace";
      kind = Numeric;
    };
    {
      name = "dataset.snapshot_burst";
      where = "Tft.Dataset.of_snapshots";
      what = "corrupts a burst of consecutive snapshot transfer matrices";
      kind = Numeric;
    };
    {
      name = "tran.stall";
      where = "Engine.Tran.run";
      what = "parks a transient step in a cooperative spin until the deadline reaps it";
      kind = Hang;
    };
    {
      name = "vf.spin";
      where = "Vf.Vfit.fit";
      what = "parks a pole-relocation sweep in a cooperative spin until the deadline reaps it";
      kind = Hang;
    };
    {
      name = "exec.chunk_hang";
      where = "Exec.run_ws";
      what = "parks a fan-out chunk in a cooperative spin until the deadline reaps it";
      kind = Hang;
    };
    {
      name = "sp.singular";
      where = "Linalg.Splu.factor_into / Linalg.Spclu.factor_into";
      what = "zeroes the first sparse pivot so the factorization raises Singular";
      kind = Numeric;
    };
    {
      name = "krylov.stall";
      where = "Engine.Ratkrylov.sweep";
      what = "declares the rational-Krylov subspace stalled, degrading the sweep to per-point sparse solves";
      kind = Numeric;
    };
    {
      name = "checkpoint.torn_write";
      where = "Checkpoint.store";
      what = "truncates a checkpoint write in place, simulating a crash that defeats the atomic rename";
      kind = Storage;
    };
  ]

let site_names = List.map (fun s -> s.name) sites
let known name = List.mem name site_names

let kind_of name =
  List.find_map (fun s -> if s.name = name then Some s.kind else None) sites

type plan = {
  plan_site : string;
  seed : int;
  fire_at : int;  (* 1-based probe-invocation index of the first firing *)
  burst : int;  (* number of consecutive firings *)
  plan_scope : string option;  (* fire (and count) only inside this scope *)
  mutable calls : int;
  mutable fires : int;
}

let current : plan list ref = ref []
let scope : string option ref = ref None
let lock = Mutex.create ()

let make_plan ~site ?scope:plan_scope ~seed ~fire_at ~burst () =
  if not (known site) then
    invalid_arg
      (Printf.sprintf "Fault.arm: unknown site %S (known: %s)" site
         (String.concat ", " site_names));
  if fire_at < 1 then invalid_arg "Fault.arm: fire_at must be >= 1";
  if burst < 0 then invalid_arg "Fault.arm: burst must be >= 0";
  { plan_site = site; seed; fire_at; burst; plan_scope; calls = 0; fires = 0 }

let arm_exact ~site ?scope ?(seed = 0) ~fire_at ~burst () =
  current := [ make_plan ~site ?scope ~seed ~fire_at ~burst () ]

let arm_also_exact ~site ?scope ?(seed = 0) ~fire_at ~burst () =
  let p = make_plan ~site ?scope ~seed ~fire_at ~burst () in
  current := p :: List.filter (fun q -> q.plan_site <> site) !current

(* the seed packs the schedule so one CLI integer selects both knobs:
   fire_at = 1 + (seed land 7), burst = 1 + ((seed lsr 3) land 7) *)
let schedule_of_seed seed = (1 + (seed land 7), 1 + ((seed lsr 3) land 7))

let arm ~site ?(seed = 0) () =
  let fire_at, burst = schedule_of_seed seed in
  arm_exact ~site ~seed ~fire_at ~burst ()

let arm_also ~site ?scope ?(seed = 0) () =
  let fire_at, burst = schedule_of_seed seed in
  arm_also_exact ~site ?scope ~seed ~fire_at ~burst ()

type stats = { site : string; calls : int; fires : int }

let stats_of p = { site = p.plan_site; calls = p.calls; fires = p.fires }

let stats () =
  match !current with [] -> None | p :: _ -> Some (stats_of p)

let stats_for site =
  List.find_map
    (fun p -> if p.plan_site = site then Some (stats_of p) else None)
    !current

let disarm () =
  let s = stats () in
  current := [];
  s

let armed () = match !current with [] -> None | p :: _ -> Some p.plan_site

let in_scope label f =
  let previous = !scope in
  scope := Some label;
  Fun.protect ~finally:(fun () -> scope := previous) f

let should_fire name =
  match !current with
  | [] -> false
  | plans -> (
      match List.find_opt (fun p -> String.equal p.plan_site name) plans with
      | None -> false
      | Some p -> (
          match p.plan_scope with
          | Some s when !scope <> Some s ->
              (* out of scope: neither fires nor counts, so the schedule
                 indexes invocations within the scope alone *)
              false
          | Some _ | None ->
              Mutex.lock lock;
              p.calls <- p.calls + 1;
              let fire = p.calls >= p.fire_at && p.calls < p.fire_at + p.burst in
              if fire then p.fires <- p.fires + 1;
              Mutex.unlock lock;
              fire))

(* "SITE" or "SITE:seed" *)
let parse spec =
  match String.index_opt spec ':' with
  | None -> (spec, 0)
  | Some i ->
      let site = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let seed =
        match int_of_string_opt rest with
        | Some s when s >= 0 -> s
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "Fault.parse: %S: seed must be a non-negative integer" spec)
      in
      (site, seed)
