(* Counters, gauges and log-bucketed histograms behind one small mutex.

   The mutex makes the registry safe to share across the Exec pool's
   domains (per-frequency pencil solves record from workers); the
   critical sections are a handful of hashtable operations, orders of
   magnitude cheaper than the kernels being measured. The [None] path
   is a single branch. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
}

type t = {
  mutex : Mutex.t;
  counter_tbl : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;  (* first-seen order, reversed *)
  gauge_tbl : (string, float ref) Hashtbl.t;
  mutable gauge_order : string list;
  hist_tbl : (string, hist) Hashtbl.t;
  mutable hist_order : string list;
}

let create () =
  {
    mutex = Mutex.create ();
    counter_tbl = Hashtbl.create 16;
    counter_order = [];
    gauge_tbl = Hashtbl.create 16;
    gauge_order = [];
    hist_tbl = Hashtbl.create 16;
    hist_order = [];
  }

let locked m f =
  Mutex.lock m.mutex;
  let r = try f m with e -> Mutex.unlock m.mutex; raise e in
  Mutex.unlock m.mutex;
  r

let add m name n =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          match Hashtbl.find_opt m.counter_tbl name with
          | Some r -> r := !r + n
          | None ->
              Hashtbl.add m.counter_tbl name (ref n);
              m.counter_order <- name :: m.counter_order)

let incr m name = add m name 1

let gauge m name v =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          match Hashtbl.find_opt m.gauge_tbl name with
          | Some r -> r := v
          | None ->
              Hashtbl.add m.gauge_tbl name (ref v);
              m.gauge_order <- name :: m.gauge_order)

(* four log buckets per decade; index i covers (10^((i-1)/4), 10^(i/4)].
   Non-positive / non-finite observations use a sentinel underflow
   index below every representable bucket. *)
let underflow_idx = min_int

let bucket_idx v =
  if Float.is_finite v && v > 0.0 then
    (* the epsilon keeps exact powers (log10 = k/4 up to roundoff) in
       their own bucket instead of spilling into the next one *)
    int_of_float (Float.ceil ((4.0 *. Float.log10 v) -. 1e-9))
  else underflow_idx

let bucket_le idx =
  if idx = underflow_idx then 0.0 else Float.pow 10.0 (float_of_int idx /. 4.0)

let observe m name v =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          let h =
            match Hashtbl.find_opt m.hist_tbl name with
            | Some h -> h
            | None ->
                let h =
                  {
                    h_count = 0;
                    h_sum = 0.0;
                    h_min = Float.infinity;
                    h_max = Float.neg_infinity;
                    h_buckets = Hashtbl.create 16;
                  }
                in
                Hashtbl.add m.hist_tbl name h;
                m.hist_order <- name :: m.hist_order;
                h
          in
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          h.h_min <- Float.min h.h_min v;
          h.h_max <- Float.max h.h_max v;
          let idx = bucket_idx v in
          match Hashtbl.find_opt h.h_buckets idx with
          | Some r -> Stdlib.incr r
          | None -> Hashtbl.add h.h_buckets idx (ref 1))

let now_if = function None -> 0.0 | Some _ -> Clock.now ()

let observe_since_ns m name t0 =
  match m with
  | None -> ()
  | Some _ -> observe m name ((Clock.now () -. t0) *. 1e9)

(* --- snapshots -------------------------------------------------------- *)

type bucket = { le : float; bucket_count : int }

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  hist_min : float;
  hist_max : float;
  buckets : bucket list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram list;
}

let snapshot m =
  locked m (fun m ->
      {
        counters =
          List.rev_map
            (fun name -> (name, !(Hashtbl.find m.counter_tbl name)))
            m.counter_order;
        gauges =
          List.rev_map
            (fun name -> (name, !(Hashtbl.find m.gauge_tbl name)))
            m.gauge_order;
        histograms =
          List.rev_map
            (fun name ->
              let h = Hashtbl.find m.hist_tbl name in
              let buckets =
                Hashtbl.fold
                  (fun idx r acc -> (idx, !r) :: acc)
                  h.h_buckets []
                |> List.sort (fun (a, _) (b, _) -> compare a b)
                |> List.map (fun (idx, n) ->
                       { le = bucket_le idx; bucket_count = n })
              in
              {
                hist_name = name;
                count = h.h_count;
                sum = h.h_sum;
                hist_min = h.h_min;
                hist_max = h.h_max;
                buckets;
              })
            m.hist_order;
      })

let hist_mean h = h.sum /. float_of_int (Stdlib.max 1 h.count)

let to_json (s : snapshot) =
  let buf = Buffer.create 4096 in
  let sep = ref "" in
  let item fmt =
    Buffer.add_string buf !sep;
    sep := ",";
    Printf.bprintf buf fmt
  in
  let fresh () = sep := "" in
  Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"counters\": {";
  fresh ();
  List.iter
    (fun (name, n) -> item "\n    \"%s\": %d" (Jsonu.escape name) n)
    s.counters;
  Buffer.add_string buf "\n  },\n  \"gauges\": {";
  fresh ();
  List.iter
    (fun (name, v) ->
      item "\n    \"%s\": %s" (Jsonu.escape name) (Jsonu.float v))
    s.gauges;
  Buffer.add_string buf "\n  },\n  \"histograms\": [";
  fresh ();
  List.iter
    (fun h ->
      item
        "\n    {\"name\": \"%s\", \"count\": %d, \"sum\": %s, \"min\": %s, \
         \"max\": %s, \"mean\": %s, \"buckets\": ["
        (Jsonu.escape h.hist_name) h.count (Jsonu.float h.sum)
        (Jsonu.float h.hist_min) (Jsonu.float h.hist_max)
        (Jsonu.float (hist_mean h));
      List.iteri
        (fun i b ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "{\"le\": %s, \"count\": %d}" (Jsonu.float b.le)
            b.bucket_count)
        h.buckets;
      Buffer.add_string buf "]}")
    s.histograms;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let summary (s : snapshot) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "metrics\n";
  if s.counters <> [] then begin
    Printf.bprintf buf "  counters:\n";
    List.iter
      (fun (name, n) -> Printf.bprintf buf "    %-36s %d\n" name n)
      s.counters
  end;
  if s.gauges <> [] then begin
    Printf.bprintf buf "  gauges:\n";
    List.iter
      (fun (name, v) -> Printf.bprintf buf "    %-36s %.3e\n" name v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    Printf.bprintf buf "  histograms:\n";
    List.iter
      (fun h ->
        Printf.bprintf buf
          "    %-36s n=%d mean=%.3e min=%.3e max=%.3e (%d buckets)\n"
          h.hist_name h.count (hist_mean h) h.hist_min h.hist_max
          (List.length h.buckets))
      s.histograms
  end;
  Buffer.contents buf
