(* Counters, gauges and log-bucketed histograms behind one small mutex.

   The mutex makes the registry safe to share across the Exec pool's
   domains (per-frequency pencil solves record from workers); the
   critical sections are a handful of hashtable operations, orders of
   magnitude cheaper than the kernels being measured. The [None] path
   is a single branch. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
}

type t = {
  mutex : Mutex.t;
  counter_tbl : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;  (* first-seen order, reversed *)
  gauge_tbl : (string, float ref) Hashtbl.t;
  mutable gauge_order : string list;
  hist_tbl : (string, hist) Hashtbl.t;
  mutable hist_order : string list;
}

let create () =
  {
    mutex = Mutex.create ();
    counter_tbl = Hashtbl.create 16;
    counter_order = [];
    gauge_tbl = Hashtbl.create 16;
    gauge_order = [];
    hist_tbl = Hashtbl.create 16;
    hist_order = [];
  }

let locked m f =
  Mutex.lock m.mutex;
  let r = try f m with e -> Mutex.unlock m.mutex; raise e in
  Mutex.unlock m.mutex;
  r

let add m name n =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          match Hashtbl.find_opt m.counter_tbl name with
          | Some r -> r := !r + n
          | None ->
              Hashtbl.add m.counter_tbl name (ref n);
              m.counter_order <- name :: m.counter_order)

let incr m name = add m name 1

let gauge m name v =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          match Hashtbl.find_opt m.gauge_tbl name with
          | Some r -> r := v
          | None ->
              Hashtbl.add m.gauge_tbl name (ref v);
              m.gauge_order <- name :: m.gauge_order)

(* four log buckets per decade; index i covers (10^((i-1)/4), 10^(i/4)].
   Non-positive / non-finite observations use a sentinel underflow
   index below every representable bucket. *)
let underflow_idx = min_int

let bucket_idx v =
  if Float.is_finite v && v > 0.0 then
    (* the epsilon keeps exact powers (log10 = k/4 up to roundoff) in
       their own bucket instead of spilling into the next one *)
    int_of_float (Float.ceil ((4.0 *. Float.log10 v) -. 1e-9))
  else underflow_idx

let bucket_le idx =
  if idx = underflow_idx then 0.0 else Float.pow 10.0 (float_of_int idx /. 4.0)

let observe m name v =
  match m with
  | None -> ()
  | Some m ->
      locked m (fun m ->
          let h =
            match Hashtbl.find_opt m.hist_tbl name with
            | Some h -> h
            | None ->
                let h =
                  {
                    h_count = 0;
                    h_sum = 0.0;
                    h_min = Float.infinity;
                    h_max = Float.neg_infinity;
                    h_buckets = Hashtbl.create 16;
                  }
                in
                Hashtbl.add m.hist_tbl name h;
                m.hist_order <- name :: m.hist_order;
                h
          in
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          h.h_min <- Float.min h.h_min v;
          h.h_max <- Float.max h.h_max v;
          let idx = bucket_idx v in
          match Hashtbl.find_opt h.h_buckets idx with
          | Some r -> Stdlib.incr r
          | None -> Hashtbl.add h.h_buckets idx (ref 1))

let now_if = function None -> 0.0 | Some _ -> Clock.now ()

let observe_since_ns m name t0 =
  match m with
  | None -> ()
  | Some _ -> observe m name ((Clock.now () -. t0) *. 1e9)

(* --- snapshots -------------------------------------------------------- *)

type bucket = { le : float; bucket_count : int }

type histogram = {
  hist_name : string;
  count : int;
  sum : float;
  hist_min : float;
  hist_max : float;
  buckets : bucket list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram list;
}

let snapshot m =
  locked m (fun m ->
      {
        counters =
          List.rev_map
            (fun name -> (name, !(Hashtbl.find m.counter_tbl name)))
            m.counter_order;
        gauges =
          List.rev_map
            (fun name -> (name, !(Hashtbl.find m.gauge_tbl name)))
            m.gauge_order;
        histograms =
          List.rev_map
            (fun name ->
              let h = Hashtbl.find m.hist_tbl name in
              let buckets =
                Hashtbl.fold
                  (fun idx r acc -> (idx, !r) :: acc)
                  h.h_buckets []
                |> List.sort (fun (a, _) (b, _) -> compare a b)
                |> List.map (fun (idx, n) ->
                       { le = bucket_le idx; bucket_count = n })
              in
              {
                hist_name = name;
                count = h.h_count;
                sum = h.h_sum;
                hist_min = h.h_min;
                hist_max = h.h_max;
                buckets;
              })
            m.hist_order;
      })

let hist_mean h = h.sum /. float_of_int (Stdlib.max 1 h.count)

(* Quantile estimate from the log-bucket boundaries: walk the cumulative
   counts to the bucket holding rank q·count, then interpolate linearly
   between the bucket's bounds (the lower bound of bucket [le] is
   [le/10^(1/4)], the underflow bucket is pinned at 0). The estimate is
   clamped to the exact [min, max] envelope, so single-bucket and
   single-observation histograms report exact quantiles. *)
let quantile h q =
  if h.count = 0 || not (Float.is_finite q) then Float.nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int h.count in
    let rec walk cum = function
      | [] -> h.hist_max
      | b :: rest ->
          let cum' = cum +. float_of_int b.bucket_count in
          if cum' >= target && b.bucket_count > 0 then begin
            let hi = b.le in
            let lo =
              if hi <= 0.0 then 0.0
              else hi /. Float.pow 10.0 0.25
            in
            let frac = (target -. cum) /. float_of_int b.bucket_count in
            lo +. (frac *. (hi -. lo))
          end
          else walk cum' rest
    in
    let v = walk 0.0 h.buckets in
    (* clamp into the observed envelope when it is finite *)
    let v =
      if Float.is_finite h.hist_min then Float.max v h.hist_min else v
    in
    if Float.is_finite h.hist_max then Float.min v h.hist_max else v
  end

let to_json (s : snapshot) =
  let buf = Buffer.create 4096 in
  let sep = ref "" in
  let item fmt =
    Buffer.add_string buf !sep;
    sep := ",";
    Printf.bprintf buf fmt
  in
  let fresh () = sep := "" in
  Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"counters\": {";
  fresh ();
  List.iter
    (fun (name, n) -> item "\n    \"%s\": %d" (Minijson.escape name) n)
    s.counters;
  Buffer.add_string buf "\n  },\n  \"gauges\": {";
  fresh ();
  List.iter
    (fun (name, v) ->
      item "\n    \"%s\": %s" (Minijson.escape name) (Minijson.float v))
    s.gauges;
  Buffer.add_string buf "\n  },\n  \"histograms\": [";
  fresh ();
  List.iter
    (fun h ->
      item
        "\n    {\"name\": \"%s\", \"count\": %d, \"sum\": %s, \"min\": %s, \
         \"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \
         \"buckets\": ["
        (Minijson.escape h.hist_name) h.count (Minijson.float h.sum)
        (Minijson.float h.hist_min) (Minijson.float h.hist_max)
        (Minijson.float (hist_mean h))
        (Minijson.float (quantile h 0.50))
        (Minijson.float (quantile h 0.95))
        (Minijson.float (quantile h 0.99));
      List.iteri
        (fun i b ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "{\"le\": %s, \"count\": %d}" (Minijson.float b.le)
            b.bucket_count)
        h.buckets;
      Buffer.add_string buf "]}")
    s.histograms;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let summary (s : snapshot) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "metrics\n";
  if s.counters <> [] then begin
    Printf.bprintf buf "  counters:\n";
    List.iter
      (fun (name, n) -> Printf.bprintf buf "    %-36s %d\n" name n)
      s.counters
  end;
  if s.gauges <> [] then begin
    Printf.bprintf buf "  gauges:\n";
    List.iter
      (fun (name, v) -> Printf.bprintf buf "    %-36s %.3e\n" name v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    Printf.bprintf buf "  histograms:\n";
    List.iter
      (fun h ->
        Printf.bprintf buf
          "    %-36s n=%d mean=%.3e p50=%.3e p95=%.3e p99=%.3e min=%.3e \
           max=%.3e (%d buckets)\n"
          h.hist_name h.count (hist_mean h) (quantile h 0.50)
          (quantile h 0.95) (quantile h 0.99) h.hist_min h.hist_max
          (List.length h.buckets))
      s.histograms
  end;
  Buffer.contents buf
