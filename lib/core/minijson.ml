(* A tiny self-contained JSON reader/writer for the validators, the
   bench comparison mode and the telemetry serializers: no external
   dependency, enough of RFC 8259 for the documents this repo itself
   writes (diag/trace/metrics/bench/obs JSON). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- writing helpers (shared by Trace.chrome_json, Metrics.to_json,
   Report.diag_json, bench --json and the obs bundle) ----------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* non-finite floats have no JSON number form; encode them as strings *)
let float x =
  if Float.is_nan x then {|"nan"|}
  else if x = Float.infinity then {|"inf"|}
  else if x = Float.neg_infinity then {|"-inf"|}
  else Printf.sprintf "%.17g" x

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* our writers only escape control chars; keep it simple *)
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?';
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let emit v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (float f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\":";
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* --- accessors -------------------------------------------------------- *)

let field o key =
  match o with Obj fields -> List.assoc_opt key fields | _ -> None

let as_arr = function Arr l -> Some l | _ -> None
let as_obj = function Obj l -> Some l | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_num = function Num f -> Some f | _ -> None

let num_field o key = Option.bind (field o key) as_num
let str_field o key = Option.bind (field o key) as_str
let arr_field o key = Option.bind (field o key) as_arr
let obj_field o key = Option.bind (field o key) as_obj
