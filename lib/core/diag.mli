(** Structured per-stage telemetry for the extraction pipeline.

    Every iterative numerical stage (transient integration, Newton
    solves, vector fitting, the recursion) accepts an optional [t] and
    records what it actually did: wall-clock spans (via {!Clock}),
    monotonic counters, running statistics, free-form notes, and
    levelled events. The collector is owned by the caller and survives
    exceptions, so a failed extraction still yields a {!report} naming
    the stage that degenerated and the work done up to that point.

    All recording entry points take a [t option]: instrumented code
    passes its own [?diag] argument straight through, and [None] makes
    every call a near-free no-op. *)

type level = Info | Warning | Error

type event = { level : level; stage : string; message : string }

type span = { stage : string; seconds : float }
(** Wall-clock duration of one named stage execution. *)

type stat = {
  name : string;
  samples : int;
  total : float;
  min : float;
  max : float;
  last : float;
}
(** Running summary of an observed scalar (e.g. per-iteration sigma
    RMS): count, sum, extrema and most recent value. *)

type report = {
  spans : span list;
  counters : (string * int) list;
  stats : stat list;
  events : event list;
  notes : (string * string) list;
}
(** Immutable snapshot of a collector, in recording order. *)

type t
(** A mutable telemetry collector. *)

val create : unit -> t

val incr : t option -> string -> unit
(** Bump a named counter by one. *)

val add : t option -> string -> int -> unit
(** Bump a named counter by [n]. *)

val observe : t option -> string -> float -> unit
(** Fold a scalar observation into the named {!stat}. *)

val note : t option -> string -> string -> unit
(** Attach a key/value annotation; the latest value for a key wins. *)

val info : t option -> stage:string -> string -> unit
val warn : t option -> stage:string -> string -> unit
val error : t option -> stage:string -> string -> unit

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span d stage f] times [f ()] with {!Clock} and records the
    duration; the span is recorded even when [f] raises. *)

val report : t -> report

val mean : stat -> float

val warnings : report -> event list
(** Events of level [Warning] or [Error]. *)

val has_errors : report -> bool

val counter : report -> string -> int
(** Value of a counter, 0 when never bumped. *)

val find_note : report -> string -> string option

val level_to_string : level -> string
