(** Monotonic wall-clock timing.

    [Sys.time] reports {e process CPU} time, which sums the work of all
    running domains — under a domain pool it double-counts and hides any
    parallel speedup. Pipeline stage timings and benchmarks use this
    monotonic wall clock instead. *)

val now : unit -> float
(** Seconds from an arbitrary fixed origin; monotonic, unaffected by
    system clock adjustments. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)

val reads : unit -> int
(** Cumulative count of {!now} calls since program start (all domains).
    The telemetry layers' no-op contract — a [None] collector performs
    {e zero} clock reads — is asserted against this counter by the test
    suite. *)
