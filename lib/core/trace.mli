(** Hierarchical wall-clock tracing across domains.

    A {!t} is a trace collector owning one recording buffer ({!buf}) per
    participating domain. Spans are recorded {e lock-free} into the
    domain-local buffer (the collector's shared state is touched only
    when a new buffer is attached or ids are allocated, both
    constant-time) and merged at collection. Every span carries a parent
    link, a track id (the recording domain), and typed arguments, so the
    exported timeline shows both the call hierarchy inside a domain and
    the fan-out of work across domains.

    Like {!Diag}, every recording entry point takes an option:
    instrumented code passes its own [?trace] argument straight through
    and [None] makes every call a near-free no-op — the traced and
    untraced paths execute the same numerical code, so results are
    bit-for-bit identical either way.

    Exporters: {!chrome_json} writes the Chrome trace-event format
    (loadable in Perfetto / [chrome://tracing]); {!summary} renders a
    flamegraph-style self-time table. *)

type arg = Int of int | Float of float | Str of string | Bool of bool
(** Typed span argument values (shown in the trace viewer's detail
    pane). *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span, [-1] for a track root *)
  track : int;  (** recording domain (Chrome [tid]) *)
  name : string;
  t_start : float;  (** seconds since the collector's origin *)
  dur : float;  (** wall-clock duration, seconds *)
  args : (string * arg) list;
}

type t
(** A trace collector (shared, thread-safe for buffer attachment and
    collection). *)

type buf
(** A per-domain recording buffer. Not thread-safe: one [buf] must only
    be used by the domain that attached it. *)

val create : unit -> t
(** Fresh collector; its time origin is [Clock.now ()] at creation. The
    calling domain's main buffer is attached immediately ({!main}). *)

val main : t -> buf
(** The buffer attached by {!create} for the creating domain. *)

val owner : buf -> t
(** The collector a buffer records into. *)

val attach : t -> ?parent:int -> unit -> buf
(** Attach a recording buffer for the {e calling} domain (track id =
    [Domain.self ()]); spans recorded at its stack bottom get [parent]
    (default [-1]) as their parent link, so worker-side spans can hang
    off the span that submitted the work. Constant-time, takes the
    collector's registration lock once. *)

val current : buf option -> int
(** Id of the innermost open span ([-1] when none is open or the buffer
    is [None]); pass it as [?parent] to {!attach} to link cross-domain
    work to its submitter. *)

val span : buf option -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span b name f] times [f ()] with {!Clock} and records a span nested
    under the innermost open span of [b]. The span is recorded even when
    [f] raises. [None] runs [f] directly. *)

val add_args : buf option -> (string * arg) list -> unit
(** Append arguments to the innermost open span (no-op when none is
    open) — for values only known once the work has run, e.g. an
    iteration count. *)

val spans : t -> span list
(** Merge every attached buffer's completed spans, ordered by start
    time. Only call after the work recording into worker buffers has
    been joined. *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** summed span durations, seconds *)
  agg_self : float;
      (** summed self time: duration minus same-track children (clamped
          at 0); cross-track children run concurrently and are charged
          to their own track *)
}

val aggregate : t -> agg list
(** Per-name totals over {!spans}, sorted by self time (descending). *)

val summary : t -> string
(** Human-readable flamegraph-style self-time table. *)

val chrome_json : t -> string
(** The merged trace as a Chrome trace-event JSON document:
    [{"schema_version": 1, "displayTimeUnit": "ms", "traceEvents":
    [...]}] with one ["ph": "X"] (complete) event per span — [ts]/[dur]
    in microseconds, [tid] = track — plus ["ph": "M"] thread-name
    metadata per track. Span id and parent ride in each event's [args]
    (keys ["id"]/["parent"]) next to the user arguments. *)
