(* Hierarchical tracing with per-domain buffers.

   Recording is lock-free: a [buf] is owned by exactly one domain and
   appends to its own span list; the only shared state is the span-id
   counter (an [Atomic]) and the buffer registry (a mutex taken once per
   [attach]/collection, never per span). Merging happens at collection
   time, after the parallel work recording into worker buffers has been
   joined, so no fences beyond the pool's own join are needed. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t_start : float;
  dur : float;
  args : (string * arg) list;
}

type open_span = {
  os_id : int;
  os_parent : int;
  os_name : string;
  os_t0 : float;  (* absolute Clock.now at open *)
  mutable os_args : (string * arg) list;
}

type t = {
  origin : float;
  next_id : int Atomic.t;
  reg : Mutex.t;  (* guards [bufs] only *)
  mutable bufs : buf list;
  mutable main_buf : buf option;
}

and buf = {
  tr : t;
  track : int;
  base_parent : int;
  mutable stack : open_span list;
  mutable rev_spans : span list;
}

let attach tr ?(parent = -1) () =
  let b =
    {
      tr;
      track = (Domain.self () :> int);
      base_parent = parent;
      stack = [];
      rev_spans = [];
    }
  in
  Mutex.lock tr.reg;
  tr.bufs <- b :: tr.bufs;
  Mutex.unlock tr.reg;
  b

let create () =
  let tr =
    {
      origin = Clock.now ();
      next_id = Atomic.make 0;
      reg = Mutex.create ();
      bufs = [];
      main_buf = None;
    }
  in
  tr.main_buf <- Some (attach tr ());
  tr

let main tr =
  match tr.main_buf with Some b -> b | None -> assert false

let owner b = b.tr

let current = function
  | None -> -1
  | Some b -> ( match b.stack with [] -> b.base_parent | os :: _ -> os.os_id)

let push b ?(args = []) name =
  let parent =
    match b.stack with [] -> b.base_parent | os :: _ -> os.os_id
  in
  let os =
    {
      os_id = Atomic.fetch_and_add b.tr.next_id 1;
      os_parent = parent;
      os_name = name;
      os_t0 = Clock.now ();
      os_args = args;
    }
  in
  b.stack <- os :: b.stack

let pop b =
  match b.stack with
  | [] -> ()  (* unbalanced close: drop silently rather than corrupt *)
  | os :: rest ->
      let t1 = Clock.now () in
      b.stack <- rest;
      b.rev_spans <-
        {
          id = os.os_id;
          parent = os.os_parent;
          track = b.track;
          name = os.os_name;
          t_start = os.os_t0 -. b.tr.origin;
          dur = t1 -. os.os_t0;
          args = os.os_args;
        }
        :: b.rev_spans

let span b ?args name f =
  match b with
  | None -> f ()
  | Some b ->
      push b ?args name;
      let r = try f () with e -> pop b; raise e in
      pop b;
      r

let add_args b args =
  match b with
  | None -> ()
  | Some b -> (
      match b.stack with
      | [] -> ()
      | os :: _ -> os.os_args <- os.os_args @ args)

let spans tr =
  Mutex.lock tr.reg;
  let bufs = tr.bufs in
  Mutex.unlock tr.reg;
  let all = List.concat_map (fun b -> List.rev b.rev_spans) bufs in
  List.sort (fun a b -> Float.compare a.t_start b.t_start) all

(* --- aggregation ----------------------------------------------------- *)

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;
  agg_self : float;
}

(* self time is computed within a track: same-track children ran
   sequentially inside their parent, so dur − Σ children ≥ 0 (up to
   float rounding, clamped); cross-track children ran concurrently and
   account for their own time *)
let self_times all =
  let child_sum = Hashtbl.create 64 in
  let track_of = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace track_of s.id s.track) all;
  List.iter
    (fun s ->
      if s.parent >= 0 && Hashtbl.find_opt track_of s.parent = Some s.track
      then
        Hashtbl.replace child_sum s.parent
          (s.dur
          +. (match Hashtbl.find_opt child_sum s.parent with
             | Some x -> x
             | None -> 0.0)))
    all;
  List.map
    (fun s ->
      let children =
        match Hashtbl.find_opt child_sum s.id with Some x -> x | None -> 0.0
      in
      (s, Float.max 0.0 (s.dur -. children)))
    all

let aggregate tr =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ((s : span), self) ->
      match Hashtbl.find_opt tbl s.name with
      | Some (count, total, self_acc) ->
          Hashtbl.replace tbl s.name (count + 1, total +. s.dur, self_acc +. self)
      | None ->
          Hashtbl.add tbl s.name (1, s.dur, self);
          order := s.name :: !order)
    (self_times (spans tr));
  List.rev !order
  |> List.map (fun name ->
         let count, total, self = Hashtbl.find tbl name in
         { agg_name = name; agg_count = count; agg_total = total; agg_self = self })
  |> List.sort (fun a b -> Float.compare b.agg_self a.agg_self)

let summary tr =
  let aggs = aggregate tr in
  let all = spans tr in
  let tracks =
    List.sort_uniq compare (List.map (fun (s : span) -> s.track) all)
  in
  let grand_self =
    List.fold_left (fun acc a -> acc +. a.agg_self) 0.0 aggs
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "trace summary: %d spans on %d track(s), %.3fs total self time\n"
    (List.length all) (List.length tracks) grand_self;
  Printf.bprintf buf "  %-32s %7s %12s %12s %7s\n" "span" "count" "total [s]"
    "self [s]" "self%";
  List.iter
    (fun a ->
      Printf.bprintf buf "  %-32s %7d %12.6f %12.6f %6.1f%%\n" a.agg_name
        a.agg_count a.agg_total a.agg_self
        (if grand_self > 0.0 then 100.0 *. a.agg_self /. grand_self else 0.0))
    aggs;
  Buffer.contents buf

(* --- Chrome trace-event export --------------------------------------- *)

let arg_value = function
  | Int i -> string_of_int i
  | Float f -> Minijson.float f
  | Str s -> Printf.sprintf "\"%s\"" (Minijson.escape s)
  | Bool b -> if b then "true" else "false"

let chrome_json tr =
  let all = spans tr in
  let tracks =
    List.sort_uniq compare (List.map (fun (s : span) -> s.track) all)
  in
  let main_track = (main tr).track in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n  \"schema_version\": 1,\n  \"displayTimeUnit\": \"ms\",\n  \
     \"traceEvents\": [";
  let sep = ref "" in
  let item fmt =
    Buffer.add_string buf !sep;
    sep := ",";
    Printf.bprintf buf fmt
  in
  List.iter
    (fun track ->
      item
        "\n    {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
         \"thread_name\", \"args\": {\"name\": \"%s\"}}"
        track
        (if track = main_track then "main"
         else Printf.sprintf "domain-%d" track))
    tracks;
  List.iter
    (fun (s : span) ->
      item
        "\n    {\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": \"%s\", \
         \"ts\": %s, \"dur\": %s, \"args\": {\"id\": %d, \"parent\": %d"
        s.track (Minijson.escape s.name)
        (Minijson.float (s.t_start *. 1e6))
        (Minijson.float (s.dur *. 1e6))
        s.id s.parent;
      List.iter
        (fun (k, v) ->
          Printf.bprintf buf ", \"%s\": %s" (Minijson.escape k) (arg_value v))
        s.args;
      Buffer.add_string buf "}}")
    all;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
