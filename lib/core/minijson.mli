(** A tiny dependency-free JSON reader/writer, shared by the schema
    validators ([diag_check], [trace_check], [obs_check]), the bench
    comparison mode, the telemetry serializers and the obs bundle.
    Covers the subset of RFC 8259 that this repo's own serializers
    emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val escape : string -> string
(** Escape a string for inclusion between JSON double quotes: quote,
    backslash and control characters get their standard escapes. *)

val float : float -> string
(** Render a float as a JSON token: shortest round-trip decimal
    ([%.17g]) for finite values; non-finite values have no JSON number
    form and are rendered as the {e strings} ["nan"], ["inf"],
    ["-inf"]. *)

val parse : string -> t
(** Parse a complete JSON document. Raises {!Parse_error} (with an
    offset) on malformed input or trailing garbage. *)

val emit : t -> string
(** Serialize a value back to JSON text using {!escape}/{!float}, the
    inverse of {!parse}: [parse (emit v) = v] for every value whose
    numbers are finite and whose strings are plain bytes (the only
    values this repo's serializers produce). Non-finite numbers have no
    JSON form and are emitted as the strings ["nan"]/["inf"]/["-inf"],
    so they re-parse as [Str]. *)

val parse_file : string -> t
(** {!parse} the contents of a file. *)

val field : t -> string -> t option
(** Object member lookup; [None] on non-objects and missing keys. *)

val as_arr : t -> t list option
val as_obj : t -> (string * t) list option
val as_str : t -> string option
val as_num : t -> float option

val num_field : t -> string -> float option
val str_field : t -> string -> string option
val arr_field : t -> string -> t list option
val obj_field : t -> string -> (string * t) list option
(** [field] composed with the corresponding [as_*] accessor. *)
