(* Checkpoint artifact (de)serialization for the extraction pipeline.

   Every payload stored by [Pipeline.extract ~checkpoint_dir] goes
   through these encoders; floats are rendered by {!Minijson}'s [%.17g]
   token, which round-trips every finite double bit-exactly — the
   mechanical fact behind the bit-identical-resume invariant. Non-finite
   values come back from Minijson as the strings ["nan"]/["inf"]/
   ["-inf"] (JSON has no token for them), so the decoders accept both
   forms; they can legitimately appear in a quarantined-then-repaired
   dataset that was checkpointed before repair.

   Decoders raise [Invalid_argument] with an ["Artifact:"] prefix on any
   structural mismatch. The pipeline treats a failing decode like a
   torn file: warn, drop the artifact and recompute the stage.

   [canonical_netlist] and the primitive renderers at the bottom feed
   the run fingerprint: a stable, %.17g-exact textual form of the
   circuit and configuration whose MD5 identifies the checkpoint set.
   The rendering is deliberately independent of [Netlist.pp] (a
   pretty-printer, free to change) — fingerprints must only change when
   the extraction inputs change. *)

let invalid what = invalid_arg ("Artifact: malformed " ^ what)

(* --- primitives ------------------------------------------------------ *)

let json_of_float v =
  if Float.is_finite v then Minijson.Num v
  else if Float.is_nan v then Minijson.Str "nan"
  else if v > 0.0 then Minijson.Str "inf"
  else Minijson.Str "-inf"

let float_of_json = function
  | Minijson.Num v -> v
  | Minijson.Str "nan" -> Float.nan
  | Minijson.Str "inf" -> Float.infinity
  | Minijson.Str "-inf" -> Float.neg_infinity
  | _ -> invalid "number"

let json_of_floats a = Minijson.Arr (Array.to_list (Array.map json_of_float a))

let floats_of_json j =
  match j with
  | Minijson.Arr l -> Array.of_list (List.map float_of_json l)
  | _ -> invalid "float array"

let get j name = match Minijson.field j name with
  | Some v -> v
  | None -> invalid ("object: missing field " ^ name)

let num j name = float_of_json (get j name)
let int_f j name = int_of_float (num j name)
let farr j name = floats_of_json (get j name)

let str j name =
  match Minijson.str_field j name with
  | Some s -> s
  | None -> invalid ("object: missing string field " ^ name)

let bool_f j name =
  match get j name with Minijson.Bool b -> b | _ -> invalid "bool field"

let arr j name =
  match Minijson.arr_field j name with
  | Some l -> l
  | None -> invalid ("object: missing array field " ^ name)

(* --- linalg ---------------------------------------------------------- *)

let json_of_vec (v : Linalg.Vec.t) = json_of_floats v
let vec_of_json j : Linalg.Vec.t = floats_of_json j

let json_of_mat (m : Linalg.Mat.t) =
  let rows = Linalg.Mat.rows m and cols = Linalg.Mat.cols m in
  let data = Array.init (rows * cols) (fun k ->
      Linalg.Mat.get m (k / cols) (k mod cols)) in
  Minijson.Obj
    [
      ("rows", Minijson.Num (float_of_int rows));
      ("cols", Minijson.Num (float_of_int cols));
      ("data", json_of_floats data);
    ]

let mat_of_json j =
  let rows = int_f j "rows" and cols = int_f j "cols" in
  let data = farr j "data" in
  if Array.length data <> rows * cols then invalid "matrix";
  Linalg.Mat.init rows cols (fun r c -> data.((r * cols) + c))

let json_of_cmat (m : Linalg.Cmat.t) =
  let rows = Linalg.Cmat.rows m and cols = Linalg.Cmat.cols m in
  let re = Array.init (rows * cols) (fun k ->
      (Linalg.Cmat.get m (k / cols) (k mod cols)).Complex.re) in
  let im = Array.init (rows * cols) (fun k ->
      (Linalg.Cmat.get m (k / cols) (k mod cols)).Complex.im) in
  Minijson.Obj
    [
      ("rows", Minijson.Num (float_of_int rows));
      ("cols", Minijson.Num (float_of_int cols));
      ("re", json_of_floats re);
      ("im", json_of_floats im);
    ]

let cmat_of_json j =
  let rows = int_f j "rows" and cols = int_f j "cols" in
  let re = farr j "re" and im = farr j "im" in
  if Array.length re <> rows * cols || Array.length im <> rows * cols then
    invalid "complex matrix";
  Linalg.Cmat.init rows cols (fun r c ->
      let k = (r * cols) + c in
      { Complex.re = re.(k); im = im.(k) })

let json_of_complexes (a : Complex.t array) =
  Minijson.Obj
    [
      ("re", json_of_floats (Array.map (fun z -> z.Complex.re) a));
      ("im", json_of_floats (Array.map (fun z -> z.Complex.im) a));
    ]

let complexes_of_json j =
  let re = farr j "re" and im = farr j "im" in
  if Array.length re <> Array.length im then invalid "complex array";
  Array.map2 (fun re im -> { Complex.re; im }) re im

(* --- transient stage ------------------------------------------------- *)

let json_of_snapshot (s : Engine.Tran.snapshot) =
  Minijson.Obj
    [
      ("time", json_of_float s.Engine.Tran.time);
      ("state", json_of_vec s.Engine.Tran.state);
      ("inputs", json_of_vec s.Engine.Tran.inputs);
      ("outputs", json_of_vec s.Engine.Tran.outputs);
      ("g_mat", json_of_mat s.Engine.Tran.g_mat);
      ("c_mat", json_of_mat s.Engine.Tran.c_mat);
    ]

let snapshot_of_json j : Engine.Tran.snapshot =
  {
    Engine.Tran.time = num j "time";
    state = vec_of_json (get j "state");
    inputs = vec_of_json (get j "inputs");
    outputs = vec_of_json (get j "outputs");
    g_mat = mat_of_json (get j "g_mat");
    c_mat = mat_of_json (get j "c_mat");
  }

let json_of_tran (r : Engine.Tran.result) =
  Minijson.Obj
    [
      ("times", json_of_floats r.Engine.Tran.times);
      ( "states",
        Minijson.Arr
          (Array.to_list (Array.map json_of_vec r.Engine.Tran.states)) );
      ("outputs", json_of_mat r.Engine.Tran.outputs);
      ( "snapshots",
        Minijson.Arr
          (Array.to_list (Array.map json_of_snapshot r.Engine.Tran.snapshots))
      );
      ( "newton_iterations",
        Minijson.Num (float_of_int r.Engine.Tran.newton_iterations) );
      ("be_fallbacks", Minijson.Num (float_of_int r.Engine.Tran.be_fallbacks));
      ( "step_rejections",
        Minijson.Num (float_of_int r.Engine.Tran.step_rejections) );
    ]

let tran_of_json j : Engine.Tran.result =
  {
    Engine.Tran.times = farr j "times";
    states = Array.of_list (List.map vec_of_json (arr j "states"));
    outputs = mat_of_json (get j "outputs");
    snapshots = Array.of_list (List.map snapshot_of_json (arr j "snapshots"));
    newton_iterations = int_f j "newton_iterations";
    be_fallbacks = int_f j "be_fallbacks";
    step_rejections = int_f j "step_rejections";
  }

(* --- TFT dataset ----------------------------------------------------- *)

let json_of_sample (s : Tft.Dataset.sample) =
  Minijson.Obj
    [
      ("time", json_of_float s.Tft.Dataset.time);
      ("x", json_of_floats s.Tft.Dataset.x);
      ("u", json_of_floats s.Tft.Dataset.u);
      ("y", json_of_floats s.Tft.Dataset.y);
      ( "h",
        Minijson.Arr (Array.to_list (Array.map json_of_cmat s.Tft.Dataset.h))
      );
      ("h0", json_of_cmat s.Tft.Dataset.h0);
    ]

let sample_of_json j : Tft.Dataset.sample =
  {
    Tft.Dataset.time = num j "time";
    x = farr j "x";
    u = farr j "u";
    y = farr j "y";
    h = Array.of_list (List.map cmat_of_json (arr j "h"));
    h0 = cmat_of_json (get j "h0");
  }

let json_of_dataset (d : Tft.Dataset.t) =
  Minijson.Obj
    [
      ("freqs_hz", json_of_floats d.Tft.Dataset.freqs_hz);
      ( "samples",
        Minijson.Arr
          (Array.to_list (Array.map json_of_sample d.Tft.Dataset.samples)) );
      ("n_inputs", Minijson.Num (float_of_int d.Tft.Dataset.n_inputs));
      ("n_outputs", Minijson.Num (float_of_int d.Tft.Dataset.n_outputs));
    ]

let dataset_of_json j : Tft.Dataset.t =
  {
    Tft.Dataset.freqs_hz = farr j "freqs_hz";
    samples = Array.of_list (List.map sample_of_json (arr j "samples"));
    n_inputs = int_f j "n_inputs";
    n_outputs = int_f j "n_outputs";
  }

(* --- vector-fitting models ------------------------------------------- *)

let json_of_vf_model (m : Vf.Model.t) =
  Minijson.Obj
    [
      ("poles", json_of_complexes m.Vf.Model.poles);
      ( "coeffs",
        Minijson.Arr (Array.to_list (Array.map json_of_floats m.Vf.Model.coeffs))
      );
      ("consts", json_of_floats m.Vf.Model.consts);
      ("slopes", json_of_floats m.Vf.Model.slopes);
    ]

let vf_model_of_json j : Vf.Model.t =
  {
    Vf.Model.poles = complexes_of_json (get j "poles");
    coeffs = Array.of_list (List.map floats_of_json (arr j "coeffs"));
    consts = farr j "consts";
    slopes = farr j "slopes";
  }

let json_of_vf_info (i : Vf.Vfit.info) =
  Minijson.Obj
    [
      ("rms", json_of_float i.Vf.Vfit.rms);
      ("max_err", json_of_float i.Vf.Vfit.max_err);
      ("iterations_run", Minijson.Num (float_of_int i.Vf.Vfit.iterations_run));
      ("pole_count", Minijson.Num (float_of_int i.Vf.Vfit.pole_count));
    ]

let vf_info_of_json j : Vf.Vfit.info =
  {
    Vf.Vfit.rms = num j "rms";
    max_err = num j "max_err";
    iterations_run = int_f j "iterations_run";
    pole_count = int_f j "pole_count";
  }

(* --- fit artifact ---------------------------------------------------- *)

(* The settled outcome of one ladder fit: everything needed to rebuild
   the analytical model without re-running any VF stage, plus the rung
   label so a resumed report keeps the original escalation note. *)
type fit = {
  rung : string;
  freq_model : Vf.Model.t;
  freq_info : Vf.Vfit.info;
  residue_model : Vf.Model.t;
  residue_info : Vf.Vfit.info;
  static_model : Vf.Model.t;
  static_info : Vf.Vfit.info;
  x_range : float * float;
  x0 : float;
  y0 : float;
  has_const : bool;
  build_seconds : float;
}

let fit_of_rvf ~rung (r : Rvf.result) =
  {
    rung;
    freq_model = r.Rvf.freq_model;
    freq_info = r.Rvf.freq_info;
    residue_model = r.Rvf.residue_model;
    residue_info = r.Rvf.residue_info;
    static_model = r.Rvf.static_model;
    static_info = r.Rvf.static_info;
    x_range = r.Rvf.x_range;
    x0 = r.Rvf.x0;
    y0 = r.Rvf.y0;
    has_const = r.Rvf.has_const;
    build_seconds = r.Rvf.build_seconds;
  }

(* The inverse: reassemble the Hammerstein model from the serialized VF
   models. [Rvf.assemble_model] is pure and deterministic, so the
   resumed result's model is bit-identical (same equations text, same
   numerics) to the one the original run built. *)
let rvf_of_fit f : Rvf.result =
  {
    Rvf.model =
      Rvf.assemble_model ~freq_model:f.freq_model
        ~residue_model:f.residue_model ~static_model:f.static_model
        ~has_const:f.has_const ~x0:f.x0 ~y0:f.y0;
    freq_model = f.freq_model;
    freq_info = f.freq_info;
    residue_model = f.residue_model;
    residue_info = f.residue_info;
    static_model = f.static_model;
    static_info = f.static_info;
    x_range = f.x_range;
    x0 = f.x0;
    y0 = f.y0;
    has_const = f.has_const;
    build_seconds = f.build_seconds;
  }

let json_of_fit f =
  let lo, hi = f.x_range in
  Minijson.Obj
    [
      ("rung", Minijson.Str f.rung);
      ("freq_model", json_of_vf_model f.freq_model);
      ("freq_info", json_of_vf_info f.freq_info);
      ("residue_model", json_of_vf_model f.residue_model);
      ("residue_info", json_of_vf_info f.residue_info);
      ("static_model", json_of_vf_model f.static_model);
      ("static_info", json_of_vf_info f.static_info);
      ("x_lo", json_of_float lo);
      ("x_hi", json_of_float hi);
      ("x0", json_of_float f.x0);
      ("y0", json_of_float f.y0);
      ("has_const", Minijson.Bool f.has_const);
      ("build_seconds", json_of_float f.build_seconds);
    ]

let fit_of_json j =
  {
    rung = str j "rung";
    freq_model = vf_model_of_json (get j "freq_model");
    freq_info = vf_info_of_json (get j "freq_info");
    residue_model = vf_model_of_json (get j "residue_model");
    residue_info = vf_info_of_json (get j "residue_info");
    static_model = vf_model_of_json (get j "static_model");
    static_info = vf_info_of_json (get j "static_info");
    x_range = (num j "x_lo", num j "x_hi");
    x0 = num j "x0";
    y0 = num j "y0";
    has_const = bool_f j "has_const";
    build_seconds = num j "build_seconds";
  }

(* --- canonical fingerprint rendering --------------------------------- *)

let g v = Printf.sprintf "%.17g" v

let render_wave (w : Circuit.Netlist.wave) =
  match w with
  | Circuit.Netlist.Dc v -> "dc(" ^ g v ^ ")"
  | Sine { offset; ampl; freq; phase } ->
      Printf.sprintf "sine(%s,%s,%s,%s)" (g offset) (g ampl) (g freq) (g phase)
  | Pulse { low; high; delay; rise; width; period } ->
      Printf.sprintf "pulse(%s,%s,%s,%s,%s,%s)" (g low) (g high) (g delay)
        (g rise) (g width) (g period)
  | Pwl pts ->
      "pwl("
      ^ String.concat ";"
          (List.map (fun (t, v) -> g t ^ ":" ^ g v) pts)
      ^ ")"
  | Bits { low; high; rate; rise; bits } ->
      Printf.sprintf "bits(%s,%s,%s,%s,%s)" (g low) (g high) (g rate) (g rise)
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list bits)))
  | Ext _ ->
      (* closures have no canonical text: a distinguishing marker keeps
         the fingerprint honest (two Ext sources never collide with a
         printable wave), at the cost that runs driven by programmatic
         sources share one fingerprint — documented in DESIGN.md *)
      "ext(<fun>)"

let render_element (e : Circuit.Netlist.element) =
  match e with
  | Circuit.Netlist.Resistor { p; n; ohms } ->
      Printf.sprintf "R(%s,%s,%s)" p n (g ohms)
  | Capacitor { p; n; farads } -> Printf.sprintf "C(%s,%s,%s)" p n (g farads)
  | Inductor { p; n; henries } -> Printf.sprintf "L(%s,%s,%s)" p n (g henries)
  | Vsource { p; n; wave } ->
      Printf.sprintf "V(%s,%s,%s)" p n (render_wave wave)
  | Isource { p; n; wave } ->
      Printf.sprintf "I(%s,%s,%s)" p n (render_wave wave)
  | Vccs { p; n; cp; cn; gm } ->
      Printf.sprintf "G(%s,%s,%s,%s,%s)" p n cp cn (g gm)
  | Vcvs { p; n; cp; cn; gain } ->
      Printf.sprintf "E(%s,%s,%s,%s,%s)" p n cp cn (g gain)
  | Cccs { p; n; vname; gain } ->
      Printf.sprintf "F(%s,%s,%s,%s)" p n vname (g gain)
  | Diode { p; n; params = { i_sat; ideality; cj } } ->
      Printf.sprintf "D(%s,%s,%s,%s,%s)" p n (g i_sat) (g ideality) (g cj)
  | Junction_cap { p; n; params = { cj0; phi; m } } ->
      Printf.sprintf "Cj(%s,%s,%s,%s,%s)" p n (g cj0) (g phi) (g m)
  | Mosfet { d; g = gate; s; pol; params } ->
      Printf.sprintf "M(%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s)" d gate s
        (match pol with Circuit.Netlist.Nmos -> "nmos" | Pmos -> "pmos")
        (g params.Circuit.Netlist.kp)
        (g params.vth) (g params.lambda) (g params.w) (g params.l)
        (g params.cgs) (g params.cgd) (g params.cdb)
  | Bjt { c; b; e; pol; params } ->
      Printf.sprintf "Q(%s,%s,%s,%s,%s,%s,%s,%s,%s)" c b e
        (match pol with Circuit.Netlist.Npn -> "npn" | Pnp -> "pnp")
        (g params.Circuit.Netlist.is_bjt)
        (g params.bf) (g params.br) (g params.cje) (g params.cjc)

let canonical_netlist (nl : Circuit.Netlist.t) =
  String.concat "\n"
    (List.map
       (fun (c : Circuit.Netlist.component) ->
         c.Circuit.Netlist.name ^ "=" ^ render_element c.Circuit.Netlist.element)
       nl.Circuit.Netlist.components)

let render_output (o : Engine.Mna.output) =
  match o with
  | Engine.Mna.Node n -> "node(" ^ n ^ ")"
  | Engine.Mna.Diff (p, n) -> Printf.sprintf "diff(%s,%s)" p n

let render_float = g
let render_floats a = String.concat "," (Array.to_list (Array.map g a))

let render_vfit_opts (o : Vf.Vfit.opts) =
  Printf.sprintf "iters=%d,const=%b,slope=%b,stable=%b,min_imag=%s,relax=%b,w=%s,maxmag=%s,kernel=%s"
    o.Vf.Vfit.iterations o.Vf.Vfit.with_const o.Vf.Vfit.with_slope
    o.Vf.Vfit.enforce_stable (g o.Vf.Vfit.min_imag) o.Vf.Vfit.relax
    (match o.Vf.Vfit.weighting with
    | Vf.Vfit.Uniform -> "uniform"
    | Vf.Vfit.Inv_magnitude -> "inv_mag"
    | Vf.Vfit.Inv_sqrt -> "inv_sqrt")
    (g o.Vf.Vfit.max_magnitude)
    (match o.Vf.Vfit.relocation_kernel with
    | Vf.Vfit.Dense -> "dense"
    | Vf.Vfit.Fast -> "fast")

let render_rvf_config (c : Rvf.config) =
  String.concat ";"
    [
      "eps=" ^ g c.Rvf.eps;
      "freq_opts=" ^ render_vfit_opts c.Rvf.freq_opts;
      "state_opts=" ^ render_vfit_opts c.Rvf.state_opts;
      Printf.sprintf "freq=%d+%d..%d" c.Rvf.freq_start c.Rvf.freq_step
        c.Rvf.max_freq_poles;
      Printf.sprintf "state=%d+%d..%d" c.Rvf.state_start c.Rvf.state_step
        c.Rvf.max_state_poles;
      Printf.sprintf "dc_point=%b" c.Rvf.include_dc_point;
      "min_imag_fraction=" ^ g c.Rvf.min_imag_fraction;
    ]
