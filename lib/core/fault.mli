(** Deterministic, seeded fault injection for the extraction stack.

    Named probes planted in the numerical layers call {!should_fire};
    with no plan armed a probe is a single load-and-branch and the
    numerical path is bit-for-bit the uninstrumented one. Arming a
    plan (one site + a seed-derived schedule) makes the probe fire on
    a fixed range of its invocations, so the same seed reproduces the
    identical failure at the identical point in every run. Used by the
    chaos sweep ([bin/fault_check.ml], [test_guard]) and by
    [tft_extract --fault SITE[:seed]]. *)

type site = { name : string; where : string; what : string }

val sites : site list
(** The registry of every injection site, with the function hosting
    the probe and the failure it injects. *)

val site_names : string list

val known : string -> bool

val arm : site:string -> ?seed:int -> unit -> unit
(** Install the process-wide plan for [site]. The schedule derives
    from [seed] (default 0): the probe fires from its
    [1 + (seed land 7)]-th invocation for [1 + ((seed lsr 3) land 7)]
    consecutive invocations. Raises [Invalid_argument] on an unknown
    site. Replaces any previously armed plan. *)

val arm_exact : site:string -> ?seed:int -> fire_at:int -> burst:int -> unit -> unit
(** [arm] with the schedule given directly: fire on invocations
    [fire_at .. fire_at + burst - 1] (1-based). *)

val schedule_of_seed : int -> int * int
(** [(fire_at, burst)] that {!arm} derives from a seed. *)

type stats = { site : string; calls : int; fires : int }

val stats : unit -> stats option
(** Probe-invocation and firing counts of the armed plan, if any. *)

val disarm : unit -> stats option
(** Remove the plan, returning its final counts. *)

val armed : unit -> string option

val should_fire : string -> bool
(** The probe: [true] iff a plan for this site is armed and this
    invocation falls in its firing window. Counts invocations under a
    mutex only when the site matches the armed plan. *)

val parse : string -> string * int
(** Parse a ["SITE"] or ["SITE:seed"] CLI spec into [(site, seed)].
    Raises [Invalid_argument] on a malformed seed; the site name is
    not validated here (callers report unknown sites with context). *)
