(** Deterministic, seeded fault injection for the extraction stack.

    Named probes planted in the numerical layers call {!should_fire};
    with no plan armed a probe is a single load-and-branch and the
    numerical path is bit-for-bit the uninstrumented one. Arming a
    plan (one site + a seed-derived schedule) makes the probe fire on
    a fixed range of its invocations, so the same seed reproduces the
    identical failure at the identical point in every run. Used by the
    chaos sweep ([bin/fault_check.ml], [test_guard]), the hang/resume
    soak ([bin/chaos_check.ml]) and [tft_extract --fault SITE[:seed]]. *)

type kind =
  | Numeric  (** corrupts a value; recovery = guards / escalation ladder *)
  | Hang  (** parks a loop; recovery = deadline reaping via [Cancel] *)
  | Storage  (** tears a file; recovery = typed reject + recompute *)

type site = { name : string; where : string; what : string; kind : kind }

val sites : site list
(** The registry of every injection site, with the function hosting
    the probe and the failure it injects. *)

val site_names : string list

val known : string -> bool

val kind_of : string -> kind option

val arm : site:string -> ?seed:int -> unit -> unit
(** Install the process-wide plan for [site]. The schedule derives
    from [seed] (default 0): the probe fires from its
    [1 + (seed land 7)]-th invocation for [1 + ((seed lsr 3) land 7)]
    consecutive invocations. Raises [Invalid_argument] on an unknown
    site. Replaces all previously armed plans. *)

val arm_exact :
  site:string ->
  ?scope:string ->
  ?seed:int ->
  fire_at:int ->
  burst:int ->
  unit ->
  unit
(** [arm] with the schedule given directly: fire on invocations
    [fire_at .. fire_at + burst - 1] (1-based). An optional [scope]
    restricts the plan to probes executing under {!in_scope} with the
    same label; out-of-scope probes neither fire nor count. *)

val arm_also : site:string -> ?scope:string -> ?seed:int -> unit -> unit
(** Like {!arm}, but adds to (or replaces within) the armed plan list
    instead of clearing it, so several sites can be armed at once —
    e.g. a numeric fault walking the escalation ladder while a
    hang-class fault parks one specific rung. *)

val arm_also_exact :
  site:string ->
  ?scope:string ->
  ?seed:int ->
  fire_at:int ->
  burst:int ->
  unit ->
  unit

val schedule_of_seed : int -> int * int
(** [(fire_at, burst)] that {!arm} derives from a seed. *)

type stats = { site : string; calls : int; fires : int }

val stats : unit -> stats option
(** Probe-invocation and firing counts of the most recently armed
    plan, if any. *)

val stats_for : string -> stats option
(** Counts for the plan armed on [site], if any. *)

val disarm : unit -> stats option
(** Remove all plans, returning the most recently armed one's final
    counts. *)

val armed : unit -> string option
(** The most recently armed site, if any plan is live. *)

val in_scope : string -> (unit -> 'a) -> 'a
(** [in_scope label f] runs [f] with the dynamic fault scope set to
    [label] (restored on return or raise). Plans armed with [~scope]
    only observe probes executed under a matching scope. *)

val should_fire : string -> bool
(** The probe: [true] iff a plan for this site is armed, in scope, and
    this invocation falls in its firing window. Counts invocations
    under a mutex only when the site matches an armed, in-scope plan. *)

val parse : string -> string * int
(** Parse a ["SITE"] or ["SITE:seed"] CLI spec into [(site, seed)].
    Raises [Invalid_argument] on a malformed seed; the site name is
    not validated here (callers report unknown sites with context). *)
