(** Relaxed Vector Fitting with common poles across many elements.

    This is the regression engine used twice by the paper's flow: once on
    the frequency axis (elements = trajectory samples [k], points
    [z = jω_l]) and once on the state-space axis (elements = residue
    trajectories, points [z = x_k] real) — "both frequency and
    state-dependent data is fitted using the same regression engine".

    Implementation notes: the pole-identification step uses the relaxed
    nontriviality constraint of Gustavsen (2006) and the fast per-element
    QR condensation of Deschrijver et al. (2008), ref. [9] of the paper.
    Pole relocation computes the zeros of the weighting function σ as
    eigenvalues of [A − b·c̃ᵀ/d̃]. *)

type weighting = Uniform | Inv_magnitude | Inv_sqrt

type relocation_kernel =
  | Dense
      (** legacy reference kernel: per-element systems freshly allocated
          and factored with the copying QR entry points *)
  | Fast
      (** default: in-place workspace QR of [phi0 | −D·phi1] per element
          keeping only the [R22]/[Q2ᵀV] blocks, with the shared [phi0]
          factorization hoisted out of the element loop under uniform
          weighting. Bit-identical results to [Dense], several times
          faster, and the per-element blocks fan out across a pool. *)

type opts = {
  iterations : int;  (** pole-relocation sweeps (default 10) *)
  with_const : bool;  (** include a constant term d per element *)
  with_slope : bool;  (** include a linear term h·z per element *)
  enforce_stable : bool;  (** reflect poles into the left half plane *)
  min_imag : float;  (** > 0 forbids real poles (state-space mode) *)
  relax : bool;  (** relaxed σ normalization *)
  weighting : weighting;
  max_magnitude : float;
      (** clamp relocated poles to this modulus (0 disables); keeps
          runaway spurious poles from leaving the sampled band *)
  relocation_kernel : relocation_kernel;
      (** which sigma-step implementation relocation uses (default
          [Fast]; [Dense] kept for differential testing) *)
}

val default_frequency_opts : opts
(** Stable poles enforced, inverse-square-root weighting, and a constant
    term per element: the dynamic TFT part [H(s) − H(0)] tends to
    [−H(0) ≠ 0] as [s → ∞], so a state-dependent direct feedthrough
    [d(x)] is required (its integral is folded into the model's static
    path). *)

val default_state_opts : opts
(** Real poles forbidden (min_imag set per-fit from the data range),
    constant term enabled, uniform weighting. *)

type info = {
  rms : float;  (** unweighted absolute RMS deviation *)
  max_err : float;
  iterations_run : int;
  pole_count : int;
}

val fit :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  ?label:string ->
  poles:Complex.t array ->
  points:Complex.t array ->
  data:Complex.t array array ->
  unit ->
  Model.t * info
(** [fit ~poles ~points ~data ()] fits [data.(e).(l) ≈ model_e(points.(l))]
    with common poles, starting the relocation from [poles].
    Requires [2·length points ≥ unknowns].

    With [diag], each relocation sweep records (prefixed by [label],
    default ["vfit"]): the per-iteration sigma RMS
    ([<label>.sigma_rms], the non-constant part of σ — goes to zero as
    the poles converge), the column-scale spread conditioning proxy
    ([<label>.column_scale_spread]) and the number of relocated poles
    reflected into the left half plane
    ([<label>.unstable_pole_flips]).

    With [trace], the fit records a [vf.fit] span containing one
    [vf.relocate] span per relocation sweep; with [metrics], the
    per-iteration sigma RMS and the final fit RMS land in the
    [<label>.sigma_rms]/[<label>.fit_rms] histograms.

    With [obs], every relocation sweep emits a [vf_iteration] event
    carrying the full relocated pole set plus the sweep telemetry
    (sigma RMS, d̃, scale spread, stability flips), and — with the fast
    relocation kernel — a ["vf.sigma_qr"] rcond sample from the
    condensed-system QR.

    With [guard], the relocated poles are checked after the sweeps:
    non-finite poles or a pole whose modulus exceeds
    [guard.max_pole_growth] times the largest fit point raise
    [Guard.Violation]; a right-half-plane pole under [enforce_stable]
    is repaired by reflection ([<label>.guard_stabilized] counter plus
    a warning), and the identified model is NaN/Inf-checked. Hosts the
    ["vf.pole_flip"] fault probe (one invocation per relocation
    sweep) and the hang-class ["vf.spin"] site. With [cancel], every
    relocation sweep probes the token (site ["vf.relocate"]).

    With [pool], the independent per-element blocks of each sigma step
    and the per-element residue fits fan out across the warm pool;
    elements write disjoint rows of the condensed system, so results
    stay bit-identical to the sequential path. *)

val fit_auto :
  ?opts:opts ->
  ?guard:Guard.t ->
  ?cancel:Cancel.t ->
  ?diag:Diag.t ->
  ?trace:Trace.buf ->
  ?metrics:Metrics.t ->
  ?obs:Obs.t ->
  ?pool:Exec.t ->
  ?label:string ->
  make_poles:(int -> Complex.t array) ->
  ?start:int ->
  ?step:int ->
  ?max_poles:int ->
  tol:float ->
  points:Complex.t array ->
  data:Complex.t array array ->
  unit ->
  Model.t * info
(** Escalate the pole count ([start], [start+step], …) until the RMS
    error drops below [tol] (Algorithm 1's "while error > ε: P ← P+2").
    Returns the first model meeting the tolerance, or the best one found
    if [max_poles] is exhausted.

    Raises [Invalid_argument] when no pole count yields a model at all;
    the message (and, with [diag], an [Error] event) carries the last
    per-attempt failure reason instead of a bare "no successful fit".
    With [diag], also records the attempt count and which pole count
    the escalation settled on ([<label>.settled_poles] note). With
    [guard], a per-attempt [Guard.Violation] is recorded
    ([<label>.guard_violations]) and the escalation continues to the
    next pole count instead of giving up. With [obs], each completed
    attempt emits a [vf_attempt] event (pole count, rms, tol,
    accepted), guarded failures a [violation] event, and the final
    choice a [vf_settled] event. With [cancel], the token is probed
    before every attempt (site ["vf.fit_auto"]) and inside each fit;
    [Cancel.Cancelled]/[Cancel.Deadline_exceeded] abort the escalation
    rather than being swallowed as attempt failures. *)
