type weighting = Uniform | Inv_magnitude | Inv_sqrt
type relocation_kernel = Dense | Fast

type opts = {
  iterations : int;
  with_const : bool;
  with_slope : bool;
  enforce_stable : bool;
  min_imag : float;
  relax : bool;
  weighting : weighting;
  max_magnitude : float;
  relocation_kernel : relocation_kernel;
}

let default_frequency_opts =
  {
    iterations = 10;
    with_const = true;
    with_slope = false;
    enforce_stable = true;
    min_imag = 0.0;
    relax = true;
    weighting = Inv_sqrt;
    max_magnitude = 0.0;
    relocation_kernel = Fast;
  }

let default_state_opts =
  {
    iterations = 10;
    with_const = true;
    with_slope = false;
    enforce_stable = false;
    min_imag = 1e-6;
    relax = true;
    weighting = Uniform;
    max_magnitude = 0.0;
    relocation_kernel = Fast;
  }

type info = {
  rms : float;
  max_err : float;
  iterations_run : int;
  pole_count : int;
}

let src = Logs.Src.create "vf" ~doc:"vector fitting"

module Log = (val Logs.src_log src : Logs.LOG)

let weights_of opts data =
  Array.map
    (fun row ->
      match opts.weighting with
      | Uniform -> Array.map (fun _ -> 1.0) row
      | Inv_magnitude | Inv_sqrt ->
          let base =
            Array.fold_left (fun m z -> Float.max m (Complex.norm z)) 0.0 row
          in
          let floor_mag = Float.max (1e-4 *. base) 1e-300 in
          Array.map
            (fun z ->
              let m = Float.max (Complex.norm z) floor_mag in
              match opts.weighting with
              | Inv_magnitude -> 1.0 /. m
              | Inv_sqrt -> 1.0 /. sqrt m
              | Uniform -> 1.0)
            row)
    data

(* Column scales make the basis columns O(1); the same scales are applied
   to the residue columns and the sigma columns so that solutions can be
   unscaled independently per column. *)
let column_scales phi_table points n_points p =
  let scales = Array.make p 1.0 in
  for col = 0 to p - 1 do
    let m = ref 0.0 in
    for l = 0 to n_points - 1 do
      m := Float.max !m (Complex.norm phi_table.(l).(col))
    done;
    if !m > 0.0 then scales.(col) <- 1.0 /. !m
  done;
  let zmax =
    Array.fold_left (fun m z -> Float.max m (Complex.norm z)) 0.0 points
  in
  (scales, if zmax > 0.0 then 1.0 /. zmax else 1.0)

(* per-relocation telemetry: how far sigma is from its constant part
   (→ 0 as the poles converge), the relaxation constant, the spread of
   the column scales (a conditioning proxy for the stacked LS system)
   and how many relocated poles had to be reflected into the left half
   plane *)
type reloc_diag = {
  sigma_rms : float;
  d_tilde : float;
  scale_spread : float;
  flips : int;
}

(* Nontriviality row weight: the mean weighted |F| over all samples. *)
let relax_row_weight ~weights ~data =
  let acc = ref 0.0 and cnt = ref 0 in
  Array.iteri
    (fun e row ->
      Array.iteri
        (fun l z ->
          acc := !acc +. (weights.(e).(l) *. Complex.norm z);
          incr cnt)
        row)
    data;
  Float.max (!acc /. float_of_int (Stdlib.max 1 !cnt)) 1e-12

(* Append the relaxed nontriviality row Σ_l Re σ(z_l) = n_points to the
   condensed system at [row]. *)
let add_relax_row ~phi ~scales ~weights ~data ~p ~n_points big big_rhs row =
  let w_relax = relax_row_weight ~weights ~data in
  for c = 0 to p - 1 do
    let s = ref 0.0 in
    for l = 0 to n_points - 1 do
      s := !s +. phi.(l).(c).Complex.re
    done;
    Linalg.Mat.set big row c (w_relax *. !s *. scales.(c))
  done;
  Linalg.Mat.set big row p (w_relax *. float_of_int n_points);
  big_rhs.(row) <- w_relax *. float_of_int n_points

(* Unscale the condensed-system solution and derive the per-iteration
   telemetry; shared verbatim by the dense and fast kernels. *)
let sigma_post ~relax ~phi ~scales ~n_points ~p sol =
  let c_tilde = Array.init p (fun c -> sol.(c) *. scales.(c)) in
  let d_tilde = if relax then sol.(p) else 1.0 in
  (* RMS of sigma's non-constant part over the fit points *)
  let sigma_rms =
    let acc = ref 0.0 in
    for l = 0 to n_points - 1 do
      let z = ref Complex.zero in
      for c = 0 to p - 1 do
        z := Complex.add !z (Linalg.Cx.scale c_tilde.(c) phi.(l).(c))
      done;
      acc := !acc +. Complex.norm2 !z
    done;
    sqrt (!acc /. float_of_int (Stdlib.max 1 n_points))
  in
  let scale_spread =
    let lo = ref Float.infinity and hi = ref 0.0 in
    Array.iter
      (fun s ->
        if s > 0.0 then begin
          lo := Float.min !lo s;
          hi := Float.max !hi s
        end)
      scales;
    if !hi > 0.0 && Float.is_finite !lo then !hi /. !lo else 1.0
  in
  (c_tilde, d_tilde, sigma_rms, scale_spread)

(* Solve for the sigma coefficients (c-tilde, d-tilde) given current
   poles. Returns None if the least squares degenerates. Legacy kernel:
   one dense per-element system, freshly allocated and factored with the
   copying QR entry points — kept behind [opts.relocation_kernel = Dense]
   as the differential-testing reference. *)
let sigma_step_dense ~opts ~poles ~points ~data ~weights ~relax =
  let p = Array.length poles in
  let n_points = Array.length points in
  let n_elems = Array.length data in
  let phi = Basis.table poles points in
  let scales, zscale = column_scales phi points n_points p in
  let n1 = p + (if opts.with_const then 1 else 0) + (if opts.with_slope then 1 else 0) in
  let n2 = if relax then p + 1 else p in
  if 2 * n_points < n1 + n2 then
    invalid_arg
      (Printf.sprintf "Vfit: %d points cannot determine %d unknowns" n_points
         (n1 + n2));
  let stacked_rows = (n_elems * n2) + if relax then 1 else 0 in
  let big = Linalg.Mat.create stacked_rows n2 in
  let big_rhs = Linalg.Vec.create stacked_rows in
  let row_cursor = ref 0 in
  for e = 0 to n_elems - 1 do
    let a = Linalg.Mat.create (2 * n_points) (n1 + n2) in
    let rhs = Linalg.Vec.create (2 * n_points) in
    for l = 0 to n_points - 1 do
      let w = weights.(e).(l) in
      let f = data.(e).(l) in
      let re_row = 2 * l and im_row = (2 * l) + 1 in
      (* per-element columns: residues, const, slope *)
      for c = 0 to p - 1 do
        let v = phi.(l).(c) in
        Linalg.Mat.set a re_row c (w *. v.Complex.re *. scales.(c));
        Linalg.Mat.set a im_row c (w *. v.Complex.im *. scales.(c))
      done;
      let cursor = ref p in
      if opts.with_const then begin
        Linalg.Mat.set a re_row !cursor w;
        incr cursor
      end;
      if opts.with_slope then begin
        Linalg.Mat.set a re_row !cursor (w *. points.(l).Complex.re *. zscale);
        Linalg.Mat.set a im_row !cursor (w *. points.(l).Complex.im *. zscale);
        incr cursor
      end;
      (* sigma columns: −w·F·φ (and −w·F for d-tilde in relaxed mode) *)
      for c = 0 to p - 1 do
        let v = Complex.mul f phi.(l).(c) in
        Linalg.Mat.set a re_row (n1 + c) (-.w *. v.Complex.re *. scales.(c));
        Linalg.Mat.set a im_row (n1 + c) (-.w *. v.Complex.im *. scales.(c))
      done;
      if relax then begin
        Linalg.Mat.set a re_row (n1 + p) (-.w *. f.Complex.re);
        Linalg.Mat.set a im_row (n1 + p) (-.w *. f.Complex.im)
      end
      else begin
        (* non-relaxed: sigma = 1 + Σ c̃φ, the "1" moves to the RHS *)
        rhs.(re_row) <- w *. f.Complex.re;
        rhs.(im_row) <- w *. f.Complex.im
      end
    done;
    (* condense: only the trailing n2×n2 block of R couples the shared
       unknowns (fast VF of ref. [9]) *)
    match Linalg.Qr.factor a with
    | exception Linalg.Qr.Rank_deficient _ -> ()
    | qr ->
        let r = Linalg.Qr.r qr in
        let qtb =
          if relax then Linalg.Vec.create (2 * n_points)
          else Linalg.Qr.apply_qt qr rhs
        in
        for k = 0 to n2 - 1 do
          for c = 0 to n2 - 1 do
            Linalg.Mat.set big (!row_cursor + k) c
              (Linalg.Mat.get r (n1 + k) (n1 + c))
          done;
          big_rhs.(!row_cursor + k) <- (if relax then 0.0 else qtb.(n1 + k))
        done;
        row_cursor := !row_cursor + n2
  done;
  if relax then begin
    add_relax_row ~phi ~scales ~weights ~data ~p ~n_points big big_rhs
      !row_cursor;
    incr row_cursor
  end;
  let rows_used = !row_cursor in
  if rows_used < n2 then None
  else begin
    let m = Linalg.Mat.init rows_used n2 (fun r c -> Linalg.Mat.get big r c) in
    let rhs = Array.sub big_rhs 0 rows_used in
    match Linalg.Qr.least_squares m rhs with
    | exception Linalg.Qr.Rank_deficient _ -> None
    | sol -> Some (sigma_post ~relax ~phi ~scales ~n_points ~p sol)
  end

(* --- fast relocation kernel ------------------------------------------ *)

(* Per-element scratch: the element QR workspace, the uniform-path tail
   workspace and a right-hand-side buffer. One per chunk when fanned
   out across a pool, one persistent instance on the sequential path. *)
type elem_ws = {
  qa : Linalg.Qr.ws;
  qtail : Linalg.Qr.ws;
  mutable rhs_buf : float array;
}

let make_elem_ws () =
  {
    qa = Linalg.Qr.workspace ();
    qtail = Linalg.Qr.workspace ();
    rhs_buf = [||];
  }

(* Relocation workspace: created once per [fit] call, reused by every
   sigma step of every iteration, so steady-state relocation performs no
   large allocations. *)
type reloc_ws = {
  shared : Linalg.Qr.ws;  (** shared-φ0 factorization (uniform weighting) *)
  qbig : Linalg.Qr.ws;  (** condensed system and its in-place solve *)
  seq_elem : elem_ws;
  mutable big_rhs : float array;
}

let make_reloc_ws () =
  {
    shared = Linalg.Qr.workspace ();
    qbig = Linalg.Qr.workspace ();
    seq_elem = make_elem_ws ();
    big_rhs = [||];
  }

(* pool-parked per-chunk element workspaces for the relocation fan-out *)
let elem_ws_key : elem_ws Exec.key = Exec.new_key ()

(* Fast-VF sigma step (Deschrijver et al. 2008; SNIPPETS.md snippet 3):
   per element QR-factor [phi0 | −D·phi1] and keep only the trailing
   [R22] block (and [Q2ᵀV] rhs block in non-relaxed mode), accumulated
   at a fixed row offset of the small condensed system. Identical
   per-entry arithmetic to [sigma_step_dense] — [Qr.factor_into] is
   bit-compatible with [Qr.factor] — so the two kernels agree bitwise;
   the speed comes from in-place workspace factorization and, under
   uniform weighting, from factoring the shared [phi0] block once and
   pushing its reflectors onto each element's sigma block
   ([Qr.apply_qt_mat]) instead of refactoring it per element. Elements
   are independent and write disjoint rows, so they optionally fan out
   across [pool] with bit-identical results. *)
let sigma_step_fast ?pool ~rws ~opts ~poles ~points ~data ~weights ~relax () =
  let p = Array.length poles in
  let n_points = Array.length points in
  let n_elems = Array.length data in
  let phi = Basis.table poles points in
  let scales, zscale = column_scales phi points n_points p in
  let n1 = p + (if opts.with_const then 1 else 0) + (if opts.with_slope then 1 else 0) in
  let n2 = if relax then p + 1 else p in
  if 2 * n_points < n1 + n2 then
    invalid_arg
      (Printf.sprintf "Vfit: %d points cannot determine %d unknowns" n_points
         (n1 + n2));
  let m_rows = 2 * n_points in
  let stacked_rows = (n_elems * n2) + if relax then 1 else 0 in
  let big = Linalg.Qr.ws_matrix rws.qbig ~rows:stacked_rows ~cols:n2 in
  if Array.length rws.big_rhs <> stacked_rows then
    rws.big_rhs <- Array.make stacked_rows 0.0
  else Array.fill rws.big_rhs 0 stacked_rows 0.0;
  let big_rhs = rws.big_rhs in
  (* the residue/const/slope block [phi0] is element-independent exactly
     when the row weights are: under uniform weighting factor it once
     and reuse its reflectors for every element *)
  let share_phi0 = opts.weighting = Uniform && n1 > 0 && n_elems > 1 in
  (* the fill helpers write through the flat row-major storage: same
     values as the [Mat.set] formulation, minus per-entry bounds checks
     and (for the sigma block) the boxed [Complex.mul] intermediate *)
  let fill_phi0 a ~w_of =
    let d = Linalg.Mat.unsafe_data a in
    let nc = Linalg.Mat.cols a in
    for l = 0 to n_points - 1 do
      let w = w_of l in
      let re_base = 2 * l * nc in
      let im_base = re_base + nc in
      let row = phi.(l) in
      for c = 0 to p - 1 do
        let v = Array.unsafe_get row c in
        let sc = Array.unsafe_get scales c in
        Array.unsafe_set d (re_base + c) (w *. v.Complex.re *. sc);
        Array.unsafe_set d (im_base + c) (w *. v.Complex.im *. sc)
      done;
      let cursor = ref p in
      if opts.with_const then begin
        Array.unsafe_set d (re_base + !cursor) w;
        incr cursor
      end;
      if opts.with_slope then begin
        Array.unsafe_set d (re_base + !cursor)
          (w *. points.(l).Complex.re *. zscale);
        Array.unsafe_set d (im_base + !cursor)
          (w *. points.(l).Complex.im *. zscale);
        incr cursor
      end
    done
  in
  let fill_sigma a ~col0 ~e =
    let d = Linalg.Mat.unsafe_data a in
    let nc = Linalg.Mat.cols a in
    let we = weights.(e) and de = data.(e) in
    for l = 0 to n_points - 1 do
      let w = Array.unsafe_get we l in
      let f = Array.unsafe_get de l in
      let fr = f.Complex.re and fi = f.Complex.im in
      let re_base = (2 * l * nc) + col0 in
      let im_base = re_base + nc in
      let row = phi.(l) in
      for c = 0 to p - 1 do
        let v = Array.unsafe_get row c in
        (* inlined [Complex.mul f v] — identical expressions, no box *)
        let vr = (fr *. v.Complex.re) -. (fi *. v.Complex.im) in
        let vi = (fr *. v.Complex.im) +. (fi *. v.Complex.re) in
        let sc = Array.unsafe_get scales c in
        Array.unsafe_set d (re_base + c) (-.w *. vr *. sc);
        Array.unsafe_set d (im_base + c) (-.w *. vi *. sc)
      done;
      if relax then begin
        Array.unsafe_set d (re_base + p) (-.w *. fr);
        Array.unsafe_set d (im_base + p) (-.w *. fi)
      end
    done
  in
  let fill_rhs ews ~e =
    if Array.length ews.rhs_buf <> m_rows then
      ews.rhs_buf <- Array.make m_rows 0.0;
    for l = 0 to n_points - 1 do
      let w = weights.(e).(l) in
      let f = data.(e).(l) in
      ews.rhs_buf.((2 * l)) <- w *. f.Complex.re;
      ews.rhs_buf.((2 * l) + 1) <- w *. f.Complex.im
    done
  in
  let t1 =
    if not share_phi0 then None
    else begin
      let a1 = Linalg.Qr.ws_matrix rws.shared ~rows:m_rows ~cols:n1 in
      fill_phi0 a1 ~w_of:(fun l -> weights.(0).(l));
      Some (Linalg.Qr.factor_into rws.shared a1)
    end
  in
  let process ews e =
    match t1 with
    | Some t1 ->
        (* two-stage factorization: reflectors of the shared [phi0]
           pushed onto this element's sigma block, then QR of the tail
           rows — bit-identical to factoring [phi0 | sigma] whole *)
        let a2 = Linalg.Qr.ws_matrix ews.qa ~rows:m_rows ~cols:n2 in
        fill_sigma a2 ~col0:0 ~e;
        Linalg.Qr.apply_qt_mat t1 a2;
        let tail_rows = m_rows - n1 in
        let tail = Linalg.Qr.ws_matrix ews.qtail ~rows:tail_rows ~cols:n2 in
        Array.blit
          (Linalg.Mat.unsafe_data a2)
          (n1 * n2)
          (Linalg.Mat.unsafe_data tail)
          0
          (tail_rows * n2);
        let t2 = Linalg.Qr.factor_into ews.qtail tail in
        Linalg.Qr.r22_block t2 ~split:0 big (e * n2);
        if not relax then begin
          fill_rhs ews ~e;
          Linalg.Qr.apply_qt_into t1 ews.rhs_buf;
          Linalg.Qr.apply_qt_into t2 ~off:n1 ews.rhs_buf;
          for k = 0 to n2 - 1 do
            big_rhs.((e * n2) + k) <- ews.rhs_buf.(n1 + k)
          done
        end
    | None ->
        let a = Linalg.Qr.ws_matrix ews.qa ~rows:m_rows ~cols:(n1 + n2) in
        fill_phi0 a ~w_of:(fun l -> weights.(e).(l));
        fill_sigma a ~col0:n1 ~e;
        let t = Linalg.Qr.factor_into ews.qa a in
        Linalg.Qr.r22_block t ~split:n1 big (e * n2);
        if not relax then begin
          fill_rhs ews ~e;
          Linalg.Qr.apply_qt_block t ~split:n1 ews.rhs_buf big_rhs (e * n2)
        end
  in
  (match pool with
  | Some pool when n_elems > 1 ->
      ignore
        (Exec.parallel_init_ws ~pool ~label:"vf.sigma"
           ~ws:(fun chunk ->
             Exec.slot pool elem_ws_key ~chunk
               ~valid:(fun _ -> true)
               ~make:make_elem_ws)
           n_elems
           (fun ews e -> process ews e))
  | _ ->
      for e = 0 to n_elems - 1 do
        process rws.seq_elem e
      done);
  if relax then
    add_relax_row ~phi ~scales ~weights ~data ~p ~n_points big big_rhs
      (n_elems * n2);
  match Linalg.Qr.least_squares_into rws.qbig big big_rhs with
  | exception Linalg.Qr.Rank_deficient _ -> None
  | sol -> Some (sigma_post ~relax ~phi ~scales ~n_points ~p sol)

let sigma_step ?pool ~rws ~opts ~poles ~points ~data ~weights ~relax () =
  match opts.relocation_kernel with
  | Dense -> sigma_step_dense ~opts ~poles ~points ~data ~weights ~relax
  | Fast -> sigma_step_fast ?pool ~rws ~opts ~poles ~points ~data ~weights ~relax ()

let relocate_poles ?pool ~rws ~opts ~poles ~points ~data ~weights () =
  let attempt relax =
    match sigma_step ?pool ~rws ~opts ~poles ~points ~data ~weights ~relax () with
    | None -> None
    | Some (c_tilde, d_tilde, sigma_rms, scale_spread) ->
        if relax && Float.abs d_tilde < 1e-8 then None
        else begin
          let a, b = Basis.state_matrices poles in
          let p = Array.length poles in
          let m =
            Linalg.Mat.init p p (fun r c ->
                Linalg.Mat.get a r c -. (b.(r) *. c_tilde.(c) /. d_tilde))
          in
          match Linalg.Eig.eigenvalues m with
          | exception Linalg.Eig.No_convergence -> None
          | eigs ->
              let eigs =
                if opts.max_magnitude <= 0.0 then eigs
                else
                  Array.map
                    (fun a ->
                      let m = Complex.norm a in
                      if m > opts.max_magnitude then
                        Linalg.Cx.scale (opts.max_magnitude /. m) a
                      else a)
                    eigs
              in
              let flips =
                if not opts.enforce_stable then 0
                else
                  Array.fold_left
                    (fun acc a -> if a.Complex.re >= 0.0 then acc + 1 else acc)
                    0 eigs
              in
              Some
                ( Pole.normalize ~enforce_stable:opts.enforce_stable
                    ~min_imag:opts.min_imag eigs,
                  { sigma_rms; d_tilde; scale_spread; flips } )
        end
  in
  match attempt opts.relax with
  | Some result -> Some result
  | None -> if opts.relax then attempt false else None

(* Residue identification with fixed poles: independent small LS per
   element, optionally fanned out across the pool (disjoint writes per
   element, so results are bit-identical to the sequential loop). *)
let identify ?pool ~opts ~poles ~points ~data ~weights () =
  let p = Array.length poles in
  let n_points = Array.length points in
  let phi = Basis.table poles points in
  let scales, zscale = column_scales phi points n_points p in
  let n1 = p + (if opts.with_const then 1 else 0) + (if opts.with_slope then 1 else 0) in
  let coeffs = Array.map (fun _ -> Array.make p 0.0) data in
  let consts = Array.map (fun _ -> 0.0) data in
  let slopes = Array.map (fun _ -> 0.0) data in
  let fit_element e row =
      let a = Linalg.Mat.create (2 * n_points) n1 in
      let rhs = Linalg.Vec.create (2 * n_points) in
      for l = 0 to n_points - 1 do
        let w = weights.(e).(l) in
        let re_row = 2 * l and im_row = (2 * l) + 1 in
        for c = 0 to p - 1 do
          let v = phi.(l).(c) in
          Linalg.Mat.set a re_row c (w *. v.Complex.re *. scales.(c));
          Linalg.Mat.set a im_row c (w *. v.Complex.im *. scales.(c))
        done;
        let cursor = ref p in
        if opts.with_const then begin
          Linalg.Mat.set a re_row !cursor w;
          incr cursor
        end;
        if opts.with_slope then begin
          Linalg.Mat.set a re_row !cursor (w *. points.(l).Complex.re *. zscale);
          Linalg.Mat.set a im_row !cursor (w *. points.(l).Complex.im *. zscale);
          incr cursor
        end;
        rhs.(re_row) <- w *. row.(l).Complex.re;
        rhs.(im_row) <- w *. row.(l).Complex.im
      done;
      match Linalg.Qr.least_squares a rhs with
      | exception Linalg.Qr.Rank_deficient _ ->
          Log.warn (fun m -> m "residue identification rank-deficient (element %d)" e)
      | sol ->
          for c = 0 to p - 1 do
            coeffs.(e).(c) <- sol.(c) *. scales.(c)
          done;
          let cursor = ref p in
          if opts.with_const then begin
            consts.(e) <- sol.(!cursor);
            incr cursor
          end;
          if opts.with_slope then slopes.(e) <- sol.(!cursor) *. zscale
  in
  (match pool with
  | Some pool when Array.length data > 1 ->
      ignore
        (Exec.parallel_init ~pool ~label:"vf.identify" (Array.length data)
           (fun e -> fit_element e data.(e)))
  | _ -> Array.iteri fit_element data);
  { Model.poles; coeffs; consts; slopes }

let finite_model (m : Model.t) =
  Guard.finite_complex_array m.Model.poles
  && Array.for_all Guard.finite_array m.Model.coeffs
  && Guard.finite_array m.Model.consts
  && Guard.finite_array m.Model.slopes

let fit ?(opts = default_frequency_opts) ?guard ?cancel ?diag ?trace ?metrics
    ?obs ?pool ?(label = "vfit") ~poles ~points ~data () =
  if Array.length data = 0 then invalid_arg "Vfit.fit: no elements";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length points then
        invalid_arg "Vfit.fit: data/points length mismatch")
    data;
  Trace.span trace
    ~args:
      [ ("label", Trace.Str label);
        ("poles", Trace.Int (Array.length poles));
        ("points", Trace.Int (Array.length points)) ]
    "vf.fit"
  @@ fun () ->
  let weights = weights_of opts data in
  let poles = ref (Pole.normalize ~enforce_stable:opts.enforce_stable
                     ~min_imag:opts.min_imag poles) in
  let iterations_run = ref 0 in
  (* one relocation workspace per fit: every iteration's sigma step
     reuses the same condensed-system and per-element buffers *)
  let rws = make_reloc_ws () in
  (try
     for it = 1 to opts.iterations do
       Trace.span trace ~args:[ ("it", Trace.Int it) ] "vf.relocate"
       @@ fun () ->
       Cancel.check cancel ~site:"vf.relocate";
       if Fault.should_fire "vf.spin" then Cancel.hang cancel ~site:"vf.relocate";
       match
         relocate_poles ?pool ~rws ~opts ~poles:!poles ~points ~data ~weights ()
       with
       | Some (poles', rd) ->
           iterations_run := it;
           poles := poles';
           if Fault.should_fire "vf.pole_flip" && Array.length poles' > 0
           then begin
             (* reflect one relocated pole into the right half plane —
                both members when it heads a conjugate pair, keeping
                the normalized pair layout intact *)
             let flip i =
               poles'.(i) <-
                 {
                   poles'.(i) with
                   Complex.re = Float.abs poles'.(i).Complex.re +. 1.0;
                 }
             in
             flip 0;
             if poles'.(0).Complex.im <> 0.0 && Array.length poles' > 1 then
               flip 1
           end;
           Diag.observe diag (label ^ ".sigma_rms") rd.sigma_rms;
           Diag.observe diag (label ^ ".column_scale_spread") rd.scale_spread;
           Metrics.observe metrics (label ^ ".sigma_rms") rd.sigma_rms;
           if rd.flips > 0 then
             Diag.add diag (label ^ ".unstable_pole_flips") rd.flips;
           (match obs with
           | None -> ()
           | Some _ ->
               (* the fast kernel's condensed-system QR is the most
                  condition-sensitive factorization in the stack; the
                  dense kernel has no workspace to read, so skip it *)
               (match opts.relocation_kernel with
               | Fast ->
                   Obs.rcond obs ~site:"vf.sigma_qr"
                     (Linalg.Qr.last_rcond rws.qbig)
               | Dense -> ());
               Obs.vf_iteration obs ~label ~iteration:it
                 ~sigma_rms:rd.sigma_rms ~d_tilde:rd.d_tilde
                 ~scale_spread:rd.scale_spread ~flips:rd.flips !poles)
       | None ->
           Log.debug (fun m -> m "pole relocation stalled at iteration %d" it);
           Diag.incr diag (label ^ ".stalled_relocations");
           raise Exit
     done
   with Exit -> ());
  (* post-relocation guard: finite poles, runaway detection against the
     span of the fit points, and stability repair for the injected (or
     numerically produced) right-half-plane pole that slipped past the
     in-loop normalization *)
  (match guard with
  | None -> ()
  | Some (g : Guard.t) ->
      let p = !poles in
      if g.Guard.check_finite && not (Guard.finite_complex_array p) then
        Guard.fail ~site:(label ^ ".poles") "non-finite relocated poles";
      let zmax =
        Array.fold_left (fun m z -> Float.max m (Complex.norm z)) 0.0 points
      in
      Array.iter
        (fun a ->
          if zmax > 0.0 && Complex.norm a > g.Guard.max_pole_growth *. zmax
          then
            Guard.fail ~site:(label ^ ".poles")
              (Printf.sprintf
                 "pole runaway: |p| = %.3e exceeds %g x the largest fit \
                  point %.3e"
                 (Complex.norm a) g.Guard.max_pole_growth zmax))
        p;
      if
        opts.enforce_stable
        && Array.exists (fun a -> a.Complex.re >= 0.0) p
      then begin
        let n_unstable =
          Array.fold_left
            (fun acc a -> if a.Complex.re >= 0.0 then acc + 1 else acc)
            0 p
        in
        Diag.add diag (label ^ ".guard_stabilized") n_unstable;
        Metrics.add metrics (label ^ ".guard_stabilized") n_unstable;
        Diag.warn diag ~stage:label
          (Printf.sprintf
             "guard reflected %d unstable pole(s) into the left half plane"
             n_unstable);
        poles :=
          Pole.normalize ~enforce_stable:true ~min_imag:opts.min_imag p
      end);
  let model = identify ?pool ~opts ~poles:!poles ~points ~data ~weights () in
  (match guard with
  | None -> ()
  | Some g ->
      if g.Guard.check_finite && not (finite_model model) then
        Guard.fail ~site:(label ^ ".model")
          "non-finite coefficients in fitted model");
  let rms = Model.rms_error model ~points ~data in
  let max_err = Model.max_error model ~points ~data in
  Diag.observe diag (label ^ ".fit_rms") rms;
  Metrics.observe metrics (label ^ ".fit_rms") rms;
  ( model,
    {
      rms;
      max_err;
      iterations_run = !iterations_run;
      pole_count = Array.length !poles;
    } )

let fit_auto ?(opts = default_frequency_opts) ?guard ?cancel ?diag ?trace
    ?metrics ?obs ?pool ?(label = "vfit") ~make_poles ?(start = 2) ?(step = 2)
    ?(max_poles = 40) ~tol ~points ~data () =
  Trace.span trace ~args:[ ("label", Trace.Str label) ] "vf.fit_auto"
  @@ fun () ->
  (* the last per-attempt failure, kept so that a fully unsuccessful
     escalation can report *why* instead of a bare "no successful fit" *)
  let last_failure = ref None in
  let fail_no_fit () =
    let detail =
      match !last_failure with
      | Some (count, msg) ->
          Printf.sprintf " (last attempt: %d poles, %s)" count msg
      | None ->
          Printf.sprintf " (no pole count attempted: start %d > max_poles %d)"
            start max_poles
    in
    Diag.error diag ~stage:label ("fit_auto: no successful fit" ^ detail);
    invalid_arg ("Vfit.fit_auto: no successful fit" ^ detail)
  in
  let settle (model, (info : info)) =
    Diag.note diag (label ^ ".settled_poles") (string_of_int info.pole_count);
    Diag.observe diag (label ^ ".settled_rms") info.rms;
    Obs.vf_settled obs ~label ~pole_count:info.pole_count ~rms:info.rms;
    (model, info)
  in
  let rec loop count best =
    if count > max_poles then begin
      match best with Some mi -> settle mi | None -> fail_no_fit ()
    end
    else begin
      Diag.incr diag (label ^ ".attempts");
      Metrics.incr metrics (label ^ ".attempts");
      Cancel.check cancel ~site:"vf.fit_auto";
      match
        fit ~opts ?guard ?cancel ?diag ?trace ?metrics ?obs ?pool ~label
          ~poles:(make_poles count) ~points ~data ()
      with
      | exception Guard.Violation v ->
          (* a guarded failure at this count (pole runaway, non-finite
             model) may vanish with a different start-pole set — keep
             escalating instead of giving up *)
          last_failure := Some (count, Guard.describe v);
          Diag.incr diag (label ^ ".guard_violations");
          Diag.warn diag ~stage:label
            (Printf.sprintf "attempt with %d poles hit a guard: %s" count
               (Guard.describe v));
          Obs.violation obs ~site:label
            (Printf.sprintf "%d poles: %s" count (Guard.describe v));
          loop (count + step) best
      | exception Invalid_argument msg -> begin
          (* typically: too few points for this many unknowns — stop
             escalating and keep the best admissible model *)
          Log.info (fun m -> m "fit_auto: stopping at %d poles (%s)" count msg);
          last_failure := Some (count, msg);
          Diag.warn diag ~stage:label
            (Printf.sprintf "attempt with %d poles failed: %s" count msg);
          match best with Some mi -> settle mi | None -> fail_no_fit ()
        end
      | model, info ->
          Log.info (fun m ->
              m "fit_auto: %d poles -> rms %.3e (tol %.3e)" info.pole_count
                info.rms tol);
          Obs.vf_attempt obs ~label ~pole_count:info.pole_count ~rms:info.rms
            ~tol ~accepted:(info.rms <= tol);
          if info.rms <= tol then settle (model, info)
          else begin
            last_failure :=
              Some (count, Printf.sprintf "rms %.3e above tol %.3e" info.rms tol);
            let best =
              match best with
              | Some (_, bi) when bi.rms <= info.rms -> best
              | Some _ | None -> Some (model, info)
            in
            loop (count + step) best
          end
    end
  in
  loop start None
