(** Small example circuits used by tests, examples and benches. Each
    returns a netlist plus the designated SISO input/output, ready for
    {!Engine.Mna.build}. *)

val clipper : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** Series resistor into a diode/capacitor clamp: the simplest circuit
    with both static (diode I–V) and dynamic (RC) nonlinear behaviour. *)

val clipper_input : string
val clipper_output : Engine.Mna.output

val rc_ladder : ?stages:int -> ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** Linear RC ladder — a sanity case where one trajectory snapshot
    already captures everything (the residues are state-independent). *)

val rc_input : string
val rc_output : Engine.Mna.output

val gm_stage : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A single resistively loaded differential pair (one slice of the
    output buffer). *)

val gm_input : string
val gm_output : Engine.Mna.output

val bjt_amp : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A bipolar common-emitter stage with emitter degeneration — exercises
    the Ebers–Moll device in the extraction flow. *)

val bjt_input : string
val bjt_output : Engine.Mna.output

val lc_ladder : ?input_wave:Circuit.Netlist.wave -> unit -> Circuit.Netlist.t
(** A 5th-order doubly terminated LC lowpass ladder (Butterworth-ish,
    ~1 MHz corner) — a resonant passive network whose frequency response
    exercises vector fitting with genuinely complex pole pairs. *)

val lc_input : string
val lc_output : Engine.Mna.output

(** {1 Large-circuit generators}

    Parameterized families for the sparse-backend tier; node counts are
    whatever the caller asks for (ladders and meshes comfortably reach
    10k nodes). Uniform element values, so the closed-form RC-ladder
    oracle ({!Oracle.Ladder.rc}) applies to the ladder family. *)

val rc_ladder_n :
  ?stages:int ->
  ?r:float ->
  ?c:float ->
  ?input_wave:Circuit.Netlist.wave ->
  unit ->
  Circuit.Netlist.t
(** Uniform RC ladder with explicit element values: [stages] R-into-C
    sections driven by [Vin], nodes [n0 … n<stages>]. *)

val rc_ladder_output : int -> Engine.Mna.output
(** Output node of an [rc_ladder_n ~stages] netlist (its last node). *)

val rc_mesh :
  ?rows:int ->
  ?cols:int ->
  ?r:float ->
  ?c:float ->
  ?input_wave:Circuit.Netlist.wave ->
  unit ->
  Circuit.Netlist.t
(** [rows × cols] rectangular resistor mesh with a capacitor to ground
    at every node, driven through a source resistor at corner (0,0).
    Each interior node couples to 4 neighbours — the classic sparse MNA
    stress case (bandwidth ~[cols], fill governed by the ordering). *)

val mesh_input : string
val mesh_output : rows:int -> cols:int -> Engine.Mna.output
(** The far-corner node (rows−1, cols−1). *)

val rc_grid :
  ?rows:int ->
  ?cols:int ->
  ?r:float ->
  ?c:float ->
  ?diode_every:int ->
  ?input_wave:Circuit.Netlist.wave ->
  unit ->
  Circuit.Netlist.t
(** {!rc_mesh} with a grounded diode at every [diode_every]-th node
    (default 7): mildly nonlinear at scale, so the sparse Newton and
    per-snapshot relinearization paths are exercised, while the DC
    operating point stays trivially convergent. *)

val grid_input : string
val grid_output : rows:int -> cols:int -> Engine.Mna.output
