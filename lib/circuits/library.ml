module N = Circuit.Netlist

let default_wave = N.Dc 0.0

let clipper ?(input_wave = default_wave) () =
  N.make
    [
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.resistor ~name:"R1" "in" "out" 200.0;
      N.diode ~name:"D1"
        ~params:{ N.i_sat = 1e-9; ideality = 1.8; cj = 0.0 }
        "out" "0" ();
      N.capacitor ~name:"C1" "out" "0" 100e-12;
    ]

let clipper_input = "Vin"
let clipper_output = Engine.Mna.Node "out"

let rc_ladder ?(stages = 3) ?(input_wave = default_wave) () =
  if stages < 1 then invalid_arg "rc_ladder: stages must be >= 1";
  let comps = ref [ N.vsource ~name:"Vin" "n0" "0" input_wave ] in
  for k = 1 to stages do
    let prev = Printf.sprintf "n%d" (k - 1) in
    let cur = Printf.sprintf "n%d" k in
    comps :=
      N.capacitor ~name:(Printf.sprintf "C%d" k) cur "0" 1e-9
      :: N.resistor ~name:(Printf.sprintf "R%d" k) prev cur 1e3
      :: !comps
  done;
  N.make (List.rev !comps)

let rc_input = "Vin"
let rc_output = Engine.Mna.Node "n3"

let gm_stage ?(input_wave = default_wave) () =
  let pair =
    {
      N.kp = 200e-6;
      vth = 0.4;
      lambda = 0.08;
      w = 24e-6;
      l = 0.5e-6;
      cgs = 30e-15;
      cgd = 10e-15;
      cdb = 15e-15;
    }
  in
  let tail = { pair with N.w = 75e-6 } in
  N.make
    [
      N.vsource ~name:"Vdd" "vdd" "0" (N.Dc 2.5);
      N.vsource ~name:"Vbn" "vbn" "0" (N.Dc 0.6);
      N.vsource ~name:"Vref" "ref" "0" (N.Dc 0.9);
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.mosfet ~name:"M1" ~d:"dp" ~g:"in" ~s:"tail" N.Nmos pair;
      N.mosfet ~name:"M2" ~d:"dn" ~g:"ref" ~s:"tail" N.Nmos pair;
      N.mosfet ~name:"Mt" ~d:"tail" ~g:"vbn" ~s:"0" N.Nmos tail;
      N.resistor ~name:"Rlp" "vdd" "dp" 550.0;
      N.resistor ~name:"Rln" "vdd" "dn" 550.0;
      N.capacitor ~name:"Cp" "dp" "0" 50e-15;
      N.capacitor ~name:"Cn" "dn" "0" 50e-15;
    ]

let gm_input = "Vin"
let gm_output = Engine.Mna.Diff ("dn", "dp")

let bjt_amp ?(input_wave = default_wave) () =
  N.make
    [
      N.vsource ~name:"Vcc" "vcc" "0" (N.Dc 5.0);
      N.vsource ~name:"Vin" "b" "0" input_wave;
      N.bjt ~name:"Q1" ~c:"c" ~b:"b" ~e:"e" N.Npn N.default_npn;
      N.resistor ~name:"Rc" "vcc" "c" 2e3;
      N.resistor ~name:"Re" "e" "0" 200.0;
      N.capacitor ~name:"Cl" "c" "0" 2e-12;
    ]

let bjt_input = "Vin"
let bjt_output = Engine.Mna.Node "c"

let lc_ladder ?(input_wave = default_wave) () =
  (* 5th-order Butterworth lowpass, 1 MHz corner, 50-ohm terminations *)
  N.make
    [
      N.vsource ~name:"Vin" "in" "0" input_wave;
      N.resistor ~name:"Rs" "in" "n1" 50.0;
      N.capacitor ~name:"C1" "n1" "0" 1.967e-9;
      N.inductor ~name:"L2" "n1" "n2" 12.88e-6;
      N.capacitor ~name:"C3" "n2" "0" 6.366e-9;
      N.inductor ~name:"L4" "n2" "n3" 12.88e-6;
      N.capacitor ~name:"C5" "n3" "0" 1.967e-9;
      N.resistor ~name:"Rl" "n3" "0" 50.0;
    ]

let lc_input = "Vin"
let lc_output = Engine.Mna.Node "n3"

(* --- large-circuit generators ----------------------------------------
   Parameterized families for the sparse-backend tier: node counts are
   set by the caller (ladders and meshes comfortably reach 10k nodes),
   values are uniform so the closed-form RC-ladder oracle and simple
   scaling arguments apply. *)

let rc_ladder_n ?(stages = 3) ?(r = 1e3) ?(c = 1e-9)
    ?(input_wave = default_wave) () =
  if stages < 1 then invalid_arg "rc_ladder_n: stages must be >= 1";
  let comps = ref [ N.vsource ~name:"Vin" "n0" "0" input_wave ] in
  for k = 1 to stages do
    let prev = Printf.sprintf "n%d" (k - 1) in
    let cur = Printf.sprintf "n%d" k in
    comps :=
      N.capacitor ~name:(Printf.sprintf "C%d" k) cur "0" c
      :: N.resistor ~name:(Printf.sprintf "R%d" k) prev cur r
      :: !comps
  done;
  N.make (List.rev !comps)

let rc_ladder_output stages = Engine.Mna.Node (Printf.sprintf "n%d" stages)

let mesh_node r c = Printf.sprintf "m%d_%d" r c

let rc_mesh ?(rows = 8) ?(cols = 8) ?(r = 1e3) ?(c = 1e-9)
    ?(input_wave = default_wave) () =
  if rows < 1 || cols < 1 then invalid_arg "rc_mesh: rows/cols must be >= 1";
  let comps = ref [] in
  let add x = comps := x :: !comps in
  add (N.vsource ~name:"Vin" "in" "0" input_wave);
  add (N.resistor ~name:"Rin" "in" (mesh_node 0 0) r);
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let here = mesh_node i j in
      add (N.capacitor ~name:(Printf.sprintf "C%d_%d" i j) here "0" c);
      if j + 1 < cols then
        add
          (N.resistor ~name:(Printf.sprintf "Rh%d_%d" i j) here
             (mesh_node i (j + 1))
             r);
      if i + 1 < rows then
        add
          (N.resistor ~name:(Printf.sprintf "Rv%d_%d" i j) here
             (mesh_node (i + 1) j)
             r)
    done
  done;
  N.make (List.rev !comps)

let mesh_input = "Vin"
let mesh_output ~rows ~cols = Engine.Mna.Node (mesh_node (rows - 1) (cols - 1))

let rc_grid ?(rows = 8) ?(cols = 8) ?(r = 1e3) ?(c = 1e-9) ?(diode_every = 7)
    ?(input_wave = default_wave) () =
  if rows < 1 || cols < 1 then invalid_arg "rc_grid: rows/cols must be >= 1";
  if diode_every < 1 then invalid_arg "rc_grid: diode_every must be >= 1";
  let comps = ref [] in
  let add x = comps := x :: !comps in
  add (N.vsource ~name:"Vin" "in" "0" input_wave);
  add (N.resistor ~name:"Rin" "in" (mesh_node 0 0) r);
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let here = mesh_node i j in
      let k = (i * cols) + j in
      add (N.capacitor ~name:(Printf.sprintf "C%d_%d" i j) here "0" c);
      if k mod diode_every = diode_every - 1 then
        add
          (N.diode ~name:(Printf.sprintf "D%d_%d" i j)
             ~params:{ N.i_sat = 1e-12; ideality = 2.0; cj = 1e-12 }
             here "0" ());
      if j + 1 < cols then
        add
          (N.resistor ~name:(Printf.sprintf "Rh%d_%d" i j) here
             (mesh_node i (j + 1))
             r);
      if i + 1 < rows then
        add
          (N.resistor ~name:(Printf.sprintf "Rv%d_%d" i j) here
             (mesh_node (i + 1) j)
             r)
    done
  done;
  N.make (List.rev !comps)

let grid_input = "Vin"
let grid_output = mesh_output
