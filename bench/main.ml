(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section IV), plus ablations of the design choices called
   out in DESIGN.md and Bechamel micro-benchmarks of the hot kernels.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe fig6|fig7|fig8|fig9|table1|ablation|kernels|parallel|sparse
     dune exec bench/main.exe fig6 --full      # undecimated grids
     dune exec bench/main.exe parallel --domains 8
     dune exec bench/main.exe parallel --quick # smoke mode (see @bench-smoke)
     dune exec bench/main.exe table1 kernels parallel --quick --json out.json
     dune exec bench/main.exe compare BENCH_baseline.json out.json
*)

let full_grids = ref false
let quick = ref false
let domains = ref 4
let threshold = ref 1.5

(* --json FILE: accumulate every quantitative result printed by the
   targets into a flat name -> float table and serialize it (plus the
   trace-derived stage self times of the shared experiment) at exit, so
   runs can be archived and diffed by the `compare` target below *)
let json_path : string option ref = ref None
let json_entries : (string * float) list ref = ref []

let record name v =
  if !json_path <> None then json_entries := (name, v) :: !json_entries

(* set when a correctness check (parallel bit-identity) fails; the whole
   bench run then exits nonzero so @bench-smoke catches the regression *)
let bench_failed = ref false

(* ------------------------------------------------------------------ *)
(* shared experiment state: one extraction of the output buffer, the
   CAFFEINE baseline on the same dataset, and the Fig. 9 validations    *)

type experiment = {
  outcome : Tft_rvf.Pipeline.outcome;
  caffeine : Caffeine.Cfit.result;
  v_rvf : Tft_rvf.Report.validation;
  v_caffeine : Tft_rvf.Report.validation;
}

(* only forced in --json mode: the shared extraction then runs traced so
   the bench JSON can report per-stage self times from the real span tree *)
let tracer = lazy (Trace.create ())

let experiment =
  lazy
    (let trace =
       if !json_path <> None then Some (Trace.main (Lazy.force tracer))
       else None
     in
     let outcome = Tft_rvf.Pipeline.extract_buffer ?trace () in
     let caffeine =
       Caffeine.Cfit.extract ~dataset:outcome.Tft_rvf.Pipeline.dataset ~input:0
         ~output:0 ()
     in
     let netlist = Circuits.Buffer.netlist () in
     let wave = Circuits.Buffer.bit_wave ~rate:2.5e9 ~length:32 () in
     let t_stop = 32.0 /. 2.5e9 in
     let dt = t_stop /. 2560.0 in
     let validate model =
       Tft_rvf.Report.validate ~model ~netlist ~input:Circuits.Buffer.input_name
         ~output:Circuits.Buffer.output ~wave ~t_stop ~dt ()
     in
     {
       outcome;
       caffeine;
       v_rvf = validate outcome.Tft_rvf.Pipeline.model;
       v_caffeine = validate caffeine.Caffeine.Cfit.model;
     })

let deg_of_rad r = r *. 180.0 /. Float.pi

let sample_stride samples = if !full_grids then 1 else Stdlib.max 1 (samples / 26)
let freq_stride freqs = if !full_grids then 1 else Stdlib.max 1 (freqs / 20)

(* ------------------------------------------------------------------ *)
(* Fig. 6: the TFT hyperplane of the buffer                             *)

let fig6 () =
  let e = Lazy.force experiment in
  let ds = Tft_rvf.Pipeline.(e.outcome.dataset) in
  let ds = Tft.Dataset.sort_by_x0 ds in
  let freqs = ds.Tft.Dataset.freqs_hz in
  Printf.printf "## Fig. 6: TFT magnitude/phase hyperplane vs (state x, frequency f)\n";
  Printf.printf "# x [V]   f [Hz]      gain [dB]   phase [deg]\n";
  let ss = sample_stride (Array.length ds.Tft.Dataset.samples) in
  let fs = freq_stride (Array.length freqs) in
  Array.iteri
    (fun k (s : Tft.Dataset.sample) ->
      if k mod ss = 0 then begin
        Array.iteri
          (fun l f ->
            if l mod fs = 0 then begin
              let h = Linalg.Cmat.get s.Tft.Dataset.h.(l) 0 0 in
              Printf.printf "%8.4f %11.4e %11.3f %11.2f\n" s.Tft.Dataset.x.(0) f
                (Signal.Metrics.db20 (Complex.norm h))
                (deg_of_rad (Complex.arg h))
            end)
          freqs;
        print_newline ()
      end)
    ds.Tft.Dataset.samples

(* ------------------------------------------------------------------ *)
(* Fig. 7/8 helper: modeled hyperplane and error contours               *)

let model_surface ~label model =
  let e = Lazy.force experiment in
  let ds = Tft.Dataset.sort_by_x0 Tft_rvf.Pipeline.(e.outcome.dataset) in
  let freqs = ds.Tft.Dataset.freqs_hz in
  Printf.printf "# x [V]   f [Hz]      gain [dB]   phase [deg]   gain err [dB]  phase err [deg]\n";
  let ss = sample_stride (Array.length ds.Tft.Dataset.samples) in
  let fs = freq_stride (Array.length freqs) in
  let max_gain_err = ref neg_infinity and max_phase_err = ref 0.0 in
  let gain_floor = 1e-4 in
  Array.iteri
    (fun k (s : Tft.Dataset.sample) ->
      let x = s.Tft.Dataset.x.(0) in
      Array.iteri
        (fun l f ->
          let data = Linalg.Cmat.get s.Tft.Dataset.h.(l) 0 0 in
          let t = Hammerstein.Hmodel.transfer model ~x ~s:(Signal.Grid.s_of_hz f) in
          let gain_err = Signal.Metrics.db20 (Complex.norm (Complex.sub t data)) in
          let phase_err =
            let d = deg_of_rad (Complex.arg t -. Complex.arg data) in
            let d = Float.rem (d +. 540.0) 360.0 -. 180.0 in
            Float.abs d
          in
          (* the paper notes the large phase errors sit where the gain is
             negligible; report the max over meaningful-gain points *)
          if Complex.norm data > gain_floor then begin
            max_gain_err := Float.max !max_gain_err gain_err;
            max_phase_err := Float.max !max_phase_err phase_err
          end;
          if k mod ss = 0 && l mod fs = 0 then
            Printf.printf "%8.4f %11.4e %11.3f %11.2f %13.2f %13.2f\n" x f
              (Signal.Metrics.db20 (Complex.norm t))
              (deg_of_rad (Complex.arg t))
              gain_err phase_err)
        freqs;
      if k mod ss = 0 then print_newline ())
    ds.Tft.Dataset.samples;
  let se =
    Tft_rvf.Report.surface_error ~model
      ~dataset:Tft_rvf.Pipeline.(e.outcome.dataset)
      ~input:0 ~output:0
  in
  Printf.printf
    "# %s summary: surface rms %.1f dB, max gain error %.1f dB, max phase error %.1f deg (gain > %.0e)\n"
    label se.Tft_rvf.Report.rms_db !max_gain_err !max_phase_err gain_floor

let fig7 () =
  let e = Lazy.force experiment in
  Printf.printf "## Fig. 7: RVF-modeled TFT hyperplane and error contours\n";
  model_surface ~label:"RVF" Tft_rvf.Pipeline.(e.outcome.model)

let fig8 () =
  let e = Lazy.force experiment in
  Printf.printf "## Fig. 8: CAFFEINE-modeled TFT error contours\n";
  model_surface ~label:"CAFFEINE" e.caffeine.Caffeine.Cfit.model

(* ------------------------------------------------------------------ *)
(* Fig. 9: time-domain bit-pattern response                             *)

let fig9 () =
  let e = Lazy.force experiment in
  Printf.printf "## Fig. 9: response to a 2.5 GS/s bit pattern\n";
  Printf.printf "# t [s]      SPICE [V]    RVF [V]     CAFFEINE [V]\n";
  let w_ref = e.v_rvf.Tft_rvf.Report.reference in
  let w_rvf = e.v_rvf.Tft_rvf.Report.modeled in
  let w_caf = e.v_caffeine.Tft_rvf.Report.modeled in
  let times = Signal.Waveform.times w_ref in
  let stride = if !full_grids then 1 else Stdlib.max 1 (Array.length times / 256) in
  Array.iteri
    (fun k t ->
      if k mod stride = 0 then
        Printf.printf "%.6e %11.6f %11.6f %11.6f\n" t
          (Signal.Waveform.values w_ref).(k)
          (Signal.Waveform.value_at w_rvf t)
          (Signal.Waveform.value_at w_caf t))
    times;
  Printf.printf "# RVF      rmse %.4e V (nrmse %.1f dB)\n" e.v_rvf.Tft_rvf.Report.rmse
    e.v_rvf.Tft_rvf.Report.nrmse_db;
  Printf.printf "# CAFFEINE rmse %.4e V (nrmse %.1f dB)\n"
    e.v_caffeine.Tft_rvf.Report.rmse e.v_caffeine.Tft_rvf.Report.nrmse_db

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)

let table1 () =
  let e = Lazy.force experiment in
  let se model =
    Tft_rvf.Report.surface_error ~model
      ~dataset:Tft_rvf.Pipeline.(e.outcome.dataset)
      ~input:0 ~output:0
  in
  let se_rvf = se Tft_rvf.Pipeline.(e.outcome.model) in
  let se_caf = se e.caffeine.Caffeine.Cfit.model in
  let rvf_build =
    Tft_rvf.Pipeline.(e.outcome.timing.train_seconds
                      +. e.outcome.timing.tft_seconds
                      +. e.outcome.timing.fit_seconds)
  in
  let caf_build =
    Tft_rvf.Pipeline.(e.outcome.timing.train_seconds
                      +. e.outcome.timing.tft_seconds)
    +. e.caffeine.Caffeine.Cfit.build_seconds
  in
  record "table1.rvf_build_seconds" rvf_build;
  record "table1.caffeine_build_seconds" caf_build;
  record "table1.rvf_surface_rms_db" se_rvf.Tft_rvf.Report.rms_db;
  record "table1.caffeine_surface_rms_db" se_caf.Tft_rvf.Report.rms_db;
  record "table1.rvf_time_rmse" e.v_rvf.Tft_rvf.Report.rmse;
  record "table1.caffeine_time_rmse" e.v_caffeine.Tft_rvf.Report.rmse;
  record "table1.rvf_speedup" e.v_rvf.Tft_rvf.Report.speedup;
  record "table1.caffeine_speedup" e.v_caffeine.Tft_rvf.Report.speedup;
  Printf.printf "## Table I: comparison between the RVF and CAFFEINE models\n";
  Printf.printf "# paper reference (4 GHz dual quad-core, ELDO + UMC 0.13um):\n";
  Printf.printf "#   RVF : -62 dB | 0.0098 | 2 min | 7X  | YES\n";
  Printf.printf "#   CAFF: -22 dB | 0.0138 | 7 min | 12X | NO\n";
  Printf.printf "%-9s %-12s %-12s %-12s %-9s %-9s\n" "Model" "Freq RMSE" "Time RMSE"
    "Build time" "Speedup" "Automated";
  Printf.printf "%-9s %-12s %-12.4f %-12s %-9s %-9s\n" "RVF"
    (Printf.sprintf "%.1f dB" se_rvf.Tft_rvf.Report.rms_db)
    e.v_rvf.Tft_rvf.Report.rmse
    (Printf.sprintf "%.2f s" rvf_build)
    (Printf.sprintf "%.0fX" e.v_rvf.Tft_rvf.Report.speedup)
    (if Hammerstein.Hmodel.analytic Tft_rvf.Pipeline.(e.outcome.model) then "YES"
     else "NO");
  Printf.printf "%-9s %-12s %-12.4f %-12s %-9s %-9s\n" "CAFF"
    (Printf.sprintf "%.1f dB" se_caf.Tft_rvf.Report.rms_db)
    e.v_caffeine.Tft_rvf.Report.rmse
    (Printf.sprintf "%.2f s" caf_build)
    (Printf.sprintf "%.0fX" e.v_caffeine.Tft_rvf.Report.speedup)
    (if e.caffeine.Caffeine.Cfit.automated then "YES" else "NO");
  Printf.printf
    "# CAFFEINE closed-form integrable terms: %d of %d (numeric fallback for the rest)\n"
    e.caffeine.Caffeine.Cfit.integrable_terms e.caffeine.Caffeine.Cfit.total_terms

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let surface_of_outcome (o : Tft_rvf.Pipeline.outcome) =
  Tft_rvf.Report.surface_error ~model:o.Tft_rvf.Pipeline.model
    ~dataset:o.Tft_rvf.Pipeline.dataset ~input:0 ~output:0

let ablation_samples () =
  Printf.printf "\n# ablation: TFT training-sample count (paper: ~100 suffice)\n";
  Printf.printf "%-10s %-12s %-14s %-10s\n" "samples" "freq poles" "surface rms"
    "fit time";
  List.iter
    (fun snapshots ->
      let config = Tft_rvf.Pipeline.buffer_config ~snapshots () in
      let o = Tft_rvf.Pipeline.extract_buffer ~config () in
      let se = surface_of_outcome o in
      Printf.printf "%-10d %-12d %-14s %-10s\n"
        (Array.length o.Tft_rvf.Pipeline.dataset.Tft.Dataset.samples)
        o.Tft_rvf.Pipeline.rvf.Rvf.freq_info.Vf.Vfit.pole_count
        (Printf.sprintf "%.1f dB" se.Tft_rvf.Report.rms_db)
        (Printf.sprintf "%.2f s" o.Tft_rvf.Pipeline.timing.Tft_rvf.Pipeline.fit_seconds))
    [ 25; 50; 100; 200 ]

let ablation_relax () =
  Printf.printf "\n# ablation: relaxed vs non-relaxed VF normalization (frequency stage)\n";
  let e = Lazy.force experiment in
  let ds = Tft_rvf.Pipeline.(e.outcome.dataset) in
  List.iter
    (fun relax ->
      let config =
        {
          Rvf.default_config with
          Rvf.freq_opts = { Vf.Vfit.default_frequency_opts with Vf.Vfit.relax };
          max_state_poles = 24;
          min_imag_fraction = 0.03;
        }
      in
      let stage = Rvf.frequency_stage ~config ~dataset:ds ~input:0 ~output:0 () in
      Printf.printf "  relax=%-5b -> %d poles, rms %.3e\n" relax
        stage.Rvf.fs_info.Vf.Vfit.pole_count stage.Rvf.fs_info.Vf.Vfit.rms)
    [ true; false ]

let ablation_split () =
  Printf.printf "\n# ablation: static/dynamic split (fit H - H(0) vs raw H)\n";
  let e = Lazy.force experiment in
  let ds = Tft_rvf.Pipeline.(e.outcome.dataset) in
  (* zero out the DC part so dynamic_part subtracts nothing *)
  let no_split =
    {
      ds with
      Tft.Dataset.samples =
        Array.map
          (fun (s : Tft.Dataset.sample) ->
            {
              s with
              Tft.Dataset.h0 =
                Linalg.Cmat.create
                  (Linalg.Cmat.rows s.Tft.Dataset.h0)
                  (Linalg.Cmat.cols s.Tft.Dataset.h0);
            })
          ds.Tft.Dataset.samples;
    }
  in
  List.iter
    (fun (label, dataset) ->
      let config =
        { Rvf.default_config with Rvf.max_state_poles = 24; min_imag_fraction = 0.03 }
      in
      let r = Rvf.extract ~config ~dataset ~input:0 ~output:0 () in
      let se =
        Tft_rvf.Report.surface_error ~model:r.Rvf.model
          ~dataset:Tft_rvf.Pipeline.(e.outcome.dataset)
          ~input:0 ~output:0
      in
      Printf.printf "  %-10s -> freq poles %2d, surface rms %.1f dB\n" label
        r.Rvf.freq_info.Vf.Vfit.pole_count se.Tft_rvf.Report.rms_db)
    [ ("split", ds); ("no-split", no_split) ]

let ablation_training_freq () =
  Printf.printf
    "\n# ablation: training pump frequency (slower pump = less trajectory hysteresis)\n";
  Printf.printf "%-12s %-14s %-12s\n" "pump [Hz]" "surface rms" "state poles";
  List.iter
    (fun freq ->
      let period = 1.0 /. freq in
      let base = Tft_rvf.Pipeline.buffer_config () in
      let config =
        {
          base with
          Tft_rvf.Pipeline.training =
            {
              Tft_rvf.Pipeline.wave = Circuits.Buffer.training_wave ~freq ();
              t_stop = period;
              dt = period /. 400.0;
              snapshot_every = 4;
            };
        }
      in
      let o = Tft_rvf.Pipeline.extract_buffer ~config () in
      let se = surface_of_outcome o in
      Printf.printf "%-12.0e %-14s %-12d\n" freq
        (Printf.sprintf "%.1f dB" se.Tft_rvf.Report.rms_db)
        o.Tft_rvf.Pipeline.rvf.Rvf.residue_info.Vf.Vfit.pole_count)
    [ 50e6; 10e6; 1e6 ]

let ablation_integration () =
  Printf.printf "\n# ablation: training transient integrator (snapshot quality)\n";
  List.iter
    (fun (label, integration) ->
      let netlist = Circuits.Buffer.netlist () in
      let base = Tft_rvf.Pipeline.buffer_config () in
      let training_netlist_mna =
        Engine.Mna.build ~inputs:[ Circuits.Buffer.input_name ]
          ~outputs:[ Circuits.Buffer.output ]
          (Circuit.Netlist.make
             (List.map
                (fun (c : Circuit.Netlist.component) ->
                  if c.name = Circuits.Buffer.input_name then
                    Circuit.Netlist.vsource ~name:c.name "in" "0"
                      base.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.wave
                  else c)
                netlist.Circuit.Netlist.components))
      in
      let opts =
        { Engine.Tran.default_opts with Engine.Tran.integration; snapshot_every = 4 }
      in
      let run =
        Engine.Tran.run ~opts training_netlist_mna
          ~t_stop:base.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.t_stop
          ~dt:base.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.dt
      in
      let est = Tft.Estimator.make () in
      let ds =
        Tft.Dataset.of_snapshots ~mna:training_netlist_mna ~estimator:est
          ~freqs_hz:base.Tft_rvf.Pipeline.freqs_hz run.Engine.Tran.snapshots
      in
      let r =
        Rvf.extract ~config:base.Tft_rvf.Pipeline.rvf ~dataset:ds ~input:0
          ~output:0 ()
      in
      let se =
        Tft_rvf.Report.surface_error ~model:r.Rvf.model ~dataset:ds ~input:0
          ~output:0
      in
      Printf.printf "  %-18s -> surface rms %.1f dB\n" label se.Tft_rvf.Report.rms_db)
    [ ("trapezoidal", Engine.Tran.Trapezoidal);
      ("backward-euler", Engine.Tran.Backward_euler) ]

let ablation_tpw () =
  Printf.printf
    "\n# baseline: trajectory-piecewise (TPW) snapshot database (ref. [1] of the paper)\n";
  let e = Lazy.force experiment in
  let o = e.outcome in
  let tpw =
    Tft.Tpw.build ~mna:o.Tft_rvf.Pipeline.mna
      o.Tft_rvf.Pipeline.training_run.Engine.Tran.snapshots
  in
  let wave = Circuits.Buffer.bit_wave () in
  let u = Circuit.Netlist.wave_to_source wave in
  let t_stop = 32.0 /. 2.5e9 in
  let dt = t_stop /. 2560.0 in
  let w_ref = e.v_rvf.Tft_rvf.Report.reference in
  let t0 = Clock.now () in
  let w_tpw = Tft.Tpw.simulate tpw ~u ~t_stop ~dt in
  let t_tpw = Clock.elapsed t0 in
  record "ablation.tpw_sim_seconds" t_tpw;
  Printf.printf "%-10s %-12s %-12s %-14s\n" "model" "NRMSE [dB]" "sim time" "runtime data";
  Printf.printf "%-10s %-12.1f %-12s %-14s\n" "TPW"
    (Signal.Metrics.db20 (Signal.Waveform.nrmse w_ref w_tpw))
    (Printf.sprintf "%.3f s" t_tpw)
    (Printf.sprintf "%.0f kB" (float_of_int (Tft.Tpw.size_in_floats tpw) *. 8.0 /. 1024.0));
  Printf.printf "%-10s %-12.1f %-12s %-14s\n" "RVF"
    e.v_rvf.Tft_rvf.Report.nrmse_db
    (Printf.sprintf "%.4f s" e.v_rvf.Tft_rvf.Report.model_seconds)
    (Printf.sprintf "%d-state analytical ODE" (Hammerstein.Hmodel.order o.Tft_rvf.Pipeline.model))

let ablation_eps () =
  Printf.printf
    "\n# ablation: error bound eps (the paper's complexity/accuracy trade-off)\n";
  Printf.printf "%-10s %-12s %-12s %-14s %-10s\n" "eps" "freq poles" "state poles"
    "surface rms" "fit time";
  let e = Lazy.force experiment in
  let ds = Tft_rvf.Pipeline.(e.outcome.dataset) in
  List.iter
    (fun eps ->
      let config =
        {
          Rvf.default_config with
          Rvf.eps;
          max_freq_poles = 16;
          max_state_poles = 24;
          min_imag_fraction = 0.03;
        }
      in
      let t0 = Clock.now () in
      let r = Rvf.extract ~config ~dataset:ds ~input:0 ~output:0 () in
      let dt = Clock.elapsed t0 in
      let se =
        Tft_rvf.Report.surface_error ~model:r.Rvf.model ~dataset:ds ~input:0
          ~output:0
      in
      Printf.printf "%-10.0e %-12d %-12d %-14s %-10s\n" eps
        r.Rvf.freq_info.Vf.Vfit.pole_count r.Rvf.residue_info.Vf.Vfit.pole_count
        (Printf.sprintf "%.1f dB" se.Tft_rvf.Report.rms_db)
        (Printf.sprintf "%.2f s" dt))
    [ 3e-2; 1e-2; 3e-3; 1e-3 ]

let ablation_adaptive () =
  Printf.printf
    "\n# ablation: fixed vs adaptive-step reference transient (Fig. 9 input)\n";
  let mna = Circuits.Buffer.mna ~input_wave:(Circuits.Buffer.bit_wave ()) () in
  let t_stop = 32.0 /. 2.5e9 in
  let t0 = Clock.now () in
  let fixed = Engine.Tran.run mna ~t_stop ~dt:(t_stop /. 2560.0) in
  let t_fixed = Clock.elapsed t0 in
  let t1 = Clock.now () in
  let adap = Engine.Tran.run_adaptive mna ~t_stop ~dt:(t_stop /. 2560.0) ~reltol:1e-3 in
  let t_adap = Clock.elapsed t1 in
  let grid = Signal.Grid.linspace (t_stop /. 1000.0) (0.999 *. t_stop) 512 in
  let wf = Signal.Waveform.resample (Engine.Tran.output_waveform fixed 0) grid in
  let wa = Signal.Waveform.resample (Engine.Tran.output_waveform adap 0) grid in
  Printf.printf "  fixed: %d steps, %.3f s | adaptive: %d steps, %.3f s | nrmse %.1f dB\n"
    (Array.length fixed.Engine.Tran.times) t_fixed
    (Array.length adap.Engine.Tran.times) t_adap
    (Signal.Metrics.db20 (Signal.Waveform.nrmse wf wa))

let ablation () =
  Printf.printf "## Ablations of DESIGN.md design choices\n";
  ablation_eps ();
  ablation_adaptive ();
  ablation_relax ();
  ablation_samples ();
  ablation_split ();
  ablation_training_freq ();
  ablation_integration ();
  ablation_tpw ()

(* ------------------------------------------------------------------ *)
(* Bechamel kernel micro-benchmarks                                     *)

let kernels () =
  let open Bechamel in
  Printf.printf "## Bechamel kernels (monotonic clock, ns/run)\n%!";
  let e = Lazy.force experiment in
  let model = Tft_rvf.Pipeline.(e.outcome.model) in
  let mna = Circuits.Buffer.mna ~input_wave:(Circuits.Buffer.bit_wave ()) () in
  let dc = Engine.Dc.solve mna in
  let ev = Engine.Mna.eval mna ~time:0.0 dc in
  let g, c =
    match (ev.Engine.Mna.g_mat, ev.Engine.Mna.c_mat) with
    | Some g, Some c -> (g, c)
    | _, _ -> assert false
  in
  let b = Engine.Mna.b_matrix mna and d = Engine.Mna.d_matrix mna in
  let u = Circuit.Netlist.wave_to_source (Circuits.Buffer.bit_wave ()) in
  let t_bit = 32.0 /. 2.5e9 in
  let tests =
    [
      Test.make ~name:"spice_transient_32bits"
        (Staged.stage (fun () ->
             ignore (Engine.Tran.run mna ~t_stop:t_bit ~dt:(t_bit /. 640.0))));
      Test.make ~name:"hammerstein_sim_32bits"
        (Staged.stage (fun () ->
             ignore (Hammerstein.Hmodel.simulate model ~u ~t_stop:t_bit
                       ~dt:(t_bit /. 640.0))));
      Test.make ~name:"mna_eval_jacobians"
        (Staged.stage (fun () -> ignore (Engine.Mna.eval mna ~time:0.0 dc)));
      Test.make ~name:"tft_pencil_solve"
        (Staged.stage (fun () ->
             ignore
               (Engine.Ac.transfer_at ~g ~c ~b ~d ~s:(Signal.Grid.s_of_hz 1e9))));
      Test.make ~name:"model_transfer_eval"
        (Staged.stage (fun () ->
             ignore
               (Hammerstein.Hmodel.transfer model ~x:0.9
                  ~s:(Signal.Grid.s_of_hz 1e9))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              record (Printf.sprintf "kernels.%s_ns" name) est;
              Printf.printf "  %-28s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Domain-parallel TFT construction: wall-clock speedup + bit-identity  *)

(* the parallel path promises the very same bit pattern, so compare the
   raw float bits: [<>] would report a NaN as differing from an
   identical NaN, and would miss a 0.0 vs -0.0 flip *)
let float_bits_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let complex_bits_equal (a : Complex.t) (b : Complex.t) =
  float_bits_equal a.Complex.re b.Complex.re
  && float_bits_equal a.Complex.im b.Complex.im

let cmat_equal a b =
  Linalg.Cmat.rows a = Linalg.Cmat.rows b
  && Linalg.Cmat.cols a = Linalg.Cmat.cols b
  &&
  let ok = ref true in
  for i = 0 to Linalg.Cmat.rows a - 1 do
    for j = 0 to Linalg.Cmat.cols a - 1 do
      if not (complex_bits_equal (Linalg.Cmat.get a i j) (Linalg.Cmat.get b i j))
      then ok := false
    done
  done;
  !ok

let dataset_equal (a : Tft.Dataset.t) (b : Tft.Dataset.t) =
  Array.length a.Tft.Dataset.samples = Array.length b.Tft.Dataset.samples
  && Array.for_all2
       (fun (sa : Tft.Dataset.sample) (sb : Tft.Dataset.sample) ->
         float_bits_equal sa.Tft.Dataset.time sb.Tft.Dataset.time
         && Array.length sa.Tft.Dataset.x = Array.length sb.Tft.Dataset.x
         && Array.for_all2 float_bits_equal sa.Tft.Dataset.x sb.Tft.Dataset.x
         && cmat_equal sa.Tft.Dataset.h0 sb.Tft.Dataset.h0
         && Array.length sa.Tft.Dataset.h = Array.length sb.Tft.Dataset.h
         && Array.for_all2 cmat_equal sa.Tft.Dataset.h sb.Tft.Dataset.h)
       a.Tft.Dataset.samples b.Tft.Dataset.samples

let parallel () =
  let snapshots = if !quick then 12 else 100 in
  let points = if !quick then 8 else 40 in
  let reps = if !quick then 1 else 3 in
  Printf.printf
    "## Domain-parallel TFT dataset construction (%d snapshots x %d freqs, \
     wall-clock best of %d)\n"
    snapshots points reps;
  let base = Tft_rvf.Pipeline.buffer_config ~snapshots () in
  let config =
    {
      base with
      Tft_rvf.Pipeline.freqs_hz =
        Signal.Grid.frequencies_hz ~f_min:1.0 ~f_max:1e10 ~points;
    }
  in
  let netlist = Circuits.Buffer.netlist () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Buffer.input_name ]
      ~outputs:[ Circuits.Buffer.output ]
      (Circuit.Netlist.make
         (List.map
            (fun (c : Circuit.Netlist.component) ->
              if c.Circuit.Netlist.name = Circuits.Buffer.input_name then
                Circuit.Netlist.vsource ~name:c.Circuit.Netlist.name "in" "0"
                  config.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.wave
              else c)
            netlist.Circuit.Netlist.components))
  in
  let opts =
    {
      Engine.Tran.default_opts with
      Engine.Tran.snapshot_every =
        config.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.snapshot_every;
    }
  in
  let run =
    Engine.Tran.run ~opts mna
      ~t_stop:config.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.t_stop
      ~dt:config.Tft_rvf.Pipeline.training.Tft_rvf.Pipeline.dt
  in
  let estimator = Tft.Estimator.make () in
  let build ?pool () =
    Tft.Dataset.of_snapshots ?pool ~mna ~estimator
      ~freqs_hz:config.Tft_rvf.Pipeline.freqs_hz run.Engine.Tran.snapshots
  in
  let best f =
    let t = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t0 = Clock.now () in
      last := Some (f ());
      t := Float.min !t (Clock.elapsed t0)
    done;
    (Option.get !last, !t)
  in
  let ds_seq, t_seq = best (fun () -> build ()) in
  record "parallel.sequential_seconds" t_seq;
  Printf.printf "%-24s %10.4f s\n" "sequential" t_seq;
  List.iter
    (fun d ->
      (* warm-up (domain spawn + first run populating the pool's cached
         workspaces) is reported separately; the steady-state numbers
         time only warm-pool runs, which is what a pipeline run that
         reuses one pool across stages actually pays *)
      let t0 = Clock.now () in
      let pool = Exec.create ~domains:d () in
      let ds_first = build ~pool () in
      let t_warm = Clock.elapsed t0 in
      Fun.protect
        ~finally:(fun () -> Exec.shutdown pool)
        (fun () ->
          let ds_par, t_par = best (fun () -> build ~pool ()) in
          let identical =
            dataset_equal ds_seq ds_par && dataset_equal ds_seq ds_first
          in
          if not identical then bench_failed := true;
          record (Printf.sprintf "parallel.domains%d_warmup_seconds" d) t_warm;
          record (Printf.sprintf "parallel.domains%d_seconds" d) t_par;
          record (Printf.sprintf "parallel.domains%d_speedup" d) (t_seq /. t_par);
          record
            (Printf.sprintf "parallel.domains%d_bit_identical" d)
            (if identical then 1.0 else 0.0);
          Printf.printf
            "%-24s %10.4f s   speedup %5.2fx   warmup %7.4f s   bit-identical \
             %b\n"
            (Printf.sprintf "pool (domains = %d)" d)
            t_par (t_seq /. t_par) t_warm identical))
    (List.sort_uniq compare [ 2; Stdlib.max 2 !domains ]);
  (* saturation case: a pencil large enough (48-stage RC ladder, ~50
     unknowns) and enough independent snapshots that 8 domains all get
     multi-millisecond chunks — on a wide host this is the case that
     should approach linear scaling; on a 1-core host it honestly
     reports < 1x *)
  let stages = if !quick then 16 else 48 in
  let sat_snapshots = if !quick then 8 else 64 in
  let sat_points = if !quick then 8 else 48 in
  Printf.printf
    "## Saturation: %d-stage RC ladder (%d snapshots x %d freqs)\n" stages
    sat_snapshots sat_points;
  let sat_wave =
    Circuit.Netlist.Sine { offset = 0.0; ampl = 1.0; freq = 1e5; phase = 0.0 }
  in
  let sat_mna =
    Engine.Mna.build
      ~inputs:[ Circuits.Library.rc_input ]
      ~outputs:[ Circuits.Library.rc_output ]
      (Circuits.Library.rc_ladder ~stages ~input_wave:sat_wave ())
  in
  let sat_every = 4 in
  let sat_dt = 1e-5 /. float_of_int (sat_snapshots * sat_every) in
  let sat_run =
    Engine.Tran.run
      ~opts:{ Engine.Tran.default_opts with Engine.Tran.snapshot_every = sat_every }
      sat_mna ~t_stop:1e-5 ~dt:sat_dt
  in
  let sat_freqs =
    Signal.Grid.frequencies_hz ~f_min:1e3 ~f_max:1e8 ~points:sat_points
  in
  let sat_estimator = Tft.Estimator.make () in
  let sat_build ?pool () =
    Tft.Dataset.of_snapshots ?pool ~mna:sat_mna ~estimator:sat_estimator
      ~freqs_hz:sat_freqs sat_run.Engine.Tran.snapshots
  in
  let sat_seq, t_sat_seq = best (fun () -> sat_build ()) in
  record "parallel.saturation_sequential_seconds" t_sat_seq;
  Printf.printf "%-24s %10.4f s\n" "sequential" t_sat_seq;
  List.iter
    (fun d ->
      let pool = Exec.create ~domains:d () in
      ignore (sat_build ~pool ());
      Fun.protect
        ~finally:(fun () -> Exec.shutdown pool)
        (fun () ->
          let ds_par, t_par = best (fun () -> sat_build ~pool ()) in
          let identical = dataset_equal sat_seq ds_par in
          if not identical then bench_failed := true;
          record
            (Printf.sprintf "parallel.saturation_domains%d_speedup" d)
            (t_sat_seq /. t_par);
          record
            (Printf.sprintf "parallel.saturation_domains%d_bit_identical" d)
            (if identical then 1.0 else 0.0);
          Printf.printf "%-24s %10.4f s   speedup %5.2fx   bit-identical %b\n"
            (Printf.sprintf "pool (domains = %d)" d)
            t_par (t_sat_seq /. t_par) identical))
    [ 2; 4; 8 ];
  Printf.printf
    "# host: %d core(s) available (Domain.recommended_domain_count)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Guard-layer overhead: guarded vs unguarded extraction                *)

let guard_overhead () =
  let snapshots = if !quick then 12 else 100 in
  Printf.printf
    "## Guard-layer overhead (buffer extraction, %d snapshots)\n%!" snapshots;
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots () in
  let netlist = Circuits.Buffer.netlist () in
  let extract ?guard () =
    let t0 = Clock.now () in
    let o =
      Tft_rvf.Pipeline.extract ?guard ~config ~netlist
        ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
    in
    (o, Clock.elapsed t0)
  in
  let o_plain, t_plain = extract () in
  let o_guard, t_guard = extract ~guard:Guard.default () in
  (* the guard contract: a clean guarded run is bit-for-bit the
     unguarded one — checks are read-only until something trips *)
  let identical =
    String.equal
      (Hammerstein.Hmodel.equations o_plain.Tft_rvf.Pipeline.model)
      (Hammerstein.Hmodel.equations o_guard.Tft_rvf.Pipeline.model)
  in
  if not identical then bench_failed := true;
  let ratio = t_guard /. Float.max t_plain 1e-9 in
  record "guard.unguarded_seconds" t_plain;
  record "guard.guarded_seconds" t_guard;
  record "guard.overhead_ratio" ratio;
  record "guard.bit_identical" (if identical then 1.0 else 0.0);
  Printf.printf "%-24s %10.4f s\n" "unguarded" t_plain;
  Printf.printf "%-24s %10.4f s   overhead %5.2fx   bit-identical %b\n"
    "guarded" t_guard ratio identical

(* ------------------------------------------------------------------ *)
(* Resilience overhead: cancellation probes, checkpoint stores, resume  *)

let resilience () =
  let snapshots = if !quick then 12 else 100 in
  Printf.printf
    "## Resilience overhead (buffer extraction, %d snapshots)\n%!" snapshots;
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots () in
  let netlist = Circuits.Buffer.netlist () in
  let extract ?cancel ?checkpoint_dir () =
    let t0 = Clock.now () in
    let o =
      Tft_rvf.Pipeline.extract ?cancel ?checkpoint_dir ~config ~netlist
        ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
    in
    (o, Clock.elapsed t0)
  in
  let o_plain, t_plain = extract () in
  (* a live token with no deadline armed: every probe is one atomic
     load — the cost of being cancellable at all *)
  let o_token, t_token = extract ~cancel:(Cancel.create ()) () in
  let dir = Filename.temp_file "bench_resilience" ".ckptdir" in
  Sys.remove dir;
  (* cold checkpointed run: full compute + three artifact stores *)
  let o_cold, t_cold = extract ~checkpoint_dir:dir () in
  (* warm resume: every stage settled on disk, zero recompute *)
  let o_resume, t_resume = extract ~checkpoint_dir:dir () in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  let eq (o : Tft_rvf.Pipeline.outcome) =
    Hammerstein.Hmodel.equations o.Tft_rvf.Pipeline.model
  in
  let identical =
    let r = eq o_plain in
    String.equal r (eq o_token)
    && String.equal r (eq o_cold)
    && String.equal r (eq o_resume)
  in
  if not identical then bench_failed := true;
  let safe = Float.max t_plain 1e-9 in
  record "resilience.clean_seconds" t_plain;
  record "resilience.token_seconds" t_token;
  record "resilience.token_overhead_ratio" (t_token /. safe);
  record "resilience.checkpointed_seconds" t_cold;
  record "resilience.checkpoint_overhead_ratio" (t_cold /. safe);
  record "resilience.resume_seconds" t_resume;
  record "resilience.resume_speedup" (t_plain /. Float.max t_resume 1e-9);
  record "resilience.bit_identical" (if identical then 1.0 else 0.0);
  Printf.printf "%-24s %10.4f s\n" "clean" t_plain;
  Printf.printf "%-24s %10.4f s   overhead %5.2fx\n" "cancel token" t_token
    (t_token /. safe);
  Printf.printf "%-24s %10.4f s   overhead %5.2fx\n" "checkpointed (cold)"
    t_cold (t_cold /. safe);
  Printf.printf "%-24s %10.4f s   speedup  %5.2fx   bit-identical %b\n"
    "resume (warm)" t_resume
    (t_plain /. Float.max t_resume 1e-9)
    identical

(* ------------------------------------------------------------------ *)
(* Analytical oracle battery: correctness wall-clock as a perf entry    *)

let oracle_battery () =
  Printf.printf "## Oracle battery (%s mode)\n%!"
    (if !quick then "quick" else "full");
  let t0 = Clock.now () in
  let verdicts = Oracle.Battery.run ~quick:!quick () in
  let seconds = Clock.elapsed t0 in
  print_string (Oracle.Battery.summary verdicts);
  if not (Oracle.Battery.all_passed verdicts) then bench_failed := true;
  record "oracle.battery_seconds" seconds;
  record "oracle.passed"
    (if Oracle.Battery.all_passed verdicts then 1.0 else 0.0);
  Printf.printf "%-24s %10.4f s\n" "battery total" seconds

(* ------------------------------------------------------------------ *)
(* Sparse tier: CSC assembly / pencil factorization / rational-Krylov
   sweep scaling on uniform RC ladders, against the dense AC sweep.
   The dense side is measured directly at the small sizes; at the
   largest it is estimated from two probe frequencies scaled by the
   grid size (a full dense sweep there would dominate the bench run).
   The probe points double as a sparse-vs-dense parity check.          *)

let sparse_tier () =
  let sizes = if !quick then [ 64; 512 ] else [ 64; 512; 2048 ] in
  let points = if !quick then 16 else 48 in
  let dense_probe_cap = 512 in
  Printf.printf "## Sparse tier (RC ladders, %d-point sweeps)\n%!" points;
  Printf.printf "%8s %12s %12s %12s %14s %10s\n" "stages" "assemble"
    "factor" "sweep" "dense sweep" "speedup";
  let freqs =
    Array.init points (fun i ->
        1e2 *. ((1e8 /. 1e2) ** (float_of_int i /. float_of_int (points - 1))))
  in
  List.iter
    (fun stages ->
      let netlist = Circuits.Library.rc_ladder_n ~stages () in
      let mna =
        Engine.Mna.build ~inputs:[ "Vin" ]
          ~outputs:[ Circuits.Library.rc_ladder_output stages ]
          netlist
      in
      (* pattern compile + DC solve + one sparse linearization *)
      let t0 = Clock.now () in
      let ctx = Engine.Mna.sparse_ctx mna in
      let at = Engine.Dc.solve ~backend:Engine.Mna.Sparse mna in
      let sev = Engine.Mna.eval_sparse mna ctx ~time:0.0 at in
      let t_assemble = Clock.elapsed t0 in
      let g = sev.Engine.Mna.sg and c = sev.Engine.Mna.sc in
      (* one complex pencil factorization at a mid-band shift *)
      let pat = Engine.Mna.sparse_pattern ctx in
      let pencil = Linalg.Sp.ccreate pat in
      let s_mid = { Complex.re = 0.0; im = 2.0 *. Float.pi *. 1e5 } in
      let t0 = Clock.now () in
      Linalg.Sp.pencil_into pencil g c s_mid;
      let lu = Linalg.Spclu.factor pencil in
      let t_factor = Clock.elapsed t0 in
      ignore (Linalg.Spclu.lu_nnz lu);
      (* full rational-Krylov sweep over the grid *)
      let ws =
        Engine.Ratkrylov.make_ws ~pat ~b:(Engine.Mna.b_matrix mna)
          ~d:(Engine.Mna.d_matrix mna)
      in
      let ss =
        Array.map (fun f -> { Complex.re = 0.0; im = 2.0 *. Float.pi *. f }) freqs
      in
      let t0 = Clock.now () in
      let h, stats = Engine.Ratkrylov.sweep ws ~g ~c ~ss in
      let t_sweep = Clock.elapsed t0 in
      let sparse_h = Array.map (fun hm -> Linalg.Cmat.get hm 0 0) h in
      (* dense comparison: full sweep at small sizes, two probe points
         scaled by grid size at the large one *)
      let probes, estimated =
        if stages <= dense_probe_cap then (freqs, false)
        else ([| freqs.(0); freqs.(points - 1) |], true)
      in
      let t0 = Clock.now () in
      let dense_h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:probes in
      let t_probe = Clock.elapsed t0 in
      let t_dense =
        if estimated then
          t_probe /. float_of_int (Array.length probes) *. float_of_int points
        else t_probe
      in
      (* parity at the dense points, relative to the trajectory scale *)
      let scale =
        Array.fold_left (fun a z -> Float.max a (Complex.norm z)) 0.0 dense_h
      in
      let worst = ref 0.0 in
      Array.iteri
        (fun i f ->
          let j =
            if estimated then if i = 0 then 0 else points - 1
            else i
          in
          ignore f;
          let d = Complex.norm (Complex.sub dense_h.(i) sparse_h.(j)) in
          worst := Float.max !worst (d /. scale))
        probes;
      if !worst > 1e-8 then begin
        Printf.printf "  PARITY FAIL at %d stages: rel err %.3e\n%!" stages
          !worst;
        bench_failed := true
      end;
      let speedup = t_dense /. Float.max t_sweep 1e-9 in
      record (Printf.sprintf "sparse.assemble_%d_seconds" stages) t_assemble;
      record (Printf.sprintf "sparse.factor_%d_seconds" stages) t_factor;
      record (Printf.sprintf "sparse.sweep_%d_seconds" stages) t_sweep;
      record (Printf.sprintf "sparse.dense_sweep_%d_seconds" stages) t_dense;
      record (Printf.sprintf "sparse.speedup_%d" stages) speedup;
      record (Printf.sprintf "sparse.parity_rel_err_%d" stages) !worst;
      record
        (Printf.sprintf "sparse.krylov_shifts_%d" stages)
        (float_of_int stats.Engine.Ratkrylov.shifts_used);
      (* the acceptance claim: at the flagship size the sparse sweep
         beats the (estimated) dense sweep by >= 10x *)
      if stages >= 2048 && speedup < 10.0 then begin
        Printf.printf "  SPEEDUP FAIL at %d stages: %.1fx < 10x\n%!" stages
          speedup;
        bench_failed := true
      end;
      Printf.printf "%8d %10.4f s %10.4f s %10.4f s %10.4f s%s %9.1fx\n%!"
        stages t_assemble t_factor t_sweep t_dense
        (if estimated then "*" else " ")
        speedup)
    sizes;
  Printf.printf
    "(* = dense sweep estimated from %d probe factorizations; parity \
     checked at the probe points)\n"
    2

(* ------------------------------------------------------------------ *)
(* machine-readable perf trajectory: --json serialization + compare     *)

let write_bench_json path targets =
  (* per-stage self times from the traced shared extraction, when a
     target (table1, figs) forced it in this run *)
  if Lazy.is_val tracer then
    List.iter
      (fun (a : Trace.agg) ->
        record
          (Printf.sprintf "trace.%s.self_seconds" a.Trace.agg_name)
          a.Trace.agg_self)
      (Trace.aggregate (Lazy.force tracer));
  let tm = Unix.gmtime (Unix.time ()) in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"kind\": \"bench\",\n";
  Printf.bprintf buf "  \"date\": \"%04d-%02d-%02d\",\n" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday;
  Printf.bprintf buf "  \"quick\": %b,\n" !quick;
  (* host shape (core count, OS, word size): timing ratios only mean
     something between runs on comparable machines, so `compare` warns
     when the shapes differ *)
  Printf.bprintf buf "  \"host\": %s,\n"
    (Minijson.emit (Obs_bundle.host_json ()));
  Printf.bprintf buf "  \"targets\": [%s],\n"
    (String.concat ", "
       (List.map (fun t -> "\"" ^ Minijson.escape t ^ "\"") targets));
  Buffer.add_string buf "  \"entries\": {";
  let sep = ref "" in
  List.iter
    (fun (name, v) ->
      Printf.bprintf buf "%s\n    \"%s\": %s" !sep (Minijson.escape name)
        (Minijson.float v);
      sep := ",")
    (List.rev !json_entries);
  Buffer.add_string buf "\n  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "# bench json written to %s\n%!" path

(* regression gate: every entry whose name marks it as a timing
   (_seconds / _ns suffix) present in both files is compared as a ratio;
   anything slower than --threshold (default 1.5x) fails the run.
   Pairs where both sides sit under [noise_floor_seconds] are reported
   but never flagged: a few milliseconds of pool spawn or file IO can
   swing well past any ratio threshold on a loaded host without meaning
   anything. A baseline under the floor cannot support a meaningful
   ratio either (it divides by noise), so the denominator is clamped at
   the floor — an 8 ms baseline drifting to 24 ms on a loaded host
   passes, while 8 ms becoming seconds still fails. *)
let timing_entry name =
  let has_suffix s =
    let ls = String.length s and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = s
  in
  has_suffix "_seconds" || has_suffix "_ns"

let noise_floor_seconds = 0.02

let entry_seconds name v =
  let ls = String.length name in
  if ls >= 3 && String.sub name (ls - 3) 3 = "_ns" then v *. 1e-9 else v

let compare_benches ~threshold old_path new_path =
  let load what path =
    let root =
      try Minijson.parse_file path with
      | Minijson.Parse_error msg | Sys_error msg ->
          Printf.eprintf "compare: %s (%s): %s\n" path what msg;
          exit 2
    in
    if Minijson.num_field root "schema_version" <> Some 1.0 then begin
      Printf.eprintf "compare: %s (%s): unsupported schema_version\n" path what;
      exit 2
    end;
    root
  in
  let old_root = load "baseline" old_path in
  let new_root = load "candidate" new_path in
  (* cross-host comparisons are advisory, not an error: warn, then
     compare anyway so local trends stay visible *)
  (match
     (Minijson.obj_field old_root "host", Minijson.obj_field new_root "host")
   with
  | None, _ ->
      Printf.eprintf
        "compare: warning: baseline %s carries no host metadata; ratios may \
         mix machine shapes\n"
        old_path
  | _, None ->
      Printf.eprintf
        "compare: warning: candidate %s carries no host metadata; ratios may \
         mix machine shapes\n"
        new_path
  | Some oh, Some nh ->
      if Minijson.emit (Minijson.Obj oh) <> Minijson.emit (Minijson.Obj nh)
      then
        Printf.eprintf
          "compare: warning: baseline host %s differs from candidate host %s; \
           timing ratios across machine shapes are advisory only\n"
          (Minijson.emit (Minijson.Obj oh))
          (Minijson.emit (Minijson.Obj nh)));
  let entries root =
    Option.value ~default:[] (Minijson.obj_field root "entries")
  in
  let old_entries = entries old_root in
  let new_entries = entries new_root in
  let compared = ref 0 and regressions = ref 0 in
  List.iter
    (fun (name, v) ->
      match Minijson.as_num v with
      | Some nv when timing_entry name -> (
          match
            Option.bind (List.assoc_opt name old_entries) Minijson.as_num
          with
          | Some ov when ov > 0.0 ->
              incr compared;
              let ratio = nv /. ov in
              (* the flagging ratio divides by at least the noise
                 floor: a sub-floor baseline is noise, not signal *)
              let gate_ratio =
                entry_seconds name nv
                /. Float.max (entry_seconds name ov) noise_floor_seconds
              in
              if gate_ratio > threshold then begin
                incr regressions;
                Printf.printf "REGRESSION %-44s %11.4g -> %11.4g  (%.2fx > %.2fx)\n"
                  name ov nv ratio threshold
              end
              else
                Printf.printf "ok         %-44s %11.4g -> %11.4g  (%.2fx%s)\n"
                  name ov nv ratio
                  (if ratio > threshold then ", under noise floor" else "")
          | _ -> Printf.printf "new        %-44s %11.4g  (no baseline)\n" name nv)
      | _ -> ())
    new_entries;
  Printf.printf
    "# compared %d timing entr%s against %s (threshold %.2fx): %d regression(s)\n"
    !compared
    (if !compared = 1 then "y" else "ies")
    old_path threshold !regressions;
  if !regressions > 0 then exit 1

let all_targets =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("table1", table1);
    ("ablation", ablation);
    ("kernels", kernels);
    ("parallel", parallel);
    ("guard", guard_overhead);
    ("resilience", resilience);
    ("oracle", oracle_battery);
    ("sparse", sparse_tier);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse_flags = function
    | "--full" :: rest ->
        full_grids := true;
        parse_flags rest
    | "--quick" :: rest ->
        quick := true;
        parse_flags rest
    | "--domains" :: n :: rest ->
        domains := int_of_string n;
        parse_flags rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse_flags rest
    | "--threshold" :: r :: rest ->
        threshold := float_of_string r;
        parse_flags rest
    | a :: rest -> a :: parse_flags rest
    | [] -> []
  in
  let args = parse_flags args in
  match args with
  | "compare" :: rest -> (
      match rest with
      | [ old_path; new_path ] ->
          compare_benches ~threshold:!threshold old_path new_path
      | _ ->
          prerr_endline
            "usage: bench compare OLD.json NEW.json [--threshold RATIO]";
          exit 2)
  | args ->
      let targets =
        match args with
        | [] -> List.map fst all_targets
        | names -> names
      in
      List.iter
        (fun name ->
          match List.assoc_opt name all_targets with
          | Some f ->
              f ();
              print_newline ()
          | None ->
              Printf.eprintf "unknown bench target %S (available: %s)\n" name
                (String.concat ", " (List.map fst all_targets));
              exit 1)
        targets;
      Option.iter (fun p -> write_bench_json p targets) !json_path;
      if !bench_failed then exit 1
