(* The sparse tier's differential battery: every sparse-backend layer is
   checked against its dense twin on randomized circuits — CSC assembly
   against the dense Jacobians entrywise, sparse LU against Lu/Clu,
   rational-Krylov sweeps against the dense AC pencil, and the full
   pipeline across both backends. Properties are driven by Oracle.Gen's
   {seed; size} records, so failures shrink toward small circuits and
   print a reproducible case; QCHECK_SEED reproduces a whole run. *)

module Sp = Linalg.Sp
module Mna = Engine.Mna

let check_close tol = Alcotest.(check (float tol))

(* deterministic per-case test state: perturb the DC operating point so
   nonlinear elements are exercised off their bias point *)
let perturbed_state st mna at =
  let n = Mna.size mna in
  Array.init n (fun k -> at.(k) +. (0.2 *. (Random.State.float st 1.0 -. 0.5)))

let mna_of (netlist, input, output) =
  Mna.build ~inputs:[ input ] ~outputs:[ output ] netlist

(* the sparse tier's fitting band for random mesh elements
   (r ∈ [1e2, 1e4], c ∈ [1e-10, 1e-8] ⇒ ω ∈ ~[1e4, 1e8] rad/s) *)
let mesh_freqs ~points =
  Signal.Grid.frequencies_hz ~f_min:1e2 ~f_max:1e9 ~points

(* ---------------- assembly: CSC refill = dense Jacobians ---------------- *)

(* the compiled pattern accumulates stamps in the same order as the
   dense eval, so agreement is exact — and every dense entry outside
   the pattern must be exactly zero *)
let prop_assembly_parity =
  QCheck.Test.make ~count:50 ~name:"sparse assembly equals dense jacobians"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let st = Oracle.Gen.rand_state s in
      let mna = mna_of (Oracle.Gen.rc_grid s) in
      let ctx = Mna.sparse_ctx mna in
      let at = Engine.Dc.solve mna in
      let state = perturbed_state st mna at in
      let ev = Mna.eval mna ~time:0.0 state in
      let sev = Mna.eval_sparse mna ctx ~time:0.0 state in
      let g = Option.get ev.Mna.g_mat and c = Option.get ev.Mna.c_mat in
      let n = Mna.size mna in
      let worst = ref 0.0 and site = ref (-1, -1) in
      for r = 0 to n - 1 do
        for cl = 0 to n - 1 do
          let dg = Float.abs (Sp.get sev.Mna.sg r cl -. Linalg.Mat.get g r cl)
          and dc = Float.abs (Sp.get sev.Mna.sc r cl -. Linalg.Mat.get c r cl) in
          let d = Float.max dg dc in
          if d > !worst then begin
            worst := d;
            site := (r, cl)
          end
        done
      done;
      (* residual pieces ride the same stamps: compare them too *)
      for k = 0 to n - 1 do
        worst := Float.max !worst (Float.abs (sev.Mna.si_vec.(k) -. ev.Mna.i_vec.(k)));
        worst := Float.max !worst (Float.abs (sev.Mna.sq_vec.(k) -. ev.Mna.q_vec.(k)))
      done;
      if !worst = 0.0 then true
      else
        let r, cl = !site in
        QCheck.Test.fail_reportf "assembly mismatch %.3e at (%d,%d), n=%d"
          !worst r cl n)

(* ---------------- sparse LU vs dense LU ---------------- *)

let rel_err_vec x y =
  let scale =
    Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e-300 y
  in
  let worst = ref 0.0 in
  Array.iteri
    (fun k v -> worst := Float.max !worst (Float.abs (v -. y.(k)) /. scale))
    x;
  !worst

let prop_splu_vs_lu =
  QCheck.Test.make ~count:50 ~name:"sparse real lu matches dense lu"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let st = Oracle.Gen.rand_state s in
      let mna = mna_of (Oracle.Gen.rc_mesh s) in
      let ctx = Mna.sparse_ctx mna in
      let at = Engine.Dc.solve mna in
      let sev = Mna.eval_sparse mna ctx ~time:0.0 at in
      let ev = Mna.eval mna ~time:0.0 at in
      let g = Option.get ev.Mna.g_mat in
      let n = Mna.size mna in
      let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let xs = Linalg.Splu.solve (Linalg.Splu.factor sev.Mna.sg) rhs in
      let xd = Linalg.Lu.solve (Linalg.Lu.factor (Linalg.Mat.copy g)) rhs in
      let err = rel_err_vec xs xd in
      if err <= 1e-12 then true
      else QCheck.Test.fail_reportf "splu vs lu rel err %.3e (n=%d)" err n)

let prop_spclu_vs_clu =
  QCheck.Test.make ~count:50 ~name:"sparse complex lu matches dense clu"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let st = Oracle.Gen.rand_state s in
      let mna = mna_of (Oracle.Gen.rc_mesh s) in
      let ctx = Mna.sparse_ctx mna in
      let at = Engine.Dc.solve mna in
      let sev = Mna.eval_sparse mna ctx ~time:0.0 at in
      let ev = Mna.eval mna ~time:0.0 at in
      let g = Option.get ev.Mna.g_mat and c = Option.get ev.Mna.c_mat in
      let n = Mna.size mna in
      let sv =
        { Complex.re = 0.0; im = 2.0 *. Float.pi *. (10.0 ** (4.0 +. (4.0 *. Random.State.float st 1.0))) }
      in
      (* sparse pencil over the shared pattern *)
      let pencil = Sp.ccreate (Mna.sparse_pattern ctx) in
      Sp.pencil_into pencil sev.Mna.sg sev.Mna.sc sv;
      let rhs =
        Array.init n (fun _ ->
            {
              Complex.re = Random.State.float st 2.0 -. 1.0;
              im = Random.State.float st 2.0 -. 1.0;
            })
      in
      let xs = Linalg.Spclu.solve (Linalg.Spclu.factor pencil) rhs in
      (* dense pencil from the dense Jacobians *)
      let dense =
        Linalg.Cmat.init n n (fun r cl ->
            Complex.add
              { Complex.re = Linalg.Mat.get g r cl; im = 0.0 }
              (Complex.mul sv { Complex.re = Linalg.Mat.get c r cl; im = 0.0 }))
      in
      let xd = Linalg.Clu.solve (Linalg.Clu.factor dense) rhs in
      let scale =
        Array.fold_left (fun a z -> Float.max a (Complex.norm z)) 1e-300 xd
      in
      let err =
        ref 0.0
      in
      Array.iteri
        (fun k z ->
          err := Float.max !err (Complex.norm (Complex.sub z xd.(k)) /. scale))
        xs;
      if !err <= 1e-12 then true
      else QCheck.Test.fail_reportf "spclu vs clu rel err %.3e (n=%d)" !err n)

(* ---------------- rational Krylov vs dense AC sweep ---------------- *)

let prop_krylov_vs_ac =
  QCheck.Test.make ~count:25 ~name:"rational-krylov sweep matches dense ac"
    (Oracle.Gen.arb ~max_size:3 ())
    (fun s ->
      let ((_, _, _) as case) = Oracle.Gen.rc_mesh s in
      let mna = mna_of case in
      let ctx = Mna.sparse_ctx mna in
      let at = Engine.Dc.solve mna in
      let freqs = mesh_freqs ~points:24 in
      let hd = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
      let sev = Mna.eval_sparse mna ctx ~time:0.0 at in
      let ws =
        Engine.Ratkrylov.make_ws
          ~pat:(Mna.sparse_pattern ctx)
          ~b:(Mna.b_matrix mna) ~d:(Mna.d_matrix mna)
      in
      let ss = Array.map Signal.Grid.s_of_hz freqs in
      let hs, _ =
        Engine.Ratkrylov.sweep ws ~g:sev.Mna.sg ~c:sev.Mna.sc ~ss
      in
      let scale =
        Array.fold_left (fun a z -> Float.max a (Complex.norm z)) 1e-300 hd
      in
      let err = ref 0.0 in
      Array.iteri
        (fun l z ->
          err :=
            Float.max !err
              (Complex.norm (Complex.sub (Linalg.Cmat.get hs.(l) 0 0) z)
              /. scale))
        hd;
      if !err <= 1e-8 then true
      else
        QCheck.Test.fail_reportf "krylov vs ac trajectory rel err %.3e" !err)

(* ---------------- full pipeline, both backends ---------------- *)

(* a linear mesh is inside the model class, so both extractions converge
   to machine-precision fits of transfer trajectories that agree to
   ~1e-10 — the two model surfaces must then coincide far below the RVF
   error bound *)
let prop_pipeline_backend_parity =
  QCheck.Test.make ~count:8 ~name:"pipeline sparse backend matches dense"
    (Oracle.Gen.arb ~max_size:2 ())
    (fun s ->
      let netlist, input, output = Oracle.Gen.rc_mesh s in
      let f_train = 1e2 in
      let t_stop = 1.0 /. f_train in
      let steps = 128 in
      let training =
        {
          Tft_rvf.Pipeline.wave =
            Circuit.Netlist.Sine
              { offset = 0.5; ampl = 0.4; freq = f_train; phase = 0.0 };
          t_stop;
          dt = t_stop /. float_of_int steps;
          snapshot_every = 8;
        }
      in
      let config backend =
        Tft_rvf.Pipeline.default_config_for ~points:16 ~backend ~f_min:1e2
          ~f_max:1e9 ~training ()
      in
      let extract backend =
        Tft_rvf.Pipeline.extract ~config:(config backend) ~netlist ~input
          ~output ()
      in
      let md = extract Mna.Dense and ms = extract Mna.Sparse in
      let ss = Array.map Signal.Grid.s_of_hz (mesh_freqs ~points:12) in
      let scale = ref 1e-300 and err = ref 0.0 in
      Array.iter
        (fun x ->
          Array.iter
            (fun sv ->
              let hd =
                Hammerstein.Hmodel.transfer md.Tft_rvf.Pipeline.model ~x ~s:sv
              in
              let hs =
                Hammerstein.Hmodel.transfer ms.Tft_rvf.Pipeline.model ~x ~s:sv
              in
              scale := Float.max !scale (Complex.norm hd);
              err := Float.max !err (Complex.norm (Complex.sub hs hd)))
            ss)
        [| 0.2; 0.5; 0.8 |];
      if !err /. !scale <= 1e-6 then true
      else
        QCheck.Test.fail_reportf "model surfaces differ by %.3e (rel)"
          (!err /. !scale))

(* ---------------- deterministic edge cases ---------------- *)

(* the 1×1 "mesh" degenerates to a single RC — the smallest pattern the
   compiler and the Krylov sweep must survive *)
let test_single_stage_ladder () =
  let netlist = Circuits.Library.rc_ladder_n ~stages:1 () in
  let mna =
    Mna.build ~inputs:[ "Vin" ]
      ~outputs:[ Circuits.Library.rc_ladder_output 1 ]
      netlist
  in
  let ctx = Mna.sparse_ctx mna in
  let at = Engine.Dc.solve ~backend:Mna.Sparse mna in
  let sev = Mna.eval_sparse mna ctx ~time:0.0 at in
  let ws =
    Engine.Ratkrylov.make_ws
      ~pat:(Mna.sparse_pattern ctx)
      ~b:(Mna.b_matrix mna) ~d:(Mna.d_matrix mna)
  in
  let h, _ =
    Engine.Ratkrylov.sweep ws ~g:sev.Mna.sg ~c:sev.Mna.sc
      ~ss:[| Complex.zero |]
  in
  check_close 1e-12 "dc gain" 1.0 (Linalg.Cmat.get h.(0) 0 0).Complex.re

(* a singular system must raise the typed sparse exception, mirroring
   the dense Lu.Singular contract the pipeline's escalation relies on *)
let test_splu_singular_typed () =
  let sing =
    Sp.of_triplets ~nrows:2 ~ncols:2 [| (0, 0, 1.0); (1, 0, 1.0) |]
  in
  Alcotest.(check bool) "raises Singular" true
    (match Linalg.Splu.factor sing with
    | exception Linalg.Splu.Singular _ -> true
    | _ -> false)

(* sparse transient backend: snapshots carry placeholder Jacobians and
   the sparse dataset path re-stamps them — the state trajectories of
   the two backends must agree to Newton tolerance *)
let test_tran_backend_parity () =
  let netlist = Circuits.Library.rc_grid ~rows:4 ~cols:4 () in
  let mna =
    Mna.build
      ~inputs:[ Circuits.Library.grid_input ]
      ~outputs:[ Circuits.Library.grid_output ~rows:4 ~cols:4 ]
      netlist
  in
  let t_stop = 1e-4 in
  let dt = 1e-6 in
  let rd = Engine.Tran.run mna ~t_stop ~dt in
  let rs = Engine.Tran.run ~backend:Mna.Sparse mna ~t_stop ~dt in
  Alcotest.(check int) "same snapshot count"
    (Array.length rd.Engine.Tran.snapshots)
    (Array.length rs.Engine.Tran.snapshots);
  let worst = ref 0.0 in
  Array.iteri
    (fun k (sd : Engine.Tran.snapshot) ->
      let sp = rs.Engine.Tran.snapshots.(k) in
      Array.iteri
        (fun j v ->
          worst :=
            Float.max !worst (Float.abs (v -. sp.Engine.Tran.state.(j))))
        sd.Engine.Tran.state;
      Alcotest.(check bool) "sparse snapshots carry placeholders" true
        (Linalg.Mat.rows sp.Engine.Tran.g_mat = 0))
    rd.Engine.Tran.snapshots;
  Alcotest.(check bool)
    (Printf.sprintf "state trajectories agree (%.3e)" !worst)
    true (!worst <= 1e-9)

let suite =
  [
    Alcotest.test_case "single-stage sparse ladder" `Quick
      test_single_stage_ladder;
    Alcotest.test_case "splu singular is typed" `Quick
      test_splu_singular_typed;
    Alcotest.test_case "transient backend parity" `Quick
      test_tran_backend_parity;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_assembly_parity;
        prop_splu_vs_lu;
        prop_spclu_vs_clu;
        prop_krylov_vs_ac;
        prop_pipeline_backend_parity;
      ]
