(* Tests for pole handling, the partial-fraction basis and vector fitting. *)

let cx re im = { Complex.re; im }
let check_close tol = Alcotest.(check (float tol))

(* ---------------- Pole ---------------- *)

let test_pole_initial_frequency () =
  let poles = Vf.Pole.initial_frequency ~f_min:1e3 ~f_max:1e9 ~count:8 in
  Alcotest.(check int) "count" 8 (Array.length poles);
  (* pairs adjacent, stable, imag spans the band *)
  ignore (Vf.Pole.structure poles);
  Array.iter
    (fun a -> Alcotest.(check bool) "stable" true (a.Complex.re < 0.0))
    poles;
  let w_lo = 2.0 *. Float.pi *. 1e3 and w_hi = 2.0 *. Float.pi *. 1e9 in
  check_close 1.0 "lowest" w_lo (Float.abs poles.(0).Complex.im);
  check_close (w_hi /. 1e6) "highest" w_hi (Float.abs poles.(7).Complex.im)

let test_pole_initial_real_axis () =
  let poles = Vf.Pole.initial_real_axis ~lo:0.4 ~hi:1.4 ~count:6 in
  Alcotest.(check int) "count" 6 (Array.length poles);
  ignore (Vf.Pole.structure poles);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "centers in range" true
        (a.Complex.re >= 0.4 && a.Complex.re <= 1.4);
      Alcotest.(check bool) "nonzero width" true (a.Complex.im <> 0.0))
    poles

let test_pole_initial_odd_rejected () =
  Alcotest.(check bool) "odd count rejected" true
    (match Vf.Pole.initial_frequency ~f_min:1.0 ~f_max:10.0 ~count:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pole_structure () =
  let poles = [| cx (-1.0) 0.0; cx (-2.0) 3.0; cx (-2.0) (-3.0) |] in
  match Vf.Pole.structure poles with
  | [ Vf.Pole.Single 0; Vf.Pole.Pair_first 1 ] -> ()
  | _ -> Alcotest.fail "unexpected structure"

let test_pole_structure_rejects_unpaired () =
  Alcotest.(check bool) "unpaired complex rejected" true
    (match Vf.Pole.structure [| cx (-1.0) 2.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pole_normalize_stabilize () =
  let out = Vf.Pole.normalize ~enforce_stable:true [| cx 2.0 5.0; cx 2.0 (-5.0) |] in
  Array.iter
    (fun a -> Alcotest.(check bool) "flipped to LHP" true (a.Complex.re < 0.0))
    out;
  Alcotest.(check int) "count preserved" 2 (Array.length out)

let test_pole_normalize_min_imag () =
  (* two real eigenvalues merge into a complex pair in state-space mode *)
  let out = Vf.Pole.normalize ~min_imag:0.05 [| cx 1.0 0.0; cx 1.2 0.0 |] in
  Alcotest.(check int) "count preserved" 2 (Array.length out);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "imag >= min" true (Float.abs a.Complex.im >= 0.05))
    out;
  ignore (Vf.Pole.structure out)

(* ---------------- Basis ---------------- *)

let test_basis_real_pole () =
  let poles = [| cx (-2.0) 0.0 |] in
  let row = Vf.Basis.row poles (cx 1.0 0.0) in
  check_close 1e-12 "1/(z-a)" (1.0 /. 3.0) row.(0).Complex.re

let test_basis_pair_real_on_real_axis () =
  (* pair basis functions are real at real points *)
  let poles = [| cx 0.9 0.2; cx 0.9 (-0.2) |] in
  let row = Vf.Basis.row poles (cx 0.5 0.0) in
  check_close 1e-14 "phi1 imag" 0.0 row.(0).Complex.im;
  check_close 1e-14 "phi2 imag" 0.0 row.(1).Complex.im;
  (* analytic values: phi1 = 2(x-b)/D, phi2 = -2a/D with D=(x-b)^2+a^2 *)
  let d = ((0.5 -. 0.9) ** 2.0) +. 0.04 in
  check_close 1e-12 "phi1 value" (2.0 *. (0.5 -. 0.9) /. d) row.(0).Complex.re;
  check_close 1e-12 "phi2 value" (-2.0 *. 0.2 /. d) row.(1).Complex.re

let test_basis_residue_roundtrip () =
  let poles = [| cx (-1.0) 0.0; cx (-2.0) 3.0; cx (-2.0) (-3.0) |] in
  let coeffs = [| 1.5; 0.25; -0.75 |] in
  let residues = Vf.Basis.residues_of_coeffs poles coeffs in
  let back = Vf.Basis.coeffs_of_residues poles residues in
  Array.iteri
    (fun k c -> check_close 1e-14 (Printf.sprintf "coeff %d" k) c back.(k))
    coeffs;
  (* conjugate symmetry *)
  Alcotest.(check bool) "conjugate pair" true
    (Linalg.Cx.approx_equal residues.(2) (Complex.conj residues.(1)))

let test_basis_state_matrices_transfer () =
  (* c^T (zI - A)^{-1} b equals the basis combination *)
  let poles = [| cx (-2.0) 3.0; cx (-2.0) (-3.0); cx (-5.0) 0.0 |] in
  let poles = Vf.Pole.normalize poles in
  let a, b = Vf.Basis.state_matrices poles in
  let c = [| 0.7; -0.3; 1.1 |] in
  let z = cx 0.5 1.5 in
  (* evaluate via basis *)
  let row = Vf.Basis.row poles z in
  let direct = ref Complex.zero in
  Array.iteri
    (fun k phi -> direct := Complex.add !direct (Linalg.Cx.scale c.(k) phi))
    row;
  (* evaluate via state space: solve (zI - A) w = b *)
  let n = Array.length c in
  let zi_a =
    Linalg.Cmat.init n n (fun i j ->
        let aij = Linalg.Mat.get a i j in
        if i = j then Complex.sub z (cx aij 0.0) else cx (-.aij) 0.0)
  in
  let w = Linalg.Clu.solve_system zi_a (Array.map (fun x -> cx x 0.0) b) in
  let ss = ref Complex.zero in
  Array.iteri (fun k ck -> ss := Complex.add !ss (Linalg.Cx.scale ck w.(k))) c;
  Alcotest.(check bool) "realization matches basis" true
    (Complex.norm (Complex.sub !direct !ss) < 1e-10)

(* ---------------- Vfit: frequency domain ---------------- *)

let synth_h poles residues d s =
  let acc = ref (cx d 0.0) in
  Array.iteri
    (fun k a -> acc := Complex.add !acc (Complex.div residues.(k) (Complex.sub s a)))
    poles;
  !acc

let test_vfit_exact_recovery () =
  let true_poles = [| cx (-5e3) 0.0; cx (-2e4) 1.5e5; cx (-2e4) (-1.5e5) |] in
  let true_res = [| cx 3e4 0.0; cx 2e4 4e4; cx 2e4 (-4e4) |] in
  let freqs = Signal.Grid.logspace 1e2 1e6 60 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map (synth_h true_poles true_res 0.0) points |] in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:4 in
  let model, info = Vf.Vfit.fit ~poles:poles0 ~points ~data () in
  Alcotest.(check bool) "tiny rms" true (info.Vf.Vfit.rms < 1e-8);
  (* true poles recovered among the fitted ones *)
  Array.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "pole %s found" (Linalg.Cx.to_string a))
        true
        (Array.exists
           (fun b -> Complex.norm (Complex.sub a b) < 1e-3 *. Complex.norm a)
           model.Vf.Model.poles))
    true_poles

let test_vfit_stability_enforced () =
  (* data from an unstable system still yields stable poles *)
  let true_poles = [| cx 2e4 1.5e5; cx 2e4 (-1.5e5) |] in
  let true_res = [| cx 1e4 2e4; cx 1e4 (-2e4) |] in
  let freqs = Signal.Grid.logspace 1e3 1e6 50 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map (synth_h true_poles true_res 0.0) points |] in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e3 ~f_max:1e6 ~count:6 in
  let model, _ = Vf.Vfit.fit ~poles:poles0 ~points ~data () in
  Array.iter
    (fun a -> Alcotest.(check bool) "pole stable" true (a.Complex.re < 0.0))
    model.Vf.Model.poles

let test_vfit_common_poles_multi_element () =
  (* many elements share poles; residues vary *)
  let true_poles = [| cx (-3e4) 2e5; cx (-3e4) (-2e5) |] in
  let freqs = Signal.Grid.logspace 1e3 1e6 40 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data =
    Array.init 20 (fun e ->
        let r = cx (1e4 +. (500.0 *. float_of_int e)) (2e4 -. (300.0 *. float_of_int e)) in
        Array.map (synth_h true_poles [| r; Complex.conj r |] 0.0) points)
  in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e3 ~f_max:1e6 ~count:2 in
  let model, info = Vf.Vfit.fit ~poles:poles0 ~points ~data () in
  Alcotest.(check bool) "rms small" true (info.Vf.Vfit.rms < 1e-6);
  Alcotest.(check int) "element count" 20 (Vf.Model.n_elements model);
  (* residues recovered per element *)
  let r5 = (Vf.Model.residues model ~elem:5).(0) in
  let expected = cx (1e4 +. 2500.0) (2e4 -. 1500.0) in
  Alcotest.(check bool) "residue recovered" true
    (Complex.norm (Complex.sub r5 expected) < 1.0
    || Complex.norm (Complex.sub (Complex.conj r5) expected) < 1.0)

let test_vfit_constant_term () =
  let true_poles = [| cx (-1e4) 5e4; cx (-1e4) (-5e4) |] in
  let true_res = [| cx 5e3 1e3; cx 5e3 (-1e3) |] in
  let freqs = Signal.Grid.logspace 1e2 1e6 50 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map (synth_h true_poles true_res 0.7) points |] in
  let opts = { Vf.Vfit.default_frequency_opts with Vf.Vfit.with_const = true } in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:2 in
  let model, info = Vf.Vfit.fit ~opts ~poles:poles0 ~points ~data () in
  Alcotest.(check bool) "rms small" true (info.Vf.Vfit.rms < 1e-6);
  check_close 1e-4 "constant recovered" 0.7 model.Vf.Model.consts.(0)

let test_vfit_auto_escalation () =
  (* 6-pole system: fit_auto must escalate beyond the start count *)
  let true_poles =
    [| cx (-1e4) 6e4; cx (-1e4) (-6e4); cx (-4e4) 2.5e5; cx (-4e4) (-2.5e5);
       cx (-8e3) 0.0; cx (-9e5) 0.0 |]
  in
  let true_res =
    [| cx 1e4 3e3; cx 1e4 (-3e3); cx (-2e4) 5e3; cx (-2e4) (-5e3);
       cx 4e3 0.0; cx 8e5 0.0 |]
  in
  let freqs = Signal.Grid.logspace 1e2 1e6 80 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map (synth_h true_poles true_res 0.0) points |] in
  let mk n = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:n in
  let _, info =
    Vf.Vfit.fit_auto ~make_poles:mk ~start:2 ~tol:1e-6 ~points ~data ()
  in
  Alcotest.(check bool) "escalated" true (info.Vf.Vfit.pole_count >= 6);
  Alcotest.(check bool) "met tolerance" true (info.Vf.Vfit.rms <= 1e-6)

let test_vfit_too_few_points () =
  let points = Array.map Signal.Grid.s_of_hz [| 1e3; 2e3 |] in
  let data = [| [| Complex.one; Complex.one |] |] in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:8 in
  Alcotest.(check bool) "underdetermined rejected" true
    (match Vf.Vfit.fit ~poles:poles0 ~points ~data () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- Vfit: state domain ---------------- *)

let test_vfit_state_domain_lorentzian () =
  (* exact recovery of a Lorentzian pair on the real axis *)
  let f x = (3.0 *. (x -. 0.8)) /. (((x -. 0.8) ** 2.0) +. 0.09) in
  let xs = Signal.Grid.linspace 0.0 2.0 81 in
  let points = Array.map (fun x -> cx x 0.0) xs in
  let data = [| Array.map (fun z -> cx (f z.Complex.re) 0.0) points |] in
  let opts = { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.01 } in
  let poles0 = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:2.0 ~count:2 in
  let model, info = Vf.Vfit.fit ~opts ~poles:poles0 ~points ~data () in
  Alcotest.(check bool) "rms tiny" true (info.Vf.Vfit.rms < 1e-9);
  (* pole at 0.8 +/- 0.3j in the x plane *)
  let found = model.Vf.Model.poles.(0) in
  check_close 1e-6 "center" 0.8 found.Complex.re;
  check_close 1e-6 "width" 0.3 (Float.abs found.Complex.im)

let test_vfit_state_domain_tanh () =
  let f x = tanh (4.0 *. (x -. 1.0)) in
  let xs = Signal.Grid.linspace 0.0 2.0 101 in
  let points = Array.map (fun x -> cx x 0.0) xs in
  let data = [| Array.map (fun z -> cx (f z.Complex.re) 0.0) points |] in
  let opts = { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.02 } in
  let mk n = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:2.0 ~count:n in
  let model, info =
    Vf.Vfit.fit_auto ~opts ~make_poles:mk ~start:2 ~tol:1e-4 ~points ~data ()
  in
  Alcotest.(check bool) "fit meets tol" true (info.Vf.Vfit.rms <= 1e-4);
  (* model is real on the real axis *)
  let z = Vf.Model.eval model ~elem:0 (cx 0.77 0.0) in
  check_close 1e-10 "real-valued" 0.0 z.Complex.im;
  check_close 1e-3 "matches target" (f 0.77) z.Complex.re

let test_vfit_state_no_real_poles () =
  (* min_imag forbids real poles so closed-form integration always works *)
  let f x = 1.0 /. (x +. 3.0) in
  let xs = Signal.Grid.linspace 0.0 2.0 60 in
  let points = Array.map (fun x -> cx x 0.0) xs in
  let data = [| Array.map (fun z -> cx (f z.Complex.re) 0.0) points |] in
  let opts = { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.05 } in
  let mk n = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:2.0 ~count:n in
  let model, _ =
    Vf.Vfit.fit_auto ~opts ~make_poles:mk ~start:2 ~tol:1e-5 ~points ~data ()
  in
  Array.iter
    (fun a ->
      Alcotest.(check bool) "no real poles" true (Float.abs a.Complex.im >= 0.05))
    model.Vf.Model.poles

(* ---------------- Model ---------------- *)

let test_model_eval_real_matches_eval () =
  let poles = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:1.0 ~count:4 in
  let model =
    {
      Vf.Model.poles;
      coeffs = [| [| 1.0; 2.0; -0.5; 0.3 |] |];
      consts = [| 0.25 |];
      slopes = [| 0.0 |];
    }
  in
  let x = 0.42 in
  check_close 1e-12 "eval_real consistent"
    (Vf.Model.eval model ~elem:0 (cx x 0.0)).Complex.re
    (Vf.Model.eval_real model ~elem:0 x)

let test_model_errors_zero_for_own_samples () =
  let poles = [| cx (-1.0) 2.0; cx (-1.0) (-2.0) |] in
  let model =
    { Vf.Model.poles; coeffs = [| [| 1.0; 0.5 |] |]; consts = [| 0.0 |]; slopes = [| 0.0 |] }
  in
  let points = Array.map (fun x -> cx 0.0 x) [| 1.0; 2.0; 5.0 |] in
  let data = [| Array.map (Vf.Model.eval model ~elem:0) points |] in
  check_close 1e-14 "self rms" 0.0 (Vf.Model.rms_error model ~points ~data)

let test_vfit_stable_under_noise () =
  (* the paper: "the model is guaranteed stable by construction" — even
     fitting noisy data must never produce right-half-plane poles *)
  let st = Random.State.make [| 2024 |] in
  let true_poles = [| cx (-3e4) 2e5; cx (-3e4) (-2e5); cx (-8e3) 0.0 |] in
  let true_res = [| cx 1e4 2e4; cx 1e4 (-2e4); cx 5e3 0.0 |] in
  let freqs = Signal.Grid.logspace 1e3 1e6 60 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let noisy z =
    let n () = 0.05 *. (Random.State.float st 2.0 -. 1.0) in
    Complex.add z
      { Complex.re = n () *. Complex.norm z; im = n () *. Complex.norm z }
  in
  let data =
    Array.init 8 (fun _ ->
        Array.map (fun p -> noisy (synth_h true_poles true_res 0.0 p)) points)
  in
  let mk n = Vf.Pole.initial_frequency ~f_min:1e3 ~f_max:1e6 ~count:n in
  (* force escalation to the cap: even overfitted poles stay stable *)
  let model, _ =
    Vf.Vfit.fit_auto ~make_poles:mk ~start:2 ~max_poles:12 ~tol:1e-12 ~points
      ~data ()
  in
  Array.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "pole %s stable" (Linalg.Cx.to_string a))
        true (a.Complex.re < 0.0))
    model.Vf.Model.poles

let prop_fit_residues_conjugate =
  QCheck.Test.make ~count:15 ~name:"fitted residues are conjugate-symmetric"
    QCheck.(int_bound 1000)
    (fun seed ->
      let st = Random.State.make [| seed; 99 |] in
      let a = cx (-.(1e4 +. Random.State.float st 1e5)) (2e5 +. Random.State.float st 1e5) in
      let r = cx (Random.State.float st 1e4) (Random.State.float st 1e4) in
      let freqs = Signal.Grid.logspace 1e3 1e6 40 in
      let points = Array.map Signal.Grid.s_of_hz freqs in
      let data = [| Array.map (synth_h [| a; Complex.conj a |] [| r; Complex.conj r |] 0.0) points |] in
      let poles0 = Vf.Pole.initial_frequency ~f_min:1e3 ~f_max:1e6 ~count:2 in
      let model, _ = Vf.Vfit.fit ~poles:poles0 ~points ~data () in
      let res = Vf.Model.residues model ~elem:0 in
      List.for_all
        (fun slot ->
          match slot with
          | Vf.Pole.Single k -> res.(k).Complex.im = 0.0
          | Vf.Pole.Pair_first k ->
              Linalg.Cx.approx_equal ~tol:1e-6 res.(k + 1) (Complex.conj res.(k)))
        (Vf.Pole.structure model.Vf.Model.poles))

let prop_vfit_recovers_random_pairs =
  QCheck.Test.make ~count:15 ~name:"vfit recovers random 2-pole systems"
    QCheck.(triple (float_range 0.1 0.9) (float_range 0.3 3.0) (float_range (-2.0) 2.0))
    (fun (damp, wmag, rre) ->
      let w = wmag *. 1e5 in
      let a = cx (-.damp *. w) w in
      let r = cx (rre *. 1e4) 5e3 in
      let freqs = Signal.Grid.logspace 1e2 1e6 50 in
      let points = Array.map Signal.Grid.s_of_hz freqs in
      let data =
        [| Array.map (synth_h [| a; Complex.conj a |] [| r; Complex.conj r |] 0.0) points |]
      in
      let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:2 in
      let _, info = Vf.Vfit.fit ~poles:poles0 ~points ~data () in
      info.Vf.Vfit.rms < 1e-6 *. Complex.norm r)

let test_vfit_lc_ladder_response () =
  (* classic VF use case: fit a resonant passive network's simulated
     frequency response; the fit must be stable and accurate, and the
     model must reproduce the passband/stopband levels *)
  let nl = Circuits.Library.lc_ladder () in
  let mna =
    Engine.Mna.build ~inputs:[ Circuits.Library.lc_input ]
      ~outputs:[ Circuits.Library.lc_output ] nl
  in
  let at = Engine.Dc.solve mna in
  let freqs = Signal.Grid.logspace 1e4 1e7 80 in
  let h = Engine.Ac.sweep_siso mna ~at ~freqs_hz:freqs in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let mk n = Vf.Pole.initial_frequency ~f_min:1e4 ~f_max:1e7 ~count:n in
  let model, info =
    Vf.Vfit.fit_auto ~make_poles:mk ~start:2 ~max_poles:10 ~tol:1e-8
      ~points ~data:[| h |] ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "5th-order network fitted (rms %.1e, %d poles)"
       info.Vf.Vfit.rms info.Vf.Vfit.pole_count)
    true
    (info.Vf.Vfit.rms < 1e-8);
  Array.iter
    (fun a -> Alcotest.(check bool) "stable" true (a.Complex.re < 0.0))
    model.Vf.Model.poles;
  (* passband level 0.5 (matched 50-ohm divider), strong stopband rolloff *)
  let eval f = Complex.norm (Vf.Model.eval model ~elem:0 (Signal.Grid.s_of_hz f)) in
  check_close 1e-3 "passband" 0.5 (eval 2e4);
  Alcotest.(check bool) "stopband rolloff" true (eval 1e7 < 5e-3)

(* ---------------- escalation-ladder rung coverage ---------------- *)

(* exercise fit_auto's individual escalation rungs deterministically,
   without fault injection, using seeded degenerate inputs *)

let degenerate_grid_data () =
  (* 6 well-separated poles but only a handful of sample points: enough
     for small pole counts, underdetermined for larger ones *)
  let exact =
    Array.init 6 (fun k ->
        { Complex.re = -.(10.0 ** (3.0 +. (0.5 *. float_of_int k))); im = 0.0 })
  in
  let residues = Array.map (fun p -> Complex.neg p) exact in
  let points =
    Array.map Signal.Grid.s_of_hz (Signal.Grid.logspace 1e2 1e6 7)
  in
  let data =
    Array.map
      (fun s ->
        let acc = ref Complex.zero in
        Array.iteri
          (fun i p ->
            acc := Complex.add !acc (Complex.div residues.(i) (Complex.sub s p)))
          exact;
        !acc)
      points
  in
  (points, [| data |])

let test_fit_auto_rms_escalation_keeps_best () =
  (* rung 1 (rms above tol -> escalate) followed by rung 2 (attempt
     raises Invalid_argument -> stop with the best model so far): on the
     degenerate grid an unreachable tolerance walks the ladder until the
     unknown count exceeds the 7 points, and fit_auto must settle on the
     best admissible model instead of raising *)
  let points, data = degenerate_grid_data () in
  let diag = Diag.create () in
  let _, info =
    Vf.Vfit.fit_auto ~diag ~make_poles:(fun n ->
        Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:n)
      ~start:2 ~step:2 ~max_poles:40 ~tol:1e-300 ~points ~data ()
  in
  let report = Diag.report diag in
  let attempts = Diag.counter report "vfit.attempts" in
  Alcotest.(check bool)
    (Printf.sprintf "several rungs exercised (%d attempts)" attempts)
    true (attempts >= 3);
  Alcotest.(check bool) "kept an admissible model" true
    (Float.is_finite info.Vf.Vfit.rms && info.Vf.Vfit.pole_count >= 2);
  Alcotest.(check bool) "settled_poles note recorded" true
    (Diag.find_note report "vfit.settled_poles"
    = Some (string_of_int info.Vf.Vfit.pole_count))

let test_fit_auto_guard_violation_escalates () =
  (* rung 3 (Guard.Violation -> count it and keep climbing): a guard
     with an absurdly small pole-growth bound trips on every attempt, so
     the ladder must be exhausted and the exhaustion report must carry
     the last rung's guard detail *)
  let points, data = degenerate_grid_data () in
  let guard = { Guard.default with Guard.max_pole_growth = 1e-12 } in
  let diag = Diag.create () in
  (match
     Vf.Vfit.fit_auto ~guard ~diag ~make_poles:(fun n ->
         Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:n)
       ~start:2 ~step:2 ~max_poles:6 ~tol:1e-12 ~points ~data ()
   with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "exhaustion names the last rung (%s)" msg)
        true
        ((* the message must identify the final attempt, not be a bare
            "no successful fit" *)
         let has sub =
           let ls = String.length sub and lm = String.length msg in
           let rec scan i = i + ls <= lm && (String.sub msg i ls = sub || scan (i + 1)) in
           scan 0
         in
         has "last attempt" && has "6 poles")
  | _ -> Alcotest.fail "a fully-guarded ladder cannot produce a model");
  let report = Diag.report diag in
  Alcotest.(check int) "every rung attempted" 3
    (Diag.counter report "vfit.attempts");
  Alcotest.(check int) "every rung guarded" 3
    (Diag.counter report "vfit.guard_violations");
  Alcotest.(check bool) "exhaustion recorded as a diag error" true
    (Diag.has_errors report)

let test_fit_auto_start_beyond_max () =
  (* rung 0: an empty ladder reports that nothing was attempted *)
  let points, data = degenerate_grid_data () in
  match
    Vf.Vfit.fit_auto ~make_poles:(fun n ->
        Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:n)
      ~start:10 ~max_poles:4 ~tol:1e-6 ~points ~data ()
  with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the empty ladder" true
        (let sub = "no pole count attempted" in
         let ls = String.length sub and lm = String.length msg in
         let rec scan i = i + ls <= lm && (String.sub msg i ls = sub || scan (i + 1)) in
         scan 0)
  | _ -> Alcotest.fail "start > max_poles cannot fit"

(* ---------------- Dense vs Fast relocation kernels ---------------- *)

(* both kernels perform the same per-entry arithmetic (the fast one just
   factors in place, hoists the shared phi0 factorization and skips the
   copies), so agreement is asserted on raw float bits, not a tolerance *)
let float_bits_eq a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let cx_bits_eq (a : Complex.t) (b : Complex.t) =
  float_bits_eq a.Complex.re b.Complex.re
  && float_bits_eq a.Complex.im b.Complex.im

let models_bitwise_equal (a : Vf.Model.t) (b : Vf.Model.t) =
  Array.length a.Vf.Model.poles = Array.length b.Vf.Model.poles
  && Array.for_all2 cx_bits_eq a.Vf.Model.poles b.Vf.Model.poles
  && Array.for_all2
       (fun x y -> Array.for_all2 float_bits_eq x y)
       a.Vf.Model.coeffs b.Vf.Model.coeffs
  && Array.for_all2 float_bits_eq a.Vf.Model.consts b.Vf.Model.consts
  && Array.for_all2 float_bits_eq a.Vf.Model.slopes b.Vf.Model.slopes

let fit_both_kernels ~opts ~poles ~points ~data =
  let run kernel =
    fst
      (Vf.Vfit.fit
         ~opts:{ opts with Vf.Vfit.relocation_kernel = kernel }
         ~poles ~points ~data ())
  in
  models_bitwise_equal (run Vf.Vfit.Dense) (run Vf.Vfit.Fast)

let grid_points = Array.map Signal.Grid.s_of_hz Oracle.Gen.grid_hz

let prop_kernel_parity_rational =
  (* inverse-square-root weighting: the general per-element QR path *)
  QCheck.Test.make ~count:10 ~name:"dense/fast parity: random rationals"
    (Oracle.Gen.arb ())
    (fun sd ->
      let r = Oracle.Gen.rational sd in
      let data = [| Oracle.Ladder.sample r grid_points |] in
      let n = Array.length r.Oracle.Ladder.poles in
      let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e7 ~count:n in
      fit_both_kernels ~opts:Vf.Vfit.default_frequency_opts ~poles:poles0
        ~points:grid_points ~data)

let prop_kernel_parity_rc_ladder_uniform =
  (* uniform weighting with several elements: the shared-Q1 fast path *)
  QCheck.Test.make ~count:10 ~name:"dense/fast parity: rc ladders, uniform"
    (Oracle.Gen.arb ())
    (fun sd ->
      let o = Oracle.Gen.rc_ladder sd in
      let row = Oracle.Ladder.sample o.Oracle.Ladder.exact grid_points in
      (* identical rows model the state-independent linear TFT surface *)
      let data = [| row; Array.copy row; Array.copy row |] in
      let n = Array.length o.Oracle.Ladder.exact.Oracle.Ladder.poles in
      let poles0 =
        Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e7
          ~count:(if n mod 2 = 0 then n else n + 1)
      in
      let opts =
        { Vf.Vfit.default_frequency_opts with Vf.Vfit.weighting = Vf.Vfit.Uniform }
      in
      fit_both_kernels ~opts ~poles:poles0 ~points:grid_points ~data)

let prop_kernel_parity_residue_traces =
  (* real state axis, relaxed sigma, no constant-free columns *)
  QCheck.Test.make ~count:10 ~name:"dense/fast parity: residue traces"
    (Oracle.Gen.arb ())
    (fun sd ->
      let xs, data = Oracle.Gen.residue_traces sd in
      let points = Array.map (fun x -> cx x 0.0) xs in
      let opts = { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.05 } in
      let poles0 = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:1.0 ~count:4 in
      fit_both_kernels ~opts ~poles:poles0 ~points ~data)

let test_kernel_parity_pool () =
  (* the pooled fast path writes disjoint rows per element: bit-identical
     to both sequential kernels *)
  let sd = { Oracle.Gen.seed = 42; size = 3 } in
  let xs, data = Oracle.Gen.residue_traces ~traces:5 sd in
  let points = Array.map (fun x -> cx x 0.0) xs in
  let opts = { Vf.Vfit.default_state_opts with Vf.Vfit.min_imag = 0.05 } in
  let poles0 = Vf.Pole.initial_real_axis ~lo:0.0 ~hi:1.0 ~count:4 in
  let seq, _ = Vf.Vfit.fit ~opts ~poles:poles0 ~points ~data () in
  Exec.with_pool ~domains:3 (fun pool ->
      let par, _ = Vf.Vfit.fit ~opts ~pool ~poles:poles0 ~points ~data () in
      Alcotest.(check bool) "pooled = sequential, bitwise" true
        (models_bitwise_equal seq par))

(* the condensed per-element [R22 | Q2tV] blocks must describe the same
   least-squares problem as the naive stacked system over all unknowns
   (per-element coefficients + shared sigma columns): solve both for the
   shared block and compare. Mathematical equivalence, not bitwise — the
   naive path eliminates nothing. *)
let test_condensed_blocks_match_naive_stack () =
  let st = Random.State.make [| 0xb10c; 5 |] in
  let n_elems = 3 and m = 14 and n1 = 4 and n2 = 3 in
  let elems =
    Array.init n_elems (fun _ ->
        ( Linalg.Mat.random st m (n1 + n2),
          Array.init m (fun _ -> Random.State.float st 2.0 -. 1.0) ))
  in
  (* naive: block-diagonal in the per-element columns, shared trailing
     columns, one global least squares *)
  let big =
    Linalg.Mat.init (n_elems * m)
      ((n_elems * n1) + n2)
      (fun r c ->
        let e = r / m and i = r mod m in
        let a, _ = elems.(e) in
        if c >= n_elems * n1 then Linalg.Mat.get a i (n1 + (c - (n_elems * n1)))
        else if c / n1 = e then Linalg.Mat.get a i (c mod n1)
        else 0.0)
  in
  let big_rhs =
    Array.init (n_elems * m) (fun r -> (snd elems.(r / m)).(r mod m))
  in
  let naive = Linalg.Qr.least_squares big big_rhs in
  let naive_shared = Array.sub naive (n_elems * n1) n2 in
  (* condensed: per-element QR, keep R22 and Q2tV *)
  let ws = Linalg.Qr.workspace () in
  let cond = Linalg.Mat.create (n_elems * n2) n2 in
  let cond_rhs = Array.make (n_elems * n2) 0.0 in
  Array.iteri
    (fun e (a, b) ->
      let w = Linalg.Qr.ws_matrix ws ~rows:m ~cols:(n1 + n2) in
      for i = 0 to m - 1 do
        for j = 0 to n1 + n2 - 1 do
          Linalg.Mat.set w i j (Linalg.Mat.get a i j)
        done
      done;
      let t = Linalg.Qr.factor_into ws w in
      Linalg.Qr.r22_block t ~split:n1 cond (e * n2);
      Linalg.Qr.apply_qt_block t ~split:n1 b cond_rhs (e * n2))
    elems;
  let condensed = Linalg.Qr.least_squares cond cond_rhs in
  Array.iteri
    (fun k x ->
      Alcotest.(check (float 1e-8))
        (Printf.sprintf "shared unknown %d" k)
        x condensed.(k))
    naive_shared

let suite =
  [
    Alcotest.test_case "pole initial frequency" `Quick test_pole_initial_frequency;
    Alcotest.test_case "pole initial real axis" `Quick test_pole_initial_real_axis;
    Alcotest.test_case "pole odd count" `Quick test_pole_initial_odd_rejected;
    Alcotest.test_case "pole structure" `Quick test_pole_structure;
    Alcotest.test_case "pole unpaired" `Quick test_pole_structure_rejects_unpaired;
    Alcotest.test_case "pole stabilize" `Quick test_pole_normalize_stabilize;
    Alcotest.test_case "pole min imag merge" `Quick test_pole_normalize_min_imag;
    Alcotest.test_case "basis real pole" `Quick test_basis_real_pole;
    Alcotest.test_case "basis pair real on axis" `Quick test_basis_pair_real_on_real_axis;
    Alcotest.test_case "basis residue roundtrip" `Quick test_basis_residue_roundtrip;
    Alcotest.test_case "basis realization" `Quick test_basis_state_matrices_transfer;
    Alcotest.test_case "vfit exact recovery" `Quick test_vfit_exact_recovery;
    Alcotest.test_case "vfit stability" `Quick test_vfit_stability_enforced;
    Alcotest.test_case "vfit common poles" `Quick test_vfit_common_poles_multi_element;
    Alcotest.test_case "vfit constant term" `Quick test_vfit_constant_term;
    Alcotest.test_case "vfit auto escalation" `Quick test_vfit_auto_escalation;
    Alcotest.test_case "vfit underdetermined" `Quick test_vfit_too_few_points;
    Alcotest.test_case "vfit lorentzian" `Quick test_vfit_state_domain_lorentzian;
    Alcotest.test_case "vfit tanh" `Quick test_vfit_state_domain_tanh;
    Alcotest.test_case "vfit no real poles" `Quick test_vfit_state_no_real_poles;
    Alcotest.test_case "model eval_real" `Quick test_model_eval_real_matches_eval;
    Alcotest.test_case "model self error" `Quick test_model_errors_zero_for_own_samples;
    Alcotest.test_case "vfit stable under noise" `Quick test_vfit_stable_under_noise;
    Alcotest.test_case "vfit lc ladder" `Quick test_vfit_lc_ladder_response;
    Alcotest.test_case "fit_auto keeps best on degenerate grid" `Quick
      test_fit_auto_rms_escalation_keeps_best;
    Alcotest.test_case "fit_auto guard rung coverage" `Quick
      test_fit_auto_guard_violation_escalates;
    Alcotest.test_case "fit_auto empty ladder" `Quick
      test_fit_auto_start_beyond_max;
    Alcotest.test_case "kernel parity with pool" `Quick test_kernel_parity_pool;
    Alcotest.test_case "condensed blocks = naive stack" `Quick
      test_condensed_blocks_match_naive_stack;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_vfit_recovers_random_pairs;
        prop_fit_residues_conjugate;
        prop_kernel_parity_rational;
        prop_kernel_parity_rc_ladder_uniform;
        prop_kernel_parity_residue_traces;
      ]
