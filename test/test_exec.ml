(* Tests for the domain pool: deterministic ordering, sequential
   equivalence, workspace reuse and exception propagation. *)

let test_parallel_init_matches_sequential () =
  Exec.with_pool ~domains:4 (fun pool ->
      let f i = (i * i) - (3 * i) in
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "n = %d" n)
            (Array.init n f)
            (Exec.parallel_init ~pool n f))
        [ 0; 1; 2; 3; 7; 64; 1000 ])

let test_parallel_map_matches_sequential () =
  Exec.with_pool ~domains:3 (fun pool ->
      let arr = Array.init 101 (fun i -> float_of_int i /. 7.0) in
      let f x = sin x +. (x *. x) in
      Alcotest.(check (array (float 0.0)))
        "map identical" (Array.map f arr)
        (Exec.parallel_map ~pool f arr))

let test_single_domain_pool_is_sequential () =
  Exec.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "no workers" 1 (Exec.domains pool);
      Alcotest.(check (array int))
        "still correct" (Array.init 10 succ)
        (Exec.parallel_init ~pool 10 succ))

let test_workspace_per_chunk () =
  (* each chunk gets its own workspace: with [domains] chunks working on
     disjoint slots, reusing a buffer inside a chunk must never race *)
  Exec.with_pool ~domains:4 (fun pool ->
      let made = Atomic.make 0 in
      let out =
        Exec.parallel_init_ws ~pool
          ~ws:(fun () ->
            ignore (Atomic.fetch_and_add made 1);
            Bytes.create 8)
          64
          (fun buf i ->
            (* overwrite the whole workspace, then read it back *)
            Bytes.set_int64_le buf 0 (Int64.of_int (i * 17));
            Int64.to_int (Bytes.get_int64_le buf 0))
      in
      Alcotest.(check (array int)) "values" (Array.init 64 (fun i -> i * 17)) out;
      Alcotest.(check bool)
        (Printf.sprintf "at most one ws per domain (%d)" (Atomic.get made))
        true
        (Atomic.get made <= 4))

let exception_of_pool domains =
  Exec.with_pool ~domains (fun pool ->
      match
        Exec.parallel_init ~pool 32 (fun i ->
            if i = 13 then failwith "boom" else i)
      with
      | _ -> None
      | exception exn -> Some exn)

let test_exception_propagates () =
  match exception_of_pool 4 with
  | Some (Failure msg) when msg = "boom" -> ()
  | Some exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | None -> Alcotest.fail "no exception raised"

let test_exception_sequential_fallback () =
  match exception_of_pool 1 with
  | Some (Failure msg) when msg = "boom" -> ()
  | Some exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | None -> Alcotest.fail "no exception raised"

let test_pool_reusable_after_exception () =
  Exec.with_pool ~domains:4 (fun pool ->
      (try ignore (Exec.parallel_init ~pool 16 (fun _ -> failwith "first"))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "second fan-out fine" (Array.init 16 (fun i -> 2 * i))
        (Exec.parallel_init ~pool 16 (fun i -> 2 * i)))

let test_shutdown_idempotent () =
  let pool = Exec.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Exec.domains pool);
  Exec.shutdown pool;
  Exec.shutdown pool

let test_clock_monotonic () =
  let t0 = Clock.now () in
  let acc = ref 0.0 in
  for i = 1 to 100_000 do
    acc := !acc +. float_of_int i
  done;
  ignore !acc;
  let dt = Clock.elapsed t0 in
  Alcotest.(check bool) (Printf.sprintf "elapsed %g >= 0" dt) true (dt >= 0.0);
  Alcotest.(check bool) "still monotone" true (Clock.now () >= t0 +. dt)

let suite =
  [
    Alcotest.test_case "parallel_init = Array.init" `Quick
      test_parallel_init_matches_sequential;
    Alcotest.test_case "parallel_map = Array.map" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "single-domain pool" `Quick test_single_domain_pool_is_sequential;
    Alcotest.test_case "workspace per chunk" `Quick test_workspace_per_chunk;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "exception sequential" `Quick test_exception_sequential_fallback;
    Alcotest.test_case "pool reusable after exn" `Quick test_pool_reusable_after_exception;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
  ]
