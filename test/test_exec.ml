(* Tests for the domain pool: deterministic ordering, sequential
   equivalence, workspace reuse and exception propagation. *)

let test_parallel_init_matches_sequential () =
  Exec.with_pool ~domains:4 (fun pool ->
      let f i = (i * i) - (3 * i) in
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "n = %d" n)
            (Array.init n f)
            (Exec.parallel_init ~pool n f))
        [ 0; 1; 2; 3; 7; 64; 1000 ])

let test_parallel_map_matches_sequential () =
  Exec.with_pool ~domains:3 (fun pool ->
      let arr = Array.init 101 (fun i -> float_of_int i /. 7.0) in
      let f x = sin x +. (x *. x) in
      Alcotest.(check (array (float 0.0)))
        "map identical" (Array.map f arr)
        (Exec.parallel_map ~pool f arr))

let test_single_domain_pool_is_sequential () =
  Exec.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "no workers" 1 (Exec.domains pool);
      Alcotest.(check (array int))
        "still correct" (Array.init 10 succ)
        (Exec.parallel_init ~pool 10 succ))

let test_workspace_per_chunk () =
  (* each chunk gets its own workspace: with [domains] chunks working on
     disjoint slots, reusing a buffer inside a chunk must never race *)
  Exec.with_pool ~domains:4 (fun pool ->
      let made = Atomic.make 0 in
      let out =
        Exec.parallel_init_ws ~pool
          ~ws:(fun _chunk ->
            ignore (Atomic.fetch_and_add made 1);
            Bytes.create 8)
          64
          (fun buf i ->
            (* overwrite the whole workspace, then read it back *)
            Bytes.set_int64_le buf 0 (Int64.of_int (i * 17));
            Int64.to_int (Bytes.get_int64_le buf 0))
      in
      Alcotest.(check (array int)) "values" (Array.init 64 (fun i -> i * 17)) out;
      Alcotest.(check bool)
        (Printf.sprintf "at most one ws per domain (%d)" (Atomic.get made))
        true
        (Atomic.get made <= 4))

let exception_of_pool domains =
  Exec.with_pool ~domains (fun pool ->
      match
        Exec.parallel_init ~pool 32 (fun i ->
            if i = 13 then failwith "boom" else i)
      with
      | _ -> None
      | exception exn -> Some exn)

let test_exception_propagates () =
  match exception_of_pool 4 with
  | Some (Failure msg) when msg = "boom" -> ()
  | Some exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | None -> Alcotest.fail "no exception raised"

let test_exception_sequential_fallback () =
  match exception_of_pool 1 with
  | Some (Failure msg) when msg = "boom" -> ()
  | Some exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | None -> Alcotest.fail "no exception raised"

let test_pool_reusable_after_exception () =
  Exec.with_pool ~domains:4 (fun pool ->
      (try ignore (Exec.parallel_init ~pool 16 (fun _ -> failwith "first"))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "second fan-out fine" (Array.init 16 (fun i -> 2 * i))
        (Exec.parallel_init ~pool 16 (fun i -> 2 * i)))

let test_shutdown_idempotent () =
  let pool = Exec.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Exec.domains pool);
  Exec.shutdown pool;
  Exec.shutdown pool

(* ---------------- warm-pool slots and nesting ---------------- *)

let test_slot_cached_across_runs () =
  Exec.with_pool ~domains:2 (fun pool ->
      let key : int ref Exec.key = Exec.new_key () in
      let made = Atomic.make 0 in
      let run () =
        Exec.parallel_init_ws ~pool
          ~ws:(fun chunk ->
            Exec.slot pool key ~chunk
              ~valid:(fun _ -> true)
              ~make:(fun () ->
                ignore (Atomic.fetch_and_add made 1);
                ref 0))
          16
          (fun r i ->
            incr r;
            i)
      in
      ignore (run ());
      ignore (run ());
      ignore (run ());
      (* slots survive between runs: at most one build per chunk slot *)
      Alcotest.(check bool)
        (Printf.sprintf "slots reused (%d made)" (Atomic.get made))
        true
        (Atomic.get made <= 2))

let test_slot_invalidation_rebuilds () =
  Exec.with_pool ~domains:2 (fun pool ->
      let key : int ref Exec.key = Exec.new_key () in
      let made = Atomic.make 0 in
      let run ~valid =
        Exec.parallel_init_ws ~pool
          ~ws:(fun chunk ->
            Exec.slot pool key ~chunk ~valid
              ~make:(fun () ->
                ignore (Atomic.fetch_and_add made 1);
                ref 0))
          8
          (fun _ i -> i)
      in
      ignore (run ~valid:(fun _ -> true));
      let after_first = Atomic.get made in
      ignore (run ~valid:(fun _ -> false));
      Alcotest.(check bool)
        (Printf.sprintf "stale slots rebuilt (%d then %d)" after_first
           (Atomic.get made))
        true
        (Atomic.get made > after_first))

let test_nested_fan_out_falls_back () =
  (* a worker re-entering its own pool must not deadlock: the busy guard
     runs the inner fan-out sequentially inline *)
  Exec.with_pool ~domains:3 (fun pool ->
      let out =
        Exec.parallel_init ~pool 6 (fun i ->
            Array.fold_left ( + ) 0
              (Exec.parallel_init ~pool 5 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int))
        "nested results correct"
        (Array.init 6 (fun i -> (50 * i) + 10))
        out;
      Alcotest.(check (array int))
        "pool usable afterwards" (Array.init 4 succ)
        (Exec.parallel_init ~pool 4 succ))

let test_chunks_per_domain () =
  Exec.with_pool ~domains:2 (fun pool ->
      let f i = (7 * i) - 2 in
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "n = %d, 4 chunks/domain" n)
            (Array.init n f)
            (Exec.parallel_init ~pool ~chunks_per_domain:4 n f))
        [ 1; 2; 7; 8; 100 ])

let ran_outside_caller pool n =
  let caller = (Domain.self () :> int) in
  let ids = Exec.parallel_init ~pool n (fun _ -> (Domain.self () :> int)) in
  Array.exists (fun id -> id <> caller) ids

let test_busy_flag_reset_after_exception () =
  Exec.with_pool ~domains:4 (fun pool ->
      (try
         ignore
           (Exec.parallel_init ~pool 16 (fun i ->
                if i = 3 then failwith "mid-run" else i))
       with Failure _ -> ());
      (* if the busy flag leaked, this would silently run sequentially
         in the calling domain only *)
      Alcotest.(check bool)
        "fan-out still reaches workers" true
        (ran_outside_caller pool 64))

let test_clock_monotonic () =
  let t0 = Clock.now () in
  let acc = ref 0.0 in
  for i = 1 to 100_000 do
    acc := !acc +. float_of_int i
  done;
  ignore !acc;
  let dt = Clock.elapsed t0 in
  Alcotest.(check bool) (Printf.sprintf "elapsed %g >= 0" dt) true (dt >= 0.0);
  Alcotest.(check bool) "still monotone" true (Clock.now () >= t0 +. dt)

let suite =
  [
    Alcotest.test_case "parallel_init = Array.init" `Quick
      test_parallel_init_matches_sequential;
    Alcotest.test_case "parallel_map = Array.map" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "single-domain pool" `Quick test_single_domain_pool_is_sequential;
    Alcotest.test_case "workspace per chunk" `Quick test_workspace_per_chunk;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "exception sequential" `Quick test_exception_sequential_fallback;
    Alcotest.test_case "pool reusable after exn" `Quick test_pool_reusable_after_exception;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "slot cached across runs" `Quick
      test_slot_cached_across_runs;
    Alcotest.test_case "slot invalidation rebuilds" `Quick
      test_slot_invalidation_rebuilds;
    Alcotest.test_case "nested fan-out falls back" `Quick
      test_nested_fan_out_falls_back;
    Alcotest.test_case "chunks per domain" `Quick test_chunks_per_domain;
    Alcotest.test_case "busy flag reset after exn" `Quick
      test_busy_flag_reset_after_exception;
    Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
  ]
