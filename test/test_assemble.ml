(* Dedicated suite for Rvf.Assemble: the mapping from a fitted pole set
   plus static stages onto the parallel Hammerstein realization of
   eqs. (12)-(14) — branch shapes, the input-shifted residue combination
   f1 = fa + fb / f2 = fa - fb, and the frozen-state transfer algebra
   against the VF basis it must reproduce. *)

let check_close tol = Alcotest.(check (float tol))

let sf formula deriv eval =
  Hammerstein.Static_fn.make ~formula ~eval ~deriv ()

(* quadratic stages: simple, nonlinear, exactly differentiable *)
let stage_quad c k =
  let a = c *. float_of_int (k + 1) in
  sf
    (Printf.sprintf "%g*x^2" (a /. 2.0))
    (fun x -> a *. x)
    (fun x -> a *. x *. x /. 2.0)

let static_cubic =
  sf "x^3/3" (fun x -> x *. x) (fun x -> x *. x *. x /. 3.0)

let pair_poles =
  [|
    { Complex.re = -2.0e5; im = 3.0e5 };
    { Complex.re = -2.0e5; im = -3.0e5 };
  |]

let mixed_poles =
  Array.append pair_poles [| { Complex.re = -1.0e5; im = 0.0 } |]

let test_branch_shapes () =
  let model =
    Rvf.Assemble.hammerstein ~name:"shapes" ~freq_poles:mixed_poles
      ~stage:(stage_quad 1.0) ~static_path:static_cubic
  in
  Alcotest.(check int) "branches" 2
    (Array.length model.Hammerstein.Hmodel.branches);
  Alcotest.(check int) "order = pole count" 3
    (Hammerstein.Hmodel.order model);
  (match model.Hammerstein.Hmodel.branches.(0) with
  | Hammerstein.Hmodel.Second_order { alpha; beta; _ } ->
      check_close 1e-12 "alpha" (-2.0e5) alpha;
      check_close 1e-12 "beta positive" 3.0e5 beta
  | _ -> Alcotest.fail "pair slot must assemble to Second_order");
  match model.Hammerstein.Hmodel.branches.(1) with
  | Hammerstein.Hmodel.First_order { a; _ } -> check_close 1e-12 "a" (-1.0e5) a
  | _ -> Alcotest.fail "single slot must assemble to First_order"

let test_input_shift_combination () =
  (* eq. (14): the pair's two filter inputs are fa + fb and fa - fb *)
  let fa = stage_quad 1.0 0 and fb = stage_quad 1.0 1 in
  let model =
    Rvf.Assemble.hammerstein ~name:"shift" ~freq_poles:pair_poles
      ~stage:(fun k -> if k = 0 then fa else fb)
      ~static_path:Hammerstein.Static_fn.zero
  in
  match model.Hammerstein.Hmodel.branches.(0) with
  | Hammerstein.Hmodel.Second_order { f1; f2; _ } ->
      List.iter
        (fun x ->
          check_close 1e-12 "f1 = fa + fb"
            (fa.Hammerstein.Static_fn.eval x +. fb.Hammerstein.Static_fn.eval x)
            (f1.Hammerstein.Static_fn.eval x);
          check_close 1e-12 "f2 = fa - fb"
            (fa.Hammerstein.Static_fn.eval x -. fb.Hammerstein.Static_fn.eval x)
            (f2.Hammerstein.Static_fn.eval x))
        [ -1.0; 0.3; 2.0 ]
  | _ -> Alcotest.fail "expected a Second_order branch"

let test_transfer_matches_vf_basis () =
  (* the assembled model's frozen-state transfer must equal the VF-basis
     expansion it was built from: T(x,s) = F0'(x) + sum_p basis_p(s)·f_p'(x)
     — this is exactly how the extractor's fitted surface is defined *)
  let stage = stage_quad 0.7 in
  let model =
    Rvf.Assemble.hammerstein ~name:"basis" ~freq_poles:mixed_poles ~stage
      ~static_path:static_cubic
  in
  List.iter
    (fun x ->
      List.iter
        (fun s ->
          let row = Vf.Basis.row mixed_poles s in
          let expected = ref Complex.zero in
          Array.iteri
            (fun p b ->
              expected :=
                Complex.add !expected
                  (Complex.mul b
                     {
                       Complex.re = (stage p).Hammerstein.Static_fn.deriv x;
                       im = 0.0;
                     }))
            row;
          let expected =
            Complex.add !expected
              { Complex.re = static_cubic.Hammerstein.Static_fn.deriv x; im = 0.0 }
          in
          let got = Hammerstein.Hmodel.transfer model ~x ~s in
          Alcotest.(check bool)
            (Printf.sprintf "T(%g, %g+%gi)" x s.Complex.re s.Complex.im)
            true
            (Complex.norm (Complex.sub got expected)
            <= 1e-12 *. Float.max 1.0 (Complex.norm expected)))
        [
          Complex.zero;
          { Complex.re = 0.0; im = 1.0e5 };
          { Complex.re = 0.0; im = 5.0e5 };
        ])
    [ -0.5; 0.4; 1.2 ]

let test_dc_output_derivative_is_dc_gain () =
  (* large-signal consistency of the realization: d/dx of the model's
     DC transfer curve equals its small-signal DC gain T(x, 0) *)
  let model =
    Rvf.Assemble.hammerstein ~name:"dc" ~freq_poles:mixed_poles
      ~stage:(stage_quad 0.7) ~static_path:static_cubic
  in
  let h = 1e-6 in
  List.iter
    (fun x ->
      let fd =
        (Hammerstein.Hmodel.dc_output model ~x:(x +. h)
        -. Hammerstein.Hmodel.dc_output model ~x:(x -. h))
        /. (2.0 *. h)
      in
      check_close 1e-6 (Printf.sprintf "ddc/dx at %g" x) fd
        (Hammerstein.Hmodel.dc_gain model ~x))
    [ -0.5; 0.4; 1.2 ]

let test_analytic_flag_propagates () =
  let analytic_model =
    Rvf.Assemble.hammerstein ~name:"a" ~freq_poles:pair_poles
      ~stage:(stage_quad 1.0) ~static_path:static_cubic
  in
  Alcotest.(check bool) "all-analytic stages" true
    (Hammerstein.Hmodel.analytic analytic_model);
  let numeric =
    Hammerstein.Static_fn.of_samples_numeric ~xs:[| 0.0; 0.5; 1.0 |]
      ~rs:[| 1.0; 2.0; 1.5 |]
  in
  let degraded =
    Rvf.Assemble.hammerstein ~name:"n" ~freq_poles:pair_poles
      ~stage:(fun k -> if k = 0 then numeric else stage_quad 1.0 k)
      ~static_path:static_cubic
  in
  Alcotest.(check bool) "numeric stage degrades the flag" false
    (Hammerstein.Hmodel.analytic degraded)

let test_unpaired_poles_rejected () =
  (* Pole.structure refuses a lone half of a conjugate pair, so assembly
     can never silently build a complex-output model *)
  Alcotest.(check bool) "unpaired pair rejected" true
    (match
       Rvf.Assemble.hammerstein ~name:"bad"
         ~freq_poles:[| { Complex.re = -1.0; im = 2.0 } |]
         ~stage:(stage_quad 1.0) ~static_path:Hammerstein.Static_fn.zero
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "branch shapes" `Quick test_branch_shapes;
    Alcotest.test_case "input-shift combination" `Quick
      test_input_shift_combination;
    Alcotest.test_case "transfer matches vf basis" `Quick
      test_transfer_matches_vf_basis;
    Alcotest.test_case "dc-output derivative" `Quick
      test_dc_output_derivative_is_dc_gain;
    Alcotest.test_case "analytic flag" `Quick test_analytic_flag_propagates;
    Alcotest.test_case "unpaired poles rejected" `Quick
      test_unpaired_poles_rejected;
  ]
