(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "tft_rvf"
    [
      ("linalg", Test_linalg.suite);
      ("exec", Test_exec.suite);
      ("signal", Test_signal.suite);
      ("circuit", Test_circuit.suite);
      ("engine", Test_engine.suite);
      ("tft", Test_tft.suite);
      ("estimator", Test_estimator.suite);
      ("vf", Test_vf.suite);
      ("rvf", Test_rvf.suite);
      ("assemble", Test_assemble.suite);
      ("recursion", Test_recursion.suite);
      ("hammerstein", Test_hammerstein.suite);
      ("caffeine", Test_caffeine.suite);
      ("pipeline", Test_pipeline.suite);
      ("diag", Test_diag.suite);
      ("guard", Test_guard.suite);
      ("resilience", Test_resilience.suite);
      ("trace", Test_trace.suite);
      ("minijson", Test_minijson.suite);
      ("obs", Test_obs.suite);
      ("oracle", Test_oracle.suite);
      ("sparse", Test_sparse.suite);
      ("coverage", Test_coverage.suite);
    ]
