(* Tests for the numerical guard layer (typed Singular payloads,
   reciprocal-condition floors, step-halving, snapshot quarantine) and
   the deterministic fault-injection harness, including per-rung
   coverage of the escalation ladder and the guard-off bit-parity
   contract. *)

let cx re im = { Complex.re; im }

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let cx_bits_equal (a : Complex.t) (b : Complex.t) =
  bits_equal a.Complex.re b.Complex.re && bits_equal a.Complex.im b.Complex.im

(* every test must leave the process-wide fault plan disarmed, even on
   an assertion failure, or it would poison the tests that follow *)
let with_plan f =
  Fun.protect ~finally:(fun () -> ignore (Fault.disarm ())) f

(* ---------------- typed Singular + rcond floors ---------------- *)

let test_lu_singular_payload () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Linalg.Lu.factor a with
  | exception Linalg.Lu.Singular { pivot_index; magnitude } ->
      Alcotest.(check int) "second pivot" 1 pivot_index;
      Alcotest.(check bool) "degenerate magnitude" true (magnitude < 1e-12)
  | _ -> Alcotest.fail "rank-1 matrix factored"

let test_lu_tiny_pivot () =
  (* below the 1e-300 floor: elimination would "succeed" with garbage *)
  let a = Linalg.Mat.of_arrays [| [| 1e-310; 0.0 |]; [| 0.0; 1.0 |] |] in
  match Linalg.Lu.factor a with
  | exception Linalg.Lu.Singular { magnitude; _ } ->
      Alcotest.(check bool) "tiny" true (magnitude < 1e-300)
  | _ -> Alcotest.fail "tiny pivot accepted"

let test_lu_rcond_estimate_and_guard () =
  let id = Linalg.Lu.factor (Linalg.Mat.identity 3) in
  Alcotest.(check (float 1e-12)) "identity rcond" 1.0
    (Linalg.Lu.rcond_estimate id);
  let ill = Linalg.Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1e-8 |] |] in
  let f = Linalg.Lu.factor ill in
  Alcotest.(check bool) "diagonal ratio" true
    (let r = Linalg.Lu.rcond_estimate f in
     r > 1e-9 && r < 1e-7);
  (* permissive floor passes, strict floor raises the typed Singular *)
  ignore (Linalg.Lu.factor ~guard:Guard.default ill);
  match
    Linalg.Lu.factor ~guard:{ Guard.default with Guard.rcond_min = 1e-6 } ill
  with
  | exception Linalg.Lu.Singular { magnitude; _ } ->
      Alcotest.(check (float 1e-12)) "weakest pivot reported" 1e-8 magnitude
  | _ -> Alcotest.fail "rcond floor not enforced"

let test_clu_singular_and_rcond () =
  let sing =
    Linalg.Cmat.init 2 2 (fun _ _ -> cx 1.0 1.0)
  in
  (match Linalg.Clu.factor sing with
  | exception Linalg.Clu.Singular { pivot_index; magnitude } ->
      Alcotest.(check int) "second pivot" 1 pivot_index;
      Alcotest.(check bool) "degenerate" true (magnitude < 1e-12)
  | _ -> Alcotest.fail "rank-1 complex matrix factored");
  let ill =
    Linalg.Cmat.init 2 2 (fun i j ->
        if i <> j then Complex.zero else if i = 0 then cx 1.0 0.0 else cx 0.0 1e-8)
  in
  Alcotest.(check bool) "complex rcond" true
    (let r = Linalg.Clu.rcond_estimate (Linalg.Clu.factor ill) in
     r > 1e-9 && r < 1e-7);
  match
    Linalg.Clu.factor ~guard:{ Guard.default with Guard.rcond_min = 1e-6 } ill
  with
  | exception Linalg.Clu.Singular _ -> ()
  | _ -> Alcotest.fail "complex rcond floor not enforced"

let test_guard_violation_printable () =
  match Guard.fail ~site:"test.site" "synthetic" with
  | exception Guard.Violation v ->
      let text = Printexc.to_string (Guard.Violation v) in
      Alcotest.(check bool) "names the site" true
        (Guard.describe v = "guard violation at test.site: synthetic");
      Alcotest.(check bool) "registered printer" true
        (String.length text > 0
        && String.index_opt text '.' <> None)
  | _ -> Alcotest.fail "fail returned"

(* ---------------- the fault harness itself ---------------- *)

let test_fault_schedule () =
  Alcotest.(check (pair int int)) "seed 0" (1, 1) (Fault.schedule_of_seed 0);
  Alcotest.(check (pair int int)) "seed 9" (2, 2) (Fault.schedule_of_seed 9);
  Alcotest.(check (pair int int)) "seed 40" (1, 6) (Fault.schedule_of_seed 40);
  Alcotest.(check (pair (string) int)) "parse bare" ("a.b", 0) (Fault.parse "a.b");
  Alcotest.(check (pair (string) int)) "parse seeded" ("a.b", 7)
    (Fault.parse "a.b:7");
  Alcotest.(check bool) "bad seed rejected" true
    (match Fault.parse "a.b:x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown site rejected" true
    (match Fault.arm ~site:"no.such.site" () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check int) "14 sites registered" 14 (List.length Fault.sites)

let firing_pattern site n =
  List.init n (fun _ -> Fault.should_fire site)

let test_fault_determinism () =
  with_plan (fun () ->
      (* seed 9: fire on invocations 2 and 3 *)
      Fault.arm ~site:"lu.pivot_zero" ~seed:9 ();
      Alcotest.(check string) "armed" "lu.pivot_zero"
        (Option.value ~default:"-" (Fault.armed ()));
      let first = firing_pattern "lu.pivot_zero" 6 in
      Alcotest.(check (list bool)) "window [2,3]"
        [ false; true; true; false; false; false ]
        first;
      (* a probe for a different site neither fires nor counts *)
      Alcotest.(check bool) "other site inert" false
        (Fault.should_fire "clu.pivot_zero");
      (match Fault.stats () with
      | Some s ->
          Alcotest.(check int) "calls" 6 s.Fault.calls;
          Alcotest.(check int) "fires" 2 s.Fault.fires
      | None -> Alcotest.fail "no stats while armed");
      (* re-arming restarts the identical schedule *)
      Fault.arm ~site:"lu.pivot_zero" ~seed:9 ();
      Alcotest.(check (list bool)) "reproducible" first
        (firing_pattern "lu.pivot_zero" 6);
      ignore (Fault.disarm ());
      Alcotest.(check bool) "disarmed" true (Fault.armed () = None);
      Alcotest.(check bool) "inert after disarm" false
        (Fault.should_fire "lu.pivot_zero"))

(* ---------------- recovery paths under injection ---------------- *)

let test_dc_gmin_recovery () =
  with_plan (fun () ->
      let mna = Circuits.Buffer.mna ~input_wave:(Circuit.Netlist.Dc 0.9) () in
      let clean = Engine.Dc.solve mna in
      Fault.arm ~site:"dc.newton_diverge" ~seed:0 ();
      let diag = Diag.create () in
      let v = Engine.Dc.solve ~guard:Guard.default ~diag mna in
      let stats = Option.get (Fault.disarm ()) in
      Alcotest.(check bool) "probe fired" true (stats.Fault.fires >= 1);
      let report = Diag.report diag in
      Alcotest.(check bool) "gmin stepping engaged" true
        (Diag.counter report "dc.gmin_continuations" >= 1
        || Diag.counter report "dc.gmin_levels" >= 1);
      let worst = ref 0.0 in
      Array.iteri
        (fun i x -> worst := Float.max !worst (Float.abs (x -. clean.(i))))
        v;
      Alcotest.(check bool)
        (Printf.sprintf "same operating point (%.2e)" !worst)
        true (!worst < 1e-6))

let test_tran_step_halving () =
  let mna =
    Circuits.Buffer.mna ~input_wave:(Circuits.Buffer.training_wave ()) ()
  in
  let dt = 1.0 /. 50e6 /. 400.0 in
  let t_stop = 20.0 *. dt in
  let clean = Engine.Tran.run mna ~t_stop ~dt in
  (* invocations 3 and 4 are one step's trapezoidal attempt and its
     backward-Euler retreat: without a guard the step is lost ... *)
  with_plan (fun () ->
      Fault.arm_exact ~site:"tran.newton_diverge" ~fire_at:3 ~burst:2 ();
      Alcotest.(check bool) "unguarded run dies" true
        (match Engine.Tran.run mna ~t_stop ~dt with
        | exception Engine.Dc.No_convergence _ -> true
        | _ -> false));
  (* ... with a guard the step is re-integrated as BE substeps *)
  with_plan (fun () ->
      Fault.arm_exact ~site:"tran.newton_diverge" ~fire_at:3 ~burst:2 ();
      let diag = Diag.create () in
      let guarded =
        Engine.Tran.run ~guard:Guard.default ~diag mna ~t_stop ~dt
      in
      let stats = Option.get (Fault.disarm ()) in
      Alcotest.(check int) "both attempts hit" 2 stats.Fault.fires;
      let report = Diag.report diag in
      Alcotest.(check bool) "halving recorded" true
        (Diag.counter report "tran.step_halvings" >= 1);
      Alcotest.(check int) "step_rejections mirrors counter"
        (Diag.counter report "tran.step_rejections")
        guarded.Engine.Tran.step_rejections;
      Alcotest.(check int) "full step count"
        (Array.length clean.Engine.Tran.times)
        (Array.length guarded.Engine.Tran.times);
      let n = Array.length clean.Engine.Tran.times - 1 in
      let diff =
        Float.abs
          (Linalg.Mat.get clean.Engine.Tran.outputs n 0
          -. Linalg.Mat.get guarded.Engine.Tran.outputs n 0)
      in
      Alcotest.(check bool)
        (Printf.sprintf "endpoint agrees (%.2e)" diff)
        true (diff < 1e-3))

(* ---------------- snapshot quarantine ---------------- *)

let quarantine_fixture () =
  let nl =
    Circuit.Parser.parse_string
      {|
Vin in 0 SIN(0.5 0.4 1e6)
R1 in out 1k
C1 out 0 5p
|}
  in
  let mna =
    Engine.Mna.build ~inputs:[ "Vin" ] ~outputs:[ Engine.Mna.Node "out" ] nl
  in
  let opts = { Engine.Tran.default_opts with Engine.Tran.snapshot_every = 10 } in
  let run = Engine.Tran.run ~opts mna ~t_stop:1e-6 ~dt:1e-8 in
  let freqs = Signal.Grid.frequencies_hz ~f_min:1e3 ~f_max:1e8 ~points:6 in
  (mna, Tft.Estimator.make (), freqs, run.Engine.Tran.snapshots)

let dataset_finite (ds : Tft.Dataset.t) =
  Array.for_all
    (fun (s : Tft.Dataset.sample) ->
      Array.for_all
        (fun hm ->
          let ok = ref true in
          for i = 0 to Linalg.Cmat.rows hm - 1 do
            for j = 0 to Linalg.Cmat.cols hm - 1 do
              let v = Linalg.Cmat.get hm i j in
              if not (Float.is_finite v.Complex.re && Float.is_finite v.Complex.im)
              then ok := false
            done
          done;
          !ok)
        s.Tft.Dataset.h)
    ds.Tft.Dataset.samples

let test_quarantine_interpolate () =
  let mna, estimator, freqs_hz, snaps = quarantine_fixture () in
  let clean = Tft.Dataset.of_snapshots ~mna ~estimator ~freqs_hz snaps in
  with_plan (fun () ->
      Fault.arm_exact ~site:"dataset.snapshot_burst" ~fire_at:3 ~burst:2 ();
      let diag = Diag.create () in
      let ds =
        Tft.Dataset.of_snapshots ~guard:Guard.default ~diag ~mna ~estimator
          ~freqs_hz snaps
      in
      let stats = Option.get (Fault.disarm ()) in
      Alcotest.(check int) "two snapshots corrupted" 2 stats.Fault.fires;
      let report = Diag.report diag in
      Alcotest.(check int) "quarantined" 2
        (Diag.counter report "dataset.quarantined");
      Alcotest.(check int) "repaired" 2 (Diag.counter report "dataset.repaired");
      Alcotest.(check int) "sample count kept"
        (Array.length clean.Tft.Dataset.samples)
        (Array.length ds.Tft.Dataset.samples);
      Alcotest.(check bool) "all finite after repair" true (dataset_finite ds))

let test_quarantine_drop () =
  let mna, estimator, freqs_hz, snaps = quarantine_fixture () in
  let clean = Tft.Dataset.of_snapshots ~mna ~estimator ~freqs_hz snaps in
  with_plan (fun () ->
      Fault.arm_exact ~site:"dataset.snapshot_burst" ~fire_at:3 ~burst:2 ();
      let diag = Diag.create () in
      let guard = { Guard.default with Guard.snapshot_repair = Guard.Drop } in
      let ds =
        Tft.Dataset.of_snapshots ~guard ~diag ~mna ~estimator ~freqs_hz snaps
      in
      ignore (Fault.disarm ());
      let report = Diag.report diag in
      Alcotest.(check int) "dropped" 2 (Diag.counter report "dataset.dropped");
      Alcotest.(check int) "two samples removed"
        (Array.length clean.Tft.Dataset.samples - 2)
        (Array.length ds.Tft.Dataset.samples);
      Alcotest.(check bool) "all finite after drop" true (dataset_finite ds))

let test_quarantine_pool_deterministic () =
  let mna, estimator, freqs_hz, snaps = quarantine_fixture () in
  let build ?pool () =
    with_plan (fun () ->
        Fault.arm_exact ~site:"dataset.snapshot_burst" ~fire_at:3 ~burst:2 ();
        Tft.Dataset.of_snapshots ?pool ~guard:Guard.default ~mna ~estimator
          ~freqs_hz snaps)
  in
  let seq = build () in
  let par = Exec.with_pool ~domains:2 (fun pool -> build ~pool ()) in
  Alcotest.(check int) "same sample count"
    (Array.length seq.Tft.Dataset.samples)
    (Array.length par.Tft.Dataset.samples);
  Array.iteri
    (fun k (a : Tft.Dataset.sample) ->
      let b = par.Tft.Dataset.samples.(k) in
      Array.iteri
        (fun l ha ->
          let hb = b.Tft.Dataset.h.(l) in
          for i = 0 to Linalg.Cmat.rows ha - 1 do
            for j = 0 to Linalg.Cmat.cols ha - 1 do
              Alcotest.(check bool) "bit-identical under pool" true
                (cx_bits_equal (Linalg.Cmat.get ha i j) (Linalg.Cmat.get hb i j))
            done
          done)
        a.Tft.Dataset.h)
    seq.Tft.Dataset.samples

(* ---------------- VF pole guard ---------------- *)

let test_vf_pole_flip_repaired () =
  let true_poles = [| cx (-1e4) 5e4; cx (-1e4) (-5e4) |] in
  let true_res = [| cx 5e3 1e3; cx 5e3 (-1e3) |] in
  let synth s =
    Array.fold_left
      (fun acc (a, r) -> Complex.add acc (Complex.div r (Complex.sub s a)))
      Complex.zero
      [| (true_poles.(0), true_res.(0)); (true_poles.(1), true_res.(1)) |]
  in
  let freqs = Signal.Grid.logspace 1e2 1e6 50 in
  let points = Array.map Signal.Grid.s_of_hz freqs in
  let data = [| Array.map synth points |] in
  let poles0 = Vf.Pole.initial_frequency ~f_min:1e2 ~f_max:1e6 ~count:2 in
  with_plan (fun () ->
      Fault.arm ~site:"vf.pole_flip" ~seed:0 ();
      let diag = Diag.create () in
      (* a single relocation sweep: the injected flip lands on the last
         sweep, so only the post-loop guard can repair it *)
      let opts =
        { Vf.Vfit.default_frequency_opts with Vf.Vfit.iterations = 1 }
      in
      let model, _ =
        Vf.Vfit.fit ~opts ~guard:Guard.default ~diag ~poles:poles0 ~points
          ~data ()
      in
      let stats = Option.get (Fault.disarm ()) in
      Alcotest.(check bool) "flip injected" true (stats.Fault.fires >= 1);
      Array.iter
        (fun a ->
          Alcotest.(check bool) "repaired to LHP" true (a.Complex.re < 0.0))
        model.Vf.Model.poles;
      let report = Diag.report diag in
      Alcotest.(check bool) "repair counted" true
        (Diag.counter report "vfit.guard_stabilized" >= 1))

(* ---------------- error_json shape ---------------- *)

let test_error_json_shape () =
  let diag = Diag.create () in
  Diag.warn (Some diag) ~stage:"pipeline.fit" "rung \"base\" failed";
  Diag.error (Some diag) ~stage:"pipeline.fit" "all rungs failed";
  Diag.note (Some diag) "guard.enabled" "true";
  let text = Tft_rvf.Report.error_json (Diag.report diag) in
  let root = Minijson.parse text in
  Alcotest.(check (option (float 0.0))) "schema_version" (Some 1.0)
    (Minijson.num_field root "schema_version");
  let error = Option.get (Minijson.field root "error") in
  Alcotest.(check (option string)) "stage" (Some "pipeline.fit")
    (Minijson.str_field error "stage");
  Alcotest.(check (option string)) "message" (Some "all rungs failed")
    (Minijson.str_field error "message");
  Alcotest.(check int) "warning + error inlined" 2
    (List.length (Option.get (Minijson.arr_field root "events")));
  Alcotest.(check bool) "notes carried" true
    (List.mem_assoc "guard.enabled"
       (Option.get (Minijson.obj_field root "notes")))

(* ---------------- ladder rung coverage (slow) ---------------- *)

let buffer_try ?fault () =
  with_plan (fun () ->
      (match fault with
      | None -> ()
      | Some burst ->
          Fault.arm_exact ~site:"rvf.trace_nan" ~fire_at:1 ~burst ());
      let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
      Tft_rvf.Pipeline.try_extract ~guard:Guard.default ~config
        ~netlist:(Circuits.Buffer.netlist ())
        ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ())

let test_ladder_every_rung () =
  (* rvf.trace_nan fires once per Rvf.extract call, so a burst of k
     defeats exactly the first k rungs: every rung of the PR-2
     escalation ladder is exercised by an injected fault *)
  let rungs =
    [ "base"; "more-start-poles"; "switched-weighting"; "relaxed-min-imag";
      "combined" ]
  in
  List.iteri
    (fun burst expected ->
      let outcome, report = buffer_try ~fault:burst () in
      Alcotest.(check bool)
        (Printf.sprintf "burst %d yields a model" burst)
        true (outcome <> None);
      Alcotest.(check (option string))
        (Printf.sprintf "burst %d settles on rung %s" burst expected)
        (Some expected)
        (Diag.find_note report "pipeline.ladder_rung");
      Alcotest.(check int)
        (Printf.sprintf "burst %d retries" burst)
        burst
        (Diag.counter report "pipeline.fit_retries"))
    rungs;
  (* one more than the ladder's length: exhaustion, typed error *)
  let outcome, report = buffer_try ~fault:(List.length rungs) () in
  Alcotest.(check bool) "exhausted ladder yields no model" true
    (outcome = None);
  Alcotest.(check bool) "failure recorded as Error" true
    (Diag.has_errors report)

(* ---------------- bit-for-bit parity (slow) ---------------- *)

let test_guard_off_bit_parity () =
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
  let netlist = Circuits.Buffer.netlist () in
  let plain =
    Tft_rvf.Pipeline.extract ~config ~netlist ~input:Circuits.Buffer.input_name
      ~output:Circuits.Buffer.output ()
  in
  let guarded =
    Tft_rvf.Pipeline.extract ~guard:Guard.default ~config ~netlist
      ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
  in
  let tried, report = buffer_try () in
  let tried = Option.get tried in
  Alcotest.(check (option string)) "base rung" (Some "base")
    (Diag.find_note report "pipeline.ladder_rung");
  Alcotest.(check (option string)) "guard noted" (Some "true")
    (Diag.find_note report "guard.enabled");
  (* a clean guarded run, and the non-raising path's base rung, are
     bit-for-bit the unguarded extraction *)
  let eq = Hammerstein.Hmodel.equations plain.Tft_rvf.Pipeline.model in
  Alcotest.(check string) "guarded equations identical" eq
    (Hammerstein.Hmodel.equations guarded.Tft_rvf.Pipeline.model);
  Alcotest.(check string) "try_extract equations identical" eq
    (Hammerstein.Hmodel.equations tried.Tft_rvf.Pipeline.model);
  List.iter
    (fun x ->
      List.iter
        (fun f ->
          let s = Signal.Grid.s_of_hz f in
          let tp =
            Hammerstein.Hmodel.transfer plain.Tft_rvf.Pipeline.model ~x ~s
          in
          let tg =
            Hammerstein.Hmodel.transfer guarded.Tft_rvf.Pipeline.model ~x ~s
          in
          let tt =
            Hammerstein.Hmodel.transfer tried.Tft_rvf.Pipeline.model ~x ~s
          in
          Alcotest.(check bool)
            (Printf.sprintf "transfer bits at x=%.1f f=%.0e" x f)
            true
            (cx_bits_equal tp tg && cx_bits_equal tp tt))
        [ 1e6; 1e9 ])
    [ 0.6; 0.9; 1.2 ]

let suite =
  [
    Alcotest.test_case "lu singular payload" `Quick test_lu_singular_payload;
    Alcotest.test_case "lu tiny pivot" `Quick test_lu_tiny_pivot;
    Alcotest.test_case "lu rcond floor" `Quick test_lu_rcond_estimate_and_guard;
    Alcotest.test_case "clu singular + rcond" `Quick test_clu_singular_and_rcond;
    Alcotest.test_case "violation printable" `Quick test_guard_violation_printable;
    Alcotest.test_case "fault schedule" `Quick test_fault_schedule;
    Alcotest.test_case "fault determinism" `Quick test_fault_determinism;
    Alcotest.test_case "dc gmin recovery" `Quick test_dc_gmin_recovery;
    Alcotest.test_case "tran step halving" `Quick test_tran_step_halving;
    Alcotest.test_case "quarantine interpolate" `Quick test_quarantine_interpolate;
    Alcotest.test_case "quarantine drop" `Quick test_quarantine_drop;
    Alcotest.test_case "quarantine pool determinism" `Quick
      test_quarantine_pool_deterministic;
    Alcotest.test_case "vf pole flip repaired" `Quick test_vf_pole_flip_repaired;
    Alcotest.test_case "error json shape" `Quick test_error_json_shape;
    Alcotest.test_case "ladder every rung" `Slow test_ladder_every_rung;
    Alcotest.test_case "guard-off bit parity" `Slow test_guard_off_bit_parity;
  ]
