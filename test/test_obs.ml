(* Tests for the unified observability hub and its on-disk run bundles:
   the disabled-path no-op contract (zero clock reads, bit-identical
   extraction), the event-stream invariants (ordered seq, stamped
   timestamps), a manifest/convergence.jsonl round-trip through
   Minijson, typed rejection of malformed bundles, and the
   monotone-residual property of the streamed VF pole trajectories on
   an in-class oracle workload. *)

let fresh_dir tag =
  let path = Filename.temp_file "test_obs" tag in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let events_of_kind kind events =
  List.filter (fun e -> Minijson.str_field e "type" = Some kind) events

(* ---------------- the disabled path ---------------- *)

let test_none_is_noop_zero_clock_reads () =
  (* every emitter with [None] must return without reading the clock:
     the whole point of the [?obs] threading is that an un-instrumented
     run pays nothing *)
  let before = Clock.reads () in
  Obs.event None ~kind:"x" [];
  Obs.rcond None ~site:"dc.lu" 0.5;
  Obs.vf_iteration None ~label:"vf" ~iteration:1 ~sigma_rms:1.0 ~d_tilde:1.0
    ~scale_spread:1.0 ~flips:0 [| Complex.one |];
  Obs.vf_attempt None ~label:"vf" ~pole_count:2 ~rms:1.0 ~tol:1e-3
    ~accepted:false;
  Obs.vf_settled None ~label:"vf" ~pole_count:2 ~rms:1.0;
  Obs.stage None "s";
  Obs.escalation None ~rung:"base" ~outcome:"ok" ~detail:"";
  Obs.violation None ~site:"s" "d";
  Obs.quarantine None ~n_bad:0 ~repaired:0 ~dropped:0;
  Alcotest.(check int) "zero clock reads on the disabled path" before
    (Clock.reads ())

(* ---------------- event-stream invariants ---------------- *)

let test_event_stream_shape () =
  let o = Obs.create () in
  let h = Some o in
  Obs.stage h "a";
  Obs.rcond h ~site:"dc.lu" 0.25;
  Obs.vf_iteration h ~label:"vf.freq" ~iteration:0 ~sigma_rms:2.0
    ~d_tilde:1.0 ~scale_spread:3.0 ~flips:1
    [| { Complex.re = -1.0; im = 2.0 }; { Complex.re = -1.0; im = -2.0 } |];
  Alcotest.(check int) "event count" 3 (Obs.event_count o);
  let events = Obs.events o in
  List.iteri
    (fun i e ->
      Alcotest.(check (option (float 0.0))) "seq is the emission index"
        (Some (float_of_int i))
        (Minijson.num_field e "seq");
      match Minijson.num_field e "t" with
      | Some t when t >= 0.0 -> ()
      | _ -> Alcotest.fail "event missing a non-negative timestamp")
    events;
  let iter = List.nth events 2 in
  Alcotest.(check (option string)) "type stamped" (Some "vf_iteration")
    (Minijson.str_field iter "type");
  (match Minijson.arr_field iter "poles" with
  | Some [ Minijson.Arr [ Minijson.Num re; Minijson.Num im ]; _ ] ->
      Alcotest.(check (float 0.0)) "pole re" (-1.0) re;
      Alcotest.(check (float 0.0)) "pole im" 2.0 im
  | _ -> Alcotest.fail "vf_iteration poles not serialized as [re, im] pairs");
  let lines = String.split_on_char '\n' (Obs.convergence_jsonl o) in
  Alcotest.(check int) "jsonl: one line per event + trailing newline" 4
    (List.length lines);
  Alcotest.(check string) "jsonl ends with a newline" ""
    (List.nth lines 3)

(* ---------------- bundle round-trip ---------------- *)

let roundtrip_manifest () =
  Obs_bundle.manifest ~tool:"test_obs" ~status:"ok" ~seed:7
    ~config:[ ("circuit", Minijson.Str "builtin:buffer"); ("points", Minijson.Num 40.0) ]
    ()

let test_bundle_roundtrip () =
  let o = Obs.create () in
  let h = Some o in
  Obs.stage h "pipeline.train";
  Obs.rcond h ~site:"ac.pencil" 1e-3;
  Obs.vf_iteration h ~label:"vf.freq" ~iteration:0 ~sigma_rms:0.5
    ~d_tilde:1.25 ~scale_spread:10.0 ~flips:0
    [| { Complex.re = -3.5e8; im = 1.25e9 } |];
  Obs.vf_settled h ~label:"vf.freq" ~pole_count:2 ~rms:1e-4;
  let dir = fresh_dir ".rt" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Obs_bundle.write ~dir ~manifest:(roundtrip_manifest ()) o;
      let b = Obs_bundle.load dir in
      Alcotest.(check (option string)) "tool survives" (Some "test_obs")
        (Minijson.str_field b.Obs_bundle.manifest "tool");
      Alcotest.(check (option (float 0.0))) "seed survives" (Some 7.0)
        (Minijson.num_field b.Obs_bundle.manifest "seed");
      (match Minijson.obj_field b.Obs_bundle.manifest "config" with
      | Some config ->
          Alcotest.(check (option string)) "config survives"
            (Some "builtin:buffer")
            (Minijson.str_field (Minijson.Obj config) "circuit")
      | None -> Alcotest.fail "manifest lost its config object");
      Alcotest.(check int) "every event survives" (Obs.event_count o)
        (List.length b.Obs_bundle.events);
      (* the stream round-trips exactly: re-emitting the parsed events
         reproduces convergence.jsonl byte for byte *)
      let reemitted =
        String.concat ""
          (List.map (fun e -> Minijson.emit e ^ "\n") b.Obs_bundle.events)
      in
      Alcotest.(check string) "convergence.jsonl round-trips through Minijson"
        (Obs.convergence_jsonl o) reemitted;
      match
        events_of_kind "vf_iteration" b.Obs_bundle.events
        |> List.concat_map (fun e ->
               Option.value ~default:[] (Minijson.arr_field e "poles"))
      with
      | [ Minijson.Arr [ Minijson.Num re; Minijson.Num im ] ] ->
          (* float fields go through Minijson.float and back without loss *)
          Alcotest.(check (float 0.0)) "pole re exact" (-3.5e8) re;
          Alcotest.(check (float 0.0)) "pole im exact" 1.25e9 im
      | _ -> Alcotest.fail "loaded stream lost the pole positions")

(* ---------------- malformed bundles ---------------- *)

let write_minimal_bundle () =
  let o = Obs.create () in
  Obs.stage (Some o) "a";
  Obs.stage (Some o) "b";
  let dir = fresh_dir ".bad" in
  Obs_bundle.write ~dir ~manifest:(roundtrip_manifest ()) o;
  dir

let check_invalid ~expect_file what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": loader accepted a malformed bundle")
  | exception Obs_bundle.Invalid { file; _ } ->
      Alcotest.(check string) (what ^ ": blames the offending file")
        expect_file file

let test_malformed_rejection () =
  check_invalid ~expect_file:"." "missing dir" (fun () ->
      Obs_bundle.load "/nonexistent/obs/bundle");
  let with_bundle f =
    let dir = write_minimal_bundle () in
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  with_bundle (fun dir ->
      Sys.remove (Filename.concat dir "manifest.json");
      check_invalid ~expect_file:"manifest.json" "missing manifest" (fun () ->
          Obs_bundle.load dir));
  with_bundle (fun dir ->
      write_file (Filename.concat dir "manifest.json")
        "{\"schema_version\": 99, \"kind\": \"obs-bundle\"}";
      check_invalid ~expect_file:"manifest.json" "wrong schema version"
        (fun () -> Obs_bundle.load dir));
  with_bundle (fun dir ->
      write_file (Filename.concat dir "trace.json") "not json at all";
      check_invalid ~expect_file:"trace.json" "unparsable trace" (fun () ->
          Obs_bundle.load dir));
  with_bundle (fun dir ->
      (* break the seq numbering: drop the first line of the stream *)
      let path = Filename.concat dir "convergence.jsonl" in
      let lines = String.split_on_char '\n' (read_file path) in
      write_file path (String.concat "\n" (List.tl lines));
      check_invalid ~expect_file:"convergence.jsonl" "broken seq" (fun () ->
          Obs_bundle.load dir))

(* ---------------- bit-identity through the pipeline ---------------- *)

let test_extraction_bit_identical_with_obs () =
  let config = Tft_rvf.Pipeline.buffer_config ~snapshots:30 () in
  let netlist = Circuits.Buffer.netlist () in
  let extract ?obs () =
    Tft_rvf.Pipeline.extract ?obs ~config ~netlist
      ~input:Circuits.Buffer.input_name ~output:Circuits.Buffer.output ()
  in
  let plain = extract () in
  let o = Obs.create () in
  let observed = extract ~obs:o () in
  Alcotest.(check string)
    "extracted model is bit-for-bit identical with the hub attached"
    (Hammerstein.Hmodel.equations plain.Tft_rvf.Pipeline.model)
    (Hammerstein.Hmodel.equations observed.Tft_rvf.Pipeline.model);
  Alcotest.(check bool) "the observed run streamed pole trajectories" true
    (events_of_kind "vf_iteration" (Obs.events o) <> []);
  Alcotest.(check bool) "rcond series recorded" true
    (events_of_kind "rcond" (Obs.events o) <> [])

(* ---------------- pole-trajectory residual decay ---------------- *)

(* Group the streamed vf_iteration events into relocation trajectories:
   one per (label, pole_count) escalation attempt, in emission order. *)
let trajectories events =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      match
        ( Minijson.str_field e "label",
          Minijson.num_field e "pole_count",
          Minijson.num_field e "sigma_rms" )
      with
      | Some label, Some pc, Some sigma ->
          let key = (label, int_of_float pc) in
          if not (Hashtbl.mem tbl key) then begin
            Hashtbl.add tbl key [];
            order := key :: !order
          end;
          Hashtbl.replace tbl key (sigma :: Hashtbl.find tbl key)
      | _ -> Alcotest.fail "vf_iteration event missing label/poles/sigma")
    (events_of_kind "vf_iteration" events);
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order

let test_synth_residual_decay () =
  (* an in-class oracle workload: the synthetic Hammerstein dataset is
     exactly representable, so every fit's sigma residual must collapse
     across its relocation sweeps — the convergence the stream exists to
     make visible *)
  let ds = Oracle.Synth.dataset_of Oracle.Synth.default in
  let o = Obs.create () in
  let result = Rvf.extract ~obs:o ~dataset:ds ~input:0 ~output:0 () in
  ignore result;
  let trajs = trajectories (Obs.events o) in
  Alcotest.(check bool) "at least one relocation trajectory streamed" true
    (trajs <> []);
  List.iter
    (fun (((label : string), pc), sigmas) ->
      match sigmas with
      | [] | [ _ ] -> ()
      | first :: _ ->
          let last = List.nth sigmas (List.length sigmas - 1) in
          let least = List.fold_left Float.min Float.infinity sigmas in
          if not (Float.is_finite last) || last > first *. 1.000001 then
            Alcotest.fail
              (Printf.sprintf
                 "%s (%d poles): sigma residual grew across relocation \
                  sweeps: first %.3e, last %.3e"
                 label pc first last);
          Alcotest.(check bool)
            (Printf.sprintf "%s (%d poles): residual decayed" label pc)
            true
            (least <= first))
    trajs;
  (* the escalation left its audit trail too *)
  Alcotest.(check bool) "vf_attempt events streamed" true
    (events_of_kind "vf_attempt" (Obs.events o) <> []);
  Alcotest.(check bool) "vf_settled events streamed" true
    (events_of_kind "vf_settled" (Obs.events o) <> [])

let suite =
  [
    Alcotest.test_case "none is noop (zero clock reads)" `Quick
      test_none_is_noop_zero_clock_reads;
    Alcotest.test_case "event stream shape" `Quick test_event_stream_shape;
    Alcotest.test_case "bundle roundtrip" `Quick test_bundle_roundtrip;
    Alcotest.test_case "malformed bundles rejected" `Quick
      test_malformed_rejection;
    Alcotest.test_case "bit-identical extraction" `Slow
      test_extraction_bit_identical_with_obs;
    Alcotest.test_case "synth residual decay" `Slow test_synth_residual_decay;
  ]
